package vup

// Ablation benchmarks for the design choices DESIGN.md calls out:
// autocorrelation-based lag selection vs naive first-K lags, the
// contextual enrichment, the SVR kernel-matrix precomputation and the
// per-window retraining cost of the two evaluation strategies. These
// measure end-to-end evaluation cost; the corresponding accuracy
// ablations live in the experiments (fig4, ext-weather).

import (
	"testing"
	"time"

	"vup/internal/canbus"
	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/randx"
	"vup/internal/regress"
	"vup/internal/telematics"
	"vup/internal/timeseries"
)

func ablationDataset(b *testing.B) *etl.VehicleDataset {
	b.Helper()
	fc := SmallFleet()
	fc.Units = 1
	fc.Days = 500
	ds, err := GenerateDatasets(fc, 3)
	if err != nil {
		b.Fatal(err)
	}
	return ds[0]
}

func ablationConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Algorithm = regress.AlgLasso
	cfg.W = 120
	cfg.K = 10
	cfg.MaxLag = 28
	cfg.Stride = 10
	cfg.Channels = []string{canbus.ChanFuelRate, canbus.ChanEngineSpeed}
	return cfg
}

func benchEvaluate(b *testing.B, cfg core.Config) {
	d := ablationDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateVehicle(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationACFSelection is the default pipeline: K lags picked
// by autocorrelation out of the MaxLag budget.
func BenchmarkAblationACFSelection(b *testing.B) {
	benchEvaluate(b, ablationConfig())
}

// BenchmarkAblationNaiveLags disables the selection by collapsing the
// budget to K (lags 1..K), the "no smart selection" reference of
// Figure 4.
func BenchmarkAblationNaiveLags(b *testing.B) {
	cfg := ablationConfig()
	cfg.MaxLag = cfg.K
	benchEvaluate(b, cfg)
}

// BenchmarkAblationAllLags uses every lag in the budget (K = MaxLag),
// the paper's "very large number of features" regime.
func BenchmarkAblationAllLags(b *testing.B) {
	cfg := ablationConfig()
	cfg.K = cfg.MaxLag
	benchEvaluate(b, cfg)
}

// BenchmarkAblationNoContext drops the contextual enrichment features.
func BenchmarkAblationNoContext(b *testing.B) {
	cfg := ablationConfig()
	cfg.IncludeContext = false
	benchEvaluate(b, cfg)
}

// BenchmarkAblationExpandingWindow measures the expanding-window
// strategy's extra training cost (Section 4.3: "performs better, but
// at the cost of additional computational complexity").
func BenchmarkAblationExpandingWindow(b *testing.B) {
	cfg := ablationConfig()
	cfg.Strategy = timeseries.Expanding
	benchEvaluate(b, cfg)
}

// BenchmarkAblationRandomForest measures the cross-study baseline.
func BenchmarkAblationRandomForest(b *testing.B) {
	x, y := benchTrainingData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := regress.NewRandomForest()
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRidge measures the closed-form regularized model.
func BenchmarkAblationRidge(b *testing.B) {
	x, y := benchTrainingData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := regress.NewRidge()
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelematicsDay measures the frame-level acquisition path for
// one vehicle-day at a 1-minute sample period.
func BenchmarkTelematicsDay(b *testing.B) {
	rng := randx.New(5)
	v := fleet.Vehicle{ID: "bench", Model: fleet.Model{Type: fleet.Grader, Index: 0}, Country: "IT"}
	dev := telematics.NewDevice(v, rng.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := dev.SimulateDay(fleet.StudyStart.AddDate(0, 0, i%365), 6, time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) == 0 {
			b.Fatal("no reports")
		}
	}
}
