// Fleet characterization dashboard: the Section 2 analysis of the
// paper as a runnable program. It generates a fleet, pools the daily
// utilization per vehicle type, prints the Figure 1(a) CDF and the
// per-model box plots of Figure 1(b), and reports each type's
// activity rate.
package main

import (
	"fmt"
	"log"
	"sort"

	"vup"
	"vup/internal/fleet"
	"vup/internal/stats"
	"vup/internal/textplot"
)

func main() {
	log.SetFlags(0)

	fleetCfg := vup.SmallFleet()
	fleetCfg.Units = 120
	fleetCfg.Days = 730
	datasets, err := vup.GenerateDatasets(fleetCfg, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Pool active-day hours per type and count activity.
	byType := map[string][]float64{}
	activeDays := map[string]int{}
	totalDays := map[string]int{}
	byModel := map[string][]float64{}
	for _, d := range datasets {
		typeName := d.Type.String()
		for _, h := range d.Hours {
			totalDays[typeName]++
			if h > 0 {
				activeDays[typeName]++
				byType[typeName] = append(byType[typeName], h)
				if d.Type == fleet.RefuseCompactor {
					byModel[d.ModelID] = append(byModel[d.ModelID], h)
				}
			}
		}
	}

	// Figure 1(a): CDFs per type.
	fmt.Println(textplot.CDFPlot("CDF of daily utilization hours per type (active days)", byType, 70, 16))

	// Per-type summary table.
	names := make([]string, 0, len(byType))
	for name := range byType {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-20s %8s %8s %8s %9s\n", "type", "median", "p95", "max", "activity")
	for _, name := range names {
		xs := byType[name]
		fmt.Printf("%-20s %8.2f %8.2f %8.2f %8.0f%%\n",
			name, stats.Median(xs), stats.Quantile(xs, 0.95), stats.Max(xs),
			100*float64(activeDays[name])/float64(totalDays[name]))
	}
	fmt.Println()

	// Figure 1(b): box plots across refuse-compactor models, sorted by
	// median.
	type entry struct {
		label string
		box   stats.BoxStats
	}
	var entries []entry
	for label, xs := range byModel {
		if b, err := stats.Box(xs); err == nil {
			entries = append(entries, entry{label, b})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].box.Median < entries[j].box.Median })
	labels := make([]string, len(entries))
	boxes := make([]stats.BoxStats, len(entries))
	for i, e := range entries {
		labels[i], boxes[i] = e.label, e.box
	}
	fmt.Println(textplot.BoxStrip("refuse-compactor models, daily hours (ascending median)", labels, boxes, 56))
}
