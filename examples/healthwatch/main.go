// Health watch: combines the paper's prediction pipeline with the
// diagnostics substrate. For each vehicle it calibrates an empirical
// confidence band from hold-out residuals (Section 4, goal iii),
// flags days whose actual utilization fell outside the band (usage
// anomalies: possible breakdowns or unplanned idling) and correlates
// them with active diagnostic trouble codes.
package main

import (
	"fmt"
	"log"

	"vup"
	"vup/internal/canbus"
	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/randx"
	"vup/internal/telematics"
)

func main() {
	log.SetFlags(0)

	// Build a small fleet with simulated fault histories.
	rng := randx.New(21)
	f, err := fleet.Generate(fleet.Config{Units: 6, Days: 500, Seed: 21, Start: fleet.StudyStart})
	if err != nil {
		log.Fatal(err)
	}
	usage := f.SimulateAll()

	cfg := vup.DefaultConfig()
	cfg.Algorithm = vup.AlgLasso
	cfg.W = 120
	cfg.K = 10
	cfg.MaxLag = 21
	cfg.Stride = 2
	cfg.Channels = []string{canbus.ChanFuelRate, etl.ChanFaultCount}

	fmt.Println("fleet health watch (80% empirical bands)")
	for _, u := range f.Units {
		series := usage[u.Vehicle.ID]
		d, err := etl.FromUsage(u, series, rng.Split())
		if err != nil {
			log.Fatal(err)
		}
		// Fault history, correlated with workload.
		faults := telematics.NewFaultModel(rng.Split())
		counts := make([]int, len(series))
		for i, day := range series {
			counts[i] = len(faults.Step(day.Hours))
		}
		if err := d.AttachFaults(counts); err != nil {
			log.Fatal(err)
		}

		res, err := core.EvaluateVehicle(d, cfg)
		if err != nil {
			fmt.Printf("  %-9s (%s): not enough data (%v)\n", u.Vehicle.ID, u.Vehicle.Model.Type, err)
			continue
		}
		lo, hi, err := core.ResidualQuantiles(res, 0.8)
		if err != nil {
			log.Fatal(err)
		}
		anomalies := 0
		var lastAnomaly core.Prediction
		for _, p := range res.Predictions {
			if p.Actual < p.Predicted+lo || p.Actual > p.Predicted+hi {
				anomalies++
				lastAnomaly = p
			}
		}
		faultDays := 0
		for _, c := range counts {
			if c > 0 {
				faultDays++
			}
		}
		fmt.Printf("  %-9s %-18s PE=%5.1f%%  band=[%+.2f,%+.2f]h  anomalies=%d/%d  fault-days=%d\n",
			u.Vehicle.ID, u.Vehicle.Model.Type, res.PE, lo, hi, anomalies, len(res.Predictions), faultDays)
		if anomalies > 0 {
			fmt.Printf("            last anomaly %s: predicted %.1fh, actual %.1fh\n",
				lastAnomaly.Date.Format("2006-01-02"), lastAnomaly.Predicted, lastAnomaly.Actual)
		}

		// Tomorrow's outlook with the calibrated band.
		iv, err := core.ForecastInterval(d, cfg, 0.8)
		if err == nil {
			fmt.Printf("            tomorrow: %.1fh, 80%% interval [%.1f, %.1f]h\n", iv.Hours, iv.Lo, iv.Hi)
		}
	}
}
