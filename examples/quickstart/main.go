// Quickstart: generate a small synthetic fleet, evaluate the paper's
// pipeline on one vehicle and forecast tomorrow's utilization.
package main

import (
	"fmt"
	"log"

	"vup"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a laptop-scale synthetic fleet (the study's full
	//    scale is vup.StudyFleet(): 2 239 vehicles over 4 years).
	fleetCfg := vup.SmallFleet()
	fleetCfg.Units = 10
	fleetCfg.Days = 600
	datasets, err := vup.GenerateDatasets(fleetCfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	d := datasets[0]
	fmt.Printf("vehicle %s: %s (%s), deployed in %s, %d days of data\n",
		d.VehicleID, d.Type, d.ModelID, d.Country, d.Len())

	// 2. Configure the pipeline. DefaultConfig carries the paper's
	//    recommended settings (SVR, w=140, K=20); we shrink the window
	//    and stride so the example finishes in seconds.
	cfg := vup.DefaultConfig()
	cfg.Algorithm = vup.AlgGB
	cfg.W = 120
	cfg.K = 12
	cfg.MaxLag = 21
	cfg.Stride = 5

	// 3. Hold-out evaluation: how well would we have predicted each
	//    day of the past?
	res, err := vup.Evaluate(d, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hold-out percentage error (%s, %s): %.1f%%\n", cfg.Algorithm, cfg.Scenario, res.PE)

	// 4. The easier next-working-day scenario (idle days removed).
	//    Removing idle days shortens the series, so the training
	//    window shrinks with it.
	cfg.Scenario = vup.NextWorkingDay
	cfg.W = 60
	if res, err = vup.Evaluate(d, cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hold-out percentage error (%s, %s): %.1f%%\n", cfg.Algorithm, cfg.Scenario, res.PE)

	// 5. Forecast the next working day's utilization hours.
	hours, lags, err := vup.Forecast(d, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forecast for the next working day: %.2f hours (selected lags %v)\n", hours, lags)
}
