// Maintenance planner: the paper's motivating use case — "help site
// managers to properly schedule short-term fleet management and
// maintenance actions (e.g., schedule refueling)".
//
// For every vehicle of a site fleet the example forecasts the next
// working day's utilization, projects cumulative engine hours against
// each unit's service interval and prints a prioritized maintenance
// schedule.
package main

import (
	"fmt"
	"log"
	"sort"

	"vup"
	"vup/internal/canbus"
)

// serviceEvery is the engine-hour interval between scheduled services.
const serviceEvery = 250.0

func main() {
	log.SetFlags(0)

	fleetCfg := vup.SmallFleet()
	fleetCfg.Units = 12
	fleetCfg.Days = 500
	datasets, err := vup.GenerateDatasets(fleetCfg, 7)
	if err != nil {
		log.Fatal(err)
	}

	cfg := vup.DefaultConfig()
	cfg.Algorithm = vup.AlgLasso // fast enough to run per vehicle daily
	cfg.Scenario = vup.NextWorkingDay
	cfg.W = 120
	cfg.K = 10
	cfg.MaxLag = 21
	cfg.Channels = []string{canbus.ChanFuelRate, canbus.ChanEngineSpeed}

	type plan struct {
		id            string
		typ           string
		country       string
		sinceService  float64 // engine hours since the last service
		nextDayHours  float64 // forecast utilization of the next working day
		daysToService float64 // projected working days until the service is due
	}
	var plans []plan
	for _, d := range datasets {
		// Engine hours accumulated since the last (simulated) service:
		// the trailing total modulo the interval.
		var total float64
		for _, h := range d.Hours {
			total += h
		}
		since := total - float64(int(total/serviceEvery))*serviceEvery

		hours, _, err := vup.Forecast(d, cfg)
		if err != nil {
			// Vehicles with too little history are simply not planned
			// this round.
			fmt.Printf("  (skipping %s: %v)\n", d.VehicleID, err)
			continue
		}
		p := plan{
			id: d.VehicleID, typ: d.Type.String(), country: d.Country,
			sinceService: since, nextDayHours: hours,
		}
		if hours > 0.1 {
			p.daysToService = (serviceEvery - since) / hours
		} else {
			p.daysToService = 1e9 // effectively idle
		}
		plans = append(plans, p)
	}

	sort.Slice(plans, func(i, j int) bool { return plans[i].daysToService < plans[j].daysToService })

	fmt.Printf("maintenance schedule (service every %.0f engine hours)\n", serviceEvery)
	fmt.Printf("%-10s %-20s %-3s %10s %12s %14s\n", "vehicle", "type", "cc", "since (h)", "next day (h)", "days to due")
	for _, p := range plans {
		due := fmt.Sprintf("%.0f", p.daysToService)
		if p.daysToService > 1e6 {
			due = "idle"
		}
		urgent := ""
		if p.daysToService < 14 {
			urgent = "  << schedule now"
		}
		fmt.Printf("%-10s %-20s %-3s %10.1f %12.2f %14s%s\n",
			p.id, p.typ, p.country, p.sinceService, p.nextDayHours, due, urgent)
	}
}
