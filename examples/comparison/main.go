// Algorithm comparison: the Figure 5 experiment as a runnable
// program. Six algorithms (two baselines, four learners) are evaluated
// on a handful of vehicles in both prediction scenarios, reporting the
// fleet-level mean Percentage Error.
package main

import (
	"fmt"
	"log"
	"time"

	"vup"
	"vup/internal/canbus"
)

func main() {
	log.SetFlags(0)

	fleetCfg := vup.SmallFleet()
	fleetCfg.Units = 5
	fleetCfg.Days = 600
	datasets, err := vup.GenerateDatasets(fleetCfg, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluating %d vehicles, %d days each\n\n", len(datasets), datasets[0].Len())

	for _, scenario := range []vup.Scenario{vup.NextDay, vup.NextWorkingDay} {
		fmt.Printf("scenario: %s\n", scenario)
		fmt.Printf("  %-6s %10s %10s %8s\n", "alg", "mean PE", "median PE", "time")
		for _, alg := range vup.Algorithms() {
			cfg := vup.DefaultConfig()
			cfg.Algorithm = alg
			cfg.Scenario = scenario
			cfg.W = 120
			cfg.K = 12
			cfg.MaxLag = 21
			cfg.Stride = 5
			cfg.Channels = []string{canbus.ChanFuelRate, canbus.ChanEngineSpeed}

			start := time.Now()
			fr, err := vup.EvaluateFleet(datasets, cfg, 0)
			if err != nil {
				fmt.Printf("  %-6s %10s\n", alg, "n/a")
				continue
			}
			fmt.Printf("  %-6s %9.1f%% %9.1f%% %8s\n",
				alg, fr.MeanPE, fr.MedianPE, time.Since(start).Round(time.Millisecond))
		}
		fmt.Println()
	}
	fmt.Println("expected shape (paper, Section 4.4): learners beat LV/MA; SVR ~ GB;")
	fmt.Println("next-working-day error is roughly half of next-day error.")
}
