package etl

import "testing"

// SizeBytes is the unit the serving store's resident-bytes accountant
// charges per dataset. It must be deterministic (two loads of the same
// bytes agree, or eviction accounting drifts) and must scale with the
// day count and channel set, since those dominate real heap use.
func TestSizeBytes(t *testing.T) {
	small := testDataset(t, 60)
	big := testDataset(t, 600)

	if got := small.SizeBytes(); got <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0", got)
	}
	if small.SizeBytes() != small.SizeBytes() {
		t.Fatal("SizeBytes is not deterministic on the same dataset")
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("600-day dataset sized %d, not larger than 60-day %d",
			big.SizeBytes(), small.SizeBytes())
	}

	// Per-day floor: hours + observed + context already cost 65 bytes
	// a day before channels; anything under that means a term dropped.
	if n, got := int64(small.Len()), small.SizeBytes(); got < n*65 {
		t.Fatalf("SizeBytes = %d for %d days, below the %d per-day floor", got, n, n*65)
	}

	// A clone with one extra channel must charge for it.
	clone := small.Clone()
	vals := make([]float64, clone.Len())
	clone.Channels["extra_channel"] = vals
	if clone.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("extra channel did not grow SizeBytes: %d vs %d",
			clone.SizeBytes(), small.SizeBytes())
	}
}
