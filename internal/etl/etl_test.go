package etl

import (
	"errors"
	"math"
	"testing"
	"time"

	"vup/internal/canbus"
	"vup/internal/fleet"
	"vup/internal/randx"
	"vup/internal/telematics"
)

func testUnit() fleet.Unit {
	rng := randx.New(1)
	v := fleet.Vehicle{ID: "veh-0", Model: fleet.Model{Type: fleet.RefuseCompactor, Index: 0}, Country: "IT"}
	return fleet.Unit{Vehicle: v, Model: fleet.NewUsageModel(v, 1, rng)}
}

func testDataset(t *testing.T, days int) *VehicleDataset {
	t.Helper()
	u := testUnit()
	usage := u.Model.Simulate(fleet.StudyStart, days)
	d, err := FromUsage(u, usage, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFromUsage(t *testing.T) {
	d := testDataset(t, 200)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 200 {
		t.Fatalf("len = %d", d.Len())
	}
	if len(d.Channels) != 10 {
		t.Errorf("channels = %d", len(d.Channels))
	}
	if d.ModelID != "RC-00" || d.Type != fleet.RefuseCompactor {
		t.Errorf("identity fields: %q %v", d.ModelID, d.Type)
	}
	for _, obs := range d.Observed {
		if !obs {
			t.Fatal("fast path should observe every day")
		}
	}
}

func TestFromUsageEmpty(t *testing.T) {
	if _, err := FromUsage(testUnit(), nil, randx.New(1)); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("want ErrEmptyDataset, got %v", err)
	}
}

func TestEnrichContext(t *testing.T) {
	d := testDataset(t, 400)
	// 2015-01-01 was a Thursday and a holiday (New Year).
	ctx := d.Context[0]
	if ctx.DayOfWeek != time.Thursday {
		t.Errorf("dow = %v", ctx.DayOfWeek)
	}
	if !ctx.Holiday || ctx.WorkingDay {
		t.Errorf("New Year context = %+v", ctx)
	}
	if ctx.Year != 2015 || ctx.Month != time.January {
		t.Errorf("calendar fields = %+v", ctx)
	}
	// Christmas 2015 (index 358).
	xmas := d.Context[358]
	if !xmas.Holiday {
		t.Errorf("Christmas not flagged: %+v (date %v)", xmas, d.Date(358))
	}
	// A regular Italian Wednesday: 2015-03-04 (index 62).
	wed := d.Context[62]
	if wed.DayOfWeek != time.Wednesday || !wed.WorkingDay || wed.Holiday {
		t.Errorf("regular day context = %+v", wed)
	}
}

func TestValidateMisaligned(t *testing.T) {
	d := testDataset(t, 50)
	d.Channels[canbus.ChanSpeed] = d.Channels[canbus.ChanSpeed][:10]
	if err := d.Validate(); err == nil {
		t.Error("misaligned channel accepted")
	}
	d2 := testDataset(t, 50)
	d2.Context = d2.Context[:10]
	if err := d2.Validate(); err == nil {
		t.Error("misaligned context accepted")
	}
	empty := &VehicleDataset{}
	if err := empty.Validate(); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("want ErrEmptyDataset, got %v", err)
	}
}

func TestFromReportsMatchesDeviceOutput(t *testing.T) {
	rng := randx.New(3)
	u := testUnit()
	dev := telematics.NewDevice(u.Vehicle, rng.Split())
	days := 7
	var all []canbus.Report
	hours := []float64{4, 0, 6, 2, 0, 3, 5}
	for i := 0; i < days; i++ {
		reports, err := dev.SimulateDay(fleet.StudyStart.AddDate(0, 0, i), hours[i], time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, reports...)
	}
	d, err := FromReports(u.Vehicle, all, fleet.StudyStart, days)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range hours {
		if math.Abs(d.Hours[i]-want) > 1 {
			t.Errorf("day %d hours = %v, want ~%v", i, d.Hours[i], want)
		}
		if want > 0 && !d.Observed[i] {
			t.Errorf("active day %d unobserved", i)
		}
		if want == 0 && d.Observed[i] {
			t.Errorf("idle day %d marked observed", i)
		}
	}
	// Active days must carry channel aggregates.
	if d.Channels[canbus.ChanEngineSpeed][0] <= 0 {
		t.Error("active day without rpm aggregate")
	}
}

func TestFromReportsIgnoresOutOfRange(t *testing.T) {
	u := testUnit()
	reports := []canbus.Report{
		{VehicleID: u.Vehicle.ID, Start: fleet.StudyStart.AddDate(0, 0, -1), EngineOnSeconds: 3600},
		{VehicleID: u.Vehicle.ID, Start: fleet.StudyStart.AddDate(0, 0, 100), EngineOnSeconds: 3600},
	}
	d, err := FromReports(u.Vehicle, reports, fleet.StudyStart, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Hours {
		if d.Hours[i] != 0 || d.Observed[i] {
			t.Errorf("out-of-range report leaked into day %d", i)
		}
	}
}

func TestFromReportsErrors(t *testing.T) {
	if _, err := FromReports(testUnit().Vehicle, nil, fleet.StudyStart, 0); err == nil {
		t.Error("zero days accepted")
	}
}

func TestCleanZeroPolicy(t *testing.T) {
	d := testDataset(t, 30)
	d.Observed[5] = false
	d.Hours[5] = 3
	d.Hours[7] = math.NaN()
	d.Hours[8] = -2
	d.Hours[9] = 99
	d.Channels[canbus.ChanSpeed][3] = math.Inf(1)
	repaired, err := Clean(d, MissingZero)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 1 {
		t.Errorf("repaired = %d", repaired)
	}
	if d.Hours[5] != 0 {
		t.Errorf("missing day not zeroed: %v", d.Hours[5])
	}
	if d.Hours[7] != 0 || d.Hours[8] != 0 {
		t.Error("NaN/negative hours not sanitized")
	}
	if d.Hours[9] != 24 {
		t.Errorf("hours not clamped: %v", d.Hours[9])
	}
	if d.Channels[canbus.ChanSpeed][3] != 0 {
		t.Error("Inf channel not sanitized")
	}
}

func TestCleanForwardFill(t *testing.T) {
	d := testDataset(t, 10)
	d.Hours[4] = 6
	d.Observed[5] = false
	d.Observed[6] = false
	if _, err := Clean(d, MissingForwardFill); err != nil {
		t.Fatal(err)
	}
	if d.Hours[5] != 6 || d.Hours[6] != 6 {
		t.Errorf("ffill = %v %v, want 6 6", d.Hours[5], d.Hours[6])
	}
	// Missing at the very start falls back to zero.
	d2 := testDataset(t, 5)
	d2.Observed[0] = false
	d2.Hours[0] = 3
	Clean(d2, MissingForwardFill)
	if d2.Hours[0] != 0 {
		t.Errorf("leading missing day = %v, want 0", d2.Hours[0])
	}
}

func TestCleanInterpolate(t *testing.T) {
	d := testDataset(t, 10)
	d.Hours[2] = 2
	d.Hours[5] = 8
	d.Observed[3] = false
	d.Observed[4] = false
	if _, err := Clean(d, MissingInterpolate); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Hours[3]-4) > 1e-9 || math.Abs(d.Hours[4]-6) > 1e-9 {
		t.Errorf("interpolated = %v %v, want 4 6", d.Hours[3], d.Hours[4])
	}
	// Trailing gap copies the last observed value.
	d2 := testDataset(t, 5)
	d2.Hours[2] = 5
	d2.Observed[3] = false
	d2.Observed[4] = false
	Clean(d2, MissingInterpolate)
	if d2.Hours[4] != 5 {
		t.Errorf("trailing gap = %v, want 5", d2.Hours[4])
	}
}

// TestCleanForwardFillNoPriorZeroesChannels is the regression test for
// the partial-fill bug: a leading missing day under ffill used to zero
// Hours but keep stale channel values.
func TestCleanForwardFillNoPriorZeroesChannels(t *testing.T) {
	d := testDataset(t, 5)
	d.Observed[0] = false
	d.Hours[0] = 3
	d.Channels[canbus.ChanSpeed][0] = 42
	repaired, err := Clean(d, MissingForwardFill)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 1 {
		t.Errorf("repaired = %d", repaired)
	}
	if d.Hours[0] != 0 {
		t.Errorf("hours = %v, want 0", d.Hours[0])
	}
	if d.Channels[canbus.ChanSpeed][0] != 0 {
		t.Errorf("channel kept stale value %v, want 0", d.Channels[canbus.ChanSpeed][0])
	}
}

// TestCleanInterpolateNoObservedDays is the regression test for the
// counted-but-unrepaired bug: with no observed day at all, interpolate
// used to leave every value stale while still counting the days as
// repaired. Both fill policies must fall back to zeroing.
func TestCleanInterpolateNoObservedDays(t *testing.T) {
	for _, policy := range []MissingPolicy{MissingInterpolate, MissingForwardFill} {
		d := testDataset(t, 4)
		for i := range d.Observed {
			d.Observed[i] = false
			d.Hours[i] = 5
			d.Channels[canbus.ChanSpeed][i] = 9
		}
		repaired, err := Clean(d, policy)
		if err != nil {
			t.Fatal(err)
		}
		if repaired != d.Len() {
			t.Errorf("policy %v: repaired = %d, want %d actually-modified days", policy, repaired, d.Len())
		}
		for i := 0; i < d.Len(); i++ {
			if d.Hours[i] != 0 || d.Channels[canbus.ChanSpeed][i] != 0 {
				t.Fatalf("policy %v: day %d not zeroed (hours %v, speed %v)",
					policy, i, d.Hours[i], d.Channels[canbus.ChanSpeed][i])
			}
		}
	}
}

// TestCleanFromMatchesClean: cleaning only the appended suffix of a
// dataset whose prefix was already cleaned must yield exactly the
// state a full Clean produces on the same data.
func TestCleanFromMatchesClean(t *testing.T) {
	for _, policy := range []MissingPolicy{MissingZero, MissingForwardFill, MissingInterpolate} {
		dirty := func() *VehicleDataset {
			d := testDataset(t, 40)
			d.Observed[10] = false
			d.Hours[10] = math.NaN()
			d.Observed[35] = false
			d.Observed[36] = false
			d.Hours[36] = -7
			d.Channels[canbus.ChanSpeed][38] = math.Inf(-1)
			return d
		}
		full := dirty()
		if _, err := Clean(full, policy); err != nil {
			t.Fatal(err)
		}
		incr := dirty()
		if _, err := Clean(incr, policy); err != nil {
			t.Fatal(err)
		}
		// "Append" five more days with a gap, then clean only the suffix.
		grow := func(d *VehicleDataset) {
			for i := 0; i < 5; i++ {
				d.Hours = append(d.Hours, float64(i))
				d.Observed = append(d.Observed, i != 2)
				d.Context = append(d.Context, Context{})
				for name := range d.Channels {
					d.Channels[name] = append(d.Channels[name], float64(i))
				}
			}
			d.Hours[len(d.Hours)-1] = math.Inf(1)
			d.Enrich()
		}
		grow(full)
		grow(incr)
		if _, err := Clean(full, policy); err != nil {
			t.Fatal(err)
		}
		repaired, err := CleanFrom(incr, policy, 40)
		if err != nil {
			t.Fatal(err)
		}
		if repaired != 1 {
			t.Errorf("policy %v: suffix repaired = %d, want 1", policy, repaired)
		}
		if full.Fingerprint() != incr.Fingerprint() {
			t.Errorf("policy %v: incremental clean diverged from full clean", policy)
		}
	}
}

// TestCleanFromLeavesPrefixUntouched: CleanFrom must never rewrite
// days before from, even dirty ones.
func TestCleanFromLeavesPrefixUntouched(t *testing.T) {
	d := testDataset(t, 20)
	d.Hours[3] = math.NaN()
	d.Observed[4] = false
	d.Hours[4] = 9
	if _, err := CleanFrom(d, MissingZero, 10); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(d.Hours[3]) || d.Hours[4] != 9 {
		t.Errorf("prefix modified: hours[3]=%v hours[4]=%v", d.Hours[3], d.Hours[4])
	}
}

func TestCleanFromNegativeFrom(t *testing.T) {
	d := testDataset(t, 5)
	d.Hours[0] = math.NaN()
	if _, err := CleanFrom(d, MissingZero, -3); err != nil {
		t.Fatal(err)
	}
	if d.Hours[0] != 0 {
		t.Error("negative from should clamp to 0 and sanitize everything")
	}
}

func TestCloneIsDeepAndFingerprintStable(t *testing.T) {
	d := testDataset(t, 30)
	c := d.Clone()
	if c.Fingerprint() != d.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	if c.Dates != nil {
		t.Error("clone materialized Dates for a contiguous dataset")
	}
	c.Hours[0] += 1
	c.Channels[canbus.ChanSpeed][1] += 1
	c.Observed[2] = !c.Observed[2]
	if c.Fingerprint() == d.Fingerprint() {
		t.Error("mutating the clone changed the original's fingerprint view")
	}
	if d.Hours[0] == c.Hours[0] || d.Channels[canbus.ChanSpeed][1] == c.Channels[canbus.ChanSpeed][1] {
		t.Error("clone shares backing arrays with the original")
	}

	// A subsetted dataset has explicit dates; the clone must keep them.
	sub, err := d.Subset([]int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	sc := sub.Clone()
	if sc.Fingerprint() != sub.Fingerprint() {
		t.Error("clone of dated dataset drifted")
	}
	if sc.Dates == nil {
		t.Error("clone dropped the Dates array")
	}
}

func TestCleanUnknownPolicy(t *testing.T) {
	d := testDataset(t, 5)
	d.Observed[0] = false
	if _, err := Clean(d, MissingPolicy(42)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestMissingPolicyString(t *testing.T) {
	if MissingZero.String() != "zero" || MissingForwardFill.String() != "ffill" ||
		MissingInterpolate.String() != "interpolate" || MissingPolicy(9).String() != "policy(9)" {
		t.Error("policy names wrong")
	}
}

func TestStandardScaler(t *testing.T) {
	var s StandardScaler
	if _, err := s.Transform([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
	xs := []float64{2, 4, 6, 8}
	if err := s.Fit(xs); err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform(xs)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range out {
		mean += v
	}
	if math.Abs(mean) > 1e-12 {
		t.Errorf("scaled mean = %v", mean/4)
	}
	back, err := s.Inverse(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > 1e-9 {
			t.Errorf("inverse round trip: %v != %v", back[i], xs[i])
		}
	}
	if err := s.Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
}

func TestStandardScalerConstant(t *testing.T) {
	var s StandardScaler
	s.Fit([]float64{5, 5, 5})
	out, _ := s.Transform([]float64{5, 5})
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("constant transform = %v", out)
	}
	back, _ := s.Inverse(out)
	if back[0] != 5 {
		t.Errorf("constant inverse = %v", back)
	}
}

func TestMinMaxScaler(t *testing.T) {
	var s MinMaxScaler
	if _, err := s.Transform([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
	xs := []float64{10, 20, 30}
	s.Fit(xs)
	out, _ := s.Transform(xs)
	if out[0] != 0 || out[2] != 1 || math.Abs(out[1]-0.5) > 1e-12 {
		t.Errorf("minmax = %v", out)
	}
	back, _ := s.Inverse(out)
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > 1e-9 {
			t.Errorf("inverse = %v", back)
		}
	}
	var c MinMaxScaler
	c.Fit([]float64{7, 7})
	cv, _ := c.Transform([]float64{7})
	if cv[0] != 0 {
		t.Errorf("constant minmax = %v", cv)
	}
	if _, err := c.Inverse([]float64{0}); err != nil {
		t.Errorf("inverse after fit: %v", err)
	}
	var unfitted MinMaxScaler
	if _, err := unfitted.Inverse([]float64{0}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("want ErrNotFitted, got %v", err)
	}
}

func TestNormalizeChannels(t *testing.T) {
	d := testDataset(t, 100)
	scalers, err := NormalizeChannels(d, func() Scaler { return &StandardScaler{} })
	if err != nil {
		t.Fatal(err)
	}
	if len(scalers) != 10 {
		t.Errorf("scalers = %d", len(scalers))
	}
	// Each channel is now ~zero mean.
	for name, vals := range d.Channels {
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if math.Abs(sum/float64(len(vals))) > 1e-9 {
			t.Errorf("channel %s mean = %v after scaling", name, sum/float64(len(vals)))
		}
	}
}

func TestToTable(t *testing.T) {
	d := testDataset(t, 60)
	tab, err := d.ToTable()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 60 {
		t.Fatalf("rows = %d", tab.Rows())
	}
	if tab.Schema().Len() != 11+10 {
		t.Errorf("columns = %d", tab.Schema().Len())
	}
	hours, err := tab.FloatCol("hours")
	if err != nil {
		t.Fatal(err)
	}
	for i := range hours {
		if hours[i] != d.Hours[i] {
			t.Fatalf("hours column mismatch at %d", i)
		}
	}
	ids, _ := tab.StringCol("vehicle_id")
	if ids[0] != "veh-0" {
		t.Errorf("vehicle_id = %q", ids[0])
	}
}

func TestToTableEmpty(t *testing.T) {
	d := &VehicleDataset{}
	if _, err := d.ToTable(); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("want ErrEmptyDataset, got %v", err)
	}
}
