package etl

import (
	"errors"
	"fmt"
	"math"

	"vup/internal/stats"
)

// ErrNotFitted is returned when Transform is called before Fit.
var ErrNotFitted = errors.New("etl: scaler not fitted")

// Scaler normalizes continuous features (preparation step ii: "to
// normalize the values of continuous features in order to make them
// comparable with each other").
type Scaler interface {
	// Fit learns the scaling parameters from xs.
	Fit(xs []float64) error
	// Transform maps xs into the normalized space.
	Transform(xs []float64) ([]float64, error)
	// Inverse maps normalized values back to the original space.
	Inverse(xs []float64) ([]float64, error)
}

// StandardScaler normalizes to zero mean and unit variance. Constant
// features transform to all zeros.
type StandardScaler struct {
	mean, std float64
	fitted    bool
}

// Fit implements Scaler.
func (s *StandardScaler) Fit(xs []float64) error {
	if len(xs) == 0 {
		return stats.ErrEmpty
	}
	s.mean = stats.Mean(xs)
	s.std = stats.Std(xs)
	if len(xs) < 2 || s.std == 0 || math.IsNaN(s.std) {
		s.std = 0
	}
	s.fitted = true
	return nil
}

// Transform implements Scaler.
func (s *StandardScaler) Transform(xs []float64) ([]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		if s.std == 0 {
			out[i] = 0
			continue
		}
		out[i] = (x - s.mean) / s.std
	}
	return out, nil
}

// Inverse implements Scaler.
func (s *StandardScaler) Inverse(xs []float64) ([]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		if s.std == 0 {
			out[i] = s.mean
			continue
		}
		out[i] = x*s.std + s.mean
	}
	return out, nil
}

// MinMaxScaler normalizes to [0, 1]. Constant features transform to
// all zeros.
type MinMaxScaler struct {
	min, max float64
	fitted   bool
}

// Fit implements Scaler.
func (s *MinMaxScaler) Fit(xs []float64) error {
	if len(xs) == 0 {
		return stats.ErrEmpty
	}
	s.min, s.max = stats.Min(xs), stats.Max(xs)
	s.fitted = true
	return nil
}

// Transform implements Scaler.
func (s *MinMaxScaler) Transform(xs []float64) ([]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	span := s.max - s.min
	out := make([]float64, len(xs))
	for i, x := range xs {
		if span == 0 {
			out[i] = 0
			continue
		}
		out[i] = (x - s.min) / span
	}
	return out, nil
}

// Inverse implements Scaler.
func (s *MinMaxScaler) Inverse(xs []float64) ([]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	span := s.max - s.min
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x*span + s.min
	}
	return out, nil
}

// NormalizeChannels fits a fresh scaler per channel and replaces each
// channel with its normalized values, returning the fitted scalers by
// channel name. make(Scaler) is supplied by the caller, e.g.
// func() Scaler { return &StandardScaler{} }.
func NormalizeChannels(d *VehicleDataset, make func() Scaler) (map[string]Scaler, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	out := map[string]Scaler{}
	for name, vals := range d.Channels {
		sc := make()
		if err := sc.Fit(vals); err != nil {
			return nil, fmt.Errorf("etl: fitting scaler for %q: %w", name, err)
		}
		scaled, err := sc.Transform(vals)
		if err != nil {
			return nil, err
		}
		copy(vals, scaled)
		out[name] = sc
	}
	return out, nil
}
