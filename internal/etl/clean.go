package etl

import (
	"fmt"
	"math"
)

// MissingPolicy selects how Clean repairs unobserved days — days whose
// reports were lost to connectivity outages (preparation step i: "the
// sudden absence of connectivity may affect data collection").
type MissingPolicy int

const (
	// MissingZero treats missing days as idle: hours and engine
	// channels are zeroed. This matches the study's derivation of
	// utilization from received samples.
	MissingZero MissingPolicy = iota
	// MissingForwardFill copies the previous observed day's values.
	MissingForwardFill
	// MissingInterpolate fills gaps linearly between observed
	// neighbours (hours and channels alike).
	MissingInterpolate
)

// String implements fmt.Stringer.
func (p MissingPolicy) String() string {
	switch p {
	case MissingZero:
		return "zero"
	case MissingForwardFill:
		return "ffill"
	case MissingInterpolate:
		return "interpolate"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Clean repairs the dataset in place: NaN and infinite values are
// removed, hours are clamped to [0, 24] and unobserved days are filled
// according to policy (preparation step i). It returns the number of
// repaired days.
func Clean(d *VehicleDataset, policy MissingPolicy) (int, error) {
	return CleanFrom(d, policy, 0)
}

// CleanFrom is the incremental form of Clean for streaming ingest:
// only days at index >= from are sanitized and repaired, so appending
// k days to an n-day dataset costs O(k) plus the neighbour walk —
// which is bounded to the unobserved gap itself, because the backward
// scan stops at the nearest observed day (an already-cleaned prefix
// day at worst). Days before from are never modified; a repair is
// therefore final once made, even if a later append brings the
// observed neighbour an interpolation would have preferred.
// CleanFrom(d, policy, 0) is exactly Clean.
func CleanFrom(d *VehicleDataset, policy MissingPolicy, from int) (int, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if from < 0 {
		from = 0
	}
	repaired := 0
	// Value sanitation first.
	for i := from; i < len(d.Hours); i++ {
		if math.IsNaN(d.Hours[i]) || math.IsInf(d.Hours[i], 0) || d.Hours[i] < 0 {
			d.Hours[i] = 0
		}
		if d.Hours[i] > 24 {
			d.Hours[i] = 24
		}
	}
	for _, vals := range d.Channels {
		for i := from; i < len(vals); i++ {
			if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
				vals[i] = 0
			}
		}
	}
	// Missing-day repair. Every branch writes all columns of the day,
	// so repaired counts exactly the days modified: the fill policies
	// fall back to MissingZero when no observed neighbour exists — a
	// partial fill (hours zeroed, channels left stale) or a skipped-
	// but-counted day would leak unrepaired values into the models.
	for i := from; i < len(d.Observed); i++ {
		if d.Observed[i] {
			continue
		}
		switch policy {
		case MissingZero:
			zeroDay(d, i)
		case MissingForwardFill:
			if prev := lastObservedBefore(d, i); prev >= 0 {
				copyDay(d, i, prev)
			} else {
				zeroDay(d, i)
			}
		case MissingInterpolate:
			prev, next := lastObservedBefore(d, i), firstObservedAfter(d, i)
			switch {
			case prev >= 0 && next >= 0:
				frac := float64(i-prev) / float64(next-prev)
				d.Hours[i] = lerp(d.Hours[prev], d.Hours[next], frac)
				for _, vals := range d.Channels {
					vals[i] = lerp(vals[prev], vals[next], frac)
				}
			case prev >= 0:
				copyDay(d, i, prev)
			case next >= 0:
				copyDay(d, i, next)
			default:
				zeroDay(d, i)
			}
		default:
			return repaired, fmt.Errorf("etl: unknown missing policy %v", policy)
		}
		repaired++
	}
	return repaired, nil
}

// zeroDay applies the MissingZero repair to every column of day i.
func zeroDay(d *VehicleDataset, i int) {
	d.Hours[i] = 0
	for _, vals := range d.Channels {
		vals[i] = 0
	}
}

// copyDay copies every column of day src onto day i.
func copyDay(d *VehicleDataset, i, src int) {
	d.Hours[i] = d.Hours[src]
	for _, vals := range d.Channels {
		vals[i] = vals[src]
	}
}

func lastObservedBefore(d *VehicleDataset, i int) int {
	for j := i - 1; j >= 0; j-- {
		if d.Observed[j] {
			return j
		}
	}
	return -1
}

func firstObservedAfter(d *VehicleDataset, i int) int {
	for j := i + 1; j < len(d.Observed); j++ {
		if d.Observed[j] {
			return j
		}
	}
	return -1
}

func lerp(a, b, frac float64) float64 { return a + (b-a)*frac }
