// Package etl implements the paper's data-preparation pipeline
// (Section 2): (i) cleaning of missing and inconsistent reports,
// (ii) normalization of continuous features, (iii) aggregation to a
// daily granularity, (iv) enrichment with contextual information and
// (v) transformation into a relational format.
package etl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"vup/internal/canbus"
	"vup/internal/fleet"
	"vup/internal/geo"
	"vup/internal/randx"
	"vup/internal/relational"
	"vup/internal/weather"
)

// ErrEmptyDataset is returned when an operation needs at least one day.
var ErrEmptyDataset = errors.New("etl: empty dataset")

// Context holds the contextual enrichment of one day (temporal
// features are per-country: holidays and weekends differ).
type Context struct {
	DayOfWeek  time.Weekday
	WeekOfYear int
	Month      time.Month
	Season     geo.Season
	Year       int
	Holiday    bool
	WorkingDay bool
}

// VehicleDataset is the per-vehicle daily relation the models consume:
// aligned arrays of utilization hours, CAN channel aggregates and
// contextual features, one entry per calendar day.
type VehicleDataset struct {
	VehicleID string
	Type      fleet.Type
	ModelID   string
	Country   string
	Start     time.Time
	Hours     []float64
	// Channels maps channel name to its aligned daily aggregate.
	Channels map[string][]float64
	// Context holds the per-day contextual enrichment.
	Context []Context
	// Observed flags days for which at least one report arrived; days
	// lost to connectivity outages are false and are repaired by the
	// cleaning step.
	Observed []bool
	// Dates, when non-nil, holds the explicit calendar date of every
	// day. It is nil for contiguous datasets (date = Start + i days)
	// and populated by Subset, whose kept days are generally not
	// contiguous (the next-working-day view).
	Dates []time.Time
}

// Len returns the number of days.
func (d *VehicleDataset) Len() int { return len(d.Hours) }

// Date returns the calendar date of day index i.
func (d *VehicleDataset) Date(i int) time.Time {
	if d.Dates != nil && i >= 0 && i < len(d.Dates) {
		return d.Dates[i]
	}
	return d.Start.AddDate(0, 0, i)
}

// SizeBytes estimates the dataset's resident heap footprint: the
// per-day arrays (hours, observed, context, channels, explicit dates)
// plus string and map headers. It is a deterministic accounting
// estimate, not a runtime measurement — the server's resident-memory
// budget needs a stable number that two loads of the same bytes agree
// on, which unsafe.Sizeof-walking live allocations would not give.
func (d *VehicleDataset) SizeBytes() int64 {
	const (
		headerBytes  = 96 // struct itself: strings, Start, slice headers
		contextBytes = 56 // Context: 5 int-sized fields + 2 bools, padded
		sliceHeader  = 24
		mapEntry     = 48 // map bucket share + string key header
	)
	n := int64(d.Len())
	size := int64(headerBytes)
	size += n * 8 // Hours
	size += n     // Observed
	size += n * contextBytes
	for name := range d.Channels {
		size += mapEntry + int64(len(name)) + sliceHeader + n*8
	}
	if d.Dates != nil {
		size += sliceHeader + n*24 // time.Time is 3 words
	}
	size += int64(len(d.VehicleID) + len(d.ModelID) + len(d.Country))
	return size
}

// Validate checks internal alignment.
func (d *VehicleDataset) Validate() error {
	n := len(d.Hours)
	if n == 0 {
		return ErrEmptyDataset
	}
	if len(d.Context) != n || len(d.Observed) != n {
		return fmt.Errorf("etl: misaligned dataset: hours %d, context %d, observed %d", n, len(d.Context), len(d.Observed))
	}
	for name, vals := range d.Channels {
		if len(vals) != n {
			return fmt.Errorf("etl: misaligned channel %q: %d values for %d days", name, len(vals), n)
		}
	}
	if d.Dates != nil && len(d.Dates) != n {
		return fmt.Errorf("etl: misaligned dates: %d for %d days", len(d.Dates), n)
	}
	return nil
}

// Fingerprint returns a 64-bit FNV-1a hash over the dataset's identity
// and every value the prediction pipeline reads: hours, channel
// aggregates (in sorted channel order), observed flags and explicit
// dates. Datasets with equal fingerprints are interchangeable as model
// input, which makes the hash the data component of trained-artifact
// cache keys (internal/server's forecast cache). Context is derived
// from country and dates, both covered, so it is not hashed again.
func (d *VehicleDataset) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	writeStr(d.VehicleID)
	writeStr(d.ModelID)
	writeStr(d.Country)
	writeU64(uint64(d.Type))
	writeU64(uint64(d.Start.Unix()))
	writeU64(uint64(len(d.Hours)))
	for _, v := range d.Hours {
		writeU64(math.Float64bits(v))
	}
	names := make([]string, 0, len(d.Channels))
	for name := range d.Channels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeStr(name)
		for _, v := range d.Channels[name] {
			writeU64(math.Float64bits(v))
		}
	}
	for _, o := range d.Observed {
		if o {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	for _, t := range d.Dates {
		writeU64(uint64(t.Unix()))
	}
	return h.Sum64()
}

// Enrich fills the Context array from the dataset's country and dates
// (preparation step iv).
func (d *VehicleDataset) Enrich() {
	n := len(d.Hours)
	d.Context = make([]Context, n)
	country, err := geo.Lookup(d.Country)
	hemisphere := geo.Northern
	if err == nil {
		hemisphere = country.Hemisphere
	}
	for i := 0; i < n; i++ {
		date := d.Date(i)
		holiday, _ := geo.IsHoliday(d.Country, date)
		d.Context[i] = Context{
			DayOfWeek:  date.Weekday(),
			WeekOfYear: geo.WeekOfYear(date),
			Month:      date.Month(),
			Season:     geo.SeasonOf(date, hemisphere),
			Year:       date.Year(),
			Holiday:    holiday,
			WorkingDay: geo.IsWorkingDay(d.Country, date),
		}
	}
}

// FromUsage builds a dataset from a generated usage series using the
// fast channel path. rng drives the per-day sensor noise.
func FromUsage(u fleet.Unit, usage []fleet.DayUsage, rng *randx.RNG) (*VehicleDataset, error) {
	if len(usage) == 0 {
		return nil, ErrEmptyDataset
	}
	d := &VehicleDataset{
		VehicleID: u.Vehicle.ID,
		Type:      u.Vehicle.Model.Type,
		ModelID:   u.Vehicle.Model.ID(),
		Country:   u.Vehicle.Country,
		Start:     usage[0].Date,
		Hours:     make([]float64, len(usage)),
		Channels:  map[string][]float64{},
		Observed:  make([]bool, len(usage)),
	}
	for _, ch := range canbus.AnalogChannels() {
		d.Channels[ch] = make([]float64, len(usage))
	}
	for i, day := range usage {
		d.Hours[i] = day.Hours
		d.Observed[i] = true
		for name, v := range fleet.DailyChannels(u.Vehicle.Model.Type, day.Hours, rng) {
			d.Channels[name][i] = v
		}
	}
	d.Enrich()
	return d, nil
}

// FromReports builds a dataset by daily aggregation of 10-minute
// reports (preparation step iii): daily utilization hours are the sum
// of engine-on time, channel aggregates are sample-weighted means.
// Days in [start, start+days) without any report are marked
// unobserved, to be repaired by Clean.
func FromReports(v fleet.Vehicle, reports []canbus.Report, start time.Time, days int) (*VehicleDataset, error) {
	if days <= 0 {
		return nil, fmt.Errorf("etl: non-positive day count %d", days)
	}
	start = time.Date(start.Year(), start.Month(), start.Day(), 0, 0, 0, 0, time.UTC)
	d := &VehicleDataset{
		VehicleID: v.ID,
		Type:      v.Model.Type,
		ModelID:   v.Model.ID(),
		Country:   v.Country,
		Start:     start,
		Hours:     make([]float64, days),
		Channels:  map[string][]float64{},
		Observed:  make([]bool, days),
	}
	sums := map[string][]float64{}
	weights := map[string][]float64{}
	for _, ch := range canbus.AnalogChannels() {
		d.Channels[ch] = make([]float64, days)
		sums[ch] = make([]float64, days)
		weights[ch] = make([]float64, days)
	}
	for _, r := range reports {
		idx := int(r.Start.Sub(start).Hours() / 24)
		if idx < 0 || idx >= days {
			continue // outside the observation period
		}
		d.Observed[idx] = true
		d.Hours[idx] += r.EngineOnSeconds / 3600
		for name, cs := range r.Channels {
			if _, ok := sums[name]; !ok {
				continue // channel outside the study's feature set
			}
			if cs.Samples <= 0 || math.IsNaN(cs.Mean) {
				continue
			}
			sums[name][idx] += cs.Mean * float64(cs.Samples)
			weights[name][idx] += float64(cs.Samples)
		}
	}
	for name := range sums {
		for i := 0; i < days; i++ {
			if weights[name][i] > 0 {
				d.Channels[name][i] = sums[name][i] / weights[name][i]
			}
		}
	}
	d.Enrich()
	return d, nil
}

// ChanFaultCount is the channel name under which the daily count of
// active diagnostic trouble codes is attached.
const ChanFaultCount = "fault_count"

// AttachFaults adds the aligned per-day active-fault counts as the
// ChanFaultCount channel (the study's "Diagnostic Messages" feature
// class). counts must cover at least Len() days.
func (d *VehicleDataset) AttachFaults(counts []int) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if len(counts) < d.Len() {
		return fmt.Errorf("etl: fault series of %d days for %d-day dataset", len(counts), d.Len())
	}
	vals := make([]float64, d.Len())
	for i := 0; i < d.Len(); i++ {
		vals[i] = float64(counts[i])
	}
	d.Channels[ChanFaultCount] = vals
	return nil
}

// AttachWeather adds the aligned daily weather series as the channels
// weather.ChanTemp and weather.ChanPrecip (the paper's future-work
// enrichment). wx must cover at least Len() days.
func (d *VehicleDataset) AttachWeather(wx []weather.Day) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if len(wx) < d.Len() {
		return fmt.Errorf("etl: weather series of %d days for %d-day dataset", len(wx), d.Len())
	}
	temp := make([]float64, d.Len())
	precip := make([]float64, d.Len())
	for i := 0; i < d.Len(); i++ {
		temp[i] = wx[i].TempC
		precip[i] = wx[i].PrecipMM
	}
	d.Channels[weather.ChanTemp] = temp
	d.Channels[weather.ChanPrecip] = precip
	return nil
}

// Clone returns a deep copy sharing no mutable state with d. Unlike
// Subset over the identity index, Clone preserves a nil Dates array,
// so the copy's Fingerprint equals the original's — which is what the
// store's copy-on-write append path needs to keep cache keys stable.
func (d *VehicleDataset) Clone() *VehicleDataset {
	out := &VehicleDataset{
		VehicleID: d.VehicleID,
		Type:      d.Type,
		ModelID:   d.ModelID,
		Country:   d.Country,
		Start:     d.Start,
		Hours:     append([]float64(nil), d.Hours...),
		Channels:  make(map[string][]float64, len(d.Channels)),
		Context:   append([]Context(nil), d.Context...),
		Observed:  append([]bool(nil), d.Observed...),
	}
	for name, vals := range d.Channels {
		out.Channels[name] = append([]float64(nil), vals...)
	}
	if d.Dates != nil {
		out.Dates = append([]time.Time(nil), d.Dates...)
	}
	return out
}

// Subset returns a new dataset holding only the days at the given
// indices, in the given order. Each kept day retains its true calendar
// date (the Dates array) and context, so a compacted next-working-day
// series still knows each day's weekday, holiday status and date.
func (d *VehicleDataset) Subset(indices []int) (*VehicleDataset, error) {
	if len(indices) == 0 {
		return nil, ErrEmptyDataset
	}
	out := &VehicleDataset{
		VehicleID: d.VehicleID,
		Type:      d.Type,
		ModelID:   d.ModelID,
		Country:   d.Country,
		Start:     d.Date(indices[0]),
		Hours:     make([]float64, len(indices)),
		Channels:  make(map[string][]float64, len(d.Channels)),
		Context:   make([]Context, len(indices)),
		Observed:  make([]bool, len(indices)),
		Dates:     make([]time.Time, len(indices)),
	}
	for name := range d.Channels {
		out.Channels[name] = make([]float64, len(indices))
	}
	for k, i := range indices {
		if i < 0 || i >= d.Len() {
			return nil, fmt.Errorf("etl: subset index %d out of range [0,%d)", i, d.Len())
		}
		out.Hours[k] = d.Hours[i]
		out.Context[k] = d.Context[i]
		out.Observed[k] = d.Observed[i]
		out.Dates[k] = d.Date(i)
		for name, vals := range d.Channels {
			out.Channels[name][k] = vals[i]
		}
	}
	return out, nil
}

// ToTable transforms the dataset into its relational form
// (preparation step v). The schema is one row per day with the
// utilization target, every channel and the contextual features.
func (d *VehicleDataset) ToTable() (*relational.Table, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cols := []relational.Column{
		{Name: "vehicle_id", Type: relational.String},
		{Name: "date", Type: relational.Time},
		{Name: "hours", Type: relational.Float},
		{Name: "observed", Type: relational.Bool},
		{Name: "day_of_week", Type: relational.Int},
		{Name: "week_of_year", Type: relational.Int},
		{Name: "month", Type: relational.Int},
		{Name: "season", Type: relational.Int},
		{Name: "year", Type: relational.Int},
		{Name: "holiday", Type: relational.Bool},
		{Name: "working_day", Type: relational.Bool},
	}
	channels := canbus.AnalogChannels()
	for _, ch := range channels {
		cols = append(cols, relational.Column{Name: ch, Type: relational.Float})
	}
	schema, err := relational.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	tab := relational.NewTable(schema)
	for i := 0; i < d.Len(); i++ {
		ctx := d.Context[i]
		row := []relational.Value{
			d.VehicleID,
			d.Date(i),
			d.Hours[i],
			d.Observed[i],
			int64(ctx.DayOfWeek),
			int64(ctx.WeekOfYear),
			int64(ctx.Month),
			int64(ctx.Season),
			int64(ctx.Year),
			ctx.Holiday,
			ctx.WorkingDay,
		}
		for _, ch := range channels {
			row = append(row, d.Channels[ch][i])
		}
		if err := tab.Append(row...); err != nil {
			return nil, err
		}
	}
	return tab, nil
}
