package etl

import (
	"testing"

	"vup/internal/fleet"
	"vup/internal/weather"
)

func TestAttachWeather(t *testing.T) {
	d := testDataset(t, 60)
	gen := weather.NewGenerator(d.Country, 1)
	wx, err := gen.Simulate(fleet.StudyStart, 60)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachWeather(wx); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	temp := d.Channels[weather.ChanTemp]
	precip := d.Channels[weather.ChanPrecip]
	if len(temp) != 60 || len(precip) != 60 {
		t.Fatalf("weather channels misaligned: %d %d", len(temp), len(precip))
	}
	for i := range temp {
		if temp[i] != wx[i].TempC || precip[i] != wx[i].PrecipMM {
			t.Fatalf("day %d mismatch", i)
		}
	}
	// A longer weather series is fine; a shorter one is not.
	if err := d.AttachWeather(wx[:59]); err == nil {
		t.Error("short weather series accepted")
	}
	empty := &VehicleDataset{}
	if err := empty.AttachWeather(wx); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestAttachFaults(t *testing.T) {
	d := testDataset(t, 30)
	counts := make([]int, 30)
	counts[3] = 2
	counts[10] = 1
	if err := d.AttachFaults(counts); err != nil {
		t.Fatal(err)
	}
	vals := d.Channels[ChanFaultCount]
	if vals[3] != 2 || vals[10] != 1 || vals[0] != 0 {
		t.Errorf("fault channel = %v", vals[:12])
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := d.AttachFaults(counts[:10]); err == nil {
		t.Error("short fault series accepted")
	}
}

// Property: Clean is idempotent — a second pass with the same policy
// changes nothing.
func TestCleanIdempotentProperty(t *testing.T) {
	for _, policy := range []MissingPolicy{MissingZero, MissingForwardFill, MissingInterpolate} {
		d := testDataset(t, 120)
		// Degrade: unobserved stretches and bad values.
		for i := 20; i < 27; i++ {
			d.Observed[i] = false
		}
		d.Observed[0] = false
		d.Observed[119] = false
		d.Hours[50] = -3
		d.Hours[51] = 99
		if _, err := Clean(d, policy); err != nil {
			t.Fatal(err)
		}
		snapshot := append([]float64(nil), d.Hours...)
		chanSnap := map[string][]float64{}
		for name, vals := range d.Channels {
			chanSnap[name] = append([]float64(nil), vals...)
		}
		repaired, err := Clean(d, policy)
		if err != nil {
			t.Fatal(err)
		}
		// The second pass still "repairs" the same unobserved days but
		// must not change any value.
		_ = repaired
		for i := range snapshot {
			if d.Hours[i] != snapshot[i] {
				t.Fatalf("policy %v: hours changed at %d on second pass", policy, i)
			}
		}
		for name, vals := range d.Channels {
			for i := range vals {
				if vals[i] != chanSnap[name][i] {
					t.Fatalf("policy %v: channel %s changed at %d", policy, name, i)
				}
			}
		}
	}
}

func TestSubset(t *testing.T) {
	d := testDataset(t, 40)
	sub, err := d.Subset([]int{5, 7, 20})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 {
		t.Fatalf("len = %d", sub.Len())
	}
	if sub.Hours[0] != d.Hours[5] || sub.Hours[2] != d.Hours[20] {
		t.Error("hours not copied by index")
	}
	if sub.Context[1] != d.Context[7] {
		t.Error("context not carried over")
	}
	if !sub.Start.Equal(d.Date(5)) {
		t.Errorf("start = %v", sub.Start)
	}
	for name := range d.Channels {
		if sub.Channels[name][2] != d.Channels[name][20] {
			t.Fatalf("channel %s not subset correctly", name)
		}
	}
	if _, err := d.Subset(nil); err == nil {
		t.Error("empty subset accepted")
	}
	if _, err := d.Subset([]int{99}); err == nil {
		t.Error("out-of-range index accepted")
	}
}
