package geo

import "time"

// Season is a meteorological season. Values are hemisphere-adjusted:
// July in Australia is Winter.
type Season int

const (
	Winter Season = iota
	Spring
	Summer
	Autumn
)

// String implements fmt.Stringer.
func (s Season) String() string {
	switch s {
	case Winter:
		return "winter"
	case Spring:
		return "spring"
	case Summer:
		return "summer"
	case Autumn:
		return "autumn"
	default:
		return "unknown"
	}
}

// SeasonOf returns the meteorological season of date in the given
// hemisphere (Dec-Feb = northern winter, and so on).
func SeasonOf(date time.Time, h Hemisphere) Season {
	var s Season
	switch date.Month() {
	case time.December, time.January, time.February:
		s = Winter
	case time.March, time.April, time.May:
		s = Spring
	case time.June, time.July, time.August:
		s = Summer
	default:
		s = Autumn
	}
	if h == Southern {
		s = (s + 2) % 4
	}
	return s
}

// WeekOfYear returns the ISO 8601 week number of date.
func WeekOfYear(date time.Time) int {
	_, week := date.ISOWeek()
	return week
}
