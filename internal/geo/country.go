// Package geo provides the contextual-information substrate of the
// study: a registry of countries with hemisphere, region and weekend
// convention, per-country holiday calendars (fixed-date and
// Easter-derived), and meteorological seasons. The paper enriches CAN
// bus data with exactly this information (Section 2, "Contextual
// information"), and observes e.g. that northern-hemisphere vehicles
// idle most in December/January.
package geo

import (
	"fmt"
	"sort"
	"time"
)

// Hemisphere of a country's main landmass.
type Hemisphere int

const (
	Northern Hemisphere = iota
	Southern
)

// String implements fmt.Stringer.
func (h Hemisphere) String() string {
	if h == Southern {
		return "southern"
	}
	return "northern"
}

// Country describes one of the deployment countries of the fleet.
type Country struct {
	Code       string // ISO 3166-1 alpha-2
	Name       string
	Region     string
	Hemisphere Hemisphere
	// Weekend holds the non-working days of the week (most countries:
	// Saturday+Sunday; some Middle-East countries: Friday+Saturday).
	Weekend [2]time.Weekday
}

// IsWeekend reports whether d falls on this country's weekend.
func (c Country) IsWeekend(d time.Time) bool {
	wd := d.Weekday()
	return wd == c.Weekend[0] || wd == c.Weekend[1]
}

var satSun = [2]time.Weekday{time.Saturday, time.Sunday}
var friSat = [2]time.Weekday{time.Friday, time.Saturday}

// countries is the registry. The study spans 151 countries; this
// table models 146 of them, covering every region, both hemispheres
// and both weekend conventions. Weekend conventions reflect the study
// period (2015-2018): the Gulf states still observed Friday/Saturday
// (Iran's Thursday/Friday is approximated as Friday/Saturday).
var countries = []Country{
	{"AD", "Andorra", "Europe", Northern, satSun},
	{"AL", "Albania", "Europe", Northern, satSun},
	{"AT", "Austria", "Europe", Northern, satSun},
	{"BA", "Bosnia and Herzegovina", "Europe", Northern, satSun},
	{"BE", "Belgium", "Europe", Northern, satSun},
	{"BG", "Bulgaria", "Europe", Northern, satSun},
	{"BY", "Belarus", "Europe", Northern, satSun},
	{"CH", "Switzerland", "Europe", Northern, satSun},
	{"CY", "Cyprus", "Europe", Northern, satSun},
	{"CZ", "Czechia", "Europe", Northern, satSun},
	{"DE", "Germany", "Europe", Northern, satSun},
	{"DK", "Denmark", "Europe", Northern, satSun},
	{"EE", "Estonia", "Europe", Northern, satSun},
	{"ES", "Spain", "Europe", Northern, satSun},
	{"FI", "Finland", "Europe", Northern, satSun},
	{"FR", "France", "Europe", Northern, satSun},
	{"GB", "United Kingdom", "Europe", Northern, satSun},
	{"GR", "Greece", "Europe", Northern, satSun},
	{"HR", "Croatia", "Europe", Northern, satSun},
	{"HU", "Hungary", "Europe", Northern, satSun},
	{"IE", "Ireland", "Europe", Northern, satSun},
	{"IS", "Iceland", "Europe", Northern, satSun},
	{"IT", "Italy", "Europe", Northern, satSun},
	{"LT", "Lithuania", "Europe", Northern, satSun},
	{"LU", "Luxembourg", "Europe", Northern, satSun},
	{"LV", "Latvia", "Europe", Northern, satSun},
	{"MD", "Moldova", "Europe", Northern, satSun},
	{"ME", "Montenegro", "Europe", Northern, satSun},
	{"MK", "North Macedonia", "Europe", Northern, satSun},
	{"MT", "Malta", "Europe", Northern, satSun},
	{"NL", "Netherlands", "Europe", Northern, satSun},
	{"NO", "Norway", "Europe", Northern, satSun},
	{"PL", "Poland", "Europe", Northern, satSun},
	{"PT", "Portugal", "Europe", Northern, satSun},
	{"RO", "Romania", "Europe", Northern, satSun},
	{"RS", "Serbia", "Europe", Northern, satSun},
	{"RU", "Russia", "Europe", Northern, satSun},
	{"SE", "Sweden", "Europe", Northern, satSun},
	{"SI", "Slovenia", "Europe", Northern, satSun},
	{"SK", "Slovakia", "Europe", Northern, satSun},
	{"TR", "Turkey", "Europe", Northern, satSun},
	{"UA", "Ukraine", "Europe", Northern, satSun},
	{"CA", "Canada", "North America", Northern, satSun},
	{"CR", "Costa Rica", "North America", Northern, satSun},
	{"CU", "Cuba", "North America", Northern, satSun},
	{"DO", "Dominican Republic", "North America", Northern, satSun},
	{"GT", "Guatemala", "North America", Northern, satSun},
	{"HN", "Honduras", "North America", Northern, satSun},
	{"JM", "Jamaica", "North America", Northern, satSun},
	{"MX", "Mexico", "North America", Northern, satSun},
	{"NI", "Nicaragua", "North America", Northern, satSun},
	{"PA", "Panama", "North America", Northern, satSun},
	{"SV", "El Salvador", "North America", Northern, satSun},
	{"TT", "Trinidad and Tobago", "North America", Northern, satSun},
	{"US", "United States", "North America", Northern, satSun},
	{"AR", "Argentina", "South America", Southern, satSun},
	{"BO", "Bolivia", "South America", Southern, satSun},
	{"BR", "Brazil", "South America", Southern, satSun},
	{"CL", "Chile", "South America", Southern, satSun},
	{"CO", "Colombia", "South America", Northern, satSun},
	{"EC", "Ecuador", "South America", Southern, satSun},
	{"GY", "Guyana", "South America", Northern, satSun},
	{"PE", "Peru", "South America", Southern, satSun},
	{"PY", "Paraguay", "South America", Southern, satSun},
	{"SR", "Suriname", "South America", Northern, satSun},
	{"UY", "Uruguay", "South America", Southern, satSun},
	{"VE", "Venezuela", "South America", Northern, satSun},
	{"AO", "Angola", "Africa", Southern, satSun},
	{"BF", "Burkina Faso", "Africa", Northern, satSun},
	{"BJ", "Benin", "Africa", Northern, satSun},
	{"BW", "Botswana", "Africa", Southern, satSun},
	{"CD", "DR Congo", "Africa", Southern, satSun},
	{"CI", "Ivory Coast", "Africa", Northern, satSun},
	{"CM", "Cameroon", "Africa", Northern, satSun},
	{"DZ", "Algeria", "Africa", Northern, friSat},
	{"EG", "Egypt", "Africa", Northern, friSat},
	{"ET", "Ethiopia", "Africa", Northern, satSun},
	{"GA", "Gabon", "Africa", Southern, satSun},
	{"GH", "Ghana", "Africa", Northern, satSun},
	{"GN", "Guinea", "Africa", Northern, satSun},
	{"KE", "Kenya", "Africa", Southern, satSun},
	{"LY", "Libya", "Africa", Northern, friSat},
	{"MA", "Morocco", "Africa", Northern, satSun},
	{"MG", "Madagascar", "Africa", Southern, satSun},
	{"ML", "Mali", "Africa", Northern, satSun},
	{"MZ", "Mozambique", "Africa", Southern, satSun},
	{"NA", "Namibia", "Africa", Southern, satSun},
	{"NE", "Niger", "Africa", Northern, satSun},
	{"NG", "Nigeria", "Africa", Northern, satSun},
	{"RW", "Rwanda", "Africa", Southern, satSun},
	{"SD", "Sudan", "Africa", Northern, friSat},
	{"SN", "Senegal", "Africa", Northern, satSun},
	{"TN", "Tunisia", "Africa", Northern, satSun},
	{"TZ", "Tanzania", "Africa", Southern, satSun},
	{"UG", "Uganda", "Africa", Northern, satSun},
	{"ZA", "South Africa", "Africa", Southern, satSun},
	{"ZM", "Zambia", "Africa", Southern, satSun},
	{"ZW", "Zimbabwe", "Africa", Southern, satSun},
	{"AE", "United Arab Emirates", "Middle East", Northern, friSat},
	{"BH", "Bahrain", "Middle East", Northern, friSat},
	{"IL", "Israel", "Middle East", Northern, friSat},
	{"IQ", "Iraq", "Middle East", Northern, friSat},
	{"IR", "Iran", "Middle East", Northern, friSat},
	{"JO", "Jordan", "Middle East", Northern, friSat},
	{"KW", "Kuwait", "Middle East", Northern, friSat},
	{"LB", "Lebanon", "Middle East", Northern, satSun},
	{"OM", "Oman", "Middle East", Northern, friSat},
	{"QA", "Qatar", "Middle East", Northern, friSat},
	{"SA", "Saudi Arabia", "Middle East", Northern, friSat},
	{"SY", "Syria", "Middle East", Northern, friSat},
	{"YE", "Yemen", "Middle East", Northern, friSat},
	{"AF", "Afghanistan", "Asia", Northern, friSat},
	{"AM", "Armenia", "Asia", Northern, satSun},
	{"AZ", "Azerbaijan", "Asia", Northern, satSun},
	{"BD", "Bangladesh", "Asia", Northern, friSat},
	{"CN", "China", "Asia", Northern, satSun},
	{"GE", "Georgia", "Asia", Northern, satSun},
	{"HK", "Hong Kong", "Asia", Northern, satSun},
	{"ID", "Indonesia", "Asia", Southern, satSun},
	{"IN", "India", "Asia", Northern, satSun},
	{"JP", "Japan", "Asia", Northern, satSun},
	{"KG", "Kyrgyzstan", "Asia", Northern, satSun},
	{"KH", "Cambodia", "Asia", Northern, satSun},
	{"KR", "South Korea", "Asia", Northern, satSun},
	{"KZ", "Kazakhstan", "Asia", Northern, satSun},
	{"LA", "Laos", "Asia", Northern, satSun},
	{"LK", "Sri Lanka", "Asia", Northern, satSun},
	{"MM", "Myanmar", "Asia", Northern, satSun},
	{"MN", "Mongolia", "Asia", Northern, satSun},
	{"MV", "Maldives", "Asia", Northern, friSat},
	{"MY", "Malaysia", "Asia", Northern, satSun},
	{"NP", "Nepal", "Asia", Northern, satSun},
	{"PH", "Philippines", "Asia", Northern, satSun},
	{"PK", "Pakistan", "Asia", Northern, satSun},
	{"SG", "Singapore", "Asia", Northern, satSun},
	{"TH", "Thailand", "Asia", Northern, satSun},
	{"TJ", "Tajikistan", "Asia", Northern, satSun},
	{"TM", "Turkmenistan", "Asia", Northern, satSun},
	{"TW", "Taiwan", "Asia", Northern, satSun},
	{"UZ", "Uzbekistan", "Asia", Northern, satSun},
	{"VN", "Vietnam", "Asia", Northern, satSun},
	{"AU", "Australia", "Oceania", Southern, satSun},
	{"FJ", "Fiji", "Oceania", Southern, satSun},
	{"NZ", "New Zealand", "Oceania", Southern, satSun},
	{"PG", "Papua New Guinea", "Oceania", Southern, satSun},
	{"SB", "Solomon Islands", "Oceania", Southern, satSun},
}

var byCode = func() map[string]Country {
	m := make(map[string]Country, len(countries))
	for _, c := range countries {
		m[c.Code] = c
	}
	return m
}()

// Lookup returns the country with the given ISO code.
func Lookup(code string) (Country, error) {
	c, ok := byCode[code]
	if !ok {
		return Country{}, fmt.Errorf("geo: unknown country code %q", code)
	}
	return c, nil
}

// All returns every registered country, sorted by code.
func All() []Country {
	out := append([]Country(nil), countries...)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Codes returns every registered country code, sorted.
func Codes() []string {
	out := make([]string, 0, len(countries))
	for _, c := range All() {
		out = append(out, c.Code)
	}
	return out
}
