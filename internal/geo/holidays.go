package geo

import "time"

// Easter returns the Gregorian date of Easter Sunday for the given
// year, using the anonymous Gregorian (Meeus/Jones/Butcher) computus.
func Easter(year int) time.Time {
	a := year % 19
	b := year / 100
	c := year % 100
	d := b / 4
	e := b % 4
	f := (b + 8) / 25
	g := (b - f + 1) / 3
	h := (19*a + b - d - g + 15) % 30
	i := c / 4
	k := c % 4
	l := (32 + 2*e + 2*i - h - k) % 7
	m := (a + 11*h + 22*l) / 451
	month := (h + l - 7*m + 114) / 31
	day := (h+l-7*m+114)%31 + 1
	return time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
}

// holidayRule describes one recurring public holiday.
type holidayRule struct {
	name string
	// For fixed-date rules, month/day are set. For Easter-relative
	// rules, easterOffset is the day offset from Easter Sunday and
	// month is zero.
	month        time.Month
	day          int
	easterOffset int
}

func fixed(name string, m time.Month, d int) holidayRule {
	return holidayRule{name: name, month: m, day: d}
}

func easterRel(name string, offset int) holidayRule {
	return holidayRule{name: name, easterOffset: offset}
}

// common holidays observed nearly everywhere the fleet operates.
var commonRules = []holidayRule{
	fixed("New Year's Day", time.January, 1),
	fixed("Labour Day", time.May, 1),
}

// christianRules apply in countries with Christian-tradition calendars.
var christianRules = []holidayRule{
	fixed("Christmas Day", time.December, 25),
	fixed("St. Stephen's Day", time.December, 26),
	easterRel("Good Friday", -2),
	easterRel("Easter Monday", +1),
}

// extraRules holds country-specific national holidays.
var extraRules = map[string][]holidayRule{
	"IT": {fixed("Epiphany", time.January, 6), fixed("Liberation Day", time.April, 25), fixed("Republic Day", time.June, 2), fixed("Ferragosto", time.August, 15), fixed("All Saints", time.November, 1), fixed("Immaculate Conception", time.December, 8)},
	"DE": {fixed("German Unity Day", time.October, 3)},
	"FR": {fixed("Bastille Day", time.July, 14), fixed("Armistice Day", time.November, 11), fixed("Assumption", time.August, 15)},
	"ES": {fixed("Hispanic Day", time.October, 12), fixed("Constitution Day", time.December, 6)},
	"US": {fixed("Independence Day", time.July, 4), fixed("Veterans Day", time.November, 11)},
	"CA": {fixed("Canada Day", time.July, 1)},
	"BR": {fixed("Independence Day", time.September, 7), fixed("Republic Day", time.November, 15)},
	"AR": {fixed("Revolution Day", time.May, 25), fixed("Independence Day", time.July, 9)},
	"AU": {fixed("Australia Day", time.January, 26), fixed("ANZAC Day", time.April, 25)},
	"NZ": {fixed("Waitangi Day", time.February, 6), fixed("ANZAC Day", time.April, 25)},
	"IN": {fixed("Republic Day", time.January, 26), fixed("Independence Day", time.August, 15), fixed("Gandhi Jayanti", time.October, 2)},
	"JP": {fixed("Foundation Day", time.February, 11), fixed("Showa Day", time.April, 29), fixed("Culture Day", time.November, 3)},
	"CN": {fixed("National Day", time.October, 1), fixed("National Day Holiday", time.October, 2), fixed("National Day Holiday", time.October, 3)},
	"RU": {fixed("Defender Day", time.February, 23), fixed("Victory Day", time.May, 9), fixed("Russia Day", time.June, 12)},
	"TR": {fixed("Republic Day", time.October, 29), fixed("Victory Day", time.August, 30)},
	"ZA": {fixed("Freedom Day", time.April, 27), fixed("Heritage Day", time.September, 24)},
	"MX": {fixed("Independence Day", time.September, 16), fixed("Revolution Day", time.November, 20)},
	"GB": {fixed("Boxing Day", time.December, 26)},
}

// nonChristianCalendar lists countries where the Christian holiday set
// is not observed as public holidays.
var nonChristianCalendar = map[string]bool{
	"EG": true, "SA": true, "AE": true, "QA": true, "IL": true,
	"IN": true, "CN": true, "JP": true, "TH": true, "VN": true,
	"ID": true, "MY": true, "TR": true, "MA": true,
}

// IsHoliday reports whether date is a public holiday in the country
// with the given code, along with the holiday's name. Unknown country
// codes observe only the common rules.
func IsHoliday(code string, date time.Time) (bool, string) {
	y, m, d := date.Date()
	check := func(rules []holidayRule) (bool, string) {
		for _, r := range rules {
			if r.month != 0 {
				if r.month == m && r.day == d {
					return true, r.name
				}
				continue
			}
			e := Easter(y).AddDate(0, 0, r.easterOffset)
			em, ed := e.Month(), e.Day()
			if em == m && ed == d {
				return true, r.name
			}
		}
		return false, ""
	}
	if ok, name := check(commonRules); ok {
		return true, name
	}
	if !nonChristianCalendar[code] {
		if ok, name := check(christianRules); ok {
			return true, name
		}
	}
	if rules, ok := extraRules[code]; ok {
		if ok, name := check(rules); ok {
			return true, name
		}
	}
	return false, ""
}

// IsWorkingDay reports whether date is a working day in the given
// country: neither a weekend day nor a public holiday. Unknown country
// codes default to a Saturday/Sunday weekend.
func IsWorkingDay(code string, date time.Time) bool {
	c, err := Lookup(code)
	if err != nil {
		c = Country{Weekend: satSun}
	}
	if c.IsWeekend(date) {
		return false
	}
	holiday, _ := IsHoliday(code, date)
	return !holiday
}
