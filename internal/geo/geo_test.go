package geo

import (
	"testing"
	"time"
)

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func TestLookup(t *testing.T) {
	c, err := Lookup("IT")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "Italy" || c.Hemisphere != Northern || c.Region != "Europe" {
		t.Errorf("Italy = %+v", c)
	}
	if _, err := Lookup("XX"); err == nil {
		t.Error("expected error for unknown code")
	}
}

func TestAllSortedAndUnique(t *testing.T) {
	all := All()
	if len(all) < 40 {
		t.Fatalf("registry too small: %d", len(all))
	}
	seen := map[string]bool{}
	prev := ""
	for _, c := range all {
		if c.Code <= prev {
			t.Fatalf("not sorted at %s", c.Code)
		}
		if seen[c.Code] {
			t.Fatalf("duplicate %s", c.Code)
		}
		seen[c.Code] = true
		prev = c.Code
	}
	if len(Codes()) != len(all) {
		t.Error("Codes length mismatch")
	}
}

func TestHemispheres(t *testing.T) {
	au, _ := Lookup("AU")
	if au.Hemisphere != Southern {
		t.Error("Australia should be southern")
	}
	de, _ := Lookup("DE")
	if de.Hemisphere != Northern {
		t.Error("Germany should be northern")
	}
	if Northern.String() != "northern" || Southern.String() != "southern" {
		t.Error("Hemisphere String wrong")
	}
}

func TestWeekendConventions(t *testing.T) {
	it, _ := Lookup("IT")
	// 2017-01-07 is a Saturday, 2017-01-09 a Monday.
	if !it.IsWeekend(date(2017, time.January, 7)) {
		t.Error("Italian Saturday should be weekend")
	}
	if it.IsWeekend(date(2017, time.January, 9)) {
		t.Error("Italian Monday should not be weekend")
	}
	sa, _ := Lookup("SA")
	// 2017-01-06 is a Friday.
	if !sa.IsWeekend(date(2017, time.January, 6)) {
		t.Error("Saudi Friday should be weekend")
	}
	if sa.IsWeekend(date(2017, time.January, 8)) {
		t.Error("Saudi Sunday should not be weekend")
	}
}

func TestEasterKnownDates(t *testing.T) {
	// Verified reference dates of Easter Sunday.
	known := map[int]time.Time{
		2015: date(2015, time.April, 5),
		2016: date(2016, time.March, 27),
		2017: date(2017, time.April, 16),
		2018: date(2018, time.April, 1),
		2019: date(2019, time.April, 21),
		2024: date(2024, time.March, 31),
	}
	for y, want := range known {
		if got := Easter(y); !got.Equal(want) {
			t.Errorf("Easter(%d) = %v, want %v", y, got, want)
		}
	}
}

func TestEasterAlwaysSunday(t *testing.T) {
	for y := 1990; y <= 2050; y++ {
		e := Easter(y)
		if e.Weekday() != time.Sunday {
			t.Fatalf("Easter(%d) = %v is a %v", y, e, e.Weekday())
		}
		// Easter falls between March 22 and April 25 inclusive.
		lo := date(y, time.March, 22)
		hi := date(y, time.April, 25)
		if e.Before(lo) || e.After(hi) {
			t.Fatalf("Easter(%d) = %v outside canonical range", y, e)
		}
	}
}

func TestIsHoliday(t *testing.T) {
	cases := []struct {
		code string
		d    time.Time
		want bool
	}{
		{"IT", date(2017, time.January, 1), true},   // New Year everywhere
		{"IT", date(2017, time.December, 25), true}, // Christmas
		{"IT", date(2017, time.August, 15), true},   // Ferragosto
		{"IT", date(2017, time.April, 17), true},    // Easter Monday 2017
		{"IT", date(2017, time.April, 14), true},    // Good Friday 2017
		{"IT", date(2017, time.March, 15), false},
		{"US", date(2017, time.July, 4), true},
		{"DE", date(2017, time.October, 3), true},
		{"CN", date(2017, time.October, 1), true},
		{"CN", date(2017, time.December, 25), false}, // no Christian calendar
		{"SA", date(2017, time.December, 25), false},
		{"XX", date(2017, time.January, 1), true}, // unknown code: common rules
		{"XX", date(2017, time.December, 25), true},
	}
	for _, c := range cases {
		got, _ := IsHoliday(c.code, c.d)
		if got != c.want {
			t.Errorf("IsHoliday(%s, %v) = %v, want %v", c.code, c.d.Format("2006-01-02"), got, c.want)
		}
	}
}

func TestHolidayNames(t *testing.T) {
	ok, name := IsHoliday("IT", date(2017, time.December, 25))
	if !ok || name != "Christmas Day" {
		t.Errorf("got %v %q", ok, name)
	}
	ok, name = IsHoliday("US", date(2018, time.July, 4))
	if !ok || name != "Independence Day" {
		t.Errorf("got %v %q", ok, name)
	}
}

func TestIsWorkingDay(t *testing.T) {
	// 2017-06-07 is a Wednesday, no holiday in Italy.
	if !IsWorkingDay("IT", date(2017, time.June, 7)) {
		t.Error("plain Wednesday should be a working day")
	}
	// Saturday.
	if IsWorkingDay("IT", date(2017, time.June, 10)) {
		t.Error("Saturday should not be a working day")
	}
	// Christmas on a Monday (2017).
	if IsWorkingDay("IT", date(2017, time.December, 25)) {
		t.Error("Christmas should not be a working day")
	}
	// Saudi Friday.
	if IsWorkingDay("SA", date(2017, time.June, 9)) {
		t.Error("Saudi Friday should not be a working day")
	}
	// Saudi Sunday is a working day.
	if !IsWorkingDay("SA", date(2017, time.June, 11)) {
		t.Error("Saudi Sunday should be a working day")
	}
	// Unknown code defaults to Sat/Sun weekend.
	if IsWorkingDay("XX", date(2017, time.June, 10)) {
		t.Error("unknown-country Saturday should not be a working day")
	}
}

func TestSeasonOf(t *testing.T) {
	cases := []struct {
		d    time.Time
		h    Hemisphere
		want Season
	}{
		{date(2017, time.January, 15), Northern, Winter},
		{date(2017, time.January, 15), Southern, Summer},
		{date(2017, time.April, 15), Northern, Spring},
		{date(2017, time.April, 15), Southern, Autumn},
		{date(2017, time.July, 15), Northern, Summer},
		{date(2017, time.July, 15), Southern, Winter},
		{date(2017, time.October, 15), Northern, Autumn},
		{date(2017, time.October, 15), Southern, Spring},
		{date(2017, time.December, 1), Northern, Winter},
	}
	for _, c := range cases {
		if got := SeasonOf(c.d, c.h); got != c.want {
			t.Errorf("SeasonOf(%v, %v) = %v, want %v", c.d.Format("2006-01-02"), c.h, got, c.want)
		}
	}
}

func TestSeasonString(t *testing.T) {
	if Winter.String() != "winter" || Spring.String() != "spring" ||
		Summer.String() != "summer" || Autumn.String() != "autumn" {
		t.Error("Season String wrong")
	}
	if Season(9).String() != "unknown" {
		t.Error("invalid season should stringify to unknown")
	}
}

func TestSeasonsCoverYearProperty(t *testing.T) {
	// Every day of a year maps to exactly one valid season, and over a
	// year each season appears roughly a quarter of the time.
	counts := map[Season]int{}
	d := date(2017, time.January, 1)
	for d.Year() == 2017 {
		s := SeasonOf(d, Northern)
		if s < Winter || s > Autumn {
			t.Fatalf("invalid season %v", s)
		}
		counts[s]++
		d = d.AddDate(0, 0, 1)
	}
	for s, n := range counts {
		if n < 85 || n > 95 {
			t.Errorf("season %v has %d days", s, n)
		}
	}
}

func TestWeekOfYear(t *testing.T) {
	if w := WeekOfYear(date(2017, time.January, 5)); w != 1 {
		t.Errorf("week = %d, want 1", w)
	}
	if w := WeekOfYear(date(2017, time.December, 28)); w != 52 {
		t.Errorf("week = %d, want 52", w)
	}
}
