// Package regress implements, from scratch on the standard library,
// the regression algorithms the study compares (Section 3): ordinary
// least squares Linear Regression, Lasso (coordinate descent), ε-SVR
// with an RBF kernel (SMO solver), Gradient Boosting over CART
// regression trees with LAD loss, and the two naive baselines — Last
// Value and Moving Average. Default hyper-parameters are the paper's
// grid-search winners (Section 4.2, reproduced by the tuning
// experiment in [vup/internal/experiments] via [GridSearch]).
//
// [Algorithms] returns the six models of the Figure 5 comparison in
// presentation order. [vup/internal/core] consumes them through the
// [Regressor] interface, one fresh model per training window, wrapped
// by [Instrument] so every fit and predict lands in the Section 4.5
// stage histograms of [vup/internal/obs]. Fitting is deterministic —
// models that need randomness (the related-work Random Forest) carry
// an explicit seed — which is what lets the parallel sweeps of
// [vup/internal/parallel] reproduce sequential results exactly.
package regress
