package regress

import (
	"encoding/json"
	"fmt"
	"time"
)

// Stage labels reported by Instrument, mirroring the pipeline phases
// whose cost Section 4.5 compares.
const (
	StageFit     = "fit"
	StagePredict = "predict"
)

// Observer receives the wall-clock duration of one model stage. The
// algorithm is the model's Name() (the paper's figure label), so
// observations aggregate per algorithm.
type Observer func(stage, algorithm string, seconds float64)

// Instrument wraps m so the duration of every Fit and Predict call is
// reported to observe, even when the call errors. A nil observe
// returns m unchanged.
func Instrument(m Regressor, observe Observer) Regressor {
	if observe == nil {
		return m
	}
	return &instrumented{m: m, observe: observe}
}

type instrumented struct {
	m       Regressor
	observe Observer
}

func (t *instrumented) Fit(x [][]float64, y []float64) error {
	start := time.Now() //lint:allow determinism stage timer; feeds obs histograms only, never figure bytes
	err := t.m.Fit(x, y)
	t.observe(StageFit, t.m.Name(), time.Since(start).Seconds())
	return err
}

func (t *instrumented) Predict(x []float64) (float64, error) {
	start := time.Now() //lint:allow determinism stage timer; feeds obs histograms only, never figure bytes
	v, err := t.m.Predict(x)
	t.observe(StagePredict, t.m.Name(), time.Since(start).Seconds())
	return v, err
}

func (t *instrumented) Name() string { return t.m.Name() }

// state and restore delegate persistence to the wrapped model, so an
// instrumented model round-trips through Save/Load like a bare one.
func (t *instrumented) state() (any, error) {
	p, ok := t.m.(persistable)
	if !ok {
		return nil, fmt.Errorf("%w: %T does not support persistence", ErrPersist, t.m)
	}
	return p.state()
}

func (t *instrumented) restore(raw json.RawMessage) error {
	p, ok := t.m.(persistable)
	if !ok {
		return fmt.Errorf("%w: %T does not support persistence", ErrPersist, t.m)
	}
	return p.restore(raw)
}
