package regress

import (
	"fmt"
	"math"
)

// SVR is ε-insensitive Support Vector Regression with an RBF kernel,
// trained by a libsvm-style SMO solver on the doubled dual problem.
// The paper's grid search selected kernel=rbf, C=10, ε=0.1, γ=1
// (Section 4.2). Features are standardized internally so γ=1 is a
// sensible default scale, as it is for scikit-learn pipelines with
// normalized inputs.
type SVR struct {
	// C is the box constraint (default 10).
	C float64
	// Epsilon is the insensitive-tube half width (default 0.1).
	Epsilon float64
	// Gamma is the RBF kernel coefficient, expressed relative to the
	// 1/n_features scale convention (scikit-learn's gamma='scale' on
	// standardized inputs): the effective coefficient is Gamma divided
	// by the feature count. The paper's grid-searched γ=1 therefore
	// means "one unit of scale". Default 1.
	Gamma float64
	// Tol is the KKT violation tolerance (default 1e-3, libsvm's).
	Tol float64
	// MaxIter caps SMO iterations; <=0 selects 100·n with a floor of
	// 10 000.
	MaxIter int

	// trained state
	supportX [][]float64 // standardized support vectors
	beta     []float64   // α − α* per support vector
	b        float64
	means    []float64
	stds     []float64
	p        int
}

// NewSVR returns an SVR with the paper's hyper-parameters.
func NewSVR() *SVR { return &SVR{C: 10, Epsilon: 0.1, Gamma: 1} }

// Name implements Regressor.
func (m *SVR) Name() string { return "SVR" }

const smoTau = 1e-12

// Fit implements Regressor.
func (m *SVR) Fit(x [][]float64, y []float64) error {
	n, p, err := checkXY(x, y)
	if err != nil {
		return err
	}
	if m.C <= 0 {
		return fmt.Errorf("%w: svr C %v <= 0", ErrBadParam, m.C)
	}
	if m.Epsilon < 0 {
		return fmt.Errorf("%w: svr epsilon %v < 0", ErrBadParam, m.Epsilon)
	}
	if m.Gamma <= 0 {
		return fmt.Errorf("%w: svr gamma %v <= 0", ErrBadParam, m.Gamma)
	}
	tol := m.Tol
	if tol <= 0 {
		tol = 1e-3
	}
	maxIter := m.MaxIter
	if maxIter <= 0 {
		maxIter = 100 * n
		if maxIter < 10000 {
			maxIter = 10000
		}
	}

	// Standardize features.
	m.means, m.stds = fitStandardize(x)
	xs := make([][]float64, n)
	for i, row := range x {
		xs[i] = applyStandardize(row, m.means, m.stds)
	}

	// Precompute the kernel matrix with the scale-normalized
	// coefficient.
	gamma := m.Gamma / float64(p)
	k := make([][]float64, n)
	for i := 0; i < n; i++ {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := rbf(xs[i], xs[j], gamma)
			k[i][j] = v
			k[j][i] = v
		}
	}

	// Doubled dual: variables t in [0, 2n); sample(t) = t % n,
	// sign yext = +1 for t < n, −1 otherwise.
	// linear term: p_t = ε − y for the + block, ε + y for the − block.
	nn := 2 * n
	alpha := make([]float64, nn)
	grad := make([]float64, nn)
	for t := 0; t < n; t++ {
		grad[t] = m.Epsilon - y[t]
		grad[t+n] = m.Epsilon + y[t]
	}
	yext := func(t int) float64 {
		if t < n {
			return 1
		}
		return -1
	}
	q := func(s, t int) float64 {
		return yext(s) * yext(t) * k[s%n][t%n]
	}

	for iter := 0; iter < maxIter; iter++ {
		// Maximal violating pair selection.
		i, j := -1, -1
		gmax, gmin := math.Inf(-1), math.Inf(1)
		for t := 0; t < nn; t++ {
			yt := yext(t)
			inUp := (yt > 0 && alpha[t] < m.C) || (yt < 0 && alpha[t] > 0)
			inLow := (yt > 0 && alpha[t] > 0) || (yt < 0 && alpha[t] < m.C)
			v := -yt * grad[t]
			if inUp && v > gmax {
				gmax, i = v, t
			}
			if inLow && v < gmin {
				gmin, j = v, t
			}
		}
		if i < 0 || j < 0 || gmax-gmin < tol {
			break
		}

		oldAi, oldAj := alpha[i], alpha[j]
		yi, yj := yext(i), yext(j)
		if yi != yj { //lint:allow floatsafety SMO labels are exactly ±1, assigned not computed
			quad := q(i, i) + q(j, j) + 2*q(i, j)
			if quad <= 0 {
				quad = smoTau
			}
			delta := (-grad[i] - grad[j]) / quad
			diff := alpha[i] - alpha[j]
			alpha[i] += delta
			alpha[j] += delta
			if diff > 0 {
				if alpha[j] < 0 {
					alpha[j] = 0
					alpha[i] = diff
				}
			} else {
				if alpha[i] < 0 {
					alpha[i] = 0
					alpha[j] = -diff
				}
			}
			if diff > 0 {
				if alpha[i] > m.C {
					alpha[i] = m.C
					alpha[j] = m.C - diff
				}
			} else {
				if alpha[j] > m.C {
					alpha[j] = m.C
					alpha[i] = m.C + diff
				}
			}
		} else {
			quad := q(i, i) + q(j, j) - 2*q(i, j)
			if quad <= 0 {
				quad = smoTau
			}
			delta := (grad[i] - grad[j]) / quad
			sum := alpha[i] + alpha[j]
			alpha[i] -= delta
			alpha[j] += delta
			if sum > m.C {
				if alpha[i] > m.C {
					alpha[i] = m.C
					alpha[j] = sum - m.C
				}
			} else {
				if alpha[j] < 0 {
					alpha[j] = 0
					alpha[i] = sum
				}
			}
			if sum > m.C {
				if alpha[j] > m.C {
					alpha[j] = m.C
					alpha[i] = sum - m.C
				}
			} else {
				if alpha[i] < 0 {
					alpha[i] = 0
					alpha[j] = sum
				}
			}
		}
		dAi, dAj := alpha[i]-oldAi, alpha[j]-oldAj
		if dAi == 0 && dAj == 0 {
			break // numerically stuck; the pair cannot move
		}
		for t := 0; t < nn; t++ {
			grad[t] += q(t, i)*dAi + q(t, j)*dAj
		}
	}

	// Bias from the free/bound structure (libsvm calculate_rho).
	ub, lb := math.Inf(1), math.Inf(-1)
	sumFree, nFree := 0.0, 0
	for t := 0; t < nn; t++ {
		yg := yext(t) * grad[t]
		switch {
		case alpha[t] >= m.C:
			if yext(t) < 0 {
				ub = math.Min(ub, yg)
			} else {
				lb = math.Max(lb, yg)
			}
		case alpha[t] <= 0:
			if yext(t) > 0 {
				ub = math.Min(ub, yg)
			} else {
				lb = math.Max(lb, yg)
			}
		default:
			nFree++
			sumFree += yg
		}
	}
	var rho float64
	if nFree > 0 {
		rho = sumFree / float64(nFree)
	} else {
		rho = (ub + lb) / 2
	}
	m.b = -rho

	// Collapse the doubled variables into β and keep only support
	// vectors.
	m.supportX = m.supportX[:0]
	m.beta = m.beta[:0]
	for t := 0; t < n; t++ {
		bt := alpha[t] - alpha[t+n]
		if bt != 0 {
			m.supportX = append(m.supportX, xs[t])
			m.beta = append(m.beta, bt)
		}
	}
	m.p = p
	// A degenerate solve (everything inside the ε tube) predicts the
	// bias alone; that is a valid model, so trained state is p>0.
	return nil
}

// Predict implements Regressor.
func (m *SVR) Predict(x []float64) (float64, error) {
	if m.p == 0 {
		return 0, ErrNotTrained
	}
	if err := checkRow(x, m.p); err != nil {
		return 0, err
	}
	xs := applyStandardize(x, m.means, m.stds)
	gamma := m.Gamma / float64(m.p)
	out := m.b
	for i, sv := range m.supportX {
		out += m.beta[i] * rbf(sv, xs, gamma)
	}
	return out, nil
}

// NumSupportVectors returns the number of support vectors kept.
func (m *SVR) NumSupportVectors() int { return len(m.beta) }

func rbf(a, b []float64, gamma float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-gamma * d2)
}

// fitStandardize computes per-feature mean and std (population).
func fitStandardize(x [][]float64) (means, stds []float64) {
	n, p := len(x), len(x[0])
	means = make([]float64, p)
	stds = make([]float64, p)
	for j := 0; j < p; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += x[i][j]
		}
		means[j] = sum / float64(n)
		var ss float64
		for i := 0; i < n; i++ {
			d := x[i][j] - means[j]
			ss += d * d
		}
		stds[j] = math.Sqrt(ss / float64(n))
	}
	return means, stds
}

func applyStandardize(row, means, stds []float64) []float64 {
	out := make([]float64, len(row))
	for j := range row {
		if stds[j] > 0 {
			out[j] = (row[j] - means[j]) / stds[j]
		}
	}
	return out
}
