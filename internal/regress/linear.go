package regress

import (
	"errors"

	"vup/internal/linalg"
)

// Linear is ordinary least squares linear regression with an
// intercept, solved by Householder QR. When the design matrix is
// column-rank-deficient (common with tiny training windows and
// correlated lags), it falls back to ridge-regularized normal
// equations with a small penalty so training never fails outright.
type Linear struct {
	// RidgeFallback is the L2 penalty used only when the QR solve
	// reports a singular design. Zero selects a tiny default.
	RidgeFallback float64

	coef      []float64 // p weights
	intercept float64
	p         int
}

// NewLinear returns an OLS model.
func NewLinear() *Linear { return &Linear{} }

// Name implements Regressor.
func (m *Linear) Name() string { return "LR" }

// Fit implements Regressor.
func (m *Linear) Fit(x [][]float64, y []float64) error {
	n, p, err := checkXY(x, y)
	if err != nil {
		return err
	}
	a := buildDesign(x, p)
	var beta []float64
	if n >= p+1 {
		beta, err = linalg.LeastSquares(a, y)
	}
	if n < p+1 || err != nil {
		if err != nil && !errors.Is(err, linalg.ErrSingular) && !errors.Is(err, linalg.ErrShape) {
			return err
		}
		beta, err = ridgeSolve(a, y, m.ridge())
		if err != nil {
			return err
		}
	}
	m.intercept = beta[0]
	m.coef = beta[1:]
	m.p = p
	return nil
}

// buildDesign assembles the design matrix with a leading intercept
// column.
func buildDesign(x [][]float64, p int) *linalg.Matrix {
	a := linalg.NewMatrix(len(x), p+1)
	for i, row := range x {
		a.Set(i, 0, 1)
		copy(a.Row(i)[1:], row)
	}
	return a
}

func (m *Linear) ridge() float64 {
	if m.RidgeFallback > 0 {
		return m.RidgeFallback
	}
	return 1e-8
}

// ridgeSolve solves (AᵀA + λI)β = Aᵀy, leaving the intercept column
// unpenalized.
func ridgeSolve(a *linalg.Matrix, y []float64, lambda float64) ([]float64, error) {
	at := a.T()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	for j := 1; j < ata.Cols; j++ {
		ata.Set(j, j, ata.At(j, j)+lambda)
	}
	// A tiny jitter on the intercept keeps the factorization positive
	// definite even for pathological designs.
	ata.Set(0, 0, ata.At(0, 0)+1e-12)
	aty, err := at.MulVec(y)
	if err != nil {
		return nil, err
	}
	chol, err := linalg.NewCholesky(ata)
	if err != nil {
		// Last resort: strengthen the penalty until it factorizes.
		for boost := lambda * 10; boost < 1e6; boost *= 10 {
			for j := 0; j < ata.Cols; j++ {
				ata.Set(j, j, ata.At(j, j)+boost)
			}
			if chol, err = linalg.NewCholesky(ata); err == nil {
				break
			}
		}
		if err != nil {
			return nil, err
		}
	}
	return chol.Solve(aty)
}

// Predict implements Regressor.
func (m *Linear) Predict(x []float64) (float64, error) {
	if m.coef == nil {
		return 0, ErrNotTrained
	}
	if err := checkRow(x, m.p); err != nil {
		return 0, err
	}
	return m.intercept + linalg.Dot(m.coef, x), nil
}

// Coefficients returns the fitted weights (excluding the intercept).
func (m *Linear) Coefficients() []float64 { return append([]float64(nil), m.coef...) }

// Intercept returns the fitted intercept.
func (m *Linear) Intercept() float64 { return m.intercept }
