package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests on model invariants, run with testing/quick over
// randomized problem instances.

// randomProblem builds an n×p training set with a planted linear
// signal plus noise.
func randomProblem(rng *rand.Rand, n, p int, noise float64) ([][]float64, []float64, []float64) {
	coef := make([]float64, p)
	for j := range coef {
		coef[j] = rng.NormFloat64() * 2
	}
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, p)
		dot := 0.0
		for j := range row {
			row[j] = rng.NormFloat64()
			dot += row[j] * coef[j]
		}
		x[i] = row
		y[i] = 1 + dot + noise*rng.NormFloat64()
	}
	return x, y, coef
}

// Property: OLS predictions are invariant under feature scaling (the
// coefficients rescale exactly).
func TestLinearScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y, _ := randomProblem(r, 60, 3, 0.3)
		scale := []float64{2, 0.5, 10}
		xs := make([][]float64, len(x))
		for i, row := range x {
			s := make([]float64, len(row))
			for j := range row {
				s[j] = row[j] * scale[j]
			}
			xs[i] = s
		}
		a, b := NewLinear(), NewLinear()
		if a.Fit(x, y) != nil || b.Fit(xs, y) != nil {
			return false
		}
		probe := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		probeScaled := []float64{probe[0] * scale[0], probe[1] * scale[1], probe[2] * scale[2]}
		pa, _ := a.Predict(probe)
		pb, _ := b.Predict(probeScaled)
		return math.Abs(pa-pb) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: adding a constant to the targets shifts every model's
// predictions by that constant (location equivariance) for the linear
// family and the baselines.
func TestLocationEquivariance(t *testing.T) {
	models := map[string]func() Regressor{
		"LR":    func() Regressor { return NewLinear() },
		"Lasso": func() Regressor { return NewLasso() },
		"Ridge": func() Regressor { return NewRidge() },
		"LV":    func() Regressor { return NewLastValue() },
		"MA":    func() Regressor { return NewMovingAverage() },
	}
	rng := rand.New(rand.NewSource(61))
	x, y, _ := randomProblem(rng, 80, 4, 0.5)
	const shift = 7.5
	yShift := make([]float64, len(y))
	for i := range y {
		yShift[i] = y[i] + shift
	}
	probe := []float64{0.3, -0.2, 1.1, 0.7}
	for name, build := range models {
		a, b := build(), build()
		if err := a.Fit(x, y); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Fit(x, yShift); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pa, _ := a.Predict(probe)
		pb, _ := b.Predict(probe)
		if math.Abs((pb-pa)-shift) > 1e-6 {
			t.Errorf("%s: shift %v instead of %v", name, pb-pa, shift)
		}
	}
}

// Property: GB training error decreases (weakly) as stages are added.
func TestGBMonotoneStagesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	x, y, _ := randomProblem(rng, 120, 3, 0.2)
	mae := func(stages int) float64 {
		m := &GradientBoosting{LearningRate: 0.2, NEstimators: stages, MaxDepth: 2, Loss: LossLS}
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		var e float64
		for i := range x {
			p, _ := m.Predict(x[i])
			e += math.Abs(p - y[i])
		}
		return e / float64(len(x))
	}
	prev := math.Inf(1)
	for _, stages := range []int{1, 5, 20, 80} {
		cur := mae(stages)
		if cur > prev*1.02 {
			t.Errorf("training MAE rose: %v stages -> %v", stages, cur)
		}
		prev = cur
	}
}

// Property: tree predictions are always within the training target
// range (trees cannot extrapolate), and so are forest predictions.
func TestTreeRangeBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y, _ := randomProblem(r, 50, 2, 1)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range y {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		tree := &Tree{MaxDepth: 6}
		if tree.Fit(x, y) != nil {
			return false
		}
		forest := &RandomForest{NTrees: 10, MaxDepth: 4, Seed: seed}
		if forest.Fit(x, y) != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			probe := []float64{r.NormFloat64() * 10, r.NormFloat64() * 10}
			pt, _ := tree.Predict(probe)
			pf, _ := forest.Predict(probe)
			if pt < lo-1e-9 || pt > hi+1e-9 || pf < lo-1e-9 || pf > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: SVR predictions are bounded by b ± C·#SV (a loose bound
// from the dual box constraint), and the model never panics across
// random inputs.
func TestSVRBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y, _ := randomProblem(r, 40, 2, 0.5)
		m := NewSVR()
		if m.Fit(x, y) != nil {
			return false
		}
		bound := 10*float64(m.NumSupportVectors()) + 100
		for trial := 0; trial < 10; trial++ {
			probe := []float64{r.NormFloat64() * 5, r.NormFloat64() * 5}
			p, err := m.Predict(probe)
			if err != nil || math.IsNaN(p) || math.Abs(p) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Lasso's active set shrinks (weakly) as alpha grows.
func TestLassoPathMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	x, y, _ := randomProblem(rng, 100, 6, 0.5)
	prev := math.MaxInt32
	for _, alpha := range []float64{0.01, 0.1, 1, 10, 100} {
		m := &Lasso{Alpha: alpha}
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		nz := m.NumNonZero()
		if nz > prev {
			t.Errorf("active set grew at alpha=%v: %d > %d", alpha, nz, prev)
		}
		prev = nz
	}
}
