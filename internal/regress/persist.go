package regress

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Model persistence: trained regressors serialize to a
// JSON envelope {kind, state} and load back ready to predict, so a
// fleet backend can train offline and serve forecasts without
// refitting.

// ErrPersist is wrapped by serialization failures.
var ErrPersist = errors.New("regress: persistence error")

// envelope is the on-disk wrapper.
type envelope struct {
	Kind  string          `json:"kind"`
	State json.RawMessage `json:"state"`
}

// persistable is implemented by models that support Save/Load.
type persistable interface {
	// state returns the JSON-serializable trained state.
	state() (any, error)
	// restore loads trained state produced by state().
	restore(raw json.RawMessage) error
}

// Save writes the trained model as JSON.
func Save(w io.Writer, m Regressor) error {
	p, ok := m.(persistable)
	if !ok {
		return fmt.Errorf("%w: %T does not support persistence", ErrPersist, m)
	}
	st, err := p.state()
	if err != nil {
		return err
	}
	raw, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(envelope{Kind: m.Name(), State: raw})
}

// Load reads a model saved by Save and returns it ready to predict.
func Load(r io.Reader) (Regressor, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPersist, err)
	}
	m, err := New(Algorithm(env.Kind))
	if err != nil {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrPersist, env.Kind)
	}
	p, ok := m.(persistable)
	if !ok {
		return nil, fmt.Errorf("%w: %T does not support persistence", ErrPersist, m)
	}
	if err := p.restore(env.State); err != nil {
		return nil, err
	}
	return m, nil
}

// --- Linear ---

type linearState struct {
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
	P         int       `json:"p"`
}

func (m *Linear) state() (any, error) {
	if m.coef == nil {
		return nil, ErrNotTrained
	}
	return linearState{Coef: m.coef, Intercept: m.intercept, P: m.p}, nil
}

func (m *Linear) restore(raw json.RawMessage) error {
	var st linearState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	if len(st.Coef) != st.P || st.P == 0 {
		return fmt.Errorf("%w: inconsistent linear state", ErrPersist)
	}
	m.coef, m.intercept, m.p = st.Coef, st.Intercept, st.P
	return nil
}

// --- Lasso ---

type lassoState struct {
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
	P         int       `json:"p"`
	Alpha     float64   `json:"alpha"`
}

func (m *Lasso) state() (any, error) {
	if m.coef == nil {
		return nil, ErrNotTrained
	}
	return lassoState{Coef: m.coef, Intercept: m.intercept, P: m.p, Alpha: m.Alpha}, nil
}

func (m *Lasso) restore(raw json.RawMessage) error {
	var st lassoState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	if len(st.Coef) != st.P || st.P == 0 {
		return fmt.Errorf("%w: inconsistent lasso state", ErrPersist)
	}
	m.coef, m.intercept, m.p, m.Alpha = st.Coef, st.Intercept, st.P, st.Alpha
	return nil
}

// --- baselines ---

type lastValueState struct {
	Last float64 `json:"last"`
	P    int     `json:"p"`
}

func (m *LastValue) state() (any, error) {
	if !m.trained {
		return nil, ErrNotTrained
	}
	return lastValueState{Last: m.last, P: m.p}, nil
}

func (m *LastValue) restore(raw json.RawMessage) error {
	var st lastValueState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	if st.P == 0 {
		return fmt.Errorf("%w: inconsistent LV state", ErrPersist)
	}
	m.last, m.p, m.trained = st.Last, st.P, true
	return nil
}

type movingAverageState struct {
	Mean   float64 `json:"mean"`
	P      int     `json:"p"`
	Period int     `json:"period"`
}

func (m *MovingAverage) state() (any, error) {
	if !m.trained {
		return nil, ErrNotTrained
	}
	return movingAverageState{Mean: m.mean, P: m.p, Period: m.Period}, nil
}

func (m *MovingAverage) restore(raw json.RawMessage) error {
	var st movingAverageState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	if st.P == 0 {
		return fmt.Errorf("%w: inconsistent MA state", ErrPersist)
	}
	m.mean, m.p, m.Period, m.trained = st.Mean, st.P, st.Period, true
	return nil
}

// --- SVR ---

type svrState struct {
	SupportX [][]float64 `json:"support_x"`
	Beta     []float64   `json:"beta"`
	B        float64     `json:"b"`
	Means    []float64   `json:"means"`
	Stds     []float64   `json:"stds"`
	P        int         `json:"p"`
	C        float64     `json:"c"`
	Epsilon  float64     `json:"epsilon"`
	Gamma    float64     `json:"gamma"`
}

func (m *SVR) state() (any, error) {
	if m.p == 0 {
		return nil, ErrNotTrained
	}
	return svrState{
		SupportX: m.supportX, Beta: m.beta, B: m.b,
		Means: m.means, Stds: m.stds, P: m.p,
		C: m.C, Epsilon: m.Epsilon, Gamma: m.Gamma,
	}, nil
}

func (m *SVR) restore(raw json.RawMessage) error {
	var st svrState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	if st.P == 0 || len(st.SupportX) != len(st.Beta) || len(st.Means) != st.P || len(st.Stds) != st.P {
		return fmt.Errorf("%w: inconsistent svr state", ErrPersist)
	}
	for _, sv := range st.SupportX {
		if len(sv) != st.P {
			return fmt.Errorf("%w: support vector width mismatch", ErrPersist)
		}
	}
	m.supportX, m.beta, m.b = st.SupportX, st.Beta, st.B
	m.means, m.stds, m.p = st.Means, st.Stds, st.P
	m.C, m.Epsilon, m.Gamma = st.C, st.Epsilon, st.Gamma
	return nil
}

// --- trees ---

// nodeState is one flattened tree node; children are indices into the
// node slice (-1 for leaves).
type nodeState struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int     `json:"l"`
	Right     int     `json:"r"`
	Leaf      bool    `json:"leaf"`
	Value     float64 `json:"v"`
}

func flattenTree(root *treeNode) []nodeState {
	var nodes []nodeState
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		idx := len(nodes)
		nodes = append(nodes, nodeState{Left: -1, Right: -1})
		if n.leaf {
			nodes[idx].Leaf = true
			nodes[idx].Value = n.value
			return idx
		}
		nodes[idx].Feature = n.feature
		nodes[idx].Threshold = n.threshold
		nodes[idx].Left = walk(n.left)
		nodes[idx].Right = walk(n.right)
		return idx
	}
	if root != nil {
		walk(root)
	}
	return nodes
}

func rebuildTree(nodes []nodeState, idx, p int) (*treeNode, error) {
	if idx < 0 || idx >= len(nodes) {
		return nil, fmt.Errorf("%w: tree node index %d out of range", ErrPersist, idx)
	}
	st := nodes[idx]
	if st.Leaf {
		return &treeNode{leaf: true, value: st.Value}, nil
	}
	if st.Feature < 0 || st.Feature >= p {
		return nil, fmt.Errorf("%w: tree split on feature %d of %d", ErrPersist, st.Feature, p)
	}
	// flattenTree emits nodes in pre-order, so children always come
	// after their parent; anything else is a malformed (possibly
	// cyclic) payload.
	if st.Left <= idx || st.Right <= idx {
		return nil, fmt.Errorf("%w: tree node %d has backward child reference", ErrPersist, idx)
	}
	left, err := rebuildTree(nodes, st.Left, p)
	if err != nil {
		return nil, err
	}
	right, err := rebuildTree(nodes, st.Right, p)
	if err != nil {
		return nil, err
	}
	return &treeNode{feature: st.Feature, threshold: st.Threshold, left: left, right: right}, nil
}

type treeState struct {
	Nodes []nodeState `json:"nodes"`
	P     int         `json:"p"`
}

func (m *Tree) state() (any, error) {
	if m.root == nil {
		return nil, ErrNotTrained
	}
	return treeState{Nodes: flattenTree(m.root), P: m.p}, nil
}

func (m *Tree) restore(raw json.RawMessage) error {
	var st treeState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	return m.restoreState(st)
}

func (m *Tree) restoreState(st treeState) error {
	if st.P == 0 || len(st.Nodes) == 0 {
		return fmt.Errorf("%w: inconsistent tree state", ErrPersist)
	}
	root, err := rebuildTree(st.Nodes, 0, st.P)
	if err != nil {
		return err
	}
	m.root, m.p = root, st.P
	return nil
}

// --- gradient boosting ---

type gbState struct {
	Init         float64     `json:"init"`
	LearningRate float64     `json:"lr"`
	Loss         int         `json:"loss"`
	P            int         `json:"p"`
	Stages       []treeState `json:"stages"`
}

func (m *GradientBoosting) state() (any, error) {
	if m.stages == nil {
		return nil, ErrNotTrained
	}
	stages := make([]treeState, len(m.stages))
	for i, t := range m.stages {
		stages[i] = treeState{Nodes: flattenTree(t.root), P: t.p}
	}
	return gbState{Init: m.init, LearningRate: m.LearningRate, Loss: int(m.Loss), P: m.p, Stages: stages}, nil
}

func (m *GradientBoosting) restore(raw json.RawMessage) error {
	var st gbState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	if st.P == 0 || len(st.Stages) == 0 {
		return fmt.Errorf("%w: inconsistent gb state", ErrPersist)
	}
	m.stages = make([]*Tree, len(st.Stages))
	for i, ts := range st.Stages {
		tree := &Tree{MaxDepth: 1}
		if err := tree.restoreState(ts); err != nil {
			return err
		}
		m.stages[i] = tree
	}
	m.init, m.LearningRate, m.Loss, m.p = st.Init, st.LearningRate, GBLoss(st.Loss), st.P
	m.NEstimators = len(m.stages)
	return nil
}

// --- random forest ---

type forestState struct {
	P     int         `json:"p"`
	Trees []treeState `json:"trees"`
}

func (m *RandomForest) state() (any, error) {
	if m.trees == nil {
		return nil, ErrNotTrained
	}
	trees := make([]treeState, len(m.trees))
	for i, t := range m.trees {
		trees[i] = treeState{Nodes: flattenTree(t.root), P: t.p}
	}
	return forestState{P: m.p, Trees: trees}, nil
}

func (m *RandomForest) restore(raw json.RawMessage) error {
	var st forestState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	if st.P == 0 || len(st.Trees) == 0 {
		return fmt.Errorf("%w: inconsistent forest state", ErrPersist)
	}
	m.trees = make([]*Tree, len(st.Trees))
	for i, ts := range st.Trees {
		tree := &Tree{MaxDepth: 1}
		if err := tree.restoreState(ts); err != nil {
			return err
		}
		m.trees[i] = tree
	}
	m.p = st.P
	m.NTrees = len(m.trees)
	return nil
}

// --- ridge ---

type ridgeState struct {
	Alpha  float64     `json:"alpha"`
	Linear linearState `json:"linear"`
}

func (m *Ridge) state() (any, error) {
	if m.linear.coef == nil {
		return nil, ErrNotTrained
	}
	return ridgeState{
		Alpha:  m.Alpha,
		Linear: linearState{Coef: m.linear.coef, Intercept: m.linear.intercept, P: m.linear.p},
	}, nil
}

func (m *Ridge) restore(raw json.RawMessage) error {
	var st ridgeState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	if len(st.Linear.Coef) != st.Linear.P || st.Linear.P == 0 {
		return fmt.Errorf("%w: inconsistent ridge state", ErrPersist)
	}
	m.Alpha = st.Alpha
	m.linear = Linear{coef: st.Linear.Coef, intercept: st.Linear.Intercept, p: st.Linear.P}
	return nil
}
