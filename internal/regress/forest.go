package regress

import (
	"fmt"
	"math"

	"vup/internal/randx"
)

// RandomForest is a bagged ensemble of CART regression trees with
// per-split feature subsampling. The paper's related work ([8], [14],
// [3]) uses Random Forests for public buses, waste collectors and
// heavy-duty trucks; it is provided here as the cross-study baseline
// and for ablations.
type RandomForest struct {
	// NTrees is the ensemble size (default 100).
	NTrees int
	// MaxDepth limits each tree (default 6).
	MaxDepth int
	// MinSamplesLeaf is the per-leaf minimum (default 2).
	MinSamplesLeaf int
	// MaxFeatures is the number of candidate features considered at
	// each split; <=0 selects max(p/3, 2) (the regression heuristic).
	MaxFeatures int
	// Seed drives the bootstrap and feature draws (default 1).
	Seed int64

	trees []*Tree
	p     int
}

// NewRandomForest returns a forest with common defaults.
func NewRandomForest() *RandomForest {
	return &RandomForest{NTrees: 100, MaxDepth: 6, MinSamplesLeaf: 2, Seed: 1}
}

// Name implements Regressor.
func (m *RandomForest) Name() string { return "RF" }

// Fit implements Regressor.
func (m *RandomForest) Fit(x [][]float64, y []float64) error {
	n, p, err := checkXY(x, y)
	if err != nil {
		return err
	}
	if m.NTrees <= 0 {
		return fmt.Errorf("%w: %d trees", ErrBadParam, m.NTrees)
	}
	if m.MaxDepth < 1 {
		return fmt.Errorf("%w: max depth %d", ErrBadParam, m.MaxDepth)
	}
	maxFeatures := m.MaxFeatures
	if maxFeatures <= 0 {
		maxFeatures = (p + 2) / 3
		if maxFeatures < 2 {
			maxFeatures = 2
		}
	}
	if maxFeatures > p {
		maxFeatures = p
	}
	// randx.New wraps rand.New(rand.NewSource(seed)), so the bootstrap
	// and feature draws are stream-identical to the pre-randx code.
	rng := randx.New(m.Seed)

	m.trees = make([]*Tree, 0, m.NTrees)
	bx := make([][]float64, n)
	by := make([]float64, n)
	for t := 0; t < m.NTrees; t++ {
		// Bootstrap sample.
		for i := 0; i < n; i++ {
			src := rng.Intn(n)
			bx[i] = x[src]
			by[i] = y[src]
		}
		tree := &Tree{
			MaxDepth:       m.MaxDepth,
			MinSamplesLeaf: m.MinSamplesLeaf,
			// Per-split feature subsampling: each split draws its own
			// candidate set.
			splitFeatures: func(pp int) []int { return rng.Perm(pp)[:maxFeatures] },
		}
		if err := tree.Fit(bx, by); err != nil {
			return fmt.Errorf("regress: forest tree %d: %w", t, err)
		}
		m.trees = append(m.trees, tree)
	}
	m.p = p
	return nil
}

// Predict implements Regressor.
func (m *RandomForest) Predict(x []float64) (float64, error) {
	if m.trees == nil {
		return 0, ErrNotTrained
	}
	if err := checkRow(x, m.p); err != nil {
		return 0, err
	}
	sum := 0.0
	for _, tree := range m.trees {
		v, err := tree.Predict(x)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum / float64(len(m.trees)), nil
}

// NumTrees returns the fitted ensemble size.
func (m *RandomForest) NumTrees() int { return len(m.trees) }

// Ridge is L2-regularized linear regression solved in closed form via
// the normal equations. It is the stable reference point between OLS
// and Lasso for the ablation benchmarks.
type Ridge struct {
	// Alpha is the L2 penalty (default 1).
	Alpha float64

	linear Linear
}

// NewRidge returns a Ridge model with α = 1.
func NewRidge() *Ridge { return &Ridge{Alpha: 1} }

// Name implements Regressor.
func (m *Ridge) Name() string { return "Ridge" }

// Fit implements Regressor.
func (m *Ridge) Fit(x [][]float64, y []float64) error {
	if m.Alpha <= 0 || math.IsNaN(m.Alpha) {
		return fmt.Errorf("%w: ridge alpha %v", ErrBadParam, m.Alpha)
	}
	// Reuse the Linear solver forced onto its ridge path by requesting
	// the penalized normal equations directly.
	_, p, err := checkXY(x, y)
	if err != nil {
		return err
	}
	m.linear = Linear{RidgeFallback: m.Alpha}
	a := buildDesign(x, p)
	beta, err := ridgeSolve(a, y, m.Alpha)
	if err != nil {
		return err
	}
	m.linear.intercept = beta[0]
	m.linear.coef = beta[1:]
	m.linear.p = p
	return nil
}

// Predict implements Regressor.
func (m *Ridge) Predict(x []float64) (float64, error) { return m.linear.Predict(x) }

// Coefficients returns the fitted weights (excluding the intercept).
func (m *Ridge) Coefficients() []float64 { return m.linear.Coefficients() }
