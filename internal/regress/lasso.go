package regress

import (
	"fmt"
	"math"
)

// Lasso is L1-regularized linear regression fitted by cyclic
// coordinate descent on standardized features, matching scikit-learn's
// objective
//
//	(1/(2n))·||y − Xβ||² + α·||β||₁
//
// The paper's grid search selected α = 0.1 (Section 4.2).
type Lasso struct {
	// Alpha is the L1 penalty. Must be >= 0.
	Alpha float64
	// MaxIter bounds the coordinate-descent sweeps (default 1000).
	MaxIter int
	// Tol is the convergence threshold on the max coefficient change
	// (default 1e-6).
	Tol float64

	coef      []float64
	intercept float64
	means     []float64
	stds      []float64
	p         int
}

// NewLasso returns a Lasso model with the paper's α = 0.1.
func NewLasso() *Lasso { return &Lasso{Alpha: 0.1} }

// Name implements Regressor.
func (m *Lasso) Name() string { return "Lasso" }

// Fit implements Regressor.
func (m *Lasso) Fit(x [][]float64, y []float64) error {
	n, p, err := checkXY(x, y)
	if err != nil {
		return err
	}
	if m.Alpha < 0 {
		return fmt.Errorf("%w: lasso alpha %v < 0", ErrBadParam, m.Alpha)
	}
	maxIter := m.MaxIter
	if maxIter <= 0 {
		maxIter = 1000
	}
	tol := m.Tol
	if tol <= 0 {
		tol = 1e-6
	}

	// Standardize features and center the target: coordinate descent
	// is only well-behaved on comparable scales.
	m.means = make([]float64, p)
	m.stds = make([]float64, p)
	cols := make([][]float64, p)
	for j := 0; j < p; j++ {
		col := make([]float64, n)
		var sum float64
		for i := 0; i < n; i++ {
			col[i] = x[i][j]
			sum += col[i]
		}
		mean := sum / float64(n)
		var ss float64
		for i := range col {
			col[i] -= mean
			ss += col[i] * col[i]
		}
		std := math.Sqrt(ss / float64(n))
		if std > 0 {
			for i := range col {
				col[i] /= std
			}
		}
		m.means[j], m.stds[j] = mean, std
		cols[j] = col
	}
	var ySum float64
	for _, v := range y {
		ySum += v
	}
	yMean := ySum / float64(n)
	resid := make([]float64, n)
	for i := range resid {
		resid[i] = y[i] - yMean
	}

	// Cyclic coordinate descent with soft thresholding. With unit-
	// variance columns, each column's squared norm is n.
	beta := make([]float64, p)
	threshold := m.Alpha * float64(n)
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for j := 0; j < p; j++ {
			if m.stds[j] == 0 {
				continue // constant feature stays at zero
			}
			col := cols[j]
			// rho = Xⱼᵀ(resid + Xⱼβⱼ)
			rho := 0.0
			for i := range col {
				rho += col[i] * resid[i]
			}
			rho += float64(n) * beta[j]
			newBeta := softThreshold(rho, threshold) / float64(n)
			if delta := newBeta - beta[j]; delta != 0 {
				for i := range col {
					resid[i] -= delta * col[i]
				}
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
				beta[j] = newBeta
			}
		}
		if maxDelta < tol {
			break
		}
	}

	// Fold the standardization back into original-space coefficients.
	m.coef = make([]float64, p)
	m.intercept = yMean
	for j := 0; j < p; j++ {
		if m.stds[j] == 0 {
			continue
		}
		m.coef[j] = beta[j] / m.stds[j]
		m.intercept -= m.coef[j] * m.means[j]
	}
	m.p = p
	return nil
}

func softThreshold(z, gamma float64) float64 {
	switch {
	case z > gamma:
		return z - gamma
	case z < -gamma:
		return z + gamma
	default:
		return 0
	}
}

// Predict implements Regressor.
func (m *Lasso) Predict(x []float64) (float64, error) {
	if m.coef == nil {
		return 0, ErrNotTrained
	}
	if err := checkRow(x, m.p); err != nil {
		return 0, err
	}
	out := m.intercept
	for j, c := range m.coef {
		out += c * x[j]
	}
	return out, nil
}

// Coefficients returns the fitted original-space weights.
func (m *Lasso) Coefficients() []float64 { return append([]float64(nil), m.coef...) }

// Intercept returns the fitted intercept.
func (m *Lasso) Intercept() float64 { return m.intercept }

// NumNonZero returns the number of active (non-zero) coefficients.
func (m *Lasso) NumNonZero() int {
	count := 0
	for _, c := range m.coef {
		if c != 0 {
			count++
		}
	}
	return count
}
