package regress

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// saveLoadRoundTrip trains m, saves it, loads it back and verifies
// identical predictions on fresh probes.
func saveLoadRoundTrip(t *testing.T, m Regressor) {
	t.Helper()
	rng := rand.New(rand.NewSource(70))
	x, y, _ := randomProblem(rng, 80, 3, 0.3)
	if err := m.Fit(x, y); err != nil {
		t.Fatalf("%s: fit: %v", m.Name(), err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatalf("%s: save: %v", m.Name(), err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("%s: load: %v", m.Name(), err)
	}
	if loaded.Name() != m.Name() {
		t.Fatalf("kind changed: %s -> %s", m.Name(), loaded.Name())
	}
	for trial := 0; trial < 25; trial++ {
		probe := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		want, err1 := m.Predict(probe)
		got, err2 := loaded.Predict(probe)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: predict: %v %v", m.Name(), err1, err2)
		}
		if math.Abs(want-got) > 1e-12 {
			t.Fatalf("%s: prediction drifted: %v vs %v", m.Name(), want, got)
		}
	}
}

func TestSaveLoadAllModels(t *testing.T) {
	models := []Regressor{
		NewLinear(),
		NewLasso(),
		NewRidge(),
		NewLastValue(),
		NewMovingAverage(),
		NewSVR(),
		&GradientBoosting{LearningRate: 0.1, NEstimators: 20, MaxDepth: 2, Loss: LossLAD},
		&RandomForest{NTrees: 10, MaxDepth: 3, Seed: 1},
		&Tree{MaxDepth: 4},
	}
	for _, m := range models {
		saveLoadRoundTrip(t, m)
	}
}

func TestSaveUntrained(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, NewLinear()); !errors.Is(err, ErrNotTrained) {
		t.Errorf("untrained save: %v", err)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"kind":"bogus","state":{}}`,
		`{"kind":"LR","state":{"coef":[1,2],"intercept":0,"p":5}}`,        // width mismatch
		`{"kind":"SVR","state":{"p":2,"support_x":[[1]],"beta":[1,2]}}`,   // inconsistent
		`{"kind":"GB","state":{"p":0,"stages":[]}}`,                       // empty
		`{"kind":"Tree","state":{"p":1,"nodes":[{"f":5,"l":-1,"r":-1}]}}`, // bad feature
		`{"kind":"LV","state":{"p":0}}`,
		`{"kind":"MA","state":{"p":0}}`,
		`{"kind":"RF","state":{"p":0,"trees":[]}}`,
		`{"kind":"Ridge","state":{"alpha":1,"linear":{"coef":[],"p":0}}}`,
		`{"kind":"Lasso","state":{"coef":[1],"p":2}}`,
	}
	for _, src := range cases {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestTreeCycleGuard(t *testing.T) {
	// The pre-order format requires child indices to come after their
	// parent; a self- or backward reference (a cycle) must be rejected
	// rather than recursed into.
	for _, src := range []string{
		`{"kind":"Tree","state":{"p":1,"nodes":[{"f":0,"t":1,"l":0,"r":-1}]}}`,
		`{"kind":"Tree","state":{"p":1,"nodes":[{"f":0,"t":1,"l":1,"r":1},{"f":0,"t":2,"l":0,"r":0}]}}`,
	} {
		if _, err := Load(strings.NewReader(src)); !errors.Is(err, ErrPersist) {
			t.Errorf("cyclic tree: %v", err)
		}
	}
}

func TestSaveLoadPreservesHyperparameters(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	x, y, _ := randomProblem(rng, 50, 3, 0.2)
	m := &MovingAverage{Period: 14}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.(*MovingAverage).Period != 14 {
		t.Errorf("period = %d", loaded.(*MovingAverage).Period)
	}
}
