package regress

import (
	"errors"
	"fmt"
)

// Regressor is a supervised regression model over dense feature rows.
type Regressor interface {
	// Fit trains on rows x (n×p) and targets y (n). Implementations
	// must not retain x or y.
	Fit(x [][]float64, y []float64) error
	// Predict returns the prediction for a single feature row.
	Predict(x []float64) (float64, error)
	// Name returns the short algorithm label used in the paper's
	// figures (LR, Lasso, SVR, GB, LV, MA).
	Name() string
}

// Errors shared by the implementations.
var (
	ErrNotTrained = errors.New("regress: model not trained")
	ErrBadShape   = errors.New("regress: invalid training shape")
	ErrBadParam   = errors.New("regress: invalid hyper-parameter")
)

// checkXY validates a training set and returns n, p.
func checkXY(x [][]float64, y []float64) (n, p int, err error) {
	n = len(x)
	if n == 0 {
		return 0, 0, fmt.Errorf("%w: no rows", ErrBadShape)
	}
	if len(y) != n {
		return 0, 0, fmt.Errorf("%w: %d rows vs %d targets", ErrBadShape, n, len(y))
	}
	p = len(x[0])
	if p == 0 {
		return 0, 0, fmt.Errorf("%w: zero-width rows", ErrBadShape)
	}
	for i, row := range x {
		if len(row) != p {
			return 0, 0, fmt.Errorf("%w: ragged row %d (%d vs %d)", ErrBadShape, i, len(row), p)
		}
	}
	return n, p, nil
}

// checkRow validates a prediction row against the trained width.
func checkRow(x []float64, p int) error {
	if len(x) != p {
		return fmt.Errorf("%w: row has %d features, model trained on %d", ErrBadShape, len(x), p)
	}
	return nil
}

// PredictAll is a convenience helper applying m to every row.
func PredictAll(m Regressor, rows [][]float64) ([]float64, error) {
	out := make([]float64, len(rows))
	for i, r := range rows {
		v, err := m.Predict(r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
