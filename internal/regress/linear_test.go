package regress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// makeLinearData builds y = 3 + 2·x0 − 1.5·x1 + noise.
func makeLinearData(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 3}
		y[i] = 3 + 2*x[i][0] - 1.5*x[i][1] + noise*rng.NormFloat64()
	}
	return x, y
}

func TestLinearRecoversCoefficients(t *testing.T) {
	x, y := makeLinearData(200, 0, 1)
	m := NewLinear()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	coef := m.Coefficients()
	if math.Abs(coef[0]-2) > 1e-8 || math.Abs(coef[1]+1.5) > 1e-8 {
		t.Errorf("coef = %v", coef)
	}
	if math.Abs(m.Intercept()-3) > 1e-8 {
		t.Errorf("intercept = %v", m.Intercept())
	}
	pred, err := m.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-3.5) > 1e-8 {
		t.Errorf("pred = %v", pred)
	}
}

func TestLinearNoisy(t *testing.T) {
	x, y := makeLinearData(500, 0.5, 2)
	m := NewLinear()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	coef := m.Coefficients()
	if math.Abs(coef[0]-2) > 0.1 || math.Abs(coef[1]+1.5) > 0.1 {
		t.Errorf("coef = %v", coef)
	}
}

func TestLinearCollinearFallsBackToRidge(t *testing.T) {
	// Two identical columns: QR reports singular, ridge must cope.
	n := 50
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i)
		x[i] = []float64{v, v}
		y[i] = 4 * v
	}
	m := NewLinear()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict([]float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-40) > 0.5 {
		t.Errorf("collinear prediction = %v, want ~40", pred)
	}
}

func TestLinearUnderdeterminedFallsBackToRidge(t *testing.T) {
	// Fewer rows than features.
	x := [][]float64{{1, 0, 0, 2}, {0, 1, 0, 1}}
	y := []float64{1, 2}
	m := NewLinear()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearErrors(t *testing.T) {
	m := NewLinear()
	if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("want ErrNotTrained, got %v", err)
	}
	if err := m.Fit(nil, nil); !errors.Is(err, ErrBadShape) {
		t.Errorf("want ErrBadShape, got %v", err)
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Errorf("want ErrBadShape, got %v", err)
	}
	if err := m.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Errorf("ragged rows: %v", err)
	}
	if err := m.Fit([][]float64{{}}, []float64{1}); !errors.Is(err, ErrBadShape) {
		t.Errorf("zero-width rows: %v", err)
	}
	x, y := makeLinearData(20, 0, 3)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrBadShape) {
		t.Errorf("wrong row width: %v", err)
	}
	if m.Name() != "LR" {
		t.Error("name wrong")
	}
}

func TestLassoShrinksIrrelevantFeatures(t *testing.T) {
	// y depends only on x0; x1..x3 are noise. Lasso must zero most of
	// the irrelevant weights.
	rng := rand.New(rand.NewSource(4))
	n := 300
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 5*x[i][0] + 0.1*rng.NormFloat64()
	}
	m := NewLasso()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	coef := m.Coefficients()
	if math.Abs(coef[0]-5) > 0.3 {
		t.Errorf("signal coef = %v", coef[0])
	}
	for j := 1; j < 4; j++ {
		if math.Abs(coef[j]) > 0.05 {
			t.Errorf("noise coef %d = %v, want ~0", j, coef[j])
		}
	}
}

func TestLassoAlphaZeroMatchesOLS(t *testing.T) {
	x, y := makeLinearData(200, 0.2, 5)
	lasso := &Lasso{Alpha: 0}
	if err := lasso.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	ols := NewLinear()
	if err := ols.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lc, oc := lasso.Coefficients(), ols.Coefficients()
	for j := range lc {
		if math.Abs(lc[j]-oc[j]) > 1e-3 {
			t.Errorf("coef %d: lasso %v vs ols %v", j, lc[j], oc[j])
		}
	}
}

func TestLassoLargeAlphaZeroesEverything(t *testing.T) {
	x, y := makeLinearData(100, 0.2, 6)
	m := &Lasso{Alpha: 1e6}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.NumNonZero() != 0 {
		t.Errorf("nonzero = %d, want 0", m.NumNonZero())
	}
	// Prediction collapses to the target mean.
	pred, _ := m.Predict([]float64{100, 100})
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	if math.Abs(pred-mean) > 1e-9 {
		t.Errorf("pred = %v, want mean %v", pred, mean)
	}
}

func TestLassoConstantFeature(t *testing.T) {
	x := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []float64{2, 4, 6, 8}
	m := NewLasso()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	coef := m.Coefficients()
	if coef[1] != 0 {
		t.Errorf("constant feature coef = %v", coef[1])
	}
	pred, _ := m.Predict([]float64{5, 5})
	if math.Abs(pred-10) > 1 {
		t.Errorf("pred = %v, want ~10", pred)
	}
}

func TestLassoErrors(t *testing.T) {
	m := NewLasso()
	if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("want ErrNotTrained, got %v", err)
	}
	bad := &Lasso{Alpha: -1}
	if err := bad.Fit([][]float64{{1}}, []float64{1}); !errors.Is(err, ErrBadParam) {
		t.Errorf("want ErrBadParam, got %v", err)
	}
	if m.Name() != "Lasso" {
		t.Error("name wrong")
	}
}

func TestLastValue(t *testing.T) {
	m := NewLastValue()
	if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("want ErrNotTrained, got %v", err)
	}
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{5, 6, 7}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict([]float64{99})
	if err != nil || pred != 7 {
		t.Errorf("LV pred = %v %v", pred, err)
	}
	if _, err := m.Predict([]float64{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Errorf("want ErrBadShape, got %v", err)
	}
	if m.Name() != "LV" {
		t.Error("name wrong")
	}
}

func TestMovingAverage(t *testing.T) {
	m := &MovingAverage{Period: 3}
	x := [][]float64{{1}, {2}, {3}, {4}, {5}}
	y := []float64{10, 20, 30, 40, 50}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict([]float64{0})
	if err != nil || pred != 40 {
		t.Errorf("MA(3) pred = %v %v, want 40", pred, err)
	}
	// Period longer than data averages everything.
	long := &MovingAverage{Period: 100}
	long.Fit(x, y)
	pred, _ = long.Predict([]float64{0})
	if pred != 30 {
		t.Errorf("long MA = %v, want 30", pred)
	}
	// Default period is the paper's 30 days.
	if NewMovingAverage().Period != 30 {
		t.Error("default period != 30")
	}
	bad := &MovingAverage{Period: 0}
	if err := bad.Fit(x, y); !errors.Is(err, ErrBadParam) {
		t.Errorf("want ErrBadParam, got %v", err)
	}
	var untrained MovingAverage
	if _, err := untrained.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("want ErrNotTrained, got %v", err)
	}
	if m.Name() != "MA" {
		t.Error("name wrong")
	}
}

func TestPredictAll(t *testing.T) {
	x, y := makeLinearData(50, 0, 7)
	m := NewLinear()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	preds, err := PredictAll(m, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		if math.Abs(preds[i]-y[i]) > 1e-6 {
			t.Fatalf("PredictAll mismatch at %d", i)
		}
	}
	if _, err := PredictAll(m, [][]float64{{1}}); err == nil {
		t.Error("bad row accepted")
	}
}
