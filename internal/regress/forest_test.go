package regress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestRandomForestFitsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	n := 300
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		y[i] = math.Sin(x[i][0]) + 0.5*x[i][1] + 0.1*rng.NormFloat64()
	}
	m := NewRandomForest()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var mae float64
	for i := range x {
		pred, err := m.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		mae += math.Abs(pred - y[i])
	}
	mae /= float64(n)
	if mae > 0.4 {
		t.Errorf("forest MAE = %v", mae)
	}
	if m.NumTrees() != 100 {
		t.Errorf("trees = %d", m.NumTrees())
	}
}

func TestRandomForestBeatsSingleTreeOOS(t *testing.T) {
	// Out-of-sample, the bagged ensemble should not be worse than a
	// single deep tree on a noisy target.
	rng := rand.New(rand.NewSource(21))
	gen := func(n int) ([][]float64, []float64) {
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = []float64{rng.Float64() * 6, rng.Float64() * 6, rng.Float64() * 6}
			y[i] = x[i][0]*x[i][1] + 2*rng.NormFloat64()
		}
		return x, y
	}
	trainX, trainY := gen(250)
	testX, testY := gen(120)

	forest := NewRandomForest()
	if err := forest.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	tree := &Tree{MaxDepth: 12, MinSamplesLeaf: 1}
	if err := tree.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	mae := func(m Regressor) float64 {
		var e float64
		for i := range testX {
			pred, _ := m.Predict(testX[i])
			e += math.Abs(pred - testY[i])
		}
		return e / float64(len(testX))
	}
	if ef, et := mae(forest), mae(tree); ef > et*1.05 {
		t.Errorf("forest OOS MAE %v worse than single tree %v", ef, et)
	}
}

func TestRandomForestDeterministicForSeed(t *testing.T) {
	x := [][]float64{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}}
	y := []float64{1, 2, 3, 4, 5, 6}
	a := &RandomForest{NTrees: 20, MaxDepth: 3, Seed: 7}
	b := &RandomForest{NTrees: 20, MaxDepth: 3, Seed: 7}
	a.Fit(x, y)
	b.Fit(x, y)
	pa, _ := a.Predict([]float64{3.5, 4.5})
	pb, _ := b.Predict([]float64{3.5, 4.5})
	if pa != pb {
		t.Errorf("same seed, different predictions: %v vs %v", pa, pb)
	}
	c := &RandomForest{NTrees: 20, MaxDepth: 3, Seed: 8}
	c.Fit(x, y)
	pc, _ := c.Predict([]float64{3.5, 4.5})
	if pa == pc {
		t.Log("different seeds coincidentally equal; acceptable but unusual")
	}
}

func TestRandomForestErrors(t *testing.T) {
	var untrained RandomForest
	if _, err := untrained.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("want ErrNotTrained, got %v", err)
	}
	x := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	for _, m := range []*RandomForest{
		{NTrees: 0, MaxDepth: 3},
		{NTrees: 10, MaxDepth: 0},
	} {
		if err := m.Fit(x, y); !errors.Is(err, ErrBadParam) {
			t.Errorf("%+v: want ErrBadParam, got %v", m, err)
		}
	}
	m := NewRandomForest()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Errorf("want ErrBadShape, got %v", err)
	}
	if m.Name() != "RF" {
		t.Error("name wrong")
	}
	// MaxFeatures larger than p is clamped.
	wide := &RandomForest{NTrees: 5, MaxDepth: 2, MaxFeatures: 99, Seed: 1}
	if err := wide.Fit(x, y); err != nil {
		t.Fatal(err)
	}
}

func TestRidgeShrinksTowardZero(t *testing.T) {
	x, y := makeLinearData(100, 0.1, 22)
	ols := NewLinear()
	ols.Fit(x, y)
	strong := &Ridge{Alpha: 1e5}
	if err := strong.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	oc, rc := ols.Coefficients(), strong.Coefficients()
	for j := range rc {
		if math.Abs(rc[j]) > math.Abs(oc[j])*0.1 {
			t.Errorf("coef %d not shrunk: ridge %v vs ols %v", j, rc[j], oc[j])
		}
	}
	// Mild ridge stays close to OLS.
	mild := &Ridge{Alpha: 1e-6}
	mild.Fit(x, y)
	mc := mild.Coefficients()
	for j := range mc {
		if math.Abs(mc[j]-oc[j]) > 1e-3 {
			t.Errorf("mild ridge diverges: %v vs %v", mc[j], oc[j])
		}
	}
}

func TestRidgeErrors(t *testing.T) {
	bad := &Ridge{Alpha: 0}
	if err := bad.Fit([][]float64{{1}}, []float64{1}); !errors.Is(err, ErrBadParam) {
		t.Errorf("want ErrBadParam, got %v", err)
	}
	var untrained Ridge
	untrained.Alpha = 1
	if _, err := untrained.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("want ErrNotTrained, got %v", err)
	}
	if NewRidge().Name() != "Ridge" {
		t.Error("name wrong")
	}
}

func TestFactoryExtensions(t *testing.T) {
	rf, err := New(AlgForest)
	if err != nil || rf.Name() != "RF" {
		t.Errorf("New(RF) = %v %v", rf, err)
	}
	rg, err := New(AlgRidge)
	if err != nil || rg.Name() != "Ridge" {
		t.Errorf("New(Ridge) = %v %v", rg, err)
	}
	// The paper's comparison list stays at six.
	if len(Algorithms()) != 6 {
		t.Errorf("Algorithms() = %v", Algorithms())
	}
}
