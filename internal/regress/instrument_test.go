package regress

import (
	"bytes"
	"errors"
	"testing"
)

type stageCall struct {
	stage, alg string
	seconds    float64
}

func TestInstrumentReportsStages(t *testing.T) {
	var calls []stageCall
	m := Instrument(NewLastValue(), func(stage, alg string, seconds float64) {
		calls = append(calls, stageCall{stage, alg, seconds})
	})
	if m.Name() != "LV" {
		t.Errorf("name = %q, want LV", m.Name())
	}
	x := [][]float64{{1}, {2}}
	y := []float64{3, 4}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{5}); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 {
		t.Fatalf("got %d observations, want 2", len(calls))
	}
	if calls[0].stage != StageFit || calls[1].stage != StagePredict {
		t.Errorf("stages = %v", calls)
	}
	for _, c := range calls {
		if c.alg != "LV" {
			t.Errorf("algorithm label = %q, want LV", c.alg)
		}
		if c.seconds < 0 {
			t.Errorf("negative duration %v", c.seconds)
		}
	}
}

func TestInstrumentObservesErrors(t *testing.T) {
	var calls int
	m := Instrument(NewLinear(), func(_, _ string, _ float64) { calls++ })
	if err := m.Fit(nil, nil); !errors.Is(err, ErrBadShape) {
		t.Fatalf("err = %v, want ErrBadShape", err)
	}
	if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
	if calls != 2 {
		t.Errorf("observed %d stages, want 2 (errors must still be timed)", calls)
	}
}

func TestInstrumentNilObserver(t *testing.T) {
	base := NewLasso()
	if m := Instrument(base, nil); m != base {
		t.Error("nil observer should return the model unchanged")
	}
}

func TestInstrumentPersistence(t *testing.T) {
	m := Instrument(NewLinear(), func(_, _ string, _ float64) {})
	if err := m.Fit([][]float64{{1}, {2}, {3}}, []float64{2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Predict([]float64{4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Predict([]float64{4})
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("loaded prediction %v, want %v", got, want)
	}
}
