package regress

import (
	"fmt"
	"math"
	"sort"
)

// GBLoss selects the gradient-boosting loss function.
type GBLoss int

const (
	// LossLAD is least absolute deviation, the paper's setting
	// (loss = lad): robust to the spiky utilization series.
	LossLAD GBLoss = iota
	// LossLS is least squares.
	LossLS
)

// String implements fmt.Stringer.
func (l GBLoss) String() string {
	if l == LossLS {
		return "ls"
	}
	return "lad"
}

// GradientBoosting is a gradient-boosted ensemble of CART regression
// trees. With the paper's parameters (learning rate 0.1, 100
// estimators, max depth 1, LAD loss) each stage is a stump fitted to
// the loss gradient, with leaf values re-optimized for the loss
// (medians for LAD).
type GradientBoosting struct {
	// LearningRate shrinks each stage (default 0.1).
	LearningRate float64
	// NEstimators is the number of boosting stages (default 100).
	NEstimators int
	// MaxDepth is the per-stage tree depth (default 1).
	MaxDepth int
	// Loss selects LAD (default) or LS.
	Loss GBLoss

	init   float64
	stages []*Tree
	p      int
}

// NewGradientBoosting returns a GB model with the paper's settings.
func NewGradientBoosting() *GradientBoosting {
	return &GradientBoosting{LearningRate: 0.1, NEstimators: 100, MaxDepth: 1, Loss: LossLAD}
}

// Name implements Regressor.
func (m *GradientBoosting) Name() string { return "GB" }

// Fit implements Regressor.
func (m *GradientBoosting) Fit(x [][]float64, y []float64) error {
	n, p, err := checkXY(x, y)
	if err != nil {
		return err
	}
	if m.LearningRate <= 0 || m.LearningRate > 1 {
		return fmt.Errorf("%w: learning rate %v", ErrBadParam, m.LearningRate)
	}
	if m.NEstimators <= 0 {
		return fmt.Errorf("%w: %d estimators", ErrBadParam, m.NEstimators)
	}
	if m.MaxDepth < 1 {
		return fmt.Errorf("%w: max depth %d", ErrBadParam, m.MaxDepth)
	}

	// Initial prediction: loss minimizer of the raw targets.
	switch m.Loss {
	case LossLAD:
		m.init = median(y)
	case LossLS:
		sum := 0.0
		for _, v := range y {
			sum += v
		}
		m.init = sum / float64(n)
	default:
		return fmt.Errorf("%w: unknown loss %v", ErrBadParam, m.Loss)
	}

	current := make([]float64, n)
	for i := range current {
		current[i] = m.init
	}
	grad := make([]float64, n)
	m.stages = make([]*Tree, 0, m.NEstimators)
	m.p = p

	for stage := 0; stage < m.NEstimators; stage++ {
		// Negative gradient of the loss at the current predictions.
		for i := 0; i < n; i++ {
			r := y[i] - current[i]
			if m.Loss == LossLAD {
				grad[i] = sign(r)
			} else {
				grad[i] = r
			}
		}
		tree := &Tree{MaxDepth: m.MaxDepth, MinSamplesLeaf: 1}
		if err := tree.Fit(x, grad); err != nil {
			return fmt.Errorf("regress: gbm stage %d: %w", stage, err)
		}
		if m.Loss == LossLAD {
			// LAD leaf re-optimization: each leaf predicts the median
			// of the actual residuals y − F of its samples, not the
			// mean of the gradient signs.
			relabelLeavesLAD(tree.root, x, y, current)
		}
		for i := 0; i < n; i++ {
			v, err := tree.Predict(x[i])
			if err != nil {
				return err
			}
			current[i] += m.LearningRate * v
		}
		m.stages = append(m.stages, tree)
	}
	return nil
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// relabelLeavesLAD walks the fitted tree, routes every training sample
// to its leaf and replaces the leaf value with the median residual.
func relabelLeavesLAD(root *treeNode, x [][]float64, y, current []float64) {
	groups := map[*treeNode][]float64{}
	for i := range x {
		node := root
		for !node.leaf {
			if x[i][node.feature] <= node.threshold {
				node = node.left
			} else {
				node = node.right
			}
		}
		groups[node] = append(groups[node], y[i]-current[i])
	}
	for node, residuals := range groups {
		node.value = median(residuals)
	}
}

// Predict implements Regressor.
func (m *GradientBoosting) Predict(x []float64) (float64, error) {
	if m.stages == nil {
		return 0, ErrNotTrained
	}
	if err := checkRow(x, m.p); err != nil {
		return 0, err
	}
	out := m.init
	for _, tree := range m.stages {
		v, err := tree.Predict(x)
		if err != nil {
			return 0, err
		}
		out += m.LearningRate * v
	}
	return out, nil
}

// NumStages returns the number of fitted boosting stages.
func (m *GradientBoosting) NumStages() int { return len(m.stages) }
