package regress

import (
	"fmt"
	"sort"
)

// Algorithm identifies one of the study's algorithms.
type Algorithm string

// The algorithms compared in Figure 5, plus the plain tree used by
// ablations.
const (
	AlgLastValue     Algorithm = "LV"
	AlgMovingAverage Algorithm = "MA"
	AlgLinear        Algorithm = "LR"
	AlgLasso         Algorithm = "Lasso"
	AlgSVR           Algorithm = "SVR"
	AlgGB            Algorithm = "GB"
	AlgTree          Algorithm = "Tree"
	// AlgForest and AlgRidge are not part of the paper's comparison;
	// they serve the related-work baseline ([8], [14], [3] use Random
	// Forests) and the regularization ablations.
	AlgForest Algorithm = "RF"
	AlgRidge  Algorithm = "Ridge"
)

// Algorithms returns the six algorithms of the paper's comparison in
// presentation order (baselines first).
func Algorithms() []Algorithm {
	return []Algorithm{AlgLastValue, AlgMovingAverage, AlgLinear, AlgLasso, AlgSVR, AlgGB}
}

// New constructs a fresh regressor for the algorithm with the paper's
// default hyper-parameters.
func New(a Algorithm) (Regressor, error) {
	switch a {
	case AlgLastValue:
		return NewLastValue(), nil
	case AlgMovingAverage:
		return NewMovingAverage(), nil
	case AlgLinear:
		return NewLinear(), nil
	case AlgLasso:
		return NewLasso(), nil
	case AlgSVR:
		return NewSVR(), nil
	case AlgGB:
		return NewGradientBoosting(), nil
	case AlgTree:
		return NewTree(), nil
	case AlgForest:
		return NewRandomForest(), nil
	case AlgRidge:
		return NewRidge(), nil
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %q", ErrBadParam, a)
	}
}

// GridPoint is one hyper-parameter assignment.
type GridPoint map[string]float64

// GridSearch fits factory-built models for every grid point using an
// ordered train/validation split (the last valFrac of rows validate,
// preserving time order as required for series data) and returns the
// point minimizing mean absolute error. apply configures a fresh model
// from a grid point.
func GridSearch(
	x [][]float64, y []float64,
	grid []GridPoint,
	build func(GridPoint) (Regressor, error),
	valFrac float64,
) (best GridPoint, bestErr float64, err error) {
	n, _, err := checkXY(x, y)
	if err != nil {
		return nil, 0, err
	}
	if len(grid) == 0 {
		return nil, 0, fmt.Errorf("%w: empty grid", ErrBadParam)
	}
	if valFrac <= 0 || valFrac >= 1 {
		return nil, 0, fmt.Errorf("%w: validation fraction %v", ErrBadParam, valFrac)
	}
	split := n - int(float64(n)*valFrac)
	if split < 1 || split >= n {
		return nil, 0, fmt.Errorf("%w: %d rows leave no train/validation split", ErrBadShape, n)
	}
	bestErr = -1
	for _, point := range grid {
		model, err := build(point)
		if err != nil {
			return nil, 0, err
		}
		if err := model.Fit(x[:split], y[:split]); err != nil {
			return nil, 0, err
		}
		var mae float64
		for i := split; i < n; i++ {
			pred, err := model.Predict(x[i])
			if err != nil {
				return nil, 0, err
			}
			d := pred - y[i]
			if d < 0 {
				d = -d
			}
			mae += d
		}
		mae /= float64(n - split)
		if bestErr < 0 || mae < bestErr {
			bestErr = mae
			best = point
		}
	}
	return best, bestErr, nil
}

// ExpandGrid builds the cross product of the named parameter values,
// in deterministic order.
func ExpandGrid(params map[string][]float64) []GridPoint {
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	points := []GridPoint{{}}
	for _, name := range names {
		var next []GridPoint
		for _, base := range points {
			for _, v := range params[name] {
				gp := GridPoint{}
				for k, val := range base {
					gp[k] = val
				}
				gp[name] = v
				next = append(next, gp)
			}
		}
		points = next
	}
	return points
}
