package regress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSVRFitsSine(t *testing.T) {
	// A smooth nonlinear function: SVR with RBF must track it closely,
	// far better than a linear fit could.
	n := 120
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i) / float64(n) * 4 * math.Pi
		x[i] = []float64{v}
		y[i] = 3 * math.Sin(v)
	}
	m := NewSVR()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var mae float64
	for i := range x {
		pred, err := m.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		mae += math.Abs(pred - y[i])
	}
	mae /= float64(n)
	if mae > 0.35 {
		t.Errorf("SVR sine MAE = %v", mae)
	}
	if m.NumSupportVectors() == 0 {
		t.Error("no support vectors")
	}
}

func TestSVRLinearTrend(t *testing.T) {
	x, y := makeLinearData(150, 0.1, 8)
	m := NewSVR()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var mae float64
	for i := range x {
		pred, _ := m.Predict(x[i])
		mae += math.Abs(pred - y[i])
	}
	mae /= float64(len(x))
	if mae > 1.0 {
		t.Errorf("SVR linear MAE = %v", mae)
	}
}

func TestSVRConstantTarget(t *testing.T) {
	// All targets inside one ε tube: the model must predict the
	// constant via the bias.
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	m := NewSVR()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict([]float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-5) > 0.2 {
		t.Errorf("constant pred = %v", pred)
	}
}

func TestSVREpsilonTubeSparsity(t *testing.T) {
	// With a huge ε every point is inside the tube: no support vectors.
	x, y := makeLinearData(50, 0.1, 9)
	m := &SVR{C: 10, Epsilon: 1e6, Gamma: 1}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.NumSupportVectors() != 0 {
		t.Errorf("support vectors = %d, want 0", m.NumSupportVectors())
	}
	// Larger ε must not yield more SVs than smaller ε.
	tight := &SVR{C: 10, Epsilon: 0.01, Gamma: 1}
	tight.Fit(x, y)
	loose := &SVR{C: 10, Epsilon: 1.0, Gamma: 1}
	loose.Fit(x, y)
	if loose.NumSupportVectors() > tight.NumSupportVectors() {
		t.Errorf("sv count not monotone in epsilon: %d > %d", loose.NumSupportVectors(), tight.NumSupportVectors())
	}
}

func TestSVRParamErrors(t *testing.T) {
	x := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	for _, m := range []*SVR{
		{C: 0, Epsilon: 0.1, Gamma: 1},
		{C: 10, Epsilon: -1, Gamma: 1},
		{C: 10, Epsilon: 0.1, Gamma: 0},
	} {
		if err := m.Fit(x, y); !errors.Is(err, ErrBadParam) {
			t.Errorf("%+v: want ErrBadParam, got %v", m, err)
		}
	}
	var untrained SVR
	if _, err := untrained.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("want ErrNotTrained, got %v", err)
	}
	m := NewSVR()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Errorf("want ErrBadShape, got %v", err)
	}
	if m.Name() != "SVR" {
		t.Error("name wrong")
	}
}

func TestTreeFitsStep(t *testing.T) {
	// A step function is exactly representable by a stump.
	x := [][]float64{{1}, {2}, {3}, {10}, {11}, {12}}
	y := []float64{1, 1, 1, 9, 9, 9}
	m := &Tree{MaxDepth: 1, MinSamplesLeaf: 1}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lo, _ := m.Predict([]float64{2})
	hi, _ := m.Predict([]float64{11})
	if lo != 1 || hi != 9 {
		t.Errorf("stump = %v / %v", lo, hi)
	}
	if m.Depth() != 1 {
		t.Errorf("depth = %d", m.Depth())
	}
}

func TestTreeDeepFitsXor(t *testing.T) {
	// XOR-like interaction needs depth 2.
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []float64{0, 1, 1, 0}
	m := &Tree{MaxDepth: 2, MinSamplesLeaf: 1}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		pred, _ := m.Predict(x[i])
		if math.Abs(pred-y[i]) > 1e-9 {
			t.Errorf("xor(%v) = %v, want %v", x[i], pred, y[i])
		}
	}
}

func TestTreeMedianLeaves(t *testing.T) {
	x := [][]float64{{1}, {1}, {1}}
	y := []float64{1, 2, 100}
	mean := &Tree{MaxDepth: 1}
	mean.Fit(x, y)
	med := &Tree{MaxDepth: 1, LeafMedian: true}
	med.Fit(x, y)
	pm, _ := mean.Predict([]float64{1})
	pd, _ := med.Predict([]float64{1})
	if math.Abs(pm-103.0/3) > 1e-9 {
		t.Errorf("mean leaf = %v", pm)
	}
	if pd != 2 {
		t.Errorf("median leaf = %v", pd)
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	m := &Tree{MaxDepth: 5, MinSamplesLeaf: 2}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// With minLeaf=2 the deepest possible split structure still keeps
	// leaves of >= 2 samples: predictions come from pair means.
	pred, _ := m.Predict([]float64{1})
	if pred != 1.5 {
		t.Errorf("pred = %v, want pair mean 1.5", pred)
	}
}

func TestTreeConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{7, 7, 7}
	m := NewTree()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, _ := m.Predict([]float64{99})
	if pred != 7 {
		t.Errorf("pred = %v", pred)
	}
	if m.Depth() != 0 {
		t.Errorf("constant tree depth = %d", m.Depth())
	}
}

func TestTreeErrors(t *testing.T) {
	var untrained Tree
	if _, err := untrained.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("want ErrNotTrained, got %v", err)
	}
	bad := &Tree{MaxDepth: 0}
	if err := bad.Fit([][]float64{{1}}, []float64{1}); !errors.Is(err, ErrBadParam) {
		t.Errorf("want ErrBadParam, got %v", err)
	}
	if (&Tree{}).Name() != "Tree" {
		t.Error("name wrong")
	}
}

func TestGBMReducesTrainingError(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{rng.Float64() * 10}
		y[i] = math.Sin(x[i][0]) * 5
	}
	mae := func(stages int) float64 {
		m := &GradientBoosting{LearningRate: 0.1, NEstimators: stages, MaxDepth: 2, Loss: LossLAD}
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		var e float64
		for i := range x {
			pred, _ := m.Predict(x[i])
			e += math.Abs(pred - y[i])
		}
		return e / float64(n)
	}
	few, many := mae(5), mae(150)
	if many >= few {
		t.Errorf("boosting did not reduce error: %v -> %v", few, many)
	}
	if many > 0.8 {
		t.Errorf("GBM final MAE = %v", many)
	}
}

func TestGBMLADRobustToOutliers(t *testing.T) {
	// One gross outlier: LAD's median-based fit must stay near the
	// clean trend while LS is dragged away.
	n := 60
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{float64(i % 2)}
		y[i] = 1 + 2*x[i][0]
	}
	y[0] = 500 // outlier at x=0
	lad := &GradientBoosting{LearningRate: 0.5, NEstimators: 60, MaxDepth: 1, Loss: LossLAD}
	if err := lad.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	ls := &GradientBoosting{LearningRate: 0.5, NEstimators: 60, MaxDepth: 1, Loss: LossLS}
	if err := ls.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pLAD, _ := lad.Predict([]float64{0})
	pLS, _ := ls.Predict([]float64{0})
	if math.Abs(pLAD-1) > 0.3 {
		t.Errorf("LAD pred = %v, want ~1", pLAD)
	}
	if math.Abs(pLS-1) < math.Abs(pLAD-1) {
		t.Errorf("LS (%v) more robust than LAD (%v)?", pLS, pLAD)
	}
}

func TestGBMPaperDefaults(t *testing.T) {
	m := NewGradientBoosting()
	if m.LearningRate != 0.1 || m.NEstimators != 100 || m.MaxDepth != 1 || m.Loss != LossLAD {
		t.Errorf("defaults = %+v", m)
	}
	if LossLAD.String() != "lad" || LossLS.String() != "ls" {
		t.Error("loss names wrong")
	}
}

func TestGBMErrors(t *testing.T) {
	x := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	for _, m := range []*GradientBoosting{
		{LearningRate: 0, NEstimators: 10, MaxDepth: 1},
		{LearningRate: 2, NEstimators: 10, MaxDepth: 1},
		{LearningRate: 0.1, NEstimators: 0, MaxDepth: 1},
		{LearningRate: 0.1, NEstimators: 10, MaxDepth: 0},
		{LearningRate: 0.1, NEstimators: 10, MaxDepth: 1, Loss: GBLoss(9)},
	} {
		if err := m.Fit(x, y); !errors.Is(err, ErrBadParam) {
			t.Errorf("%+v: want ErrBadParam, got %v", m, err)
		}
	}
	var untrained GradientBoosting
	if _, err := untrained.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("want ErrNotTrained, got %v", err)
	}
	m := NewGradientBoosting()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.NumStages() != 100 {
		t.Errorf("stages = %d", m.NumStages())
	}
	if m.Name() != "GB" {
		t.Error("name wrong")
	}
}

func TestFactory(t *testing.T) {
	algs := Algorithms()
	if len(algs) != 6 {
		t.Fatalf("algorithms = %v", algs)
	}
	for _, a := range algs {
		m, err := New(a)
		if err != nil {
			t.Fatalf("New(%s): %v", a, err)
		}
		if m.Name() != string(a) {
			t.Errorf("New(%s).Name() = %s", a, m.Name())
		}
	}
	if m, err := New(AlgTree); err != nil || m.Name() != "Tree" {
		t.Errorf("New(Tree) = %v %v", m, err)
	}
	if _, err := New("bogus"); !errors.Is(err, ErrBadParam) {
		t.Errorf("want ErrBadParam, got %v", err)
	}
}

func TestExpandGrid(t *testing.T) {
	grid := ExpandGrid(map[string][]float64{"a": {1, 2}, "b": {10, 20, 30}})
	if len(grid) != 6 {
		t.Fatalf("grid size = %d", len(grid))
	}
	seen := map[[2]float64]bool{}
	for _, gp := range grid {
		seen[[2]float64{gp["a"], gp["b"]}] = true
	}
	if len(seen) != 6 {
		t.Errorf("grid has duplicates: %v", grid)
	}
	if got := ExpandGrid(nil); len(got) != 1 {
		t.Errorf("empty grid = %v", got)
	}
}

func TestGridSearchPicksBestAlpha(t *testing.T) {
	// Sparse ground truth: moderate alpha should beat alpha=0 (which
	// overfits noise) and huge alpha (which kills the signal).
	rng := rand.New(rand.NewSource(11))
	n := 120
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, 12)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = 3*row[0] + rng.NormFloat64()
	}
	grid := ExpandGrid(map[string][]float64{"alpha": {0.05, 1000}})
	best, bestErr, err := GridSearch(x, y, grid, func(gp GridPoint) (Regressor, error) {
		return &Lasso{Alpha: gp["alpha"]}, nil
	}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if best["alpha"] != 0.05 {
		t.Errorf("best alpha = %v", best["alpha"])
	}
	if bestErr <= 0 {
		t.Errorf("best err = %v", bestErr)
	}
}

func TestGridSearchErrors(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	build := func(GridPoint) (Regressor, error) { return NewLinear(), nil }
	if _, _, err := GridSearch(nil, nil, []GridPoint{{}}, build, 0.2); !errors.Is(err, ErrBadShape) {
		t.Errorf("want ErrBadShape, got %v", err)
	}
	if _, _, err := GridSearch(x, y, nil, build, 0.2); !errors.Is(err, ErrBadParam) {
		t.Errorf("want ErrBadParam (empty grid), got %v", err)
	}
	if _, _, err := GridSearch(x, y, []GridPoint{{}}, build, 0); !errors.Is(err, ErrBadParam) {
		t.Errorf("want ErrBadParam (frac), got %v", err)
	}
	if _, _, err := GridSearch([][]float64{{1}}, []float64{1}, []GridPoint{{}}, build, 0.5); !errors.Is(err, ErrBadShape) {
		t.Errorf("want ErrBadShape (no split), got %v", err)
	}
}
