package regress

import "fmt"

// LastValue is the LV baseline: predict the last observed target.
// It ignores features entirely and keeps the final training target.
type LastValue struct {
	last    float64
	trained bool
	p       int
}

// NewLastValue returns the LV baseline.
func NewLastValue() *LastValue { return &LastValue{} }

// Name implements Regressor.
func (m *LastValue) Name() string { return "LV" }

// Fit implements Regressor.
func (m *LastValue) Fit(x [][]float64, y []float64) error {
	_, p, err := checkXY(x, y)
	if err != nil {
		return err
	}
	m.last = y[len(y)-1]
	m.p = p
	m.trained = true
	return nil
}

// Predict implements Regressor.
func (m *LastValue) Predict(x []float64) (float64, error) {
	if !m.trained {
		return 0, ErrNotTrained
	}
	if err := checkRow(x, m.p); err != nil {
		return 0, err
	}
	return m.last, nil
}

// MovingAverage is the MA baseline: predict the mean of the last
// Period training targets (the paper uses a 30-day period).
type MovingAverage struct {
	// Period is the averaging window in days (default 30).
	Period int

	mean    float64
	trained bool
	p       int
}

// NewMovingAverage returns the MA baseline with the paper's 30-day
// period.
func NewMovingAverage() *MovingAverage { return &MovingAverage{Period: 30} }

// Name implements Regressor.
func (m *MovingAverage) Name() string { return "MA" }

// Fit implements Regressor.
func (m *MovingAverage) Fit(x [][]float64, y []float64) error {
	n, p, err := checkXY(x, y)
	if err != nil {
		return err
	}
	period := m.Period
	if period <= 0 {
		return fmt.Errorf("%w: moving-average period %d", ErrBadParam, period)
	}
	if period > n {
		period = n
	}
	sum := 0.0
	for _, v := range y[n-period:] {
		sum += v
	}
	m.mean = sum / float64(period)
	m.p = p
	m.trained = true
	return nil
}

// Predict implements Regressor.
func (m *MovingAverage) Predict(x []float64) (float64, error) {
	if !m.trained {
		return 0, ErrNotTrained
	}
	if err := checkRow(x, m.p); err != nil {
		return 0, err
	}
	return m.mean, nil
}
