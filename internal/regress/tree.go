package regress

import (
	"fmt"
	"math"
	"sort"
)

// Tree is a CART regression tree grown with variance-reduction splits.
// Leaf values are the mean (LeafMean) or median (LeafMedian) of the
// targets reaching the leaf; gradient boosting with LAD loss uses
// median leaves.
type Tree struct {
	// MaxDepth limits the tree depth; depth 1 is a stump (the paper's
	// Gradient Boosting setting). Must be >= 1.
	MaxDepth int
	// MinSamplesLeaf is the minimum number of samples per leaf
	// (default 1).
	MinSamplesLeaf int
	// LeafMedian selects median leaf values instead of means.
	LeafMedian bool

	// splitFeatures, when set, returns the candidate feature indices
	// for one split (random-forest-style per-split subsampling).
	splitFeatures func(p int) []int

	root *treeNode
	p    int
}

type treeNode struct {
	// Internal nodes.
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	// Leaves.
	leaf  bool
	value float64
}

// NewTree returns a depth-3 mean-leaf regression tree.
func NewTree() *Tree { return &Tree{MaxDepth: 3, MinSamplesLeaf: 1} }

// Name implements Regressor.
func (m *Tree) Name() string { return "Tree" }

// Fit implements Regressor.
func (m *Tree) Fit(x [][]float64, y []float64) error {
	_, p, err := checkXY(x, y)
	if err != nil {
		return err
	}
	if m.MaxDepth < 1 {
		return fmt.Errorf("%w: tree depth %d", ErrBadParam, m.MaxDepth)
	}
	minLeaf := m.MinSamplesLeaf
	if minLeaf < 1 {
		minLeaf = 1
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	m.p = p
	m.root = m.grow(x, y, idx, m.MaxDepth, minLeaf)
	return nil
}

// grow builds a node over the sample indices idx.
func (m *Tree) grow(x [][]float64, y []float64, idx []int, depth, minLeaf int) *treeNode {
	if depth == 0 || len(idx) < 2*minLeaf || constantTargets(y, idx) {
		return &treeNode{leaf: true, value: m.leafValue(y, idx)}
	}
	candidates := allFeatures(len(x[idx[0]]))
	if m.splitFeatures != nil {
		candidates = m.splitFeatures(len(x[idx[0]]))
	}
	feature, threshold, ok := bestSplit(x, y, idx, minLeaf, candidates)
	if !ok {
		return &treeNode{leaf: true, value: m.leafValue(y, idx)}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &treeNode{
		feature:   feature,
		threshold: threshold,
		left:      m.grow(x, y, left, depth-1, minLeaf),
		right:     m.grow(x, y, right, depth-1, minLeaf),
	}
}

func constantTargets(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] { //lint:allow floatsafety constant-target check compares stored training values
			return false
		}
	}
	return true
}

func (m *Tree) leafValue(y []float64, idx []int) float64 {
	vals := make([]float64, len(idx))
	for k, i := range idx {
		vals[k] = y[i]
	}
	if m.LeafMedian {
		sort.Float64s(vals)
		n := len(vals)
		if n%2 == 1 {
			return vals[n/2]
		}
		return (vals[n/2-1] + vals[n/2]) / 2
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

func allFeatures(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}

// bestSplit finds the (feature, threshold) among the candidate
// features maximizing the reduction of the sum of squared errors,
// scanning sorted feature values with prefix sums. Splits leaving
// fewer than minLeaf samples on a side are rejected.
func bestSplit(x [][]float64, y []float64, idx []int, minLeaf int, candidates []int) (feature int, threshold float64, ok bool) {
	n := len(idx)
	// Zero-gain splits are allowed (as in scikit-learn's CART): a
	// split that doesn't reduce SSE can still enable a deeper split
	// that does (e.g. XOR interactions).
	bestGain := math.Inf(-1)

	order := make([]int, n)
	for _, f := range candidates {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })

		var totalSum float64
		for _, i := range order {
			totalSum += y[i]
		}
		var totalSq float64
		for _, i := range order {
			totalSq += y[i] * y[i]
		}
		sseAll := totalSq - totalSum*totalSum/float64(n)

		var leftSum, leftSq float64
		for k := 0; k < n-1; k++ {
			i := order[k]
			leftSum += y[i]
			leftSq += y[i] * y[i]
			// Only split between distinct feature values.
			//lint:allow floatsafety split points sit between distinct stored feature values
			if x[order[k+1]][f] == x[i][f] {
				continue
			}
			nl, nr := k+1, n-k-1
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/float64(nl)) + (rightSq - rightSum*rightSum/float64(nr))
			gain := sseAll - sse
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = (x[i][f] + x[order[k+1]][f]) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// Predict implements Regressor.
func (m *Tree) Predict(x []float64) (float64, error) {
	if m.root == nil {
		return 0, ErrNotTrained
	}
	if err := checkRow(x, m.p); err != nil {
		return 0, err
	}
	node := m.root
	for !node.leaf {
		if x[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.value, nil
}

// Depth returns the depth of the fitted tree (0 for a single leaf).
func (m *Tree) Depth() int { return nodeDepth(m.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	return 1 + int(math.Max(float64(l), float64(r)))
}
