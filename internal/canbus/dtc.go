package canbus

import (
	"errors"
	"fmt"
)

// The study's report contents include "Diagnostic Messages". This file
// implements the J1939 active-diagnostics message (DM1, PGN 65226)
// with its 4-byte DTC records, including multi-packet transmission via
// the TP.BAM transport protocol when more than two trouble codes are
// active.

// Diagnostic and transport PGNs. TP.CM and TP.DT are PDU1-format
// groups (the low byte of the identifier's PGN field is a destination
// address; 0xFF = global for BAM).
const (
	PGNDM1  uint32 = 65226 // active diagnostic trouble codes
	PGNTPCM uint32 = 60416 // transport protocol, connection management (0xEC00)
	PGNTPDT uint32 = 60160 // transport protocol, data transfer (0xEB00)

	globalDest uint32 = 0xFF
)

// tpCMBAM is the TP.CM control byte for a Broadcast Announce Message.
const tpCMBAM = 32

// DTC is one active diagnostic trouble code.
type DTC struct {
	// SPN is the suspect parameter number (19 bits).
	SPN uint32
	// FMI is the failure mode identifier (5 bits).
	FMI uint8
	// OC is the occurrence count (7 bits).
	OC uint8
}

// Validate checks field widths.
func (d DTC) Validate() error {
	if d.SPN >= 1<<19 {
		return fmt.Errorf("%w: spn %d exceeds 19 bits", ErrInvalidFrame, d.SPN)
	}
	if d.FMI >= 1<<5 {
		return fmt.Errorf("%w: fmi %d exceeds 5 bits", ErrInvalidFrame, d.FMI)
	}
	if d.OC >= 1<<7 {
		return fmt.Errorf("%w: oc %d exceeds 7 bits", ErrInvalidFrame, d.OC)
	}
	return nil
}

// pack serializes the DTC into the 4-byte J1939 "version 4" layout.
func (d DTC) pack() [4]byte {
	return [4]byte{
		byte(d.SPN),
		byte(d.SPN >> 8),
		byte((d.SPN>>16)&0x7)<<5 | d.FMI&0x1F,
		d.OC & 0x7F,
	}
}

func unpackDTC(b []byte) DTC {
	return DTC{
		SPN: uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2]>>5)<<16,
		FMI: b[2] & 0x1F,
		OC:  b[3] & 0x7F,
	}
}

// ErrTransport is wrapped by transport-protocol decoding failures.
var ErrTransport = errors.New("canbus: transport protocol error")

// EncodeDM1 serializes the lamp status and active trouble codes into
// CAN frames: a single DM1 frame when the payload fits 8 bytes (up to
// one DTC), otherwise a TP.BAM announcement followed by TP.DT data
// frames.
func EncodeDM1(lamps uint16, dtcs []DTC, src uint8) ([]Frame, error) {
	for _, d := range dtcs {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	payload := []byte{byte(lamps), byte(lamps >> 8)}
	if len(dtcs) == 0 {
		// No active codes: the spec sends an all-clear DTC of zeros.
		payload = append(payload, 0, 0, 0, 0)
	}
	for _, d := range dtcs {
		p := d.pack()
		payload = append(payload, p[:]...)
	}

	if len(payload) <= 8 {
		f := Frame{ID: J1939ID(6, PGNDM1, src), Extended: true, DLC: 8}
		copy(f.Data[:], payload)
		// Pad with 0xFF per J1939 convention.
		for i := len(payload); i < 8; i++ {
			f.Data[i] = 0xFF
		}
		return []Frame{f}, nil
	}

	// TP.BAM: announce, then 7-byte data packets.
	total := len(payload)
	packets := (total + 6) / 7
	if packets > 255 {
		return nil, fmt.Errorf("%w: %d DTCs exceed the 255-packet BAM limit", ErrTransport, len(dtcs))
	}
	cm := Frame{ID: J1939ID(7, PGNTPCM|globalDest, src), Extended: true, DLC: 8}
	dm1 := PGNDM1
	cm.Data = [8]byte{
		tpCMBAM,
		byte(total), byte(total >> 8),
		byte(packets),
		0xFF,
		byte(dm1), byte(dm1 >> 8), byte(dm1 >> 16),
	}
	frames := []Frame{cm}
	for seq := 0; seq < packets; seq++ {
		dt := Frame{ID: J1939ID(7, PGNTPDT|globalDest, src), Extended: true, DLC: 8}
		dt.Data[0] = byte(seq + 1)
		for i := 0; i < 7; i++ {
			idx := seq*7 + i
			if idx < total {
				dt.Data[1+i] = payload[idx]
			} else {
				dt.Data[1+i] = 0xFF
			}
		}
		frames = append(frames, dt)
	}
	return frames, nil
}

// DecodeDM1 parses the frames produced by EncodeDM1 (a single DM1
// frame, or a TP.CM BAM announcement followed by its TP.DT packets in
// order) and returns the lamp status and active trouble codes.
func DecodeDM1(frames []Frame) (lamps uint16, dtcs []DTC, err error) {
	if len(frames) == 0 {
		return 0, nil, fmt.Errorf("%w: no frames", ErrTransport)
	}
	first := frames[0]
	if err := first.Validate(); err != nil {
		return 0, nil, err
	}
	var payload []byte
	switch PGN(first.ID) {
	case PGNDM1:
		if len(frames) != 1 {
			return 0, nil, fmt.Errorf("%w: single-frame DM1 followed by %d extra frames", ErrTransport, len(frames)-1)
		}
		payload = first.Data[:]
	case PGNTPCM:
		if first.Data[0] != tpCMBAM {
			return 0, nil, fmt.Errorf("%w: unsupported TP.CM control %d", ErrTransport, first.Data[0])
		}
		announcedPGN := uint32(first.Data[5]) | uint32(first.Data[6])<<8 | uint32(first.Data[7])<<16
		if announcedPGN != PGNDM1 {
			return 0, nil, fmt.Errorf("%w: BAM announces pgn %#x, want DM1", ErrTransport, announcedPGN)
		}
		total := int(first.Data[1]) | int(first.Data[2])<<8
		packets := int(first.Data[3])
		if len(frames)-1 != packets {
			return 0, nil, fmt.Errorf("%w: announced %d packets, got %d", ErrTransport, packets, len(frames)-1)
		}
		payload = make([]byte, 0, packets*7)
		for i, f := range frames[1:] {
			if PGN(f.ID) != PGNTPDT {
				return 0, nil, fmt.Errorf("%w: frame %d is pgn %#x, want TP.DT", ErrTransport, i+1, PGN(f.ID))
			}
			if int(f.Data[0]) != i+1 {
				return 0, nil, fmt.Errorf("%w: packet %d has sequence %d", ErrTransport, i+1, f.Data[0])
			}
			payload = append(payload, f.Data[1:]...)
		}
		if total > len(payload) {
			return 0, nil, fmt.Errorf("%w: announced %d bytes, reassembled %d", ErrTransport, total, len(payload))
		}
		payload = payload[:total]
	default:
		return 0, nil, fmt.Errorf("%w: unexpected pgn %#x", ErrTransport, PGN(first.ID))
	}

	if len(payload) < 2 {
		return 0, nil, fmt.Errorf("%w: payload too short", ErrTransport)
	}
	lamps = uint16(payload[0]) | uint16(payload[1])<<8
	body := payload[2:]
	for len(body) >= 4 {
		raw := body[:4]
		body = body[4:]
		// Skip padding and the all-clear record.
		if raw[0] == 0xFF && raw[1] == 0xFF {
			continue
		}
		d := unpackDTC(raw)
		if d.SPN == 0 && d.FMI == 0 {
			continue
		}
		dtcs = append(dtcs, d)
	}
	return lamps, dtcs, nil
}
