// Package canbus models the Controller Area Network data layer the
// study's telematics pipeline is built on: CAN 2.0 frames, bit-level
// signal packing (Intel and Motorola byte order), J1939-style
// parameter-group messages carrying the engine and vehicle channels
// the paper enumerates (engine rpm, fuel level, oil pressure, coolant
// temperature, fuel rate, speed, percent load, digging pressure, pump
// drive temperature, oil tank temperature), and the on-board
// aggregation of high-frequency samples into the 10-minute reports the
// vehicles upload to the central server.
package canbus

import (
	"errors"
	"fmt"
)

// Frame is a CAN 2.0 data frame.
type Frame struct {
	// ID is the arbitration identifier: 11 bits for base frames,
	// 29 bits for extended (J1939) frames.
	ID uint32
	// Extended selects the 29-bit identifier format.
	Extended bool
	// DLC is the data length code, 0..8.
	DLC uint8
	// Data holds the payload; only the first DLC bytes are meaningful.
	Data [8]byte
}

// Identifier width limits.
const (
	MaxBaseID     = 1<<11 - 1
	MaxExtendedID = 1<<29 - 1
)

// ErrInvalidFrame is wrapped by Frame.Validate failures.
var ErrInvalidFrame = errors.New("canbus: invalid frame")

// Validate checks identifier width and DLC.
func (f Frame) Validate() error {
	limit := uint32(MaxBaseID)
	if f.Extended {
		limit = MaxExtendedID
	}
	if f.ID > limit {
		return fmt.Errorf("%w: id %#x exceeds %d-bit space", ErrInvalidFrame, f.ID, map[bool]int{false: 11, true: 29}[f.Extended])
	}
	if f.DLC > 8 {
		return fmt.Errorf("%w: dlc %d > 8", ErrInvalidFrame, f.DLC)
	}
	return nil
}

// J1939 identifier helpers. A 29-bit J1939 ID packs
// priority (3 bits) | reserved/data page (2) | PDU format (8) |
// PDU specific (8) | source address (8).

// J1939ID assembles a 29-bit identifier from priority, PGN and source
// address.
func J1939ID(priority uint8, pgn uint32, src uint8) uint32 {
	return (uint32(priority&0x7) << 26) | ((pgn & 0x3FFFF) << 8) | uint32(src)
}

// PGN extracts the parameter group number from a 29-bit identifier.
// For PDU1 format (PF < 240) the PDU-specific byte is a destination
// address and is zeroed in the PGN.
func PGN(id uint32) uint32 {
	pgn := (id >> 8) & 0x3FFFF
	pf := (pgn >> 8) & 0xFF
	if pf < 240 {
		pgn &= 0x3FF00
	}
	return pgn
}

// SourceAddress extracts the source address from a 29-bit identifier.
func SourceAddress(id uint32) uint8 { return uint8(id & 0xFF) }

// Priority extracts the 3-bit priority from a 29-bit identifier.
func Priority(id uint32) uint8 { return uint8((id >> 26) & 0x7) }
