package canbus

// Channel names used throughout the pipeline. These are the data
// features the paper lists for the 10-minute reports: "fuel level,
// engine oil pressure, engine coolant temperature, engine fuel rate
// usage, speed, working hours, percent load, digging press, pump drive
// temp, oil tank temperature".
const (
	ChanEngineSpeed   = "engine_rpm"
	ChanFuelLevel     = "fuel_level_pct"
	ChanOilPressure   = "oil_pressure_kpa"
	ChanCoolantTemp   = "coolant_temp_c"
	ChanFuelRate      = "fuel_rate_lph"
	ChanSpeed         = "speed_kmh"
	ChanPercentLoad   = "percent_load"
	ChanDiggingPress  = "digging_press_kpa"
	ChanPumpDriveTemp = "pump_drive_temp_c"
	ChanOilTankTemp   = "oil_tank_temp_c"
	ChanEngineOn      = "engine_on"
)

// Parameter group numbers, following J1939 conventions where a
// standard group exists (EEC1 61444, LFE 65266, ET1 65262, EFL/P1
// 65263, DD 65276, CCVS 65265) and vendor-proprietary groups (PDU2
// page, 0xFFxx) for the machine-control channels.
const (
	PGNEEC1   uint32 = 61444 // electronic engine controller 1: rpm, load
	PGNLFE    uint32 = 65266 // fuel economy: fuel rate
	PGNET1    uint32 = 65262 // engine temperature: coolant
	PGNEFLP1  uint32 = 65263 // fluid level/pressure: oil pressure
	PGNDD     uint32 = 65276 // dash display: fuel level
	PGNCCVS   uint32 = 65265 // cruise control/vehicle speed
	PGNHydrau uint32 = 65280 // proprietary: digging pressure, pump temps
	PGNStatus uint32 = 65281 // proprietary: engine on/off status
)

// Catalog returns the message definitions for every channel the study
// uses, keyed by PGN.
func Catalog() map[uint32]MessageDef {
	msgs := []MessageDef{
		{
			Name: "EEC1", PGN: PGNEEC1, Priority: 3,
			Signals: []Signal{
				{Name: ChanEngineSpeed, StartBit: 24, Length: 16, Order: LittleEndian, Scale: 0.125, Offset: 0, Min: 0, Max: 8031.875, Unit: "rpm"},
				{Name: ChanPercentLoad, StartBit: 16, Length: 8, Order: LittleEndian, Scale: 1, Offset: 0, Min: 0, Max: 125, Unit: "%"},
			},
		},
		{
			Name: "LFE", PGN: PGNLFE, Priority: 6,
			Signals: []Signal{
				{Name: ChanFuelRate, StartBit: 0, Length: 16, Order: LittleEndian, Scale: 0.05, Offset: 0, Min: 0, Max: 3212.75, Unit: "L/h"},
			},
		},
		{
			Name: "ET1", PGN: PGNET1, Priority: 6,
			Signals: []Signal{
				{Name: ChanCoolantTemp, StartBit: 0, Length: 8, Order: LittleEndian, Scale: 1, Offset: -40, Min: -40, Max: 210, Unit: "degC"},
			},
		},
		{
			Name: "EFL_P1", PGN: PGNEFLP1, Priority: 6,
			Signals: []Signal{
				{Name: ChanOilPressure, StartBit: 24, Length: 8, Order: LittleEndian, Scale: 4, Offset: 0, Min: 0, Max: 1000, Unit: "kPa"},
			},
		},
		{
			Name: "DD", PGN: PGNDD, Priority: 6,
			Signals: []Signal{
				{Name: ChanFuelLevel, StartBit: 8, Length: 8, Order: LittleEndian, Scale: 0.4, Offset: 0, Min: 0, Max: 100, Unit: "%"},
			},
		},
		{
			Name: "CCVS", PGN: PGNCCVS, Priority: 6,
			Signals: []Signal{
				{Name: ChanSpeed, StartBit: 8, Length: 16, Order: LittleEndian, Scale: 1.0 / 256, Offset: 0, Min: 0, Max: 250.996, Unit: "km/h"},
			},
		},
		{
			Name: "HYDRAULICS", PGN: PGNHydrau, Priority: 6,
			Signals: []Signal{
				{Name: ChanDiggingPress, StartBit: 0, Length: 16, Order: LittleEndian, Scale: 2, Offset: 0, Min: 0, Max: 60000, Unit: "kPa"},
				{Name: ChanPumpDriveTemp, StartBit: 16, Length: 8, Order: LittleEndian, Scale: 1, Offset: -40, Min: -40, Max: 210, Unit: "degC"},
				{Name: ChanOilTankTemp, StartBit: 24, Length: 8, Order: LittleEndian, Scale: 1, Offset: -40, Min: -40, Max: 210, Unit: "degC"},
			},
		},
		{
			Name: "STATUS", PGN: PGNStatus, Priority: 7,
			Signals: []Signal{
				{Name: ChanEngineOn, StartBit: 0, Length: 1, Order: LittleEndian, Scale: 1, Offset: 0, Min: 0, Max: 1, Unit: "bool"},
			},
		},
	}
	out := make(map[uint32]MessageDef, len(msgs))
	for _, m := range msgs {
		out[m.PGN] = m
	}
	return out
}

// AnalogChannels lists the continuous channels aggregated into the
// 10-minute reports, in a stable order.
func AnalogChannels() []string {
	return []string{
		ChanEngineSpeed, ChanFuelLevel, ChanOilPressure, ChanCoolantTemp,
		ChanFuelRate, ChanSpeed, ChanPercentLoad, ChanDiggingPress,
		ChanPumpDriveTemp, ChanOilTankTemp,
	}
}
