package canbus

import (
	"errors"
	"fmt"
	"math"
)

// ByteOrder selects signal bit packing.
type ByteOrder int

const (
	// LittleEndian is Intel byte order: the start bit is the least
	// significant bit of the raw value and the value grows toward
	// higher bit positions.
	LittleEndian ByteOrder = iota
	// BigEndian is Motorola byte order (sawtooth bit numbering): the
	// start bit is the most significant bit of the raw value.
	BigEndian
)

// Signal describes one physical channel packed into a CAN payload,
// DBC-style: physical = raw*Scale + Offset.
type Signal struct {
	Name     string
	StartBit uint // 0..63
	Length   uint // 1..64 bits
	Order    ByteOrder
	Scale    float64
	Offset   float64
	Min, Max float64 // physical clamp range
	Unit     string
}

// Errors reported by signal packing.
var (
	ErrSignalLayout = errors.New("canbus: invalid signal layout")
	ErrOutOfRange   = errors.New("canbus: physical value outside signal range")
)

// Validate checks the bit layout of s against an 8-byte payload.
func (s Signal) Validate() error {
	if s.Length == 0 || s.Length > 64 {
		return fmt.Errorf("%w: %s length %d", ErrSignalLayout, s.Name, s.Length)
	}
	if s.StartBit > 63 {
		return fmt.Errorf("%w: %s start bit %d", ErrSignalLayout, s.Name, s.StartBit)
	}
	if s.Scale == 0 {
		return fmt.Errorf("%w: %s zero scale", ErrSignalLayout, s.Name)
	}
	if s.Order == LittleEndian {
		if s.StartBit+s.Length > 64 {
			return fmt.Errorf("%w: %s overruns payload", ErrSignalLayout, s.Name)
		}
		return nil
	}
	// Motorola: walk the sawtooth and ensure it stays inside the frame.
	bit := int(s.StartBit)
	for i := uint(0); i < s.Length; i++ {
		if bit < 0 || bit > 63 {
			return fmt.Errorf("%w: %s overruns payload (motorola)", ErrSignalLayout, s.Name)
		}
		bit = nextMotorolaBit(bit)
	}
	return nil
}

// nextMotorolaBit steps from one Motorola bit position to the next
// less significant one: 7→6→…→0→15→14→…→8→23…
func nextMotorolaBit(bit int) int {
	if bit%8 == 0 {
		return bit + 15
	}
	return bit - 1
}

// rawMax returns the largest raw value representable in Length bits.
func (s Signal) rawMax() uint64 {
	if s.Length >= 64 {
		return math.MaxUint64
	}
	return (1 << s.Length) - 1
}

// Encode clamps the physical value to [Min, Max], converts it to a raw
// integer and packs it into data. It returns the clamped physical
// value actually stored (after raw quantization).
func (s Signal) Encode(data *[8]byte, physical float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if math.IsNaN(physical) {
		return 0, fmt.Errorf("%w: %s NaN", ErrOutOfRange, s.Name)
	}
	clamped := physical
	if s.Min < s.Max {
		clamped = math.Min(s.Max, math.Max(s.Min, physical))
	}
	rawF := math.Round((clamped - s.Offset) / s.Scale)
	if rawF < 0 {
		rawF = 0
	}
	if limit := float64(s.rawMax()); rawF > limit {
		rawF = limit
	}
	raw := uint64(rawF)
	s.packRaw(data, raw)
	return float64(raw)*s.Scale + s.Offset, nil
}

// Decode unpacks the raw integer from data and converts it to the
// physical value.
func (s Signal) Decode(data [8]byte) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	raw := s.unpackRaw(data)
	return float64(raw)*s.Scale + s.Offset, nil
}

func (s Signal) packRaw(data *[8]byte, raw uint64) {
	if s.Order == LittleEndian {
		for i := uint(0); i < s.Length; i++ {
			pos := s.StartBit + i
			byteIdx, bitIdx := pos/8, pos%8
			if raw&(1<<i) != 0 {
				data[byteIdx] |= 1 << bitIdx
			} else {
				data[byteIdx] &^= 1 << bitIdx
			}
		}
		return
	}
	bit := int(s.StartBit)
	for i := int(s.Length) - 1; i >= 0; i-- {
		byteIdx, bitIdx := bit/8, bit%8
		if raw&(1<<uint(i)) != 0 {
			data[byteIdx] |= 1 << uint(bitIdx)
		} else {
			data[byteIdx] &^= 1 << uint(bitIdx)
		}
		bit = nextMotorolaBit(bit)
	}
}

func (s Signal) unpackRaw(data [8]byte) uint64 {
	var raw uint64
	if s.Order == LittleEndian {
		for i := uint(0); i < s.Length; i++ {
			pos := s.StartBit + i
			byteIdx, bitIdx := pos/8, pos%8
			if data[byteIdx]&(1<<bitIdx) != 0 {
				raw |= 1 << i
			}
		}
		return raw
	}
	bit := int(s.StartBit)
	for i := int(s.Length) - 1; i >= 0; i-- {
		byteIdx, bitIdx := bit/8, bit%8
		if data[byteIdx]&(1<<uint(bitIdx)) != 0 {
			raw |= 1 << uint(i)
		}
		bit = nextMotorolaBit(bit)
	}
	return raw
}
