package canbus

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSignalValidate(t *testing.T) {
	cases := []struct {
		s  Signal
		ok bool
	}{
		{Signal{Name: "ok", StartBit: 0, Length: 16, Order: LittleEndian, Scale: 1}, true},
		{Signal{Name: "zero-len", StartBit: 0, Length: 0, Scale: 1}, false},
		{Signal{Name: "too-long", StartBit: 0, Length: 65, Scale: 1}, false},
		{Signal{Name: "overrun", StartBit: 56, Length: 16, Order: LittleEndian, Scale: 1}, false},
		{Signal{Name: "bad-start", StartBit: 64, Length: 1, Scale: 1}, false},
		{Signal{Name: "zero-scale", StartBit: 0, Length: 8, Scale: 0}, false},
		{Signal{Name: "moto-ok", StartBit: 7, Length: 16, Order: BigEndian, Scale: 1}, true},
		{Signal{Name: "moto-overrun", StartBit: 56, Length: 16, Order: BigEndian, Scale: 1}, false},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%v", c.s.Name, err, c.ok)
		}
		if err != nil && !errors.Is(err, ErrSignalLayout) {
			t.Errorf("%s: error not wrapped: %v", c.s.Name, err)
		}
	}
}

func TestSignalEncodeDecodeLittleEndian(t *testing.T) {
	s := Signal{Name: "rpm", StartBit: 24, Length: 16, Order: LittleEndian, Scale: 0.125, Min: 0, Max: 8031.875}
	var data [8]byte
	stored, err := s.Encode(&data, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 1800 {
		t.Errorf("stored = %v", stored)
	}
	got, err := s.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1800 {
		t.Errorf("decoded = %v", got)
	}
	// Raw 1800/0.125 = 14400 = 0x3840 packed little-endian at bit 24.
	if data[3] != 0x40 || data[4] != 0x38 {
		t.Errorf("layout = % x", data)
	}
}

func TestSignalEncodeDecodeBigEndian(t *testing.T) {
	s := Signal{Name: "moto", StartBit: 7, Length: 16, Order: BigEndian, Scale: 1, Min: 0, Max: 65535}
	var data [8]byte
	if _, err := s.Encode(&data, 0xABCD); err != nil {
		t.Fatal(err)
	}
	if data[0] != 0xAB || data[1] != 0xCD {
		t.Errorf("motorola layout = % x", data)
	}
	got, err := s.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xABCD {
		t.Errorf("decoded = %v", got)
	}
}

func TestSignalClamping(t *testing.T) {
	s := Signal{Name: "pct", StartBit: 0, Length: 8, Order: LittleEndian, Scale: 1, Min: 0, Max: 100}
	var data [8]byte
	stored, err := s.Encode(&data, 250)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 100 {
		t.Errorf("clamped = %v, want 100", stored)
	}
	stored, err = s.Encode(&data, -5)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 0 {
		t.Errorf("clamped = %v, want 0", stored)
	}
}

func TestSignalOffsetNegative(t *testing.T) {
	s := Signal{Name: "temp", StartBit: 0, Length: 8, Order: LittleEndian, Scale: 1, Offset: -40, Min: -40, Max: 210}
	var data [8]byte
	if _, err := s.Encode(&data, -10); err != nil {
		t.Fatal(err)
	}
	got, err := s.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != -10 {
		t.Errorf("decoded = %v", got)
	}
}

func TestSignalNaN(t *testing.T) {
	s := Signal{Name: "x", StartBit: 0, Length: 8, Order: LittleEndian, Scale: 1}
	var data [8]byte
	if _, err := s.Encode(&data, math.NaN()); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("want ErrOutOfRange, got %v", err)
	}
}

// Property: encode→decode round-trips within one quantization step for
// both byte orders, arbitrary layouts.
func TestSignalRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(rawSeed uint64) bool {
		length := 1 + int(rawSeed%32)
		order := LittleEndian
		var start int
		if rawSeed%2 == 0 {
			order = BigEndian
			// Motorola start bit: pick a valid sawtooth start.
			start = 7 + 8*int(rawSeed%4)
		} else {
			start = int(rawSeed % uint64(65-length))
		}
		scale := []float64{1, 0.5, 0.125, 2}[rawSeed%4]
		offset := []float64{0, -40, 10}[rawSeed%3]
		maxPhys := float64((uint64(1)<<uint(length))-1)*scale + offset
		s := Signal{Name: "p", StartBit: uint(start), Length: uint(length), Order: order, Scale: scale, Offset: offset, Min: offset, Max: maxPhys}
		if s.Validate() != nil {
			return true // layout happened to be invalid; skip
		}
		phys := offset + rng.Float64()*(maxPhys-offset)
		var data [8]byte
		stored, err := s.Encode(&data, phys)
		if err != nil {
			return false
		}
		got, err := s.Decode(data)
		if err != nil {
			return false
		}
		return math.Abs(got-stored) < 1e-9 && math.Abs(got-phys) <= scale/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: encoding a signal must not disturb bits outside the signal.
func TestSignalEncodePreservesOtherBits(t *testing.T) {
	s := Signal{Name: "mid", StartBit: 8, Length: 8, Order: LittleEndian, Scale: 1, Min: 0, Max: 255}
	var data [8]byte
	for i := range data {
		data[i] = 0xFF
	}
	if _, err := s.Encode(&data, 0); err != nil {
		t.Fatal(err)
	}
	if data[1] != 0 {
		t.Errorf("signal byte = %#x, want 0", data[1])
	}
	for i, b := range data {
		if i == 1 {
			continue
		}
		if b != 0xFF {
			t.Errorf("byte %d disturbed: %#x", i, b)
		}
	}
}
