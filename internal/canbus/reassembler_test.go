package canbus

import (
	"errors"
	"testing"
)

func manyDTCs(n int, base uint32) []DTC {
	out := make([]DTC, n)
	for i := range out {
		out[i] = DTC{SPN: base + uint32(i), FMI: uint8(i % 6), OC: uint8(1 + i%100)}
	}
	return out
}

func TestReassemblerSingleFrame(t *testing.T) {
	r := NewReassembler()
	frames, err := EncodeDM1(0x04, []DTC{{SPN: 100, FMI: 1, OC: 2}}, 0x33)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := r.Push(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.Source != 0x33 || ev.Lamps != 0x04 || len(ev.DTCs) != 1 {
		t.Fatalf("event = %+v", ev)
	}
	if r.Pending() != 0 {
		t.Errorf("pending = %d", r.Pending())
	}
}

func TestReassemblerBAM(t *testing.T) {
	r := NewReassembler()
	dtcs := manyDTCs(4, 200)
	frames, err := EncodeDM1(0x0400, dtcs, 0x21)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames[:len(frames)-1] {
		ev, err := r.Push(f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ev != nil {
			t.Fatalf("premature event at frame %d", i)
		}
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d", r.Pending())
	}
	ev, err := r.Push(frames[len(frames)-1])
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || len(ev.DTCs) != 4 || ev.Source != 0x21 {
		t.Fatalf("event = %+v", ev)
	}
	for i := range dtcs {
		if ev.DTCs[i] != dtcs[i] {
			t.Errorf("dtc %d = %+v", i, ev.DTCs[i])
		}
	}
}

func TestReassemblerInterleavedSources(t *testing.T) {
	r := NewReassembler()
	a, err := EncodeDM1(1, manyDTCs(3, 100), 0x01)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeDM1(2, manyDTCs(5, 300), 0x02)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave the two BAM sessions frame by frame.
	var events []*DM1Event
	for i := 0; i < len(a) || i < len(b); i++ {
		for _, frames := range [][]Frame{a, b} {
			if i >= len(frames) {
				continue
			}
			ev, err := r.Push(frames[i])
			if err != nil {
				t.Fatal(err)
			}
			if ev != nil {
				events = append(events, ev)
			}
		}
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	bySource := map[uint8]int{}
	for _, ev := range events {
		bySource[ev.Source] = len(ev.DTCs)
	}
	if bySource[0x01] != 3 || bySource[0x02] != 5 {
		t.Errorf("per-source DTCs = %v", bySource)
	}
}

func TestReassemblerOutOfOrderAborts(t *testing.T) {
	r := NewReassembler()
	frames, err := EncodeDM1(0, manyDTCs(4, 500), 0x07)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Push(frames[0]); err != nil {
		t.Fatal(err)
	}
	// Skip packet 1, push packet 2.
	if _, err := r.Push(frames[2]); !errors.Is(err, ErrTransport) {
		t.Fatalf("out-of-order accepted: %v", err)
	}
	if r.Pending() != 0 {
		t.Errorf("aborted session still pending")
	}
	// Data after the abort is ignored silently.
	ev, err := r.Push(frames[3])
	if err != nil || ev != nil {
		t.Errorf("post-abort data: %v %v", ev, err)
	}
}

func TestReassemblerReannounceReplaces(t *testing.T) {
	r := NewReassembler()
	first, _ := EncodeDM1(0, manyDTCs(3, 600), 0x09)
	second, _ := EncodeDM1(0, manyDTCs(2, 700), 0x09)
	r.Push(first[0])
	r.Push(first[1])
	// New announcement from the same source replaces the session.
	if _, err := r.Push(second[0]); err != nil {
		t.Fatal(err)
	}
	var ev *DM1Event
	for _, f := range second[1:] {
		var err error
		if ev, err = r.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	if ev == nil || len(ev.DTCs) != 2 {
		t.Fatalf("replacement session event = %+v", ev)
	}
}

func TestReassemblerIgnoresUnrelatedTraffic(t *testing.T) {
	r := NewReassembler()
	eec1, err := Catalog()[PGNEEC1].Encode(map[string]float64{ChanEngineSpeed: 1200}, 5)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := r.Push(eec1)
	if err != nil || ev != nil {
		t.Errorf("unrelated frame: %v %v", ev, err)
	}
	// TP.DT without a session is ignored.
	orphan := Frame{ID: J1939ID(7, PGNTPDT|globalDest, 9), Extended: true, DLC: 8}
	orphan.Data[0] = 1
	ev, err = r.Push(orphan)
	if err != nil || ev != nil {
		t.Errorf("orphan data frame: %v %v", ev, err)
	}
	// BAM for a non-DM1 PGN is dropped.
	otherBAM := Frame{ID: J1939ID(7, PGNTPCM|globalDest, 9), Extended: true, DLC: 8}
	otherBAM.Data = [8]byte{tpCMBAM, 14, 0, 2, 0xFF, 0x34, 0x12, 0x00}
	ev, err = r.Push(otherBAM)
	if err != nil || ev != nil || r.Pending() != 0 {
		t.Errorf("foreign BAM: %v %v pending=%d", ev, err, r.Pending())
	}
}

func TestReassemblerMalformedAnnouncement(t *testing.T) {
	r := NewReassembler()
	bad := Frame{ID: J1939ID(7, PGNTPCM|globalDest, 3), Extended: true, DLC: 8}
	dm1 := PGNDM1
	bad.Data = [8]byte{tpCMBAM, 100, 0, 1 /* 1 packet cannot carry 100 bytes */, 0xFF, byte(dm1), byte(dm1 >> 8), byte(dm1 >> 16)}
	if _, err := r.Push(bad); !errors.Is(err, ErrTransport) {
		t.Errorf("malformed announcement: %v", err)
	}
	// RTS control is rejected.
	rts := bad
	rts.Data[0] = 16
	if _, err := r.Push(rts); !errors.Is(err, ErrTransport) {
		t.Errorf("RTS control: %v", err)
	}
	// Invalid frame is rejected.
	invalid := Frame{ID: 1 << 30, Extended: true, DLC: 8}
	if _, err := r.Push(invalid); err == nil {
		t.Error("invalid frame accepted")
	}
}
