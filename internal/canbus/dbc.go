package canbus

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file implements a subset of the Vector DBC database format —
// the de-facto interchange format for CAN signal definitions — so
// users can load their own vehicle catalogs instead of the built-in
// one, and export the built-in catalog for use with standard CAN
// tooling.
//
// Supported statements: VERSION, BO_ (message), SG_ (plain unsigned
// signals, Intel or Motorola). Everything else is skipped. Multiplexed
// and signed signals are rejected explicitly.

// ErrDBC is wrapped by all DBC parse failures.
var ErrDBC = errors.New("canbus: invalid dbc")

// dbcExtendedBit flags 29-bit identifiers in DBC message IDs.
const dbcExtendedBit = 0x80000000

var (
	dbcMessageRe = regexp.MustCompile(`^BO_\s+(\d+)\s+(\w+)\s*:\s*(\d+)\s+(\S+)`)
	dbcSignalRe  = regexp.MustCompile(`^\s*SG_\s+(\w+)(\s+[mM]\d*)?\s*:\s*(\d+)\|(\d+)@([01])([+-])\s*\(([^,]+),([^)]+)\)\s*\[([^|]*)\|([^\]]*)\]\s*"([^"]*)"`)
)

// ParseDBC reads message and signal definitions from DBC text. Only
// extended-identifier (J1939-style) messages are returned, as base
// frames carry no PGN.
func ParseDBC(r io.Reader) ([]MessageDef, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	var out []MessageDef
	var current *MessageDef
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "BO_ "):
			m := dbcMessageRe.FindStringSubmatch(trimmed)
			if m == nil {
				return nil, fmt.Errorf("%w: line %d: malformed BO_ statement", ErrDBC, lineNo)
			}
			rawID, err := strconv.ParseUint(m[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: message id: %v", ErrDBC, lineNo, err)
			}
			dlc, err := strconv.Atoi(m[3])
			if err != nil || dlc < 0 || dlc > 8 {
				return nil, fmt.Errorf("%w: line %d: dlc %q", ErrDBC, lineNo, m[3])
			}
			if rawID&dbcExtendedBit == 0 {
				current = nil // base-frame message: skipped
				continue
			}
			id := uint32(rawID) &^ uint32(dbcExtendedBit)
			if id > MaxExtendedID {
				return nil, fmt.Errorf("%w: line %d: id %#x exceeds 29 bits", ErrDBC, lineNo, id)
			}
			out = append(out, MessageDef{
				Name:     m[2],
				PGN:      PGN(id),
				Priority: Priority(id),
			})
			current = &out[len(out)-1]

		case strings.HasPrefix(trimmed, "SG_ "):
			if current == nil {
				continue // signal of a skipped message
			}
			m := dbcSignalRe.FindStringSubmatch(trimmed)
			if m == nil {
				return nil, fmt.Errorf("%w: line %d: malformed SG_ statement", ErrDBC, lineNo)
			}
			if strings.TrimSpace(m[2]) != "" {
				return nil, fmt.Errorf("%w: line %d: multiplexed signals are not supported", ErrDBC, lineNo)
			}
			if m[6] == "-" {
				return nil, fmt.Errorf("%w: line %d: signed signals are not supported", ErrDBC, lineNo)
			}
			start, err1 := strconv.ParseUint(m[3], 10, 32)
			length, err2 := strconv.ParseUint(m[4], 10, 32)
			scale, err3 := strconv.ParseFloat(strings.TrimSpace(m[7]), 64)
			offset, err4 := strconv.ParseFloat(strings.TrimSpace(m[8]), 64)
			if err := firstErr(err1, err2, err3, err4); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrDBC, lineNo, err)
			}
			min, max := 0.0, 0.0
			if s := strings.TrimSpace(m[9]); s != "" {
				if min, err1 = strconv.ParseFloat(s, 64); err1 != nil {
					return nil, fmt.Errorf("%w: line %d: min: %v", ErrDBC, lineNo, err1)
				}
			}
			if s := strings.TrimSpace(m[10]); s != "" {
				if max, err1 = strconv.ParseFloat(s, 64); err1 != nil {
					return nil, fmt.Errorf("%w: line %d: max: %v", ErrDBC, lineNo, err1)
				}
			}
			order := BigEndian
			if m[5] == "1" {
				order = LittleEndian
			}
			sig := Signal{
				Name:     m[1],
				StartBit: uint(start),
				Length:   uint(length),
				Order:    order,
				Scale:    scale,
				Offset:   offset,
				Min:      min,
				Max:      max,
				Unit:     m[11],
			}
			if err := sig.Validate(); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrDBC, lineNo, err)
			}
			current.Signals = append(current.Signals, sig)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDBC, err)
	}
	for _, m := range out {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDBC, err)
		}
	}
	return out, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteDBC serializes messages as DBC text that ParseDBC accepts.
// Messages are emitted sorted by PGN; the source address in the
// encoded identifier is zero.
func WriteDBC(w io.Writer, msgs []MessageDef) error {
	sorted := append([]MessageDef(nil), msgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].PGN < sorted[j].PGN })
	if _, err := fmt.Fprintf(w, "VERSION \"\"\n\nBU_: VUP\n"); err != nil {
		return err
	}
	for _, m := range sorted {
		if err := m.Validate(); err != nil {
			return err
		}
		id := uint64(J1939ID(m.Priority, m.PGN, 0)) | dbcExtendedBit
		if _, err := fmt.Fprintf(w, "\nBO_ %d %s: 8 VUP\n", id, sanitizeDBCName(m.Name)); err != nil {
			return err
		}
		for _, s := range m.Signals {
			order := 0
			if s.Order == LittleEndian {
				order = 1
			}
			if _, err := fmt.Fprintf(w, " SG_ %s : %d|%d@%d+ (%g,%g) [%g|%g] \"%s\" VUP\n",
				sanitizeDBCName(s.Name), s.StartBit, s.Length, order, s.Scale, s.Offset, s.Min, s.Max, s.Unit); err != nil {
				return err
			}
		}
	}
	return nil
}

// sanitizeDBCName maps arbitrary names onto the DBC identifier
// alphabet.
func sanitizeDBCName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
