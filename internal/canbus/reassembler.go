package canbus

import "fmt"

// Reassembler consumes a live frame stream — single-frame DM1s and
// interleaved TP.BAM sessions from multiple source addresses — and
// emits completed DM1 payloads. One BAM session is tracked per source
// address; a new announcement from the same source aborts and replaces
// the previous session (per J1939, a node runs one BAM at a time).
type Reassembler struct {
	sessions map[uint8]*bamSession
}

type bamSession struct {
	total   int
	packets int
	next    int
	payload []byte
}

// DM1Event is one completed active-diagnostics message.
type DM1Event struct {
	Source uint8
	Lamps  uint16
	DTCs   []DTC
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{sessions: map[uint8]*bamSession{}}
}

// Push feeds one frame. It returns a completed event when the frame
// finishes a DM1 (single-frame or final TP.DT packet), nil otherwise.
// Unknown PGNs are ignored; malformed transport frames abort the
// source's session and return an error.
func (r *Reassembler) Push(f Frame) (*DM1Event, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	src := SourceAddress(f.ID)
	switch PGN(f.ID) {
	case PGNDM1:
		lamps, dtcs, err := DecodeDM1([]Frame{f})
		if err != nil {
			return nil, err
		}
		return &DM1Event{Source: src, Lamps: lamps, DTCs: dtcs}, nil

	case PGNTPCM:
		if f.Data[0] != tpCMBAM {
			return nil, fmt.Errorf("%w: source %#x sent unsupported TP.CM control %d", ErrTransport, src, f.Data[0])
		}
		announced := uint32(f.Data[5]) | uint32(f.Data[6])<<8 | uint32(f.Data[7])<<16
		if announced != PGNDM1 {
			// BAM for a PGN we do not track: drop any stale session.
			delete(r.sessions, src)
			return nil, nil
		}
		total := int(f.Data[1]) | int(f.Data[2])<<8
		packets := int(f.Data[3])
		if total < 2 || packets < 1 || packets*7 < total {
			delete(r.sessions, src)
			return nil, fmt.Errorf("%w: source %#x announced %d bytes in %d packets", ErrTransport, src, total, packets)
		}
		r.sessions[src] = &bamSession{total: total, packets: packets, next: 1}
		return nil, nil

	case PGNTPDT:
		session, ok := r.sessions[src]
		if !ok {
			return nil, nil // data for a session we never saw; ignore
		}
		seq := int(f.Data[0])
		if seq != session.next {
			delete(r.sessions, src)
			return nil, fmt.Errorf("%w: source %#x packet %d, expected %d", ErrTransport, src, seq, session.next)
		}
		session.payload = append(session.payload, f.Data[1:]...)
		session.next++
		if seq < session.packets {
			return nil, nil
		}
		// Final packet: decode the reassembled payload.
		delete(r.sessions, src)
		payload := session.payload[:session.total]
		lamps := uint16(payload[0]) | uint16(payload[1])<<8
		var dtcs []DTC
		body := payload[2:]
		for len(body) >= 4 {
			raw := body[:4]
			body = body[4:]
			if raw[0] == 0xFF && raw[1] == 0xFF {
				continue
			}
			d := unpackDTC(raw)
			if d.SPN == 0 && d.FMI == 0 {
				continue
			}
			dtcs = append(dtcs, d)
		}
		return &DM1Event{Source: src, Lamps: lamps, DTCs: dtcs}, nil

	default:
		return nil, nil // unrelated traffic
	}
}

// Pending returns the number of in-flight BAM sessions.
func (r *Reassembler) Pending() int { return len(r.sessions) }
