package canbus

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestWriteParseDBCRoundTrip(t *testing.T) {
	var catalog []MessageDef
	for _, m := range Catalog() {
		catalog = append(catalog, m)
	}
	var buf bytes.Buffer
	if err := WriteDBC(&buf, catalog); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseDBC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(catalog) {
		t.Fatalf("parsed %d messages, wrote %d", len(parsed), len(catalog))
	}
	byPGN := map[uint32]MessageDef{}
	for _, m := range parsed {
		byPGN[m.PGN] = m
	}
	for _, want := range catalog {
		got, ok := byPGN[want.PGN]
		if !ok {
			t.Fatalf("pgn %#x lost in round trip", want.PGN)
		}
		if got.Priority != want.Priority {
			t.Errorf("pgn %#x priority %d != %d", want.PGN, got.Priority, want.Priority)
		}
		if len(got.Signals) != len(want.Signals) {
			t.Fatalf("pgn %#x signals %d != %d", want.PGN, len(got.Signals), len(want.Signals))
		}
		wantByName := map[string]Signal{}
		for _, s := range want.Signals {
			wantByName[s.Name] = s
		}
		for _, s := range got.Signals {
			w, ok := wantByName[s.Name]
			if !ok {
				t.Fatalf("pgn %#x unexpected signal %q", want.PGN, s.Name)
			}
			if s.StartBit != w.StartBit || s.Length != w.Length || s.Order != w.Order ||
				s.Scale != w.Scale || s.Offset != w.Offset || s.Min != w.Min || s.Max != w.Max || s.Unit != w.Unit {
				t.Errorf("signal %q changed: %+v != %+v", s.Name, s, w)
			}
		}
	}
}

func TestParseDBCSample(t *testing.T) {
	src := `VERSION "sample"
BU_: ECU1

BO_ 2364540158 EEC1: 8 ECU1
 SG_ EngineSpeed : 24|16@1+ (0.125,0) [0|8031.875] "rpm" ECU1

BO_ 256 BaseFrameMsg: 8 ECU1
 SG_ Ignored : 0|8@1+ (1,0) [0|255] "" ECU1
`
	msgs, err := ParseDBC(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// The base-frame message is skipped; only the J1939 one remains.
	if len(msgs) != 1 {
		t.Fatalf("messages = %d", len(msgs))
	}
	m := msgs[0]
	// 2364540158 = 0x8CF00400 | ext bit: pgn 0xF004 = 61444 (EEC1).
	if m.PGN != 61444 || m.Name != "EEC1" {
		t.Errorf("message = %+v", m)
	}
	if len(m.Signals) != 1 || m.Signals[0].Name != "EngineSpeed" || m.Signals[0].Scale != 0.125 {
		t.Errorf("signal = %+v", m.Signals)
	}
}

func TestParseDBCMotorola(t *testing.T) {
	src := `BO_ 2566834687 M: 8 X
 SG_ Moto : 7|16@0+ (1,0) [0|65535] "" X
`
	msgs, err := ParseDBC(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if msgs[0].Signals[0].Order != BigEndian {
		t.Error("Motorola order lost")
	}
}

func TestParseDBCErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"malformed BO_", "BO_ abc Name: 8 X\n"},
		{"bad dlc", "BO_ 2566834687 M: 99 X\n"},
		{"malformed SG_", "BO_ 2566834687 M: 8 X\n SG_ broken\n"},
		{"signed signal", "BO_ 2566834687 M: 8 X\n SG_ S : 0|8@1- (1,0) [0|255] \"\" X\n"},
		{"multiplexed", "BO_ 2566834687 M: 8 X\n SG_ S m1 : 0|8@1+ (1,0) [0|255] \"\" X\n"},
		{"overrun", "BO_ 2566834687 M: 8 X\n SG_ S : 60|16@1+ (1,0) [0|255] \"\" X\n"},
		{"zero scale", "BO_ 2566834687 M: 8 X\n SG_ S : 0|8@1+ (0,0) [0|255] \"\" X\n"},
		{"overlap", "BO_ 2566834687 M: 8 X\n SG_ A : 0|8@1+ (1,0) [0|255] \"\" X\n SG_ B : 4|8@1+ (1,0) [0|255] \"\" X\n"},
	}
	for _, c := range cases {
		if _, err := ParseDBC(strings.NewReader(c.src)); !errors.Is(err, ErrDBC) {
			t.Errorf("%s: want ErrDBC, got %v", c.name, err)
		}
	}
}

func TestParseDBCSkipsUnknownStatements(t *testing.T) {
	src := `VERSION "x"
NS_ :
CM_ "a comment";
BA_DEF_ "whatever";
`
	msgs, err := ParseDBC(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Errorf("messages = %d", len(msgs))
	}
}

func TestSanitizeDBCName(t *testing.T) {
	if got := sanitizeDBCName("fuel rate (L/h)"); got != "fuel_rate__L_h_" {
		t.Errorf("sanitized = %q", got)
	}
	if got := sanitizeDBCName(""); got != "_" {
		t.Errorf("empty = %q", got)
	}
}

func TestWriteDBCInvalidMessage(t *testing.T) {
	bad := MessageDef{Name: "bad", PGN: 1, Signals: []Signal{{Name: "s", StartBit: 0, Length: 0, Scale: 1}}}
	if err := WriteDBC(&bytes.Buffer{}, []MessageDef{bad}); err == nil {
		t.Error("invalid message written")
	}
}
