package canbus

import (
	"math"
	"testing"
	"time"
)

func TestCatalogValid(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalog has %d messages", len(cat))
	}
	for pgn, m := range cat {
		if m.PGN != pgn {
			t.Errorf("catalog key %#x != message pgn %#x", pgn, m.PGN)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("message %s invalid: %v", m.Name, err)
		}
	}
	// Every analog channel must be defined in exactly one message.
	owners := map[string]int{}
	for _, m := range cat {
		for _, s := range m.Signals {
			owners[s.Name]++
		}
	}
	for _, ch := range AnalogChannels() {
		if owners[ch] != 1 {
			t.Errorf("channel %s defined %d times", ch, owners[ch])
		}
	}
	if owners[ChanEngineOn] != 1 {
		t.Errorf("engine_on defined %d times", owners[ChanEngineOn])
	}
}

func TestMessageOverlapDetected(t *testing.T) {
	m := MessageDef{
		Name: "bad", PGN: 0xFF00,
		Signals: []Signal{
			{Name: "a", StartBit: 0, Length: 8, Order: LittleEndian, Scale: 1},
			{Name: "b", StartBit: 4, Length: 8, Order: LittleEndian, Scale: 1},
		},
	}
	if err := m.Validate(); err == nil {
		t.Error("expected overlap error")
	}
}

func TestMessageEncodeDecodeRoundTrip(t *testing.T) {
	cat := Catalog()
	eec1 := cat[PGNEEC1]
	values := map[string]float64{
		ChanEngineSpeed: 1500.5,
		ChanPercentLoad: 72,
	}
	f, err := eec1.Encode(values, 0x21)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Extended || f.DLC != 8 {
		t.Errorf("frame = %+v", f)
	}
	if PGN(f.ID) != PGNEEC1 || SourceAddress(f.ID) != 0x21 {
		t.Errorf("id fields wrong: %#x", f.ID)
	}
	got, err := eec1.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[ChanEngineSpeed]-1500.5) > 0.125 {
		t.Errorf("rpm = %v", got[ChanEngineSpeed])
	}
	if got[ChanPercentLoad] != 72 {
		t.Errorf("load = %v", got[ChanPercentLoad])
	}
}

func TestMessageEncodeUnknownSignal(t *testing.T) {
	eec1 := Catalog()[PGNEEC1]
	if _, err := eec1.Encode(map[string]float64{"bogus": 1}, 0); err == nil {
		t.Error("expected unknown-signal error")
	}
}

func TestMessageDecodeWrongPGN(t *testing.T) {
	cat := Catalog()
	f, err := cat[PGNEEC1].Encode(map[string]float64{ChanEngineSpeed: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat[PGNLFE].Decode(f); err == nil {
		t.Error("expected PGN mismatch error")
	}
}

func TestMessageSignalLookup(t *testing.T) {
	eec1 := Catalog()[PGNEEC1]
	s, err := eec1.Signal(ChanEngineSpeed)
	if err != nil || s.Unit != "rpm" {
		t.Errorf("Signal lookup: %v %+v", err, s)
	}
	if _, err := eec1.Signal("missing"); err == nil {
		t.Error("expected error")
	}
	names := eec1.SignalNames()
	if len(names) != 2 || names[0] != ChanEngineSpeed {
		t.Errorf("names = %v", names)
	}
}

func ts(h, m, s int) time.Time {
	return time.Date(2017, time.March, 6, h, m, s, 0, time.UTC)
}

func TestAggregatorWindows(t *testing.T) {
	a := NewAggregator("veh-1")
	// Two samples in window 08:00, one in 08:10.
	if err := a.AddSample(ts(8, 1, 0), ChanEngineSpeed, 1000); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSample(ts(8, 5, 0), ChanEngineSpeed, 2000); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSample(ts(8, 11, 0), ChanEngineSpeed, 3000); err != nil {
		t.Fatal(err)
	}
	reports := a.Flush()
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	r0 := reports[0]
	if !r0.Start.Equal(ts(8, 0, 0)) {
		t.Errorf("window start = %v", r0.Start)
	}
	cs := r0.Channels[ChanEngineSpeed]
	if cs.Samples != 2 || cs.Mean != 1500 || cs.Min != 1000 || cs.Max != 2000 {
		t.Errorf("stats = %+v", cs)
	}
	if reports[1].Channels[ChanEngineSpeed].Samples != 1 {
		t.Errorf("second window = %+v", reports[1])
	}
}

func TestAggregatorEngineOnAccrual(t *testing.T) {
	a := NewAggregator("veh-1")
	// Engine on for 5 minutes within one window.
	if err := a.AddStatus(ts(9, 0, 0), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.AddStatus(ts(9, 5, 0), 0); err != nil {
		t.Fatal(err)
	}
	reports := a.Flush()
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	if got := reports[0].EngineOnSeconds; got != 300 {
		t.Errorf("engine-on = %v, want 300", got)
	}
}

func TestAggregatorEngineOffNoAccrual(t *testing.T) {
	a := NewAggregator("veh-1")
	a.AddStatus(ts(9, 0, 0), 0)
	a.AddStatus(ts(9, 5, 0), 0)
	reports := a.Flush()
	if got := reports[0].EngineOnSeconds; got != 0 {
		t.Errorf("engine-on = %v, want 0", got)
	}
}

func TestAggregatorOutOfOrder(t *testing.T) {
	a := NewAggregator("veh-1")
	if err := a.AddSample(ts(10, 0, 0), ChanSpeed, 5); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSample(ts(9, 0, 0), ChanSpeed, 5); err == nil {
		t.Error("expected out-of-order error")
	}
}

func TestAggregatorFlushEmpty(t *testing.T) {
	a := NewAggregator("veh-1")
	if got := a.Flush(); got != nil {
		t.Errorf("empty flush = %v", got)
	}
}

func TestReportChannelNames(t *testing.T) {
	r := Report{Channels: map[string]ChannelStats{"b": {}, "a": {}}}
	names := r.ChannelNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}
