package canbus

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDTCValidate(t *testing.T) {
	cases := []struct {
		d  DTC
		ok bool
	}{
		{DTC{SPN: 100, FMI: 3, OC: 1}, true},
		{DTC{SPN: 1<<19 - 1, FMI: 31, OC: 127}, true},
		{DTC{SPN: 1 << 19}, false},
		{DTC{FMI: 32}, false},
		{DTC{OC: 128}, false},
	}
	for i, c := range cases {
		if err := c.d.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: err = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestDM1SingleFrameRoundTrip(t *testing.T) {
	dtc := DTC{SPN: 110, FMI: 3, OC: 5} // coolant temp sensor fault
	frames, err := EncodeDM1(0x55, []DTC{dtc}, 0x21)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("frames = %d, want 1", len(frames))
	}
	if PGN(frames[0].ID) != PGNDM1 {
		t.Fatalf("pgn = %#x", PGN(frames[0].ID))
	}
	lamps, dtcs, err := DecodeDM1(frames)
	if err != nil {
		t.Fatal(err)
	}
	if lamps != 0x55 {
		t.Errorf("lamps = %#x", lamps)
	}
	if len(dtcs) != 1 || dtcs[0] != dtc {
		t.Errorf("dtcs = %+v", dtcs)
	}
}

func TestDM1NoActiveCodes(t *testing.T) {
	frames, err := EncodeDM1(0, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	lamps, dtcs, err := DecodeDM1(frames)
	if err != nil {
		t.Fatal(err)
	}
	if lamps != 0 || len(dtcs) != 0 {
		t.Errorf("all-clear decoded as %v %v", lamps, dtcs)
	}
}

func TestDM1MultiPacketBAM(t *testing.T) {
	var dtcs []DTC
	for i := 0; i < 5; i++ {
		dtcs = append(dtcs, DTC{SPN: uint32(100 + i), FMI: uint8(i), OC: uint8(i + 1)})
	}
	frames, err := EncodeDM1(0x0102, dtcs, 0x42)
	if err != nil {
		t.Fatal(err)
	}
	// 2 + 5*4 = 22 bytes -> TP.CM + 4 TP.DT packets.
	if len(frames) != 5 {
		t.Fatalf("frames = %d, want 5", len(frames))
	}
	if PGN(frames[0].ID) != PGNTPCM {
		t.Fatalf("first frame pgn = %#x", PGN(frames[0].ID))
	}
	for _, f := range frames[1:] {
		if PGN(f.ID) != PGNTPDT {
			t.Fatalf("data frame pgn = %#x", PGN(f.ID))
		}
	}
	lamps, got, err := DecodeDM1(frames)
	if err != nil {
		t.Fatal(err)
	}
	if lamps != 0x0102 {
		t.Errorf("lamps = %#x", lamps)
	}
	if len(got) != 5 {
		t.Fatalf("decoded %d dtcs", len(got))
	}
	for i := range dtcs {
		if got[i] != dtcs[i] {
			t.Errorf("dtc %d = %+v, want %+v", i, got[i], dtcs[i])
		}
	}
}

func TestDM1RoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	f := func(seed uint64) bool {
		n := int(seed % 12)
		dtcs := make([]DTC, 0, n)
		for i := 0; i < n; i++ {
			dtcs = append(dtcs, DTC{
				SPN: 1 + uint32(rng.Intn(1<<19-1)),
				FMI: uint8(rng.Intn(32)),
				OC:  uint8(rng.Intn(128)),
			})
		}
		lamps := uint16(seed >> 16)
		frames, err := EncodeDM1(lamps, dtcs, 9)
		if err != nil {
			return false
		}
		gotLamps, got, err := DecodeDM1(frames)
		if err != nil || gotLamps != lamps || len(got) != len(dtcs) {
			return false
		}
		for i := range dtcs {
			if got[i] != dtcs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDM1InvalidDTC(t *testing.T) {
	if _, err := EncodeDM1(0, []DTC{{SPN: 1 << 19}}, 1); err == nil {
		t.Error("invalid DTC accepted")
	}
}

func TestDecodeDM1Errors(t *testing.T) {
	if _, _, err := DecodeDM1(nil); !errors.Is(err, ErrTransport) {
		t.Errorf("empty: %v", err)
	}
	// Wrong PGN entirely.
	other, _ := Catalog()[PGNEEC1].Encode(map[string]float64{ChanEngineSpeed: 100}, 1)
	if _, _, err := DecodeDM1([]Frame{other}); !errors.Is(err, ErrTransport) {
		t.Errorf("wrong pgn: %v", err)
	}
	// Valid BAM with a missing packet.
	dtcs := []DTC{{SPN: 1, FMI: 1, OC: 1}, {SPN: 2, FMI: 2, OC: 2}, {SPN: 3, FMI: 3, OC: 3}}
	frames, err := EncodeDM1(0, dtcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeDM1(frames[:len(frames)-1]); !errors.Is(err, ErrTransport) {
		t.Errorf("truncated BAM: %v", err)
	}
	// Out-of-order packets.
	swapped := append([]Frame(nil), frames...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	if _, _, err := DecodeDM1(swapped); !errors.Is(err, ErrTransport) {
		t.Errorf("out-of-order BAM: %v", err)
	}
	// Single DM1 frame followed by junk.
	single, _ := EncodeDM1(0, []DTC{{SPN: 9, FMI: 1, OC: 1}}, 1)
	if _, _, err := DecodeDM1(append(single, single[0])); !errors.Is(err, ErrTransport) {
		t.Errorf("trailing frames: %v", err)
	}
	// Unsupported TP.CM control byte (RTS = 16).
	rts := frames[0]
	rts.Data[0] = 16
	if _, _, err := DecodeDM1(append([]Frame{rts}, frames[1:]...)); !errors.Is(err, ErrTransport) {
		t.Errorf("RTS control: %v", err)
	}
	// BAM announcing a non-DM1 PGN.
	wrongPGN := frames[0]
	wrongPGN.Data[5], wrongPGN.Data[6], wrongPGN.Data[7] = 0x34, 0x12, 0x00
	if _, _, err := DecodeDM1(append([]Frame{wrongPGN}, frames[1:]...)); !errors.Is(err, ErrTransport) {
		t.Errorf("wrong announced pgn: %v", err)
	}
}
