package canbus

import (
	"math"
	"strings"
	"testing"
)

func stringsReader(s string) *strings.Reader { return strings.NewReader(s) }

// Native fuzz targets for the bit-level codecs. `go test` runs the
// seed corpus; `go test -fuzz=FuzzX ./internal/canbus` explores.

func FuzzSignalRoundTrip(f *testing.F) {
	f.Add(uint(0), uint(16), true, 0.125, 0.0, 1800.0)
	f.Add(uint(7), uint(16), false, 1.0, -40.0, 100.0)
	f.Add(uint(24), uint(8), true, 4.0, 0.0, 280.0)
	f.Fuzz(func(t *testing.T, start, length uint, little bool, scale, offset, value float64) {
		if math.IsNaN(scale) || math.IsInf(scale, 0) || scale == 0 ||
			math.IsNaN(offset) || math.IsInf(offset, 0) ||
			math.IsNaN(value) || math.IsInf(value, 0) {
			t.Skip()
		}
		if math.Abs(scale) > 1e6 || math.Abs(offset) > 1e9 || math.Abs(value) > 1e9 {
			t.Skip()
		}
		order := BigEndian
		if little {
			order = LittleEndian
		}
		s := Signal{Name: "fuzz", StartBit: start % 64, Length: 1 + length%32, Order: order, Scale: scale, Offset: offset}
		if s.Validate() != nil {
			t.Skip() // invalid layouts are rejected, not round-tripped
		}
		var data [8]byte
		stored, err := s.Encode(&data, value)
		if err != nil {
			t.Fatalf("encode valid signal: %v", err)
		}
		got, err := s.Decode(data)
		if err != nil {
			t.Fatalf("decode after encode: %v", err)
		}
		if math.Abs(got-stored) > 1e-6*math.Max(1, math.Abs(stored)) {
			t.Fatalf("round trip: stored %v, decoded %v (signal %+v)", stored, got, s)
		}
	})
}

func FuzzDecodeDM1NoPanic(f *testing.F) {
	good, _ := EncodeDM1(0x0400, []DTC{{SPN: 110, FMI: 3, OC: 5}}, 1)
	f.Add(good[0].ID, good[0].Data[:])
	f.Add(uint32(0x1CECFF01), []byte{32, 22, 0, 4, 255, 0xCA, 0xFE, 0x00})
	f.Fuzz(func(t *testing.T, id uint32, data []byte) {
		var frame Frame
		frame.ID = id % (MaxExtendedID + 1)
		frame.Extended = true
		frame.DLC = 8
		copy(frame.Data[:], data)
		// Must never panic, whatever the bytes say.
		_, _, _ = DecodeDM1([]Frame{frame})
	})
}

func FuzzParseDBCNoPanic(f *testing.F) {
	f.Add("BO_ 2364540158 EEC1: 8 ECU\n SG_ S : 24|16@1+ (0.125,0) [0|8031] \"rpm\" ECU\n")
	f.Add("VERSION \"x\"\nBO_ abc\n")
	f.Add(" SG_ dangling : 0|8@1+ (1,0) [0|1] \"\" X\n")
	f.Fuzz(func(t *testing.T, src string) {
		// Must never panic; errors are fine.
		msgs, err := ParseDBC(stringsReader(src))
		if err == nil {
			// Anything accepted must validate.
			for _, m := range msgs {
				if vErr := m.Validate(); vErr != nil {
					t.Fatalf("accepted invalid message: %v", vErr)
				}
			}
		}
	})
}
