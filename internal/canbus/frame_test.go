package canbus

import (
	"errors"
	"testing"
)

func TestFrameValidate(t *testing.T) {
	cases := []struct {
		f  Frame
		ok bool
	}{
		{Frame{ID: 0x7FF, DLC: 8}, true},
		{Frame{ID: 0x800, DLC: 8}, false},
		{Frame{ID: 0x1FFFFFFF, Extended: true, DLC: 8}, true},
		{Frame{ID: 0x20000000, Extended: true, DLC: 8}, false},
		{Frame{ID: 1, DLC: 9}, false},
		{Frame{ID: 1, DLC: 0}, true},
	}
	for i, c := range cases {
		err := c.f.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: err = %v, want ok=%v", i, err, c.ok)
		}
		if err != nil && !errors.Is(err, ErrInvalidFrame) {
			t.Errorf("case %d: error not wrapped: %v", i, err)
		}
	}
}

func TestJ1939IDRoundTrip(t *testing.T) {
	id := J1939ID(3, PGNEEC1, 0x42)
	if got := PGN(id); got != PGNEEC1 {
		t.Errorf("PGN = %#x, want %#x", got, PGNEEC1)
	}
	if got := SourceAddress(id); got != 0x42 {
		t.Errorf("src = %#x", got)
	}
	if got := Priority(id); got != 3 {
		t.Errorf("priority = %d", got)
	}
}

func TestPGNPDU1MasksDestination(t *testing.T) {
	// PDU1: PF < 240, the PS byte is a destination address and must be
	// masked out of the PGN. 0xEA00 (request) with dest 0x17:
	id := J1939ID(6, 0xEA17, 0x01)
	if got := PGN(id); got != 0xEA00 {
		t.Errorf("PGN = %#x, want 0xEA00", got)
	}
	// PDU2: PF >= 240, PS is part of the PGN.
	id2 := J1939ID(6, 0xFEF2, 0x01)
	if got := PGN(id2); got != 0xFEF2 {
		t.Errorf("PGN = %#x, want 0xFEF2", got)
	}
}
