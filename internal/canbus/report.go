package canbus

import (
	"fmt"
	"sort"
	"time"

	"vup/internal/stats"
)

// ReportInterval is the upload cadence of the on-board controller: the
// paper's system "sends an aggregated report to a centralized server
// every 10 minutes".
const ReportInterval = 10 * time.Minute

// ChannelStats summarizes one channel over a report window.
type ChannelStats struct {
	Samples int
	Mean    float64
	Min     float64
	Max     float64
}

// Report is the 10-minute aggregate a vehicle uploads.
type Report struct {
	VehicleID string
	Start     time.Time // window start, aligned to ReportInterval
	Channels  map[string]ChannelStats
	// EngineOnSeconds is the number of seconds within the window the
	// engine-on status signal was asserted; daily utilization hours are
	// derived from it.
	EngineOnSeconds float64
}

// ChannelNames returns the report's channel names, sorted.
func (r Report) ChannelNames() []string {
	out := make([]string, 0, len(r.Channels))
	for name := range r.Channels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Aggregator folds decoded CAN samples into 10-minute reports, the
// role of the on-board controller: "CAN messages are generated ... at
// a high frequency and gathered by a controller, where they are
// collected and pre-processed".
type Aggregator struct {
	vehicleID   string
	windowStart time.Time
	open        bool
	acc         map[string]*stats.Welford
	engineOnSec float64
	lastStatus  float64
	lastStatusT time.Time
	out         []Report
}

// NewAggregator creates an aggregator for the given vehicle.
func NewAggregator(vehicleID string) *Aggregator {
	return &Aggregator{vehicleID: vehicleID}
}

// window returns ts truncated to the report interval.
func window(ts time.Time) time.Time { return ts.Truncate(ReportInterval) }

// AddSample records one decoded analog sample at ts. Samples must be
// fed in non-decreasing time order; out-of-order samples are an error.
func (a *Aggregator) AddSample(ts time.Time, channel string, value float64) error {
	if err := a.roll(ts); err != nil {
		return err
	}
	w, ok := a.acc[channel]
	if !ok {
		w = &stats.Welford{}
		a.acc[channel] = w
	}
	w.Add(value)
	return nil
}

// AddStatus records the engine on/off status signal (1 = on) at ts.
// Engine-on time accrues between consecutive status samples.
func (a *Aggregator) AddStatus(ts time.Time, on float64) error {
	if err := a.roll(ts); err != nil {
		return err
	}
	if !a.lastStatusT.IsZero() && a.lastStatus >= 0.5 {
		elapsed := ts.Sub(a.lastStatusT).Seconds()
		// Credit only the part of the gap inside the current window so
		// a status edge straddling a boundary cannot over-credit.
		if maxCredit := ts.Sub(a.windowStart).Seconds(); elapsed > maxCredit {
			elapsed = maxCredit
		}
		if elapsed > 0 {
			a.engineOnSec += elapsed
		}
	}
	a.lastStatus = on
	a.lastStatusT = ts
	return nil
}

// roll opens the window containing ts, flushing any prior window.
func (a *Aggregator) roll(ts time.Time) error {
	w := window(ts)
	if !a.open {
		a.startWindow(w)
		return nil
	}
	switch {
	case w.Equal(a.windowStart):
		return nil
	case w.Before(a.windowStart):
		return fmt.Errorf("canbus: out-of-order sample at %v before window %v", ts, a.windowStart)
	default:
		a.flush()
		a.startWindow(w)
		return nil
	}
}

func (a *Aggregator) startWindow(w time.Time) {
	a.windowStart = w
	a.open = true
	a.acc = map[string]*stats.Welford{}
	a.engineOnSec = 0
}

// flush closes the current window into a report.
func (a *Aggregator) flush() {
	if !a.open {
		return
	}
	rep := Report{
		VehicleID:       a.vehicleID,
		Start:           a.windowStart,
		Channels:        make(map[string]ChannelStats, len(a.acc)),
		EngineOnSeconds: a.engineOnSec,
	}
	for name, w := range a.acc {
		rep.Channels[name] = ChannelStats{
			Samples: w.N(),
			Mean:    w.Mean(),
			Min:     w.Min(),
			Max:     w.Max(),
		}
	}
	a.out = append(a.out, rep)
	a.open = false
}

// Flush closes any open window and returns all completed reports,
// resetting the aggregator's output buffer.
func (a *Aggregator) Flush() []Report {
	a.flush()
	out := a.out
	a.out = nil
	return out
}
