package canbus

import (
	"fmt"
	"sort"
)

// MessageDef describes a parameter group: a PGN and the signals packed
// into its 8-byte payload.
type MessageDef struct {
	Name     string
	PGN      uint32
	Priority uint8
	Signals  []Signal
}

// Validate checks every signal layout and rejects bit overlaps between
// signals of the message.
func (m MessageDef) Validate() error {
	occupied := map[uint]string{}
	for _, s := range m.Signals {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("message %s: %w", m.Name, err)
		}
		for _, bit := range s.bits() {
			if owner, taken := occupied[bit]; taken {
				return fmt.Errorf("message %s: %w: signals %s and %s overlap at bit %d",
					m.Name, ErrSignalLayout, owner, s.Name, bit)
			}
			occupied[bit] = s.Name
		}
	}
	return nil
}

// bits enumerates the absolute bit positions a validated signal
// occupies.
func (s Signal) bits() []uint {
	out := make([]uint, 0, s.Length)
	if s.Order == LittleEndian {
		for i := uint(0); i < s.Length; i++ {
			out = append(out, s.StartBit+i)
		}
		return out
	}
	bit := int(s.StartBit)
	for i := uint(0); i < s.Length; i++ {
		out = append(out, uint(bit))
		bit = nextMotorolaBit(bit)
	}
	return out
}

// Signal returns the signal definition with the given name.
func (m MessageDef) Signal(name string) (Signal, error) {
	for _, s := range m.Signals {
		if s.Name == name {
			return s, nil
		}
	}
	return Signal{}, fmt.Errorf("canbus: message %s has no signal %q", m.Name, name)
}

// Encode packs the named physical values into a frame from source
// address src. Missing signals are encoded as zero raw value. Unknown
// names are an error.
func (m MessageDef) Encode(values map[string]float64, src uint8) (Frame, error) {
	if err := m.Validate(); err != nil {
		return Frame{}, err
	}
	known := map[string]bool{}
	for _, s := range m.Signals {
		known[s.Name] = true
	}
	for name := range values {
		if !known[name] {
			return Frame{}, fmt.Errorf("canbus: message %s has no signal %q", m.Name, name)
		}
	}
	f := Frame{ID: J1939ID(m.Priority, m.PGN, src), Extended: true, DLC: 8}
	for _, s := range m.Signals {
		v, ok := values[s.Name]
		if !ok {
			continue
		}
		if _, err := s.Encode(&f.Data, v); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}

// Decode unpacks every signal of the message from f. It rejects frames
// whose PGN does not match the definition.
func (m MessageDef) Decode(f Frame) (map[string]float64, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if got := PGN(f.ID); got != m.PGN {
		return nil, fmt.Errorf("canbus: frame pgn %#x does not match message %s (pgn %#x)", got, m.Name, m.PGN)
	}
	out := make(map[string]float64, len(m.Signals))
	for _, s := range m.Signals {
		v, err := s.Decode(f.Data)
		if err != nil {
			return nil, err
		}
		out[s.Name] = v
	}
	return out, nil
}

// SignalNames returns the message's signal names, sorted.
func (m MessageDef) SignalNames() []string {
	out := make([]string, 0, len(m.Signals))
	for _, s := range m.Signals {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}
