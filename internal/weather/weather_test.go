package weather

import (
	"math"
	"testing"
	"time"

	"vup/internal/stats"
)

var start = time.Date(2015, time.January, 1, 0, 0, 0, 0, time.UTC)

func simulate(t *testing.T, code string, seed int64, days int) []Day {
	t.Helper()
	g := NewGenerator(code, seed)
	wx, err := g.Simulate(start, days)
	if err != nil {
		t.Fatal(err)
	}
	return wx
}

func TestSimulateLengthAndErrors(t *testing.T) {
	wx := simulate(t, "IT", 1, 365)
	if len(wx) != 365 {
		t.Fatalf("len = %d", len(wx))
	}
	g := NewGenerator("IT", 1)
	if _, err := g.Simulate(start, 0); err == nil {
		t.Error("zero days accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := simulate(t, "DE", 5, 200)
	b := simulate(t, "DE", 5, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("day %d differs", i)
		}
	}
	c := simulate(t, "DE", 6, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical weather")
	}
}

func TestSeasonalTemperatureNorthern(t *testing.T) {
	wx := simulate(t, "DE", 2, 3*365)
	var julSum, janSum float64
	var julN, janN int
	for i, d := range wx {
		date := start.AddDate(0, 0, i)
		switch date.Month() {
		case time.July:
			julSum += d.TempC
			julN++
		case time.January:
			janSum += d.TempC
			janN++
		}
	}
	jul, jan := julSum/float64(julN), janSum/float64(janN)
	if jul <= jan+8 {
		t.Errorf("German July (%v) not clearly warmer than January (%v)", jul, jan)
	}
}

func TestSeasonalTemperatureSouthern(t *testing.T) {
	wx := simulate(t, "AU", 3, 3*365)
	var julSum, janSum float64
	var julN, janN int
	for i, d := range wx {
		date := start.AddDate(0, 0, i)
		switch date.Month() {
		case time.July:
			julSum += d.TempC
			julN++
		case time.January:
			janSum += d.TempC
			janN++
		}
	}
	if janSum/float64(janN) <= julSum/float64(julN) {
		t.Error("Australian January not warmer than July")
	}
}

func TestAnomalyPersistence(t *testing.T) {
	// AR(1) fronts: lag-1 autocorrelation of temperature must be high.
	wx := simulate(t, "FR", 4, 730)
	temps := make([]float64, len(wx))
	for i, d := range wx {
		temps[i] = d.TempC
	}
	acf := stats.ACF(temps, 3)
	if acf[1] < 0.6 {
		t.Errorf("temperature lag-1 ACF = %v, want persistent fronts", acf[1])
	}
}

func TestRainStatistics(t *testing.T) {
	wx := simulate(t, "GB", 5, 4*365)
	rainy := 0
	for _, d := range wx {
		if d.PrecipMM < 0 || d.PrecipMM > 200 {
			t.Fatalf("precip out of range: %v", d.PrecipMM)
		}
		if d.Rainy() {
			rainy++
		}
	}
	frac := float64(rainy) / float64(len(wx))
	if frac < 0.15 || frac > 0.60 {
		t.Errorf("European rain fraction = %v", frac)
	}
	// Desert climate rains much less.
	sa := simulate(t, "SA", 6, 4*365)
	saRainy := 0
	for _, d := range sa {
		if d.Rainy() {
			saRainy++
		}
	}
	if float64(saRainy)/float64(len(sa)) >= frac {
		t.Errorf("Saudi rain (%d days) not below British (%d)", saRainy, rainy)
	}
}

func TestDayPredicates(t *testing.T) {
	if (Day{PrecipMM: 0.5}).Rainy() {
		t.Error("0.5mm should not be rainy")
	}
	if !(Day{PrecipMM: 3}).Rainy() {
		t.Error("3mm should be rainy")
	}
	if (Day{TempC: 1}).Freezing() {
		t.Error("1C should not be freezing")
	}
	if !(Day{TempC: -4}).Freezing() {
		t.Error("-4C should be freezing")
	}
}

func TestUnknownCountryFallback(t *testing.T) {
	g := NewGenerator("ZZ", 7)
	wx, err := g.Simulate(start, 100)
	if err != nil || len(wx) != 100 {
		t.Fatalf("fallback failed: %v", err)
	}
	if g.Country().Code != "ZZ" {
		t.Errorf("country = %q", g.Country().Code)
	}
}

func TestWorkImpact(t *testing.T) {
	dry := Day{TempC: 20}
	if WorkImpact(dry, 1) != 1 {
		t.Error("dry warm day should not damp work")
	}
	heavy := Day{TempC: 15, PrecipMM: 20}
	if got := WorkImpact(heavy, 1); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("heavy rain impact = %v", got)
	}
	light := Day{TempC: 15, PrecipMM: 2}
	if got := WorkImpact(light, 1); math.Abs(got-0.65) > 1e-9 {
		t.Errorf("light rain impact = %v", got)
	}
	frost := Day{TempC: -5}
	if got := WorkImpact(frost, 1); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("frost impact = %v", got)
	}
	chilly := Day{TempC: 3}
	if got := WorkImpact(chilly, 1); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("chilly impact = %v", got)
	}
	// Insensitive machines are unaffected.
	if WorkImpact(heavy, 0) != 1 {
		t.Error("zero sensitivity should be unaffected")
	}
	// Half sensitivity halves the damping.
	if got := WorkImpact(light, 0.5); math.Abs(got-0.825) > 1e-9 {
		t.Errorf("half sensitivity = %v", got)
	}
	// Combined rain + frost never goes negative.
	awful := Day{TempC: -10, PrecipMM: 50}
	if got := WorkImpact(awful, 1); got < 0 || got > 0.1 {
		t.Errorf("awful day impact = %v", got)
	}
}
