// Package weather implements the paper's first future-work item:
// "integration of additional contextual information (e.g., weather)".
// It provides a synthetic but climatologically structured daily
// weather generator per deployment country — seasonal temperature with
// an AR(1) anomaly, and season-dependent precipitation — that the
// fleet simulator consumes (rain and frost suppress outdoor
// construction work) and the feature pipeline exposes as target-day
// context (the site manager knows tomorrow's forecast).
package weather

import (
	"fmt"
	"math"
	"time"

	"vup/internal/geo"
	"vup/internal/randx"
)

// Day is one day of weather at a site.
type Day struct {
	// TempC is the daily mean temperature in Celsius.
	TempC float64
	// PrecipMM is the daily precipitation in millimetres.
	PrecipMM float64
}

// Rainy reports whether the day had meaningful precipitation.
func (d Day) Rainy() bool { return d.PrecipMM >= 1 }

// Freezing reports whether the daily mean was below 0°C.
func (d Day) Freezing() bool { return d.TempC < 0 }

// climate holds per-region climatology.
type climate struct {
	meanTempC   float64 // annual mean
	seasonalAmp float64 // summer-winter half-swing
	rainProb    float64 // base daily rain probability
	wetWinter   bool    // rain concentrated in the cold season
	rainMeanMM  float64 // mean rainfall on wet days
}

var climates = map[string]climate{
	"Europe":        {meanTempC: 11, seasonalAmp: 9, rainProb: 0.33, wetWinter: false, rainMeanMM: 6},
	"North America": {meanTempC: 12, seasonalAmp: 12, rainProb: 0.28, wetWinter: false, rainMeanMM: 7},
	"South America": {meanTempC: 20, seasonalAmp: 6, rainProb: 0.35, wetWinter: false, rainMeanMM: 9},
	"Africa":        {meanTempC: 24, seasonalAmp: 5, rainProb: 0.18, wetWinter: false, rainMeanMM: 8},
	"Middle East":   {meanTempC: 25, seasonalAmp: 9, rainProb: 0.06, wetWinter: true, rainMeanMM: 5},
	"Asia":          {meanTempC: 20, seasonalAmp: 8, rainProb: 0.32, wetWinter: false, rainMeanMM: 10},
	"Oceania":       {meanTempC: 17, seasonalAmp: 6, rainProb: 0.30, wetWinter: true, rainMeanMM: 7},
}

var defaultClimate = climate{meanTempC: 15, seasonalAmp: 8, rainProb: 0.25, rainMeanMM: 7}

// Generator produces a deterministic daily weather series for one
// site.
type Generator struct {
	country geo.Country
	clim    climate
	rng     *randx.RNG
	anomaly float64 // AR(1) temperature anomaly state
}

// NewGenerator creates a generator for the country with the given
// code. Unknown codes fall back to a temperate default climate in the
// northern hemisphere.
func NewGenerator(countryCode string, seed int64) *Generator {
	country, err := geo.Lookup(countryCode)
	if err != nil {
		country = geo.Country{Code: countryCode}
	}
	clim, ok := climates[country.Region]
	if !ok {
		clim = defaultClimate
	}
	return &Generator{country: country, clim: clim, rng: randx.New(seed)}
}

// Country returns the generator's country.
func (g *Generator) Country() geo.Country { return g.country }

// Simulate returns days consecutive days of weather starting at start.
func (g *Generator) Simulate(start time.Time, days int) ([]Day, error) {
	if days <= 0 {
		return nil, fmt.Errorf("weather: non-positive day count %d", days)
	}
	start = time.Date(start.Year(), start.Month(), start.Day(), 0, 0, 0, 0, time.UTC)
	out := make([]Day, 0, days)
	for i := 0; i < days; i++ {
		date := start.AddDate(0, 0, i)
		out = append(out, g.step(date))
	}
	return out, nil
}

// step advances the generator one day.
func (g *Generator) step(date time.Time) Day {
	// Seasonal temperature: peak around mid-July (northern) or
	// mid-January (southern).
	peakDoy := 196.0
	if g.country.Hemisphere == geo.Southern {
		peakDoy = 14.0
	}
	doy := float64(date.YearDay())
	seasonalTemp := g.clim.meanTempC + g.clim.seasonalAmp*math.Cos(2*math.Pi*(doy-peakDoy)/365.25)

	// AR(1) anomaly: weather fronts persist for days.
	g.anomaly = 0.82*g.anomaly + g.rng.Normal(0, 1.8)
	temp := seasonalTemp + g.anomaly + g.rng.Normal(0, 0.8)

	// Precipitation: base probability modulated by season.
	season := geo.SeasonOf(date, g.country.Hemisphere)
	prob := g.clim.rainProb
	switch {
	case g.clim.wetWinter && season == geo.Winter:
		prob *= 2.2
	case g.clim.wetWinter && season == geo.Summer:
		prob *= 0.3
	case !g.clim.wetWinter && season == geo.Summer:
		prob *= 1.2
	}
	if prob > 0.95 {
		prob = 0.95
	}
	precip := 0.0
	if g.rng.Bernoulli(prob) {
		precip = g.rng.LogNormal(math.Log(g.clim.rainMeanMM), 0.8)
		if precip > 200 {
			precip = 200
		}
	}
	return Day{TempC: temp, PrecipMM: precip}
}

// Channel names under which the weather series is attached to a
// vehicle dataset.
const (
	ChanTemp   = "wx_temp_c"
	ChanPrecip = "wx_precip_mm"
)

// WorkImpact returns the multiplicative activity damping weather
// imposes on outdoor construction work: heavy rain and frost suppress
// paving, rolling and digging. sensitivity in [0, 1] scales the
// effect (0 = indoor/insensitive machine).
func WorkImpact(d Day, sensitivity float64) float64 {
	if sensitivity <= 0 {
		return 1
	}
	impact := 1.0
	switch {
	case d.PrecipMM >= 10: // heavy rain: site mostly stops
		impact *= 1 - 0.8*sensitivity
	case d.PrecipMM >= 1: // light rain
		impact *= 1 - 0.35*sensitivity
	}
	if d.TempC < 0 { // frost halts asphalt and concrete work
		impact *= 1 - 0.6*sensitivity
	} else if d.TempC < 5 {
		impact *= 1 - 0.25*sensitivity
	}
	if impact < 0 {
		impact = 0
	}
	return impact
}
