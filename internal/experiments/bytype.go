package experiments

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/regress"
	"vup/internal/textplot"
)

func init() {
	register("by-type", "Best model applied across vehicle types and models (Section 4, goal iv)", runByType)
}

// runByType reproduces the paper's goal (iv): "use the best obtained
// models on vehicles of different models and types". The recommended
// configuration is evaluated on a type-stratified sample of the fleet
// and the per-type error distribution is reported — the paper's
// observation being that "for many vehicle types and models it was
// still possible to accurately forecast non-stationary trends".
func runByType(ctx context.Context, cfg Config) (*Report, error) {
	f, err := fleet.Generate(fleet.Config{Units: cfg.Units, Start: fleet.StudyStart, Days: cfg.Days, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	usage := f.SimulateAllWorkers(cfg.Workers)

	// Stratified sample: up to perType units of every type present.
	// Unit selection is a sequential scan (the quota depends on what
	// was already kept); dataset construction then fans out with the
	// per-unit RNGs pre-split in scan order (see splitUnitRNGs).
	perType := (cfg.EvalVehicles + 1) / 2
	if perType < 1 {
		perType = 1
	}
	var units []fleet.Unit
	kept := map[fleet.Type]int{}
	for _, u := range f.Units {
		t := u.Vehicle.Model.Type
		if kept[t] >= perType {
			continue
		}
		kept[t]++
		units = append(units, u)
	}
	rngs := splitUnitRNGs(cfg.Seed, byTypeSalt, len(units))
	datasets, err := buildDatasets(units, usage, rngs, cfg.Workers)
	if err != nil {
		return nil, err
	}
	byType := map[fleet.Type][]*etl.VehicleDataset{}
	for i, u := range units {
		byType[u.Vehicle.Model.Type] = append(byType[u.Vehicle.Model.Type], datasets[i])
	}

	pc := pipelineConfig(cfg, regress.AlgLasso, core.NextWorkingDay, "by-type")
	table := Table{Name: "by_type", Header: []string{"type", "vehicles", "mean_pe", "median_pe", "failed"}}
	type row struct {
		name   string
		median float64
	}
	var rows []row
	labels := []string{}
	values := []float64{}
	for _, t := range fleet.Types() {
		datasets := byType[t]
		if len(datasets) == 0 {
			continue
		}
		fr, err := core.EvaluateFleetContext(ctx, datasets, pc, cfg.Workers)
		if err != nil {
			// Some types (e.g. coring machines) may lack enough
			// working days at this scale; report them as failed.
			table.Rows = append(table.Rows, []string{t.String(), strconv.Itoa(len(datasets)), "", "", strconv.Itoa(len(datasets))})
			continue
		}
		table.Rows = append(table.Rows, []string{
			t.String(), strconv.Itoa(len(datasets)),
			fmtF(fr.MeanPE), fmtF(fr.MedianPE), strconv.Itoa(len(fr.Failed)),
		})
		rows = append(rows, row{t.String(), fr.MedianPE})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("experiments: by-type evaluated no type successfully")
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].median < rows[j].median })
	for _, r := range rows {
		labels = append(labels, r.name)
		values = append(values, r.median)
	}
	rep := &Report{ID: "by-type", Title: Title("by-type")}
	rep.Text = textplot.Histogram(
		fmt.Sprintf("median next-working-day PE (%%) per type, Lasso, %d+ units each", perType),
		labels, values, 40)
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}
