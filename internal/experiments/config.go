package experiments

import (
	"fmt"

	"vup/internal/canbus"
)

// Config scales an experiment run.
type Config struct {
	// Seed drives every random draw; equal seeds give identical
	// reports.
	Seed int64
	// Units is the fleet size used for the data characterization
	// figures.
	Units int
	// Days is the observation period length.
	Days int
	// EvalVehicles is how many vehicles the model-evaluation figures
	// train on (the characterization figures use the whole fleet).
	EvalVehicles int
	// Stride subsamples the test days during evaluation (1 = the
	// paper's full evaluation).
	Stride int
	// W and K are the training-window and feature-selection settings
	// (the paper's defaults are 140 and 20).
	W, K int
	// MaxLag is the lag budget for the feature selection.
	MaxLag int
	// Channels lagged alongside the hours series during evaluation.
	Channels []string
	// Workers bounds evaluation concurrency (<=0: GOMAXPROCS).
	Workers int
}

// Small returns a laptop-scale configuration: tens of vehicles,
// roughly two years, strided evaluation. Suitable for the runnable
// examples and the default `vup-experiments` invocation.
func Small() Config {
	return Config{
		Seed:         1,
		Units:        60,
		Days:         730,
		EvalVehicles: 6,
		Stride:       5,
		W:            140,
		K:            20,
		MaxLag:       28,
		Channels:     []string{canbus.ChanFuelRate, canbus.ChanEngineSpeed, canbus.ChanPercentLoad},
		Workers:      0,
	}
}

// Tiny returns the minimal configuration used by the test suite.
func Tiny() Config {
	return Config{
		Seed:         1,
		Units:        16,
		Days:         500,
		EvalVehicles: 2,
		Stride:       15,
		W:            90,
		K:            10,
		MaxLag:       21,
		Channels:     []string{canbus.ChanFuelRate},
		Workers:      0,
	}
}

// Full returns the study-scale configuration: 2 239 vehicles over the
// full 2015-01..2018-09 period, with every analog channel and the
// paper's w=140, K=20. The evaluation figures still subsample the
// fleet (EvalVehicles) — evaluating six algorithms on every unit of
// the full fleet is a cluster-scale job the paper itself ran once.
func Full() Config {
	return Config{
		Seed:         1,
		Units:        2239,
		Days:         1369,
		EvalVehicles: 50,
		Stride:       1,
		W:            140,
		K:            20,
		MaxLag:       42,
		Channels:     canbus.AnalogChannels(),
		Workers:      0,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Units <= 0 || c.Days <= 0 || c.EvalVehicles <= 0 {
		return fmt.Errorf("experiments: non-positive scale: %+v", c)
	}
	if c.EvalVehicles > c.Units {
		return fmt.Errorf("experiments: EvalVehicles %d > Units %d", c.EvalVehicles, c.Units)
	}
	if c.W <= 1 || c.K <= 0 || c.Stride <= 0 || c.MaxLag <= 0 {
		return fmt.Errorf("experiments: invalid pipeline settings: %+v", c)
	}
	return nil
}
