package experiments

import (
	"context"
	"fmt"

	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/parallel"
	"vup/internal/randx"
	"vup/internal/weather"
)

// Per-runner dataset RNG salts. Distinct salts keep the evaluation,
// weather-extension and by-type fleets on independent streams; the
// values are frozen because every measured table in EXPERIMENTS.md was
// produced under them.
const (
	evalSalt    = 7777
	weatherSalt = 555
	byTypeSalt  = 31337
)

// splitUnitRNGs derives one independent RNG per selected unit from the
// run seed. It is the single source of per-vehicle dataset randomness
// for every runner: fig4/fig5/fig6/tuning/timing via evalDatasets,
// ext-weather via weatherDatasets and by-type via runByType all seed
// through here, so they share one ordering rule.
//
// Determinism contract: exactly one Split per selected unit, performed
// in fleet scan order BEFORE any parallel fan-out. Jobs then receive
// their stream by index, never draw from a shared RNG, and dataset
// construction (and everything downstream) is byte-identical for
// Workers=1 and Workers=N.
func splitUnitRNGs(seed, salt int64, n int) []*randx.RNG {
	rng := randx.New(seed + salt)
	out := make([]*randx.RNG, n)
	for i := range out {
		out[i] = rng.Split()
	}
	return out
}

// buildDatasets runs etl.FromUsage for the selected units on the
// worker pool; rngs[i] (pre-split, see splitUnitRNGs) drives unit i's
// dataset.
func buildDatasets(units []fleet.Unit, usage map[string][]fleet.DayUsage, rngs []*randx.RNG, workers int) ([]*etl.VehicleDataset, error) {
	return parallel.Map(context.Background(), len(units),
		parallel.Options{Workers: workers, Stage: "datasets"},
		func(_ context.Context, i int) (*etl.VehicleDataset, error) {
			return etl.FromUsage(units[i], usage[units[i].Vehicle.ID], rngs[i])
		})
}

// Datasets builds the per-vehicle daily datasets the evaluation
// figures train on — exported so tooling (vup-experiments -store-dir)
// can persist the exact fleet the experiments saw.
func Datasets(cfg Config) ([]*etl.VehicleDataset, error) {
	return evalDatasets(cfg)
}

// evalDatasets builds the per-vehicle daily datasets the evaluation
// figures train on (the first EvalVehicles units of the fleet).
func evalDatasets(cfg Config) ([]*etl.VehicleDataset, error) {
	f, usage, err := generateFleet(cfg)
	if err != nil {
		return nil, err
	}
	units := f.Units
	if len(units) > cfg.EvalVehicles {
		units = units[:cfg.EvalVehicles]
	}
	rngs := splitUnitRNGs(cfg.Seed, evalSalt, len(units))
	return buildDatasets(units, usage, rngs, cfg.Workers)
}

// weatherDatasets builds weather-sensitive evaluation datasets: the
// usage series is simulated under each site's weather, and the weather
// series is attached as channels.
func weatherDatasets(cfg Config) ([]*etl.VehicleDataset, error) {
	f, err := fleet.Generate(fleet.Config{Units: cfg.Units, Start: fleet.StudyStart, Days: cfg.Days, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	// Prefer weather-sensitive machine types so the ablation has
	// signal to find.
	var units []fleet.Unit
	for _, u := range f.Units {
		if len(units) == cfg.EvalVehicles {
			break
		}
		switch u.Vehicle.Model.Type {
		case fleet.Paver, fleet.ColdPlaner, fleet.SingleDrumRoller, fleet.TandemRoller:
			units = append(units, u)
		}
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("experiments: fleet of %d units has no weather-sensitive machines", cfg.Units)
	}
	rngs := splitUnitRNGs(cfg.Seed, weatherSalt, len(units))
	return parallel.Map(context.Background(), len(units),
		parallel.Options{Workers: cfg.Workers, Stage: "datasets"},
		func(_ context.Context, i int) (*etl.VehicleDataset, error) {
			u := units[i]
			// The weather generator and the unit's usage model each own
			// their stream (seeded by kept index and split at Generate
			// time respectively), so per-unit jobs stay independent.
			gen := weather.NewGenerator(u.Vehicle.Country, cfg.Seed+int64(i))
			wx, err := gen.Simulate(fleet.StudyStart, cfg.Days)
			if err != nil {
				return nil, err
			}
			usage := u.Model.SimulateWeather(fleet.StudyStart, cfg.Days, wx)
			d, err := etl.FromUsage(u, usage, rngs[i])
			if err != nil {
				return nil, err
			}
			if err := d.AttachWeather(wx); err != nil {
				return nil, err
			}
			return d, nil
		})
}
