package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func run(t *testing.T, id string) *Report {
	t.Helper()
	rep, err := Run(id, Tiny())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.ID != id || rep.Text == "" || len(rep.Tables) == 0 {
		t.Fatalf("%s: incomplete report %+v", id, rep)
	}
	return rep
}

func cell(t *testing.T, tab Table, row int, col string) string {
	t.Helper()
	for j, name := range tab.Header {
		if name == col {
			return tab.Rows[row][j]
		}
	}
	t.Fatalf("table %s has no column %q", tab.Name, col)
	return ""
}

func cellF(t *testing.T, tab Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("table %s row %d col %s: %v", tab.Name, row, col, err)
	}
	return v
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	want := []string{"by-type", "ext-levels", "ext-weather", "fig1a", "fig1b", "fig1c", "fig1d", "fig2", "fig3", "fig4", "fig5a", "fig5b", "fig6a", "fig6b", "timing", "tuning"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("no title for %s", id)
		}
	}
	if _, err := Run("bogus", Tiny()); err == nil {
		t.Error("unknown experiment accepted")
	}
	bad := Tiny()
	bad.Units = 0
	if _, err := Run("fig1a", bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFig1aShape(t *testing.T) {
	rep := run(t, "fig1a")
	tab := rep.Tables[0]
	medians := map[string]float64{}
	for i := range tab.Rows {
		medians[cell(t, tab, i, "type")] = cellF(t, tab, i, "median")
	}
	// The published ordering: graders and refuse compactors high,
	// coring machines lowest (when present in the tiny fleet).
	rc, okRC := medians["refuse compactor"]
	if !okRC {
		t.Fatal("no refuse compactor row")
	}
	if rc < 3 {
		t.Errorf("refuse compactor median = %v, want high", rc)
	}
	if coring, ok := medians["coring machine"]; ok && coring >= rc {
		t.Errorf("coring machine median %v >= refuse compactor %v", coring, rc)
	}
	// All quantiles within [0, 24].
	for i := range tab.Rows {
		if m := cellF(t, tab, i, "max"); m > 24 || m <= 0 {
			t.Errorf("row %d max = %v", i, m)
		}
	}
}

func TestFig1bSortedByMedian(t *testing.T) {
	rep := run(t, "fig1b")
	tab := rep.Tables[0]
	prev := -1.0
	for i := range tab.Rows {
		m := cellF(t, tab, i, "median")
		if m < prev {
			t.Fatalf("medians not ascending at row %d", i)
		}
		prev = m
		if !strings.HasPrefix(cell(t, tab, i, "label"), "RC-") {
			t.Fatalf("non-refuse-compactor label %q", cell(t, tab, i, "label"))
		}
	}
}

func TestFig1cSingleModel(t *testing.T) {
	rep := run(t, "fig1c")
	tab := rep.Tables[0]
	if len(tab.Rows) == 0 {
		t.Fatal("no units")
	}
	for i := range tab.Rows {
		if !strings.HasPrefix(cell(t, tab, i, "label"), "veh-") {
			t.Fatalf("label %q is not a unit", cell(t, tab, i, "label"))
		}
	}
}

func TestFig1dWeeklySeries(t *testing.T) {
	rep := run(t, "fig1d")
	tab := rep.Tables[0]
	vehicles := map[string]int{}
	for i := range tab.Rows {
		vehicles[cell(t, tab, i, "vehicle")]++
		if h := cellF(t, tab, i, "hours"); h < 0 || h > 7*24 {
			t.Fatalf("weekly hours out of range: %v", h)
		}
	}
	if len(vehicles) == 0 || len(vehicles) > 5 {
		t.Errorf("vehicles = %v", vehicles)
	}
	// Every vehicle has the same number of weeks.
	want := -1
	for _, n := range vehicles {
		if want == -1 {
			want = n
		}
		if n != want {
			t.Errorf("ragged weekly series: %v", vehicles)
		}
	}
}

func TestFig2WeeklyACF(t *testing.T) {
	rep := run(t, "fig2")
	tab := rep.Tables[0]
	if len(tab.Rows) != 21 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if lag0 := cellF(t, tab, 0, "acf"); lag0 != 1 {
		t.Errorf("acf(0) = %v", lag0)
	}
	lag7 := cellF(t, tab, 7, "acf")
	lag3 := cellF(t, tab, 3, "acf")
	if lag7 <= lag3 {
		t.Errorf("weekly structure missing: acf(7)=%v acf(3)=%v", lag7, lag3)
	}
	if cell(t, tab, 7, "significant") != "true" {
		t.Errorf("lag 7 not significant")
	}
}

func TestFig3Windows(t *testing.T) {
	rep := run(t, "fig3")
	tab := rep.Tables[0]
	for i := range tab.Rows {
		strat := cell(t, tab, i, "strategy")
		size := cellF(t, tab, i, "train_size")
		switch strat {
		case "sliding":
			if size != 5 {
				t.Errorf("sliding train size = %v", size)
			}
		case "expanding":
			if from := cellF(t, tab, i, "train_from"); from != 0 {
				t.Errorf("expanding from = %v", from)
			}
		default:
			t.Errorf("unknown strategy %q", strat)
		}
	}
	if !strings.Contains(rep.Text, "P") || !strings.Contains(rep.Text, "T") {
		t.Errorf("window sketch missing:\n%s", rep.Text)
	}
}

func TestFig4SweepShape(t *testing.T) {
	rep := run(t, "fig4")
	tab := rep.Tables[0]
	if len(tab.Rows) < 4 {
		t.Fatalf("sweep too small: %d rows", len(tab.Rows))
	}
	for i := range tab.Rows {
		pe := cellF(t, tab, i, "mean_pe")
		if pe <= 0 || pe > 500 {
			t.Errorf("row %d PE = %v", i, pe)
		}
	}
}

func TestFig5aMLBeatsBaselines(t *testing.T) {
	rep := run(t, "fig5a")
	tab := rep.Tables[0]
	pes := map[string]float64{}
	for i := range tab.Rows {
		pes[cell(t, tab, i, "algorithm")] = cellF(t, tab, i, "mean_pe")
	}
	if len(pes) != 6 {
		t.Fatalf("algorithms = %v", pes)
	}
	bestML := minOf(pes["LR"], pes["Lasso"], pes["SVR"], pes["GB"])
	worstBaseline := maxOf(pes["LV"], pes["MA"])
	if bestML >= worstBaseline {
		t.Errorf("best ML (%v) not better than worst baseline (%v): %v", bestML, worstBaseline, pes)
	}
}

func TestFig5bEasierThanFig5a(t *testing.T) {
	repA := run(t, "fig5a")
	repB := run(t, "fig5b")
	peOf := func(rep *Report, alg string) float64 {
		tab := rep.Tables[0]
		for i := range tab.Rows {
			if cell(t, tab, i, "algorithm") == alg {
				return cellF(t, tab, i, "mean_pe")
			}
		}
		t.Fatalf("no %s row", alg)
		return 0
	}
	// Section 4.4: the working-day scenario error is much lower; check
	// it for the learning models.
	for _, alg := range []string{"Lasso", "GB"} {
		nd, nwd := peOf(repA, alg), peOf(repB, alg)
		if nwd >= nd {
			t.Errorf("%s: NWD PE (%v) not below ND PE (%v)", alg, nwd, nd)
		}
	}
}

func TestFig6Series(t *testing.T) {
	for _, id := range []string{"fig6a", "fig6b"} {
		rep := run(t, id)
		tab := rep.Tables[0]
		if len(tab.Rows) < 5 {
			t.Fatalf("%s: only %d points", id, len(tab.Rows))
		}
		for i := range tab.Rows {
			a := cellF(t, tab, i, "actual_hours")
			p := cellF(t, tab, i, "predicted_hours")
			if a < 0 || a > 24 || p < 0 || p > 24 {
				t.Fatalf("%s row %d out of range: %v %v", id, i, a, p)
			}
		}
	}
}

func TestTimingOrdering(t *testing.T) {
	rep := run(t, "timing")
	tab := rep.Tables[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	times := map[string]float64{}
	prev := -1.0
	for i := range tab.Rows {
		us := cellF(t, tab, i, "fit_microseconds")
		if us < prev {
			t.Fatalf("not ascending at row %d", i)
		}
		prev = us
		times[cell(t, tab, i, "algorithm")] = us
	}
	// Section 4.5: baselines and linear models are fast; GB is the
	// slowest family (an order of magnitude above single models).
	if times["GB"] < times["LV"] || times["GB"] < times["MA"] {
		t.Errorf("GB (%v µs) not slower than baselines (LV %v, MA %v)", times["GB"], times["LV"], times["MA"])
	}
	if times["GB"] < times["LR"] {
		t.Errorf("GB (%v µs) not slower than LR (%v µs)", times["GB"], times["LR"])
	}
}

func TestTableCSV(t *testing.T) {
	rep := run(t, "fig3")
	var buf bytes.Buffer
	if err := rep.Tables[0].WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rep.Tables[0].Rows)+1 {
		t.Errorf("csv lines = %d", len(lines))
	}
	// Ragged tables are rejected.
	bad := Table{Name: "bad", Header: []string{"a", "b"}, Rows: [][]string{{"1"}}}
	if err := bad.WriteCSV(&buf); err == nil {
		t.Error("ragged table accepted")
	}
}

func TestRenderIncludesTitle(t *testing.T) {
	rep := run(t, "fig2")
	out := rep.Render()
	if !strings.Contains(out, "fig2") || !strings.Contains(out, rep.Title) {
		t.Errorf("render missing header:\n%s", out)
	}
}

func TestRenderMarkdown(t *testing.T) {
	rep := run(t, "fig3")
	md := rep.RenderMarkdown()
	if !strings.HasPrefix(md, "## fig3 — ") {
		t.Errorf("markdown header missing:\n%.80s", md)
	}
	if !strings.Contains(md, "```") {
		t.Error("code fence missing")
	}
	if !strings.Contains(md, "| strategy | test_day |") {
		t.Errorf("table header missing:\n%s", md[:300])
	}
	// One separator row per table.
	if !strings.Contains(md, "| --- |") {
		t.Error("table separator missing")
	}
	// Row count: header + separator + data rows for the windows table.
	lines := strings.Count(md, "\n")
	if lines < len(rep.Tables[0].Rows)+2 {
		t.Errorf("markdown too short: %d lines", lines)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run("fig1a", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig1a", Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Error("fig1a not deterministic")
	}
}

func TestExtWeatherShape(t *testing.T) {
	cfg := Tiny()
	cfg.Units = 40 // enough weather-sensitive machines
	rep, err := Run("ext-weather", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	baseline := cellF(t, tab, 0, "mean_pe")
	enriched := cellF(t, tab, 1, "mean_pe")
	if cell(t, tab, 0, "features") != "baseline" || cell(t, tab, 1, "features") != "with-weather" {
		t.Fatalf("row order wrong: %+v", tab.Rows)
	}
	// At this scale (two vehicles, strided) the delta is noise; this
	// is a wiring smoke test. The quantitative comparison runs at
	// small scale (see EXPERIMENTS.md). Both variants must land in the
	// same regime.
	if enriched > baseline*1.2 || baseline > enriched*1.2 {
		t.Errorf("weather variant diverged: %.1f%% vs %.1f%%", baseline, enriched)
	}
}

func TestExtLevelsShape(t *testing.T) {
	rep := run(t, "ext-levels")
	tab := rep.Tables[0]
	accs := map[string]float64{}
	for i := range tab.Rows {
		key := cell(t, tab, i, "classifier") + "/" + cell(t, tab, i, "scenario")
		acc := cellF(t, tab, i, "mean_accuracy")
		if acc < 0 || acc > 1 {
			t.Fatalf("accuracy out of range: %v", acc)
		}
		accs[key] = acc
	}
	// The tree must beat the majority baseline in the next-day
	// scenario (where idle-vs-active is the signal).
	treeND, okT := accs["Tree/next-day"]
	majND, okM := accs["Majority/next-day"]
	if !okT || !okM {
		t.Fatalf("missing rows: %v", accs)
	}
	if treeND <= majND {
		t.Errorf("tree accuracy (%v) not above majority (%v)", treeND, majND)
	}
}

func TestByTypeShape(t *testing.T) {
	cfg := Tiny()
	cfg.Units = 60 // enough units to cover several types
	rep, err := Run("by-type", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Tables[0]
	if len(tab.Rows) < 3 {
		t.Fatalf("types covered = %d", len(tab.Rows))
	}
	evaluated := 0
	for i := range tab.Rows {
		if cell(t, tab, i, "mean_pe") == "" {
			continue // type failed at this scale, reported as such
		}
		evaluated++
		pe := cellF(t, tab, i, "mean_pe")
		if pe <= 0 || pe > 500 {
			t.Errorf("row %d PE = %v", i, pe)
		}
	}
	if evaluated == 0 {
		t.Fatal("no type evaluated")
	}
}

func TestTuningShape(t *testing.T) {
	rep := run(t, "tuning")
	tab := rep.Tables[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if cell(t, tab, i, "selected") == "" {
			t.Errorf("row %d has no selection", i)
		}
		mae := cellF(t, tab, i, "validation_mae")
		if mae <= 0 || mae > 24 {
			t.Errorf("row %d MAE = %v", i, mae)
		}
		if cellF(t, tab, i, "grid_size") < 2 {
			t.Errorf("row %d trivial grid", i)
		}
	}
}

func minOf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
