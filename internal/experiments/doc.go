// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4) on the synthetic fleet of
// [vup/internal/fleet]:
//
//   - fig1a-fig1d — the data characterization of Figure 1 (Section 2)
//   - fig2 — the autocorrelation example of Figure 2
//   - fig3 — the sliding-vs-expanding window sketch of Figure 3
//   - fig4 — the K×w parameter sweep of Figure 4 (Section 4.3)
//   - fig5a/fig5b — the algorithm comparison of Figure 5 (Section 4.4)
//   - fig6a/fig6b — the predicted-vs-actual series of Figure 6
//   - tuning — the hyper-parameter grid search of Section 4.2
//   - timing — the training-time table of Section 4.5
//   - by-type — goal (iv), the best model across vehicle types
//   - ext-weather / ext-levels — the paper's future-work extensions
//
// Each experiment returns structured rows (for CSV) plus an ASCII
// rendering; EXPERIMENTS.md holds the figure ↔ command crosswalk and
// the measured-vs-published comparison.
//
// The runners drive [vup/internal/core.EvaluateFleet] over the
// per-vehicle datasets and fan their per-algorithm and per-search
// loops out on [vup/internal/parallel]. Reports are byte-identical for
// any Config.Workers value: per-vehicle dataset RNGs are split in a
// fixed pre-fan-out order (see splitUnitRNGs) and all aggregation runs
// in index order after the pool drains — the property the
// TestDeterminism tests pin down.
package experiments
