package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one named rectangular result (the rows the paper's figure
// plots or the table prints).
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// WriteCSV serializes the table.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiments: writing header of %s: %w", t.Name, err)
	}
	for i, row := range t.Rows {
		if len(row) != len(t.Header) {
			return fmt.Errorf("experiments: table %s row %d has %d cells, header %d", t.Name, i, len(row), len(t.Header))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: writing row %d of %s: %w", i, t.Name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Report is the outcome of one experiment.
type Report struct {
	ID    string
	Title string
	// Text is the rendered ASCII figure / summary.
	Text string
	// Tables hold the regenerated data series.
	Tables []Table
}

// Render returns the full human-readable report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	b.WriteString(r.Text)
	return b.String()
}

// RenderMarkdown returns the report as a Markdown section: the ASCII
// figure in a code fence followed by every table.
func (r *Report) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	fmt.Fprintf(&b, "```\n%s```\n", ensureTrailingNewline(r.Text))
	for _, tab := range r.Tables {
		fmt.Fprintf(&b, "\n### %s\n\n", tab.Name)
		b.WriteString("| " + strings.Join(tab.Header, " | ") + " |\n")
		b.WriteString("|" + strings.Repeat(" --- |", len(tab.Header)) + "\n")
		for _, row := range tab.Rows {
			b.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
	}
	return b.String()
}

func ensureTrailingNewline(s string) string {
	if s == "" || strings.HasSuffix(s, "\n") {
		return s
	}
	return s + "\n"
}

// Runner produces a report for a configuration. The context is
// propagated into the evaluation fan-outs below, so a runner invoked
// under an active trace span (vup-experiments -trace) records its
// fleet evaluations and fits as child spans.
type Runner func(context.Context, Config) (*Report, error)

// registry maps experiment IDs to runners. Populated by init
// functions next to each experiment.
var registry = map[string]Runner{}

// titleIndex remembers experiment titles for listings.
var titleIndex = map[string]string{}

func register(id, title string, run Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = run
	titleIndex[id] = title
}

// IDs returns every registered experiment ID, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the registered title of an experiment.
func Title(id string) string { return titleIndex[id] }

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (*Report, error) {
	return RunContext(context.Background(), id, cfg)
}

// RunContext is Run under a caller context: when the context carries
// an active trace span, the experiment's pipeline stages appear as
// child spans.
func RunContext(ctx context.Context, id string, cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	run, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return run(ctx, cfg)
}
