package experiments

import "testing"

// The sweep benchmark pair anchors the parallel-engine perf
// trajectory: fig5b is the heaviest registered sweep shape (six
// algorithms × EvalVehicles vehicles, each a full rolling-window
// evaluation), run once sequentially and once at full width. On an
// N-core runner the parallel case should approach N× until the fleet
// is exhausted; BENCH_sweep.json holds the committed baseline.
func benchmarkSweep(b *testing.B, workers int) {
	cfg := Tiny()
	cfg.Workers = workers
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run("fig5b", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSequential(b *testing.B) { benchmarkSweep(b, 1) }

func BenchmarkSweepParallel(b *testing.B) { benchmarkSweep(b, 0) }
