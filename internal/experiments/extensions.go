package experiments

import (
	"context"
	"fmt"
	"strconv"

	"vup/internal/classify"
	"vup/internal/core"
	"vup/internal/regress"
	"vup/internal/textplot"
	"vup/internal/weather"
)

func init() {
	register("ext-weather", "Future work: weather-enriched features vs baseline features", runExtWeather)
	register("ext-levels", "Future work: classification of discrete usage levels", runExtLevels)
}

func runExtWeather(ctx context.Context, cfg Config) (*Report, error) {
	datasets, err := weatherDatasets(cfg)
	if err != nil {
		return nil, err
	}
	table := Table{Name: "ext_weather", Header: []string{"features", "mean_pe", "median_pe", "vehicles"}}
	var labels []string
	var means []float64
	for _, variant := range []struct {
		name   string
		target []string
	}{
		{"baseline", nil},
		{"with-weather", []string{weather.ChanTemp, weather.ChanPrecip}},
	} {
		// The weather signal is an interaction — "regular workday AND
		// heavy rain" — so the learner needs depth-2 trees; the
		// paper's depth-1 stumps (and any additive/linear model)
		// cannot express it.
		pc := pipelineConfig(cfg, regress.AlgGB, core.NextDay, "ext-weather")
		pc.ModelFactory = func() (regress.Regressor, error) {
			return &regress.GradientBoosting{
				LearningRate: 0.1, NEstimators: 100, MaxDepth: 2, Loss: regress.LossLAD,
			}, nil
		}
		pc.TargetChannels = variant.target
		fr, err := core.EvaluateFleetContext(ctx, datasets, pc, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: ext-weather %s: %w", variant.name, err)
		}
		labels = append(labels, variant.name)
		means = append(means, fr.MeanPE)
		table.Rows = append(table.Rows, []string{
			variant.name, fmtF(fr.MeanPE), fmtF(fr.MedianPE), strconv.Itoa(len(fr.PEs)),
		})
	}
	rep := &Report{ID: "ext-weather", Title: Title("ext-weather")}
	rep.Text = textplot.Histogram(
		fmt.Sprintf("mean PE (%%) on %d weather-sensitive vehicles, depth-2 GB, next-day", len(datasets)),
		labels, means, 40)
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}

func runExtLevels(ctx context.Context, cfg Config) (*Report, error) {
	datasets, err := evalDatasets(cfg)
	if err != nil {
		return nil, err
	}
	table := Table{Name: "ext_levels", Header: []string{"classifier", "scenario", "mean_accuracy", "mean_macro_f1", "vehicles"}}
	var labels []string
	var accs []float64
	for _, scenario := range []core.Scenario{core.NextDay, core.NextWorkingDay} {
		for _, name := range []string{"Majority", "Tree"} {
			pc := pipelineConfig(cfg, regress.AlgLasso, scenario, "ext-levels")
			var accSum, f1Sum float64
			var n int
			for _, d := range datasets {
				res, err := classify.EvaluateVehicle(d, pc, name)
				if err != nil {
					continue
				}
				accSum += res.Accuracy
				f1Sum += res.MacroF1
				n++
			}
			if n == 0 {
				continue
			}
			label := fmt.Sprintf("%s/%s", name, scenario)
			labels = append(labels, label)
			accs = append(accs, accSum/float64(n))
			table.Rows = append(table.Rows, []string{
				name, scenario.String(), fmtF(accSum / float64(n)), fmtF(f1Sum / float64(n)), strconv.Itoa(n),
			})
		}
	}
	if len(table.Rows) == 0 {
		return nil, fmt.Errorf("experiments: ext-levels evaluated no vehicles")
	}
	rep := &Report{ID: "ext-levels", Title: Title("ext-levels")}
	rep.Text = textplot.Histogram("mean accuracy of next-(working-)day usage-level prediction", labels, accs, 40)
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}
