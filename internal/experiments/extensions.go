package experiments

import (
	"fmt"
	"strconv"

	"vup/internal/classify"
	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/randx"
	"vup/internal/regress"
	"vup/internal/textplot"
	"vup/internal/weather"
)

func init() {
	register("ext-weather", "Future work: weather-enriched features vs baseline features", runExtWeather)
	register("ext-levels", "Future work: classification of discrete usage levels", runExtLevels)
}

// weatherDatasets builds weather-sensitive evaluation datasets: the
// usage series is simulated under each site's weather, and the weather
// series is attached as channels.
func weatherDatasets(cfg Config) ([]*etl.VehicleDataset, error) {
	f, err := fleet.Generate(fleet.Config{Units: cfg.Units, Start: fleet.StudyStart, Days: cfg.Days, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	rng := randx.New(cfg.Seed + 555)
	var out []*etl.VehicleDataset
	for _, u := range f.Units {
		if len(out) == cfg.EvalVehicles {
			break
		}
		// Prefer weather-sensitive machine types so the ablation has
		// signal to find.
		switch u.Vehicle.Model.Type {
		case fleet.Paver, fleet.ColdPlaner, fleet.SingleDrumRoller, fleet.TandemRoller:
		default:
			continue
		}
		gen := weather.NewGenerator(u.Vehicle.Country, cfg.Seed+int64(len(out)))
		wx, err := gen.Simulate(fleet.StudyStart, cfg.Days)
		if err != nil {
			return nil, err
		}
		usage := u.Model.SimulateWeather(fleet.StudyStart, cfg.Days, wx)
		d, err := etl.FromUsage(u, usage, rng.Split())
		if err != nil {
			return nil, err
		}
		if err := d.AttachWeather(wx); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: fleet of %d units has no weather-sensitive machines", cfg.Units)
	}
	return out, nil
}

func runExtWeather(cfg Config) (*Report, error) {
	datasets, err := weatherDatasets(cfg)
	if err != nil {
		return nil, err
	}
	table := Table{Name: "ext_weather", Header: []string{"features", "mean_pe", "median_pe", "vehicles"}}
	var labels []string
	var means []float64
	for _, variant := range []struct {
		name   string
		target []string
	}{
		{"baseline", nil},
		{"with-weather", []string{weather.ChanTemp, weather.ChanPrecip}},
	} {
		// The weather signal is an interaction — "regular workday AND
		// heavy rain" — so the learner needs depth-2 trees; the
		// paper's depth-1 stumps (and any additive/linear model)
		// cannot express it.
		pc := pipelineConfig(cfg, regress.AlgGB, core.NextDay)
		pc.ModelFactory = func() (regress.Regressor, error) {
			return &regress.GradientBoosting{
				LearningRate: 0.1, NEstimators: 100, MaxDepth: 2, Loss: regress.LossLAD,
			}, nil
		}
		pc.TargetChannels = variant.target
		fr, err := core.EvaluateFleet(datasets, pc, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: ext-weather %s: %w", variant.name, err)
		}
		labels = append(labels, variant.name)
		means = append(means, fr.MeanPE)
		table.Rows = append(table.Rows, []string{
			variant.name, fmtF(fr.MeanPE), fmtF(fr.MedianPE), strconv.Itoa(len(fr.PEs)),
		})
	}
	rep := &Report{ID: "ext-weather", Title: Title("ext-weather")}
	rep.Text = textplot.Histogram(
		fmt.Sprintf("mean PE (%%) on %d weather-sensitive vehicles, depth-2 GB, next-day", len(datasets)),
		labels, means, 40)
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}

func runExtLevels(cfg Config) (*Report, error) {
	datasets, err := evalDatasets(cfg)
	if err != nil {
		return nil, err
	}
	table := Table{Name: "ext_levels", Header: []string{"classifier", "scenario", "mean_accuracy", "mean_macro_f1", "vehicles"}}
	var labels []string
	var accs []float64
	for _, scenario := range []core.Scenario{core.NextDay, core.NextWorkingDay} {
		for _, name := range []string{"Majority", "Tree"} {
			pc := pipelineConfig(cfg, regress.AlgLasso, scenario)
			var accSum, f1Sum float64
			var n int
			for _, d := range datasets {
				res, err := classify.EvaluateVehicle(d, pc, name)
				if err != nil {
					continue
				}
				accSum += res.Accuracy
				f1Sum += res.MacroF1
				n++
			}
			if n == 0 {
				continue
			}
			label := fmt.Sprintf("%s/%s", name, scenario)
			labels = append(labels, label)
			accs = append(accs, accSum/float64(n))
			table.Rows = append(table.Rows, []string{
				name, scenario.String(), fmtF(accSum / float64(n)), fmtF(f1Sum / float64(n)), strconv.Itoa(n),
			})
		}
	}
	if len(table.Rows) == 0 {
		return nil, fmt.Errorf("experiments: ext-levels evaluated no vehicles")
	}
	rep := &Report{ID: "ext-levels", Title: Title("ext-levels")}
	rep.Text = textplot.Histogram("mean accuracy of next-(working-)day usage-level prediction", labels, accs, 40)
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}
