package experiments

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vup/internal/fleet"
	"vup/internal/stats"
	"vup/internal/textplot"
	"vup/internal/timeseries"
)

func init() {
	register("fig1a", "CDF of daily utilization hours per vehicle type (inactive days removed)", runFig1a)
	register("fig1b", "Box plots of daily utilization hours across refuse-compactor models", runFig1b)
	register("fig1c", "Box plots of daily utilization hours across units of one model", runFig1c)
	register("fig1d", "Weekly utilization-hours series of 5 vehicle units", runFig1d)
	register("fig2", "Autocorrelation function of one unit's utilization series", runFig2)
	register("fig3", "Sliding vs expanding evaluation windows", runFig3)
}

// generateFleet builds the fleet and its usage series for cfg; the
// per-unit simulation runs on the worker pool.
func generateFleet(cfg Config) (*fleet.Fleet, map[string][]fleet.DayUsage, error) {
	f, err := fleet.Generate(fleet.Config{Units: cfg.Units, Start: fleet.StudyStart, Days: cfg.Days, Seed: cfg.Seed})
	if err != nil {
		return nil, nil, err
	}
	return f, f.SimulateAllWorkers(cfg.Workers), nil
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

func runFig1a(ctx context.Context, cfg Config) (*Report, error) {
	f, usage, err := generateFleet(cfg)
	if err != nil {
		return nil, err
	}
	// Pool active-day hours per type.
	byType := map[string][]float64{}
	for _, u := range f.Units {
		name := u.Vehicle.Model.Type.String()
		for _, d := range usage[u.Vehicle.ID] {
			if d.Hours > 0 {
				byType[name] = append(byType[name], d.Hours)
			}
		}
	}
	rep := &Report{ID: "fig1a", Title: Title("fig1a")}
	rep.Text = textplot.CDFPlot("F(x): fraction of active days with utilization <= x hours", byType, 70, 18)

	table := Table{Name: "fig1a_quantiles", Header: []string{"type", "n_days", "p25", "median", "p75", "p95", "max"}}
	names := make([]string, 0, len(byType))
	for name := range byType {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		xs := byType[name]
		table.Rows = append(table.Rows, []string{
			name,
			strconv.Itoa(len(xs)),
			fmtF(stats.Quantile(xs, 0.25)),
			fmtF(stats.Median(xs)),
			fmtF(stats.Quantile(xs, 0.75)),
			fmtF(stats.Quantile(xs, 0.95)),
			fmtF(stats.Max(xs)),
		})
	}
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}

// modelBoxes computes per-key box stats of daily hours, sorted by
// ascending median (the paper's presentation order).
func modelBoxes(samples map[string][]float64) (labels []string, boxes []stats.BoxStats) {
	type entry struct {
		label string
		box   stats.BoxStats
	}
	var entries []entry
	for label, xs := range samples {
		if len(xs) == 0 {
			continue
		}
		b, err := stats.Box(xs)
		if err != nil {
			continue
		}
		entries = append(entries, entry{label, b})
	}
	sort.Slice(entries, func(i, j int) bool {
		//lint:allow floatsafety deterministic sort key; exact equality falls through to the label tiebreak
		if entries[i].box.Median != entries[j].box.Median {
			return entries[i].box.Median < entries[j].box.Median
		}
		return entries[i].label < entries[j].label
	})
	for _, e := range entries {
		labels = append(labels, e.label)
		boxes = append(boxes, e.box)
	}
	return labels, boxes
}

func boxTable(name string, labels []string, boxes []stats.BoxStats) Table {
	t := Table{Name: name, Header: []string{"label", "n", "min", "q1", "median", "q3", "max", "outliers"}}
	for i, b := range boxes {
		t.Rows = append(t.Rows, []string{
			labels[i], strconv.Itoa(b.N), fmtF(b.Min), fmtF(b.Q1), fmtF(b.Median), fmtF(b.Q3), fmtF(b.Max), strconv.Itoa(len(b.Outliers)),
		})
	}
	return t
}

func runFig1b(ctx context.Context, cfg Config) (*Report, error) {
	f, usage, err := generateFleet(cfg)
	if err != nil {
		return nil, err
	}
	// Active-day hours per refuse-compactor model.
	byModel := map[string][]float64{}
	for _, u := range f.ByType(fleet.RefuseCompactor) {
		id := u.Vehicle.Model.ID()
		for _, d := range usage[u.Vehicle.ID] {
			if d.Hours > 0 {
				byModel[id] = append(byModel[id], d.Hours)
			}
		}
	}
	if len(byModel) == 0 {
		return nil, fmt.Errorf("experiments: fleet of %d units has no refuse compactors", cfg.Units)
	}
	labels, boxes := modelBoxes(byModel)
	rep := &Report{ID: "fig1b", Title: Title("fig1b")}
	rep.Text = textplot.BoxStrip("daily utilization hours per refuse-compactor model (ascending median)", labels, boxes, 60)
	rep.Tables = append(rep.Tables, boxTable("fig1b_models", labels, boxes))
	return rep, nil
}

func runFig1c(ctx context.Context, cfg Config) (*Report, error) {
	f, usage, err := generateFleet(cfg)
	if err != nil {
		return nil, err
	}
	// Pick the refuse-compactor model with the most units.
	counts := map[fleet.Model]int{}
	for _, u := range f.ByType(fleet.RefuseCompactor) {
		counts[u.Vehicle.Model]++
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("experiments: fleet of %d units has no refuse compactors", cfg.Units)
	}
	var best fleet.Model
	bestN := -1
	for m, n := range counts {
		if n > bestN || (n == bestN && m.ID() < best.ID()) {
			best, bestN = m, n
		}
	}
	byUnit := map[string][]float64{}
	for _, u := range f.ByModel(best) {
		for _, d := range usage[u.Vehicle.ID] {
			if d.Hours > 0 {
				byUnit[u.Vehicle.ID] = append(byUnit[u.Vehicle.ID], d.Hours)
			}
		}
	}
	labels, boxes := modelBoxes(byUnit)
	rep := &Report{ID: "fig1c", Title: Title("fig1c")}
	rep.Text = textplot.BoxStrip(
		fmt.Sprintf("daily utilization hours per unit of model %s (ascending median)", best.ID()),
		labels, boxes, 60)
	rep.Tables = append(rep.Tables, boxTable("fig1c_units", labels, boxes))
	return rep, nil
}

func runFig1d(ctx context.Context, cfg Config) (*Report, error) {
	f, usage, err := generateFleet(cfg)
	if err != nil {
		return nil, err
	}
	// Five refuse-compactor units (or as many as exist).
	units := f.ByType(fleet.RefuseCompactor)
	if len(units) == 0 {
		return nil, fmt.Errorf("experiments: fleet of %d units has no refuse compactors", cfg.Units)
	}
	if len(units) > 5 {
		units = units[:5]
	}
	var lines []textplot.Line
	table := Table{Name: "fig1d_weekly", Header: []string{"vehicle", "week", "hours"}}
	for _, u := range units {
		series := make([]float64, cfg.Days)
		for i, d := range usage[u.Vehicle.ID] {
			series[i] = d.Hours
		}
		weekly := timeseries.New(fleet.StudyStart, series).WeeklyTotals()
		xs := make([]float64, len(weekly))
		for i := range weekly {
			xs[i] = float64(i)
			table.Rows = append(table.Rows, []string{u.Vehicle.ID, strconv.Itoa(i), fmtF(weekly[i])})
		}
		lines = append(lines, textplot.Line{Name: u.Vehicle.ID, X: xs, Y: weekly})
	}
	rep := &Report{ID: "fig1d", Title: Title("fig1d")}
	rep.Text = textplot.LinePlot("weekly utilization hours, 5 units (weeks on x)", lines, 70, 16)
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}

func runFig2(ctx context.Context, cfg Config) (*Report, error) {
	f, usage, err := generateFleet(cfg)
	if err != nil {
		return nil, err
	}
	units := f.ByType(fleet.RefuseCompactor)
	if len(units) == 0 {
		return nil, fmt.Errorf("experiments: fleet of %d units has no refuse compactors", cfg.Units)
	}
	u := units[0]
	series := make([]float64, cfg.Days)
	for i, d := range usage[u.Vehicle.ID] {
		series[i] = d.Hours
	}
	maxLag := 20
	acf := stats.ACF(series, maxLag)
	band := stats.ACFConfidence(len(series))

	xs := make([]float64, maxLag+1)
	for i := range xs {
		xs[i] = float64(i)
	}
	lines := []textplot.Line{
		{Name: "ACF", X: xs, Y: acf},
		{Name: "95% white-noise band", X: []float64{0, float64(maxLag)}, Y: []float64{band, band}, Marker: '-'},
	}
	rep := &Report{ID: "fig2", Title: Title("fig2")}
	rep.Text = textplot.LinePlot(
		fmt.Sprintf("autocorrelation of %s's daily utilization (lag on x)", u.Vehicle.ID),
		lines, 64, 14)

	table := Table{Name: "fig2_acf", Header: []string{"lag", "acf", "significant"}}
	for l := 0; l <= maxLag; l++ {
		table.Rows = append(table.Rows, []string{
			strconv.Itoa(l), fmtF(acf[l]), strconv.FormatBool(acf[l] > band),
		})
	}
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}

func runFig3(ctx context.Context, cfg Config) (*Report, error) {
	// Illustrative: enumerate both strategies over a short horizon, as
	// the paper's Figure 3 sketch does.
	const n, w = 12, 5
	rep := &Report{ID: "fig3", Title: Title("fig3")}
	var b strings.Builder
	table := Table{Name: "fig3_windows", Header: []string{"strategy", "test_day", "train_from", "train_to", "train_size"}}
	for _, strat := range []timeseries.Strategy{timeseries.Sliding, timeseries.Expanding} {
		wins, err := timeseries.Enumerate(n, w, strat)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%s window (n=%d, w=%d):\n", strat, n, w)
		for _, win := range wins {
			row := []rune(strings.Repeat(".", n))
			for i := win.TrainFrom; i < win.TrainTo; i++ {
				row[i] = 'T'
			}
			row[win.Test] = 'P'
			fmt.Fprintf(&b, "  |%s|\n", string(row))
			table.Rows = append(table.Rows, []string{
				strat.String(), strconv.Itoa(win.Test), strconv.Itoa(win.TrainFrom),
				strconv.Itoa(win.TrainTo), strconv.Itoa(win.TrainTo - win.TrainFrom),
			})
		}
		b.WriteString("\n")
	}
	b.WriteString("T = training day, P = predicted day\n")
	rep.Text = b.String()
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}
