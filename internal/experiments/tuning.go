package experiments

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"vup/internal/featsel"
	"vup/internal/parallel"
	"vup/internal/regress"
	"vup/internal/textplot"
)

func init() {
	register("tuning", "Hyper-parameter grid search (Section 4.2)", runTuning)
}

// runTuning reproduces the algorithm-settings selection of
// Section 4.2: for each tunable algorithm, a grid search over the
// paper's plausible ranges with an ordered train/validation split,
// reporting the selected point next to the paper's published choice.
func runTuning(ctx context.Context, cfg Config) (*Report, error) {
	datasets, err := evalDatasets(cfg)
	if err != nil {
		return nil, err
	}
	// Pool training rows from the evaluated vehicles' final windows so
	// the search sees heterogeneous usage. Per-vehicle matrices build on
	// the pool and concatenate in dataset order; a vehicle whose window
	// yields no rows contributes an empty matrix, exactly as the
	// sequential skip did.
	type matrix struct {
		x [][]float64
		y []float64
	}
	mats, err := parallel.Map(ctx, len(datasets),
		parallel.Options{Workers: cfg.Workers, Stage: "tuning"},
		func(_ context.Context, i int) (matrix, error) {
			d := datasets[i]
			n := d.Len()
			from := n - cfg.W
			if from < 0 {
				from = 0
			}
			lags := featsel.SelectLags(d.Hours[from:n], cfg.MaxLag, cfg.K)
			spec := featsel.Spec{Lags: lags, Channels: cfg.Channels, IncludeHours: true, IncludeContext: true}
			xs, ys, _, err := spec.Matrix(d, from, n)
			if err != nil {
				return matrix{}, nil
			}
			return matrix{xs, ys}, nil
		})
	if err != nil {
		return nil, err
	}
	var x [][]float64
	var y []float64
	for _, m := range mats {
		x = append(x, m.x...)
		y = append(y, m.y...)
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("experiments: tuning has no training rows")
	}

	type search struct {
		name  string
		paper string
		grid  []regress.GridPoint
		build func(regress.GridPoint) (regress.Regressor, error)
	}
	searches := []search{
		{
			name:  "Lasso",
			paper: "alpha=0.1",
			grid:  regress.ExpandGrid(map[string][]float64{"alpha": {0.01, 0.1, 1, 10}}),
			build: func(gp regress.GridPoint) (regress.Regressor, error) {
				return &regress.Lasso{Alpha: gp["alpha"]}, nil
			},
		},
		{
			name:  "SVR",
			paper: "C=10 epsilon=0.1 gamma=1",
			grid:  regress.ExpandGrid(map[string][]float64{"C": {1, 10}, "gamma": {0.5, 1, 2}}),
			build: func(gp regress.GridPoint) (regress.Regressor, error) {
				return &regress.SVR{C: gp["C"], Epsilon: 0.1, Gamma: gp["gamma"]}, nil
			},
		},
		{
			name:  "GB",
			paper: "lr=0.1 n=100 depth=1",
			grid:  regress.ExpandGrid(map[string][]float64{"lr": {0.05, 0.1, 0.3}, "depth": {1, 2}}),
			build: func(gp regress.GridPoint) (regress.Regressor, error) {
				return &regress.GradientBoosting{
					LearningRate: gp["lr"],
					NEstimators:  50, // half-size grid stages keep the search fast
					MaxDepth:     int(gp["depth"]),
					Loss:         regress.LossLAD,
				}, nil
			},
		},
		{
			name:  "MA",
			paper: "period=30",
			grid:  regress.ExpandGrid(map[string][]float64{"period": {7, 14, 30, 60}}),
			build: func(gp regress.GridPoint) (regress.Regressor, error) {
				return &regress.MovingAverage{Period: int(gp["period"])}, nil
			},
		},
	}

	table := Table{Name: "tuning", Header: []string{"algorithm", "selected", "validation_mae", "paper_choice", "grid_size"}}
	// The four family searches fan out on the pool. GridSearch itself
	// is deterministic (ordered split, ties broken by grid order), and
	// Map returns selections in family order, so the report is
	// byte-identical at any worker count.
	type selection struct {
		best regress.GridPoint
		mae  float64
	}
	selections, err := parallel.Map(ctx, len(searches),
		parallel.Options{Workers: cfg.Workers, Stage: "tuning"},
		func(_ context.Context, i int) (selection, error) {
			s := searches[i]
			best, bestMAE, err := regress.GridSearch(x, y, s.grid, s.build, 0.25)
			if err != nil {
				return selection{}, fmt.Errorf("experiments: tuning %s: %w", s.name, err)
			}
			return selection{best, bestMAE}, nil
		})
	if err != nil {
		return nil, err
	}
	var labels []string
	var maes []float64
	for i, sel := range selections {
		s := searches[i]
		table.Rows = append(table.Rows, []string{
			s.name, formatGridPoint(sel.best), fmtF(sel.mae), s.paper, strconv.Itoa(len(s.grid)),
		})
		labels = append(labels, s.name)
		maes = append(maes, sel.mae)
	}
	rep := &Report{ID: "tuning", Title: Title("tuning")}
	rep.Text = textplot.Histogram("best validation MAE (hours) per algorithm family", labels, maes, 40)
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}

func formatGridPoint(gp regress.GridPoint) string {
	// Deterministic order for the report.
	names := make([]string, 0, len(gp))
	for name := range gp {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for i, name := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%g", name, gp[name])
	}
	return out
}
