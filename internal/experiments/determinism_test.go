package experiments

import (
	"reflect"
	"testing"
)

// TestDeterminismAcrossWorkers is the headline contract of the sweep
// engine: a parallel run must be byte-identical to the sequential one.
// It runs the two most fan-out-heavy experiments (tuning: per-vehicle
// matrix builds + per-family grid searches; fig5b: per-algorithm ×
// per-vehicle evaluations) at Workers=1 and Workers=4 and compares the
// full reports. CI runs it under -race with -cpu 1,4.
func TestDeterminismAcrossWorkers(t *testing.T) {
	for _, id := range []string{"tuning", "fig5b"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			seq := Tiny()
			seq.Workers = 1
			par := Tiny()
			par.Workers = 4

			a, err := Run(id, seq)
			if err != nil {
				t.Fatalf("%s workers=1: %v", id, err)
			}
			b, err := Run(id, par)
			if err != nil {
				t.Fatalf("%s workers=4: %v", id, err)
			}
			if a.Text != b.Text {
				t.Errorf("%s: rendered text differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", id, a.Text, b.Text)
			}
			if !reflect.DeepEqual(a.Tables, b.Tables) {
				t.Errorf("%s: tables differ between workers=1 and workers=4:\nworkers=1: %+v\nworkers=4: %+v", id, a.Tables, b.Tables)
			}
			if a.Render() != b.Render() {
				t.Errorf("%s: full render differs", id)
			}
		})
	}
}

// TestDeterminismDatasets pins the pre-fan-out RNG split order: the
// datasets every evaluation figure trains on must not depend on the
// worker count.
func TestDeterminismDatasets(t *testing.T) {
	seq := Tiny()
	seq.Workers = 1
	par := Tiny()
	par.Workers = 4
	a, err := evalDatasets(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := evalDatasets(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("dataset count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].VehicleID != b[i].VehicleID {
			t.Fatalf("dataset %d order differs: %s vs %s", i, a[i].VehicleID, b[i].VehicleID)
		}
		if !reflect.DeepEqual(a[i].Hours, b[i].Hours) {
			t.Errorf("dataset %d (%s): hours differ between worker counts", i, a[i].VehicleID)
		}
		if !reflect.DeepEqual(a[i].Channels, b[i].Channels) {
			t.Errorf("dataset %d (%s): channels differ between worker counts", i, a[i].VehicleID)
		}
	}
}
