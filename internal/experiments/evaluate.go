package experiments

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/featsel"
	"vup/internal/parallel"
	"vup/internal/regress"
	"vup/internal/stats"
	"vup/internal/textplot"
)

func init() {
	register("fig4", "Prediction error vs number of selected days K, per window size w", runFig4)
	register("fig5a", "Algorithm comparison, next-day scenario", runFig5a)
	register("fig5b", "Algorithm comparison, next-working-day scenario", runFig5b)
	register("fig6a", "Predicted vs actual utilization, next-day scenario", runFig6a)
	register("fig6b", "Predicted vs actual utilization, next-working-day scenario", runFig6b)
	register("timing", "Per-algorithm training time (Section 4.5)", runTiming)
}

// pipelineConfig maps an experiment configuration onto the core
// pipeline settings. stage labels the evaluation's worker-pool
// telemetry and is normally the experiment id.
func pipelineConfig(cfg Config, alg regress.Algorithm, scenario core.Scenario, stage string) core.Config {
	pc := core.DefaultConfig()
	pc.Algorithm = alg
	pc.Scenario = scenario
	pc.W = cfg.W
	pc.K = cfg.K
	pc.MaxLag = cfg.MaxLag
	pc.Channels = cfg.Channels
	pc.Stride = cfg.Stride
	pc.Stage = stage
	return pc
}

func runFig4(ctx context.Context, cfg Config) (*Report, error) {
	datasets, err := evalDatasets(cfg)
	if err != nil {
		return nil, err
	}
	// The sweep uses Lasso: fast enough for the grid and regularized,
	// so the error trend over K reflects the information in the
	// selected lags rather than raw over-parameterization.
	ks := filterLE([]int{2, 5, 10, 15, 20, 30, 40}, cfg.MaxLag)
	ws := filterLE([]int{30, 60, 100, 140}, cfg.W)
	if len(ws) == 0 || ws[len(ws)-1] != cfg.W {
		ws = append(ws, cfg.W)
	}

	table := Table{Name: "fig4_sweep", Header: []string{"w", "K", "mean_pe", "vehicles"}}
	var lines []textplot.Line
	for _, w := range ws {
		var xs, ys []float64
		for _, k := range ks {
			pc := pipelineConfig(cfg, regress.AlgLasso, core.NextDay, "fig4")
			pc.W = w
			pc.K = k
			fr, err := core.EvaluateFleetContext(ctx, datasets, pc, cfg.Workers)
			if err != nil {
				continue // window too large for this scale
			}
			xs = append(xs, float64(k))
			ys = append(ys, fr.MeanPE)
			table.Rows = append(table.Rows, []string{
				strconv.Itoa(w), strconv.Itoa(k), fmtF(fr.MeanPE), strconv.Itoa(len(fr.PEs)),
			})
		}
		if len(xs) > 0 {
			lines = append(lines, textplot.Line{Name: fmt.Sprintf("w=%d", w), X: xs, Y: ys})
		}
	}
	if len(table.Rows) == 0 {
		return nil, fmt.Errorf("experiments: fig4 produced no sweep points (datasets too short for every w)")
	}
	rep := &Report{ID: "fig4", Title: Title("fig4")}
	rep.Text = textplot.LinePlot("mean PE (%) vs K, one curve per window size w", lines, 64, 16)
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}

func filterLE(vals []int, limit int) []int {
	var out []int
	for _, v := range vals {
		if v <= limit {
			out = append(out, v)
		}
	}
	return out
}

// runFig5 is the shared algorithm-comparison runner.
func runFig5(ctx context.Context, cfg Config, scenario core.Scenario, id string) (*Report, error) {
	datasets, err := evalDatasets(cfg)
	if err != nil {
		return nil, err
	}
	table := Table{Name: id + "_errors", Header: []string{"algorithm", "mean_pe", "median_pe", "p25_pe", "p75_pe", "vehicles", "failed"}}
	// Outer fan-out over the six algorithms; each job fans out again
	// over the vehicles inside EvaluateFleet. Results come back in
	// algorithm order, so the table and plots below are byte-identical
	// at any worker count.
	algs := regress.Algorithms()
	frs, err := parallel.Map(ctx, len(algs),
		parallel.Options{Workers: cfg.Workers, Stage: id},
		func(ctx context.Context, i int) (*core.FleetResult, error) {
			pc := pipelineConfig(cfg, algs[i], scenario, id)
			fr, err := core.EvaluateFleetContext(ctx, datasets, pc, cfg.Workers)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s with %s: %w", id, algs[i], err)
			}
			return fr, nil
		})
	if err != nil {
		return nil, err
	}
	var labels []string
	var boxes []stats.BoxStats
	var means []float64
	for i, fr := range frs {
		box, err := stats.Box(fr.PEs)
		if err != nil {
			return nil, err
		}
		labels = append(labels, string(algs[i]))
		boxes = append(boxes, box)
		means = append(means, fr.MeanPE)
		table.Rows = append(table.Rows, []string{
			string(algs[i]), fmtF(fr.MeanPE), fmtF(fr.MedianPE),
			fmtF(stats.Quantile(fr.PEs, 0.25)), fmtF(stats.Quantile(fr.PEs, 0.75)),
			strconv.Itoa(len(fr.PEs)), strconv.Itoa(len(fr.Failed)),
		})
	}
	rep := &Report{ID: id, Title: Title(id)}
	rep.Text = textplot.Histogram(
		fmt.Sprintf("mean PE (%%) per algorithm, %s scenario", scenario),
		labels, means, 40) +
		"\n" + textplot.BoxStrip("per-vehicle PE distribution (%)", labels, boxes, 52)
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}

func runFig5a(ctx context.Context, cfg Config) (*Report, error) {
	return runFig5(ctx, cfg, core.NextDay, "fig5a")
}
func runFig5b(ctx context.Context, cfg Config) (*Report, error) {
	return runFig5(ctx, cfg, core.NextWorkingDay, "fig5b")
}

// runFig6 renders predicted vs actual for one unit under the given
// scenario using the paper's best single model (SVR).
func runFig6(ctx context.Context, cfg Config, scenario core.Scenario, id string) (*Report, error) {
	datasets, err := evalDatasets(cfg)
	if err != nil {
		return nil, err
	}
	pc := pipelineConfig(cfg, regress.AlgSVR, scenario, id)
	// The figure plots a contiguous stretch of days, so the evaluation
	// stride does not apply; at most ~60 days are plotted regardless
	// of scale.
	pc.Stride = 1
	var res *core.Result
	var used *etl.VehicleDataset
	for _, d := range datasets {
		if res, err = core.EvaluateVehicleContext(ctx, d, pc); err == nil {
			used = d
			break
		}
	}
	if res == nil {
		return nil, fmt.Errorf("experiments: %s: no evaluable vehicle: %v", id, err)
	}
	preds := res.Predictions
	if len(preds) > 60 {
		preds = preds[len(preds)-60:]
	}
	var xs, actual, predicted []float64
	table := Table{Name: id + "_series", Header: []string{"date", "actual_hours", "predicted_hours"}}
	for i, p := range preds {
		xs = append(xs, float64(i))
		actual = append(actual, p.Actual)
		predicted = append(predicted, p.Predicted)
		table.Rows = append(table.Rows, []string{p.Date.Format("2006-01-02"), fmtF(p.Actual), fmtF(p.Predicted)})
	}
	pe, err := core.PE(predicted, actual)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: id, Title: Title(id)}
	rep.Text = textplot.LinePlot(
		fmt.Sprintf("%s, unit %s, SVR, PE=%.1f%% (evaluated days on x)", scenario, used.VehicleID, pe),
		[]textplot.Line{
			{Name: "actual", X: xs, Y: actual, Marker: 'a'},
			{Name: "predicted", X: xs, Y: predicted, Marker: 'p'},
		}, 70, 16)
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}

func runFig6a(ctx context.Context, cfg Config) (*Report, error) {
	return runFig6(ctx, cfg, core.NextDay, "fig6a")
}
func runFig6b(ctx context.Context, cfg Config) (*Report, error) {
	return runFig6(ctx, cfg, core.NextWorkingDay, "fig6b")
}

func runTiming(ctx context.Context, cfg Config) (*Report, error) {
	datasets, err := evalDatasets(cfg)
	if err != nil {
		return nil, err
	}
	d := datasets[0]
	// One training window at the end of the series, the paper's
	// recommended settings scaled to this configuration.
	n := d.Len()
	trainFrom := n - cfg.W
	if trainFrom < 0 {
		trainFrom = 0
	}
	lags := featsel.SelectLags(d.Hours[trainFrom:n], cfg.MaxLag, cfg.K)
	spec := featsel.Spec{Lags: lags, Channels: cfg.Channels, IncludeHours: true, IncludeContext: true}
	x, y, _, err := spec.Matrix(d, trainFrom, n)
	if err != nil {
		return nil, err
	}

	type entry struct {
		alg     regress.Algorithm
		elapsed time.Duration
	}
	table := Table{Name: "timing", Header: []string{"algorithm", "fit_microseconds", "train_rows", "features"}}
	// The six fits run on the pool; concurrent fits contend for cores,
	// but the table's claim is the ordering across orders of magnitude
	// (baselines in microseconds, GB in tens of milliseconds), which
	// contention cannot invert.
	algs := regress.Algorithms()
	entries, err := parallel.Map(ctx, len(algs),
		parallel.Options{Workers: cfg.Workers, Stage: "timing"},
		func(_ context.Context, i int) (entry, error) {
			model, err := regress.New(algs[i])
			if err != nil {
				return entry{}, err
			}
			start := time.Now() //lint:allow determinism -timing wall-clock table; documented as machine-dependent, not a figure
			if err := model.Fit(x, y); err != nil {
				return entry{}, fmt.Errorf("experiments: timing %s: %w", algs[i], err)
			}
			return entry{algs[i], time.Since(start)}, nil
		})
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].elapsed < entries[j].elapsed })
	labels := make([]string, len(entries))
	micros := make([]float64, len(entries))
	for i, e := range entries {
		labels[i] = string(e.alg)
		micros[i] = float64(e.elapsed.Microseconds())
		table.Rows = append(table.Rows, []string{
			string(e.alg), strconv.FormatInt(e.elapsed.Microseconds(), 10),
			strconv.Itoa(len(x)), strconv.Itoa(len(x[0])),
		})
	}
	rep := &Report{ID: "timing", Title: Title("timing")}
	rep.Text = textplot.Histogram("single-model training time (µs), ascending", labels, micros, 40)
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}
