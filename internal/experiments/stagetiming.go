package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vup/internal/obs"
)

// stageRow aggregates one algorithm's collected stage timings.
type stageRow struct {
	alg       string
	fits      uint64
	fitTotal  float64 // seconds
	fitP95    float64
	predicts  uint64
	predTotal float64
	fitMean   float64
	predMean  float64
}

// StageTimings renders the pipeline stage histograms the process has
// collected so far (internal/core records every feature-matrix build,
// fit and predict) as a per-algorithm table — the live counterpart of
// Section 4.5's training-time comparison: after any sweep, tree
// ensembles and baselines should sit orders of magnitude below SVR at
// large w. Returns a Report so -timing output can join the CSV and
// Markdown writers; the report is empty-safe when nothing ran.
func StageTimings() *Report {
	families := obs.Default.Gather()
	rows := map[string]*stageRow{}
	row := func(alg string) *stageRow {
		r, ok := rows[alg]
		if !ok {
			r = &stageRow{alg: alg}
			rows[alg] = r
		}
		return r
	}
	for _, fam := range families {
		if fam.Name != "pipeline_fit_seconds" && fam.Name != "pipeline_predict_seconds" {
			continue
		}
		for _, s := range fam.Samples {
			alg := "?"
			for _, l := range s.Labels {
				if l.Name == "algorithm" {
					alg = l.Value
				}
			}
			r := row(alg)
			if fam.Name == "pipeline_fit_seconds" {
				r.fits, r.fitTotal = s.Count, s.Sum
				r.fitMean, r.fitP95 = s.Mean(), s.Quantile(0.95)
			} else {
				r.predicts, r.predTotal = s.Count, s.Sum
				r.predMean = s.Mean()
			}
		}
	}

	ordered := make([]*stageRow, 0, len(rows))
	for _, r := range rows {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].fitMean < ordered[j].fitMean })

	rep := &Report{ID: "stage-timing", Title: "Collected pipeline stage timings (Section 4.5, live)"}
	var b strings.Builder
	if len(ordered) == 0 {
		b.WriteString("no stage timings collected (run at least one evaluation or forecast)\n")
		rep.Text = b.String()
		return rep
	}
	table := Table{
		Name:   "stage-timing",
		Header: []string{"algorithm", "fits", "mean_fit_ms", "p95_fit_ms", "total_fit_s", "predicts", "mean_predict_ms"},
	}
	fmt.Fprintf(&b, "%-10s %10s %14s %14s %14s %10s %16s\n",
		"algorithm", "fits", "mean fit (ms)", "p95 fit (ms)", "total fit (s)", "predicts", "mean pred (ms)")
	for _, r := range ordered {
		fmt.Fprintf(&b, "%-10s %10d %14.3f %14.3f %14.3f %10d %16.4f\n",
			r.alg, r.fits, r.fitMean*1e3, r.fitP95*1e3, r.fitTotal, r.predicts, r.predMean*1e3)
		table.Rows = append(table.Rows, []string{
			r.alg,
			strconv.FormatUint(r.fits, 10),
			fmt.Sprintf("%.4f", r.fitMean*1e3),
			fmt.Sprintf("%.4f", r.fitP95*1e3),
			fmt.Sprintf("%.4f", r.fitTotal),
			strconv.FormatUint(r.predicts, 10),
			fmt.Sprintf("%.5f", r.predMean*1e3),
		})
	}
	if s, ok := obs.FindSample(families, "pipeline_feature_build_seconds"); ok && s.Count > 0 {
		fmt.Fprintf(&b, "\nfeature build: %d windows, mean %.3f ms, total %.3f s\n",
			s.Count, s.Mean()*1e3, s.Sum)
	}
	rep.Text = b.String()
	rep.Tables = append(rep.Tables, table)
	return rep
}
