package experiments

import (
	"strconv"
	"strings"
	"testing"

	"vup/internal/obs"
)

func TestStageTimings(t *testing.T) {
	// Registration is idempotent, so this resolves the same families
	// internal/core records into.
	fit := obs.Default.Histogram("pipeline_fit_seconds",
		"Model training time per window, by algorithm (Section 4.5).",
		obs.DurationBuckets, "algorithm")
	pred := obs.Default.Histogram("pipeline_predict_seconds",
		"Single-row prediction time, by algorithm.",
		obs.DurationBuckets, "algorithm")
	// SVR slow, RF fast — Section 4.5's ordering.
	for i := 0; i < 4; i++ {
		fit.With("SVR").Observe(2.0)
		fit.With("RF").Observe(0.001)
		pred.With("SVR").Observe(0.0001)
		pred.With("RF").Observe(0.0001)
	}

	rep := StageTimings()
	if rep.ID != "stage-timing" || len(rep.Tables) != 1 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	text := rep.Text
	for _, alg := range []string{"SVR", "RF"} {
		if !strings.Contains(text, alg) {
			t.Errorf("report missing algorithm %s:\n%s", alg, text)
		}
	}
	// Rows sort by mean fit ascending: RF must precede SVR.
	if rf, svr := strings.Index(text, "RF"), strings.Index(text, "SVR"); rf > svr {
		t.Errorf("RF (fast) should precede SVR (slow) in:\n%s", text)
	}
	var rfRow, svrRow []string
	for _, row := range rep.Tables[0].Rows {
		switch row[0] {
		case "RF":
			rfRow = row
		case "SVR":
			svrRow = row
		}
	}
	if rfRow == nil || svrRow == nil {
		t.Fatalf("table missing RF or SVR rows: %v", rep.Tables[0].Rows)
	}
	rfMean, err1 := strconv.ParseFloat(rfRow[2], 64)
	svrMean, err2 := strconv.ParseFloat(svrRow[2], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable mean fit cells %q, %q", rfRow[2], svrRow[2])
	}
	if rfMean >= svrMean {
		t.Errorf("mean fit: RF %v ms should be below SVR %v ms", rfMean, svrMean)
	}
}
