package core

import (
	"testing"

	"vup/internal/regress"
)

// benchEvalConfig is the paper's recommended pipeline shape (w=140,
// K=20, MaxLag=42, every analog channel, every-day evaluation); only
// the algorithm varies. The LV/MA baselines fit in nanoseconds, so
// their numbers isolate the sliding-window evaluation path itself —
// lag selection, feature materialization and matrix assembly — while
// LR adds a realistic model fit on top.
func benchEvalConfig(alg regress.Algorithm) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = alg
	return cfg
}

// BenchmarkEvaluateVehicle measures the full per-vehicle hold-out
// evaluation. Old-vs-new numbers for the compiled-Plan refactor are
// recorded in BENCH_plan.json at the repository root.
func BenchmarkEvaluateVehicle(b *testing.B) {
	d := testDataset(b, 77, 420)
	for _, alg := range []regress.Algorithm{
		regress.AlgLastValue, regress.AlgMovingAverage, regress.AlgLinear, regress.AlgLasso,
	} {
		b.Run(string(alg), func(b *testing.B) {
			cfg := benchEvalConfig(alg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := EvaluateVehicle(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkForecastHorizon measures iterated multi-step forecasting;
// the Plan refactor replaces the per-step O(n) dataset clone with a
// single extension mutated in place.
func BenchmarkForecastHorizon(b *testing.B) {
	d := testDataset(b, 78, 420)
	cfg := benchEvalConfig(regress.AlgLinear)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ForecastHorizon(d, cfg, 14, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForecastInterval measures the calibrated-interval path;
// post-refactor it shares one Plan between the evaluation pass and the
// forecast fit instead of compiling the pipeline twice.
func BenchmarkForecastInterval(b *testing.B) {
	d := testDataset(b, 79, 420)
	cfg := benchEvalConfig(regress.AlgLinear)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ForecastInterval(d, cfg, 0.8); err != nil {
			b.Fatal(err)
		}
	}
}
