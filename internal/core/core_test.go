package core

import (
	"errors"
	"math"
	"testing"

	"vup/internal/canbus"
	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/randx"
	"vup/internal/regress"
	"vup/internal/timeseries"
)

// fastConfig keeps test runtime low: linear model, modest window,
// strided evaluation.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Algorithm = regress.AlgLinear
	cfg.W = 80
	cfg.K = 10
	cfg.MaxLag = 21
	// Stride 5 avoids aliasing the weekly pattern (a stride of 7 would
	// evaluate only one weekday).
	cfg.Stride = 5
	cfg.Channels = []string{canbus.ChanFuelRate, canbus.ChanEngineSpeed}
	return cfg
}

func testDataset(t testing.TB, seed int64, days int) *etl.VehicleDataset {
	t.Helper()
	rng := randx.New(seed)
	v := fleet.Vehicle{ID: "veh-0", Model: fleet.Model{Type: fleet.RefuseCompactor, Index: 0}, Country: "IT"}
	u := fleet.Unit{Vehicle: v, Model: fleet.NewUsageModel(v, seed, rng.Split())}
	usage := u.Model.Simulate(fleet.StudyStart, days)
	d, err := etl.FromUsage(u, usage, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.W = 1 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.MaxLag = 0 },
		func(c *Config) { c.Stride = 0 },
		func(c *Config) { c.ActiveThreshold = -1 },
		func(c *Config) { c.MinTrainRows = 0 },
		func(c *Config) { c.Algorithm = "bogus" },
	}
	for i, mutate := range bads {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: want ErrConfig, got %v", i, err)
		}
	}
}

func TestScenarioString(t *testing.T) {
	if NextDay.String() != "next-day" || NextWorkingDay.String() != "next-working-day" {
		t.Error("scenario names wrong")
	}
}

func TestMetrics(t *testing.T) {
	pred := []float64{2, 4}
	actual := []float64{1, 5}
	pe, err := PE(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pe-100.0*2/6) > 1e-12 {
		t.Errorf("PE = %v", pe)
	}
	mae, _ := MAE(pred, actual)
	if mae != 1 {
		t.Errorf("MAE = %v", mae)
	}
	rmse, _ := RMSE(pred, actual)
	if rmse != 1 {
		t.Errorf("RMSE = %v", rmse)
	}
	if _, err := PE(nil, nil); !errors.Is(err, ErrNoPredictions) {
		t.Errorf("want ErrNoPredictions, got %v", err)
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrNoPredictions) {
		t.Errorf("length mismatch: %v", err)
	}
	if _, err := RMSE([]float64{1}, nil); !errors.Is(err, ErrNoPredictions) {
		t.Errorf("length mismatch: %v", err)
	}
	nan, err := PE([]float64{1}, []float64{0})
	if err != nil || !math.IsNaN(nan) {
		t.Errorf("zero-actual PE = %v %v", nan, err)
	}
}

func TestEvaluateVehicleBasics(t *testing.T) {
	d := testDataset(t, 1, 400)
	res, err := EvaluateVehicle(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.VehicleID != "veh-0" || res.Algorithm != regress.AlgLinear {
		t.Errorf("identity: %+v", res)
	}
	if len(res.Predictions) == 0 {
		t.Fatal("no predictions")
	}
	if math.IsNaN(res.PE) || res.PE < 0 {
		t.Errorf("PE = %v", res.PE)
	}
	for _, p := range res.Predictions {
		if p.Predicted < 0 || p.Predicted > 24 {
			t.Fatalf("prediction out of range: %v", p.Predicted)
		}
		if len(p.Lags) == 0 || len(p.Lags) > 10 {
			t.Fatalf("lags = %v", p.Lags)
		}
	}
}

func TestEvaluateVehicleErrors(t *testing.T) {
	d := testDataset(t, 2, 400)
	bad := fastConfig()
	bad.W = 0
	if _, err := EvaluateVehicle(d, bad); !errors.Is(err, ErrConfig) {
		t.Errorf("want ErrConfig, got %v", err)
	}
	// Series shorter than the window.
	short := testDataset(t, 3, 50)
	if _, err := EvaluateVehicle(short, fastConfig()); err == nil {
		t.Error("short series accepted")
	}
	// Invalid dataset.
	if _, err := EvaluateVehicle(&etl.VehicleDataset{}, fastConfig()); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestMLBeatsBaselinesNextDay(t *testing.T) {
	// The paper's central comparison: learning approaches outperform
	// the naive baselines.
	d := testDataset(t, 4, 500)
	pe := func(alg regress.Algorithm) float64 {
		cfg := fastConfig()
		cfg.Algorithm = alg
		res, err := EvaluateVehicle(d, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		return res.PE
	}
	lasso := pe(regress.AlgLasso)
	lv := pe(regress.AlgLastValue)
	ma := pe(regress.AlgMovingAverage)
	if lasso >= lv {
		t.Errorf("Lasso (%.1f%%) not better than LV (%.1f%%)", lasso, lv)
	}
	if lasso >= ma {
		t.Errorf("Lasso (%.1f%%) not better than MA (%.1f%%)", lasso, ma)
	}
}

func TestNextWorkingDayEasier(t *testing.T) {
	// Section 4.4: the next-working-day scenario roughly halves the
	// error because unpredictable idle days vanish.
	d := testDataset(t, 5, 600)
	cfg := fastConfig()
	nd, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario = NextWorkingDay
	nwd, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nwd.PE >= nd.PE {
		t.Errorf("NWD PE (%.1f%%) not below ND PE (%.1f%%)", nwd.PE, nd.PE)
	}
}

func TestNextWorkingDayDatesAreRealDates(t *testing.T) {
	// The compacted view must report each prediction's true calendar
	// date — the dates of working days, generally non-contiguous and
	// all carrying >= threshold hours in the original series.
	d := testDataset(t, 51, 600)
	cfg := fastConfig()
	cfg.Scenario = NextWorkingDay
	res, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hoursByDate := map[string]float64{}
	for i := 0; i < d.Len(); i++ {
		hoursByDate[d.Date(i).Format("2006-01-02")] = d.Hours[i]
	}
	for _, p := range res.Predictions {
		h, ok := hoursByDate[p.Date.Format("2006-01-02")]
		if !ok {
			t.Fatalf("prediction date %v not in the original series", p.Date)
		}
		if h < cfg.ActiveThreshold {
			t.Fatalf("prediction date %v has %v hours, below the working threshold", p.Date, h)
		}
		if h != p.Actual {
			t.Fatalf("prediction actual %v != original hours %v on %v", p.Actual, h, p.Date)
		}
	}
}

func TestExpandingVsSliding(t *testing.T) {
	d := testDataset(t, 6, 500)
	cfg := fastConfig()
	sliding, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Strategy = timeseries.Expanding
	expanding, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports expanding performs (slightly) better; allow
	// parity within a tolerance to keep the test robust.
	if expanding.PE > sliding.PE*1.15 {
		t.Errorf("expanding PE (%.1f%%) much worse than sliding (%.1f%%)", expanding.PE, sliding.PE)
	}
}

func TestStrideReducesWork(t *testing.T) {
	d := testDataset(t, 7, 400)
	cfg := fastConfig()
	cfg.Stride = 1
	full, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stride = 10
	strided, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(strided.Predictions) >= len(full.Predictions) {
		t.Errorf("stride did not reduce predictions: %d vs %d", len(strided.Predictions), len(full.Predictions))
	}
}

func TestForecast(t *testing.T) {
	d := testDataset(t, 8, 300)
	cfg := fastConfig()
	pred, lags, err := Forecast(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pred < 0 || pred > 24 {
		t.Errorf("forecast = %v", pred)
	}
	if len(lags) == 0 {
		t.Error("no lags reported")
	}
	// Next-working-day forecast too.
	cfg.Scenario = NextWorkingDay
	pred2, _, err := Forecast(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pred2 < 0 || pred2 > 24 {
		t.Errorf("NWD forecast = %v", pred2)
	}
}

func TestForecastErrors(t *testing.T) {
	d := testDataset(t, 9, 300)
	bad := fastConfig()
	bad.K = 0
	if _, _, err := Forecast(d, bad); !errors.Is(err, ErrConfig) {
		t.Errorf("want ErrConfig, got %v", err)
	}
	if _, _, err := Forecast(&etl.VehicleDataset{}, fastConfig()); err == nil {
		t.Error("empty dataset accepted")
	}
	// A dataset with too few rows for the minimum training size.
	tiny := testDataset(t, 10, 300)
	cfg := fastConfig()
	cfg.MinTrainRows = 100000
	if _, _, err := Forecast(tiny, cfg); err == nil {
		t.Error("impossible MinTrainRows accepted")
	}
}

func TestForecastHorizon(t *testing.T) {
	d := testDataset(t, 60, 400)
	cfg := fastConfig()
	preds, err := ForecastHorizon(d, cfg, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 7 {
		t.Fatalf("horizon = %d", len(preds))
	}
	for i, p := range preds {
		if p < 0 || p > 24 {
			t.Fatalf("step %d prediction out of range: %v", i, p)
		}
	}
	// The first step matches the single-day forecast.
	single, _, err := Forecast(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(preds[0]-single) > 1e-9 {
		t.Errorf("step 0 (%v) != single forecast (%v)", preds[0], single)
	}
	// Weekly structure should echo through the horizon: not all seven
	// predictions identical for a weekly-patterned unit.
	allSame := true
	for _, p := range preds[1:] {
		if math.Abs(p-preds[0]) > 0.05 {
			allSame = false
		}
	}
	if allSame {
		t.Log("flat 7-day horizon (acceptable but unusual for weekly units)")
	}
}

func TestForecastHorizonErrors(t *testing.T) {
	d := testDataset(t, 61, 400)
	if _, err := ForecastHorizon(d, fastConfig(), 0, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("horizon 0: %v", err)
	}
	bad := fastConfig()
	bad.K = 0
	if _, err := ForecastHorizon(d, bad, 3, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("bad config: %v", err)
	}
	if _, err := ForecastHorizon(&etl.VehicleDataset{}, fastConfig(), 3, nil); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestScenarioViewAllIdle(t *testing.T) {
	d := testDataset(t, 11, 300)
	for i := range d.Hours {
		d.Hours[i] = 0
	}
	cfg := fastConfig()
	cfg.Scenario = NextWorkingDay
	if _, err := EvaluateVehicle(d, cfg); err == nil {
		t.Error("all-idle vehicle accepted in NWD scenario")
	}
}

func TestEvaluateFleet(t *testing.T) {
	var datasets []*etl.VehicleDataset
	for seed := int64(20); seed < 24; seed++ {
		datasets = append(datasets, testDataset(t, seed, 400))
	}
	// One vehicle too short to evaluate: must land in Failed.
	datasets = append(datasets, testDataset(t, 99, 60))
	fr, err := EvaluateFleet(datasets, fastConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Results) != 4 {
		t.Errorf("results = %d", len(fr.Results))
	}
	if len(fr.Failed) != 1 {
		t.Errorf("failed = %v", fr.Failed)
	}
	if math.IsNaN(fr.MeanPE) || fr.MeanPE <= 0 {
		t.Errorf("MeanPE = %v", fr.MeanPE)
	}
	if fr.MedianPE <= 0 {
		t.Errorf("MedianPE = %v", fr.MedianPE)
	}
	if len(fr.PEs) != 4 {
		t.Errorf("PEs = %v", fr.PEs)
	}
}

func TestEvaluateFleetErrors(t *testing.T) {
	if _, err := EvaluateFleet(nil, fastConfig(), 1); !errors.Is(err, ErrNoPredictions) {
		t.Errorf("want ErrNoPredictions, got %v", err)
	}
	bad := fastConfig()
	bad.W = 0
	if _, err := EvaluateFleet([]*etl.VehicleDataset{testDataset(t, 30, 200)}, bad, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("want ErrConfig, got %v", err)
	}
	// Every vehicle failing must be an error, not a zero result.
	short := []*etl.VehicleDataset{testDataset(t, 31, 50)}
	if _, err := EvaluateFleet(short, fastConfig(), 1); !errors.Is(err, ErrNoPredictions) {
		t.Errorf("want ErrNoPredictions, got %v", err)
	}
}

func TestSignificantSelectionRuns(t *testing.T) {
	// The significance-gated variant must produce a comparable PE to
	// the paper's top-K rule on a weekly-structured unit.
	d := testDataset(t, 50, 450)
	topK, err := EvaluateVehicle(d, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Selection = SelectSignificant
	sig, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sig.PE > topK.PE*1.5 {
		t.Errorf("significant selection PE %.1f%% much worse than top-K %.1f%%", sig.PE, topK.PE)
	}
	if SelectTopK.String() != "top-k" || SelectSignificant.String() != "significant" {
		t.Error("selection names wrong")
	}
}

func TestFeatureSelectionHelps(t *testing.T) {
	// Figure 4's headline: the autocorrelation-based selection of K
	// lags from a wide budget (which captures the weekly lags 7, 14,
	// 21) beats naively taking the first K lags. Lasso keeps the
	// comparison insensitive to the raw feature count.
	d := testDataset(t, 12, 500)
	pe := func(k, maxLag int) float64 {
		cfg := fastConfig()
		cfg.Algorithm = regress.AlgLasso
		cfg.K = k
		cfg.MaxLag = maxLag
		res, err := EvaluateVehicle(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.PE
	}
	naive := pe(8, 8)     // lags 1..8: misses lag 14 and 21
	selected := pe(8, 21) // ACF picks the weekly harmonics
	if selected > naive*1.05 {
		t.Errorf("ACF-selected PE (%.1f%%) worse than naive first-K (%.1f%%)", selected, naive)
	}
}
