package core

import (
	"errors"
	"math"
)

// ErrNoPredictions is returned when a metric has nothing to average.
var ErrNoPredictions = errors.New("core: no predictions to evaluate")

// PE computes the paper's Percentage Error,
//
//	PE = 100 · Σ|pred_i − actual_i| / Σ|actual_i|
//
// It returns an error for empty input and NaN when the actuals sum to
// zero (no utilization in the evaluation period).
func PE(pred, actual []float64) (float64, error) {
	if len(pred) == 0 || len(pred) != len(actual) {
		return 0, ErrNoPredictions
	}
	var num, den float64
	for i := range pred {
		num += math.Abs(pred[i] - actual[i])
		den += math.Abs(actual[i])
	}
	if den == 0 {
		return math.NaN(), nil
	}
	return 100 * num / den, nil
}

// MAE returns the mean absolute error.
func MAE(pred, actual []float64) (float64, error) {
	if len(pred) == 0 || len(pred) != len(actual) {
		return 0, ErrNoPredictions
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred)), nil
}

// RMSE returns the root mean squared error.
func RMSE(pred, actual []float64) (float64, error) {
	if len(pred) == 0 || len(pred) != len(actual) {
		return 0, ErrNoPredictions
	}
	var sum float64
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}
