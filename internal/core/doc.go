// Package core implements the paper's primary contribution (Section 3
// and the evaluation procedure of Section 4.1): the per-vehicle
// utilization-hours prediction pipeline. For each vehicle it generates
// training data with the sliding-window approach, selects the K most
// autocorrelated lags (delegated to [vup/internal/featsel]), trains a
// regression model from [vup/internal/regress], predicts the next
// (working) day and evaluates the Percentage Error under the sliding-
// or expanding-window hold-out strategies of Figure 3
// ([vup/internal/timeseries]).
//
// [EvaluateVehicle] is the unit of work of the whole evaluation
// campaign: [EvaluateFleet] fans it out over the vehicles on the
// bounded worker pool of [vup/internal/parallel] and aggregates the
// per-vehicle errors deterministically (evaluation step 6), feeding
// the Figure 4 sweep, the Figure 5 comparison and the by-type table
// that [vup/internal/experiments] renders. [Forecast],
// [ForecastHorizon] and [ForecastInterval] expose the same pipeline
// for serving (goal iii, confidence intervals included).
//
// Every feature-matrix build, fit and predict is timed into the
// [vup/internal/obs] stage histograms — the live Section 4.5 table.
package core
