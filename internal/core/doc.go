// Package core implements the paper's primary contribution (Section 3
// and the evaluation procedure of Section 4.1): the per-vehicle
// utilization-hours prediction pipeline. For each vehicle it generates
// training data with the sliding-window approach, selects the K most
// autocorrelated lags (delegated to [vup/internal/featsel]), trains a
// regression model from [vup/internal/regress], predicts the next
// (working) day and evaluates the Percentage Error under the sliding-
// or expanding-window hold-out strategies of Figure 3
// ([vup/internal/timeseries]).
//
// The pipeline is compiled, then driven. [NewPlan] builds a [Plan]
// once per (dataset, Config) pair: the validated configuration, the
// scenario view of the series (Section 3's next-day vs
// next-working-day targets) and a one-pass lag-superset feature
// materialization ([vup/internal/featsel.Materialize]) holding every
// feature any training window could select. The paper's per-window
// steps then run over the plan: [Plan.Evaluate] re-ranks lags and
// gathers each window's matrix from the superset by block copies
// (feature generation + selection, Section 4.1 steps 1-3), [Plan.Fit]
// trains the most-recent-window model and returns a [Fitted] artifact
// (step 4 for serving), and [Plan.ForecastInterval] calibrates a
// residual-quantile band from a single evaluation pass (goal iii).
// [Fitted.Forecast] and [Fitted.Horizon] predict phantom next days —
// Horizon mutates one reusable extension in place, feeding each
// prediction back as lag input for the following step.
//
// [EvaluateVehicle] is the unit of work of the whole evaluation
// campaign — a thin driver that compiles a Plan and runs it, as are
// [Forecast], [ForecastHorizon] and [ForecastInterval].
// [EvaluateFleet] fans it out over the vehicles on the bounded worker
// pool of [vup/internal/parallel] and aggregates the per-vehicle
// errors deterministically (evaluation step 6), feeding the Figure 4
// sweep, the Figure 5 comparison and the by-type table that
// [vup/internal/experiments] renders. Callers serving several
// pipeline products for one vehicle (the HTTP API's forecast +
// horizon + evaluation endpoints) compile once and share the Plan or
// cache the Fitted artifact; both are safe for concurrent use.
//
// Every feature materialization, per-window matrix gather, fit and
// predict is timed into the [vup/internal/obs] stage histograms — the
// live Section 4.5 table.
package core
