package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vup/internal/canbus"
	"vup/internal/etl"
	"vup/internal/regress"
	"vup/internal/timeseries"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden pipeline equivalence file")

// goldenPrediction serializes one evaluated day with full float
// round-trip precision (encoding/json emits the shortest exact
// representation), so the golden file pins results to the bit.
type goldenPrediction struct {
	Index     int     `json:"index"`
	Date      string  `json:"date"`
	Actual    float64 `json:"actual"`
	Predicted float64 `json:"predicted"`
	Lags      []int   `json:"lags"`
}

type goldenCase struct {
	Vehicle  string `json:"vehicle"`
	Algo     string `json:"algorithm"`
	Scenario string `json:"scenario"`
	Strategy string `json:"strategy"`

	// EvaluateVehicle outputs.
	PE          float64            `json:"pe"`
	MAE         float64            `json:"mae"`
	Skipped     int                `json:"skipped_windows"`
	Predictions []goldenPrediction `json:"predictions"`

	// Forecast outputs.
	ForecastHours float64 `json:"forecast_hours"`
	ForecastLags  []int   `json:"forecast_lags"`

	// ForecastInterval(0.8) outputs.
	IntervalLo        float64 `json:"interval_lo"`
	IntervalHi        float64 `json:"interval_hi"`
	IntervalHours     float64 `json:"interval_hours"`
	IntervalResiduals int     `json:"interval_residuals"`

	// ForecastHorizon(5) outputs, with per-step target-channel values
	// on the first two steps to exercise the override path.
	Horizon []float64 `json:"horizon"`
}

// goldenConfig keeps the suite fast enough for CI while exercising
// every algorithm: short window, strided evaluation, two channels and
// one target channel.
func goldenConfig(alg regress.Algorithm, sc Scenario, st timeseries.Strategy) Config {
	cfg := DefaultConfig()
	cfg.Algorithm = alg
	cfg.Scenario = sc
	cfg.Strategy = st
	cfg.W = 60
	cfg.K = 8
	cfg.MaxLag = 21
	cfg.Stride = 7
	cfg.Channels = []string{canbus.ChanFuelRate, canbus.ChanEngineSpeed}
	cfg.TargetChannels = []string{canbus.ChanPercentLoad}
	return cfg
}

// TestGoldenEquivalence pins the byte-exact outputs of the four
// pipeline drivers — EvaluateVehicle, Forecast, ForecastInterval and
// ForecastHorizon — across all six algorithms, both scenarios and both
// window strategies on a seeded fleet. The golden file was generated
// on the pre-Plan pipeline (go test ./internal/core -run Golden
// -update), so a pass certifies the compiled-Plan refactor is
// behaviour-preserving to the last bit.
func TestGoldenEquivalence(t *testing.T) {
	datasets := []*etl.VehicleDataset{
		testDataset(t, 401, 300),
		testDataset(t, 402, 340),
	}

	var cases []goldenCase
	for _, d := range datasets {
		for _, alg := range regress.Algorithms() {
			for _, sc := range []Scenario{NextDay, NextWorkingDay} {
				for _, st := range []timeseries.Strategy{timeseries.Sliding, timeseries.Expanding} {
					cfg := goldenConfig(alg, sc, st)
					gc := goldenCase{
						Vehicle:  d.VehicleID,
						Algo:     string(alg),
						Scenario: sc.String(),
						Strategy: st.String(),
					}
					res, err := EvaluateVehicle(d, cfg)
					if err != nil {
						t.Fatalf("%s/%s/%s evaluate: %v", alg, sc, st, err)
					}
					gc.PE, gc.MAE, gc.Skipped = res.PE, res.MAE, res.SkippedWindows
					for _, p := range res.Predictions {
						gc.Predictions = append(gc.Predictions, goldenPrediction{
							Index: p.Index, Date: p.Date.Format("2006-01-02"),
							Actual: p.Actual, Predicted: p.Predicted, Lags: p.Lags,
						})
					}
					gc.ForecastHours, gc.ForecastLags, err = Forecast(d, cfg)
					if err != nil {
						t.Fatalf("%s/%s/%s forecast: %v", alg, sc, st, err)
					}
					iv, err := ForecastInterval(d, cfg, 0.8)
					if err != nil {
						t.Fatalf("%s/%s/%s interval: %v", alg, sc, st, err)
					}
					gc.IntervalLo, gc.IntervalHi = iv.Lo, iv.Hi
					gc.IntervalHours, gc.IntervalResiduals = iv.Hours, iv.Residuals
					targets := []map[string]float64{
						{canbus.ChanPercentLoad: 37.5, canbus.ChanFuelRate: 8.25},
						{canbus.ChanPercentLoad: 12.5},
					}
					gc.Horizon, err = ForecastHorizon(d, cfg, 5, targets)
					if err != nil {
						t.Fatalf("%s/%s/%s horizon: %v", alg, sc, st, err)
					}
					cases = append(cases, gc)
				}
			}
		}
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(cases); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_pipeline.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s (%d cases)", path, len(cases))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to generate): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		diffGolden(t, want, buf.Bytes())
	}
}

// diffGolden reports the first differing golden case instead of a raw
// byte diff, so a regression names the algorithm and scenario.
func diffGolden(t *testing.T, want, got []byte) {
	t.Helper()
	var wc, gc []goldenCase
	if err := json.Unmarshal(want, &wc); err != nil {
		t.Fatalf("golden outputs differ and stored file unparsable: %v", err)
	}
	if err := json.Unmarshal(got, &gc); err != nil {
		t.Fatalf("golden outputs differ and new output unparsable: %v", err)
	}
	if len(wc) != len(gc) {
		t.Fatalf("golden case count changed: stored %d, got %d", len(wc), len(gc))
	}
	for i := range wc {
		wj, _ := json.Marshal(wc[i])
		gj, _ := json.Marshal(gc[i])
		if !bytes.Equal(wj, gj) {
			t.Fatalf("pipeline output diverged for %s %s/%s/%s:\nstored: %s\nnow:    %s",
				wc[i].Vehicle, wc[i].Algo, wc[i].Scenario, wc[i].Strategy, clip(wj), clip(gj))
		}
	}
	t.Fatal("golden bytes differ (formatting only?) — inspect testdata/golden_pipeline.json")
}

func clip(b []byte) string {
	const max = 600
	if len(b) <= max {
		return string(b)
	}
	return fmt.Sprintf("%s... (%d bytes)", b[:max], len(b))
}
