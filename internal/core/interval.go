package core

import (
	"context"
	"fmt"
	"math"

	"vup/internal/etl"
	"vup/internal/stats"
)

// Interval is a forecast with an empirical confidence band, addressing
// the paper's goal (iii): "estimate the prediction errors to get
// confidence intervals for the estimations".
type Interval struct {
	// Hours is the point forecast.
	Hours float64
	// Lo and Hi bound the central Level mass of the empirical
	// residual distribution around the forecast, clamped to [0, 24].
	Lo, Hi float64
	// Level is the nominal coverage (e.g. 0.8).
	Level float64
	// Residuals is the number of hold-out residuals behind the band.
	Residuals int
	// Lags are the selected feature lags of the point forecast.
	Lags []int
}

// ResidualQuantiles returns the lo and hi quantiles of the signed
// hold-out residuals (actual − predicted) for the central level mass.
func ResidualQuantiles(res *Result, level float64) (lo, hi float64, err error) {
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("%w: interval level %v", ErrConfig, level)
	}
	if len(res.Predictions) == 0 {
		return 0, 0, ErrNoPredictions
	}
	residuals := make([]float64, len(res.Predictions))
	for i, p := range res.Predictions {
		residuals[i] = p.Actual - p.Predicted
	}
	alpha := (1 - level) / 2
	return stats.Quantile(residuals, alpha), stats.Quantile(residuals, 1-alpha), nil
}

// ForecastInterval produces the next-day point forecast together with
// an empirical confidence band calibrated on the vehicle's own
// hold-out residuals: the same per-vehicle evaluation that produces
// the PE also yields the residual distribution, whose central quantile
// range is re-centred on the new forecast.
func ForecastInterval(d *etl.VehicleDataset, cfg Config, level float64) (*Interval, error) {
	p, err := NewPlan(d, cfg)
	if err != nil {
		return nil, err
	}
	return p.ForecastInterval(level)
}

// ForecastInterval runs the calibrated-interval path over one compiled
// plan: a single evaluation pass yields the residual distribution, and
// one additional fit on the most recent window (which reaches one day
// further than the evaluation's final window) yields the point
// forecast the quantile band is centred on. The pipeline is compiled
// once — no second pass over the dataset.
func (p *Plan) ForecastInterval(level float64) (*Interval, error) {
	return p.ForecastIntervalContext(context.Background(), level)
}

// ForecastIntervalContext is ForecastInterval under a request context,
// so the evaluation, fit and prediction appear as child spans of an
// active trace.
func (p *Plan) ForecastIntervalContext(ctx context.Context, level float64) (*Interval, error) {
	res, err := p.EvaluateContext(ctx)
	if err != nil {
		return nil, err
	}
	lo, hi, err := ResidualQuantiles(res, level)
	if err != nil {
		return nil, err
	}
	f, err := p.FitContext(ctx)
	if err != nil {
		return nil, err
	}
	hours, err := f.ForecastContext(ctx, nil)
	if err != nil {
		return nil, err
	}
	iv := &Interval{
		Hours:     hours,
		Lo:        math.Max(0, hours+lo),
		Hi:        math.Min(24, hours+hi),
		Level:     level,
		Residuals: len(res.Predictions),
		Lags:      f.Lags(),
	}
	return iv, nil
}

// Coverage computes the empirical coverage of residual-quantile bands
// on the hold-out predictions themselves (leave-one-out style
// diagnostic): the fraction of predictions whose actual value falls
// inside pred+[lo, hi].
func Coverage(res *Result, level float64) (float64, error) {
	lo, hi, err := ResidualQuantiles(res, level)
	if err != nil {
		return 0, err
	}
	inside := 0
	for _, p := range res.Predictions {
		if p.Actual >= p.Predicted+lo-1e-9 && p.Actual <= p.Predicted+hi+1e-9 {
			inside++
		}
	}
	return float64(inside) / float64(len(res.Predictions)), nil
}
