package core

import (
	"vup/internal/obs"
	"vup/internal/regress"
)

// Pipeline stage histograms, the live counterpart of Section 4.5's
// training-time analysis: every feature-matrix build, model fit and
// single-row prediction anywhere in the process lands here, labeled by
// the paper's algorithm names. Scrape them via obs.Handler (the
// server's GET /metrics) or dump them with vup-experiments -timing.
var (
	featureBuildSeconds = obs.Default.Histogram(
		"pipeline_feature_build_seconds",
		"Feature build time: one lag-superset materialization per compiled plan plus the per-window matrix gather (lag selection excluded).",
		obs.DurationBuckets)
	fitSeconds = obs.Default.Histogram(
		"pipeline_fit_seconds",
		"Model training time per window, by algorithm (Section 4.5).",
		obs.DurationBuckets, "algorithm")
	predictSeconds = obs.Default.Histogram(
		"pipeline_predict_seconds",
		"Single-row prediction time, by algorithm.",
		obs.DurationBuckets, "algorithm")
)

// observeStage routes regress.Instrument timings into the histograms.
func observeStage(stage, algorithm string, seconds float64) {
	switch stage {
	case regress.StageFit:
		fitSeconds.With(algorithm).Observe(seconds)
	case regress.StagePredict:
		predictSeconds.With(algorithm).Observe(seconds)
	}
}
