package core

import (
	"strings"
	"testing"

	"vup/internal/regress"
	"vup/internal/timeseries"
)

func TestConfigFingerprintCanonical(t *testing.T) {
	a, b := DefaultConfig(), DefaultConfig()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs fingerprint differently")
	}
	// Stage is a telemetry label, not a result input.
	b.Stage = "experiment-7"
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("Stage leaked into the fingerprint")
	}
}

func TestConfigFingerprintSensitivity(t *testing.T) {
	base := DefaultConfig()
	mutations := map[string]func(*Config){
		"Algorithm":       func(c *Config) { c.Algorithm = regress.AlgMovingAverage },
		"Scenario":        func(c *Config) { c.Scenario = NextWorkingDay },
		"Strategy":        func(c *Config) { c.Strategy = timeseries.Expanding },
		"W":               func(c *Config) { c.W = 99 },
		"K":               func(c *Config) { c.K = 7 },
		"Selection":       func(c *Config) { c.Selection = SelectSignificant },
		"MaxLag":          func(c *Config) { c.MaxLag = 14 },
		"Channels":        func(c *Config) { c.Channels = []string{"fuel_rate"} },
		"IncludeContext":  func(c *Config) { c.IncludeContext = false },
		"TargetChannels":  func(c *Config) { c.TargetChannels = []string{"temp_c"} },
		"ActiveThreshold": func(c *Config) { c.ActiveThreshold = 2 },
		"Stride":          func(c *Config) { c.Stride = 3 },
		"MinTrainRows":    func(c *Config) { c.MinTrainRows = 20 },
		"ModelFactory": func(c *Config) {
			c.ModelFactory = func() (regress.Regressor, error) { return regress.New(regress.AlgLinear) }
		},
	}
	for field, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if c.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s change invisible to fingerprint", field)
		}
	}
	// The fingerprint is a flat canonical string; the cache-key unit
	// separator must never appear in it.
	if strings.Contains(base.Fingerprint(), "\x1f") {
		t.Error("fingerprint contains the cache-key separator")
	}
}
