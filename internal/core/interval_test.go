package core

import (
	"errors"
	"testing"
)

func TestResidualQuantiles(t *testing.T) {
	res := &Result{Predictions: []Prediction{
		{Actual: 5, Predicted: 4}, // residual +1
		{Actual: 3, Predicted: 4}, // residual -1
		{Actual: 6, Predicted: 4}, // residual +2
		{Actual: 2, Predicted: 4}, // residual -2
		{Actual: 4, Predicted: 4}, // residual 0
	}}
	lo, hi, err := ResidualQuantiles(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= 0 || hi <= 0 {
		t.Errorf("band = [%v, %v]", lo, hi)
	}
	if lo < -2 || hi > 2 {
		t.Errorf("band wider than residual range: [%v, %v]", lo, hi)
	}
	// Wider level gives a wider band.
	lo2, hi2, _ := ResidualQuantiles(res, 0.9)
	if hi2-lo2 < hi-lo {
		t.Errorf("level 0.9 band narrower than 0.5: [%v %v] vs [%v %v]", lo2, hi2, lo, hi)
	}
}

func TestResidualQuantilesErrors(t *testing.T) {
	res := &Result{Predictions: []Prediction{{Actual: 1, Predicted: 1}}}
	if _, _, err := ResidualQuantiles(res, 0); !errors.Is(err, ErrConfig) {
		t.Errorf("level 0: %v", err)
	}
	if _, _, err := ResidualQuantiles(res, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("level 1: %v", err)
	}
	if _, _, err := ResidualQuantiles(&Result{}, 0.8); !errors.Is(err, ErrNoPredictions) {
		t.Errorf("empty: %v", err)
	}
}

func TestForecastInterval(t *testing.T) {
	d := testDataset(t, 40, 450)
	cfg := fastConfig()
	iv, err := ForecastInterval(d, cfg, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > iv.Hours || iv.Hours > iv.Hi {
		t.Errorf("point forecast outside band: %v not in [%v, %v]", iv.Hours, iv.Lo, iv.Hi)
	}
	if iv.Lo < 0 || iv.Hi > 24 {
		t.Errorf("band not clamped: [%v, %v]", iv.Lo, iv.Hi)
	}
	if iv.Level != 0.8 || iv.Residuals == 0 || len(iv.Lags) == 0 {
		t.Errorf("metadata = %+v", iv)
	}
}

func TestForecastIntervalErrors(t *testing.T) {
	d := testDataset(t, 41, 450)
	if _, err := ForecastInterval(d, fastConfig(), 2); err == nil {
		t.Error("invalid level accepted")
	}
	bad := fastConfig()
	bad.W = 0
	if _, err := ForecastInterval(d, bad, 0.8); !errors.Is(err, ErrConfig) {
		t.Errorf("invalid config: %v", err)
	}
}

func TestCoverageMatchesLevel(t *testing.T) {
	// Coverage on the calibration data itself must be close to the
	// nominal level (it is exact up to quantile interpolation).
	d := testDataset(t, 42, 500)
	cfg := fastConfig()
	cfg.Stride = 3
	res, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []float64{0.5, 0.8, 0.95} {
		cov, err := Coverage(res, level)
		if err != nil {
			t.Fatal(err)
		}
		if cov < level-0.12 || cov > 1 {
			t.Errorf("level %v: coverage %v", level, cov)
		}
	}
}
