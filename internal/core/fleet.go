package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"vup/internal/etl"
	"vup/internal/stats"
)

// FleetResult aggregates per-vehicle evaluations (evaluation step 6:
// "evaluate the overall prediction error by averaging the prediction
// errors over all the vehicles").
type FleetResult struct {
	Results []*Result
	// MeanPE is the average of the per-vehicle Percentage Errors
	// (NaN-PE vehicles excluded).
	MeanPE float64
	// MedianPE is the median per-vehicle PE.
	MedianPE float64
	// PEs are the finite per-vehicle PE values, one per evaluated
	// vehicle, for distribution plots (Figure 5).
	PEs []float64
	// Failed maps vehicle IDs to the error that prevented their
	// evaluation (e.g. too little data for the window).
	Failed map[string]error
}

// EvaluateFleet evaluates cfg on every dataset concurrently with the
// given number of workers (<=0 selects GOMAXPROCS). Vehicles that
// cannot be evaluated (short series, all-idle) are collected in
// Failed rather than aborting the fleet run.
func EvaluateFleet(datasets []*etl.VehicleDataset, cfg Config, workers int) (*FleetResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(datasets) == 0 {
		return nil, fmt.Errorf("%w: empty fleet", ErrNoPredictions)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type outcome struct {
		idx int
		res *Result
		err error
	}
	jobs := make(chan int)
	results := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				res, err := EvaluateVehicle(datasets[idx], cfg)
				results <- outcome{idx: idx, res: res, err: err}
			}
		}()
	}
	go func() {
		for i := range datasets {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	fr := &FleetResult{Failed: map[string]error{}}
	ordered := make([]*Result, len(datasets))
	for oc := range results {
		if oc.err != nil {
			fr.Failed[datasets[oc.idx].VehicleID] = oc.err
			continue
		}
		ordered[oc.idx] = oc.res
	}
	for _, res := range ordered {
		if res == nil {
			continue
		}
		fr.Results = append(fr.Results, res)
		if !isNaN(res.PE) {
			fr.PEs = append(fr.PEs, res.PE)
		}
	}
	if len(fr.PEs) == 0 {
		return nil, fmt.Errorf("%w: no vehicle produced a finite PE", ErrNoPredictions)
	}
	sort.Float64s(fr.PEs)
	fr.MeanPE = stats.Mean(fr.PEs)
	fr.MedianPE = stats.Median(fr.PEs)
	return fr, nil
}

func isNaN(v float64) bool { return v != v }
