package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"vup/internal/etl"
	"vup/internal/parallel"
	"vup/internal/stats"
)

// FleetResult aggregates per-vehicle evaluations (evaluation step 6:
// "evaluate the overall prediction error by averaging the prediction
// errors over all the vehicles").
type FleetResult struct {
	Results []*Result
	// MeanPE is the average of the per-vehicle Percentage Errors
	// (NaN-PE vehicles excluded).
	MeanPE float64
	// MedianPE is the median per-vehicle PE.
	MedianPE float64
	// PEs are the finite per-vehicle PE values, one per evaluated
	// vehicle, for distribution plots (Figure 5).
	PEs []float64
	// Failed maps vehicle IDs to the error that prevented their
	// evaluation (e.g. too little data for the window).
	Failed map[string]error
}

// EvaluateFleet evaluates cfg on every dataset through the bounded
// worker pool of vup/internal/parallel (<=0 workers selects every
// CPU). Vehicles that cannot be evaluated (short series, all-idle) are
// collected in Failed rather than aborting the fleet run.
//
// The result is deterministic in the inputs and independent of
// workers: per-vehicle outcomes land in pre-sized slices by index and
// are aggregated in dataset order after the pool drains, so a
// workers=N run is byte-identical to the sequential one.
func EvaluateFleet(datasets []*etl.VehicleDataset, cfg Config, workers int) (*FleetResult, error) {
	return EvaluateFleetContext(context.Background(), datasets, cfg, workers)
}

// EvaluateFleetContext is EvaluateFleet under a request context: the
// pool derives per-worker contexts from ctx, so when it carries an
// active trace the per-vehicle evaluations appear as (concurrent)
// child spans.
func EvaluateFleetContext(ctx context.Context, datasets []*etl.VehicleDataset, cfg Config, workers int) (*FleetResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(datasets) == 0 {
		return nil, fmt.Errorf("%w: empty fleet", ErrNoPredictions)
	}
	results := make([]*Result, len(datasets))
	failures := make([]error, len(datasets))
	err := parallel.ForEach(ctx, len(datasets),
		parallel.Options{Workers: workers, Stage: cfg.stage()},
		func(ctx context.Context, i int) error {
			// Per-vehicle failures are data conditions, not pool
			// errors: record them by index and keep the fan-out alive.
			results[i], failures[i] = EvaluateVehicleContext(ctx, datasets[i], cfg)
			return nil
		})
	if err != nil {
		return nil, err
	}

	fr := &FleetResult{Failed: map[string]error{}}
	for i, res := range results {
		if failures[i] != nil {
			fr.Failed[datasets[i].VehicleID] = failures[i]
			continue
		}
		fr.Results = append(fr.Results, res)
		if !isNaN(res.PE) {
			fr.PEs = append(fr.PEs, res.PE)
		}
	}
	if len(fr.PEs) == 0 {
		return nil, fmt.Errorf("%w: no vehicle produced a finite PE", ErrNoPredictions)
	}
	sort.Float64s(fr.PEs)
	fr.MeanPE = stats.Mean(fr.PEs)
	fr.MedianPE = stats.Median(fr.PEs)
	return fr, nil
}

func isNaN(v float64) bool { return math.IsNaN(v) }
