package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests on the evaluation metrics.

func randomPair(r *rand.Rand, n int) (pred, actual []float64) {
	pred = make([]float64, n)
	actual = make([]float64, n)
	for i := 0; i < n; i++ {
		pred[i] = math.Abs(r.NormFloat64()) * 5
		actual[i] = math.Abs(r.NormFloat64()) * 5
	}
	return pred, actual
}

// PE is scale-invariant: scaling both series leaves it unchanged.
func TestPEScaleInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pred, actual := randomPair(r, 1+r.Intn(50))
		pe1, err1 := PE(pred, actual)
		scale := 0.1 + r.Float64()*10
		for i := range pred {
			pred[i] *= scale
			actual[i] *= scale
		}
		pe2, err2 := PE(pred, actual)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.IsNaN(pe1) {
			return math.IsNaN(pe2)
		}
		return math.Abs(pe1-pe2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Perfect predictions give PE = 0, MAE = 0, RMSE = 0.
func TestPerfectPredictionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		_, actual := randomPair(r, 1+r.Intn(50))
		pe, e1 := PE(actual, actual)
		mae, e2 := MAE(actual, actual)
		rmse, e3 := RMSE(actual, actual)
		if e1 != nil || e2 != nil || e3 != nil {
			return false
		}
		if math.IsNaN(pe) { // all-zero actuals
			return mae == 0 && rmse == 0
		}
		return pe == 0 && mae == 0 && rmse == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// RMSE dominates MAE (Jensen), and both are non-negative.
func TestRMSEDominatesMAEProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pred, actual := randomPair(r, 2+r.Intn(50))
		mae, e1 := MAE(pred, actual)
		rmse, e2 := RMSE(pred, actual)
		if e1 != nil || e2 != nil {
			return false
		}
		return mae >= 0 && rmse >= mae-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// PE is symmetric in the sense that swapping a single over- and
// under-prediction of equal magnitude leaves it unchanged, and adding
// a prediction equal to its actual can only lower it.
func TestPEAddingPerfectDayLowersProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pred, actual := randomPair(r, 2+r.Intn(30))
		pe1, err := PE(pred, actual)
		if err != nil || math.IsNaN(pe1) {
			return true
		}
		pred2 := append(append([]float64(nil), pred...), 3)
		actual2 := append(append([]float64(nil), actual...), 3)
		pe2, err := PE(pred2, actual2)
		if err != nil {
			return false
		}
		return pe2 <= pe1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Evaluation is deterministic: same dataset and config give identical
// results.
func TestEvaluateDeterministicProperty(t *testing.T) {
	d := testDataset(t, 60, 400)
	cfg := fastConfig()
	a, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.PE != b.PE || len(a.Predictions) != len(b.Predictions) {
		t.Fatalf("nondeterministic evaluation: %v vs %v", a.PE, b.PE)
	}
	for i := range a.Predictions {
		if a.Predictions[i].Predicted != b.Predictions[i].Predicted {
			t.Fatalf("prediction %d differs", i)
		}
	}
}
