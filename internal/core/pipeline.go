package core

import (
	"context"
	"fmt"
	"time"

	"vup/internal/etl"
	"vup/internal/regress"
)

// Prediction is one evaluated test day.
type Prediction struct {
	// Index is the day index in the scenario view of the series.
	Index int
	// Date is the calendar date of the predicted day.
	Date time.Time
	// Actual and Predicted are utilization hours.
	Actual, Predicted float64
	// Lags are the selected lags used for this window.
	Lags []int
}

// Result is the evaluation outcome for one vehicle.
type Result struct {
	VehicleID   string
	Algorithm   regress.Algorithm
	Scenario    Scenario
	Predictions []Prediction
	// PE is the per-vehicle Percentage Error over all predictions
	// (evaluation step 5).
	PE float64
	// MAE is the mean absolute error in hours.
	MAE float64
	// SkippedWindows counts windows skipped for lack of training rows.
	SkippedWindows int
}

// scenarioView applies the scenario transformation: for NextWorkingDay
// the idle days are removed so "the next day" in the compacted series
// is the next working day.
func scenarioView(d *etl.VehicleDataset, cfg Config) (*etl.VehicleDataset, error) {
	if cfg.Scenario == NextDay {
		return d, nil
	}
	var keep []int
	for i, h := range d.Hours {
		if h >= cfg.ActiveThreshold {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("core: vehicle %s has no working days above %v hours", d.VehicleID, cfg.ActiveThreshold)
	}
	return d.Subset(keep)
}

// EvaluateVehicle runs the full hold-out evaluation of Section 4.1 on
// one vehicle: enumerate the train/test windows, re-run feature
// selection and model training per window, predict each test day and
// aggregate the per-vehicle PE. It compiles a Plan and runs it; use
// NewPlan directly to share the compiled features with a forecast or
// interval on the same vehicle.
func EvaluateVehicle(d *etl.VehicleDataset, cfg Config) (*Result, error) {
	return EvaluateVehicleContext(context.Background(), d, cfg)
}

// EvaluateVehicleContext is EvaluateVehicle under a request context,
// so the plan compilation and hold-out run appear as child spans of an
// active trace.
func EvaluateVehicleContext(ctx context.Context, d *etl.VehicleDataset, cfg Config) (*Result, error) {
	p, err := NewPlanContext(ctx, d, cfg)
	if err != nil {
		return nil, err
	}
	return p.EvaluateContext(ctx)
}

// viewDate returns the calendar date of a view day. Compacted views
// carry explicit per-day dates (etl.VehicleDataset.Dates), so this is
// exact for both scenarios.
func viewDate(view *etl.VehicleDataset, i int) time.Time {
	return view.Date(i)
}

// Forecast trains on the most recent window of the dataset (under the
// given scenario) and predicts the next upcoming day: the next
// calendar day for NextDay, the next working day for NextWorkingDay.
// It returns the predicted utilization hours and the feature lags
// used. Config.TargetChannels default to zero for the unknown next
// day; use ForecastWith to supply known values (e.g. the weather
// forecast).
func Forecast(d *etl.VehicleDataset, cfg Config) (float64, []int, error) {
	return ForecastWith(d, cfg, nil)
}

// ForecastWith is Forecast with known target-day channel values (for
// channels listed in cfg.TargetChannels), such as tomorrow's weather
// forecast.
func ForecastWith(d *etl.VehicleDataset, cfg Config, target map[string]float64) (float64, []int, error) {
	p, err := NewPlan(d, cfg)
	if err != nil {
		return 0, nil, err
	}
	f, err := p.Fit()
	if err != nil {
		return 0, nil, err
	}
	hours, err := f.Forecast(target)
	if err != nil {
		return 0, nil, err
	}
	return hours, f.Lags(), nil
}

// ForecastHorizon predicts the next h days (NextDay scenario) or the
// next h working days (NextWorkingDay) by iterated one-step
// forecasting: each predicted day becomes lag input for the following
// step. The model is trained once on the most recent window; per-step
// target-channel values (e.g. a weather forecast per day) can be
// supplied via targets, indexed by step.
func ForecastHorizon(d *etl.VehicleDataset, cfg Config, h int, targets []map[string]float64) ([]float64, error) {
	if h <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrConfig, h)
	}
	p, err := NewPlan(d, cfg)
	if err != nil {
		return nil, err
	}
	f, err := p.Fit()
	if err != nil {
		return nil, err
	}
	return f.Horizon(h, targets)
}
