package core

import (
	"fmt"
	"time"

	"vup/internal/etl"
	"vup/internal/featsel"
	"vup/internal/geo"
	"vup/internal/regress"
	"vup/internal/stats"
	"vup/internal/timeseries"
)

// Prediction is one evaluated test day.
type Prediction struct {
	// Index is the day index in the scenario view of the series.
	Index int
	// Date is the calendar date of the predicted day.
	Date time.Time
	// Actual and Predicted are utilization hours.
	Actual, Predicted float64
	// Lags are the selected lags used for this window.
	Lags []int
}

// Result is the evaluation outcome for one vehicle.
type Result struct {
	VehicleID   string
	Algorithm   regress.Algorithm
	Scenario    Scenario
	Predictions []Prediction
	// PE is the per-vehicle Percentage Error over all predictions
	// (evaluation step 5).
	PE float64
	// MAE is the mean absolute error in hours.
	MAE float64
	// SkippedWindows counts windows skipped for lack of training rows.
	SkippedWindows int
}

// scenarioView applies the scenario transformation: for NextWorkingDay
// the idle days are removed so "the next day" in the compacted series
// is the next working day.
func scenarioView(d *etl.VehicleDataset, cfg Config) (*etl.VehicleDataset, error) {
	if cfg.Scenario == NextDay {
		return d, nil
	}
	var keep []int
	for i, h := range d.Hours {
		if h >= cfg.ActiveThreshold {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("core: vehicle %s has no working days above %v hours", d.VehicleID, cfg.ActiveThreshold)
	}
	return d.Subset(keep)
}

// buildSpec runs the feature-selection step on the training slice of
// the view's hours and assembles the feature spec.
func buildSpec(view *etl.VehicleDataset, cfg Config, trainFrom, trainTo int) featsel.Spec {
	trainHours := view.Hours[trainFrom:trainTo]
	maxLag := cfg.MaxLag
	if maxLag >= len(trainHours) {
		maxLag = len(trainHours) - 1
	}
	var lags []int
	if cfg.Selection == SelectSignificant {
		lags = stats.SignificantLags(trainHours, maxLag, cfg.K)
	} else {
		lags = featsel.SelectLags(trainHours, maxLag, cfg.K)
	}
	if len(lags) == 0 {
		lags = []int{1}
	}
	return featsel.Spec{
		Lags:           lags,
		Channels:       cfg.Channels,
		IncludeHours:   true,
		IncludeContext: cfg.IncludeContext,
		TargetChannels: cfg.TargetChannels,
	}
}

// EvaluateVehicle runs the full hold-out evaluation of Section 4.1 on
// one vehicle: enumerate the train/test windows, re-run feature
// selection and model training per window, predict each test day and
// aggregate the per-vehicle PE.
func EvaluateVehicle(d *etl.VehicleDataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	view, err := scenarioView(d, cfg)
	if err != nil {
		return nil, err
	}
	windows, err := timeseries.Enumerate(view.Len(), cfg.W, cfg.Strategy)
	if err != nil {
		return nil, fmt.Errorf("core: vehicle %s: %w", d.VehicleID, err)
	}
	res := &Result{VehicleID: d.VehicleID, Algorithm: cfg.Algorithm, Scenario: cfg.Scenario}
	var preds, actuals []float64
	for wi := 0; wi < len(windows); wi += cfg.Stride {
		win := windows[wi]
		spec := buildSpec(view, cfg, win.TrainFrom, win.TrainTo)
		mt := time.Now()
		x, y, _, err := spec.Matrix(view, win.TrainFrom, win.TrainTo)
		featureBuildSeconds.With().ObserveSince(mt)
		if err != nil || len(x) < cfg.MinTrainRows {
			res.SkippedWindows++
			continue
		}
		row, ok := spec.Row(view, win.Test)
		if !ok {
			res.SkippedWindows++
			continue
		}
		model, err := cfg.newModel()
		if err != nil {
			return nil, err
		}
		if err := model.Fit(x, y); err != nil {
			res.SkippedWindows++
			continue
		}
		pred, err := model.Predict(row)
		if err != nil {
			return nil, fmt.Errorf("core: vehicle %s window %d: %w", d.VehicleID, wi, err)
		}
		if pred < 0 {
			pred = 0 // utilization hours cannot be negative
		}
		if pred > 24 {
			pred = 24
		}
		res.Predictions = append(res.Predictions, Prediction{
			Index:     win.Test,
			Date:      viewDate(view, win.Test),
			Actual:    view.Hours[win.Test],
			Predicted: pred,
			Lags:      spec.Lags,
		})
		preds = append(preds, pred)
		actuals = append(actuals, view.Hours[win.Test])
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("%w: vehicle %s (%d windows skipped)", ErrNoPredictions, d.VehicleID, res.SkippedWindows)
	}
	if res.PE, err = PE(preds, actuals); err != nil {
		return nil, err
	}
	if res.MAE, err = MAE(preds, actuals); err != nil {
		return nil, err
	}
	return res, nil
}

// viewDate returns the calendar date of a view day. Compacted views
// carry explicit per-day dates (etl.VehicleDataset.Dates), so this is
// exact for both scenarios.
func viewDate(view *etl.VehicleDataset, i int) time.Time {
	return view.Date(i)
}

// Forecast trains on the most recent window of the dataset (under the
// given scenario) and predicts the next upcoming day: the next
// calendar day for NextDay, the next working day for NextWorkingDay.
// It returns the predicted utilization hours and the feature lags
// used. Config.TargetChannels default to zero for the unknown next
// day; use ForecastWith to supply known values (e.g. the weather
// forecast).
func Forecast(d *etl.VehicleDataset, cfg Config) (float64, []int, error) {
	return ForecastWith(d, cfg, nil)
}

// ForecastWith is Forecast with known target-day channel values (for
// channels listed in cfg.TargetChannels), such as tomorrow's weather
// forecast.
func ForecastWith(d *etl.VehicleDataset, cfg Config, target map[string]float64) (float64, []int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, nil, err
	}
	if err := d.Validate(); err != nil {
		return 0, nil, err
	}
	view, err := scenarioView(d, cfg)
	if err != nil {
		return 0, nil, err
	}
	n := view.Len()
	trainFrom := 0
	if cfg.Strategy == timeseries.Sliding && n > cfg.W {
		trainFrom = n - cfg.W
	}
	spec := buildSpec(view, cfg, trainFrom, n)
	mt := time.Now()
	x, y, _, err := spec.Matrix(view, trainFrom, n)
	featureBuildSeconds.With().ObserveSince(mt)
	if err != nil {
		return 0, nil, err
	}
	if len(x) < cfg.MinTrainRows {
		return 0, nil, fmt.Errorf("core: vehicle %s: only %d training rows, need %d", d.VehicleID, len(x), cfg.MinTrainRows)
	}
	model, err := cfg.newModel()
	if err != nil {
		return 0, nil, err
	}
	if err := model.Fit(x, y); err != nil {
		return 0, nil, err
	}
	// Assemble the feature row for the phantom next day: lags read the
	// tail of the view; context comes from the next calendar date;
	// known target-day channel values (e.g. the weather forecast) are
	// filled in.
	extended, err := appendPhantomDay(view, d.Country)
	if err != nil {
		return 0, nil, err
	}
	for name, v := range target {
		if vals, ok := extended.Channels[name]; ok {
			vals[len(vals)-1] = v
		}
	}
	row, ok := spec.Row(extended, n)
	if !ok {
		return 0, nil, fmt.Errorf("core: vehicle %s: series too short for lags %v", d.VehicleID, spec.Lags)
	}
	pred, err := model.Predict(row)
	if err != nil {
		return 0, nil, err
	}
	if pred < 0 {
		pred = 0
	}
	if pred > 24 {
		pred = 24
	}
	return pred, spec.Lags, nil
}

// ForecastHorizon predicts the next h days (NextDay scenario) or the
// next h working days (NextWorkingDay) by iterated one-step
// forecasting: each predicted day is appended to the series (with
// duty-consistent channel values left at zero) and becomes lag input
// for the following step. The model is trained once on the most recent
// window; per-step target-channel values (e.g. a weather forecast per
// day) can be supplied via targets, indexed by step.
func ForecastHorizon(d *etl.VehicleDataset, cfg Config, h int, targets []map[string]float64) ([]float64, error) {
	if h <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrConfig, h)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	view, err := scenarioView(d, cfg)
	if err != nil {
		return nil, err
	}
	n := view.Len()
	trainFrom := 0
	if cfg.Strategy == timeseries.Sliding && n > cfg.W {
		trainFrom = n - cfg.W
	}
	spec := buildSpec(view, cfg, trainFrom, n)
	mt := time.Now()
	x, y, _, err := spec.Matrix(view, trainFrom, n)
	featureBuildSeconds.With().ObserveSince(mt)
	if err != nil {
		return nil, err
	}
	if len(x) < cfg.MinTrainRows {
		return nil, fmt.Errorf("core: vehicle %s: only %d training rows, need %d", d.VehicleID, len(x), cfg.MinTrainRows)
	}
	model, err := cfg.newModel()
	if err != nil {
		return nil, err
	}
	if err := model.Fit(x, y); err != nil {
		return nil, err
	}

	out := make([]float64, 0, h)
	current := view
	for step := 0; step < h; step++ {
		extended, err := appendPhantomDay(current, d.Country)
		if err != nil {
			return nil, err
		}
		if step < len(targets) {
			for name, v := range targets[step] {
				if vals, ok := extended.Channels[name]; ok {
					vals[len(vals)-1] = v
				}
			}
		}
		row, ok := spec.Row(extended, extended.Len()-1)
		if !ok {
			return nil, fmt.Errorf("core: vehicle %s: series too short for lags %v", d.VehicleID, spec.Lags)
		}
		pred, err := model.Predict(row)
		if err != nil {
			return nil, err
		}
		if pred < 0 {
			pred = 0
		}
		if pred > 24 {
			pred = 24
		}
		out = append(out, pred)
		// Feed the prediction back as the phantom day's hours so the
		// next step's lag features see it.
		extended.Hours[extended.Len()-1] = pred
		current = extended
	}
	return out, nil
}

// appendPhantomDay clones the view with one extra day whose context is
// derived from the next calendar date (target features only; its hours
// are unknown and never read). For a compacted next-working-day view
// the true date of the next working day is unknowable in advance; the
// day after the last working day is used as the context approximation.
func appendPhantomDay(view *etl.VehicleDataset, countryCode string) (*etl.VehicleDataset, error) {
	next := view.Date(view.Len()-1).AddDate(0, 0, 1)
	hemisphere := geo.Northern
	if c, err := geo.Lookup(countryCode); err == nil {
		hemisphere = c.Hemisphere
	}
	holiday, _ := geo.IsHoliday(countryCode, next)
	out := &etl.VehicleDataset{
		VehicleID: view.VehicleID,
		Type:      view.Type,
		ModelID:   view.ModelID,
		Country:   view.Country,
		Start:     view.Start,
		Hours:     append(append([]float64(nil), view.Hours...), 0),
		Channels:  make(map[string][]float64, len(view.Channels)),
		Context: append(append([]etl.Context(nil), view.Context...), etl.Context{
			DayOfWeek:  next.Weekday(),
			WeekOfYear: geo.WeekOfYear(next),
			Month:      next.Month(),
			Season:     geo.SeasonOf(next, hemisphere),
			Year:       next.Year(),
			Holiday:    holiday,
			WorkingDay: geo.IsWorkingDay(countryCode, next),
		}),
		Observed: append(append([]bool(nil), view.Observed...), false),
	}
	if view.Dates != nil {
		out.Dates = append(append([]time.Time(nil), view.Dates...), next)
	}
	for name, vals := range view.Channels {
		out.Channels[name] = append(append([]float64(nil), vals...), 0)
	}
	return out, nil
}
