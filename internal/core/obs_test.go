package core

import (
	"testing"

	"vup/internal/obs"
)

// TestEvaluateRecordsStageTimings checks that a hold-out evaluation
// populates the Section 4.5 stage histograms: fits and predictions
// labeled with the algorithm, and feature-build observations.
func TestEvaluateRecordsStageTimings(t *testing.T) {
	d := testDataset(t, 7, 240)
	cfg := fastConfig()

	alg := obs.Label{Name: "algorithm", Value: "LR"}
	before, _ := obs.FindSample(obs.Default.Gather(), "pipeline_fit_seconds", alg)
	res, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := obs.Default.Gather()

	fits, ok := obs.FindSample(after, "pipeline_fit_seconds", alg)
	if !ok {
		t.Fatal("pipeline_fit_seconds{algorithm=LR} not registered")
	}
	gotFits := fits.Count - before.Count
	if want := uint64(len(res.Predictions)); gotFits < want {
		t.Errorf("recorded %d fits, want at least %d (one per prediction)", gotFits, want)
	}
	preds, ok := obs.FindSample(after, "pipeline_predict_seconds", alg)
	if !ok || preds.Count == 0 {
		t.Error("pipeline_predict_seconds{algorithm=LR} empty")
	}
	feats, ok := obs.FindSample(after, "pipeline_feature_build_seconds")
	if !ok || feats.Count == 0 {
		t.Error("pipeline_feature_build_seconds empty")
	}
	if fits.Sum <= 0 {
		t.Error("fit time sum should be positive")
	}
}
