package core

import (
	"errors"
	"fmt"
	"strings"

	"vup/internal/canbus"
	"vup/internal/regress"
	"vup/internal/timeseries"
)

// Scenario selects the prediction target of Section 3.
type Scenario int

const (
	// NextDay predicts the utilization hours of the next calendar day,
	// idle days included.
	NextDay Scenario = iota
	// NextWorkingDay predicts the utilization hours of the next day
	// the vehicle is used at least ActiveThreshold hours; idle days
	// are removed from the series first.
	NextWorkingDay
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	if s == NextWorkingDay {
		return "next-working-day"
	}
	return "next-day"
}

// Config parameterizes the pipeline. The zero value is not valid; use
// DefaultConfig and override.
type Config struct {
	// Algorithm is the regression model (default SVR, the paper's
	// best single model).
	Algorithm regress.Algorithm
	// ModelFactory, when set, overrides Algorithm with custom-built
	// models (e.g. non-default hyper-parameters). Algorithm is then
	// only used as the result label.
	ModelFactory func() (regress.Regressor, error)
	// Scenario selects next-day or next-working-day prediction.
	Scenario Scenario
	// Strategy selects the sliding or expanding training window
	// (Figure 3).
	Strategy timeseries.Strategy
	// W is the training window size in days. The paper explores up to
	// 150 and settles on 140 (Section 4.3).
	W int
	// K is the number of lags kept by the autocorrelation-based
	// feature selection; the paper settles on 20.
	K int
	// Selection picks the lag-selection rule (default: the paper's
	// top-K ranking).
	Selection Selection
	// MaxLag is the lag search budget: lags are ranked within
	// [1, MaxLag]. Figure 4 sweeps K up to 40, so the default budget
	// is 42 days (six weeks, preserving weekly harmonics).
	MaxLag int
	// Channels are the CAN channels lagged alongside the utilization
	// hours. Defaults to every analog channel.
	Channels []string
	// IncludeContext appends the target day's contextual features.
	IncludeContext bool
	// TargetChannels are channels whose target-day value is a feature
	// (context known in advance, e.g. the weather forecast attached
	// via etl.AttachWeather). Empty by default.
	TargetChannels []string
	// ActiveThreshold is the working-day threshold in hours
	// (Section 3: "used at least 1 hour").
	ActiveThreshold float64
	// Stride evaluates every Stride-th test day (1 = the paper's
	// every-day evaluation; larger values trade fidelity for speed).
	Stride int
	// MinTrainRows skips windows whose training matrix ends up
	// smaller than this (default 10).
	MinTrainRows int
	// Stage labels the fleet-evaluation worker pool's telemetry
	// (sweep_job_seconds, sweep_jobs_in_flight); experiment runners set
	// it to their experiment id. Empty defaults to "fleet". It has no
	// effect on results.
	Stage string
}

// stage returns the telemetry label for fleet evaluations.
func (c Config) stage() string {
	if c.Stage == "" {
		return "fleet"
	}
	return c.Stage
}

// DefaultConfig returns the paper's recommended settings: SVR, K=20,
// w=140, sliding window, next-day scenario.
func DefaultConfig() Config {
	return Config{
		Algorithm:       regress.AlgSVR,
		Scenario:        NextDay,
		Strategy:        timeseries.Sliding,
		W:               140,
		K:               20,
		MaxLag:          42,
		Channels:        canbus.AnalogChannels(),
		IncludeContext:  true,
		ActiveThreshold: 1,
		Stride:          1,
		MinTrainRows:    10,
	}
}

// Fingerprint returns a canonical string covering every field that
// influences pipeline results, so two configs with equal fingerprints
// produce identical forecasts on identical data. It is the config
// component of trained-artifact cache keys (internal/server). Stage is
// excluded: it only labels telemetry. ModelFactory is a function and
// contributes presence alone — a caller that swaps factories between
// otherwise-identical configs must key on more than the fingerprint.
func (c Config) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "alg=%s|factory=%t|scenario=%s|strategy=%d|w=%d|k=%d|sel=%s|maxlag=%d",
		c.Algorithm, c.ModelFactory != nil, c.Scenario, int(c.Strategy), c.W, c.K, c.Selection, c.MaxLag)
	fmt.Fprintf(&b, "|ch=%s|ctx=%t|tch=%s|active=%g|stride=%d|minrows=%d",
		strings.Join(c.Channels, ","), c.IncludeContext, strings.Join(c.TargetChannels, ","),
		c.ActiveThreshold, c.Stride, c.MinTrainRows)
	return b.String()
}

// Selection chooses the lag-selection rule of the feature-selection
// step.
type Selection int

const (
	// SelectTopK keeps the K lags with the largest autocorrelation —
	// the paper's rule.
	SelectTopK Selection = iota
	// SelectSignificant keeps only lags outside the 95% white-noise
	// band (at most K), falling back to top-K when none are
	// significant — the statistically gated variant.
	SelectSignificant
)

// String implements fmt.Stringer.
func (s Selection) String() string {
	if s == SelectSignificant {
		return "significant"
	}
	return "top-k"
}

// ErrConfig wraps configuration validation failures.
var ErrConfig = errors.New("core: invalid config")

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.W <= 1 {
		return fmt.Errorf("%w: window w=%d", ErrConfig, c.W)
	}
	if c.K <= 0 {
		return fmt.Errorf("%w: K=%d", ErrConfig, c.K)
	}
	if c.MaxLag <= 0 {
		return fmt.Errorf("%w: MaxLag=%d", ErrConfig, c.MaxLag)
	}
	if c.Stride <= 0 {
		return fmt.Errorf("%w: stride=%d", ErrConfig, c.Stride)
	}
	if c.ActiveThreshold < 0 {
		return fmt.Errorf("%w: active threshold %v", ErrConfig, c.ActiveThreshold)
	}
	if c.MinTrainRows < 1 {
		return fmt.Errorf("%w: min train rows %d", ErrConfig, c.MinTrainRows)
	}
	if c.ModelFactory == nil {
		if _, err := regress.New(c.Algorithm); err != nil {
			return fmt.Errorf("%w: %v", ErrConfig, err)
		}
	}
	return nil
}

// newModel builds a fresh regressor for the configuration, wrapped so
// its fit and predict durations land in the pipeline stage histograms.
func (c Config) newModel() (regress.Regressor, error) {
	var m regress.Regressor
	var err error
	if c.ModelFactory != nil {
		m, err = c.ModelFactory()
	} else {
		m, err = regress.New(c.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	return regress.Instrument(m, observeStage), nil
}
