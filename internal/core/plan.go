package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"vup/internal/etl"
	"vup/internal/featsel"
	"vup/internal/geo"
	"vup/internal/obs/trace"
	"vup/internal/regress"
	"vup/internal/stats"
	"vup/internal/timeseries"
)

// Plan is the compiled pipeline for one (dataset, Config) pair: the
// validated configuration, the scenario view of the series and the
// lag-superset feature materialization — every feature any training
// window could select, computed once in a single O(n×F) pass. The
// public drivers (EvaluateVehicle, Forecast, ForecastHorizon,
// ForecastInterval) are thin wrappers that compile a Plan and run it;
// callers that run several of those on the same vehicle and config
// (the server's evaluate+forecast handlers, the calibrated-interval
// path) compile once and share it.
//
// A Plan is immutable after NewPlan and safe for concurrent use; the
// per-run scratch lives in Evaluate and Fitted.
type Plan struct {
	cfg  Config
	d    *etl.VehicleDataset // original dataset: identity + country
	view *etl.VehicleDataset // scenario view of the series
	mat  *featsel.Materialized
}

// NewPlan validates the configuration and dataset, applies the
// scenario transformation and materializes the lag-superset features.
// The materialization covers lags up to cfg.MaxLag (clamped to the
// view length), so every per-window lag selection gathers from it by
// block copies instead of re-walking the dataset maps.
func NewPlan(d *etl.VehicleDataset, cfg Config) (*Plan, error) {
	return NewPlanContext(context.Background(), d, cfg)
}

// NewPlanContext is NewPlan under a request context: when the context
// carries an active trace span, the compilation is recorded as a
// "plan.build" child (with the materialization under it).
func NewPlanContext(ctx context.Context, d *etl.VehicleDataset, cfg Config) (p *Plan, err error) {
	ctx, sp := trace.Start(ctx, "plan.build")
	if sp != nil {
		sp.SetAttr("vehicle", d.VehicleID)
		sp.SetAttr("algorithm", string(cfg.Algorithm))
		defer func() {
			sp.SetError(err)
			sp.End()
		}()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	view, err := scenarioView(d, cfg)
	if err != nil {
		return nil, err
	}
	maxLag := cfg.MaxLag
	if maxLag > view.Len()-1 {
		maxLag = view.Len() - 1
	}
	if maxLag < 1 {
		maxLag = 1 // degenerate view; windows will refuse their rows
	}
	mt := time.Now() //lint:allow determinism stage timer; feeds pipeline_feature_build_seconds only, never figure bytes
	mat, err := featsel.MaterializeContext(ctx, view, maxLag, cfg.Channels, cfg.IncludeContext, cfg.TargetChannels)
	featureBuildSeconds.With().ObserveSince(mt)
	if err != nil {
		return nil, err
	}
	return &Plan{cfg: cfg, d: d, view: view, mat: mat}, nil
}

// View exposes the scenario view the plan was compiled over.
func (p *Plan) View() *etl.VehicleDataset { return p.view }

// ExtendContext compiles a plan for d — the same vehicle's series with
// days appended, as produced by the streaming-ingest path — by reusing
// the receiver's materialization through featsel.AppendDays instead of
// the full O(n×F) rebuild. The receiver is untouched and stays valid
// for readers holding cached artifacts.
//
// Extension is only sound when the receiver's compiled state is a
// strict prefix of the new one, so ExtendContext refuses (and the
// caller falls back to NewPlanContext) when the vehicle identity
// changed, the series shrank or rewrote history, the scenario view
// dropped previously-kept days, or the clamped lag budget differs —
// the one structural parameter a longer series can move.
func (p *Plan) ExtendContext(ctx context.Context, d *etl.VehicleDataset) (np *Plan, err error) {
	ctx, sp := trace.Start(ctx, "plan.extend")
	if sp != nil {
		sp.SetAttr("vehicle", d.VehicleID)
		defer func() {
			if np != nil {
				sp.SetAttrInt("appended_days", np.view.Len()-p.view.Len())
			}
			sp.SetError(err)
			sp.End()
		}()
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.VehicleID != p.d.VehicleID {
		return nil, fmt.Errorf("core: extend plan of %s with dataset of %s", p.d.VehicleID, d.VehicleID)
	}
	if d.Len() < p.d.Len() {
		return nil, fmt.Errorf("core: vehicle %s: series shrank from %d to %d days", d.VehicleID, p.d.Len(), d.Len())
	}
	// The compiled rows embed the old series; any rewrite of the shared
	// prefix invalidates them. Hours also decide next-working-day view
	// membership, so this one check covers both. (Channel prefixes are
	// spot-checked over the lag window inside AppendDays; the ingest
	// path appends to a clone and never rewrites history.)
	if !hoursPrefixEqual(d.Hours, p.d.Hours) {
		return nil, fmt.Errorf("core: vehicle %s: series rewrote history", d.VehicleID)
	}
	view, err := scenarioView(d, p.cfg)
	if err != nil {
		return nil, err
	}
	if view.Len() < p.view.Len() {
		return nil, fmt.Errorf("core: vehicle %s: scenario view shrank from %d to %d days", d.VehicleID, p.view.Len(), view.Len())
	}
	maxLag := p.cfg.MaxLag
	if maxLag > view.Len()-1 {
		maxLag = view.Len() - 1
	}
	if maxLag < 1 {
		maxLag = 1
	}
	if maxLag != p.mat.MaxLag() {
		return nil, fmt.Errorf("core: vehicle %s: lag budget moved from %d to %d, rebuild required", d.VehicleID, p.mat.MaxLag(), maxLag)
	}
	mt := time.Now() //lint:allow determinism stage timer; feeds pipeline_feature_build_seconds only, never figure bytes
	mat, err := p.mat.AppendDays(view)
	featureBuildSeconds.With().ObserveSince(mt)
	if err != nil {
		return nil, err
	}
	return &Plan{cfg: p.cfg, d: d, view: view, mat: mat}, nil
}

// hoursPrefixEqual reports whether b is a bitwise prefix of a.
func hoursPrefixEqual(a, b []float64) bool {
	if len(a) < len(b) {
		return false
	}
	for i := range b {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// selectLags runs the per-window feature-selection step on the
// training slice of the view's hours: rank lags 1..MaxLag (clamped to
// the slice) by autocorrelation, keep the top K (or the significant
// ones). A window too short to rank anything falls back to lag 1.
func (p *Plan) selectLags(trainFrom, trainTo int) []int {
	trainHours := p.view.Hours[trainFrom:trainTo]
	maxLag := p.cfg.MaxLag
	if maxLag >= len(trainHours) {
		maxLag = len(trainHours) - 1
	}
	if maxLag < 1 {
		return []int{1}
	}
	var lags []int
	if p.cfg.Selection == SelectSignificant {
		lags = stats.SignificantLags(trainHours, maxLag, p.cfg.K)
	} else {
		lags = featsel.SelectLags(trainHours, maxLag, p.cfg.K)
	}
	if len(lags) == 0 {
		lags = []int{1}
	}
	return lags
}

// clampHours bounds a predicted utilization to the physical [0, 24]
// hour range.
func clampHours(pred float64) float64 {
	if pred < 0 {
		return 0
	}
	if pred > 24 {
		return 24
	}
	return pred
}

// Evaluate runs the full hold-out evaluation of Section 4.1 over the
// compiled plan: enumerate the train/test windows, re-run feature
// selection per window, gather the window's matrix from the superset,
// train a fresh model and predict the test day.
func (p *Plan) Evaluate() (*Result, error) {
	return p.EvaluateContext(context.Background())
}

// EvaluateContext is Evaluate under a request context: when the
// context carries an active trace span, the hold-out run is recorded
// as a "plan.evaluate" child with window and skip counts.
func (p *Plan) EvaluateContext(ctx context.Context) (res *Result, err error) {
	_, sp := trace.Start(ctx, "plan.evaluate")
	if sp != nil {
		sp.SetAttr("vehicle", p.d.VehicleID)
		defer func() {
			if res != nil {
				sp.SetAttrInt("predictions", len(res.Predictions))
				sp.SetAttrInt("skipped_windows", res.SkippedWindows)
			}
			sp.SetError(err)
			sp.End()
		}()
	}
	return p.evaluate()
}

func (p *Plan) evaluate() (*Result, error) {
	windows, err := timeseries.Enumerate(p.view.Len(), p.cfg.W, p.cfg.Strategy)
	if err != nil {
		return nil, fmt.Errorf("core: vehicle %s: %w", p.d.VehicleID, err)
	}
	res := &Result{VehicleID: p.d.VehicleID, Algorithm: p.cfg.Algorithm, Scenario: p.cfg.Scenario}
	var preds, actuals []float64
	var scratch featsel.Scratch
	var rowBuf []float64
	for wi := 0; wi < len(windows); wi += p.cfg.Stride {
		win := windows[wi]
		lags := p.selectLags(win.TrainFrom, win.TrainTo)
		mt := time.Now() //lint:allow determinism stage timer; feeds pipeline_feature_build_seconds only, never figure bytes
		x, y, err := p.mat.MatrixInto(&scratch, lags, win.TrainFrom, win.TrainTo)
		featureBuildSeconds.With().ObserveSince(mt)
		if err != nil || len(x) < p.cfg.MinTrainRows {
			res.SkippedWindows++
			continue
		}
		if w := p.mat.RowWidth(lags); cap(rowBuf) < w {
			rowBuf = make([]float64, w)
		} else {
			rowBuf = rowBuf[:w]
		}
		if !p.mat.GatherRow(rowBuf, win.Test, lags) {
			res.SkippedWindows++
			continue
		}
		model, err := p.cfg.newModel()
		if err != nil {
			return nil, err
		}
		if err := model.Fit(x, y); err != nil {
			res.SkippedWindows++
			continue
		}
		pred, err := model.Predict(rowBuf)
		if err != nil {
			return nil, fmt.Errorf("core: vehicle %s window %d: %w", p.d.VehicleID, wi, err)
		}
		pred = clampHours(pred)
		res.Predictions = append(res.Predictions, Prediction{
			Index:     win.Test,
			Date:      viewDate(p.view, win.Test),
			Actual:    p.view.Hours[win.Test],
			Predicted: pred,
			Lags:      lags,
		})
		preds = append(preds, pred)
		actuals = append(actuals, p.view.Hours[win.Test])
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("%w: vehicle %s (%d windows skipped)", ErrNoPredictions, p.d.VehicleID, res.SkippedWindows)
	}
	if res.PE, err = PE(preds, actuals); err != nil {
		return nil, err
	}
	if res.MAE, err = MAE(preds, actuals); err != nil {
		return nil, err
	}
	return res, nil
}

// Fitted is a trained forecasting artifact: the plan it was compiled
// from, the lags its feature selection kept and the model trained on
// the most recent window. It is what the serving layer caches — one
// Fit serves point forecasts, horizons and target-channel what-ifs for
// as long as the underlying data and config stay unchanged. Safe for
// concurrent use: each Forecast/Horizon call builds its own phantom
// extension.
type Fitted struct {
	plan  *Plan
	lags  []int
	model regress.Regressor
}

// Fit trains a forecasting model on the most recent window of the
// plan's view (the whole series under the expanding strategy).
func (p *Plan) Fit() (*Fitted, error) {
	return p.FitContext(context.Background())
}

// FitContext is Fit under a request context: when the context carries
// an active trace span, the training run is recorded as a "plan.fit"
// child with "featsel.select_lags" and "model.fit" under it.
func (p *Plan) FitContext(ctx context.Context) (f *Fitted, err error) {
	ctx, sp := trace.Start(ctx, "plan.fit")
	if sp != nil {
		sp.SetAttr("vehicle", p.d.VehicleID)
		sp.SetAttr("algorithm", string(p.cfg.Algorithm))
		defer func() {
			sp.SetError(err)
			sp.End()
		}()
	}
	n := p.view.Len()
	trainFrom := 0
	if p.cfg.Strategy == timeseries.Sliding && n > p.cfg.W {
		trainFrom = n - p.cfg.W
	}
	_, lagSpan := trace.Start(ctx, "featsel.select_lags")
	lags := p.selectLags(trainFrom, n)
	lagSpan.SetAttrInt("lags", len(lags))
	lagSpan.End()
	var scratch featsel.Scratch
	mt := time.Now() //lint:allow determinism stage timer; feeds pipeline_feature_build_seconds only, never figure bytes
	x, y, err := p.mat.MatrixInto(&scratch, lags, trainFrom, n)
	featureBuildSeconds.With().ObserveSince(mt)
	if err != nil {
		return nil, err
	}
	if len(x) < p.cfg.MinTrainRows {
		return nil, fmt.Errorf("core: vehicle %s: only %d training rows, need %d", p.d.VehicleID, len(x), p.cfg.MinTrainRows)
	}
	model, err := p.cfg.newModel()
	if err != nil {
		return nil, err
	}
	_, fitSpan := trace.Start(ctx, "model.fit")
	fitSpan.SetAttrInt("rows", len(x))
	err = model.Fit(x, y)
	fitSpan.SetError(err)
	fitSpan.End()
	if err != nil {
		return nil, err
	}
	return &Fitted{plan: p, lags: lags, model: model}, nil
}

// Lags returns the lags selected for the forecast fit.
func (f *Fitted) Lags() []int { return f.lags }

// extension builds h phantom days past the view: hours and channel
// values zero until written, context derived from consecutive calendar
// dates after the last view day. Channels appearing as both lag and
// target features share one column, so a target-day override is also
// visible to later steps' lag reads — matching the semantics of
// appending real days to the series.
func (f *Fitted) extension(h int) *featsel.Extension {
	p := f.plan
	hemisphere := geo.Northern
	if c, err := geo.Lookup(p.d.Country); err == nil {
		hemisphere = c.Hemisphere
	}
	ext := &featsel.Extension{
		Hours: make([]float64, h),
		Ctx:   make([]etl.Context, h),
		Chans: make([][]float64, len(p.cfg.Channels)),
		Tgts:  make([][]float64, len(p.cfg.TargetChannels)),
	}
	cols := make(map[string][]float64, len(p.cfg.Channels)+len(p.cfg.TargetChannels))
	colFor := func(name string) []float64 {
		if c, ok := cols[name]; ok {
			return c
		}
		c := make([]float64, h)
		cols[name] = c
		return c
	}
	for i, ch := range p.cfg.Channels {
		ext.Chans[i] = colFor(ch)
	}
	for i, ch := range p.cfg.TargetChannels {
		ext.Tgts[i] = colFor(ch)
	}
	date := p.view.Date(p.view.Len() - 1)
	for step := 0; step < h; step++ {
		date = date.AddDate(0, 0, 1)
		holiday, _ := geo.IsHoliday(p.d.Country, date)
		ext.Ctx[step] = etl.Context{
			DayOfWeek:  date.Weekday(),
			WeekOfYear: geo.WeekOfYear(date),
			Month:      date.Month(),
			Season:     geo.SeasonOf(date, hemisphere),
			Year:       date.Year(),
			Holiday:    holiday,
			WorkingDay: geo.IsWorkingDay(p.d.Country, date),
		}
	}
	return ext
}

// override writes known target-day channel values (e.g. tomorrow's
// weather forecast) into phantom day step. Values for channels the
// plan does not use are dropped, as they would never be read.
func (f *Fitted) override(ext *featsel.Extension, step int, target map[string]float64) {
	for i, ch := range f.plan.cfg.Channels {
		if v, ok := target[ch]; ok {
			ext.Chans[i][step] = v
		}
	}
	for i, ch := range f.plan.cfg.TargetChannels {
		if v, ok := target[ch]; ok {
			ext.Tgts[i][step] = v
		}
	}
}

// Forecast predicts the next upcoming day — the next calendar day for
// NextDay, the next working day for NextWorkingDay — with optional
// known target-day channel values.
func (f *Fitted) Forecast(target map[string]float64) (float64, error) {
	return f.ForecastContext(context.Background(), target)
}

// ForecastContext is Forecast under a request context: when the
// context carries an active trace span, the prediction is recorded as
// a "model.predict" child.
func (f *Fitted) ForecastContext(ctx context.Context, target map[string]float64) (pred float64, err error) {
	_, sp := trace.Start(ctx, "model.predict")
	if sp != nil {
		sp.SetAttr("vehicle", f.plan.d.VehicleID)
		defer func() {
			sp.SetError(err)
			sp.End()
		}()
	}
	ext := f.extension(1)
	f.override(ext, 0, target)
	row := make([]float64, f.plan.mat.RowWidth(f.lags))
	if !f.plan.mat.ExtendedRow(row, 0, f.lags, ext) {
		return 0, fmt.Errorf("core: vehicle %s: series too short for lags %v", f.plan.d.VehicleID, f.lags)
	}
	pred, err = f.model.Predict(row)
	if err != nil {
		return 0, err
	}
	return clampHours(pred), nil
}

// Horizon predicts the next h days by iterated one-step forecasting:
// each prediction is written into its phantom slot so the following
// steps' lag features see it. Per-step target-channel values (e.g. a
// weather forecast per day) can be supplied via targets, indexed by
// step. One extension is built up front and mutated in place — no
// per-step dataset clone.
func (f *Fitted) Horizon(h int, targets []map[string]float64) ([]float64, error) {
	return f.HorizonContext(context.Background(), h, targets)
}

// HorizonContext is Horizon under a request context: when the context
// carries an active trace span, the iterated forecast is recorded as a
// "model.horizon" child with the step count.
func (f *Fitted) HorizonContext(ctx context.Context, h int, targets []map[string]float64) (out []float64, err error) {
	_, sp := trace.Start(ctx, "model.horizon")
	if sp != nil {
		sp.SetAttr("vehicle", f.plan.d.VehicleID)
		sp.SetAttrInt("steps", h)
		defer func() {
			sp.SetError(err)
			sp.End()
		}()
	}
	return f.horizon(h, targets)
}

func (f *Fitted) horizon(h int, targets []map[string]float64) ([]float64, error) {
	if h <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrConfig, h)
	}
	ext := f.extension(h)
	row := make([]float64, f.plan.mat.RowWidth(f.lags))
	out := make([]float64, 0, h)
	for step := 0; step < h; step++ {
		if step < len(targets) {
			f.override(ext, step, targets[step])
		}
		if !f.plan.mat.ExtendedRow(row, step, f.lags, ext) {
			return nil, fmt.Errorf("core: vehicle %s: series too short for lags %v", f.plan.d.VehicleID, f.lags)
		}
		pred, err := f.model.Predict(row)
		if err != nil {
			return nil, err
		}
		pred = clampHours(pred)
		out = append(out, pred)
		ext.Hours[step] = pred
	}
	return out, nil
}
