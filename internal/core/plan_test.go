package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"vup/internal/regress"
)

// fitCounter wraps a regressor and counts Fit calls, pinning how many
// training passes a pipeline entry point performs.
type fitCounter struct {
	regress.Regressor
	fits *int64
}

func (c fitCounter) Fit(x [][]float64, y []float64) error {
	atomic.AddInt64(c.fits, 1)
	return c.Regressor.Fit(x, y)
}

func countingConfig(fits *int64) Config {
	cfg := fastConfig()
	cfg.Algorithm = regress.AlgLinear
	cfg.ModelFactory = func() (regress.Regressor, error) {
		m, err := regress.New(regress.AlgLinear)
		if err != nil {
			return nil, err
		}
		return fitCounter{m, fits}, nil
	}
	return cfg
}

// TestForecastIntervalSinglePass pins the calibrated-interval cost
// model: one shared Plan, one evaluation pass for the residuals plus
// exactly one extra fit for the point forecast — not a second
// evaluation from scratch.
func TestForecastIntervalSinglePass(t *testing.T) {
	d := testDataset(t, 31, 160)

	var evalFits int64
	cfg := countingConfig(&evalFits)
	res, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if evalFits == 0 {
		t.Fatal("evaluation performed no fits")
	}
	if int(evalFits) < len(res.Predictions) {
		t.Fatalf("eval fits %d < predictions %d", evalFits, len(res.Predictions))
	}

	var intervalFits int64
	cfg = countingConfig(&intervalFits)
	if _, err := ForecastInterval(d, cfg, 0.8); err != nil {
		t.Fatal(err)
	}
	if want := evalFits + 1; intervalFits != want {
		t.Fatalf("ForecastInterval performed %d fits, want eval fits + 1 = %d", intervalFits, want)
	}
}

// TestPlanReuseMatchesDrivers verifies that compiling one Plan and
// running evaluate + forecast + horizon + interval over it produces
// exactly what the one-shot drivers produce.
func TestPlanReuseMatchesDrivers(t *testing.T) {
	d := testDataset(t, 32, 160)
	cfg := fastConfig()
	cfg.Algorithm = regress.AlgLinear

	p, err := NewPlan(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if gotRes.PE != wantRes.PE || gotRes.MAE != wantRes.MAE || len(gotRes.Predictions) != len(wantRes.Predictions) {
		t.Fatalf("plan evaluate diverges: PE %v vs %v, MAE %v vs %v",
			gotRes.PE, wantRes.PE, gotRes.MAE, wantRes.MAE)
	}

	wantHours, wantLags, err := Forecast(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.Fit()
	if err != nil {
		t.Fatal(err)
	}
	gotHours, err := f.Forecast(nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotHours != wantHours {
		t.Fatalf("fitted forecast %v != driver forecast %v", gotHours, wantHours)
	}
	if len(f.Lags()) != len(wantLags) {
		t.Fatalf("lags %v vs %v", f.Lags(), wantLags)
	}
	for i := range wantLags {
		if f.Lags()[i] != wantLags[i] {
			t.Fatalf("lags %v vs %v", f.Lags(), wantLags)
		}
	}

	wantHorizon, err := ForecastHorizon(d, cfg, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotHorizon, err := f.Horizon(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantHorizon {
		if gotHorizon[i] != wantHorizon[i] {
			t.Fatalf("horizon step %d: %v != %v", i, gotHorizon[i], wantHorizon[i])
		}
	}
	if gotHorizon[0] != wantHours {
		t.Fatalf("horizon(7)[0] = %v, want the one-step forecast %v", gotHorizon[0], wantHours)
	}

	wantIv, err := ForecastInterval(d, cfg, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	gotIv, err := p.ForecastInterval(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if gotIv.Hours != wantIv.Hours || gotIv.Lo != wantIv.Lo || gotIv.Hi != wantIv.Hi || gotIv.Residuals != wantIv.Residuals {
		t.Fatalf("plan interval %+v != driver interval %+v", gotIv, wantIv)
	}
}

// TestFittedConcurrentUse exercises a shared Fitted from many
// goroutines — the serving cache hands one artifact to every request
// for the same vehicle+config, so Forecast and Horizon must not share
// mutable state. Run under -race this is the safety proof; the value
// checks prove independence.
func TestFittedConcurrentUse(t *testing.T) {
	d := testDataset(t, 33, 160)
	cfg := fastConfig()
	cfg.Algorithm = regress.AlgLinear
	p, err := NewPlan(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.Fit()
	if err != nil {
		t.Fatal(err)
	}
	wantPoint, err := f.Forecast(nil)
	if err != nil {
		t.Fatal(err)
	}
	wantHorizon, err := f.Horizon(5, nil)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for g := 0; g < 20; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			got, err := f.Forecast(nil)
			if err != nil {
				errs <- err
				return
			}
			if got != wantPoint {
				t.Errorf("concurrent forecast %v != %v", got, wantPoint)
			}
		}()
		go func() {
			defer wg.Done()
			got, err := f.Horizon(5, nil)
			if err != nil {
				errs <- err
				return
			}
			for i := range wantHorizon {
				if got[i] != wantHorizon[i] {
					t.Errorf("concurrent horizon step %d: %v != %v", i, got[i], wantHorizon[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPlanExtendMatchesFreshPlan is the ingest-path reuse contract: a
// plan extended over appended days must be observationally identical
// to one compiled from scratch on the grown series — same evaluation,
// same fit, same forecast — under both scenarios.
func TestPlanExtendMatchesFreshPlan(t *testing.T) {
	// Same seed ⇒ the 320-day series is a bitwise prefix of the 326-day
	// one (the usage simulation consumes randomness per day in order).
	// 320 days leave enough working days for the compacted scenario to
	// host fastConfig's 80-day training window.
	prefix := testDataset(t, 35, 320)
	grown := testDataset(t, 35, 326)
	for _, scenario := range []Scenario{NextDay, NextWorkingDay} {
		cfg := fastConfig()
		cfg.Scenario = scenario

		p, err := NewPlan(prefix, cfg)
		if err != nil {
			t.Fatal(err)
		}
		extended, err := p.ExtendContext(t.Context(), grown)
		if err != nil {
			t.Fatalf("scenario %v: extend failed: %v", scenario, err)
		}
		fresh, err := NewPlan(grown, cfg)
		if err != nil {
			t.Fatal(err)
		}

		eRes, err := extended.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		fRes, err := fresh.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if eRes.PE != fRes.PE || eRes.MAE != fRes.MAE || len(eRes.Predictions) != len(fRes.Predictions) {
			t.Fatalf("scenario %v: extended evaluate diverges: PE %v vs %v, MAE %v vs %v, preds %d vs %d",
				scenario, eRes.PE, fRes.PE, eRes.MAE, fRes.MAE, len(eRes.Predictions), len(fRes.Predictions))
		}

		ef, err := extended.Fit()
		if err != nil {
			t.Fatal(err)
		}
		ff, err := fresh.Fit()
		if err != nil {
			t.Fatal(err)
		}
		eHours, err := ef.Forecast(nil)
		if err != nil {
			t.Fatal(err)
		}
		fHours, err := ff.Forecast(nil)
		if err != nil {
			t.Fatal(err)
		}
		if eHours != fHours {
			t.Fatalf("scenario %v: extended forecast %v != fresh %v", scenario, eHours, fHours)
		}
		// The old plan still answers for the old series.
		if p.View().Len() >= extended.View().Len() {
			t.Fatalf("scenario %v: extension did not grow the view", scenario)
		}
		if _, err := p.Fit(); err != nil {
			t.Fatalf("scenario %v: parent plan broken after extension: %v", scenario, err)
		}
	}
}

// TestPlanExtendRefusals: every unsound extension must fall back to a
// rebuild via an error, never silently serve stale rows.
func TestPlanExtendRefusals(t *testing.T) {
	d := testDataset(t, 36, 160)
	grown := testDataset(t, 36, 165)
	cfg := fastConfig()
	p, err := NewPlan(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Different vehicle.
	other := grown.Clone()
	other.VehicleID = "veh-other"
	if _, err := p.ExtendContext(t.Context(), other); err == nil {
		t.Error("extension across vehicles accepted")
	}
	// Shrunk series.
	smaller := testDataset(t, 36, 100)
	if _, err := p.ExtendContext(t.Context(), smaller); err == nil {
		t.Error("shrunk series accepted")
	}
	// Rewritten history.
	rewritten := grown.Clone()
	rewritten.Hours[10] += 0.25
	if _, err := p.ExtendContext(t.Context(), rewritten); err == nil {
		t.Error("rewritten history accepted")
	}
	// Moved lag clamp: MaxLag beyond the view forces the clamp to track
	// the series length, which a longer series moves.
	clamped := fastConfig()
	clamped.MaxLag = 500
	pc, err := NewPlan(d, clamped)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pc.ExtendContext(t.Context(), grown); err == nil {
		t.Error("moved lag clamp accepted")
	}
}

// TestSelectLagsDegenerateWindow pins the guard for windows too short
// to rank any lag: selection is skipped entirely and the spec falls
// back to lag 1, instead of handing stats a non-positive budget.
func TestSelectLagsDegenerateWindow(t *testing.T) {
	d := testDataset(t, 34, 160)
	cfg := fastConfig()
	p, err := NewPlan(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range [][2]int{{0, 1}, {5, 6}, {0, 0}} {
		lags := p.selectLags(span[0], span[1])
		if len(lags) != 1 || lags[0] != 1 {
			t.Fatalf("selectLags(%d, %d) = %v, want [1]", span[0], span[1], lags)
		}
	}
	// A two-day slice has exactly one rankable lag.
	if lags := p.selectLags(0, 2); len(lags) != 1 || lags[0] != 1 {
		t.Fatalf("selectLags(0, 2) = %v, want [1]", lags)
	}
}
