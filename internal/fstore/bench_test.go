package fstore

// Store throughput benchmarks: snapshot encode/decode per vehicle, and
// full-fleet save/cold-boot for a 1 000-vehicle year — the numbers
// recorded in BENCH_store.json. Fleets are built synthetically (not via
// fleet.Generate) so the benchmark measures the store, not the
// simulator.

import (
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"vup/internal/etl"
	"vup/internal/fleet"
)

// benchChannels matches the study's analog channel count (Table 1).
var benchChannels = []string{"engine_speed", "fuel_rate", "coolant_temp", "oil_pressure", "boost_pressure"}

// synthDataset builds one deterministic vehicle-year without running
// the fleet simulator.
func synthDataset(id, days int) *etl.VehicleDataset {
	d := &etl.VehicleDataset{
		VehicleID: fmt.Sprintf("veh-%04d", id),
		Type:      fleet.Type(id % 3),
		ModelID:   fmt.Sprintf("model-%d", id%7),
		Country:   "IT",
		Start:     time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC),
		Hours:     make([]float64, days),
		Observed:  make([]bool, days),
		Channels:  make(map[string][]float64, len(benchChannels)),
	}
	for _, name := range benchChannels {
		d.Channels[name] = make([]float64, days)
	}
	for i := 0; i < days; i++ {
		phase := float64(id)/10 + float64(i)/7
		d.Hours[i] = 4 + 3*math.Sin(phase)
		d.Observed[i] = i%11 != 0
		for c, name := range benchChannels {
			d.Channels[name][i] = float64(c+1) * (100 + 10*math.Cos(phase+float64(c)))
		}
	}
	d.Enrich()
	return d
}

func synthFleet(n, days int) []*etl.VehicleDataset {
	out := make([]*etl.VehicleDataset, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, synthDataset(i, days))
	}
	return out
}

func BenchmarkEncodeDataset(b *testing.B) {
	d := synthDataset(0, 365)
	enc, err := EncodeDataset(d)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeDataset(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeDataset(b *testing.B) {
	enc, err := EncodeDataset(synthDataset(0, 365))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeDataset(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// fleetBytes is the on-disk size of a fleet's snapshots, for MB/s.
func fleetBytes(b *testing.B, datasets []*etl.VehicleDataset) int64 {
	b.Helper()
	var total int64
	for _, d := range datasets {
		enc, err := EncodeDataset(d)
		if err != nil {
			b.Fatal(err)
		}
		total += int64(len(enc))
	}
	return total
}

// BenchmarkStoreSave writes a full 1 000-vehicle-year snapshot
// (fsync-per-file durability included — this is the shutdown path).
func BenchmarkStoreSave(b *testing.B) {
	datasets := synthFleet(1000, 365)
	b.SetBytes(fleetBytes(b, datasets))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dir.Save(datasets); err != nil {
			b.Fatal(err)
		}
		if err := dir.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreColdBoot measures what vup-server -data-dir pays on
// start: open the directory, decode every snapshot, verify every
// checksum and fingerprint.
func BenchmarkStoreColdBoot(b *testing.B) {
	datasets := synthFleet(1000, 365)
	path := b.TempDir()
	dir, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		b.Fatal(err)
	}
	if err := dir.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fleetBytes(b, datasets))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		loaded, _, err := dir.Load()
		if err != nil {
			b.Fatal(err)
		}
		if len(loaded) != len(datasets) {
			b.Fatalf("loaded %d vehicles, want %d", len(loaded), len(datasets))
		}
		if err := dir.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// savedFleetDir saves a synthetic fleet once and returns its path.
func savedFleetDir(b *testing.B, n, days int) string {
	b.Helper()
	datasets := synthFleet(n, days)
	path := b.TempDir()
	dir, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		b.Fatal(err)
	}
	if err := dir.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

// benchFleetSizes returns the fleet sizes to benchmark boots at. The
// 10 000-vehicle point takes minutes to set up; it is gated behind
// VUP_BENCH_LARGE=1 (the BENCH_boot.json capture sets it).
func benchFleetSizes() []int {
	if os.Getenv("VUP_BENCH_LARGE") == "1" {
		return []int{1000, 10000}
	}
	return []int{1000}
}

// BenchmarkBootManifest measures what a lazy vup-server pays on start:
// open the directory, parse the manifest and index the log — no
// snapshot is decoded. Compare against BenchmarkBootEager at the same
// fleet size; the gap is what -lazy-load buys (BENCH_boot.json).
func BenchmarkBootManifest(b *testing.B) {
	for _, n := range benchFleetSizes() {
		b.Run(fmt.Sprintf("vehicles=%d", n), func(b *testing.B) {
			path := savedFleetDir(b, n, 365)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dir, err := Open(path)
				if err != nil {
					b.Fatal(err)
				}
				if got := len(dir.VehicleIDs()); got != n {
					b.Fatalf("roster lists %d vehicles, want %d", got, n)
				}
				if err := dir.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBootEager is the whole-fleet-in-RAM boot at the same fleet
// sizes: decode and verify every snapshot. (BenchmarkStoreColdBoot is
// its throughput-oriented sibling; this one exists to pair with
// BenchmarkBootManifest point for point.)
func BenchmarkBootEager(b *testing.B) {
	for _, n := range benchFleetSizes() {
		b.Run(fmt.Sprintf("vehicles=%d", n), func(b *testing.B) {
			path := savedFleetDir(b, n, 365)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dir, err := Open(path)
				if err != nil {
					b.Fatal(err)
				}
				loaded, _, err := dir.Load()
				if err != nil {
					b.Fatal(err)
				}
				if len(loaded) != n {
					b.Fatalf("loaded %d vehicles, want %d", len(loaded), n)
				}
				if err := dir.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLazyFirstLoad is the per-vehicle fault a lazy server pays
// on a cold request: decode one snapshot and verify it against the
// manifest. This is the latency a cold vehicle's first forecast
// carries on top of the model fit.
func BenchmarkLazyFirstLoad(b *testing.B) {
	path := savedFleetDir(b, 100, 365)
	dir, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	ids := dir.VehicleIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dir.LoadVehicle(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogAppend measures streaming ingest: one fsynced log record
// per day appended.
func BenchmarkLogAppend(b *testing.B) {
	datasets := synthFleet(1, 365)
	dir, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		b.Fatal(err)
	}
	d := datasets[0]
	chans := make(map[string]float64, len(d.Channels))
	for name := range d.Channels {
		chans[name] = 1
	}
	next := d.Date(d.Len() - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next = next.AddDate(0, 0, 1)
		if err := dir.Append(d.VehicleID, Day{Date: next, Hours: 5, Observed: true, Channels: chans}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := dir.Close(); err != nil {
		b.Fatal(err)
	}
}
