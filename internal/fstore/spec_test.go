package fstore

// Spec conformance: the worked examples in FORMAT.md §6 are normative.
// Each ```hex spec:<label>``` block must decode with the reference
// implementation, and re-encoding the decoded value must reproduce the
// documented bytes exactly. If the format changes, FORMAT.md must
// change with it — this test is the tripwire.

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"os"
	"strings"
	"testing"
	"time"

	"vup/internal/relational"
)

// specExamples parses FORMAT.md and returns label → bytes for every
// fenced block opened with "```hex spec:<label>". Whitespace inside a
// block is insignificant.
func specExamples(t *testing.T) map[string][]byte {
	t.Helper()
	f, err := os.Open("FORMAT.md")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := map[string][]byte{}
	var label string
	var hexText strings.Builder
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case label == "" && strings.HasPrefix(line, "```hex spec:"):
			label = strings.TrimPrefix(line, "```hex spec:")
			hexText.Reset()
		case label != "" && strings.HasPrefix(line, "```"):
			clean := strings.Join(strings.Fields(hexText.String()), "")
			data, err := hex.DecodeString(clean)
			if err != nil {
				t.Fatalf("block %q: bad hex: %v", label, err)
			}
			if _, dup := out[label]; dup {
				t.Fatalf("duplicate spec block %q", label)
			}
			out[label] = data
			label = ""
		case label != "":
			hexText.WriteString(line)
			hexText.WriteString(" ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if label != "" {
		t.Fatalf("unterminated spec block %q", label)
	}
	return out
}

func TestSpecExampleTable(t *testing.T) {
	data, ok := specExamples(t)["vupt-table"]
	if !ok {
		t.Fatal("FORMAT.md has no spec:vupt-table block")
	}
	tab, err := relational.DecodeTable(data)
	if err != nil {
		t.Fatalf("documented table bytes do not decode: %v", err)
	}
	if got := tab.Rows(); got != 2 {
		t.Errorf("rows = %d, want 2", got)
	}
	h, err := tab.FloatCol("h")
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 1.5 || h[1] != 8.0 {
		t.Errorf("column h = %v, want [1.5 8]", h)
	}
	reenc := relational.EncodeTable(tab)
	if !bytes.Equal(reenc, data) {
		t.Errorf("re-encoding the documented table drifts from FORMAT.md §6.1")
	}
}

func TestSpecExampleDataset(t *testing.T) {
	data, ok := specExamples(t)["vupd-dataset"]
	if !ok {
		t.Fatal("FORMAT.md has no spec:vupd-dataset block")
	}
	d, err := DecodeDataset(data)
	if err != nil {
		t.Fatalf("documented snapshot bytes do not decode: %v", err)
	}
	if d.VehicleID != "v1" || d.ModelID != "m1" || d.Country != "IT" {
		t.Errorf("identity = %q/%q/%q, want v1/m1/IT", d.VehicleID, d.ModelID, d.Country)
	}
	want := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	if !d.Start.Equal(want) {
		t.Errorf("start = %v, want %v", d.Start, want)
	}
	if d.Len() != 2 || d.Hours[0] != 1.5 || d.Hours[1] != 8 {
		t.Errorf("hours = %v, want [1.5 8]", d.Hours)
	}
	if rpm := d.Channels["rpm"]; len(rpm) != 2 || rpm[0] != 900 || rpm[1] != 1250 {
		t.Errorf("rpm = %v, want [900 1250]", d.Channels["rpm"])
	}
	if d.Dates != nil {
		t.Error("contiguous example decoded with explicit Dates")
	}
	reenc, err := EncodeDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, data) {
		t.Errorf("re-encoding the documented snapshot drifts from FORMAT.md §6.2")
	}
}

func TestSpecExampleLogRecord(t *testing.T) {
	data, ok := specExamples(t)["log-record"]
	if !ok {
		t.Fatal("FORMAT.md has no spec:log-record block")
	}
	recs, err := parseLog(data)
	if err != nil {
		t.Fatalf("documented log record does not parse: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("parsed %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.seq != 3 || rec.vehicleID != "v1" || len(rec.days) != 1 {
		t.Fatalf("record = seq %d vehicle %q days %d, want 3/v1/1", rec.seq, rec.vehicleID, len(rec.days))
	}
	day := rec.days[0]
	wantDate := time.Date(2017, 1, 3, 0, 0, 0, 0, time.UTC)
	if !day.Date.Equal(wantDate) || day.Hours != 4.25 || !day.Observed {
		t.Errorf("day = %+v, want %v, 4.25h, observed", day, wantDate)
	}
	if day.Channels["rpm"] != 1100 {
		t.Errorf("rpm = %v, want 1100", day.Channels["rpm"])
	}
	reenc := encodeLogRecord(rec.seq, rec.vehicleID, rec.days)
	if !bytes.Equal(reenc, data) {
		t.Errorf("re-encoding the documented record drifts from FORMAT.md §6.3")
	}
}
