package fstore

// Bounds-checked binary primitives shared by the VUPD snapshot and
// append-log codecs. Faults are reported as *relational.FormatError
// with the same failure classes as the table decoder, so callers test
// one set of sentinels (relational.ErrTruncated, ErrChecksum, ...)
// across both layers; the file-level loaders wrap them into
// *CorruptError with the file path.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"vup/internal/relational"
)

// castagnoli is the CRC-32C polynomial table; the same checksum the
// VUPT table format uses seals VUPD files and log records.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func formatErrf(off int, class error, format string, args ...any) error {
	return &relational.FormatError{Offset: int64(off), Err: class, Detail: fmt.Sprintf(format, args...)}
}

func appendU16(buf []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(buf, v) }
func appendU32(buf []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(buf, v) }
func appendU64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }

// appendString16 appends a u16 length prefix and the string bytes.
func appendString16(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// appendTime appends the 12-byte time cell (i64 seconds, i32 nanos).
func appendTime(buf []byte, t time.Time) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Unix()))
	return binary.LittleEndian.AppendUint32(buf, uint32(t.Nanosecond()))
}

type reader struct {
	data []byte
	off  int
}

func newReader(data []byte) *reader { return &reader{data: data} }

func (r *reader) need(n int) error {
	if n < 0 || len(r.data)-r.off < n {
		return formatErrf(r.off, relational.ErrTruncated, "need %d more bytes, have %d", n, len(r.data)-r.off)
	}
	return nil
}

func (r *reader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if err := r.need(n); err != nil {
		return nil, err
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) string16() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) time() (time.Time, error) {
	sec, err := r.u64()
	if err != nil {
		return time.Time{}, err
	}
	nsec, err := r.u32()
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(int64(sec), int64(int32(nsec))).UTC(), nil
}
