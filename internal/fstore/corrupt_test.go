package fstore

// Failure-path coverage: every way a fleet directory can rot on disk
// must surface as a typed error naming the file and byte offset —
// never as a silently wrong dataset.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vup/internal/relational"
)

// savedDir saves a small fleet and returns the directory path plus the
// snapshot file name of the first vehicle.
func savedDir(t *testing.T) (string, string) {
	t.Helper()
	datasets := genDatasets(t, 1, 60, 31)
	dir, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	return dir.Path(), snapshotFileName(datasets[0].VehicleID)
}

// loadErr re-opens the directory cold and returns the Load error.
func loadErr(t *testing.T, path string) error {
	t.Helper()
	dir, err := Open(path)
	if err != nil {
		return err
	}
	_, _, err = dir.Load()
	return err
}

// mustCorrupt asserts err is a *CorruptError of the given class whose
// File names file and returns it.
func mustCorrupt(t *testing.T, err, class error, file string) *CorruptError {
	t.Helper()
	if err == nil {
		t.Fatalf("want %v for %s, got nil", class, file)
	}
	if !errors.Is(err, class) {
		t.Fatalf("error %v is not class %v", err, class)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CorruptError", err)
	}
	if !strings.HasSuffix(ce.File, file) {
		t.Fatalf("error names file %q, want %q", ce.File, file)
	}
	return ce
}

func TestLoadTruncatedSnapshot(t *testing.T) {
	path, vds := savedDir(t)
	full, err := os.ReadFile(filepath.Join(path, vds))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(path, vds), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	ce := mustCorrupt(t, loadErr(t, path), relational.ErrTruncated, vds)
	if ce.Offset <= 0 || ce.Offset > int64(len(full)/2) {
		t.Errorf("fault offset %d outside truncated input", ce.Offset)
	}
}

func TestLoadWrongSnapshotMagic(t *testing.T) {
	path, vds := savedDir(t)
	corruptByte(t, filepath.Join(path, vds), 0, 'X')
	ce := mustCorrupt(t, loadErr(t, path), relational.ErrBadMagic, vds)
	if ce.Offset != 0 {
		t.Errorf("offset = %d, want 0", ce.Offset)
	}
}

func TestLoadWrongSnapshotVersion(t *testing.T) {
	path, vds := savedDir(t)
	corruptByte(t, filepath.Join(path, vds), 4, 0x7F)
	ce := mustCorrupt(t, loadErr(t, path), relational.ErrBadVersion, vds)
	if ce.Offset != 4 {
		t.Errorf("offset = %d, want 4", ce.Offset)
	}
}

func TestLoadSnapshotChecksumMismatch(t *testing.T) {
	path, vds := savedDir(t)
	full, err := os.ReadFile(filepath.Join(path, vds))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit deep in the column data: structure still parses, the
	// whole-file checksum must catch it.
	corruptByte(t, filepath.Join(path, vds), len(full)-20, full[len(full)-20]^0x01)
	mustCorrupt(t, loadErr(t, path), relational.ErrChecksum, vds)
}

func TestLoadFingerprintDrift(t *testing.T) {
	path, vds := savedDir(t)
	// Rewrite the manifest with a wrong fingerprint: the snapshot is
	// pristine, but it no longer means what the manifest promised.
	mpath := filepath.Join(path, manifestName)
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	fp := dir.Manifest().Vehicles[0].Fingerprint
	flipped := strings.Replace(string(data), fp, "0000000000000000", 1)
	if flipped == string(data) {
		t.Fatal("fingerprint not found in manifest")
	}
	if err := os.WriteFile(mpath, []byte(flipped), 0o644); err != nil {
		t.Fatal(err)
	}
	mustCorrupt(t, loadErr(t, path), ErrMismatch, vds)
}

func TestLoadTornLogTail(t *testing.T) {
	path, _ := savedDir(t)
	dir, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	datasets, _, err := dir.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Append(datasets[0].VehicleID, nextDay(datasets[0], 1)); err != nil {
		t.Fatal(err)
	}
	if err := dir.Append(datasets[0].VehicleID, Day{
		Date: datasets[0].Date(datasets[0].Len()-1).AddDate(0, 0, 2), Hours: 2, Observed: true,
		Channels: nextDay(datasets[0], 2).Channels,
	}); err != nil {
		t.Fatal(err)
	}
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-write of the second record: cut into its payload.
	lpath := filepath.Join(path, logName)
	full, err := os.ReadFile(lpath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := parseLog(full)
	if err != nil {
		t.Fatal(err)
	}
	cut := int(recs[1].offset) + 10
	if err := os.WriteFile(lpath, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	ce := mustCorrupt(t, loadErr(t, path), relational.ErrTruncated, logName)
	if ce.Offset < recs[1].offset || ce.Offset > int64(cut) {
		t.Errorf("torn-tail offset %d, want within the torn record [%d, %d]", ce.Offset, recs[1].offset, cut)
	}
}

func TestLoadLogRecordChecksumMismatch(t *testing.T) {
	path, _ := savedDir(t)
	dir, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	datasets, _, err := dir.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Append(datasets[0].VehicleID, nextDay(datasets[0], 1)); err != nil {
		t.Fatal(err)
	}
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}
	lpath := filepath.Join(path, logName)
	full, err := os.ReadFile(lpath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit; the record CRC must catch it.
	corruptByte(t, lpath, len(full)-1, full[len(full)-1]^0x01)
	ce := mustCorrupt(t, loadErr(t, path), relational.ErrChecksum, logName)
	if ce.Offset != 4 {
		t.Errorf("offset = %d, want 4 (record CRC position)", ce.Offset)
	}
}

func TestLoadLogUnknownVehicle(t *testing.T) {
	path, _ := savedDir(t)
	dir, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	datasets, _, err := dir.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Append("ghost-vehicle", nextDay(datasets[0], 1)); err != nil {
		t.Fatal(err)
	}
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}
	mustCorrupt(t, loadErr(t, path), ErrMismatch, logName)
}

func TestLoadManifestGarbage(t *testing.T) {
	path, _ := savedDir(t)
	if err := os.WriteFile(filepath.Join(path, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustCorrupt(t, loadErr(t, path), relational.ErrCorrupt, manifestName)
}

func corruptByte(t *testing.T, path string, off int, val byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] = val
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
