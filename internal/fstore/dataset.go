package fstore

// VUPD: the per-vehicle snapshot container. A small metadata header
// (identity + start date + flags) wraps a relational.Table payload in
// the VUPT columnar format holding the per-day series, and a trailing
// CRC-32C seals the whole file. FORMAT.md specifies the layout
// byte-for-byte; this file is the reference implementation.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"time"

	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/relational"
)

// DatasetFormatVersion is the current VUPD container version.
const DatasetFormatVersion = 1

// datasetMagic opens every encoded dataset snapshot.
const datasetMagic = "VUPD"

// flagExplicitDates marks datasets whose in-memory form carries an
// explicit Dates array (non-contiguous day sequences, e.g. produced by
// Subset). The date column is always encoded; the flag only decides
// whether Load re-materializes Dates or leaves it nil — which matters
// because the fingerprint hashes explicit dates and must survive a
// round-trip bit-for-bit.
const flagExplicitDates = 0x01

// Fixed column names of the snapshot table; channel columns follow
// them, each prefixed with chanColPrefix to keep the namespace closed
// under arbitrary channel names.
const (
	colHours      = "hours"
	colObserved   = "observed"
	colDate       = "date"
	chanColPrefix = "ch:"
)

// ErrMismatch classifies semantic inconsistencies in structurally
// valid files (fingerprint drift, misaligned columns, date gaps).
var ErrMismatch = errors.New("fstore: content mismatch")

// EncodeDataset serializes one dataset into the VUPD snapshot format.
// Context is not stored: it is a pure function of country and dates
// (etl.Enrich) and is rebuilt on decode.
func EncodeDataset(d *etl.VehicleDataset) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("fstore: encode %q: %w", d.VehicleID, err)
	}
	names := make([]string, 0, len(d.Channels))
	for name := range d.Channels {
		names = append(names, name)
	}
	sort.Strings(names)

	cols := []relational.Column{
		{Name: colHours, Type: relational.Float},
		{Name: colObserved, Type: relational.Bool},
		{Name: colDate, Type: relational.Time},
	}
	for _, name := range names {
		cols = append(cols, relational.Column{Name: chanColPrefix + name, Type: relational.Float})
	}
	schema, err := relational.NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("fstore: encode %q: %w", d.VehicleID, err)
	}
	tab := relational.NewTable(schema)
	row := make([]relational.Value, len(cols))
	for i := 0; i < d.Len(); i++ {
		row[0] = d.Hours[i]
		row[1] = d.Observed[i]
		row[2] = d.Date(i)
		for j, name := range names {
			row[3+j] = d.Channels[name][i]
		}
		if err := tab.Append(row...); err != nil {
			return nil, fmt.Errorf("fstore: encode %q: %w", d.VehicleID, err)
		}
	}
	payload := relational.EncodeTable(tab)

	buf := make([]byte, 0, 64+len(payload))
	buf = append(buf, datasetMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, DatasetFormatVersion)
	buf = appendString16(buf, d.VehicleID)
	buf = appendString16(buf, d.ModelID)
	buf = appendString16(buf, d.Country)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(d.Type))
	buf = appendTime(buf, d.Start)
	flags := byte(0)
	if d.Dates != nil {
		flags |= flagExplicitDates
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli)), nil
}

// DecodeDataset parses a VUPD snapshot produced by EncodeDataset,
// rebuilds the derived Context and validates alignment. Malformed
// input fails with a *relational.FormatError carrying the byte offset
// (wrapped in *CorruptError by the file-level loaders).
func DecodeDataset(data []byte) (*etl.VehicleDataset, error) {
	r := newReader(data)
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != datasetMagic {
		return nil, formatErrf(0, relational.ErrBadMagic, "got %q, want %q", magic, datasetMagic)
	}
	version, err := r.u16()
	if err != nil {
		return nil, err
	}
	if version != DatasetFormatVersion {
		return nil, formatErrf(4, relational.ErrBadVersion, "version %d, decoder supports %d", version, DatasetFormatVersion)
	}
	vehicleID, err := r.string16()
	if err != nil {
		return nil, err
	}
	modelID, err := r.string16()
	if err != nil {
		return nil, err
	}
	country, err := r.string16()
	if err != nil {
		return nil, err
	}
	vtype, err := r.u16()
	if err != nil {
		return nil, err
	}
	start, err := r.time()
	if err != nil {
		return nil, err
	}
	flagOff := r.off
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	if flags&^flagExplicitDates != 0 {
		return nil, formatErrf(flagOff, relational.ErrCorrupt, "unknown flag bits %#x", flags)
	}
	lenOff := r.off
	payloadLen, err := r.u64()
	if err != nil {
		return nil, err
	}
	if payloadLen > uint64(len(data)-r.off) {
		return nil, formatErrf(lenOff, relational.ErrTruncated, "table payload of %d bytes exceeds %d remaining", payloadLen, len(data)-r.off)
	}
	tableOff := r.off
	payload, err := r.bytes(int(payloadLen))
	if err != nil {
		return nil, err
	}
	sumOff := r.off
	stored, err := r.u32()
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(data[:sumOff], castagnoli); got != stored {
		return nil, formatErrf(sumOff, relational.ErrChecksum, "computed %08x, stored %08x", got, stored)
	}
	if r.off != len(data) {
		return nil, formatErrf(r.off, relational.ErrCorrupt, "%d trailing bytes after checksum", len(data)-r.off)
	}

	tab, err := relational.DecodeTable(payload)
	if err != nil {
		// Shift the inner fault to a whole-file offset.
		var fe *relational.FormatError
		if errors.As(err, &fe) {
			return nil, &relational.FormatError{Offset: fe.Offset + int64(tableOff), Err: fe.Err, Detail: "embedded table: " + fe.Detail}
		}
		return nil, err
	}
	return datasetFromTable(vehicleID, modelID, country, fleet.Type(vtype), start, flags, tab, tableOff)
}

// datasetFromTable reassembles the in-memory dataset from the decoded
// snapshot table.
func datasetFromTable(vehicleID, modelID, country string, vtype fleet.Type, start time.Time, flags byte, tab *relational.Table, tableOff int) (*etl.VehicleDataset, error) {
	hours, err := tab.FloatCol(colHours)
	if err != nil {
		return nil, formatErrf(tableOff, relational.ErrCorrupt, "snapshot table: %v", err)
	}
	observed, err := tab.BoolCol(colObserved)
	if err != nil {
		return nil, formatErrf(tableOff, relational.ErrCorrupt, "snapshot table: %v", err)
	}
	dates, err := tab.TimeCol(colDate)
	if err != nil {
		return nil, formatErrf(tableOff, relational.ErrCorrupt, "snapshot table: %v", err)
	}
	d := &etl.VehicleDataset{
		VehicleID: vehicleID,
		Type:      vtype,
		ModelID:   modelID,
		Country:   country,
		Start:     start,
		Hours:     hours,
		Observed:  observed,
		Channels:  map[string][]float64{},
	}
	for _, c := range tab.Schema().Columns() {
		name, ok := strings.CutPrefix(c.Name, chanColPrefix)
		if !ok {
			continue
		}
		vals, err := tab.FloatCol(c.Name)
		if err != nil {
			return nil, formatErrf(tableOff, relational.ErrCorrupt, "snapshot table: %v", err)
		}
		d.Channels[name] = vals
	}
	if flags&flagExplicitDates != 0 {
		d.Dates = dates
	} else {
		// Contiguous dataset: the date column is redundant with Start.
		// Verify instead of trusting, so an encoder bug cannot smuggle
		// in silently shifted calendars.
		for i, got := range dates {
			if want := start.AddDate(0, 0, i); !got.Equal(want) {
				return nil, fmt.Errorf("%w: contiguous snapshot has date %s at day %d, want %s",
					ErrMismatch, got.Format(time.RFC3339), i, want.Format(time.RFC3339))
			}
		}
	}
	d.Enrich()
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("%w: decoded dataset: %v", ErrMismatch, err)
	}
	return d, nil
}
