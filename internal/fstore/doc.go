// Package fstore persists fleets of per-vehicle daily datasets
// (etl.VehicleDataset) on disk, so a serving process survives restarts
// and fleet size is no longer capped by what fits in RAM at boot.
//
// A fleet directory contains:
//
//   - one snapshot file per vehicle (<id>.vds), a VUPD container whose
//     payload is a relational.Table in the VUPT binary columnar format
//     (see FORMAT.md in this directory — the normative byte-level
//     spec);
//   - manifest.json, listing every vehicle with its snapshot file,
//     day count and dataset fingerprint (etl.VehicleDataset.
//     Fingerprint), the value forecast-cache keys are derived from —
//     equal fingerprints across a restart mean every previously
//     computed cache key is still valid, which is what lets the server
//     warm-start without refitting or invalidation;
//   - append.log, a replayable record log of incremental days
//     (per-vehicle appends land here between snapshots and are folded
//     into the dataset at load; Save compacts the log away).
//
// The decoder side is strict: wrong magic, unsupported versions,
// truncated files, checksum mismatches and torn log records all fail
// loudly with a *CorruptError naming the file and byte offset — a
// fleet directory never deserializes into garbage.
//
// Typical use:
//
//	dir, _ := fstore.Open(path)
//	datasets, _, err := dir.Load()        // cold boot (ErrNoManifest when empty)
//	...
//	_ = dir.Append(id, fstore.Day{...})   // incremental day, logged durably
//	_ = dir.Save(datasets)                // full snapshot, compacts the log
package fstore
