package fstore

// The append log: incremental days land here between snapshots, one
// length-prefixed CRC-framed record per Append call, and are folded
// back into the datasets at Load. Records carry a monotonic sequence
// number; the manifest remembers, per vehicle, the highest sequence
// already folded into its snapshot, so replay after a partial
// compaction never applies a day twice. See FORMAT.md §4 for the
// byte-level framing.

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"time"

	"vup/internal/etl"
	"vup/internal/relational"
)

// Day is one incremental calendar day of a vehicle's series: the
// payload of an append-log record and the unit of streaming ingest.
type Day struct {
	Date     time.Time
	Hours    float64
	Observed bool
	// Channels must carry exactly the channel set of the dataset it is
	// appended to; a drifting channel set fails with ErrMismatch
	// instead of silently zero-filling.
	Channels map[string]float64
}

// recordAppendDays is the only record type of log format v1.
const recordAppendDays = 1

// logRecord is one parsed append-log record.
type logRecord struct {
	seq       uint64
	vehicleID string
	days      []Day
	// offset is the byte position of the record's framing header in
	// the log file, for error reporting.
	offset int64
}

// encodeLogRecord frames one append record:
// u32 payload length | u32 CRC-32C(payload) | payload.
func encodeLogRecord(seq uint64, vehicleID string, days []Day) []byte {
	payload := make([]byte, 0, 32+len(days)*64)
	payload = appendU64(payload, seq)
	payload = append(payload, recordAppendDays)
	payload = appendString16(payload, vehicleID)
	payload = appendU16(payload, uint16(len(days)))
	for _, day := range days {
		payload = appendTime(payload, day.Date)
		payload = appendU64(payload, math.Float64bits(day.Hours))
		if day.Observed {
			payload = append(payload, 1)
		} else {
			payload = append(payload, 0)
		}
		names := make([]string, 0, len(day.Channels))
		for name := range day.Channels {
			names = append(names, name)
		}
		sort.Strings(names)
		payload = appendU16(payload, uint16(len(names)))
		for _, name := range names {
			payload = appendString16(payload, name)
			payload = appendU64(payload, math.Float64bits(day.Channels[name]))
		}
	}
	buf := make([]byte, 0, 8+len(payload))
	buf = appendU32(buf, uint32(len(payload)))
	buf = appendU32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// parseLog walks the whole log buffer and returns every record. Any
// malformation — a torn tail from a crash mid-write, a flipped bit, a
// short frame — fails with a *relational.FormatError carrying the
// absolute byte offset (the Dir loader wraps in the file name).
func parseLog(data []byte) ([]logRecord, error) {
	var out []logRecord
	off := 0
	for off < len(data) {
		recStart := off
		if len(data)-off < 8 {
			return nil, formatErrf(recStart, relational.ErrTruncated, "torn record framing: %d bytes left, need 8", len(data)-off)
		}
		r := newReader(data)
		r.off = off
		plen, err := r.u32()
		if err != nil {
			return nil, err
		}
		sum, err := r.u32()
		if err != nil {
			return nil, err
		}
		payload, err := r.bytes(int(plen))
		if err != nil {
			return nil, formatErrf(recStart, relational.ErrTruncated, "torn record: payload of %d bytes, %d left after framing", plen, len(data)-off-8)
		}
		if got := crc32.Checksum(payload, castagnoli); got != sum {
			return nil, formatErrf(recStart+4, relational.ErrChecksum, "record payload: computed %08x, stored %08x", got, sum)
		}
		rec, err := parseLogPayload(payload, recStart+8)
		if err != nil {
			return nil, err
		}
		rec.offset = int64(recStart)
		if n := len(out); n > 0 && rec.seq <= out[n-1].seq {
			return nil, formatErrf(recStart+8, relational.ErrCorrupt, "sequence %d not after %d", rec.seq, out[n-1].seq)
		}
		out = append(out, rec)
		off = r.off
	}
	return out, nil
}

// parseLogPayload decodes one CRC-verified record payload. base is the
// payload's offset in the log file, so faults report absolute
// positions.
func parseLogPayload(payload []byte, base int) (logRecord, error) {
	r := newReader(payload)
	abs := func(off int) int { return base + off }
	seq, err := r.u64()
	if err != nil {
		return logRecord{}, shiftOffset(err, base)
	}
	typOff := r.off
	typ, err := r.u8()
	if err != nil {
		return logRecord{}, shiftOffset(err, base)
	}
	if typ != recordAppendDays {
		return logRecord{}, formatErrf(abs(typOff), relational.ErrCorrupt, "unknown record type %d", typ)
	}
	vehicleID, err := r.string16()
	if err != nil {
		return logRecord{}, shiftOffset(err, base)
	}
	if vehicleID == "" {
		return logRecord{}, formatErrf(abs(r.off), relational.ErrCorrupt, "empty vehicle id")
	}
	count, err := r.u16()
	if err != nil {
		return logRecord{}, shiftOffset(err, base)
	}
	days := make([]Day, 0, count)
	for i := 0; i < int(count); i++ {
		date, err := r.time()
		if err != nil {
			return logRecord{}, shiftOffset(err, base)
		}
		bits, err := r.u64()
		if err != nil {
			return logRecord{}, shiftOffset(err, base)
		}
		obsOff := r.off
		obs, err := r.u8()
		if err != nil {
			return logRecord{}, shiftOffset(err, base)
		}
		if obs > 1 {
			return logRecord{}, formatErrf(abs(obsOff), relational.ErrCorrupt, "observed byte %d", obs)
		}
		nchan, err := r.u16()
		if err != nil {
			return logRecord{}, shiftOffset(err, base)
		}
		day := Day{Date: date, Hours: math.Float64frombits(bits), Observed: obs == 1, Channels: make(map[string]float64, nchan)}
		for c := 0; c < int(nchan); c++ {
			name, err := r.string16()
			if err != nil {
				return logRecord{}, shiftOffset(err, base)
			}
			vbits, err := r.u64()
			if err != nil {
				return logRecord{}, shiftOffset(err, base)
			}
			if _, dup := day.Channels[name]; dup {
				return logRecord{}, formatErrf(abs(r.off), relational.ErrCorrupt, "duplicate channel %q", name)
			}
			day.Channels[name] = math.Float64frombits(vbits)
		}
		days = append(days, day)
	}
	if r.off != len(payload) {
		return logRecord{}, formatErrf(abs(r.off), relational.ErrCorrupt, "%d trailing bytes in record payload", len(payload)-r.off)
	}
	return logRecord{seq: seq, vehicleID: vehicleID, days: days}, nil
}

// shiftOffset rebases a *relational.FormatError to an absolute file
// offset.
func shiftOffset(err error, base int) error {
	var fe *relational.FormatError
	if errors.As(err, &fe) {
		return &relational.FormatError{Offset: fe.Offset + int64(base), Err: fe.Err, Detail: fe.Detail}
	}
	return err
}

// applyDays appends incremental days to a dataset in place without
// rebuilding Context (Load enriches once after the whole replay; use
// ApplyDays for a self-contained append). The day's channel set must
// match the dataset's exactly.
func applyDays(d *etl.VehicleDataset, days []Day) error {
	for _, day := range days {
		if len(day.Channels) != len(d.Channels) {
			return fmt.Errorf("%w: day %s carries %d channels, dataset %q has %d",
				ErrMismatch, day.Date.Format("2006-01-02"), len(day.Channels), d.VehicleID, len(d.Channels))
		}
		for name := range day.Channels {
			if _, ok := d.Channels[name]; !ok {
				return fmt.Errorf("%w: day %s carries unknown channel %q for dataset %q",
					ErrMismatch, day.Date.Format("2006-01-02"), name, d.VehicleID)
			}
		}
		next := d.Date(d.Len()-1).AddDate(0, 0, 1)
		if d.Dates == nil && !day.Date.Equal(next) {
			// The contiguity invariant breaks: materialize explicit
			// dates before appending the out-of-step day.
			dates := make([]time.Time, d.Len())
			for i := range dates {
				dates[i] = d.Date(i)
			}
			d.Dates = dates
		}
		d.Hours = append(d.Hours, day.Hours)
		d.Observed = append(d.Observed, day.Observed)
		if d.Dates != nil {
			d.Dates = append(d.Dates, day.Date)
		}
		for name := range d.Channels {
			d.Channels[name] = append(d.Channels[name], day.Channels[name])
		}
	}
	return nil
}

// ApplyDays appends incremental days to a dataset, re-derives its
// Context and validates alignment — the in-memory half of an Append
// call, for callers that keep serving the dataset they are logging.
func ApplyDays(d *etl.VehicleDataset, days ...Day) error {
	if err := applyDays(d, days); err != nil {
		return err
	}
	d.Enrich()
	return d.Validate()
}
