package fstore

// The fleet directory: one VUPD snapshot per vehicle, a JSON manifest
// binding IDs to files and dataset fingerprints, and the append log.
// Dir is the handle the server and the generators hold; all methods
// are safe for concurrent use.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vup/internal/etl"
	"vup/internal/relational"
)

// Filenames inside a fleet directory.
const (
	manifestName = "manifest.json"
	logName      = "append.log"
	snapshotExt  = ".vds"
)

// ErrNoManifest is returned by Load on a directory that has never been
// saved to — the caller's signal to generate or ingest a fleet and
// Save it.
var ErrNoManifest = errors.New("fstore: no manifest in directory")

// ErrUnknownVehicle is returned by LoadVehicle for an ID the manifest
// does not list.
var ErrUnknownVehicle = errors.New("fstore: unknown vehicle")

// CorruptError is the file-level decode failure: which file, at which
// byte offset, and why. The wrapped error carries the failure class
// (relational.ErrChecksum, relational.ErrTruncated, ErrMismatch, ...)
// for errors.Is.
type CorruptError struct {
	File   string
	Offset int64
	Err    error
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("fstore: %s: offset %d: %v", e.File, e.Offset, e.Err)
}

// Unwrap exposes the underlying fault to errors.Is / errors.As.
func (e *CorruptError) Unwrap() error { return e.Err }

// corruptErr wraps a decode failure with its file; if the underlying
// error is a *relational.FormatError the fault offset is lifted out.
func corruptErr(file string, err error) error {
	ce := &CorruptError{File: file, Err: err}
	var fe *relational.FormatError
	if errors.As(err, &fe) {
		ce.Offset = fe.Offset
	}
	return ce
}

// ManifestEntry describes one vehicle snapshot.
type ManifestEntry struct {
	ID   string `json:"id"`
	File string `json:"file"`
	// Fingerprint is the dataset's etl fingerprint as 16 hex digits —
	// the data half of forecast-cache keys. Load recomputes it from
	// the decoded snapshot and fails loudly on drift, which is what
	// makes a fingerprint read from the manifest trustworthy for cache
	// warm-starting.
	Fingerprint string `json:"fingerprint"`
	Days        int    `json:"days"`
	// AppliedSeq is the highest append-log sequence number already
	// folded into this snapshot; replay skips records at or below it.
	AppliedSeq uint64 `json:"applied_seq"`
}

// Manifest indexes a fleet directory.
type Manifest struct {
	FormatVersion int             `json:"format_version"`
	Vehicles      []ManifestEntry `json:"vehicles"`
}

// Entry returns the manifest entry for one vehicle ID.
func (m *Manifest) Entry(id string) (ManifestEntry, bool) {
	for _, e := range m.Vehicles {
		if e.ID == id {
			return e, true
		}
	}
	return ManifestEntry{}, false
}

// FingerprintOf returns one vehicle's recorded dataset fingerprint.
func (m *Manifest) FingerprintOf(id string) (uint64, bool) {
	e, ok := m.Entry(id)
	if !ok {
		return 0, false
	}
	fp, err := strconv.ParseUint(e.Fingerprint, 16, 64)
	if err != nil {
		return 0, false
	}
	return fp, true
}

// Dir is an open fleet directory.
type Dir struct {
	path string

	mu       sync.Mutex
	manifest *Manifest // last manifest read or written; nil before first Save/Load
	log      *os.File  // append handle, opened on first Append
	lastSeq  uint64    // highest sequence number present in the log
	logSize  int64     // byte length of the log file, for record offsets
	// pending indexes, per vehicle, the append-log records not yet
	// folded into that vehicle's snapshot (seq > AppliedSeq). Open and
	// Load rebuild it from disk; Append extends it; SaveVehicle drops
	// one vehicle's slice; Save drops it all. LoadVehicle replays from
	// this index instead of re-parsing the whole log per vehicle.
	pending map[string][]logRecord
}

// Open prepares a fleet directory for use, creating it if needed. An
// existing manifest and append log are indexed (the log is fully
// parsed so appends continue the sequence and per-vehicle lazy loads
// replay without rescanning); a torn or corrupt log — or a log record
// naming a vehicle the manifest does not list — fails here, loudly,
// rather than at the first append.
func Open(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("fstore: open %s: %w", path, err)
	}
	d := &Dir{path: path}
	m, err := d.readManifest()
	if err != nil && !errors.Is(err, ErrNoManifest) {
		return nil, err
	}
	d.manifest = m
	if err := d.indexLogLocked(m); err != nil {
		return nil, err
	}
	return d, nil
}

// indexLogLocked re-reads the append log from disk and rebuilds the
// per-vehicle pending index against manifest m: records at or below a
// vehicle's AppliedSeq are already in its snapshot and are dropped; a
// record naming a vehicle outside the manifest is corruption (with a
// nil manifest — a directory never saved to — every record is kept).
// Caller holds d.mu (or is constructing d).
func (d *Dir) indexLogLocked(m *Manifest) error {
	logPath := filepath.Join(d.path, logName)
	d.pending = make(map[string][]logRecord)
	d.lastSeq = 0
	d.logSize = 0
	data, err := os.ReadFile(logPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("fstore: open %s: %w", logPath, err)
	}
	if len(data) == 0 {
		return nil
	}
	recs, err := parseLog(data)
	if err != nil {
		return corruptErr(logPath, err)
	}
	for _, rec := range recs {
		var applied uint64
		if m != nil {
			e, ok := m.Entry(rec.vehicleID)
			if !ok {
				return &CorruptError{File: logPath, Offset: rec.offset,
					Err: fmt.Errorf("%w: log record %d names unknown vehicle %q", ErrMismatch, rec.seq, rec.vehicleID)}
			}
			applied = e.AppliedSeq
		}
		if rec.seq > applied {
			d.pending[rec.vehicleID] = append(d.pending[rec.vehicleID], rec)
		}
	}
	d.lastSeq = recs[len(recs)-1].seq
	d.logSize = int64(len(data))
	return nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// Close releases the append-log handle, if open.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil {
		return nil
	}
	err := d.log.Close()
	d.log = nil
	return err
}

// snapshotFileName maps a vehicle ID to its snapshot file name:
// filesystem-safe bytes pass through, everything else is %XX
// percent-encoded (injective, so distinct IDs never collide).
func snapshotFileName(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String() + snapshotExt
}

// writeFileSync writes data to path atomically (temp file + rename)
// and fsyncs both the file and the directory.
func writeFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Save writes a full snapshot: one VUPD file per dataset, a fresh
// manifest, and an emptied append log (everything logged so far is,
// by contract, already reflected in the datasets — Save IS the log
// compaction). Snapshot files not referenced by the new manifest are
// removed. Not atomic across files: a crash mid-Save leaves a
// manifest/snapshot fingerprint disagreement that the next Load
// reports loudly instead of serving.
func (d *Dir) Save(datasets []*etl.VehicleDataset) (*Manifest, error) {
	start := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()

	sorted := append([]*etl.VehicleDataset(nil), datasets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].VehicleID < sorted[j].VehicleID })

	m := &Manifest{FormatVersion: DatasetFormatVersion}
	var bytesWritten int
	seen := map[string]bool{}
	for _, ds := range sorted {
		if seen[ds.VehicleID] {
			return nil, fmt.Errorf("%w: duplicate vehicle %q in Save", ErrMismatch, ds.VehicleID)
		}
		seen[ds.VehicleID] = true
		data, err := EncodeDataset(ds)
		if err != nil {
			return nil, err
		}
		name := snapshotFileName(ds.VehicleID)
		if err := writeFileSync(filepath.Join(d.path, name), data); err != nil {
			return nil, fmt.Errorf("fstore: save %q: %w", ds.VehicleID, err)
		}
		bytesWritten += len(data)
		m.Vehicles = append(m.Vehicles, ManifestEntry{
			ID:          ds.VehicleID,
			File:        name,
			Fingerprint: fmt.Sprintf("%016x", ds.Fingerprint()),
			Days:        ds.Len(),
		})
	}
	n, err := d.writeManifestLocked(m)
	if err != nil {
		return nil, err
	}
	bytesWritten += n

	// The new snapshots embody every logged day: drop the log and any
	// snapshot file the manifest no longer references.
	if d.log != nil {
		_ = d.log.Close()
		d.log = nil
	}
	if err := os.Remove(filepath.Join(d.path, logName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("fstore: truncate log: %w", err)
	}
	d.lastSeq = 0
	d.logSize = 0
	d.pending = make(map[string][]logRecord)
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("fstore: sweep %s: %w", d.path, err)
	}
	referenced := map[string]bool{}
	for _, e := range m.Vehicles {
		referenced[e.File] = true
	}
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, snapshotExt) && !referenced[name] {
			if err := os.Remove(filepath.Join(d.path, name)); err != nil {
				return nil, fmt.Errorf("fstore: sweep %s: %w", name, err)
			}
		}
	}

	d.manifest = m
	snapshotBytes.With().Add(uint64(bytesWritten))
	snapshotSeconds.With().ObserveSince(start)
	return m, nil
}

// SaveVehicle snapshots a single vehicle — the Store.Put hook — and
// updates its manifest entry, marking every log record up to the
// current sequence as applied for that vehicle (the dataset being
// saved is the caller's live, fully-appended state).
func (d *Dir) SaveVehicle(ds *etl.VehicleDataset) error {
	start := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.manifest == nil {
		return fmt.Errorf("%w (run Save first)", ErrNoManifest)
	}
	data, err := EncodeDataset(ds)
	if err != nil {
		return err
	}
	name := snapshotFileName(ds.VehicleID)
	if err := writeFileSync(filepath.Join(d.path, name), data); err != nil {
		return fmt.Errorf("fstore: save %q: %w", ds.VehicleID, err)
	}
	entry := ManifestEntry{
		ID:          ds.VehicleID,
		File:        name,
		Fingerprint: fmt.Sprintf("%016x", ds.Fingerprint()),
		Days:        ds.Len(),
		AppliedSeq:  d.lastSeq,
	}
	m := &Manifest{FormatVersion: d.manifest.FormatVersion}
	replaced := false
	for _, e := range d.manifest.Vehicles {
		if e.ID == ds.VehicleID {
			m.Vehicles = append(m.Vehicles, entry)
			replaced = true
		} else {
			m.Vehicles = append(m.Vehicles, e)
		}
	}
	if !replaced {
		m.Vehicles = append(m.Vehicles, entry)
		sort.Slice(m.Vehicles, func(i, j int) bool { return m.Vehicles[i].ID < m.Vehicles[j].ID })
	}
	n, err := d.writeManifestLocked(m)
	if err != nil {
		return err
	}
	d.manifest = m
	// The snapshot embodies every record logged so far for this
	// vehicle (AppliedSeq = lastSeq): its pending slice is spent.
	delete(d.pending, ds.VehicleID)
	snapshotBytes.With().Add(uint64(len(data) + n))
	snapshotSeconds.With().ObserveSince(start)
	return nil
}

func (d *Dir) writeManifestLocked(m *Manifest) (int, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("fstore: encode manifest: %w", err)
	}
	data = append(data, '\n')
	if err := writeFileSync(filepath.Join(d.path, manifestName), data); err != nil {
		return 0, fmt.Errorf("fstore: write manifest: %w", err)
	}
	return len(data), nil
}

func (d *Dir) readManifest() (*Manifest, error) {
	path := filepath.Join(d.path, manifestName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoManifest, d.path)
	}
	if err != nil {
		return nil, fmt.Errorf("fstore: read manifest: %w", err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, corruptErr(path, fmt.Errorf("%w: manifest: %v", relational.ErrCorrupt, err))
	}
	if m.FormatVersion != DatasetFormatVersion {
		return nil, corruptErr(path, fmt.Errorf("%w: manifest format_version %d, want %d", relational.ErrBadVersion, m.FormatVersion, DatasetFormatVersion))
	}
	return m, nil
}

// Manifest returns the directory's current manifest (nil before the
// first Save or Load).
func (d *Dir) Manifest() *Manifest {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.manifest
}

// decodeVehicleFile decodes one vehicle's snapshot and verifies it
// against its manifest entry: the embedded vehicle ID, the recomputed
// dataset fingerprint (so a fingerprint read from the manifest is
// proof the bytes on disk still mean what they meant when cached
// artifacts were keyed on them) and the day count. It touches only the
// one file, so concurrent callers need no Dir lock.
func decodeVehicleFile(dirPath string, e ManifestEntry) (*etl.VehicleDataset, error) {
	path := filepath.Join(dirPath, e.File)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fstore: load %q: %w", e.ID, err)
	}
	ds, err := DecodeDataset(data)
	if err != nil {
		return nil, corruptErr(path, err)
	}
	if ds.VehicleID != e.ID {
		return nil, corruptErr(path, fmt.Errorf("%w: snapshot is for vehicle %q, manifest says %q", ErrMismatch, ds.VehicleID, e.ID))
	}
	if got := fmt.Sprintf("%016x", ds.Fingerprint()); got != e.Fingerprint {
		return nil, corruptErr(path, fmt.Errorf("%w: dataset fingerprint %s, manifest says %s", ErrMismatch, got, e.Fingerprint))
	}
	if ds.Len() != e.Days {
		return nil, corruptErr(path, fmt.Errorf("%w: snapshot has %d days, manifest says %d", ErrMismatch, ds.Len(), e.Days))
	}
	return ds, nil
}

// replayPending folds a vehicle's unapplied log records into its
// freshly decoded snapshot and re-derives contexts. recs must be that
// vehicle's pending slice (already filtered to seq > AppliedSeq).
func (d *Dir) replayPending(ds *etl.VehicleDataset, recs []logRecord) (int, error) {
	replayed := 0
	for _, rec := range recs {
		if err := applyDays(ds, rec.days); err != nil {
			return replayed, &CorruptError{File: filepath.Join(d.path, logName), Offset: rec.offset, Err: err}
		}
		replayed++
	}
	if replayed > 0 {
		ds.Enrich()
		if err := ds.Validate(); err != nil {
			return replayed, fmt.Errorf("fstore: replayed dataset %q: %w", ds.VehicleID, err)
		}
	}
	return replayed, nil
}

// VehicleIDs returns every vehicle ID the manifest lists, sorted —
// the fleet roster a lazy boot starts from without decoding a single
// snapshot. It is nil before the first Save or Load on a fresh
// directory.
func (d *Dir) VehicleIDs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.manifest == nil {
		return nil
	}
	out := make([]string, 0, len(d.manifest.Vehicles))
	for _, e := range d.manifest.Vehicles {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// PendingRecords reports how many append-log records are waiting to be
// folded into one vehicle's snapshot — the quantity a compaction
// threshold is measured against.
func (d *Dir) PendingRecords(id string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending[id])
}

// LoadVehicle loads exactly one vehicle: decode its snapshot, verify
// it against the manifest, replay only its pending append-log records.
// The decode and replay run outside the Dir lock, so concurrent lazy
// loads of different vehicles proceed in parallel. A missing manifest
// entry is ErrUnknownVehicle; a rotten file fails only this vehicle,
// never the directory — the corrupt-isolation property lazy boot
// depends on.
func (d *Dir) LoadVehicle(id string) (*etl.VehicleDataset, error) {
	start := time.Now()
	d.mu.Lock()
	if d.manifest == nil {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoManifest, d.path)
	}
	e, ok := d.manifest.Entry(id)
	if !ok {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownVehicle, id)
	}
	recs := append([]logRecord(nil), d.pending[id]...)
	d.mu.Unlock()

	ds, err := decodeVehicleFile(d.path, e)
	if err != nil {
		return nil, err
	}
	replayed, err := d.replayPending(ds, recs)
	if err != nil {
		return nil, err
	}
	lazyLoads.With().Inc()
	logReplayed.With().Add(uint64(replayed))
	lazyLoadSeconds.With().ObserveSince(start)
	return ds, nil
}

// Load cold-boots the fleet eagerly: reads the manifest, re-indexes
// the append log, then runs the LoadVehicle path for every manifest
// entry. Datasets come back sorted by vehicle ID.
func (d *Dir) Load() ([]*etl.VehicleDataset, *Manifest, error) {
	start := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()

	m, err := d.readManifest()
	if err != nil {
		return nil, nil, err
	}
	// Re-read the log too: Load must see the directory as a fresh
	// handle would (the pending index also picks up records this
	// handle appended since Open).
	if err := d.indexLogLocked(m); err != nil {
		return nil, nil, err
	}
	datasets := make([]*etl.VehicleDataset, 0, len(m.Vehicles))
	seen := make(map[string]bool, len(m.Vehicles))
	replayed := 0
	for _, e := range m.Vehicles {
		if seen[e.ID] {
			return nil, nil, corruptErr(filepath.Join(d.path, manifestName), fmt.Errorf("%w: duplicate manifest entry %q", ErrMismatch, e.ID))
		}
		seen[e.ID] = true
		ds, err := decodeVehicleFile(d.path, e)
		if err != nil {
			return nil, nil, err
		}
		n, err := d.replayPending(ds, d.pending[e.ID])
		if err != nil {
			return nil, nil, err
		}
		replayed += n
		datasets = append(datasets, ds)
	}

	sort.Slice(datasets, func(i, j int) bool { return datasets[i].VehicleID < datasets[j].VehicleID })
	d.manifest = m
	logReplayed.With().Add(uint64(replayed))
	loadSeconds.With().ObserveSince(start)
	return datasets, m, nil
}

// MaybeCompact folds one vehicle's append-log backlog into its
// snapshot when it has reached threshold records: ds (the caller's
// live, fully-appended state) is snapshotted via SaveVehicle, which
// marks the backlog applied, so the next load of this vehicle replays
// nothing. The log file itself only shrinks at the next full Save;
// what compaction bounds is per-vehicle replay work and the pending
// index. A threshold <= 0 disables compaction. Callers serializing
// writes per vehicle (the server's Append path) get an exact count.
func (d *Dir) MaybeCompact(ds *etl.VehicleDataset, threshold int) (bool, error) {
	if threshold <= 0 || d.PendingRecords(ds.VehicleID) < threshold {
		return false, nil
	}
	if err := d.SaveVehicle(ds); err != nil {
		return false, err
	}
	compactions.With().Inc()
	return true, nil
}

// Append durably logs incremental days for one vehicle: one framed,
// checksummed record, fsynced before return. The in-memory dataset is
// the caller's to update (ApplyDays); the next Load folds the record
// in, and the next Save compacts it away.
func (d *Dir) Append(vehicleID string, days ...Day) error {
	if vehicleID == "" {
		return fmt.Errorf("%w: empty vehicle id", ErrMismatch)
	}
	if len(days) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil {
		f, err := os.OpenFile(filepath.Join(d.path, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("fstore: open log: %w", err)
		}
		d.log = f
	}
	rec := encodeLogRecord(d.lastSeq+1, vehicleID, days)
	if _, err := d.log.Write(rec); err != nil {
		return fmt.Errorf("fstore: append: %w", err)
	}
	if err := d.log.Sync(); err != nil {
		return fmt.Errorf("fstore: append sync: %w", err)
	}
	d.lastSeq++
	// Mirror the durable record into the pending index so a LoadVehicle
	// through this handle replays it without rescanning the log. The
	// days slice is copied; the Day values (and their channel maps) are
	// owned by the index from here on — callers must not mutate them.
	if d.pending == nil {
		d.pending = make(map[string][]logRecord)
	}
	d.pending[vehicleID] = append(d.pending[vehicleID],
		logRecord{seq: d.lastSeq, vehicleID: vehicleID, days: append([]Day(nil), days...), offset: d.logSize})
	d.logSize += int64(len(rec))
	logBytes.With().Add(uint64(len(rec)))
	return nil
}
