package fstore

// The fleet directory: one VUPD snapshot per vehicle, a JSON manifest
// binding IDs to files and dataset fingerprints, and the append log.
// Dir is the handle the server and the generators hold; all methods
// are safe for concurrent use.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vup/internal/etl"
	"vup/internal/relational"
)

// Filenames inside a fleet directory.
const (
	manifestName = "manifest.json"
	logName      = "append.log"
	snapshotExt  = ".vds"
)

// ErrNoManifest is returned by Load on a directory that has never been
// saved to — the caller's signal to generate or ingest a fleet and
// Save it.
var ErrNoManifest = errors.New("fstore: no manifest in directory")

// CorruptError is the file-level decode failure: which file, at which
// byte offset, and why. The wrapped error carries the failure class
// (relational.ErrChecksum, relational.ErrTruncated, ErrMismatch, ...)
// for errors.Is.
type CorruptError struct {
	File   string
	Offset int64
	Err    error
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("fstore: %s: offset %d: %v", e.File, e.Offset, e.Err)
}

// Unwrap exposes the underlying fault to errors.Is / errors.As.
func (e *CorruptError) Unwrap() error { return e.Err }

// corruptErr wraps a decode failure with its file; if the underlying
// error is a *relational.FormatError the fault offset is lifted out.
func corruptErr(file string, err error) error {
	ce := &CorruptError{File: file, Err: err}
	var fe *relational.FormatError
	if errors.As(err, &fe) {
		ce.Offset = fe.Offset
	}
	return ce
}

// ManifestEntry describes one vehicle snapshot.
type ManifestEntry struct {
	ID   string `json:"id"`
	File string `json:"file"`
	// Fingerprint is the dataset's etl fingerprint as 16 hex digits —
	// the data half of forecast-cache keys. Load recomputes it from
	// the decoded snapshot and fails loudly on drift, which is what
	// makes a fingerprint read from the manifest trustworthy for cache
	// warm-starting.
	Fingerprint string `json:"fingerprint"`
	Days        int    `json:"days"`
	// AppliedSeq is the highest append-log sequence number already
	// folded into this snapshot; replay skips records at or below it.
	AppliedSeq uint64 `json:"applied_seq"`
}

// Manifest indexes a fleet directory.
type Manifest struct {
	FormatVersion int             `json:"format_version"`
	Vehicles      []ManifestEntry `json:"vehicles"`
}

// Entry returns the manifest entry for one vehicle ID.
func (m *Manifest) Entry(id string) (ManifestEntry, bool) {
	for _, e := range m.Vehicles {
		if e.ID == id {
			return e, true
		}
	}
	return ManifestEntry{}, false
}

// FingerprintOf returns one vehicle's recorded dataset fingerprint.
func (m *Manifest) FingerprintOf(id string) (uint64, bool) {
	e, ok := m.Entry(id)
	if !ok {
		return 0, false
	}
	fp, err := strconv.ParseUint(e.Fingerprint, 16, 64)
	if err != nil {
		return 0, false
	}
	return fp, true
}

// Dir is an open fleet directory.
type Dir struct {
	path string

	mu       sync.Mutex
	manifest *Manifest // last manifest read or written; nil before first Save/Load
	log      *os.File  // append handle, opened on first Append
	lastSeq  uint64    // highest sequence number present in the log
}

// Open prepares a fleet directory for use, creating it if needed. An
// existing manifest and append log are indexed (the log is fully
// parsed so appends continue the sequence); a torn or corrupt log
// fails here, loudly, rather than at the first append.
func Open(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("fstore: open %s: %w", path, err)
	}
	d := &Dir{path: path}
	m, err := d.readManifest()
	if err != nil && !errors.Is(err, ErrNoManifest) {
		return nil, err
	}
	d.manifest = m
	logPath := filepath.Join(path, logName)
	if data, err := os.ReadFile(logPath); err == nil && len(data) > 0 {
		recs, err := parseLog(data)
		if err != nil {
			return nil, corruptErr(logPath, err)
		}
		d.lastSeq = recs[len(recs)-1].seq
	} else if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("fstore: open %s: %w", logPath, err)
	}
	return d, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// Close releases the append-log handle, if open.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil {
		return nil
	}
	err := d.log.Close()
	d.log = nil
	return err
}

// snapshotFileName maps a vehicle ID to its snapshot file name:
// filesystem-safe bytes pass through, everything else is %XX
// percent-encoded (injective, so distinct IDs never collide).
func snapshotFileName(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String() + snapshotExt
}

// writeFileSync writes data to path atomically (temp file + rename)
// and fsyncs both the file and the directory.
func writeFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Save writes a full snapshot: one VUPD file per dataset, a fresh
// manifest, and an emptied append log (everything logged so far is,
// by contract, already reflected in the datasets — Save IS the log
// compaction). Snapshot files not referenced by the new manifest are
// removed. Not atomic across files: a crash mid-Save leaves a
// manifest/snapshot fingerprint disagreement that the next Load
// reports loudly instead of serving.
func (d *Dir) Save(datasets []*etl.VehicleDataset) (*Manifest, error) {
	start := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()

	sorted := append([]*etl.VehicleDataset(nil), datasets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].VehicleID < sorted[j].VehicleID })

	m := &Manifest{FormatVersion: DatasetFormatVersion}
	var bytesWritten int
	seen := map[string]bool{}
	for _, ds := range sorted {
		if seen[ds.VehicleID] {
			return nil, fmt.Errorf("%w: duplicate vehicle %q in Save", ErrMismatch, ds.VehicleID)
		}
		seen[ds.VehicleID] = true
		data, err := EncodeDataset(ds)
		if err != nil {
			return nil, err
		}
		name := snapshotFileName(ds.VehicleID)
		if err := writeFileSync(filepath.Join(d.path, name), data); err != nil {
			return nil, fmt.Errorf("fstore: save %q: %w", ds.VehicleID, err)
		}
		bytesWritten += len(data)
		m.Vehicles = append(m.Vehicles, ManifestEntry{
			ID:          ds.VehicleID,
			File:        name,
			Fingerprint: fmt.Sprintf("%016x", ds.Fingerprint()),
			Days:        ds.Len(),
		})
	}
	n, err := d.writeManifestLocked(m)
	if err != nil {
		return nil, err
	}
	bytesWritten += n

	// The new snapshots embody every logged day: drop the log and any
	// snapshot file the manifest no longer references.
	if d.log != nil {
		_ = d.log.Close()
		d.log = nil
	}
	if err := os.Remove(filepath.Join(d.path, logName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("fstore: truncate log: %w", err)
	}
	d.lastSeq = 0
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return nil, fmt.Errorf("fstore: sweep %s: %w", d.path, err)
	}
	referenced := map[string]bool{}
	for _, e := range m.Vehicles {
		referenced[e.File] = true
	}
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, snapshotExt) && !referenced[name] {
			if err := os.Remove(filepath.Join(d.path, name)); err != nil {
				return nil, fmt.Errorf("fstore: sweep %s: %w", name, err)
			}
		}
	}

	d.manifest = m
	snapshotBytes.With().Add(uint64(bytesWritten))
	snapshotSeconds.With().ObserveSince(start)
	return m, nil
}

// SaveVehicle snapshots a single vehicle — the Store.Put hook — and
// updates its manifest entry, marking every log record up to the
// current sequence as applied for that vehicle (the dataset being
// saved is the caller's live, fully-appended state).
func (d *Dir) SaveVehicle(ds *etl.VehicleDataset) error {
	start := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.manifest == nil {
		return fmt.Errorf("%w (run Save first)", ErrNoManifest)
	}
	data, err := EncodeDataset(ds)
	if err != nil {
		return err
	}
	name := snapshotFileName(ds.VehicleID)
	if err := writeFileSync(filepath.Join(d.path, name), data); err != nil {
		return fmt.Errorf("fstore: save %q: %w", ds.VehicleID, err)
	}
	entry := ManifestEntry{
		ID:          ds.VehicleID,
		File:        name,
		Fingerprint: fmt.Sprintf("%016x", ds.Fingerprint()),
		Days:        ds.Len(),
		AppliedSeq:  d.lastSeq,
	}
	m := &Manifest{FormatVersion: d.manifest.FormatVersion}
	replaced := false
	for _, e := range d.manifest.Vehicles {
		if e.ID == ds.VehicleID {
			m.Vehicles = append(m.Vehicles, entry)
			replaced = true
		} else {
			m.Vehicles = append(m.Vehicles, e)
		}
	}
	if !replaced {
		m.Vehicles = append(m.Vehicles, entry)
		sort.Slice(m.Vehicles, func(i, j int) bool { return m.Vehicles[i].ID < m.Vehicles[j].ID })
	}
	n, err := d.writeManifestLocked(m)
	if err != nil {
		return err
	}
	d.manifest = m
	snapshotBytes.With().Add(uint64(len(data) + n))
	snapshotSeconds.With().ObserveSince(start)
	return nil
}

func (d *Dir) writeManifestLocked(m *Manifest) (int, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("fstore: encode manifest: %w", err)
	}
	data = append(data, '\n')
	if err := writeFileSync(filepath.Join(d.path, manifestName), data); err != nil {
		return 0, fmt.Errorf("fstore: write manifest: %w", err)
	}
	return len(data), nil
}

func (d *Dir) readManifest() (*Manifest, error) {
	path := filepath.Join(d.path, manifestName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoManifest, d.path)
	}
	if err != nil {
		return nil, fmt.Errorf("fstore: read manifest: %w", err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, corruptErr(path, fmt.Errorf("%w: manifest: %v", relational.ErrCorrupt, err))
	}
	if m.FormatVersion != DatasetFormatVersion {
		return nil, corruptErr(path, fmt.Errorf("%w: manifest format_version %d, want %d", relational.ErrBadVersion, m.FormatVersion, DatasetFormatVersion))
	}
	return m, nil
}

// Manifest returns the directory's current manifest (nil before the
// first Save or Load).
func (d *Dir) Manifest() *Manifest {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.manifest
}

// Load cold-boots the fleet: reads the manifest, decodes every
// snapshot, verifies each dataset's recomputed fingerprint against
// the manifest (so a fingerprint read from the manifest is proof the
// bytes on disk still mean what they meant when cached artifacts were
// keyed on them), then replays unapplied append-log records and
// re-derives contexts. Datasets come back sorted by vehicle ID.
func (d *Dir) Load() ([]*etl.VehicleDataset, *Manifest, error) {
	start := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()

	m, err := d.readManifest()
	if err != nil {
		return nil, nil, err
	}
	datasets := make([]*etl.VehicleDataset, 0, len(m.Vehicles))
	byID := make(map[string]*etl.VehicleDataset, len(m.Vehicles))
	for _, e := range m.Vehicles {
		path := filepath.Join(d.path, e.File)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("fstore: load %q: %w", e.ID, err)
		}
		ds, err := DecodeDataset(data)
		if err != nil {
			return nil, nil, corruptErr(path, err)
		}
		if ds.VehicleID != e.ID {
			return nil, nil, corruptErr(path, fmt.Errorf("%w: snapshot is for vehicle %q, manifest says %q", ErrMismatch, ds.VehicleID, e.ID))
		}
		if got := fmt.Sprintf("%016x", ds.Fingerprint()); got != e.Fingerprint {
			return nil, nil, corruptErr(path, fmt.Errorf("%w: dataset fingerprint %s, manifest says %s", ErrMismatch, got, e.Fingerprint))
		}
		if ds.Len() != e.Days {
			return nil, nil, corruptErr(path, fmt.Errorf("%w: snapshot has %d days, manifest says %d", ErrMismatch, ds.Len(), e.Days))
		}
		if byID[e.ID] != nil {
			return nil, nil, corruptErr(filepath.Join(d.path, manifestName), fmt.Errorf("%w: duplicate manifest entry %q", ErrMismatch, e.ID))
		}
		datasets = append(datasets, ds)
		byID[e.ID] = ds
	}

	// Fold in the incremental days logged since each snapshot.
	logPath := filepath.Join(d.path, logName)
	replayed := 0
	if data, err := os.ReadFile(logPath); err == nil && len(data) > 0 {
		recs, err := parseLog(data)
		if err != nil {
			return nil, nil, corruptErr(logPath, err)
		}
		touched := map[string]bool{}
		for _, rec := range recs {
			ds := byID[rec.vehicleID]
			if ds == nil {
				return nil, nil, &CorruptError{File: logPath, Offset: rec.offset,
					Err: fmt.Errorf("%w: log record %d names unknown vehicle %q", ErrMismatch, rec.seq, rec.vehicleID)}
			}
			entry, _ := m.Entry(rec.vehicleID)
			if rec.seq <= entry.AppliedSeq {
				continue // already folded into the snapshot
			}
			if err := applyDays(ds, rec.days); err != nil {
				return nil, nil, &CorruptError{File: logPath, Offset: rec.offset, Err: err}
			}
			touched[rec.vehicleID] = true
			replayed++
		}
		for id := range touched {
			byID[id].Enrich()
			if err := byID[id].Validate(); err != nil {
				return nil, nil, fmt.Errorf("fstore: replayed dataset %q: %w", id, err)
			}
		}
		d.lastSeq = recs[len(recs)-1].seq
	} else if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("fstore: load %s: %w", logPath, err)
	}

	sort.Slice(datasets, func(i, j int) bool { return datasets[i].VehicleID < datasets[j].VehicleID })
	d.manifest = m
	logReplayed.With().Add(uint64(replayed))
	loadSeconds.With().ObserveSince(start)
	return datasets, m, nil
}

// Append durably logs incremental days for one vehicle: one framed,
// checksummed record, fsynced before return. The in-memory dataset is
// the caller's to update (ApplyDays); the next Load folds the record
// in, and the next Save compacts it away.
func (d *Dir) Append(vehicleID string, days ...Day) error {
	if vehicleID == "" {
		return fmt.Errorf("%w: empty vehicle id", ErrMismatch)
	}
	if len(days) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil {
		f, err := os.OpenFile(filepath.Join(d.path, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("fstore: open log: %w", err)
		}
		d.log = f
	}
	rec := encodeLogRecord(d.lastSeq+1, vehicleID, days)
	if _, err := d.log.Write(rec); err != nil {
		return fmt.Errorf("fstore: append: %w", err)
	}
	if err := d.log.Sync(); err != nil {
		return fmt.Errorf("fstore: append sync: %w", err)
	}
	d.lastSeq++
	logBytes.With().Add(uint64(len(rec)))
	return nil
}
