package fstore

// Lazy-load coverage: LoadVehicle must reproduce exactly what the
// eager Load would have produced for that vehicle (snapshot + its
// share of the append log), corruption of one vehicle's file must
// fail only that vehicle's load — never the manifest boot — and
// MaybeCompact must fold a long per-vehicle log backlog into the
// snapshot.

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"vup/internal/etl"
	"vup/internal/relational"
)

func TestVehicleIDs(t *testing.T) {
	dir, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if ids := dir.VehicleIDs(); ids != nil {
		t.Fatalf("VehicleIDs before any manifest = %v, want nil", ids)
	}

	datasets := genDatasets(t, 3, 40, 19)
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(datasets))
	for i, d := range datasets {
		want[i] = d.VehicleID
	}
	sort.Strings(want)
	if got := dir.VehicleIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("VehicleIDs after Save = %v, want %v", got, want)
	}

	// A fresh handle — the manifest-only boot path — sees the same
	// roster without decoding any snapshot.
	dir2, err := Open(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	if got := dir2.VehicleIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("VehicleIDs after reopen = %v, want %v", got, want)
	}
}

// appendMirrored logs a contiguous next day for d on dir and applies
// the same day to the in-memory copy, keeping d the ground truth.
func appendMirrored(t *testing.T, dir *Dir, d *etl.VehicleDataset, hours float64) {
	t.Helper()
	day := nextDay(d, hours)
	if err := dir.Append(d.VehicleID, day); err != nil {
		t.Fatal(err)
	}
	if err := ApplyDays(d, day); err != nil {
		t.Fatal(err)
	}
}

func TestLoadVehicleMatchesEagerLoad(t *testing.T) {
	datasets := genDatasets(t, 3, 90, 23)
	dir, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	// Leave an unapplied log backlog behind for two vehicles so
	// LoadVehicle has real replay work, not just a snapshot decode.
	for i := 0; i < 3; i++ {
		appendMirrored(t, dir, datasets[0], float64(i)+1)
	}
	appendMirrored(t, dir, datasets[1], 4.5)

	// Fresh handle, as a lazily booting server would hold: the eager
	// Load and per-vehicle LoadVehicle must agree dataset for dataset.
	dir2, err := Open(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	eager, _, err := dir2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(eager) != len(datasets) {
		t.Fatalf("eager Load returned %d datasets, want %d", len(eager), len(datasets))
	}
	// LoadVehicle on yet another cold handle, so neither path warms
	// the other.
	dir3, err := Open(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range eager {
		got, err := dir3.LoadVehicle(want.VehicleID)
		if err != nil {
			t.Fatalf("LoadVehicle(%q): %v", want.VehicleID, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: LoadVehicle differs from eager Load", want.VehicleID)
		}
		if want.Fingerprint() != got.Fingerprint() {
			t.Errorf("%s: fingerprint drifted between load paths", want.VehicleID)
		}
	}
	// And both must equal the live in-memory datasets the appends were
	// mirrored onto.
	for _, want := range datasets {
		got, err := dir3.LoadVehicle(want.VehicleID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: LoadVehicle does not reproduce the live dataset", want.VehicleID)
		}
	}
}

func TestLoadVehicleErrors(t *testing.T) {
	empty, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.LoadVehicle("V0001"); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("LoadVehicle on empty dir: %v, want ErrNoManifest", err)
	}

	datasets := genDatasets(t, 1, 30, 29)
	dir, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.LoadVehicle("no-such-vehicle"); !errors.Is(err, ErrUnknownVehicle) {
		t.Fatalf("LoadVehicle of unmanifested vehicle: %v, want ErrUnknownVehicle", err)
	}
}

// TestLoadVehicleCorruptIsolated proves that per-vehicle files are the
// unit of residency AND of failure: one rotten snapshot fails only
// that vehicle's lazy load, while the manifest boot and every other
// vehicle keep working. (The eager Load, by contrast, refuses the
// whole directory.)
func TestLoadVehicleCorruptIsolated(t *testing.T) {
	datasets := genDatasets(t, 3, 60, 37)
	dir, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	bad := datasets[1].VehicleID
	badFile := snapshotFileName(bad)
	full, err := os.ReadFile(filepath.Join(dir.Path(), badFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir.Path(), badFile), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Manifest-only boot still succeeds and lists all three vehicles.
	dir2, err := Open(dir.Path())
	if err != nil {
		t.Fatalf("Open with one corrupt snapshot: %v (boot must not decode snapshots)", err)
	}
	if got := len(dir2.VehicleIDs()); got != 3 {
		t.Fatalf("roster lists %d vehicles, want 3", got)
	}

	if _, err = dir2.LoadVehicle(bad); err == nil {
		t.Fatalf("LoadVehicle(%q) on corrupt snapshot succeeded", bad)
	} else {
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("corrupt load error %v is not a *CorruptError", err)
		}
		if !errors.Is(err, relational.ErrTruncated) {
			t.Fatalf("corrupt load error %v is not ErrTruncated", err)
		}
	}
	for _, d := range []*etl.VehicleDataset{datasets[0], datasets[2]} {
		got, err := dir2.LoadVehicle(d.VehicleID)
		if err != nil {
			t.Fatalf("healthy vehicle %q failed to load next to a corrupt one: %v", d.VehicleID, err)
		}
		if got.Fingerprint() != d.Fingerprint() {
			t.Errorf("%s: fingerprint drifted", d.VehicleID)
		}
	}
}

func TestMaybeCompact(t *testing.T) {
	datasets := genDatasets(t, 2, 50, 41)
	dir, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	d := datasets[0]
	for i := 0; i < 4; i++ {
		appendMirrored(t, dir, d, float64(i)+1)
	}
	if got := dir.PendingRecords(d.VehicleID); got != 4 {
		t.Fatalf("pending backlog = %d records, want 4", got)
	}

	// Below threshold: no-op.
	if did, err := dir.MaybeCompact(d, 5); err != nil || did {
		t.Fatalf("MaybeCompact under threshold = (%v, %v), want (false, nil)", did, err)
	}
	if got := dir.PendingRecords(d.VehicleID); got != 4 {
		t.Fatalf("no-op compaction changed backlog to %d", got)
	}
	// Disabled: threshold 0 never compacts.
	if did, err := dir.MaybeCompact(d, 0); err != nil || did {
		t.Fatalf("MaybeCompact with threshold 0 = (%v, %v), want (false, nil)", did, err)
	}

	// At threshold: the dataset is re-snapshotted and the backlog is
	// spent, while the other vehicle's pending state is untouched.
	appendMirrored(t, dir, datasets[1], 2.5)
	if did, err := dir.MaybeCompact(d, 4); err != nil || !did {
		t.Fatalf("MaybeCompact at threshold = (%v, %v), want (true, nil)", did, err)
	}
	if got := dir.PendingRecords(d.VehicleID); got != 0 {
		t.Fatalf("backlog after compaction = %d records, want 0", got)
	}
	if got := dir.PendingRecords(datasets[1].VehicleID); got != 1 {
		t.Fatalf("other vehicle's backlog = %d records, want 1", got)
	}

	// A cold reopen reproduces both vehicles exactly: one from its
	// fresh snapshot, one from snapshot + surviving log records.
	dir2, err := Open(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range datasets {
		got, err := dir2.LoadVehicle(want.VehicleID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: dataset differs after compaction round-trip", want.VehicleID)
		}
	}
}
