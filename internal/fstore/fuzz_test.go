package fstore

// Fuzz contract mirroring internal/relational: the decoders never
// panic, every rejection is a *relational.FormatError with an offset
// inside the input, and every accepted input round-trips.

import (
	"errors"
	"testing"
	"time"

	"vup/internal/relational"
)

func FuzzDecodeDataset(f *testing.F) {
	datasets := genDatasets(f, 2, 21, 10)
	for _, d := range datasets {
		enc, err := EncodeDataset(d)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte("VUPD"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDataset(data)
		if err != nil {
			var fe *relational.FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("rejection is not a *FormatError: %v", err)
			}
			if fe.Offset < 0 || fe.Offset > int64(len(data)) {
				t.Fatalf("fault offset %d outside input of %d bytes", fe.Offset, len(data))
			}
			return
		}
		// Accepted input: must re-encode and decode to the same
		// fingerprint.
		enc, err := EncodeDataset(d)
		if err != nil {
			t.Fatalf("accepted dataset does not re-encode: %v", err)
		}
		d2, err := DecodeDataset(enc)
		if err != nil {
			t.Fatalf("re-encoded dataset does not decode: %v", err)
		}
		if d.Fingerprint() != d2.Fingerprint() {
			t.Fatalf("fingerprint drift across re-encode: %016x vs %016x", d.Fingerprint(), d2.Fingerprint())
		}
	})
}

func FuzzParseLog(f *testing.F) {
	day := Day{
		Date:     time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC),
		Hours:    3.5,
		Observed: true,
		Channels: map[string]float64{"fuel_rate": 1.25, "rpm": 900},
	}
	rec1 := encodeLogRecord(1, "veh-0001", []Day{day})
	rec2 := encodeLogRecord(2, "veh-0002", nil)
	f.Add(rec1)
	f.Add(append(append([]byte{}, rec1...), rec2...))
	f.Add([]byte{})
	f.Add(rec1[:len(rec1)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := parseLog(data)
		if err != nil {
			var fe *relational.FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("rejection is not a *FormatError: %v", err)
			}
			if fe.Offset < 0 || fe.Offset > int64(len(data)) {
				t.Fatalf("fault offset %d outside input of %d bytes", fe.Offset, len(data))
			}
			return
		}
		// Accepted log: re-encoding every record must reproduce the
		// input byte-for-byte (the framing is canonical).
		var rebuilt []byte
		for _, rec := range recs {
			rebuilt = append(rebuilt, encodeLogRecord(rec.seq, rec.vehicleID, rec.days)...)
		}
		if len(rebuilt) != len(data) {
			t.Fatalf("re-encoded log is %d bytes, input was %d", len(rebuilt), len(data))
		}
		for i := range rebuilt {
			if rebuilt[i] != data[i] {
				t.Fatalf("re-encoded log differs at byte %d", i)
			}
		}
	})
}
