package fstore

import "vup/internal/obs"

// Persistence telemetry, registered on the process-wide registry so
// vup-server's GET /metrics exposes it next to the serving and
// pipeline metrics. Counters measure durable bytes and replay volume;
// the histograms time the two operator-visible paths (snapshot write,
// cold-boot load).
var (
	snapshotBytes = obs.Default.Counter(
		"fstore_snapshot_bytes_total",
		"Bytes written to vehicle snapshot files and the manifest.")
	logBytes = obs.Default.Counter(
		"fstore_log_bytes_total",
		"Bytes appended to the incremental-day log.")
	snapshotSeconds = obs.Default.Histogram(
		"fstore_snapshot_seconds",
		"Wall-clock time of snapshot writes (full Save or one-vehicle).",
		obs.DurationBuckets)
	loadSeconds = obs.Default.Histogram(
		"fstore_load_seconds",
		"Wall-clock time of fleet-directory loads (cold boot).",
		obs.DurationBuckets)
	logReplayed = obs.Default.Counter(
		"fstore_log_records_replayed_total",
		"Append-log records folded into datasets during Load.")
	lazyLoads = obs.Default.Counter(
		"fstore_lazy_loads_total",
		"Single-vehicle snapshot loads via LoadVehicle (lazy faults).")
	lazyLoadSeconds = obs.Default.Histogram(
		"fstore_lazy_load_seconds",
		"Wall-clock time of single-vehicle lazy loads.",
		obs.DurationBuckets)
	compactions = obs.Default.Counter(
		"fstore_compactions_total",
		"Per-vehicle append-log backlogs folded into snapshots by MaybeCompact.")
)
