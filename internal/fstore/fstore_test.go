package fstore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/randx"
)

// genDatasets builds n real datasets through the generator + ETL path.
func genDatasets(t testing.TB, n, days int, seed int64) []*etl.VehicleDataset {
	t.Helper()
	f, err := fleet.Generate(fleet.Config{Units: n, Days: days, Seed: seed, Start: fleet.StudyStart})
	if err != nil {
		t.Fatal(err)
	}
	usage := f.SimulateAll()
	rng := randx.New(seed + 1)
	var out []*etl.VehicleDataset
	for _, u := range f.Units {
		d, err := etl.FromUsage(u, usage[u.Vehicle.ID], rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

func TestDatasetEncodeDecodeRoundTrip(t *testing.T) {
	for _, d := range genDatasets(t, 3, 120, 7) {
		data, err := EncodeDataset(d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeDataset(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", d.VehicleID, err)
		}
		if !reflect.DeepEqual(d, got) {
			t.Errorf("%s: decoded dataset not DeepEqual to original", d.VehicleID)
		}
		if d.Fingerprint() != got.Fingerprint() {
			t.Errorf("%s: fingerprint changed across round-trip: %016x vs %016x",
				d.VehicleID, d.Fingerprint(), got.Fingerprint())
		}
	}
}

func TestDatasetRoundTripExplicitDates(t *testing.T) {
	d := genDatasets(t, 1, 60, 3)[0]
	// A Subset view has explicit, non-contiguous dates — the case the
	// explicit-dates flag exists for.
	idx := make([]int, 0, d.Len()/2)
	for i := 0; i < d.Len(); i += 2 {
		idx = append(idx, i)
	}
	sub, err := d.Subset(idx)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeDataset(sub)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dates == nil {
		t.Fatal("explicit dates lost in round-trip")
	}
	if !reflect.DeepEqual(sub, got) {
		t.Error("subset dataset not DeepEqual after round-trip")
	}
	if sub.Fingerprint() != got.Fingerprint() {
		t.Error("subset fingerprint changed across round-trip")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	datasets := genDatasets(t, 4, 150, 11)
	dir, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := dir.Save(datasets)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Vehicles) != len(datasets) {
		t.Fatalf("manifest lists %d vehicles, want %d", len(m.Vehicles), len(datasets))
	}

	// A fresh handle, as a restarted process would hold.
	dir2, err := Open(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	loaded, m2, err := dir2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(datasets) {
		t.Fatalf("loaded %d datasets, want %d", len(loaded), len(datasets))
	}
	byID := map[string]*etl.VehicleDataset{}
	for _, d := range datasets {
		byID[d.VehicleID] = d
	}
	for _, got := range loaded {
		want := byID[got.VehicleID]
		if want == nil {
			t.Fatalf("loaded unknown vehicle %q", got.VehicleID)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: loaded dataset differs from saved", got.VehicleID)
		}
		// The warm-start contract: fingerprints survive the disk
		// round-trip bit-for-bit, so cache keys derived before the
		// restart still name the loaded data.
		if want.Fingerprint() != got.Fingerprint() {
			t.Errorf("%s: fingerprint drifted across save/load", got.VehicleID)
		}
		if fp, ok := m2.FingerprintOf(got.VehicleID); !ok || fp != got.Fingerprint() {
			t.Errorf("%s: manifest fingerprint %016x, dataset %016x", got.VehicleID, fp, got.Fingerprint())
		}
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	datasets := genDatasets(t, 2, 90, 5)
	d1, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d1.Save(datasets); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Save(datasets); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{manifestName, snapshotFileName(datasets[0].VehicleID)} {
		a, err := os.ReadFile(filepath.Join(d1.Path(), name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(d2.Path(), name))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two saves of the same fleet differ", name)
		}
	}
}

func TestLoadEmptyDirReturnsErrNoManifest(t *testing.T) {
	dir, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dir.Load(); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("Load on empty dir: %v, want ErrNoManifest", err)
	}
}

// nextDay builds the Day record that extends d contiguously by one
// calendar day.
func nextDay(d *etl.VehicleDataset, hours float64) Day {
	ch := make(map[string]float64, len(d.Channels))
	for name := range d.Channels {
		ch[name] = hours / 2
	}
	return Day{
		Date:     d.Date(d.Len()-1).AddDate(0, 0, 1),
		Hours:    hours,
		Observed: true,
		Channels: ch,
	}
}

func TestAppendReplay(t *testing.T) {
	datasets := genDatasets(t, 2, 80, 13)
	dir, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}

	// Log three incremental days for vehicle 0 and one for vehicle 1,
	// mirroring them onto the in-memory copies.
	want0, want1 := datasets[0], datasets[1]
	for i := 0; i < 3; i++ {
		day := nextDay(want0, float64(i)+1)
		if err := dir.Append(want0.VehicleID, day); err != nil {
			t.Fatal(err)
		}
		if err := ApplyDays(want0, day); err != nil {
			t.Fatal(err)
		}
	}
	day := nextDay(want1, 4.5)
	if err := dir.Append(want1.VehicleID, day); err != nil {
		t.Fatal(err)
	}
	if err := ApplyDays(want1, day); err != nil {
		t.Fatal(err)
	}

	dir2, err := Open(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	loaded, _, err := dir2.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []*etl.VehicleDataset{want0, want1} {
		got := loaded[i]
		if got.VehicleID != want.VehicleID {
			// Load sorts by ID; map instead of assuming order.
			for _, l := range loaded {
				if l.VehicleID == want.VehicleID {
					got = l
				}
			}
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: snapshot+log replay does not reproduce the live dataset", want.VehicleID)
		}
	}
}

func TestSaveCompactsLog(t *testing.T) {
	datasets := genDatasets(t, 1, 70, 17)
	dir, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	day := nextDay(datasets[0], 2.5)
	if err := dir.Append(datasets[0].VehicleID, day); err != nil {
		t.Fatal(err)
	}
	if err := ApplyDays(datasets[0], day); err != nil {
		t.Fatal(err)
	}
	// Save again with the appended state: the log must be gone and the
	// reload must still see the appended day, exactly once.
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir.Path(), logName)); !os.IsNotExist(err) {
		t.Errorf("append log survived compaction: %v", err)
	}
	loaded, _, err := dir.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(datasets[0], loaded[0]) {
		t.Error("compacted state differs from live dataset")
	}
}

func TestSaveVehicleMarksLogApplied(t *testing.T) {
	datasets := genDatasets(t, 2, 60, 19)
	dir, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	day := nextDay(datasets[0], 3.25)
	if err := dir.Append(datasets[0].VehicleID, day); err != nil {
		t.Fatal(err)
	}
	if err := ApplyDays(datasets[0], day); err != nil {
		t.Fatal(err)
	}
	// Snapshot the appended vehicle: its manifest entry now marks the
	// log record as applied, so replay must not double-append it.
	if err := dir.SaveVehicle(datasets[0]); err != nil {
		t.Fatal(err)
	}
	dir2, err := Open(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	loaded, _, err := dir2.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range loaded {
		for _, want := range datasets {
			if want.VehicleID == got.VehicleID && !reflect.DeepEqual(want, got) {
				t.Errorf("%s: SaveVehicle + replay diverged from live dataset (double-applied record?)", got.VehicleID)
			}
		}
	}
}

func TestApplyDaysRejectsChannelDrift(t *testing.T) {
	d := genDatasets(t, 1, 50, 23)[0]
	day := nextDay(d, 1)
	day.Channels["bogus_channel"] = 1
	if err := ApplyDays(d, day); !errors.Is(err, ErrMismatch) {
		t.Fatalf("channel-set drift: %v, want ErrMismatch", err)
	}
}

func TestApplyDaysNonContiguousMaterializesDates(t *testing.T) {
	d := genDatasets(t, 1, 40, 29)[0]
	if d.Dates != nil {
		t.Fatal("generated dataset unexpectedly has explicit dates")
	}
	day := nextDay(d, 1)
	day.Date = day.Date.AddDate(0, 0, 5) // skip five days
	if err := ApplyDays(d, day); err != nil {
		t.Fatal(err)
	}
	if d.Dates == nil {
		t.Fatal("gap append must materialize explicit dates")
	}
	if got := d.Date(d.Len() - 1); !got.Equal(day.Date) {
		t.Errorf("last date %v, want %v", got, day.Date)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFileNameSafety(t *testing.T) {
	cases := map[string]string{
		"veh-0001":   "veh-0001.vds",
		"a/b":        "a%2Fb.vds",
		"..":         "...vds", // dots are safe: the name never becomes a path traversal on its own
		"x y%":       "x%20y%25.vds",
		"veh_1.2-3Z": "veh_1.2-3Z.vds",
	}
	for id, want := range cases {
		if got := snapshotFileName(id); got != want {
			t.Errorf("snapshotFileName(%q) = %q, want %q", id, got, want)
		}
	}
}

func TestManifestFingerprintParse(t *testing.T) {
	m := &Manifest{Vehicles: []ManifestEntry{{ID: "v", Fingerprint: "00000000deadbeef"}}}
	fp, ok := m.FingerprintOf("v")
	if !ok || fp != 0xdeadbeef {
		t.Fatalf("FingerprintOf = %x, %v", fp, ok)
	}
	if _, ok := m.FingerprintOf("missing"); ok {
		t.Fatal("FingerprintOf on missing vehicle returned ok")
	}
}
