package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vup/internal/obs"
)

// Pool telemetry: every job executed through ForEach/Map lands in
// these families, labeled by the caller-supplied stage (an experiment
// id such as "fig5b", or a pipeline stage such as "fleet_simulate").
// The per-stage wall-clock histogram is the raw material for the
// Section 4.5 speedup column: sum(sweep_job_seconds) over a stage is
// the sequential cost, the observed wall-clock is the parallel cost.
var (
	jobsInFlight = obs.Default.Gauge(
		"sweep_jobs_in_flight",
		"Jobs currently executing in bounded worker pools, by stage.",
		"stage")
	jobSeconds = obs.Default.Histogram(
		"sweep_job_seconds",
		"Per-job wall-clock time in bounded worker pools, by stage.",
		obs.DurationBuckets, "stage")
)

// Options bounds and labels one fan-out.
type Options struct {
	// Workers caps the number of concurrently executing jobs. Values
	// <= 0 select runtime.NumCPU(). Workers=1 degenerates to a strictly
	// sequential in-order loop, which is the reference the determinism
	// tests compare parallel runs against.
	Workers int
	// Stage labels the pool's telemetry (sweep_jobs_in_flight,
	// sweep_job_seconds). Empty defaults to "pool".
	Stage string
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	return w
}

func (o Options) stage() string {
	if o.Stage == "" {
		return "pool"
	}
	return o.Stage
}

// ForEach runs fn(ctx, i) for every i in [0, n) on a bounded worker
// pool and blocks until all started jobs have returned.
//
// Contract:
//
//   - Jobs are handed out in index order; with Workers=1 the execution
//     order is exactly 0..n-1.
//   - fn must write any output it produces into pre-sized storage at
//     index i (never append from inside fn): results then assemble in
//     index order regardless of completion order, which is what keeps
//     Workers=1 and Workers=N byte-identical downstream.
//   - Any source of randomness must be derived (e.g. randx.Split) in a
//     fixed order before calling ForEach and passed in by index; fn
//     must not draw from a shared RNG.
//   - The first job error (lowest index among jobs that ran) cancels
//     the pool's context and is returned; jobs not yet started are
//     skipped. Errors that should not abort the fan-out (e.g. a
//     vehicle with too little data) must be recorded by index and nil
//     returned.
//   - A cancelled ctx stops the hand-out and returns ctx.Err() if no
//     job error occurred first.
func ForEach(ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := opts.workers(n)
	stage := opts.stage()
	inFlight := jobsInFlight.With(stage)
	seconds := jobSeconds.With(stage)

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || ctx.Err() != nil {
					return
				}
				inFlight.Inc()
				start := time.Now()
				err := fn(ctx, i)
				seconds.Observe(time.Since(start).Seconds())
				inFlight.Dec()
				if err != nil {
					errs[i] = err
					failed.Store(true)
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return ctx.Err()
}

// Map runs fn(ctx, i) for every i in [0, n) on a bounded worker pool
// and returns the results in index order. The ForEach contract applies;
// on error the partial results are discarded.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, opts, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
