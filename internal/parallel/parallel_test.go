package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"vup/internal/obs"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		seen := make([]int32, n)
		err := ForEach(context.Background(), n, Options{Workers: workers}, func(_ context.Context, i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 0, Options{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	err := ForEach(context.Background(), 50, Options{Workers: workers}, func(_ context.Context, i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d > workers %d", p, workers)
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	err := ForEach(context.Background(), 20, Options{Workers: 1}, func(_ context.Context, i int) error {
		order = append(order, i) // safe: Workers=1 is a sequential loop
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

func TestForEachErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(context.Background(), 1000, Options{Workers: 2}, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("error did not cancel the hand-out: %d jobs ran", n)
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	// With a sequential pool the error surfaced must be the lowest
	// failing index, regardless of how many jobs fail.
	err := ForEach(context.Background(), 10, Options{Workers: 1}, func(_ context.Context, i int) error {
		if i >= 4 {
			return fmt.Errorf("job %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "job 4" {
		t.Fatalf("err = %v, want job 4", err)
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 1000, Options{Workers: 2}, func(_ context.Context, i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("cancellation did not stop the hand-out: %d jobs ran", n)
	}
}

func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		out, err := Map(context.Background(), 64, Options{Workers: workers}, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(context.Background(), 8, Options{Workers: 2}, func(_ context.Context, i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) || out != nil {
		t.Fatalf("out = %v, err = %v", out, err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	o := Options{}
	if got := o.workers(1 << 30); got != runtime.NumCPU() {
		t.Errorf("default workers = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := o.workers(2); got != min(2, runtime.NumCPU()) {
		t.Errorf("workers not capped by n: %d", got)
	}
	o.Workers = 5
	if got := o.workers(100); got != 5 {
		t.Errorf("explicit workers = %d", got)
	}
}

func TestPoolMetrics(t *testing.T) {
	const stage = "parallel_test_metrics"
	err := ForEach(context.Background(), 17, Options{Workers: 4, Stage: stage}, func(_ context.Context, i int) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	families := obs.Default.Gather()
	s, ok := obs.FindSample(families, "sweep_job_seconds", obs.Label{Name: "stage", Value: stage})
	if !ok {
		t.Fatal("sweep_job_seconds sample missing")
	}
	if s.Count != 17 {
		t.Errorf("job count = %d, want 17", s.Count)
	}
	g, ok := obs.FindSample(families, "sweep_jobs_in_flight", obs.Label{Name: "stage", Value: stage})
	if !ok {
		t.Fatal("sweep_jobs_in_flight sample missing")
	}
	if g.Value != 0 {
		t.Errorf("jobs in flight after pool drained = %v", g.Value)
	}
}
