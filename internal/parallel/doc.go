// Package parallel is the sweep engine behind the paper's evaluation
// campaign: a bounded worker pool with context cancellation,
// first-error propagation and order-preserving result collection.
//
// The campaign of Section 4 (Figures 4-6 and the Section 4.5 timing
// table) is an embarrassingly parallel fan-out — per-vehicle ×
// per-algorithm × per-grid-point runs of the same rolling-window
// evaluation — and every one of those fan-outs runs through [ForEach]
// or [Map]: the per-vehicle loop of [vup/internal/core.EvaluateFleet],
// the per-unit simulation of the [vup/internal/fleet] generator, and
// the per-algorithm and per-search loops of
// [vup/internal/experiments].
//
// Determinism is the design constraint, not throughput: a parallel run
// must be byte-identical to the sequential one. The rules that make
// that hold (RNG streams split in a fixed pre-fan-out order, results
// written into pre-sized slices by index, deterministic aggregation
// after the barrier) are stated on [ForEach] and enforced by the
// determinism tests in vup/internal/experiments, which compare
// Workers=1 against Workers=4 reports.
//
// Every job is measured: the pool feeds the sweep_jobs_in_flight gauge
// and the per-stage sweep_job_seconds histogram of
// [vup/internal/obs], giving the Section 4.5 analysis a live
// sequential-cost-vs-wall-clock speedup signal.
package parallel
