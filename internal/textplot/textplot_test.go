package textplot

import (
	"strings"
	"testing"

	"vup/internal/stats"
)

func TestLinePlotBasic(t *testing.T) {
	out := LinePlot("test plot", []Line{
		{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	}, 40, 10)
	if !strings.HasPrefix(out, "test plot\n") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("missing markers:\n%s", out)
	}
	// 10 grid rows.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			rows++
		}
	}
	if rows != 10 {
		t.Errorf("grid rows = %d", rows)
	}
}

func TestLinePlotEmpty(t *testing.T) {
	out := LinePlot("empty", nil, 40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty plot = %q", out)
	}
	// Mismatched lengths are skipped.
	out = LinePlot("bad", []Line{{Name: "x", X: []float64{1}, Y: []float64{1, 2}}}, 40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("mismatched plot = %q", out)
	}
}

func TestLinePlotDegenerate(t *testing.T) {
	// Single point and constant series must not divide by zero.
	out := LinePlot("point", []Line{{Name: "p", X: []float64{1}, Y: []float64{5}}}, 5, 2)
	if !strings.Contains(out, "p") {
		t.Errorf("point plot = %q", out)
	}
	out = LinePlot("flat", []Line{{Name: "f", X: []float64{1, 2}, Y: []float64{3, 3}}}, 40, 5)
	if out == "" {
		t.Error("flat plot empty")
	}
}

func TestLinePlotCustomMarker(t *testing.T) {
	out := LinePlot("m", []Line{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}, Marker: 'Z'}}, 30, 6)
	if !strings.Contains(out, "Z") {
		t.Errorf("custom marker missing:\n%s", out)
	}
}

func TestCDFPlot(t *testing.T) {
	out := CDFPlot("cdf", map[string][]float64{
		"a": {1, 2, 3, 4},
		"b": {2, 4, 6, 8},
	}, 40, 8)
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("missing legend:\n%s", out)
	}
	// Deterministic: two renders identical.
	if out != CDFPlot("cdf", map[string][]float64{"a": {1, 2, 3, 4}, "b": {2, 4, 6, 8}}, 40, 8) {
		t.Error("CDFPlot not deterministic")
	}
	// Empty sample skipped without crashing.
	out = CDFPlot("cdf", map[string][]float64{"empty": {}}, 40, 8)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty CDF = %q", out)
	}
}

func TestBoxStrip(t *testing.T) {
	b1, err := stats.Box([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := stats.Box([]float64{1, 2, 3, 4, 100})
	if err != nil {
		t.Fatal(err)
	}
	out := BoxStrip("boxes", []string{"clean", "outlier"}, []stats.BoxStats{b1, b2}, 50)
	if !strings.Contains(out, "clean") || !strings.Contains(out, "outlier") {
		t.Errorf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "M") {
		t.Errorf("median marker missing:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Errorf("outlier marker missing:\n%s", out)
	}
	if !strings.Contains(out, "=") {
		t.Errorf("box body missing:\n%s", out)
	}
}

func TestBoxStripEmptyAndMismatch(t *testing.T) {
	if out := BoxStrip("x", nil, nil, 40); !strings.Contains(out, "(no data)") {
		t.Errorf("empty = %q", out)
	}
	b, _ := stats.Box([]float64{1})
	if out := BoxStrip("x", []string{"a", "b"}, []stats.BoxStats{b}, 40); !strings.Contains(out, "(no data)") {
		t.Errorf("mismatch = %q", out)
	}
}

func TestBoxStripConstant(t *testing.T) {
	b, _ := stats.Box([]float64{5, 5, 5})
	out := BoxStrip("const", []string{"c"}, []stats.BoxStats{b}, 40)
	if !strings.Contains(out, "M") {
		t.Errorf("constant box:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("hist", []string{"LV", "SVR"}, []float64{40, 20}, 20)
	if !strings.Contains(out, "LV") || !strings.Contains(out, "SVR") {
		t.Errorf("labels missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// The LV bar must be about twice the SVR bar.
	lv := strings.Count(lines[1], "#")
	svr := strings.Count(lines[2], "#")
	if lv != 20 || svr != 10 {
		t.Errorf("bars = %d / %d:\n%s", lv, svr, out)
	}
	if !strings.Contains(out, "40.00") {
		t.Errorf("values missing:\n%s", out)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if out := Histogram("h", nil, nil, 20); !strings.Contains(out, "(no data)") {
		t.Errorf("empty = %q", out)
	}
	out := Histogram("h", []string{"z"}, []float64{0}, 20)
	if strings.Contains(out, "#") {
		t.Errorf("zero bar drew marks:\n%s", out)
	}
	// Negative values clamp to zero-length bars.
	out = Histogram("h", []string{"n", "p"}, []float64{-5, 5}, 20)
	if !strings.Contains(out, "-5.00") {
		t.Errorf("negative value missing:\n%s", out)
	}
}
