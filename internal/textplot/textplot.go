// Package textplot renders the study's figures as ASCII charts for
// terminal output: line plots (series, ACF, parameter sweeps), CDF
// step plots and box-plot strips. The renderers are deterministic so
// experiment output can be diffed across runs.
package textplot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vup/internal/stats"
)

// Line renders one named series of a line plot.
type Line struct {
	Name   string
	X, Y   []float64
	Marker rune
}

// defaultMarkers cycles when a line has no explicit marker.
var defaultMarkers = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// LinePlot renders the lines into a width×height character grid with
// axis labels. Lines with mismatched X/Y lengths or no points are
// skipped. The returned string ends with a newline.
func LinePlot(title string, lines []Line, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	// Collect bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	valid := lines[:0:0]
	for _, l := range lines {
		if len(l.X) == 0 || len(l.X) != len(l.Y) {
			continue
		}
		valid = append(valid, l)
		for i := range l.X {
			xmin = math.Min(xmin, l.X[i])
			xmax = math.Max(xmax, l.X[i])
			ymin = math.Min(ymin, l.Y[i])
			ymax = math.Max(ymax, l.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(valid) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin { //lint:allow floatsafety degenerate axis guard; equal bounds widen the range
		xmax = xmin + 1
	}
	if ymax == ymin { //lint:allow floatsafety degenerate axis guard; equal bounds widen the range
		ymax = ymin + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for li, l := range valid {
		marker := l.Marker
		if marker == 0 {
			marker = defaultMarkers[li%len(defaultMarkers)]
		}
		for i := range l.X {
			col := int(math.Round((l.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((ymax - l.Y[i]) / (ymax - ymin) * float64(height-1)))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = marker
			}
		}
	}
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.2f", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.2f", ymin)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%8s  %-*.2f%*.2f\n", "", width/2, xmin, width-width/2, xmax)
	// Legend.
	for li, l := range valid {
		marker := l.Marker
		if marker == 0 {
			marker = defaultMarkers[li%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "  %c %s\n", marker, l.Name)
	}
	return b.String()
}

// CDFPlot renders empirical CDFs (one per named sample) as a line
// plot of F(x) against x.
func CDFPlot(title string, samples map[string][]float64, width, height int) string {
	lines := make([]Line, 0, len(samples))
	// Deterministic order: sort names.
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		e := stats.NewECDF(samples[name])
		if e == nil {
			continue
		}
		xs, fs := e.Points()
		lines = append(lines, Line{Name: name, X: xs, Y: fs})
	}
	return LinePlot(title, lines, width, height)
}

// BoxStrip renders one box plot per labelled sample as a horizontal
// strip: min/whiskers/quartiles/median/max mapped onto a shared axis.
func BoxStrip(title string, labels []string, boxes []stats.BoxStats, width int) string {
	if width < 30 {
		width = 30
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(labels) != len(boxes) || len(boxes) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, box := range boxes {
		lo = math.Min(lo, box.Min)
		hi = math.Max(hi, box.Max)
	}
	if hi == lo { //lint:allow floatsafety degenerate axis guard; equal bounds widen the range
		hi = lo + 1
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	pos := func(v float64) int {
		p := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	for i, box := range boxes {
		row := []rune(strings.Repeat(" ", width))
		for c := pos(box.WhiskLo); c <= pos(box.WhiskHi); c++ {
			row[c] = '-'
		}
		for c := pos(box.Q1); c <= pos(box.Q3); c++ {
			row[c] = '='
		}
		row[pos(box.Median)] = 'M'
		for _, o := range box.Outliers {
			row[pos(o)] = '+'
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelWidth, labels[i], string(row))
	}
	fmt.Fprintf(&b, "%-*s  %-*.2f%*.2f\n", labelWidth, "", width/2, lo, width-width/2, hi)
	return b.String()
}

// Histogram renders a vertical-bar frequency chart of per-bin counts.
func Histogram(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(labels) != len(values) || len(values) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	maxVal := math.Inf(-1)
	labelWidth := 0
	for i, v := range values {
		maxVal = math.Max(maxVal, v)
		if len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	for i, v := range values {
		n := int(math.Round(v / maxVal * float64(width)))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s |%s %.2f\n", labelWidth, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

func sortStrings(s []string) { sort.Strings(s) }
