package classify

import (
	"errors"
	"math"
	"testing"

	"vup/internal/canbus"
	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/randx"
)

func TestLevelOf(t *testing.T) {
	cases := []struct {
		hours float64
		want  Level
	}{
		{0, Idle}, {0.9, Idle}, {1, Light}, {3.9, Light},
		{4, Regular}, {7.9, Regular}, {8, Heavy}, {24, Heavy},
	}
	for _, c := range cases {
		if got := LevelOf(c.hours); got != c.want {
			t.Errorf("LevelOf(%v) = %v, want %v", c.hours, got, c.want)
		}
	}
}

func TestLevelString(t *testing.T) {
	if Idle.String() != "idle" || Light.String() != "light" ||
		Regular.String() != "regular" || Heavy.String() != "heavy" {
		t.Error("level names wrong")
	}
	if Level(9).String() != "level(9)" {
		t.Error("invalid level name wrong")
	}
}

func TestMajority(t *testing.T) {
	m := NewMajority()
	if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("want ErrNotTrained, got %v", err)
	}
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []int{2, 1, 2, 0}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Predict([]float64{9}); got != 2 {
		t.Errorf("majority = %d", got)
	}
	// Tie breaks toward smaller label.
	tie := NewMajority()
	tie.Fit([][]float64{{1}, {2}}, []int{3, 1})
	if got, _ := tie.Predict([]float64{0}); got != 1 {
		t.Errorf("tie-break = %d", got)
	}
	if _, err := m.Predict([]float64{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Errorf("want ErrBadShape, got %v", err)
	}
	if m.Name() != "Majority" {
		t.Error("name wrong")
	}
}

func TestCheckXYErrors(t *testing.T) {
	cases := []struct {
		x [][]float64
		y []int
	}{
		{nil, nil},
		{[][]float64{{1}}, []int{1, 2}},
		{[][]float64{{}}, []int{1}},
		{[][]float64{{1, 2}, {1}}, []int{1, 2}},
		{[][]float64{{1}}, []int{-1}},
	}
	for i, c := range cases {
		if _, _, err := checkXY(c.x, c.y); !errors.Is(err, ErrBadShape) {
			t.Errorf("case %d: want ErrBadShape, got %v", i, err)
		}
	}
}

func TestTreeSeparatesClasses(t *testing.T) {
	// Three linearly separable clusters on one axis.
	var x [][]float64
	var y []int
	for i := 0; i < 30; i++ {
		x = append(x, []float64{float64(i % 10)}, []float64{20 + float64(i%10)}, []float64{40 + float64(i%10)})
		y = append(y, 0, 1, 2)
	}
	m := NewTree()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		v    float64
		want int
	}{{5, 0}, {25, 1}, {45, 2}} {
		if got, _ := m.Predict([]float64{c.v}); got != c.want {
			t.Errorf("Predict(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if m.Name() != "Tree" {
		t.Error("name wrong")
	}
}

func TestTreeXor(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []int{0, 1, 1, 0}
	m := &Tree{MaxDepth: 2, MinSamplesLeaf: 1}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got, _ := m.Predict(x[i]); got != y[i] {
			t.Errorf("xor(%v) = %d, want %d", x[i], got, y[i])
		}
	}
}

func TestTreeErrors(t *testing.T) {
	var untrained Tree
	if _, err := untrained.Predict([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("want ErrNotTrained, got %v", err)
	}
	bad := &Tree{MaxDepth: 0}
	if err := bad.Fit([][]float64{{1}}, []int{0}); !errors.Is(err, ErrBadParam) {
		t.Errorf("want ErrBadParam, got %v", err)
	}
	m := NewTree()
	m.Fit([][]float64{{1}, {2}}, []int{0, 1})
	if _, err := m.Predict([]float64{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Errorf("want ErrBadShape, got %v", err)
	}
}

func TestConfusionMatrix(t *testing.T) {
	c := NewConfusionMatrix(3)
	if !math.IsNaN(c.Accuracy()) {
		t.Error("empty accuracy should be NaN")
	}
	c.Add(0, 0)
	c.Add(0, 1)
	c.Add(1, 1)
	c.Add(2, 2)
	if c.Total() != 4 {
		t.Errorf("total = %d", c.Total())
	}
	if got := c.Accuracy(); got != 0.75 {
		t.Errorf("accuracy = %v", got)
	}
	f1 := c.MacroF1()
	if math.IsNaN(f1) || f1 <= 0 || f1 > 1 {
		t.Errorf("macro F1 = %v", f1)
	}
	// Out-of-range labels clamp.
	c.Add(-1, 99)
	if c.Counts[0][2] != 1 {
		t.Error("clamping failed")
	}
}

func TestMacroF1PerfectAndAbsent(t *testing.T) {
	c := NewConfusionMatrix(4)
	c.Add(0, 0)
	c.Add(1, 1)
	// Classes 2 and 3 absent: excluded from the macro average.
	if got := c.MacroF1(); got != 1 {
		t.Errorf("perfect F1 = %v", got)
	}
	empty := NewConfusionMatrix(2)
	if !math.IsNaN(empty.MacroF1()) {
		t.Error("empty macro F1 should be NaN")
	}
}

func TestNewClassifier(t *testing.T) {
	if m, err := NewClassifier("Tree"); err != nil || m.Name() != "Tree" {
		t.Errorf("Tree: %v %v", m, err)
	}
	if m, err := NewClassifier("Majority"); err != nil || m.Name() != "Majority" {
		t.Errorf("Majority: %v %v", m, err)
	}
	if _, err := NewClassifier("bogus"); !errors.Is(err, ErrBadParam) {
		t.Errorf("want ErrBadParam, got %v", err)
	}
}

func testDataset(t *testing.T, seed int64, days int) *etl.VehicleDataset {
	t.Helper()
	rng := randx.New(seed)
	v := fleet.Vehicle{ID: "veh-0", Model: fleet.Model{Type: fleet.RefuseCompactor, Index: 0}, Country: "IT"}
	u := fleet.Unit{Vehicle: v, Model: fleet.NewUsageModel(v, seed, rng.Split())}
	usage := u.Model.Simulate(fleet.StudyStart, days)
	d, err := etl.FromUsage(u, usage, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func levelConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.W = 90
	cfg.K = 10
	cfg.MaxLag = 21
	cfg.Stride = 5
	cfg.Channels = []string{canbus.ChanFuelRate}
	return cfg
}

func TestEvaluateVehicleLevels(t *testing.T) {
	d := testDataset(t, 1, 450)
	res, err := EvaluateVehicle(d, levelConfig(), "Tree")
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Total() == 0 || math.IsNaN(res.Accuracy) {
		t.Fatalf("result = %+v", res)
	}
	if res.Accuracy < 0 || res.Accuracy > 1 {
		t.Errorf("accuracy = %v", res.Accuracy)
	}
}

func TestTreeBeatsMajorityOnLevels(t *testing.T) {
	// The future-work claim only makes sense if the classifier
	// extracts signal the majority baseline cannot.
	d := testDataset(t, 2, 500)
	cfg := levelConfig()
	tree, err := EvaluateVehicle(d, cfg, "Tree")
	if err != nil {
		t.Fatal(err)
	}
	maj, err := EvaluateVehicle(d, cfg, "Majority")
	if err != nil {
		t.Fatal(err)
	}
	if tree.Accuracy <= maj.Accuracy {
		t.Errorf("tree accuracy (%v) not above majority (%v)", tree.Accuracy, maj.Accuracy)
	}
}

func TestEvaluateVehicleNextWorkingDayLevels(t *testing.T) {
	d := testDataset(t, 3, 600)
	cfg := levelConfig()
	cfg.Scenario = core.NextWorkingDay
	cfg.W = 60
	res, err := EvaluateVehicle(d, cfg, "Tree")
	if err != nil {
		t.Fatal(err)
	}
	// In the working-day view the idle class disappears.
	for p := 0; p < int(NumLevels); p++ {
		if res.Confusion.Counts[int(Idle)][p] != 0 {
			t.Errorf("idle day leaked into working-day view: %v", res.Confusion.Counts[int(Idle)])
		}
	}
}

func TestEvaluateVehicleErrors(t *testing.T) {
	d := testDataset(t, 4, 450)
	if _, err := EvaluateVehicle(d, levelConfig(), "bogus"); !errors.Is(err, ErrBadParam) {
		t.Errorf("want ErrBadParam, got %v", err)
	}
	bad := levelConfig()
	bad.W = 0
	if _, err := EvaluateVehicle(d, bad, "Tree"); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := EvaluateVehicle(&etl.VehicleDataset{}, levelConfig(), "Tree"); err == nil {
		t.Error("empty dataset accepted")
	}
	// All-idle vehicle in the working-day scenario.
	idle := testDataset(t, 5, 450)
	for i := range idle.Hours {
		idle.Hours[i] = 0
	}
	cfg := levelConfig()
	cfg.Scenario = core.NextWorkingDay
	if _, err := EvaluateVehicle(idle, cfg, "Tree"); err == nil {
		t.Error("all-idle vehicle accepted")
	}
}
