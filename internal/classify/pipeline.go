package classify

import (
	"fmt"

	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/featsel"
	"vup/internal/stats"
	"vup/internal/timeseries"
)

// Result is the hold-out evaluation of a level classifier on one
// vehicle.
type Result struct {
	VehicleID string
	Model     string
	Confusion *ConfusionMatrix
	// Accuracy and MacroF1 are copied from the confusion matrix for
	// convenience.
	Accuracy float64
	MacroF1  float64
	Skipped  int
}

// NewClassifier builds a classifier by name ("Tree" or "Majority").
func NewClassifier(name string) (Classifier, error) {
	switch name {
	case "Tree":
		return NewTree(), nil
	case "Majority":
		return NewMajority(), nil
	default:
		return nil, fmt.Errorf("%w: unknown classifier %q", ErrBadParam, name)
	}
}

// EvaluateVehicle runs the paper's hold-out procedure with a discrete
// target: for every window the features are built exactly as in the
// regression pipeline (lag selection included), but the target is the
// usage level of the test day. cfg reuses the regression pipeline
// configuration (scenario, window, K, channels, stride).
func EvaluateVehicle(d *etl.VehicleDataset, cfg core.Config, classifierName string) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if _, err := NewClassifier(classifierName); err != nil {
		return nil, err
	}
	view := d
	if cfg.Scenario == core.NextWorkingDay {
		var keep []int
		for i, h := range d.Hours {
			if h >= cfg.ActiveThreshold {
				keep = append(keep, i)
			}
		}
		if len(keep) == 0 {
			return nil, fmt.Errorf("classify: vehicle %s has no working days", d.VehicleID)
		}
		var err error
		if view, err = d.Subset(keep); err != nil {
			return nil, err
		}
	}
	windows, err := timeseries.Enumerate(view.Len(), cfg.W, cfg.Strategy)
	if err != nil {
		return nil, fmt.Errorf("classify: vehicle %s: %w", d.VehicleID, err)
	}

	res := &Result{VehicleID: d.VehicleID, Model: classifierName, Confusion: NewConfusionMatrix(int(NumLevels))}
	for wi := 0; wi < len(windows); wi += cfg.Stride {
		win := windows[wi]
		trainHours := view.Hours[win.TrainFrom:win.TrainTo]
		maxLag := cfg.MaxLag
		if maxLag >= len(trainHours) {
			maxLag = len(trainHours) - 1
		}
		lags := stats.TopLags(trainHours, maxLag, cfg.K)
		if len(lags) == 0 {
			lags = []int{1}
		}
		spec := featsel.Spec{
			Lags:           lags,
			Channels:       cfg.Channels,
			IncludeHours:   true,
			IncludeContext: cfg.IncludeContext,
			TargetChannels: cfg.TargetChannels,
		}
		x, hours, _, err := spec.Matrix(view, win.TrainFrom, win.TrainTo)
		if err != nil || len(x) < cfg.MinTrainRows {
			res.Skipped++
			continue
		}
		labels := make([]int, len(hours))
		for i, h := range hours {
			labels[i] = int(LevelOf(h))
		}
		row, ok := spec.Row(view, win.Test)
		if !ok {
			res.Skipped++
			continue
		}
		model, err := NewClassifier(classifierName)
		if err != nil {
			return nil, err
		}
		if err := model.Fit(x, labels); err != nil {
			res.Skipped++
			continue
		}
		pred, err := model.Predict(row)
		if err != nil {
			return nil, err
		}
		res.Confusion.Add(int(LevelOf(view.Hours[win.Test])), pred)
	}
	if res.Confusion.Total() == 0 {
		return nil, fmt.Errorf("classify: vehicle %s: no predictions (%d windows skipped)", d.VehicleID, res.Skipped)
	}
	res.Accuracy = res.Confusion.Accuracy()
	res.MacroF1 = res.Confusion.MacroF1()
	return res, nil
}
