package classify

import (
	"fmt"
	"sort"
)

// Tree is a CART classification tree with Gini-impurity splits.
type Tree struct {
	// MaxDepth limits the tree (default 4). Must be >= 1 at Fit time.
	MaxDepth int
	// MinSamplesLeaf is the per-leaf minimum (default 1).
	MinSamplesLeaf int

	root *cnode
	k    int // number of classes = max label + 1
	p    int
}

type cnode struct {
	feature   int
	threshold float64
	left      *cnode
	right     *cnode
	leaf      bool
	class     int
}

// NewTree returns a depth-4 classification tree.
func NewTree() *Tree { return &Tree{MaxDepth: 4, MinSamplesLeaf: 1} }

// Name implements Classifier.
func (m *Tree) Name() string { return "Tree" }

// Fit implements Classifier.
func (m *Tree) Fit(x [][]float64, y []int) error {
	_, p, err := checkXY(x, y)
	if err != nil {
		return err
	}
	if m.MaxDepth < 1 {
		return fmt.Errorf("%w: tree depth %d", ErrBadParam, m.MaxDepth)
	}
	minLeaf := m.MinSamplesLeaf
	if minLeaf < 1 {
		minLeaf = 1
	}
	m.k = 0
	for _, c := range y {
		if c+1 > m.k {
			m.k = c + 1
		}
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	m.p = p
	m.root = m.grow(x, y, idx, m.MaxDepth, minLeaf)
	return nil
}

func (m *Tree) grow(x [][]float64, y []int, idx []int, depth, minLeaf int) *cnode {
	if depth == 0 || len(idx) < 2*minLeaf || pureLabels(y, idx) {
		return &cnode{leaf: true, class: majorityOf(y, idx, m.k)}
	}
	feature, threshold, ok := bestGiniSplit(x, y, idx, minLeaf, m.k)
	if !ok {
		return &cnode{leaf: true, class: majorityOf(y, idx, m.k)}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &cnode{
		feature:   feature,
		threshold: threshold,
		left:      m.grow(x, y, left, depth-1, minLeaf),
		right:     m.grow(x, y, right, depth-1, minLeaf),
	}
}

func pureLabels(y []int, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

func majorityOf(y []int, idx []int, k int) int {
	counts := make([]int, k)
	for _, i := range idx {
		counts[y[i]]++
	}
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// gini returns the Gini impurity of the counts times the sample count
// (so sums are comparable across split sides without normalizing).
func giniWeighted(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	sumSq := 0.0
	for _, c := range counts {
		sumSq += float64(c) * float64(c)
	}
	return float64(n) - sumSq/float64(n)
}

// bestGiniSplit scans every feature's sorted values, maintaining
// running class counts, and returns the split minimizing the weighted
// Gini impurity.
func bestGiniSplit(x [][]float64, y []int, idx []int, minLeaf, k int) (feature int, threshold float64, ok bool) {
	n := len(idx)
	p := len(x[idx[0]])
	best := float64(n) + 1 // impurity upper bound

	order := make([]int, n)
	leftCounts := make([]int, k)
	totalCounts := make([]int, k)
	rightCounts := make([]int, k)
	for f := 0; f < p; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		for i := range leftCounts {
			leftCounts[i] = 0
			totalCounts[i] = 0
		}
		for _, i := range order {
			totalCounts[y[i]]++
		}
		for pos := 0; pos < n-1; pos++ {
			i := order[pos]
			leftCounts[y[i]]++
			//lint:allow floatsafety split points sit between distinct stored feature values
			if x[order[pos+1]][f] == x[i][f] {
				continue
			}
			nl, nr := pos+1, n-pos-1
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			for c := range rightCounts {
				rightCounts[c] = totalCounts[c] - leftCounts[c]
			}
			impurity := giniWeighted(leftCounts, nl) + giniWeighted(rightCounts, nr)
			if impurity < best-1e-12 {
				best = impurity
				feature = f
				threshold = (x[i][f] + x[order[pos+1]][f]) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// Predict implements Classifier.
func (m *Tree) Predict(x []float64) (int, error) {
	if m.root == nil {
		return 0, ErrNotTrained
	}
	if len(x) != m.p {
		return 0, fmt.Errorf("%w: row has %d features, model trained on %d", ErrBadShape, len(x), m.p)
	}
	node := m.root
	for !node.leaf {
		if x[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.class, nil
}
