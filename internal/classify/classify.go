// Package classify implements the paper's second future-work item:
// "the use of classification models to predict discrete usage
// levels". Daily utilization hours are bucketed into levels (idle,
// light, regular, heavy) and a classifier predicts the next (working)
// day's level from the same lagged features the regression pipeline
// uses.
package classify

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Level is a discrete usage bucket.
type Level int

// The four usage levels. Thresholds follow the study's working-day
// convention: >= 1 hour is a working day; 4 and 8 hours split light,
// regular and heavy shifts.
const (
	Idle Level = iota
	Light
	Regular
	Heavy
	NumLevels
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Idle:
		return "idle"
	case Light:
		return "light"
	case Regular:
		return "regular"
	case Heavy:
		return "heavy"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// LevelOf buckets daily utilization hours.
func LevelOf(hours float64) Level {
	switch {
	case hours < 1:
		return Idle
	case hours < 4:
		return Light
	case hours < 8:
		return Regular
	default:
		return Heavy
	}
}

// Classifier is a supervised multi-class classifier over dense rows.
type Classifier interface {
	// Fit trains on rows x and integer class labels y.
	Fit(x [][]float64, y []int) error
	// Predict returns the predicted class of one row.
	Predict(x []float64) (int, error)
	// Name returns a short label.
	Name() string
}

// Errors shared by the implementations.
var (
	ErrNotTrained = errors.New("classify: model not trained")
	ErrBadShape   = errors.New("classify: invalid training shape")
	ErrBadParam   = errors.New("classify: invalid hyper-parameter")
)

func checkXY(x [][]float64, y []int) (n, p int, err error) {
	n = len(x)
	if n == 0 {
		return 0, 0, fmt.Errorf("%w: no rows", ErrBadShape)
	}
	if len(y) != n {
		return 0, 0, fmt.Errorf("%w: %d rows vs %d labels", ErrBadShape, n, len(y))
	}
	p = len(x[0])
	if p == 0 {
		return 0, 0, fmt.Errorf("%w: zero-width rows", ErrBadShape)
	}
	for i, row := range x {
		if len(row) != p {
			return 0, 0, fmt.Errorf("%w: ragged row %d", ErrBadShape, i)
		}
		if y[i] < 0 {
			return 0, 0, fmt.Errorf("%w: negative label %d at row %d", ErrBadShape, y[i], i)
		}
	}
	return n, p, nil
}

// Majority is the baseline: always predict the most frequent training
// class (ties break toward the smaller label).
type Majority struct {
	class   int
	trained bool
	p       int
}

// NewMajority returns the majority-class baseline.
func NewMajority() *Majority { return &Majority{} }

// Name implements Classifier.
func (m *Majority) Name() string { return "Majority" }

// Fit implements Classifier.
func (m *Majority) Fit(x [][]float64, y []int) error {
	_, p, err := checkXY(x, y)
	if err != nil {
		return err
	}
	counts := map[int]int{}
	for _, c := range y {
		counts[c]++
	}
	best, bestN := 0, -1
	classes := make([]int, 0, len(counts))
	for c := range counts {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		if counts[c] > bestN {
			best, bestN = c, counts[c]
		}
	}
	m.class = best
	m.p = p
	m.trained = true
	return nil
}

// Predict implements Classifier.
func (m *Majority) Predict(x []float64) (int, error) {
	if !m.trained {
		return 0, ErrNotTrained
	}
	if len(x) != m.p {
		return 0, fmt.Errorf("%w: row has %d features, model trained on %d", ErrBadShape, len(x), m.p)
	}
	return m.class, nil
}

// ConfusionMatrix counts predictions: cell [actual][predicted].
type ConfusionMatrix struct {
	K      int
	Counts [][]int
}

// NewConfusionMatrix creates a k-class matrix.
func NewConfusionMatrix(k int) *ConfusionMatrix {
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, k)
	}
	return &ConfusionMatrix{K: k, Counts: counts}
}

// Add records one (actual, predicted) pair; out-of-range labels are
// clamped into the matrix.
func (c *ConfusionMatrix) Add(actual, predicted int) {
	clampIdx := func(v int) int {
		if v < 0 {
			return 0
		}
		if v >= c.K {
			return c.K - 1
		}
		return v
	}
	c.Counts[clampIdx(actual)][clampIdx(predicted)]++
}

// Total returns the number of recorded pairs.
func (c *ConfusionMatrix) Total() int {
	t := 0
	for _, row := range c.Counts {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Accuracy returns the fraction of correct predictions (NaN if empty).
func (c *ConfusionMatrix) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return math.NaN()
	}
	correct := 0
	for i := 0; i < c.K; i++ {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(total)
}

// MacroF1 returns the unweighted mean F1 over classes that appear in
// the data (as actual or predicted).
func (c *ConfusionMatrix) MacroF1() float64 {
	var sum float64
	var classes int
	for k := 0; k < c.K; k++ {
		tp := c.Counts[k][k]
		var fp, fn int
		for j := 0; j < c.K; j++ {
			if j == k {
				continue
			}
			fp += c.Counts[j][k]
			fn += c.Counts[k][j]
		}
		if tp+fp+fn == 0 {
			continue // class absent entirely
		}
		classes++
		if tp == 0 {
			continue // F1 = 0
		}
		precision := float64(tp) / float64(tp+fp)
		recall := float64(tp) / float64(tp+fn)
		sum += 2 * precision * recall / (precision + recall)
	}
	if classes == 0 {
		return math.NaN()
	}
	return sum / float64(classes)
}
