package telematics

import (
	"sort"

	"vup/internal/canbus"
	"vup/internal/randx"
)

// Fault SPNs the simulated machines can raise, mirroring common J1939
// engine faults.
var faultSPNs = []uint32{
	100, // engine oil pressure
	110, // engine coolant temperature
	96,  // fuel level sensor
	190, // engine speed
	183, // fuel rate
}

// FaultModel simulates the active-diagnostics state of one vehicle:
// faults arise with a hazard that grows with daily utilization (hard
// work surfaces defects), persist for a few days accumulating their
// occurrence count, and eventually clear.
type FaultModel struct {
	// BaseHazard is the per-day probability of a new fault on an idle
	// day (default 0.002).
	BaseHazard float64
	// HoursFactor adds hazard per utilization hour (default 0.003).
	HoursFactor float64
	// ClearProb is the per-day probability an active fault clears
	// (default 0.25).
	ClearProb float64

	active map[uint32]canbus.DTC
	rng    *randx.RNG
}

// NewFaultModel creates a fault model with the default rates.
func NewFaultModel(rng *randx.RNG) *FaultModel {
	return &FaultModel{
		BaseHazard:  0.002,
		HoursFactor: 0.003,
		ClearProb:   0.25,
		active:      map[uint32]canbus.DTC{},
		rng:         rng,
	}
}

// Step advances the fault state by one day with the given utilization
// hours and returns the day's active trouble codes, sorted by SPN.
func (m *FaultModel) Step(hours float64) []canbus.DTC {
	// Existing faults either clear or recur (occurrence count grows on
	// working days).
	for spn, dtc := range m.active {
		if m.rng.Bernoulli(m.ClearProb) {
			delete(m.active, spn)
			continue
		}
		if hours > 0 && dtc.OC < 126 {
			dtc.OC++
			m.active[spn] = dtc
		}
	}
	// New fault?
	hazard := m.BaseHazard + m.HoursFactor*hours
	if m.rng.Bernoulli(hazard) {
		spn := faultSPNs[m.rng.Intn(len(faultSPNs))]
		if _, exists := m.active[spn]; !exists {
			m.active[spn] = canbus.DTC{
				SPN: spn,
				FMI: uint8(m.rng.Intn(6)), // common failure modes 0..5
				OC:  1,
			}
		}
	}
	out := make([]canbus.DTC, 0, len(m.active))
	for _, dtc := range m.active {
		out = append(out, dtc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SPN < out[j].SPN })
	return out
}

// ActiveCount returns the number of currently active faults.
func (m *FaultModel) ActiveCount() int { return len(m.active) }

// DM1Frames encodes the day's active faults as DM1 CAN frames (with
// TP.BAM when needed). The amber warning lamp is lit whenever any
// fault is active.
func DM1Frames(dtcs []canbus.DTC, src uint8) ([]canbus.Frame, error) {
	var lamps uint16
	if len(dtcs) > 0 {
		lamps = 0x0400 // amber warning lamp on
	}
	return canbus.EncodeDM1(lamps, dtcs, src)
}
