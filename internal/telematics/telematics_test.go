package telematics

import (
	"math"
	"sync"
	"testing"
	"time"

	"vup/internal/canbus"
	"vup/internal/fleet"
	"vup/internal/randx"
)

func testVehicle() fleet.Vehicle {
	return fleet.Vehicle{ID: "veh-test", Model: fleet.Model{Type: fleet.RefuseCompactor, Index: 0}, Country: "IT"}
}

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func TestPlanSessionsTotalHours(t *testing.T) {
	d := NewDevice(testVehicle(), randx.New(1))
	for _, hours := range []float64{0.5, 2, 5, 9, 14} {
		sessions := d.PlanSessions(day(2017, time.May, 8), hours)
		if len(sessions) == 0 {
			t.Fatalf("no sessions for %v hours", hours)
		}
		total := 0.0
		for i, s := range sessions {
			if !s.End.After(s.Start) {
				t.Fatalf("empty session %+v", s)
			}
			if i > 0 && s.Start.Before(sessions[i-1].End) {
				t.Fatalf("overlapping sessions")
			}
			total += s.End.Sub(s.Start).Hours()
		}
		// Sessions can be clipped at midnight, so total <= hours.
		if total > hours+1e-9 {
			t.Errorf("hours=%v: sessions total %v exceeds plan", hours, total)
		}
		if total < hours*0.5 {
			t.Errorf("hours=%v: sessions total %v lost too much to clipping", hours, total)
		}
	}
}

func TestPlanSessionsZero(t *testing.T) {
	d := NewDevice(testVehicle(), randx.New(2))
	if got := d.PlanSessions(day(2017, time.May, 8), 0); got != nil {
		t.Errorf("sessions for 0 hours: %v", got)
	}
}

func TestPlanSessionsWithinDay(t *testing.T) {
	d := NewDevice(testVehicle(), randx.New(3))
	theDay := day(2017, time.May, 8)
	for trial := 0; trial < 50; trial++ {
		for _, s := range d.PlanSessions(theDay, 23) {
			if s.Start.Before(theDay) || s.End.After(theDay.AddDate(0, 0, 1)) {
				t.Fatalf("session escapes day: %+v", s)
			}
		}
	}
}

func TestSampleSessionErrors(t *testing.T) {
	d := NewDevice(testVehicle(), randx.New(4))
	s := Session{Start: day(2017, time.May, 8), End: day(2017, time.May, 8).Add(time.Hour)}
	if _, err := d.SampleSession(s, 0, 4); err == nil {
		t.Error("expected error for zero period")
	}
}

func TestSampleSessionFramesValid(t *testing.T) {
	d := NewDevice(testVehicle(), randx.New(5))
	s := Session{Start: day(2017, time.May, 8).Add(8 * time.Hour), End: day(2017, time.May, 8).Add(8*time.Hour + 10*time.Minute)}
	bursts, err := d.SampleSession(s, time.Minute, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 10 {
		t.Fatalf("bursts = %d, want 10", len(bursts))
	}
	for _, b := range bursts {
		if len(b.Frames) != 8 {
			t.Fatalf("frames per burst = %d, want 8 (one per message)", len(b.Frames))
		}
		for _, f := range b.Frames {
			if err := f.Validate(); err != nil {
				t.Fatalf("invalid frame: %v", err)
			}
			if !f.Extended {
				t.Fatal("J1939 frames must be extended")
			}
		}
	}
}

func TestSimulateDayEngineHours(t *testing.T) {
	d := NewDevice(testVehicle(), randx.New(6))
	hours := 6.0
	reports, err := d.SimulateDay(day(2017, time.May, 8), hours, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	var engineOn float64
	for _, r := range reports {
		engineOn += r.EngineOnSeconds
		if r.VehicleID != "veh-test" {
			t.Fatal("wrong vehicle id")
		}
	}
	got := engineOn / 3600
	if math.Abs(got-hours) > 1 {
		t.Errorf("engine-on hours = %v, want ~%v", got, hours)
	}
}

func TestSimulateDayChannelsPresent(t *testing.T) {
	d := NewDevice(testVehicle(), randx.New(7))
	reports, err := d.SimulateDay(day(2017, time.May, 8), 4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, r := range reports {
		for name, cs := range r.Channels {
			found[name] = true
			if cs.Samples <= 0 {
				t.Fatalf("channel %s with no samples", name)
			}
			if cs.Min > cs.Mean || cs.Mean > cs.Max {
				t.Fatalf("channel %s stats unordered: %+v", name, cs)
			}
		}
	}
	for _, ch := range canbus.AnalogChannels() {
		if !found[ch] {
			t.Errorf("channel %s missing from reports", ch)
		}
	}
}

func TestSimulateDayInactive(t *testing.T) {
	d := NewDevice(testVehicle(), randx.New(8))
	reports, err := d.SimulateDay(day(2017, time.May, 8), 0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Errorf("inactive day produced %d reports", len(reports))
	}
}

func TestUplinkLossless(t *testing.T) {
	u := NewUplink(0, 0, randx.New(9))
	reports := []canbus.Report{{VehicleID: "a"}, {VehicleID: "b"}}
	if got := u.Transmit(reports); len(got) != 2 {
		t.Errorf("lossless uplink dropped reports: %d", len(got))
	}
}

func TestUplinkDropsAndBursts(t *testing.T) {
	u := NewUplink(0.2, 0.7, randx.New(10))
	reports := make([]canbus.Report, 5000)
	got := u.Transmit(reports)
	lossRate := 1 - float64(len(got))/float64(len(reports))
	// Expected steady-state loss: entering outage with p=0.2 and
	// staying with p=0.7 gives roughly 0.2/(0.2+0.3) ≈ 0.4.
	if lossRate < 0.25 || lossRate > 0.60 {
		t.Errorf("loss rate = %v", lossRate)
	}
}

// TestUplinkBackToBackOutages is the deterministic regression test for
// the free-delivery bug: the report ending an outage used to skip the
// DropProb roll, so with DropProb=1 and BurstContinue=0 every other
// report was delivered. With the fresh roll on outage exit, nothing
// gets through.
func TestUplinkBackToBackOutages(t *testing.T) {
	u := NewUplink(1, 0, randx.New(7))
	if got := u.Transmit(make([]canbus.Report, 50)); len(got) != 0 {
		t.Errorf("delivered %d reports, want 0: outage exits must re-roll DropProb", len(got))
	}
}

// TestUplinkStationaryLossRate pins the long-run drop fraction to the
// two-state Markov chain the parameters describe: P(drop|delivered) =
// p, P(drop|dropped) = c + (1-c)p, stationary drop fraction
// p / (p + (1-c)(1-p)). The pre-fix guaranteed delivery on outage exit
// biased the empirical rate below this.
func TestUplinkStationaryLossRate(t *testing.T) {
	const p, c = 0.2, 0.5
	u := NewUplink(p, c, randx.New(4242))
	const n = 200000
	got := u.Transmit(make([]canbus.Report, n))
	loss := 1 - float64(len(got))/float64(n)
	want := p / (p + (1-c)*(1-p)) // = 1/3 for these parameters
	if math.Abs(loss-want) > 0.015 {
		t.Errorf("long-run loss = %.4f, want %.4f +/- 0.015", loss, want)
	}
}

func TestUplinkAllDropped(t *testing.T) {
	u := NewUplink(1, 1, randx.New(11))
	got := u.Transmit(make([]canbus.Report, 100))
	if len(got) != 0 {
		t.Errorf("expected total outage, got %d reports", len(got))
	}
}

func TestServerIngestAndSort(t *testing.T) {
	s := NewServer()
	t1 := day(2017, time.May, 8).Add(10 * time.Minute)
	t0 := day(2017, time.May, 8)
	s.Ingest([]canbus.Report{{VehicleID: "v1", Start: t1}, {VehicleID: "v1", Start: t0}, {VehicleID: "v2", Start: t0}})
	got := s.Reports("v1")
	if len(got) != 2 || !got[0].Start.Equal(t0) {
		t.Errorf("reports not sorted: %+v", got)
	}
	ids := s.VehicleIDs()
	if len(ids) != 2 || ids[0] != "v1" || ids[1] != "v2" {
		t.Errorf("ids = %v", ids)
	}
	if got := s.Reports("missing"); len(got) != 0 {
		t.Errorf("unknown vehicle returned %d reports", len(got))
	}
}

func TestServerConcurrentIngest(t *testing.T) {
	s := NewServer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Ingest([]canbus.Report{{VehicleID: "v", Start: day(2017, time.May, 8).Add(time.Duration(g*100+i) * time.Minute)}})
			}
		}(g)
	}
	wg.Wait()
	if got := len(s.Reports("v")); got != 800 {
		t.Errorf("reports = %d, want 800", got)
	}
}

func TestEndToEndDeviceToServer(t *testing.T) {
	// Full path: device -> uplink -> server, with losses.
	rng := randx.New(12)
	d := NewDevice(testVehicle(), rng.Split())
	u := NewUplink(0.1, 0.5, rng.Split())
	s := NewServer()
	theDay := day(2017, time.May, 8)
	for i := 0; i < 5; i++ {
		reports, err := d.SimulateDay(theDay.AddDate(0, 0, i), 5, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		s.Ingest(u.Transmit(reports))
	}
	stored := s.Reports("veh-test")
	if len(stored) == 0 {
		t.Fatal("nothing reached the server")
	}
	for i := 1; i < len(stored); i++ {
		if stored[i].Start.Before(stored[i-1].Start) {
			t.Fatal("reports unsorted")
		}
	}
}
