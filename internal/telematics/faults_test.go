package telematics

import (
	"testing"

	"vup/internal/canbus"
	"vup/internal/randx"
)

func TestFaultModelLifecycle(t *testing.T) {
	m := NewFaultModel(randx.New(1))
	// Force a fault by cranking the hazard.
	m.BaseHazard = 1
	m.ClearProb = 0
	dtcs := m.Step(8)
	if len(dtcs) != 1 {
		t.Fatalf("dtcs = %d, want 1", len(dtcs))
	}
	if dtcs[0].OC != 1 {
		t.Errorf("initial OC = %d", dtcs[0].OC)
	}
	// Subsequent working days increase the occurrence count.
	m.BaseHazard = 0
	prev := dtcs[0].OC
	for day := 0; day < 5; day++ {
		dtcs = m.Step(6)
		if len(dtcs) == 0 {
			t.Fatal("fault cleared with ClearProb=0")
		}
	}
	if dtcs[0].OC <= prev {
		t.Errorf("OC did not grow: %d", dtcs[0].OC)
	}
	// Idle days do not grow the count.
	oc := dtcs[0].OC
	dtcs = m.Step(0)
	if len(dtcs) > 0 && dtcs[0].OC != oc {
		t.Errorf("idle day changed OC: %d -> %d", oc, dtcs[0].OC)
	}
	// Clearing drains the set.
	m.ClearProb = 1
	m.Step(0)
	if m.ActiveCount() != 0 {
		t.Errorf("active = %d after certain clear", m.ActiveCount())
	}
}

func TestFaultModelHazardGrowsWithHours(t *testing.T) {
	countFaults := func(hours float64, seed int64) int {
		m := NewFaultModel(randx.New(seed))
		total := 0
		for day := 0; day < 5000; day++ {
			before := m.ActiveCount()
			m.Step(hours)
			if m.ActiveCount() > before {
				total++
			}
		}
		return total
	}
	idle := countFaults(0, 2)
	busy := countFaults(10, 2)
	if busy <= idle {
		t.Errorf("busy machine faults (%d) not above idle (%d)", busy, idle)
	}
}

func TestFaultModelValidDTCs(t *testing.T) {
	m := NewFaultModel(randx.New(3))
	m.BaseHazard = 0.5
	for day := 0; day < 200; day++ {
		for _, d := range m.Step(5) {
			if err := d.Validate(); err != nil {
				t.Fatalf("invalid DTC: %v", err)
			}
		}
	}
}

func TestFaultModelSortedOutput(t *testing.T) {
	m := NewFaultModel(randx.New(4))
	m.BaseHazard = 1
	m.ClearProb = 0
	var last []canbus.DTC
	for day := 0; day < 50; day++ {
		last = m.Step(8)
	}
	for i := 1; i < len(last); i++ {
		if last[i].SPN <= last[i-1].SPN {
			t.Fatalf("unsorted DTCs: %+v", last)
		}
	}
	if len(last) < 2 {
		t.Fatalf("expected several persistent faults, got %d", len(last))
	}
}

func TestDM1Frames(t *testing.T) {
	frames, err := DM1Frames(nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	lamps, dtcs, err := canbus.DecodeDM1(frames)
	if err != nil || lamps != 0 || len(dtcs) != 0 {
		t.Errorf("all-clear: %v %v %v", lamps, dtcs, err)
	}
	active := []canbus.DTC{{SPN: 110, FMI: 0, OC: 3}}
	frames, err = DM1Frames(active, 7)
	if err != nil {
		t.Fatal(err)
	}
	lamps, dtcs, err = canbus.DecodeDM1(frames)
	if err != nil {
		t.Fatal(err)
	}
	if lamps&0x0400 == 0 {
		t.Error("amber lamp not lit")
	}
	if len(dtcs) != 1 || dtcs[0] != active[0] {
		t.Errorf("dtcs = %+v", dtcs)
	}
}
