// Package telematics simulates the on-board tracking unit and its
// uplink to the central server: a day of machine operation is turned
// into working sessions, each session into CAN frames sampled from the
// message catalog, aggregated on the device into 10-minute reports and
// uploaded over a lossy link (vehicles "operate in remote regions
// where the sudden absence of connectivity may affect data
// collection"). The output records have exactly the shape the ETL
// pipeline cleans and aggregates.
package telematics

import (
	"fmt"
	"time"

	"vup/internal/canbus"
	"vup/internal/fleet"
	"vup/internal/randx"
)

// Device simulates one vehicle's on-board unit.
type Device struct {
	vehicle fleet.Vehicle
	catalog map[uint32]canbus.MessageDef
	src     uint8
	rng     *randx.RNG
}

// NewDevice creates a device for v with its own random stream.
func NewDevice(v fleet.Vehicle, rng *randx.RNG) *Device {
	return &Device{
		vehicle: v,
		catalog: canbus.Catalog(),
		src:     uint8(1 + rng.Intn(250)),
		rng:     rng,
	}
}

// Session is a continuous engine-on interval.
type Session struct {
	Start time.Time
	End   time.Time
}

// PlanSessions splits hours of daily utilization into 1-3 working
// sessions inside the working window of the day (starting around
// 6:00-9:00). The total session length equals hours.
func (d *Device) PlanSessions(day time.Time, hours float64) []Session {
	if hours <= 0 {
		return nil
	}
	if hours > 24 {
		hours = 24
	}
	day = time.Date(day.Year(), day.Month(), day.Day(), 0, 0, 0, 0, time.UTC)
	n := 1
	if hours > 2 {
		n += d.rng.Intn(2)
	}
	if hours > 6 {
		n = 2 + d.rng.Intn(2)
	}
	// Split total hours across n sessions with random proportions.
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = 0.5 + d.rng.Float64()
		total += weights[i]
	}
	var sessions []Session
	cursor := day.Add(time.Duration(float64(time.Hour) * d.rng.Uniform(6, 9)))
	remaining := 24.0
	for i := 0; i < n; i++ {
		dur := hours * weights[i] / total
		end := cursor.Add(time.Duration(float64(time.Hour) * dur))
		sessions = append(sessions, Session{Start: cursor, End: end})
		// Idle gap before the next session, bounded by the day's end.
		gap := d.rng.Uniform(0.2, 1.5)
		cursor = end.Add(time.Duration(float64(time.Hour) * gap))
		remaining = 24 - cursor.Sub(day).Hours()
		if remaining <= 0.5 {
			break
		}
	}
	// Clamp the final session to midnight.
	last := &sessions[len(sessions)-1]
	midnight := day.AddDate(0, 0, 1)
	if last.End.After(midnight) {
		last.End = midnight
	}
	return sessions
}

// FrameBurst is the set of frames emitted at one sample instant.
type FrameBurst struct {
	At     time.Time
	Frames []canbus.Frame
}

// SampleSession emits frame bursts for one session at the given sample
// period. Channel values follow the same duty-correlated model the
// fast generation path uses, so both paths expose the same statistics.
func (d *Device) SampleSession(s Session, period time.Duration, dayHours float64) ([]FrameBurst, error) {
	if period <= 0 {
		return nil, fmt.Errorf("telematics: non-positive sample period %v", period)
	}
	var bursts []FrameBurst
	for ts := s.Start; ts.Before(s.End); ts = ts.Add(period) {
		values := fleet.DailyChannels(d.vehicle.Model.Type, dayHours, d.rng)
		values[canbus.ChanEngineOn] = 1
		burst := FrameBurst{At: ts}
		for _, m := range d.catalog {
			msgValues := map[string]float64{}
			for _, sig := range m.Signals {
				if v, ok := values[sig.Name]; ok {
					msgValues[sig.Name] = v
				}
			}
			if len(msgValues) == 0 {
				continue
			}
			f, err := m.Encode(msgValues, d.src)
			if err != nil {
				return nil, fmt.Errorf("telematics: encoding %s: %w", m.Name, err)
			}
			burst.Frames = append(burst.Frames, f)
		}
		bursts = append(bursts, burst)
	}
	return bursts, nil
}

// SimulateDay runs the full on-board path for one day: plan sessions,
// sample frames, decode them back (as the controller does) and
// aggregate into 10-minute reports.
func (d *Device) SimulateDay(day time.Time, hours float64, period time.Duration) ([]canbus.Report, error) {
	agg := canbus.NewAggregator(d.vehicle.ID)
	for _, s := range d.PlanSessions(day, hours) {
		bursts, err := d.SampleSession(s, period, hours)
		if err != nil {
			return nil, err
		}
		if err := agg.AddStatus(s.Start, 1); err != nil {
			return nil, err
		}
		for _, b := range bursts {
			for _, f := range b.Frames {
				msg, ok := d.catalog[canbus.PGN(f.ID)]
				if !ok {
					return nil, fmt.Errorf("telematics: unknown pgn %#x", canbus.PGN(f.ID))
				}
				decoded, err := msg.Decode(f)
				if err != nil {
					return nil, err
				}
				for name, v := range decoded {
					if name == canbus.ChanEngineOn {
						continue
					}
					if err := agg.AddSample(b.At, name, v); err != nil {
						return nil, err
					}
				}
			}
			if err := agg.AddStatus(b.At, 1); err != nil {
				return nil, err
			}
		}
		if err := agg.AddStatus(s.End, 0); err != nil {
			return nil, err
		}
	}
	return agg.Flush(), nil
}
