package telematics

import (
	"sort"
	"sync"

	"vup/internal/canbus"
	"vup/internal/randx"
)

// Uplink models the lossy cellular link between a vehicle and the
// central server. Connectivity loss is bursty: once a report is
// dropped, following reports are dropped with elevated probability,
// mimicking a site going dark for a while.
type Uplink struct {
	// DropProb is the per-report probability of entering an outage.
	DropProb float64
	// BurstContinue is the probability an ongoing outage persists for
	// the next report.
	BurstContinue float64

	rng    *randx.RNG
	outage bool
}

// NewUplink returns an uplink with the given loss characteristics.
func NewUplink(dropProb, burstContinue float64, rng *randx.RNG) *Uplink {
	return &Uplink{DropProb: dropProb, BurstContinue: burstContinue, rng: rng}
}

// Transmit filters reports through the lossy link, returning the ones
// that reach the server, in order.
func (u *Uplink) Transmit(reports []canbus.Report) []canbus.Report {
	out := make([]canbus.Report, 0, len(reports))
	for _, r := range reports {
		if u.outage {
			if u.rng.Bernoulli(u.BurstContinue) {
				continue // still dark
			}
			u.outage = false
			// The report that ends an outage is not delivered for
			// free: it falls through to a fresh DropProb roll, so
			// back-to-back outages stay possible and the long-run loss
			// matches the configured chain (a guaranteed delivery on
			// every outage exit biases the effective rate low).
		}
		if u.rng.Bernoulli(u.DropProb) {
			u.outage = true
			continue
		}
		out = append(out, r)
	}
	return out
}

// Server is the centralized collection endpoint. It is safe for
// concurrent ingestion from many simulated vehicles.
type Server struct {
	mu      sync.Mutex
	reports map[string][]canbus.Report
}

// NewServer returns an empty collection server.
func NewServer() *Server {
	return &Server{reports: map[string][]canbus.Report{}}
}

// Ingest stores reports, grouping them per vehicle.
func (s *Server) Ingest(reports []canbus.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range reports {
		s.reports[r.VehicleID] = append(s.reports[r.VehicleID], r)
	}
}

// Reports returns the stored reports of one vehicle sorted by window
// start.
func (s *Server) Reports(vehicleID string) []canbus.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]canbus.Report(nil), s.reports[vehicleID]...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// VehicleIDs returns the vehicles that have reported, sorted.
func (s *Server) VehicleIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.reports))
	for id := range s.reports {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
