// Package randx provides a deterministic, seedable random source with
// the distribution families needed by the synthetic fleet generator:
// normal, log-normal, gamma, beta, Poisson, Bernoulli, exponential and
// truncated normal, plus shuffling and categorical choice.
//
// All generators are deterministic for a given seed so every experiment
// in the repository is reproducible bit-for-bit.
package randx

import (
	"math"
	"math/rand"
)

// RNG is a seedable pseudo-random generator. It is not safe for
// concurrent use; create one RNG per goroutine (see Split).
type RNG struct {
	src *rand.Rand
}

// New returns an RNG seeded with seed.
func New(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Split derives a new, independent RNG from r. The derived generator's
// seed is drawn from r, so distinct calls yield distinct streams while
// remaining reproducible.
func (r *RNG) Split() *RNG {
	return New(r.src.Int63())
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uniform returns a pseudo-random float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation. It panics if sigma < 0.
func (r *RNG) Normal(mean, sigma float64) float64 {
	if sigma < 0 {
		panic("randx: Normal with negative sigma")
	}
	return mean + sigma*r.src.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed value with the given
// rate lambda. It panics if lambda <= 0.
func (r *RNG) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("randx: Exponential with non-positive rate")
	}
	return r.src.ExpFloat64() / lambda
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Poisson returns a Poisson-distributed count with mean lambda, using
// inversion for small lambda and a normal approximation for large
// lambda. It panics if lambda < 0.
func (r *RNG) Poisson(lambda float64) int {
	switch {
	case lambda < 0:
		panic("randx: Poisson with negative mean")
	case lambda == 0:
		return 0
	case lambda > 500:
		// Normal approximation keeps inversion from looping forever.
		n := int(math.Round(r.Normal(lambda, math.Sqrt(lambda))))
		if n < 0 {
			n = 0
		}
		return n
	}
	limit := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.src.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Gamma returns a gamma-distributed value with the given shape and
// scale, using the Marsaglia-Tsang method. It panics unless both
// parameters are positive.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("randx: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// Boost: gamma(a) = gamma(a+1) * U^(1/a).
		u := r.src.Float64()
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.src.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.src.Float64()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Beta returns a Beta(a, b) distributed value in (0, 1). It panics
// unless both parameters are positive.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	return x / (x + y)
}

// TruncNormal returns a normal value with the given mean and sigma,
// rejected until it falls inside [lo, hi]. It panics if lo > hi. When
// the acceptance region is far in the tail it falls back to clamping
// after a bounded number of rejections so the call always terminates.
func (r *RNG) TruncNormal(mean, sigma, lo, hi float64) float64 {
	if lo > hi {
		panic("randx: TruncNormal with lo > hi")
	}
	for i := 0; i < 64; i++ {
		v := r.Normal(mean, sigma)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Choice returns a pseudo-random index in [0, len(weights)) with
// probability proportional to the weights. Non-positive weights are
// treated as zero. It panics if the weights sum to zero or the slice is
// empty.
func (r *RNG) Choice(weights []float64) int {
	if len(weights) == 0 {
		panic("randx: Choice with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("randx: Choice with non-positive total weight")
	}
	target := r.src.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }
