package randx

import (
	"math"
	"testing"
)

const sampleN = 200000

func sampleMoments(t *testing.T, gen func() float64) (mean, variance float64) {
	t.Helper()
	var sum, sumSq float64
	for i := 0; i < sampleN; i++ {
		v := gen()
		sum += v
		sumSq += v * v
	}
	mean = sum / sampleN
	variance = sumSq/sampleN - mean*mean
	return mean, variance
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("split streams look identical: %d/100 equal draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) returned %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(2)
	mean, variance := sampleMoments(t, func() float64 { return r.Normal(4, 2) })
	if math.Abs(mean-4) > 0.05 {
		t.Errorf("Normal mean = %v, want ~4", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance = %v, want ~4", variance)
	}
}

func TestNormalNegativeSigmaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative sigma")
		}
	}()
	New(1).Normal(0, -1)
}

func TestLogNormalMedian(t *testing.T) {
	r := New(3)
	below := 0
	for i := 0; i < sampleN; i++ {
		if r.LogNormal(1, 0.5) < math.E {
			below++
		}
	}
	frac := float64(below) / sampleN
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("LogNormal median fraction = %v, want ~0.5", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(4)
	mean, _ := sampleMoments(t, func() float64 { return r.Exponential(2) })
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exponential(2) mean = %v, want ~0.5", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive rate")
		}
	}()
	New(1).Exponential(0)
}

func TestBernoulli(t *testing.T) {
	r := New(5)
	hits := 0
	for i := 0; i < sampleN; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / sampleN
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", frac)
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	if r.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) returned true")
	}
	if !r.Bernoulli(1.5) {
		t.Error("Bernoulli(1.5) returned false")
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(6)
	mean, variance := sampleMoments(t, func() float64 { return float64(r.Poisson(3.5)) })
	if math.Abs(mean-3.5) > 0.05 {
		t.Errorf("Poisson mean = %v, want ~3.5", mean)
	}
	if math.Abs(variance-3.5) > 0.15 {
		t.Errorf("Poisson variance = %v, want ~3.5", variance)
	}
}

func TestPoissonEdges(t *testing.T) {
	r := New(7)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	// Large lambda goes through the normal approximation.
	big := r.Poisson(1000)
	if big < 800 || big > 1200 {
		t.Errorf("Poisson(1000) = %d, far outside plausible range", big)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative lambda")
		}
	}()
	r.Poisson(-1)
}

func TestGammaMoments(t *testing.T) {
	r := New(8)
	shape, scale := 2.5, 1.5
	mean, variance := sampleMoments(t, func() float64 { return r.Gamma(shape, scale) })
	if math.Abs(mean-shape*scale) > 0.06 {
		t.Errorf("Gamma mean = %v, want ~%v", mean, shape*scale)
	}
	if math.Abs(variance-shape*scale*scale) > 0.3 {
		t.Errorf("Gamma variance = %v, want ~%v", variance, shape*scale*scale)
	}
}

func TestGammaSmallShape(t *testing.T) {
	r := New(9)
	mean, _ := sampleMoments(t, func() float64 { return r.Gamma(0.5, 2) })
	if math.Abs(mean-1.0) > 0.05 {
		t.Errorf("Gamma(0.5,2) mean = %v, want ~1", mean)
	}
}

func TestGammaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive shape")
		}
	}()
	New(1).Gamma(-1, 1)
}

func TestBetaMomentsAndRange(t *testing.T) {
	r := New(10)
	a, b := 2.0, 5.0
	var sum float64
	for i := 0; i < sampleN; i++ {
		v := r.Beta(a, b)
		if v <= 0 || v >= 1 {
			t.Fatalf("Beta out of (0,1): %v", v)
		}
		sum += v
	}
	mean := sum / sampleN
	want := a / (a + b)
	if math.Abs(mean-want) > 0.01 {
		t.Errorf("Beta mean = %v, want ~%v", mean, want)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(11)
	for i := 0; i < 20000; i++ {
		v := r.TruncNormal(0, 1, -0.5, 0.5)
		if v < -0.5 || v > 0.5 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
	// A region far in the tail must still terminate (clamp fallback).
	v := r.TruncNormal(0, 1, 50, 60)
	if v < 50 || v > 60 {
		t.Fatalf("TruncNormal tail fallback out of bounds: %v", v)
	}
}

func TestTruncNormalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted bounds")
		}
	}()
	New(1).TruncNormal(0, 1, 1, -1)
}

func TestChoiceDistribution(t *testing.T) {
	r := New(12)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < sampleN; i++ {
		counts[r.Choice(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	frac0 := float64(counts[0]) / sampleN
	if math.Abs(frac0-0.25) > 0.01 {
		t.Errorf("Choice weight-1 fraction = %v, want ~0.25", frac0)
	}
}

func TestChoicePanics(t *testing.T) {
	r := New(13)
	for _, weights := range [][]float64{{}, {0, 0}, {-1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for weights %v", weights)
				}
			}()
			r.Choice(weights)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(14)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	r := New(15)
	vals := make([]int, 50)
	for i := range vals {
		vals[i] = i
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	sum := 0
	moved := false
	for i, v := range vals {
		sum += v
		if v != i {
			moved = true
		}
	}
	if sum != 49*50/2 {
		t.Errorf("shuffle lost elements: sum = %d", sum)
	}
	if !moved {
		t.Error("shuffle left slice in identity order (astronomically unlikely)")
	}
}
