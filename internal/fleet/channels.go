package fleet

import (
	"vup/internal/canbus"
	"vup/internal/randx"
)

// DailyChannels derives the daily aggregate of every CAN analog
// channel for a day with the given utilization hours. The channels are
// correlated with the utilization level — busier days show higher mean
// rpm, load and fuel rate, and lower end-of-day fuel level — with
// per-day sensor noise, mirroring the multivariate structure of the
// reports the regression models consume.
//
// This is the fast generation path, statistically equivalent to
// running the full telematics stack (internal/telematics exercises the
// frame-level path); both are fed by the same usage series.
func DailyChannels(t Type, hours float64, rng *randx.RNG) map[string]float64 {
	busy := hours / 8 // normalized duty for an 8-hour reference shift
	if busy > 3 {
		busy = 3
	}
	out := make(map[string]float64, 10)
	if hours <= 0 {
		// Inactive day: everything at rest, ambient temperatures.
		out[canbus.ChanEngineSpeed] = 0
		out[canbus.ChanPercentLoad] = 0
		out[canbus.ChanFuelRate] = 0
		out[canbus.ChanSpeed] = 0
		out[canbus.ChanOilPressure] = 0
		out[canbus.ChanCoolantTemp] = rng.Normal(15, 8)
		out[canbus.ChanPumpDriveTemp] = rng.Normal(15, 8)
		out[canbus.ChanOilTankTemp] = rng.Normal(15, 8)
		out[canbus.ChanFuelLevel] = clamp(rng.Normal(60, 15), 2, 100)
		out[canbus.ChanDiggingPress] = 0
		return out
	}
	out[canbus.ChanEngineSpeed] = clamp(rng.Normal(900+700*busy, 120), 600, 2600)
	out[canbus.ChanPercentLoad] = clamp(rng.Normal(25+35*busy, 8), 5, 110)
	out[canbus.ChanFuelRate] = clamp(rng.Normal(4+9*busy, 1.5), 0.5, 60)
	out[canbus.ChanOilPressure] = clamp(rng.Normal(280+60*busy, 25), 120, 700)
	out[canbus.ChanCoolantTemp] = clamp(rng.Normal(70+12*busy, 5), 20, 115)
	out[canbus.ChanPumpDriveTemp] = clamp(rng.Normal(55+15*busy, 6), 15, 130)
	out[canbus.ChanOilTankTemp] = clamp(rng.Normal(50+12*busy, 6), 15, 120)
	// Fuel level drops with consumption; refills reset it randomly.
	out[canbus.ChanFuelLevel] = clamp(rng.Normal(75-18*busy, 12), 2, 100)
	// Machine-control channels are type-dependent: only digging/rolling
	// machines build meaningful hydraulic pressure.
	switch t {
	case CoringMachine, Excavator:
		out[canbus.ChanDiggingPress] = clamp(rng.Normal(12000+9000*busy, 2500), 0, 45000)
	default:
		out[canbus.ChanDiggingPress] = clamp(rng.Normal(2500+1500*busy, 800), 0, 20000)
	}
	out[canbus.ChanSpeed] = clamp(rng.Normal(3+4*busy, 1.5), 0, 40)
	return out
}
