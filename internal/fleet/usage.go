package fleet

import (
	"math"
	"time"

	"vup/internal/geo"
	"vup/internal/randx"
	"vup/internal/weather"
)

// DayUsage is one day of a unit's utilization series.
type DayUsage struct {
	Date  time.Time
	Hours float64 // 0 for inactive days
}

// UsageModel is the generative model of one unit's daily utilization.
// It produces the statistical structure the paper characterizes in
// Section 2: zero-inflated, weekly-periodic, seasonal, holiday-aware
// and non-stationary (slow random-walk drift), with parameters drawn
// per model and per unit so units of the same model still show
// "very different usage patterns".
//
// The weekly structure is deliberately strong: each unit has its own
// set of regular working weekdays (activity ~0.8) and rare weekdays
// (activity ~0.1), which is what makes the paper's ~30 % next-day and
// ~15 % next-working-day errors achievable at all — a memoryless
// coin-flip activity process would put a much higher floor under any
// predictor.
type UsageModel struct {
	vehicle Vehicle
	country geo.Country

	// medianHours is this unit's active-day reference level (type
	// median scaled by model and unit lognormal factors).
	medianHours float64
	// dowProb is the absolute activity probability per weekday
	// (before seasonal/holiday/weekend modulation).
	dowProb [7]float64
	// dowHours is the per-weekday hour-level multiplier; its spread
	// carries the type's hoursSigma.
	dowHours [7]float64
	// dayNoiseSigma is the residual day-to-day log-noise on active-day
	// hours.
	dayNoiseSigma float64
	// weekendFactor scales activity on weekend days.
	weekendFactor float64
	// seasonalAmp and seasonalPhase shape the annual modulation.
	seasonalAmp   float64
	seasonalPhase float64
	// driftSigma is the daily step of the log-level random walk.
	driftSigma float64
	// meanActivity is the expected overall active-day fraction, kept
	// for reporting.
	meanActivity float64
	// Job episodes: construction machines alternate between weeks-long
	// site deployments and idle periods between jobs. The daily exit
	// hazards 1/meanOnSite and 1/meanBetween drive a two-state
	// semi-Markov process; between jobs, activity collapses. This is
	// what makes the series non-stationary beyond the slow drift, and
	// what makes recent lags informative beyond the weekly calendar.
	meanOnSite  float64
	meanBetween float64
	idleDamping float64

	rng *randx.RNG
}

// Calibration constants.
const (
	modelSpreadSigma = 0.35 // across models of a type (Figure 1b)
	unitSpreadSigma  = 0.30 // across units of a model (Figure 1c)
	driftSigmaDaily  = 0.006
	dayNoiseSigma    = 0.22 // residual log-noise on active-day hours
	holidayActivity  = 0.08 // residual activity on public holidays
)

// NewUsageModel draws a usage model for v. modelSeed must be identical
// for all units of the same model so they share the model-level factor;
// rng drives the unit-level draws.
func NewUsageModel(v Vehicle, modelSeed int64, rng *randx.RNG) *UsageModel {
	p := profiles[v.Model.Type]
	country, err := geo.Lookup(v.Country)
	if err != nil {
		country = geo.Country{Code: v.Country, Weekend: [2]time.Weekday{time.Saturday, time.Sunday}}
	}
	modelRng := randx.New(modelSeed)
	modelFactor := modelRng.LogNormal(0, modelSpreadSigma)
	unitFactor := rng.LogNormal(0, unitSpreadSigma)

	m := &UsageModel{
		vehicle:       v,
		country:       country,
		medianHours:   clamp(p.medianHours*modelFactor*unitFactor, 0.2, 16),
		dayNoiseSigma: dayNoiseSigma,
		weekendFactor: p.weekendFactor,
		seasonalAmp:   p.seasonalAmp * rng.Uniform(0.6, 1.4),
		driftSigma:    driftSigmaDaily,
		rng:           rng,
	}
	// Peak season: mid-summer for the unit's hemisphere, with unit
	// jitter. Day-of-year 196 is mid-July.
	peak := 196.0
	if country.Hemisphere == geo.Southern {
		peak = 14.0 // mid-January
	}
	m.seasonalPhase = peak + rng.Uniform(-30, 30)

	// Bimodal weekday activity: every unit gets an explicit set of
	// regular working weekdays (activity ≈ 0.9) while the remaining
	// weekdays see only sporadic use (≈ 0.08). The number of regular
	// days is tuned so the expected overall activity matches the
	// type's calibrated rate after weekend damping.
	// Job-episode process: on-site deployments last 6-16 weeks,
	// between-job gaps 1-6 weeks, with residual activity between jobs.
	m.meanOnSite = rng.Uniform(42, 112)
	m.meanBetween = rng.Uniform(7, 42)
	m.idleDamping = rng.Uniform(0.05, 0.25)
	availability := (m.meanOnSite + m.idleDamping*m.meanBetween) / (m.meanOnSite + m.meanBetween)

	// Regular days mostly land on non-weekend days (see below), so the
	// on-site activity is ≈ (nRegular·0.9 + (7−nRegular)·0.06)/7 and
	// the overall rate is that times the deployment availability;
	// solve for nRegular given the type's target rate.
	const regularProb = 0.9
	target := p.activityRate / availability
	base := (7*target - 7*0.06) / (regularProb - 0.06)
	nRegular := int(math.Round(base + rng.Uniform(-0.8, 0.8)))
	if nRegular < 1 {
		nRegular = 1
	}
	if nRegular > 6 {
		nRegular = 6
	}
	// Regular slots go to the country's working weekdays first; a
	// weekend day becomes regular only after every weekday is taken
	// (refuse compactors on Saturday duty exist, but are the
	// exception).
	var weekdays, weekends []int
	for d := 0; d < 7; d++ {
		wd := time.Weekday(d)
		if wd == country.Weekend[0] || wd == country.Weekend[1] {
			weekends = append(weekends, d)
		} else {
			weekdays = append(weekdays, d)
		}
	}
	rng.Shuffle(len(weekdays), func(i, j int) { weekdays[i], weekdays[j] = weekdays[j], weekdays[i] })
	rng.Shuffle(len(weekends), func(i, j int) { weekends[i], weekends[j] = weekends[j], weekends[i] })
	order := append(append([]int(nil), weekdays...), weekends...)
	regular := map[int]bool{}
	var meanProb float64
	for k, d := range order {
		if k < nRegular {
			regular[d] = true
			m.dowProb[d] = clamp(rng.Beta(14, 1.8), 0.5, 0.97) // ~0.89
		} else {
			m.dowProb[d] = clamp(rng.Beta(1.2, 12), 0.01, 0.3) // ~0.08
		}
		meanProb += m.dowProb[d] / 7
	}
	m.meanActivity = meanProb * (5 + 2*p.weekendFactor) / 7 * availability

	// Per-weekday hour levels carry the type's spread. Sporadic days
	// are short runs (repositioning, maintenance), which concentrates
	// the hours mass on the predictable regular days.
	for d := 0; d < 7; d++ {
		m.dowHours[d] = rng.LogNormal(0, p.hoursSigma)
		if !regular[d] {
			m.dowHours[d] *= 0.4
		}
	}
	return m
}

func clamp(v, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, v)) }

// seasonal returns the multiplicative annual modulation for date.
func (m *UsageModel) seasonal(date time.Time) float64 {
	doy := float64(date.YearDay())
	return 1 + m.seasonalAmp*math.Cos(2*math.Pi*(doy-m.seasonalPhase)/365.25)
}

// Simulate generates days consecutive days of usage starting at start
// (normalized to midnight UTC). The sequence is deterministic for a
// given model state and RNG seed.
func (m *UsageModel) Simulate(start time.Time, days int) []DayUsage {
	return m.SimulateWeather(start, days, nil)
}

// SimulateWeather is Simulate with an aligned daily weather series:
// rain and frost suppress activity proportionally to the type's rain
// sensitivity (the paper's future-work extension). wx may be nil
// (no weather effect) or must cover at least days entries.
func (m *UsageModel) SimulateWeather(start time.Time, days int, wx []weather.Day) []DayUsage {
	start = time.Date(start.Year(), start.Month(), start.Day(), 0, 0, 0, 0, time.UTC)
	out := make([]DayUsage, 0, days)
	logDrift := 0.0
	onSite := m.rng.Bernoulli(m.meanOnSite / (m.meanOnSite + m.meanBetween))
	for i := 0; i < days; i++ {
		date := start.AddDate(0, 0, i)
		// Non-stationary drift: bounded log-level random walk.
		logDrift = clamp(logDrift+m.rng.Normal(0, m.driftSigma), -0.9, 0.9)
		// Job-episode transitions (daily exit hazard).
		if onSite {
			if m.rng.Bernoulli(1 / m.meanOnSite) {
				onSite = false
			}
		} else if m.rng.Bernoulli(1 / m.meanBetween) {
			onSite = true
		}

		wd := date.Weekday()
		prob := m.dowProb[wd] * m.seasonal(date)
		if !onSite {
			prob *= m.idleDamping
		}
		if i < len(wx) {
			prob *= weather.WorkImpact(wx[i], profiles[m.vehicle.Model.Type].rainSensitivity)
		}
		if m.country.IsWeekend(date) {
			prob *= m.weekendFactor
		}
		if holiday, _ := geo.IsHoliday(m.country.Code, date); holiday {
			prob *= holidayActivity
		}
		hours := 0.0
		if m.rng.Bernoulli(clamp(prob, 0, 0.98)) {
			level := m.medianHours * math.Exp(logDrift) * m.dowHours[wd] * m.seasonal(date)
			hours = clamp(m.rng.LogNormal(math.Log(level), m.dayNoiseSigma), 0.05, 24)
		}
		out = append(out, DayUsage{Date: date, Hours: hours})
	}
	return out
}

// MedianHours returns the unit's active-day reference level.
func (m *UsageModel) MedianHours() float64 { return m.medianHours }

// ActivityRate returns the unit's expected overall active-day
// fraction.
func (m *UsageModel) ActivityRate() float64 { return m.meanActivity }

// Country returns the unit's deployment country.
func (m *UsageModel) Country() geo.Country { return m.country }
