package fleet

import (
	"context"
	"fmt"
	"time"

	"vup/internal/geo"
	"vup/internal/parallel"
	"vup/internal/randx"
)

// Config parameterizes fleet generation. The defaults reproduce the
// study's population: 2 239 units over 10 types observed from
// 2015-01-01 to 2018-09-30.
type Config struct {
	Units int
	Start time.Time
	Days  int
	Seed  int64
}

// StudyStart is the first day of the paper's observation period.
var StudyStart = time.Date(2015, time.January, 1, 0, 0, 0, 0, time.UTC)

// StudyDays is the length of the observation period (2015-01-01 to
// 2018-09-30 inclusive).
const StudyDays = 1369

// DefaultConfig returns the full study-scale configuration.
func DefaultConfig() Config {
	return Config{Units: 2239, Start: StudyStart, Days: StudyDays, Seed: 1}
}

// SmallConfig returns a laptop-scale configuration for examples and
// tests: a few dozen units over roughly two years.
func SmallConfig() Config {
	return Config{Units: 60, Start: StudyStart, Days: 730, Seed: 1}
}

// Unit couples a vehicle with its generative usage model.
type Unit struct {
	Vehicle Vehicle
	Model   *UsageModel
}

// Fleet is a generated vehicle population.
type Fleet struct {
	Config Config
	Units  []Unit
}

// Generate draws a fleet from cfg. Units are distributed over types
// according to the calibrated shares, assigned to a model of their
// type and to a deployment country. All draws are deterministic in
// cfg.Seed.
func Generate(cfg Config) (*Fleet, error) {
	if cfg.Units <= 0 {
		return nil, fmt.Errorf("fleet: non-positive unit count %d", cfg.Units)
	}
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("fleet: non-positive day count %d", cfg.Days)
	}
	if cfg.Start.IsZero() {
		cfg.Start = StudyStart
	}
	rng := randx.New(cfg.Seed)
	countries := geo.Codes()

	weights := make([]float64, numTypes)
	for t, p := range profiles {
		weights[t] = p.unitsShare
	}

	f := &Fleet{Config: cfg, Units: make([]Unit, 0, cfg.Units)}
	for i := 0; i < cfg.Units; i++ {
		t := Type(rng.Choice(weights))
		model := Model{Type: t, Index: rng.Intn(profiles[t].models)}
		v := Vehicle{
			ID:      fmt.Sprintf("veh-%04d", i),
			Model:   model,
			Country: countries[rng.Intn(len(countries))],
		}
		// The model-level factor must be shared by all units of the
		// same model: derive its seed from the fleet seed and model id.
		modelSeed := cfg.Seed*1_000_003 + int64(t)*1_009 + int64(model.Index)
		f.Units = append(f.Units, Unit{
			Vehicle: v,
			Model:   NewUsageModel(v, modelSeed, rng.Split()),
		})
	}
	return f, nil
}

// ByType returns the units of the given type.
func (f *Fleet) ByType(t Type) []Unit {
	var out []Unit
	for _, u := range f.Units {
		if u.Vehicle.Model.Type == t {
			out = append(out, u)
		}
	}
	return out
}

// ByModel returns the units of the given model.
func (f *Fleet) ByModel(m Model) []Unit {
	var out []Unit
	for _, u := range f.Units {
		if u.Vehicle.Model == m {
			out = append(out, u)
		}
	}
	return out
}

// Models returns the distinct models present in the fleet, in
// first-seen order.
func (f *Fleet) Models() []Model {
	seen := map[Model]bool{}
	var out []Model
	for _, u := range f.Units {
		if !seen[u.Vehicle.Model] {
			seen[u.Vehicle.Model] = true
			out = append(out, u.Vehicle.Model)
		}
	}
	return out
}

// SimulateAll generates the usage series of every unit, keyed by
// vehicle ID, using every CPU.
func (f *Fleet) SimulateAll() map[string][]DayUsage {
	return f.SimulateAllWorkers(0)
}

// SimulateAllWorkers is SimulateAll with a bounded worker count (<=0
// selects every CPU). The output is identical for any worker count:
// each unit's UsageModel owns an independent RNG stream split off in
// fleet order at Generate time, so per-unit simulation consumes no
// shared state and the series per unit does not depend on which
// goroutine (or in which order) it runs.
func (f *Fleet) SimulateAllWorkers(workers int) map[string][]DayUsage {
	series := make([][]DayUsage, len(f.Units))
	// No job can fail; the error return is structurally nil.
	_ = parallel.ForEach(context.Background(), len(f.Units),
		parallel.Options{Workers: workers, Stage: "fleet_simulate"},
		func(_ context.Context, i int) error {
			series[i] = f.Units[i].Model.Simulate(f.Config.Start, f.Config.Days)
			return nil
		})
	out := make(map[string][]DayUsage, len(f.Units))
	for i, u := range f.Units {
		out[u.Vehicle.ID] = series[i]
	}
	return out
}
