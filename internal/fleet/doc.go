// Package fleet models the heterogeneous industrial-vehicle population
// of the study (Section 2, characterized in Figure 1) and generates
// its synthetic usage data. The generator is calibrated against every
// aggregate the paper publishes: 10 vehicle types with very different
// usage levels (graders and refuse compactors above 6 h/day median,
// coring machines below 1 h), 44 refuse-compactor and 65
// single-drum-roller models, high variance across models and even
// across units of one model (Figures 1b/1c), ~36 % activity rate for
// refuse compactors, weekly periodicity (the Figure 2 ACF peaks),
// holiday and seasonal dips ([vup/internal/geo]) and slow
// non-stationary drift per unit.
//
// [Fleet.SimulateAll] fans the per-unit simulation out on
// [vup/internal/parallel]; each unit's UsageModel owns an RNG stream
// split off in fleet order at [Generate] time
// ([vup/internal/randx.RNG.Split]), so the series are identical at any
// worker count. Downstream, [vup/internal/experiments] turns the
// simulated fleet into the Figure 1 characterization and
// [vup/internal/core] evaluates the prediction pipeline on it.
package fleet
