package fleet

import "fmt"

// Type enumerates the construction-vehicle types of the dataset. The
// paper names eight examples of its ten types; the remaining two are
// filled with common construction machines.
type Type int

const (
	RefuseCompactor Type = iota
	SingleDrumRoller
	TandemRoller
	CoringMachine
	Paver
	Recycler
	ColdPlaner
	Grader
	Excavator
	WheelLoader
	numTypes
)

// Types returns every vehicle type in declaration order.
func Types() []Type {
	out := make([]Type, numTypes)
	for i := range out {
		out[i] = Type(i)
	}
	return out
}

// String implements fmt.Stringer.
func (t Type) String() string {
	names := [...]string{
		"refuse compactor", "single drum roller", "tandem roller",
		"coring machine", "paver", "recycler", "cold planer", "grader",
		"excavator", "wheel loader",
	}
	if t < 0 || int(t) >= len(names) {
		return fmt.Sprintf("type(%d)", int(t))
	}
	return names[t]
}

// profile captures the per-type calibration targets used by the
// generator.
type profile struct {
	// models is the number of models of this type (paper: 44 refuse
	// compactor, 65 single drum roller, 10 recycler models).
	models int
	// unitsShare is the relative share of the 2 239 units.
	unitsShare float64
	// medianHours is the target median daily utilization on active
	// days.
	medianHours float64
	// hoursSigma is the log-space spread of active-day hours, which
	// controls the tail (some types work up to 24 h/day).
	hoursSigma float64
	// activityRate is the fraction of days with any usage.
	activityRate float64
	// weekendFactor scales the activity rate on weekends.
	weekendFactor float64
	// seasonalAmp is the amplitude of the seasonal usage modulation.
	seasonalAmp float64
	// rainSensitivity in [0,1] scales how strongly rain and frost
	// suppress this type's work (pavers cannot pave in the rain;
	// refuse compactors collect waste regardless).
	rainSensitivity float64
}

// profiles is the calibration table. medianHours reproduces the
// ordering in Figure 1(a): graders and refuse compactors > 6 h,
// coring machines < 1 h, the rest in between.
var profiles = [numTypes]profile{
	RefuseCompactor:  {models: 44, unitsShare: 0.28, medianHours: 6.5, hoursSigma: 0.45, activityRate: 0.36, weekendFactor: 0.35, seasonalAmp: 0.15, rainSensitivity: 0.10},
	SingleDrumRoller: {models: 65, unitsShare: 0.22, medianHours: 3.5, hoursSigma: 0.55, activityRate: 0.30, weekendFactor: 0.20, seasonalAmp: 0.30, rainSensitivity: 0.70},
	TandemRoller:     {models: 30, unitsShare: 0.12, medianHours: 3.0, hoursSigma: 0.55, activityRate: 0.28, weekendFactor: 0.20, seasonalAmp: 0.30, rainSensitivity: 0.70},
	CoringMachine:    {models: 8, unitsShare: 0.04, medianHours: 0.8, hoursSigma: 0.70, activityRate: 0.22, weekendFactor: 0.15, seasonalAmp: 0.20, rainSensitivity: 0.30},
	Paver:            {models: 25, unitsShare: 0.09, medianHours: 4.0, hoursSigma: 0.50, activityRate: 0.32, weekendFactor: 0.20, seasonalAmp: 0.35, rainSensitivity: 0.90},
	Recycler:         {models: 10, unitsShare: 0.04, medianHours: 4.5, hoursSigma: 0.60, activityRate: 0.30, weekendFactor: 0.25, seasonalAmp: 0.25, rainSensitivity: 0.60},
	ColdPlaner:       {models: 15, unitsShare: 0.06, medianHours: 3.8, hoursSigma: 0.55, activityRate: 0.30, weekendFactor: 0.20, seasonalAmp: 0.30, rainSensitivity: 0.80},
	Grader:           {models: 20, unitsShare: 0.07, medianHours: 7.0, hoursSigma: 0.40, activityRate: 0.45, weekendFactor: 0.40, seasonalAmp: 0.20, rainSensitivity: 0.50},
	Excavator:        {models: 35, unitsShare: 0.05, medianHours: 5.5, hoursSigma: 0.50, activityRate: 0.40, weekendFactor: 0.30, seasonalAmp: 0.20, rainSensitivity: 0.40},
	WheelLoader:      {models: 28, unitsShare: 0.03, medianHours: 5.0, hoursSigma: 0.50, activityRate: 0.38, weekendFactor: 0.35, seasonalAmp: 0.15, rainSensitivity: 0.30},
}

// ModelCount returns the number of models of type t in the dataset.
func ModelCount(t Type) int { return profiles[t].models }

// Model identifies a type subcategory.
type Model struct {
	Type  Type
	Index int // 0-based within the type
}

// ID returns a stable model identifier such as "RC-07".
func (m Model) ID() string {
	prefixes := [...]string{"RC", "SDR", "TR", "CM", "PV", "RCY", "CP", "GR", "EX", "WL"}
	return fmt.Sprintf("%s-%02d", prefixes[m.Type], m.Index)
}

// Vehicle is one physical unit of the fleet.
type Vehicle struct {
	ID      string
	Model   Model
	Country string // ISO code, drives the holiday calendar and seasons
}

// TypeOf is a convenience accessor.
func (v Vehicle) TypeOf() Type { return v.Model.Type }
