package fleet

import (
	"math"
	"testing"
	"time"

	"vup/internal/canbus"
	"vup/internal/randx"
	"vup/internal/stats"
)

func TestTypesAndStrings(t *testing.T) {
	ts := Types()
	if len(ts) != 10 {
		t.Fatalf("types = %d, want 10", len(ts))
	}
	if RefuseCompactor.String() != "refuse compactor" || Grader.String() != "grader" {
		t.Error("type names wrong")
	}
	if Type(99).String() != "type(99)" {
		t.Error("invalid type name wrong")
	}
}

func TestModelCounts(t *testing.T) {
	// The paper: 44 refuse-compactor models, 65 single-drum-roller
	// models, 10 recycler models.
	if ModelCount(RefuseCompactor) != 44 {
		t.Errorf("refuse compactor models = %d", ModelCount(RefuseCompactor))
	}
	if ModelCount(SingleDrumRoller) != 65 {
		t.Errorf("single drum roller models = %d", ModelCount(SingleDrumRoller))
	}
	if ModelCount(Recycler) != 10 {
		t.Errorf("recycler models = %d", ModelCount(Recycler))
	}
}

func TestModelID(t *testing.T) {
	m := Model{Type: RefuseCompactor, Index: 7}
	if m.ID() != "RC-07" {
		t.Errorf("ID = %s", m.ID())
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Units: 0, Days: 10}); err == nil {
		t.Error("expected error for zero units")
	}
	if _, err := Generate(Config{Units: 10, Days: 0}); err == nil {
		t.Error("expected error for zero days")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Units: 30, Days: 100, Seed: 5}
	f1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := Generate(cfg)
	u1 := f1.SimulateAll()
	u2 := f2.SimulateAll()
	for id, s1 := range u1 {
		s2 := u2[id]
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("vehicle %s day %d differs", id, i)
			}
		}
	}
}

func TestGeneratePopulation(t *testing.T) {
	f, err := Generate(Config{Units: 500, Days: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Units) != 500 {
		t.Fatalf("units = %d", len(f.Units))
	}
	// Refuse compactors should be the most common type (the paper
	// calls it "the mostly used vehicle type").
	counts := map[Type]int{}
	for _, u := range f.Units {
		counts[u.Vehicle.Model.Type]++
		if u.Vehicle.Country == "" {
			t.Fatal("unit without country")
		}
	}
	for _, typ := range Types() {
		if typ == RefuseCompactor {
			continue
		}
		if counts[typ] > counts[RefuseCompactor] {
			t.Errorf("type %v (%d) more common than refuse compactor (%d)", typ, counts[typ], counts[RefuseCompactor])
		}
	}
}

func TestByTypeByModel(t *testing.T) {
	f, err := Generate(Config{Units: 200, Days: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rcs := f.ByType(RefuseCompactor)
	if len(rcs) == 0 {
		t.Fatal("no refuse compactors in 200 units")
	}
	m := rcs[0].Vehicle.Model
	units := f.ByModel(m)
	if len(units) == 0 {
		t.Fatal("ByModel empty")
	}
	for _, u := range units {
		if u.Vehicle.Model != m {
			t.Fatal("ByModel returned wrong model")
		}
	}
	if len(f.Models()) == 0 {
		t.Fatal("Models empty")
	}
}

// simulateHours pools active-day hours across several units of a type.
func simulateHours(t *testing.T, typ Type, units, days int, seed int64) []float64 {
	t.Helper()
	rng := randx.New(seed)
	var all []float64
	for i := 0; i < units; i++ {
		v := Vehicle{ID: "t", Model: Model{Type: typ, Index: i % profiles[typ].models}, Country: "IT"}
		m := NewUsageModel(v, seed+int64(i%5), rng.Split())
		for _, d := range m.Simulate(StudyStart, days) {
			if d.Hours > 0 {
				all = append(all, d.Hours)
			}
		}
	}
	return all
}

func TestTypeMedianOrdering(t *testing.T) {
	// Figure 1(a): graders and refuse compactors above 6h median,
	// coring machines below ~1h.
	grader := stats.Median(simulateHours(t, Grader, 40, 365, 10))
	rc := stats.Median(simulateHours(t, RefuseCompactor, 40, 365, 11))
	coring := stats.Median(simulateHours(t, CoringMachine, 40, 365, 12))
	if grader < 5 {
		t.Errorf("grader median = %v, want > 5", grader)
	}
	if rc < 5 {
		t.Errorf("refuse compactor median = %v, want > 5", rc)
	}
	if coring > 1.6 {
		t.Errorf("coring machine median = %v, want < 1.6", coring)
	}
	if !(grader > coring && rc > coring) {
		t.Errorf("ordering violated: grader %v rc %v coring %v", grader, rc, coring)
	}
}

func TestLongTail(t *testing.T) {
	// Some types work up to ~24h/day: the pooled max must exceed 16h.
	hours := simulateHours(t, SingleDrumRoller, 60, 365, 13)
	if stats.Max(hours) < 16 {
		t.Errorf("max hours = %v, no long tail", stats.Max(hours))
	}
	if stats.Max(hours) > 24 {
		t.Errorf("hours exceed 24: %v", stats.Max(hours))
	}
}

func TestRefuseCompactorActivityRate(t *testing.T) {
	// The paper: refuse compactors were used ~36% of days in 2017.
	rng := randx.New(20)
	active, total := 0, 0
	start := time.Date(2017, time.January, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 60; i++ {
		v := Vehicle{ID: "t", Model: Model{Type: RefuseCompactor, Index: i % 44}, Country: "IT"}
		m := NewUsageModel(v, 100+int64(i%9), rng.Split())
		for _, d := range m.Simulate(start, 365) {
			total++
			if d.Hours > 0 {
				active++
			}
		}
	}
	rate := float64(active) / float64(total)
	if rate < 0.22 || rate > 0.50 {
		t.Errorf("activity rate = %v, want ~0.36", rate)
	}
}

func TestWeeklyPeriodicityInACF(t *testing.T) {
	// The autocorrelation of a unit's daily series must show the
	// weekly structure Figure 2 relies on.
	rng := randx.New(30)
	v := Vehicle{ID: "t", Model: Model{Type: RefuseCompactor, Index: 0}, Country: "IT"}
	m := NewUsageModel(v, 7, rng.Split())
	usage := m.Simulate(StudyStart, 730)
	series := make([]float64, len(usage))
	for i, d := range usage {
		series[i] = d.Hours
	}
	acf := stats.ACF(series, 21)
	if acf[7] < 0.05 {
		t.Errorf("weekly lag-7 ACF = %v, want positive structure", acf[7])
	}
	// Lag 7 should beat mid-week lags on average.
	mid := (math.Abs(acf[3]) + math.Abs(acf[4])) / 2
	if acf[7] <= mid-0.05 {
		t.Errorf("lag 7 (%v) not stronger than mid-week (%v)", acf[7], mid)
	}
}

func TestHolidayDip(t *testing.T) {
	// December/January activity for a northern-hemisphere unit must be
	// lower than June activity (Christmas + winter dip).
	rng := randx.New(40)
	activeIn := func(month time.Month, years int) float64 {
		act, tot := 0, 0
		for y := 0; y < years; y++ {
			v := Vehicle{ID: "t", Model: Model{Type: SingleDrumRoller, Index: y % 65}, Country: "DE"}
			m := NewUsageModel(v, int64(200+y), rng.Split())
			for _, d := range m.Simulate(StudyStart, 1095) {
				if d.Date.Month() != month {
					continue
				}
				tot++
				if d.Hours > 0 {
					act++
				}
			}
		}
		return float64(act) / float64(tot)
	}
	dec := activeIn(time.December, 8)
	jun := activeIn(time.June, 8)
	if dec >= jun {
		t.Errorf("December activity (%v) not below June (%v)", dec, jun)
	}
}

func TestUnitsOfSameModelDiffer(t *testing.T) {
	rng := randx.New(50)
	v := Vehicle{ID: "a", Model: Model{Type: RefuseCompactor, Index: 3}, Country: "IT"}
	m1 := NewUsageModel(v, 999, rng.Split())
	m2 := NewUsageModel(v, 999, rng.Split())
	if m1.MedianHours() == m2.MedianHours() {
		t.Error("unit-level factors identical across units")
	}
}

func TestUsageBounds(t *testing.T) {
	rng := randx.New(60)
	for _, typ := range Types() {
		v := Vehicle{ID: "t", Model: Model{Type: typ, Index: 0}, Country: "AU"}
		m := NewUsageModel(v, int64(typ), rng.Split())
		for _, d := range m.Simulate(StudyStart, 400) {
			if d.Hours < 0 || d.Hours > 24 {
				t.Fatalf("type %v hours out of range: %v", typ, d.Hours)
			}
		}
	}
}

func TestUnknownCountryFallsBack(t *testing.T) {
	rng := randx.New(70)
	v := Vehicle{ID: "t", Model: Model{Type: Paver, Index: 0}, Country: "ZZ"}
	m := NewUsageModel(v, 1, rng.Split())
	if got := m.Country().Code; got != "ZZ" {
		t.Errorf("country code = %q", got)
	}
	usage := m.Simulate(StudyStart, 60)
	if len(usage) != 60 {
		t.Fatalf("len = %d", len(usage))
	}
}

func TestDailyChannelsCorrelation(t *testing.T) {
	rng := randx.New(80)
	var hours, fuel, rpm []float64
	for i := 0; i < 2000; i++ {
		h := rng.Uniform(0.5, 12)
		ch := DailyChannels(RefuseCompactor, h, rng)
		hours = append(hours, h)
		fuel = append(fuel, ch[canbus.ChanFuelRate])
		rpm = append(rpm, ch[canbus.ChanEngineSpeed])
	}
	if r := stats.Pearson(hours, fuel); r < 0.5 {
		t.Errorf("fuel-rate correlation = %v, want strong", r)
	}
	if r := stats.Pearson(hours, rpm); r < 0.5 {
		t.Errorf("rpm correlation = %v, want strong", r)
	}
}

func TestDailyChannelsInactive(t *testing.T) {
	rng := randx.New(90)
	ch := DailyChannels(Grader, 0, rng)
	if ch[canbus.ChanEngineSpeed] != 0 || ch[canbus.ChanFuelRate] != 0 {
		t.Errorf("inactive day with engine activity: %+v", ch)
	}
	if len(ch) != 10 {
		t.Errorf("channels = %d, want 10", len(ch))
	}
}

func TestDailyChannelsTypeDependent(t *testing.T) {
	rng := randx.New(100)
	var digger, roller float64
	for i := 0; i < 500; i++ {
		digger += DailyChannels(Excavator, 8, rng)[canbus.ChanDiggingPress]
		roller += DailyChannels(TandemRoller, 8, rng)[canbus.ChanDiggingPress]
	}
	if digger <= roller {
		t.Errorf("excavator digging pressure (%v) not above roller (%v)", digger, roller)
	}
}

func TestDefaultAndSmallConfig(t *testing.T) {
	d := DefaultConfig()
	if d.Units != 2239 || d.Days != StudyDays || !d.Start.Equal(StudyStart) {
		t.Errorf("DefaultConfig = %+v", d)
	}
	s := SmallConfig()
	if s.Units <= 0 || s.Days <= 0 {
		t.Errorf("SmallConfig = %+v", s)
	}
	// StudyDays covers 2015-01-01..2018-09-30.
	end := StudyStart.AddDate(0, 0, StudyDays-1)
	if end.Year() != 2018 || end.Month() != time.September || end.Day() != 30 {
		t.Errorf("study end = %v", end)
	}
}
