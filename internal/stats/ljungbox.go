package stats

import (
	"errors"
	"math"
)

// ErrShortSeries is returned when a test needs a longer series.
var ErrShortSeries = errors.New("stats: series too short")

// LjungBox computes the Ljung-Box portmanteau statistic over lags
// 1..h,
//
//	Q = n(n+2) Σ_{k=1..h} r_k²/(n−k)
//
// and its p-value under the χ²(h) null of no autocorrelation. A small
// p-value means the series is significantly autocorrelated — the
// statistical justification for the paper's ACF-based feature
// selection.
func LjungBox(xs []float64, h int) (q, pValue float64, err error) {
	n := len(xs)
	if h <= 0 {
		return 0, 0, errors.New("stats: Ljung-Box with non-positive lag count")
	}
	if n <= h+1 {
		return 0, 0, ErrShortSeries
	}
	acf := ACF(xs, h)
	for k := 1; k <= h; k++ {
		q += acf[k] * acf[k] / float64(n-k)
	}
	q *= float64(n) * float64(n+2)
	return q, ChiSquareSurvival(q, float64(h)), nil
}

// ChiSquareSurvival returns P(X > x) for X ~ χ²(k).
func ChiSquareSurvival(x, k float64) float64 {
	if x <= 0 {
		return 1
	}
	return 1 - GammaP(k/2, x/2)
}

// GammaP is the regularized lower incomplete gamma function P(a, x),
// computed by series expansion for x < a+1 and by continued fraction
// otherwise (Numerical Recipes 6.2).
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinued(a, x)
	}
}

const (
	gammaEps     = 3e-14
	gammaMaxIter = 500
)

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinued(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// SignificantLags returns the lags in [1, maxLag] whose sample
// autocorrelation exceeds the 95% white-noise band, sorted by
// descending |r| and truncated to at most k entries (ascending lag
// order in the result). When no lag is significant it falls back to
// the plain top-k ranking so downstream feature construction always
// has lags to work with.
func SignificantLags(xs []float64, maxLag, k int) []int {
	if k <= 0 || maxLag <= 0 {
		return nil
	}
	band := ACFConfidence(len(xs))
	acf := ACF(xs, maxLag)
	type lagR struct {
		lag int
		r   float64
	}
	var sig []lagR
	for l := 1; l <= maxLag && l < len(acf); l++ {
		if math.Abs(acf[l]) > band {
			sig = append(sig, lagR{l, math.Abs(acf[l])})
		}
	}
	if len(sig) == 0 {
		return TopLags(xs, maxLag, k)
	}
	// Sort by descending |r|, stable toward smaller lags.
	for i := 1; i < len(sig); i++ {
		//lint:allow floatsafety deterministic sort tiebreak; equal keys must fall through to the lag ordering
		for j := i; j > 0 && (sig[j].r > sig[j-1].r || (sig[j].r == sig[j-1].r && sig[j].lag < sig[j-1].lag)); j-- {
			sig[j], sig[j-1] = sig[j-1], sig[j]
		}
	}
	if len(sig) > k {
		sig = sig[:k]
	}
	out := make([]int, 0, len(sig))
	for _, s := range sig {
		out = append(out, s.lag)
	}
	// Ascending lag order for the caller.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
