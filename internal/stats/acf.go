package stats

import (
	"math"
	"sort"
)

// ACF computes the sample autocorrelation function of xs for lags
// 0..maxLag using the standard biased estimator
//
//	r(l) = sum_{t=l}^{n-1} (x_t - mean)(x_{t-l} - mean) / sum_t (x_t - mean)^2
//
// which is the estimator the paper's feature-selection step relies on
// (Section 3, Figure 2). The returned slice has maxLag+1 entries with
// r(0) == 1. Lags with no overlap (l >= n) are 0. A constant series has
// an undefined ACF; all lags beyond 0 are returned as 0 so downstream
// lag ranking degrades gracefully.
func ACF(xs []float64, maxLag int) []float64 {
	if maxLag < 0 {
		panic("stats: negative maxLag")
	}
	out := make([]float64, maxLag+1)
	n := len(xs)
	if n == 0 {
		return out
	}
	out[0] = 1
	m := Mean(xs)
	var denom float64
	for _, x := range xs {
		d := x - m
		denom += d * d
	}
	if denom == 0 {
		return out
	}
	for l := 1; l <= maxLag && l < n; l++ {
		var num float64
		for t := l; t < n; t++ {
			num += (xs[t] - m) * (xs[t-l] - m)
		}
		out[l] = num / denom
	}
	return out
}

// ACFConfidence returns the approximate 95% white-noise confidence
// band half-width for a series of length n: 1.96/sqrt(n). Lags whose
// |r(l)| exceed this are significantly autocorrelated.
func ACFConfidence(n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return 1.96 / math.Sqrt(float64(n))
}

// TopLags returns the k lags in [1, maxLag] with the largest
// autocorrelation values of xs, in ascending lag order. This is the
// paper's statistics-based feature selection: "pick the K lags with
// maximal autocorrelation value". Fewer than k lags are returned when
// maxLag < k. Ties are broken toward the smaller lag so the selection
// is deterministic.
func TopLags(xs []float64, maxLag, k int) []int {
	if k <= 0 || maxLag <= 0 {
		return nil
	}
	acf := ACF(xs, maxLag)
	lags := make([]int, 0, maxLag)
	for l := 1; l <= maxLag; l++ {
		lags = append(lags, l)
	}
	sort.SliceStable(lags, func(a, b int) bool {
		return acf[lags[a]] > acf[lags[b]]
	})
	if k > len(lags) {
		k = len(lags)
	}
	sel := append([]int(nil), lags[:k]...)
	sort.Ints(sel)
	return sel
}
