package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestSumMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Sum(xs); got != 10 {
		t.Errorf("Sum = %v", got)
	}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if got := Std(xs); !almost(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Std = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single obs should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Quantile([]float64{42}, 0.7); got != 42 {
		t.Errorf("Quantile single = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p > 1")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Min != 1 || s.Max != 8 || s.Median != 4.5 {
		t.Errorf("Summary = %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

// Property: quantiles are monotone in p and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0001; p += 0.1 {
			pp := math.Min(p, 1)
			q := Quantile(xs, pp)
			if q < prev-1e-9 || q < Min(xs)-1e-9 || q > Max(xs)+1e-9 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.Eval(c.x); !almost(got, c.want, 1e-12) {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if NewECDF(nil) != nil {
		t.Error("NewECDF(nil) should be nil")
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40})
	if got := e.Quantile(0.5); got != 20 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if got := e.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := e.Quantile(1); got != 40 {
		t.Errorf("Quantile(1) = %v", got)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{2, 1, 2, 3})
	xs, fs := e.Points()
	wantX := []float64{1, 2, 3}
	wantF := []float64{0.25, 0.75, 1}
	if len(xs) != 3 {
		t.Fatalf("points = %v %v", xs, fs)
	}
	for i := range xs {
		if xs[i] != wantX[i] || !almost(fs[i], wantF[i], 1e-12) {
			t.Errorf("point %d = (%v,%v)", i, xs[i], fs[i])
		}
	}
}

// Property: ECDF.Eval is a valid CDF (monotone, 0..1) and consistent
// with direct counting.
func TestECDFProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		e := NewECDF(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, probe := range []float64{sorted[0] - 1, sorted[0], sorted[n/2], sorted[n-1], sorted[n-1] + 1} {
			f := e.Eval(probe)
			if f < prev-1e-12 || f < 0 || f > 1 {
				t.Fatalf("invalid CDF value %v at %v", f, probe)
			}
			count := 0
			for _, x := range xs {
				if x <= probe {
					count++
				}
			}
			if !almost(f, float64(count)/float64(n), 1e-12) {
				t.Fatalf("Eval mismatch: %v vs %v", f, float64(count)/float64(n))
			}
			prev = f
		}
	}
}

func TestBoxStats(t *testing.T) {
	// 1..11 plus an extreme outlier.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 100}
	b, err := Box(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 12 || b.Min != 1 || b.Max != 100 {
		t.Errorf("Box = %+v", b)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("Outliers = %v", b.Outliers)
	}
	if b.WhiskHi != 11 {
		t.Errorf("WhiskHi = %v, want 11", b.WhiskHi)
	}
	if b.WhiskLo != 1 {
		t.Errorf("WhiskLo = %v, want 1", b.WhiskLo)
	}
	if _, err := Box(nil); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestBoxNoOutliers(t *testing.T) {
	b, err := Box([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Outliers) != 0 {
		t.Errorf("constant sample has outliers: %v", b.Outliers)
	}
	if b.Q1 != 5 || b.Median != 5 || b.Q3 != 5 {
		t.Errorf("quartiles = %v %v %v", b.Q1, b.Median, b.Q3)
	}
}

// Property: whiskers lie inside fences, quartiles are ordered, and
// outlier count + in-fence count equals N.
func TestBoxProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*5 + float64(rng.Intn(3))*20
		}
		b, err := Box(xs)
		if err != nil {
			t.Fatal(err)
		}
		if !(b.Q1 <= b.Median && b.Median <= b.Q3) {
			t.Fatalf("quartiles unordered: %+v", b)
		}
		if b.WhiskLo < b.LoFence-1e-9 || b.WhiskHi > b.HiFence+1e-9 {
			t.Fatalf("whiskers outside fences: %+v", b)
		}
		inside := 0
		for _, x := range xs {
			if x >= b.LoFence && x <= b.HiFence {
				inside++
			}
		}
		if inside+len(b.Outliers) != n {
			t.Fatalf("outlier partition broken: inside=%d outliers=%d n=%d", inside, len(b.Outliers), n)
		}
	}
}
