package stats

import "math"

// Welford accumulates mean and variance in a single streaming pass
// using Welford's numerically stable recurrence. The zero value is
// ready to use. It is the accumulator behind the 10-minute report
// aggregation in the telematics substrate, where per-signal means are
// computed over high-frequency CAN samples without buffering them.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds another accumulator into w (parallel variance merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// N returns the number of observations recorded.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN if no observations).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased sample variance (NaN if fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (NaN if none).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation (NaN if none).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}
