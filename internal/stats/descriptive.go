// Package stats implements the statistical substrate of the study:
// descriptive statistics, empirical CDFs, box-plot statistics with
// 1.5·IQR outlier fences, correlation measures, the autocorrelation
// function used by the feature-selection step, histograms and streaming
// accumulators.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns NaN for an empty
// slice so callers can propagate "no data" without branching.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN if fewer
// than two observations).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Std returns the sample standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs (NaN if empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (NaN if empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (the same convention as
// numpy's default). It returns NaN for an empty slice and panics for p
// outside [0, 1]. xs is not modified.
func Quantile(xs []float64, p float64) float64 {
	if p < 0 || p > 1 {
		panic("stats: quantile probability outside [0,1]")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// quantileSorted computes the interpolated p-quantile of an already
// sorted sample.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary bundles the descriptive statistics reported for a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Q1, Median, Q3 float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    Std(xs),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
	}, nil
}
