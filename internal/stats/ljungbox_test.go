package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("GammaP(1, %v) = %v, want %v", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaP(0.5, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("GammaP(0.5, %v) = %v, want %v", x, got, want)
		}
	}
	if got := GammaP(2, 0); got != 0 {
		t.Errorf("GammaP(2, 0) = %v", got)
	}
	if !math.IsNaN(GammaP(-1, 1)) {
		t.Error("negative a should be NaN")
	}
}

func TestGammaPMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 30; x += 0.25 {
		v := GammaP(3.5, x)
		if v < prev-1e-12 || v < 0 || v > 1 {
			t.Fatalf("GammaP not a CDF at x=%v: %v", x, v)
		}
		prev = v
	}
}

func TestChiSquareSurvival(t *testing.T) {
	// χ²(2) survival is exp(-x/2).
	for _, x := range []float64{0.5, 2, 6} {
		want := math.Exp(-x / 2)
		if got := ChiSquareSurvival(x, 2); math.Abs(got-want) > 1e-10 {
			t.Errorf("ChiSquareSurvival(%v, 2) = %v, want %v", x, got, want)
		}
	}
	// Known critical value: P(X > 3.841) = 0.05 for χ²(1).
	if got := ChiSquareSurvival(3.8415, 1); math.Abs(got-0.05) > 1e-3 {
		t.Errorf("chi2(1) 5%% critical value: %v", got)
	}
	if ChiSquareSurvival(-1, 2) != 1 {
		t.Error("negative x should survive with probability 1")
	}
}

func TestLjungBoxWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	rejections := 0
	trials := 200
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 300)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		_, p, err := LjungBox(xs, 10)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.05 {
			rejections++
		}
	}
	// Nominal 5% size: allow generous slack.
	if rejections > trials/5 {
		t.Errorf("white noise rejected %d/%d times", rejections, trials)
	}
}

func TestLjungBoxPeriodicSignal(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 7)
	}
	q, p, err := LjungBox(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("periodic signal p = %v, want ~0", p)
	}
	if q <= 0 {
		t.Errorf("q = %v", q)
	}
}

func TestLjungBoxErrors(t *testing.T) {
	if _, _, err := LjungBox([]float64{1, 2, 3}, 0); err == nil {
		t.Error("h=0 accepted")
	}
	if _, _, err := LjungBox([]float64{1, 2, 3}, 5); err != ErrShortSeries {
		t.Error("short series accepted")
	}
}

func TestSignificantLagsWeekly(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	xs := make([]float64, 280)
	for i := range xs {
		xs[i] = 4*math.Sin(2*math.Pi*float64(i)/7) + 0.3*rng.NormFloat64()
	}
	lags := SignificantLags(xs, 21, 4)
	if len(lags) == 0 || len(lags) > 4 {
		t.Fatalf("lags = %v", lags)
	}
	has7or14 := false
	for i, l := range lags {
		if l == 7 || l == 14 || l == 21 {
			has7or14 = true
		}
		if i > 0 && lags[i] <= lags[i-1] {
			t.Fatalf("not ascending: %v", lags)
		}
	}
	if !has7or14 {
		t.Errorf("weekly lags not selected: %v", lags)
	}
}

func TestSignificantLagsWhiteNoiseFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	lags := SignificantLags(xs, 15, 5)
	// White noise rarely has significant lags; the fallback must still
	// return k lags either way.
	if len(lags) == 0 || len(lags) > 5 {
		t.Errorf("lags = %v", lags)
	}
}

func TestSignificantLagsDegenerate(t *testing.T) {
	if got := SignificantLags([]float64{1, 2}, 0, 3); got != nil {
		t.Errorf("maxLag 0 -> %v", got)
	}
	if got := SignificantLags([]float64{1, 2}, 3, 0); got != nil {
		t.Errorf("k 0 -> %v", got)
	}
}
