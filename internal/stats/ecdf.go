package stats

import "sort"

// ECDF is an empirical cumulative distribution function built from a
// sample, as plotted in Figure 1(a) of the paper: F(x) is the fraction
// of observations less than or equal to x.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied; it returns nil
// for an empty sample.
func NewECDF(xs []float64) *ECDF {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// N returns the number of observations behind the ECDF.
func (e *ECDF) N() int { return len(e.sorted) }

// Eval returns F(x), the fraction of observations <= x.
func (e *ECDF) Eval(x float64) float64 {
	// First index with value > x.
	idx := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the smallest observed value v with F(v) >= p, for
// p in (0, 1]. Quantile(0) returns the sample minimum.
func (e *ECDF) Quantile(p float64) float64 {
	if p < 0 || p > 1 {
		panic("stats: ECDF quantile probability outside [0,1]")
	}
	n := len(e.sorted)
	idx := int(p*float64(n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return e.sorted[idx]
}

// Points returns the step-function support points (x_i, F(x_i)) of the
// ECDF, deduplicated on x, suitable for plotting.
func (e *ECDF) Points() (xs, fs []float64) {
	n := len(e.sorted)
	for i := 0; i < n; i++ {
		// Skip to the last occurrence of a tied value so F jumps once.
		if i+1 < n && e.sorted[i+1] == e.sorted[i] { //lint:allow floatsafety tie dedup compares stored input values, not computations
			continue
		}
		xs = append(xs, e.sorted[i])
		fs = append(fs, float64(i+1)/float64(n))
	}
	return xs, fs
}
