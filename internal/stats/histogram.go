package stats

import "math"

// Histogram counts observations into equal-width bins over [Lo, Hi].
// Values below Lo land in the first bin and values above Hi in the
// last, so no observation is silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given number of bins over
// [lo, hi]. It panics for bins <= 0 or lo >= hi.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram with no bins")
	}
	if lo >= hi {
		panic("stats: histogram with empty range")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Density returns the fraction of observations in each bin (all zeros
// when no observations were added).
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}
