package stats

import "sort"

// BoxStats holds the five-number summary plus outliers as drawn in the
// box plots of Figures 1(b) and 1(c): first/second/third quartiles,
// whiskers at the most extreme observations within 1.5·IQR of the box,
// and every observation beyond the fences flagged as an outlier.
type BoxStats struct {
	N                int
	Min, Max         float64 // full range, including outliers
	Q1, Median, Q3   float64
	WhiskLo, WhiskHi float64 // whisker positions
	Outliers         []float64
	LoFence, HiFence float64
}

// Box computes BoxStats for xs using the Tukey convention with
// 1.5·IQR fences (the "+ markers" of the paper). It returns ErrEmpty
// for an empty sample.
func Box(xs []float64) (BoxStats, error) {
	if len(xs) == 0 {
		return BoxStats{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	b := BoxStats{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
	}
	iqr := b.Q3 - b.Q1
	b.LoFence = b.Q1 - 1.5*iqr
	b.HiFence = b.Q3 + 1.5*iqr
	b.WhiskLo, b.WhiskHi = b.Q1, b.Q3
	firstInside := true
	for _, v := range sorted {
		switch {
		case v < b.LoFence || v > b.HiFence:
			b.Outliers = append(b.Outliers, v)
		default:
			if firstInside {
				b.WhiskLo = v
				firstInside = false
			}
			b.WhiskHi = v
		}
	}
	return b, nil
}
