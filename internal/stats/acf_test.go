package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestACFLagZeroIsOne(t *testing.T) {
	acf := ACF([]float64{1, 3, 2, 5, 4}, 3)
	if acf[0] != 1 {
		t.Errorf("ACF[0] = %v", acf[0])
	}
	if len(acf) != 4 {
		t.Errorf("len = %d", len(acf))
	}
}

func TestACFPeriodicSignal(t *testing.T) {
	// A clean 7-day periodic signal: ACF must peak at lags 7 and 14
	// relative to neighbouring lags, mirroring Figure 2 of the paper.
	n := 7 * 40
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 7)
	}
	acf := ACF(xs, 20)
	if acf[7] < 0.9 || acf[14] < 0.8 {
		t.Errorf("periodic peaks weak: r(7)=%v r(14)=%v", acf[7], acf[14])
	}
	if acf[7] <= acf[3] || acf[7] <= acf[4] {
		t.Errorf("lag 7 not a peak: r(7)=%v r(3)=%v r(4)=%v", acf[7], acf[3], acf[4])
	}
}

func TestACFWhiteNoiseSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 5000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	acf := ACF(xs, 10)
	band := ACFConfidence(n)
	for l := 1; l <= 10; l++ {
		if math.Abs(acf[l]) > 2*band {
			t.Errorf("white noise ACF(%d) = %v outside twice the band %v", l, acf[l], band)
		}
	}
}

func TestACFConstantSeries(t *testing.T) {
	acf := ACF([]float64{5, 5, 5, 5, 5}, 3)
	if acf[0] != 1 || acf[1] != 0 || acf[2] != 0 {
		t.Errorf("constant series ACF = %v", acf)
	}
}

func TestACFShortSeries(t *testing.T) {
	acf := ACF([]float64{1, 2}, 5)
	if len(acf) != 6 {
		t.Fatalf("len = %d", len(acf))
	}
	for l := 2; l <= 5; l++ {
		if acf[l] != 0 {
			t.Errorf("no-overlap lag %d = %v, want 0", l, acf[l])
		}
	}
}

func TestACFEmpty(t *testing.T) {
	acf := ACF(nil, 3)
	for i, v := range acf {
		if v != 0 {
			t.Errorf("empty series ACF[%d] = %v", i, v)
		}
	}
}

func TestACFNegativeMaxLagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ACF([]float64{1, 2}, -1)
}

func TestACFBoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(200)
		xs := make([]float64, n)
		trendy := rng.Intn(2) == 0
		for i := range xs {
			xs[i] = rng.NormFloat64()
			if trendy {
				xs[i] += float64(i) * 0.1
			}
		}
		for _, v := range ACF(xs, 25) {
			// The biased estimator is bounded by 1 in magnitude.
			if math.Abs(v) > 1+1e-9 {
				t.Fatalf("|ACF| > 1: %v", v)
			}
		}
	}
}

func TestTopLagsWeeklySignal(t *testing.T) {
	n := 7 * 30
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 5*math.Sin(2*math.Pi*float64(i)/7) + 0.2*rng.NormFloat64()
	}
	sel := TopLags(xs, 21, 3)
	if len(sel) != 3 {
		t.Fatalf("selected %v", sel)
	}
	has := func(l int) bool {
		for _, s := range sel {
			if s == l {
				return true
			}
		}
		return false
	}
	if !has(7) || !has(14) || !has(21) {
		t.Errorf("weekly lags not selected: %v", sel)
	}
}

func TestTopLagsAscendingAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sel := TopLags(xs, 15, 40) // k > maxLag: returns all lags
	if len(sel) != 15 {
		t.Fatalf("len = %d", len(sel))
	}
	for i := 1; i < len(sel); i++ {
		if sel[i] <= sel[i-1] {
			t.Fatalf("not ascending: %v", sel)
		}
	}
	if sel[0] < 1 || sel[len(sel)-1] > 15 {
		t.Fatalf("out of range: %v", sel)
	}
}

func TestTopLagsDegenerate(t *testing.T) {
	if got := TopLags([]float64{1, 2, 3}, 5, 0); got != nil {
		t.Errorf("k=0 -> %v", got)
	}
	if got := TopLags([]float64{1, 2, 3}, 0, 3); got != nil {
		t.Errorf("maxLag=0 -> %v", got)
	}
	// Constant series: any k lags are fine; just must not crash and be
	// deterministic (ties toward smaller lags).
	got := TopLags([]float64{2, 2, 2, 2, 2, 2}, 4, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("tie-break selection = %v, want [1 2]", got)
	}
}

func TestACFConfidence(t *testing.T) {
	if got := ACFConfidence(100); !almost(got, 0.196, 1e-9) {
		t.Errorf("band = %v", got)
	}
	if !math.IsInf(ACFConfidence(0), 1) {
		t.Error("band for n=0 should be +Inf")
	}
}
