package stats

import (
	"math"
	"sort"
)

// Covariance returns the unbiased sample covariance of xs and ys. It
// returns NaN when the slices differ in length or hold fewer than two
// observations.
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1)
}

// Pearson returns the Pearson linear correlation coefficient of xs and
// ys, NaN when undefined (mismatched length, fewer than two points, or
// zero variance in either sample).
func Pearson(xs, ys []float64) float64 {
	cov := Covariance(xs, ys)
	sx, sy := Std(xs), Std(ys)
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return cov / (sx * sy)
}

// Spearman returns the Spearman rank correlation of xs and ys,
// computed as the Pearson correlation of the (mid-)ranks.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns mid-ranks (ties share the average rank), 1-based.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	rk := make([]float64, n)
	for i := 0; i < n; {
		j := i
		//lint:allow floatsafety rank ties are exact duplicates of stored input values
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			rk[idx[k]] = mid
		}
		i = j + 1
	}
	return rk
}
