package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestCovariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Covariance(xs, ys); !almost(got, 10.0/3.0, 1e-12) {
		t.Errorf("Covariance = %v", got)
	}
	if !math.IsNaN(Covariance(xs, ys[:3])) {
		t.Error("mismatched length should be NaN")
	}
	if !math.IsNaN(Covariance([]float64{1}, []float64{2})) {
		t.Error("single obs should be NaN")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	if got := Pearson(xs, ys); !almost(got, 1, 1e-12) {
		t.Errorf("Pearson = %v", got)
	}
	neg := []float64{50, 40, 30, 20, 10}
	if got := Pearson(xs, neg); !almost(got, -1, 1e-12) {
		t.Errorf("Pearson = %v", got)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Error("zero variance should be NaN")
	}
}

func TestPearsonIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 20000
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	if got := Pearson(xs, ys); math.Abs(got) > 0.03 {
		t.Errorf("independent Pearson = %v", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // nonlinear but monotone
	if got := Spearman(xs, ys); !almost(got, 1, 1e-12) {
		t.Errorf("Spearman = %v", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3}
	if got := Spearman(xs, ys); !almost(got, 1, 1e-12) {
		t.Errorf("Spearman with ties = %v", got)
	}
}

func TestRanks(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 40})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

// Property: |Pearson| <= 1 and symmetric.
func TestPearsonBoundedSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(100)
		xs, ys := make([]float64, n), make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 3
			ys[i] = 0.5*xs[i] + rng.NormFloat64()
		}
		r := Pearson(xs, ys)
		if math.IsNaN(r) {
			continue
		}
		if math.Abs(r) > 1+1e-9 {
			t.Fatalf("|r| > 1: %v", r)
		}
		if !almost(r, Pearson(ys, xs), 1e-12) {
			t.Fatalf("Pearson not symmetric")
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{-1, 0.5, 2.5, 4.5, 6.5, 8.5, 11, math.NaN()})
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	want := []int{2, 1, 1, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("Counts = %v, want %v", h.Counts, want)
			break
		}
	}
	dens := h.Density()
	if !almost(Sum(dens), 1, 1e-12) {
		t.Errorf("density sums to %v", Sum(dens))
	}
	if got := h.BinCenter(0); !almost(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(2, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramEmptyDensity(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	for _, d := range h.Density() {
		if d != 0 {
			t.Errorf("empty density = %v", h.Density())
		}
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*7 + 3
		w.Add(xs[i])
	}
	if !almost(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("mean %v vs %v", w.Mean(), Mean(xs))
	}
	if !almost(w.Variance(), Variance(xs), 1e-9) {
		t.Errorf("variance %v vs %v", w.Variance(), Variance(xs))
	}
	if w.Min() != Min(xs) || w.Max() != Max(xs) {
		t.Errorf("min/max mismatch")
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	xs := make([]float64, 500)
	var all, a, b Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()
		all.Add(xs[i])
		if i%2 == 0 {
			a.Add(xs[i])
		} else {
			b.Add(xs[i])
		}
	}
	a.Merge(b)
	if a.N() != all.N() || !almost(a.Mean(), all.Mean(), 1e-9) || !almost(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merge mismatch: %v/%v vs %v/%v", a.Mean(), a.Variance(), all.Mean(), all.Variance())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Errorf("merge empty changed state: %+v", a)
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Errorf("merge into empty: %+v", b)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) || !math.IsNaN(w.Min()) || !math.IsNaN(w.Max()) {
		t.Error("empty accumulator should report NaN")
	}
}
