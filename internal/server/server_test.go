package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vup/internal/canbus"
	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/randx"
	"vup/internal/regress"
)

func testAPI(t *testing.T) (*API, *httptest.Server) {
	t.Helper()
	f, err := fleet.Generate(fleet.Config{Units: 3, Days: 400, Seed: 1, Start: fleet.StudyStart})
	if err != nil {
		t.Fatal(err)
	}
	usage := f.SimulateAll()
	rng := randx.New(2)
	var datasets []*etl.VehicleDataset
	for _, u := range f.Units {
		d, err := etl.FromUsage(u, usage[u.Vehicle.ID], rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		datasets = append(datasets, d)
	}
	base := core.DefaultConfig()
	base.Algorithm = regress.AlgLasso
	base.W = 90
	base.K = 8
	base.MaxLag = 21
	base.Stride = 10
	base.Channels = []string{canbus.ChanFuelRate}
	store, err := NewStore(datasets)
	if err != nil {
		t.Fatal(err)
	}
	api := New(store, base)
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return api, srv
}

func get(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

func TestHealth(t *testing.T) {
	_, srv := testAPI(t)
	var body map[string]any
	get(t, srv.URL+"/healthz", http.StatusOK, &body)
	if body["status"] != "ok" || body["vehicles"].(float64) != 3 {
		t.Errorf("health = %v", body)
	}
}

func TestVehiclesListing(t *testing.T) {
	_, srv := testAPI(t)
	var list []map[string]any
	get(t, srv.URL+"/v1/vehicles", http.StatusOK, &list)
	if len(list) != 3 {
		t.Fatalf("vehicles = %d", len(list))
	}
	first := list[0]
	if first["id"] != "veh-0000" || first["days"].(float64) != 400 {
		t.Errorf("summary = %v", first)
	}
	af := first["active_fraction"].(float64)
	if af <= 0 || af >= 1 {
		t.Errorf("active fraction = %v", af)
	}
}

func TestVehicleDetail(t *testing.T) {
	_, srv := testAPI(t)
	var body map[string]any
	get(t, srv.URL+"/v1/vehicles/veh-0001", http.StatusOK, &body)
	if body["id"] != "veh-0001" {
		t.Errorf("detail = %v", body)
	}
	var errBody map[string]any
	get(t, srv.URL+"/v1/vehicles/nope", http.StatusNotFound, &errBody)
	if errBody["error"] == "" {
		t.Error("missing error message")
	}
}

func TestForecastEndpoint(t *testing.T) {
	_, srv := testAPI(t)
	var body map[string]any
	get(t, srv.URL+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body)
	hours := body["hours"].(float64)
	if hours < 0 || hours > 24 {
		t.Errorf("hours = %v", hours)
	}
	if body["algorithm"] != "Lasso" || body["scenario"] != "next-day" {
		t.Errorf("defaults = %v", body)
	}
	if len(body["lags"].([]any)) == 0 {
		t.Error("no lags")
	}
	// Overrides.
	get(t, srv.URL+"/v1/vehicles/veh-0000/forecast?alg=MA&scenario=next-working-day&w=60", http.StatusOK, &body)
	if body["algorithm"] != "MA" || body["scenario"] != "next-working-day" {
		t.Errorf("overrides = %v", body)
	}
}

func TestForecastWithInterval(t *testing.T) {
	_, srv := testAPI(t)
	var body map[string]any
	get(t, srv.URL+"/v1/vehicles/veh-0000/forecast?interval=0.8", http.StatusOK, &body)
	hours := body["hours"].(float64)
	lo := body["lo"].(float64)
	hi := body["hi"].(float64)
	if lo > hours || hours > hi {
		t.Errorf("point outside band: %v not in [%v, %v]", hours, lo, hi)
	}
	if body["level"].(float64) != 0.8 {
		t.Errorf("level = %v", body["level"])
	}
	// Without interval, the band fields are absent.
	var plain map[string]any
	get(t, srv.URL+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &plain)
	if _, present := plain["lo"]; present {
		t.Error("lo present without interval request")
	}
	// Invalid level.
	var errBody map[string]any
	get(t, srv.URL+"/v1/vehicles/veh-0000/forecast?interval=2", http.StatusBadRequest, &errBody)
	if errBody["error"] == "" {
		t.Error("missing error for bad interval")
	}
}

func TestForecastBadRequests(t *testing.T) {
	_, srv := testAPI(t)
	for _, q := range []string{"?alg=bogus", "?scenario=bogus", "?w=abc", "?w=0", "?k=-1"} {
		var body map[string]any
		get(t, srv.URL+"/v1/vehicles/veh-0000/forecast"+q, http.StatusBadRequest, &body)
		if body["error"] == "" {
			t.Errorf("query %s: missing error", q)
		}
	}
}

func TestEvaluationUnprocessable(t *testing.T) {
	_, srv := testAPI(t)
	// A window larger than the series leaves no test days.
	var body map[string]any
	get(t, srv.URL+"/v1/vehicles/veh-0000/evaluation?w=100000", http.StatusUnprocessableEntity, &body)
	if !strings.Contains(body["error"].(string), "evaluation failed") {
		t.Errorf("error = %v", body["error"])
	}
}

func TestEvaluationEndpoint(t *testing.T) {
	_, srv := testAPI(t)
	var body map[string]any
	get(t, srv.URL+"/v1/vehicles/veh-0002/evaluation", http.StatusOK, &body)
	pe := body["pe_percent"].(float64)
	if pe <= 0 || pe > 1000 {
		t.Errorf("pe = %v", pe)
	}
	if body["predictions"].(float64) <= 0 {
		t.Errorf("predictions = %v", body["predictions"])
	}
}

func TestLevelsEndpoint(t *testing.T) {
	_, srv := testAPI(t)
	var body map[string]any
	get(t, srv.URL+"/v1/vehicles/veh-0000/levels", http.StatusOK, &body)
	acc := body["accuracy"].(float64)
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy = %v", acc)
	}
	if body["classifier"] != "Tree" {
		t.Errorf("default classifier = %v", body["classifier"])
	}
	levels := body["levels"].([]any)
	if len(levels) != 4 || levels[0] != "idle" {
		t.Errorf("levels = %v", levels)
	}
	confusion := body["confusion"].([]any)
	if len(confusion) != 4 {
		t.Errorf("confusion rows = %d", len(confusion))
	}
	// Majority baseline via query.
	get(t, srv.URL+"/v1/vehicles/veh-0000/levels?classifier=Majority", http.StatusOK, &body)
	if body["classifier"] != "Majority" {
		t.Errorf("classifier override = %v", body["classifier"])
	}
	// Unknown classifier is a 400.
	var errBody map[string]any
	get(t, srv.URL+"/v1/vehicles/veh-0000/levels?classifier=bogus", http.StatusBadRequest, &errBody)
	if errBody["error"] == "" {
		t.Error("missing error")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, srv := testAPI(t)
	resp, err := http.Post(srv.URL+"/v1/vehicles", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", resp.StatusCode)
	}
}

func TestStore(t *testing.T) {
	s, err := NewStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ids := s.IDs(); len(ids) != 0 {
		t.Errorf("empty store ids = %v", ids)
	}
	if _, ok := s.Get("x"); ok {
		t.Error("empty store returned a dataset")
	}
	if g := s.Generation("x"); g != 0 {
		t.Errorf("fresh store generation = %d", g)
	}
}

func TestNewStoreRejectsInvalidDataset(t *testing.T) {
	// An empty dataset fails etl.Validate and must never enter the
	// store: downstream it summarizes to Active = 0/0 = NaN, which
	// encoding/json cannot encode.
	if _, err := NewStore([]*etl.VehicleDataset{{VehicleID: "veh-empty"}}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	s, err := NewStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(&etl.VehicleDataset{VehicleID: "veh-empty"}); err == nil {
		t.Fatal("Put accepted an empty dataset")
	}
}

// TestVehiclesListingAlwaysEncodable is the regression test for the
// NaN summary bug: even for a pathological dataset, /v1/vehicles must
// produce a complete, decodable JSON body, never a 200 header followed
// by a truncated body.
func TestVehiclesListingAlwaysEncodable(t *testing.T) {
	_, srv := testAPI(t)
	resp, err := http.Get(srv.URL + "/v1/vehicles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []vehicleSummary
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("body not decodable: %v", err)
	}
	for _, s := range list {
		if math.IsNaN(s.Active) || math.IsInf(s.Active, 0) {
			t.Errorf("vehicle %s: active_fraction = %v", s.ID, s.Active)
		}
	}
	// The guard itself: an empty dataset must summarize to an
	// encodable value even if one ever slipped past store validation.
	sum := summarize(&etl.VehicleDataset{VehicleID: "veh-empty"})
	if math.IsNaN(sum.Active) {
		t.Error("empty dataset summary has NaN active fraction")
	}
	if _, err := json.Marshal(sum); err != nil {
		t.Errorf("empty dataset summary not encodable: %v", err)
	}
}

func TestForecastHorizonParam(t *testing.T) {
	api, srv := testAPI(t)
	var body map[string]any
	get(t, srv.URL+"/v1/vehicles/veh-0000/forecast?horizon=5", http.StatusOK, &body)
	steps := body["horizon"].([]any)
	if len(steps) != 5 {
		t.Fatalf("horizon steps = %d", len(steps))
	}
	for i, s := range steps {
		v := s.(float64)
		if v < 0 || v > 24 {
			t.Errorf("step %d = %v", i, v)
		}
	}
	if steps[0].(float64) != body["hours"].(float64) {
		t.Errorf("horizon[0] = %v, hours = %v", steps[0], body["hours"])
	}
	// The endpoint must agree with the library path.
	d, _ := api.store.Get("veh-0000")
	want, err := core.ForecastHorizon(d, api.Base, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if steps[i].(float64) != want[i] {
			t.Errorf("step %d: %v != core %v", i, steps[i], want[i])
		}
	}
	// Plain requests carry no horizon field.
	var plain map[string]any
	get(t, srv.URL+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &plain)
	if _, present := plain["horizon"]; present {
		t.Error("horizon present without horizon request")
	}
	// Bad values and the interval combination are 400s.
	for _, q := range []string{"?horizon=0", "?horizon=-2", "?horizon=abc", "?horizon=1000", "?horizon=3&interval=0.8"} {
		var errBody map[string]any
		get(t, srv.URL+"/v1/vehicles/veh-0000/forecast"+q, http.StatusBadRequest, &errBody)
		if errBody["error"] == "" {
			t.Errorf("query %s: missing error", q)
		}
	}
}

func TestForecastHorizonSharesCachedArtifact(t *testing.T) {
	api, srv := testAPI(t)
	api.Cache = NewForecastCache(8)
	// First request trains and caches the Fitted artifact.
	var first map[string]any
	get(t, srv.URL+"/v1/vehicles/veh-0001/forecast", http.StatusOK, &first)
	if first["cached"] == true {
		t.Fatal("first request reported cached")
	}
	// A horizon request reuses the same artifact: cached, no retrain,
	// and its first step is exactly the cached point forecast.
	var hz map[string]any
	get(t, srv.URL+"/v1/vehicles/veh-0001/forecast?horizon=3", http.StatusOK, &hz)
	if hz["cached"] != true {
		t.Error("horizon request did not reuse the cached artifact")
	}
	steps := hz["horizon"].([]any)
	if len(steps) != 3 {
		t.Fatalf("horizon steps = %d", len(steps))
	}
	if steps[0].(float64) != first["hours"].(float64) {
		t.Errorf("horizon[0] = %v, cached point = %v", steps[0], first["hours"])
	}
	stats := api.Cache.Stats()
	if stats.Misses != 1 || stats.Hits != 1 {
		t.Errorf("cache stats = %+v, want 1 miss + 1 hit", stats)
	}
}
