// Package server exposes the prediction pipeline as an HTTP API — the
// shape a fleet-management backend would deploy: per-vehicle forecast,
// hold-out evaluation and fleet listing endpoints over an in-memory
// dataset store. Handlers are stdlib net/http only.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"vup/internal/classify"
	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/obs"
	"vup/internal/regress"
)

// Store holds the per-vehicle datasets the API serves. It is safe for
// concurrent readers once populated.
type Store struct {
	mu       sync.RWMutex
	datasets map[string]*etl.VehicleDataset
}

// NewStore builds a store from datasets, keyed by vehicle ID.
func NewStore(datasets []*etl.VehicleDataset) *Store {
	s := &Store{datasets: make(map[string]*etl.VehicleDataset, len(datasets))}
	for _, d := range datasets {
		s.datasets[d.VehicleID] = d
	}
	return s
}

// Get returns the dataset of one vehicle.
func (s *Store) Get(id string) (*etl.VehicleDataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.datasets[id]
	return d, ok
}

// Len returns the number of vehicles without building the ID slice.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.datasets)
}

// IDs returns every vehicle ID, sorted.
func (s *Store) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.datasets))
	for id := range s.datasets {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// API is the HTTP handler set.
type API struct {
	store *Store
	// Base is the pipeline configuration requests start from.
	Base core.Config
}

// New creates an API over the store with the given base configuration.
func New(store *Store, base core.Config) *API {
	return &API{store: store, Base: base}
}

// Handler returns the routed http.Handler. Every API route is wrapped
// in the telemetry middleware (route label = pattern without method);
// /metrics itself is served unwrapped so scrapes do not pollute the
// request counters.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", instrument("/healthz", a.handleHealth))
	mux.Handle("GET /v1/vehicles", instrument("/v1/vehicles", a.handleVehicles))
	mux.Handle("GET /v1/vehicles/{id}", instrument("/v1/vehicles/{id}", a.handleVehicle))
	mux.Handle("GET /v1/vehicles/{id}/forecast", instrument("/v1/vehicles/{id}/forecast", a.handleForecast))
	mux.Handle("GET /v1/vehicles/{id}/evaluation", instrument("/v1/vehicles/{id}/evaluation", a.handleEvaluation))
	mux.Handle("GET /v1/vehicles/{id}/levels", instrument("/v1/vehicles/{id}/levels", a.handleLevels))
	mux.Handle("GET /metrics", obs.Handler())
	return mux
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The header is already on the wire, so an encoding or write
	// failure can only be counted and logged.
	if err := json.NewEncoder(w).Encode(v); err != nil {
		writeErrors.With().Inc()
		serverLog.Warn("response write failed", "status", status, "error", err)
	}
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (a *API) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "vehicles": a.store.Len()})
}

// vehicleSummary is the listing payload.
type vehicleSummary struct {
	ID      string  `json:"id"`
	Type    string  `json:"type"`
	Model   string  `json:"model"`
	Country string  `json:"country"`
	Days    int     `json:"days"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	Active  float64 `json:"active_fraction"`
}

func summarize(d *etl.VehicleDataset) vehicleSummary {
	active := 0
	for _, h := range d.Hours {
		if h > 0 {
			active++
		}
	}
	return vehicleSummary{
		ID:      d.VehicleID,
		Type:    d.Type.String(),
		Model:   d.ModelID,
		Country: d.Country,
		Days:    d.Len(),
		From:    d.Date(0).Format("2006-01-02"),
		To:      d.Date(d.Len() - 1).Format("2006-01-02"),
		Active:  float64(active) / float64(d.Len()),
	}
}

func (a *API) handleVehicles(w http.ResponseWriter, _ *http.Request) {
	ids := a.store.IDs()
	out := make([]vehicleSummary, 0, len(ids))
	for _, id := range ids {
		if d, ok := a.store.Get(id); ok {
			out = append(out, summarize(d))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) vehicle(w http.ResponseWriter, r *http.Request) (*etl.VehicleDataset, bool) {
	id := r.PathValue("id")
	d, ok := a.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown vehicle %q", id)
		return nil, false
	}
	return d, true
}

func (a *API) handleVehicle(w http.ResponseWriter, r *http.Request) {
	d, ok := a.vehicle(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, summarize(d))
}

// configFromQuery applies request overrides to the base configuration.
func (a *API) configFromQuery(r *http.Request) (core.Config, error) {
	cfg := a.Base
	q := r.URL.Query()
	if v := q.Get("alg"); v != "" {
		if _, err := regress.New(regress.Algorithm(v)); err != nil {
			return cfg, fmt.Errorf("unknown algorithm %q", v)
		}
		cfg.Algorithm = regress.Algorithm(v)
	}
	switch q.Get("scenario") {
	case "":
	case "next-day":
		cfg.Scenario = core.NextDay
	case "next-working-day":
		cfg.Scenario = core.NextWorkingDay
	default:
		return cfg, fmt.Errorf("unknown scenario %q", q.Get("scenario"))
	}
	for name, dst := range map[string]*int{"w": &cfg.W, "k": &cfg.K, "stride": &cfg.Stride} {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return cfg, fmt.Errorf("parameter %s: %v", name, err)
			}
			*dst = n
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// forecastResponse is the forecast payload. Lo/Hi/Level are present
// only when an interval was requested.
type forecastResponse struct {
	Vehicle   string   `json:"vehicle"`
	Scenario  string   `json:"scenario"`
	Algorithm string   `json:"algorithm"`
	Hours     float64  `json:"hours"`
	Lags      []int    `json:"lags"`
	Lo        *float64 `json:"lo,omitempty"`
	Hi        *float64 `json:"hi,omitempty"`
	Level     *float64 `json:"level,omitempty"`
	TookMS    float64  `json:"took_ms"`
}

func (a *API) handleForecast(w http.ResponseWriter, r *http.Request) {
	d, ok := a.vehicle(w, r)
	if !ok {
		return
	}
	cfg, err := a.configFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	resp := forecastResponse{
		Vehicle:   d.VehicleID,
		Scenario:  cfg.Scenario.String(),
		Algorithm: string(cfg.Algorithm),
	}
	if levelStr := r.URL.Query().Get("interval"); levelStr != "" {
		level, err := strconv.ParseFloat(levelStr, 64)
		if err != nil || level <= 0 || level >= 1 {
			writeError(w, http.StatusBadRequest, "interval must be in (0, 1), got %q", levelStr)
			return
		}
		iv, err := core.ForecastInterval(d, cfg, level)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "forecast failed: %v", err)
			return
		}
		resp.Hours = iv.Hours
		resp.Lags = iv.Lags
		resp.Lo, resp.Hi, resp.Level = &iv.Lo, &iv.Hi, &iv.Level
	} else {
		hours, lags, err := core.Forecast(d, cfg)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "forecast failed: %v", err)
			return
		}
		resp.Hours = hours
		resp.Lags = lags
	}
	resp.TookMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// evaluationResponse is the hold-out evaluation payload.
type evaluationResponse struct {
	Vehicle     string  `json:"vehicle"`
	Scenario    string  `json:"scenario"`
	Algorithm   string  `json:"algorithm"`
	PE          float64 `json:"pe_percent"`
	MAE         float64 `json:"mae_hours"`
	Predictions int     `json:"predictions"`
	Skipped     int     `json:"skipped_windows"`
}

// levelsResponse is the usage-level classification payload.
type levelsResponse struct {
	Vehicle    string   `json:"vehicle"`
	Scenario   string   `json:"scenario"`
	Classifier string   `json:"classifier"`
	Accuracy   float64  `json:"accuracy"`
	MacroF1    float64  `json:"macro_f1"`
	Confusion  [][]int  `json:"confusion"`
	Levels     []string `json:"levels"`
}

func (a *API) handleLevels(w http.ResponseWriter, r *http.Request) {
	d, ok := a.vehicle(w, r)
	if !ok {
		return
	}
	cfg, err := a.configFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	name := r.URL.Query().Get("classifier")
	if name == "" {
		name = "Tree"
	}
	res, err := classify.EvaluateVehicle(d, cfg, name)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, classify.ErrBadParam) {
			status = http.StatusBadRequest
		}
		writeError(w, status, "classification failed: %v", err)
		return
	}
	levels := make([]string, int(classify.NumLevels))
	for l := classify.Idle; l < classify.NumLevels; l++ {
		levels[int(l)] = l.String()
	}
	writeJSON(w, http.StatusOK, levelsResponse{
		Vehicle:    d.VehicleID,
		Scenario:   cfg.Scenario.String(),
		Classifier: name,
		Accuracy:   res.Accuracy,
		MacroF1:    res.MacroF1,
		Confusion:  res.Confusion.Counts,
		Levels:     levels,
	})
}

func (a *API) handleEvaluation(w http.ResponseWriter, r *http.Request) {
	d, ok := a.vehicle(w, r)
	if !ok {
		return
	}
	cfg, err := a.configFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := core.EvaluateVehicle(d, cfg)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "evaluation failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, evaluationResponse{
		Vehicle:     d.VehicleID,
		Scenario:    cfg.Scenario.String(),
		Algorithm:   string(cfg.Algorithm),
		PE:          res.PE,
		MAE:         res.MAE,
		Predictions: len(res.Predictions),
		Skipped:     res.SkippedWindows,
	})
}
