// Package server exposes the prediction pipeline as an HTTP API — the
// shape a fleet-management backend would deploy: per-vehicle forecast,
// hold-out evaluation and fleet listing endpoints over a dataset store
// that serves from memory and can be durably backed by the on-disk
// fleet store (internal/fstore) via SetPersister. Handlers are stdlib
// net/http only.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"vup/internal/classify"
	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/fstore"
	"vup/internal/obs"
	"vup/internal/obs/trace"
	"vup/internal/regress"
)

// ErrUnknownVehicle marks writes addressing a vehicle the store does
// not hold.
var ErrUnknownVehicle = errors.New("unknown vehicle")

// Store holds the per-vehicle datasets the API serves, either eagerly
// (every dataset resident from construction) or lazily (datasets fault
// in through a loader on first use and evict under a resident-bytes
// budget — see NewLazyStore and resident.go). It is safe for
// concurrent use; Put may replace datasets at run time, bumping that
// vehicle's generation so caches keyed on its previous state
// invalidate — without discarding every other vehicle's cached
// artifacts, which is what a streaming per-vehicle ingest needs.
//
// Writes are serialized per vehicle and persist OUTSIDE the store-wide
// lock: the durability hook fsyncs, and a disk round-trip under s.mu
// would stall every reader of every vehicle for its duration. The
// store-wide lock is only ever held for in-memory bookkeeping. Lock
// order is always vehicle lock → s.mu, never the reverse.
type Store struct {
	mu sync.RWMutex
	// res is the resident working set: in eager mode the whole fleet,
	// in lazy mode whatever the budget and traffic keep warm.
	res map[string]*resident
	// gens counts mutations per vehicle; absent means zero. It
	// survives eviction, so a reloaded vehicle keeps its generation
	// and cached artifacts stay correctly keyed.
	gens map[string]uint64
	// known is the fleet roster: every vehicle ID the store answers
	// for, resident or not. In eager mode it mirrors res.
	known map[string]bool
	// dirty marks residents whose appended days are not yet folded
	// into their on-disk snapshot (set by the append-log path, cleared
	// by Put, compaction and eviction).
	dirty map[string]bool
	// loader, when set, faults one vehicle in on miss (lazy mode).
	// Immutable after construction.
	loader func(id string) (*etl.VehicleDataset, error)
	// lru is the residency recency list (lazy mode only).
	lru *lruList
	// budget bounds residentBytes; <= 0 means no eviction.
	budget        int64
	residentBytes int64
	// persist, when set, is called on every Put before the dataset
	// becomes visible; a persist failure rejects the Put.
	persist func(*etl.VehicleDataset) error
	// appendLog, when set, is the incremental durability hook Append
	// prefers over persist: one fsynced log record instead of a full
	// vehicle snapshot per appended batch.
	appendLog func(vehicleID string, days ...fstore.Day) error
	// compact, when set, runs after every successful Append under the
	// vehicle's writer lock (append-log backlog folding).
	compact func(*etl.VehicleDataset) (bool, error)

	// vmu guards vlocks, the per-vehicle writer mutexes. A vehicle's
	// writers queue on its own mutex, so a slow persist of vehicle A
	// never blocks a Put of vehicle B — or any reader. Entries are
	// refcounted and dropped at zero, so the map tracks vehicles with
	// in-flight writers, not every ID ever written.
	vmu    sync.Mutex
	vlocks map[string]*vlock
}

// NewStore builds an eager store from datasets, keyed by vehicle ID.
// Every dataset must pass Validate; an empty or misaligned dataset
// would otherwise surface later as a broken response body (NaN
// active_fraction) or an index panic.
func NewStore(datasets []*etl.VehicleDataset) (*Store, error) {
	s := &Store{
		res:   make(map[string]*resident, len(datasets)),
		gens:  make(map[string]uint64),
		known: make(map[string]bool, len(datasets)),
		dirty: make(map[string]bool),
	}
	for _, d := range datasets {
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", d.VehicleID, err)
		}
		s.insertLocked(d)
	}
	return s, nil
}

// SetPersister installs a durability hook called synchronously on
// every subsequent Put, before the dataset becomes visible to readers.
// A failing hook rejects the Put, so memory and disk cannot drift
// apart silently. The server wires this to fstore.Dir.SaveVehicle when
// started with -data-dir.
func (s *Store) SetPersister(fn func(*etl.VehicleDataset) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persist = fn
}

// SetAppender installs the incremental durability hook Append uses:
// one fsynced append-log record per batch instead of a full vehicle
// snapshot. The server wires this to fstore.Dir.Append when started
// with -data-dir; without it, Append falls back to the persister.
func (s *Store) SetAppender(fn func(vehicleID string, days ...fstore.Day) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLog = fn
}

// vlock is one vehicle's refcounted writer mutex: refs counts holders
// and waiters, and the map entry is dropped when it reaches zero, so
// churning vehicle IDs cannot grow vlocks without bound.
type vlock struct {
	mu   sync.Mutex
	refs int
}

// lockVehicle acquires one vehicle's writer mutex, creating the entry
// on first use. Pair with unlockVehicle.
func (s *Store) lockVehicle(id string) {
	s.vmu.Lock()
	if s.vlocks == nil {
		s.vlocks = make(map[string]*vlock)
	}
	l, ok := s.vlocks[id]
	if !ok {
		l = &vlock{}
		s.vlocks[id] = l
	}
	// Count the reference before blocking: a concurrent unlockVehicle
	// must not delete an entry someone is queued on (the queued waiter
	// would otherwise race a fresh lockVehicle onto a second mutex for
	// the same vehicle).
	l.refs++
	s.vmu.Unlock()
	l.mu.Lock()
}

// unlockVehicle releases one vehicle's writer mutex and drops the map
// entry once no holder or waiter references it.
func (s *Store) unlockVehicle(id string) {
	s.vmu.Lock()
	l := s.vlocks[id]
	l.mu.Unlock()
	l.refs--
	if l.refs == 0 {
		delete(s.vlocks, id)
	}
	s.vmu.Unlock()
}

// Put inserts or replaces one vehicle's dataset and bumps that
// vehicle's generation, invalidating cached artifacts trained on its
// prior state. Other vehicles' generations — and therefore their
// cached artifacts — are untouched. With a persister installed, the
// dataset is persisted first and an error leaves the store unchanged;
// the persist (a disk fsync) runs outside the store-wide lock, under
// the vehicle's own writer mutex, so it never stalls readers or other
// vehicles' writers.
func (s *Store) Put(d *etl.VehicleDataset) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("server: dataset %q: %w", d.VehicleID, err)
	}
	s.lockVehicle(d.VehicleID)
	defer s.unlockVehicle(d.VehicleID)
	s.mu.RLock()
	persist := s.persist
	s.mu.RUnlock()
	if persist != nil {
		if err := persist(d); err != nil {
			return fmt.Errorf("server: persist %q: %w", d.VehicleID, err)
		}
	}
	s.mu.Lock()
	s.insertLocked(d)
	s.gens[d.VehicleID]++
	// A Put that persisted wrote a full snapshot; without a persister
	// there is no disk state to be behind of either way.
	delete(s.dirty, d.VehicleID)
	s.evictLocked(context.Background())
	s.mu.Unlock()
	return nil
}

// Append is the streaming-ingest write path: it extends one vehicle's
// series with incremental days (as produced by summarizing a report
// batch), repairs only the appended suffix with the given missing-day
// policy, makes the result durable, and swaps it in with a generation
// bump. The stored dataset is never mutated — readers and cached plans
// keep a consistent view; the append builds on a clone.
//
// The days logged to the append hook are the CLEANED days, so a replay
// of the log at load time (which does not re-run Clean) reproduces the
// in-memory series bit for bit — fingerprints, and therefore cache
// keys, survive a restart.
//
// It returns the grown dataset and the vehicle's new generation.
func (s *Store) Append(id string, days []fstore.Day, policy etl.MissingPolicy) (*etl.VehicleDataset, uint64, error) {
	return s.AppendContext(context.Background(), id, days, policy)
}

// AppendContext is Append with a context for the store.load trace span
// an evicted vehicle's transparent reload opens.
func (s *Store) AppendContext(ctx context.Context, id string, days []fstore.Day, policy etl.MissingPolicy) (*etl.VehicleDataset, uint64, error) {
	if len(days) == 0 {
		return nil, 0, fmt.Errorf("server: append to %q with no days", id)
	}
	s.lockVehicle(id)
	defer s.unlockVehicle(id)
	s.mu.RLock()
	cur, ok := s.lookupResidentLocked(id)
	appendLog, persist, compact := s.appendLog, s.persist, s.compact
	s.mu.RUnlock()
	if !ok {
		// An evicted (or never-loaded) vehicle load-then-mutates
		// transparently: fault it in under the writer lock we already
		// hold, pinned so the racing eviction pass leaves it alone
		// until the swap below.
		s.mu.RLock()
		known := s.known[id]
		s.mu.RUnlock()
		if s.loader == nil || !known {
			return nil, 0, fmt.Errorf("server: %w: %q", ErrUnknownVehicle, id)
		}
		r, err := s.faultLocked(ctx, id)
		if err != nil {
			return nil, 0, err
		}
		defer s.releaseFunc(id)()
		cur = r.ds
	}
	// Appends extend history, never rewrite it: a day at or before the
	// stored tail (e.g. from two racing batches for the same vehicle —
	// both summarized against the same snapshot, serialized here) is
	// refused rather than spliced out of order.
	last := cur.Date(cur.Len() - 1)
	for _, day := range days {
		if !day.Date.After(last) {
			return nil, 0, fmt.Errorf("server: append %q: day %s is not after the stored series end %s",
				id, day.Date.Format("2006-01-02"), last.Format("2006-01-02"))
		}
	}
	from := cur.Len()
	grown := cur.Clone()
	if err := fstore.ApplyDays(grown, days...); err != nil {
		return nil, 0, fmt.Errorf("server: append %q: %w", id, err)
	}
	if _, err := etl.CleanFrom(grown, policy, from); err != nil {
		return nil, 0, fmt.Errorf("server: append %q: %w", id, err)
	}
	// Durability before visibility, outside the store-wide lock.
	logged := false
	switch {
	case appendLog != nil:
		if err := appendLog(id, tailDays(grown, from)...); err != nil {
			return nil, 0, fmt.Errorf("server: append log %q: %w", id, err)
		}
		logged = true
	case persist != nil:
		if err := persist(grown); err != nil {
			return nil, 0, fmt.Errorf("server: persist %q: %w", id, err)
		}
	}
	s.mu.Lock()
	s.insertLocked(grown)
	s.gens[id]++
	gen := s.gens[id]
	if logged {
		// The snapshot on disk is now behind the resident state; only
		// the append log has the new days.
		s.dirty[id] = true
	} else {
		delete(s.dirty, id)
	}
	s.evictLocked(ctx)
	s.mu.Unlock()

	// Fold a long append-log backlog into the snapshot while we still
	// hold this vehicle's writer lock (the serialization the compactor
	// counts on). Compaction failing is not the append failing — the
	// days are already durable in the log — so it is logged, not
	// returned.
	if logged && compact != nil {
		compacted, err := compact(grown)
		switch {
		case err != nil:
			serverLog.Warn("append-log compaction failed", "vehicle", id, "error", err)
		case compacted:
			s.mu.Lock()
			delete(s.dirty, id)
			s.mu.Unlock()
		}
	}
	return grown, gen, nil
}

// lookupResidentLocked returns a vehicle's resident dataset without
// faulting. Caller holds s.mu (read or write).
func (s *Store) lookupResidentLocked(id string) (*etl.VehicleDataset, bool) {
	r, ok := s.res[id]
	if !ok {
		return nil, false
	}
	return r.ds, true
}

// tailDays re-reads the appended (cleaned) suffix of d as log records.
func tailDays(d *etl.VehicleDataset, from int) []fstore.Day {
	out := make([]fstore.Day, 0, d.Len()-from)
	for i := from; i < d.Len(); i++ {
		ch := make(map[string]float64, len(d.Channels))
		for name, vals := range d.Channels {
			ch[name] = vals[i]
		}
		out = append(out, fstore.Day{Date: d.Date(i), Hours: d.Hours[i], Observed: d.Observed[i], Channels: ch})
	}
	return out
}

// Snapshot returns every RESIDENT dataset, sorted by vehicle ID — the
// input shape fstore.Dir.Save expects for a full on-disk snapshot at
// shutdown. On an eager store that is the whole fleet; on a lazy store
// it is only the warm subset, so a lazy shutdown must use
// DirtyResidents + per-vehicle snapshots instead of a full Save (which
// would shrink the manifest to the residents).
func (s *Store) Snapshot() []*etl.VehicleDataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*etl.VehicleDataset, 0, len(s.res))
	for _, r := range s.res {
		out = append(out, r.ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VehicleID < out[j].VehicleID })
	return out
}

// Generation returns one vehicle's mutation counter. It starts at zero
// (including for vehicles loaded at startup) and moves on every Put of
// that vehicle.
func (s *Store) Generation(id string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gens[id]
}

// Get returns the dataset of one vehicle, faulting it in on a lazy
// store (and releasing its pin immediately — datasets are immutable,
// so the reference stays valid even if the vehicle is evicted; use
// Acquire to hold residency across a longer computation).
func (s *Store) Get(id string) (*etl.VehicleDataset, bool) {
	d, _, _, release, err := s.Acquire(context.Background(), id)
	if err != nil {
		return nil, false
	}
	release()
	return d, true
}

// lookup returns one vehicle's dataset together with its fingerprint
// and its generation, mutually consistent for cache keying, without
// holding a pin (see Get for why that is safe).
func (s *Store) lookup(id string) (d *etl.VehicleDataset, fp, gen uint64, ok bool) {
	d, fp, gen, release, err := s.Acquire(context.Background(), id)
	if err != nil {
		return nil, 0, 0, false
	}
	release()
	return d, fp, gen, true
}

// Len returns the fleet size — every vehicle the store answers for,
// resident or not.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.known)
}

// IDs returns every vehicle ID in the fleet roster, sorted. On a lazy
// store this comes from the manifest roster, not from what happens to
// be resident.
func (s *Store) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.known))
	for id := range s.known {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// API is the HTTP handler set.
type API struct {
	store *Store
	start time.Time // process start, for the healthz uptime
	// Base is the pipeline configuration requests start from.
	Base core.Config
	// Cache, when enabled, answers forecast and evaluation requests
	// from trained artifacts and coalesces identical concurrent
	// requests onto one training run. Nil or zero-capacity means every
	// request trains.
	Cache *ForecastCache
	// Traces, when set, opens a root span per API request (echoed in
	// the X-Trace-Id response header) and stores tail-sampled traces
	// for GET /debug/traces. Nil disables tracing at zero cost.
	Traces *trace.Collector
	// IngestPolicy selects how gap days inside an ingested batch are
	// repaired (zero value: MissingZero, the paper's default).
	IngestPolicy etl.MissingPolicy
	// IngestConcurrency bounds concurrent ingest batches; <= 0 means
	// the default gate (see defaultIngestConcurrency). Beyond it,
	// batches are shed with 503 + Retry-After.
	IngestConcurrency int

	// ingestSem is the ingest concurrency gate, sized by Handler.
	ingestSem chan struct{}
	// seeds holds the last compiled plan per vehicle+config so a build
	// after an append can extend it instead of recompiling (planFor).
	// Bounded at maxPlanSeeds: on a lazy store the fleet can be far
	// larger than RAM, and an unbounded seed map would quietly undo
	// the resident-bytes budget.
	seedsMu sync.Mutex
	seeds   map[string]*planSeed
}

// New creates an API over the store with the given base configuration.
func New(store *Store, base core.Config) *API {
	return &API{store: store, start: time.Now(), Base: base}
}

// Handler returns the routed http.Handler. Every API route is wrapped
// in the telemetry middleware (route label = pattern without method);
// /metrics itself is served unwrapped so scrapes do not pollute the
// request counters.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", a.instrument("/healthz", a.handleHealth))
	mux.Handle("GET /v1/vehicles", a.instrument("/v1/vehicles", a.handleVehicles))
	mux.Handle("GET /v1/vehicles/{id}", a.instrument("/v1/vehicles/{id}", a.handleVehicle))
	mux.Handle("GET /v1/vehicles/{id}/forecast", a.instrument("/v1/vehicles/{id}/forecast", a.handleForecast))
	mux.Handle("GET /v1/vehicles/{id}/evaluation", a.instrument("/v1/vehicles/{id}/evaluation", a.handleEvaluation))
	mux.Handle("GET /v1/vehicles/{id}/levels", a.instrument("/v1/vehicles/{id}/levels", a.handleLevels))
	mux.Handle("POST /v1/vehicles/{id}/ingest", a.instrument("/v1/vehicles/{id}/ingest", a.handleIngest))
	mux.Handle("GET /metrics", obs.Handler())
	a.ingestGate() // size the gate before serving starts
	return mux
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The header is already on the wire, so an encoding or write
	// failure can only be counted and logged.
	if err := json.NewEncoder(w).Encode(v); err != nil {
		writeErrors.With().Inc()
		serverLog.Warn("response write failed", "status", status, "error", err)
	}
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// statusClientClosedRequest is nginx's convention for a request the
// client abandoned; no stdlib constant exists for it.
const statusClientClosedRequest = 499

// buildStatus maps a pipeline-build error to an HTTP status: a
// canceled request is the client's doing, a deadline is a timeout,
// anything else means the pipeline rejected the input.
func buildStatus(err error) int {
	switch {
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

// healthResponse is the GET /healthz payload: liveness plus the
// numbers an operator checks first (uptime, store size, cache
// effectiveness) and enough build identity to know what is running.
type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Vehicles      int     `json:"vehicles"`
	// TotalVehicles duplicates Vehicles under the name that pairs with
	// ResidentVehicles, so an operator reading a lazy store's health
	// sees eviction working (resident < total) at a glance.
	TotalVehicles    int   `json:"total_vehicles"`
	ResidentVehicles int   `json:"resident_vehicles"`
	ResidentBytes    int64 `json:"resident_bytes"`
	// ResidentRatio is resident/total, 0 for an empty fleet.
	ResidentRatio float64 `json:"resident_ratio"`
	LazyLoad      bool    `json:"lazy_load"`
	CacheEntries  int     `json:"cache_entries"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	// CacheHitRatio is hits/(hits+misses), 0 before any lookup.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"revision,omitempty"`
}

func (a *API) handleHealth(w http.ResponseWriter, _ *http.Request) {
	stats := a.Cache.Stats()
	resident, residentBytes := a.store.ResidentStats()
	resp := healthResponse{
		Status:           "ok",
		UptimeSeconds:    time.Since(a.start).Seconds(),
		Vehicles:         a.store.Len(),
		TotalVehicles:    a.store.Len(),
		ResidentVehicles: resident,
		ResidentBytes:    residentBytes,
		LazyLoad:         a.store.Lazy(),
		CacheEntries:     a.Cache.Len(),
		CacheHits:        stats.Hits,
		CacheMisses:      stats.Misses,
		GoVersion:        runtime.Version(),
	}
	// Guard every ratio: 0/0 is NaN, which encoding/json refuses —
	// a freshly lazy-booted store has zero residents and may have
	// zero vehicles.
	if total := stats.Hits + stats.Misses; total > 0 {
		resp.CacheHitRatio = float64(stats.Hits) / float64(total)
	}
	if resp.TotalVehicles > 0 {
		resp.ResidentRatio = float64(resident) / float64(resp.TotalVehicles)
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				resp.Revision = s.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// vehicleSummary is the listing payload.
type vehicleSummary struct {
	ID      string  `json:"id"`
	Type    string  `json:"type"`
	Model   string  `json:"model"`
	Country string  `json:"country"`
	Days    int     `json:"days"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	Active  float64 `json:"active_fraction"`
}

func summarize(d *etl.VehicleDataset) vehicleSummary {
	s := vehicleSummary{
		ID:      d.VehicleID,
		Type:    d.Type.String(),
		Model:   d.ModelID,
		Country: d.Country,
		Days:    d.Len(),
	}
	// NewStore rejects empty datasets, but guard anyway: 0/0 is NaN,
	// which encoding/json refuses mid-stream — the client would get a
	// 200 header with a truncated body.
	if n := d.Len(); n > 0 {
		active := 0
		for _, h := range d.Hours {
			if h > 0 {
				active++
			}
		}
		s.From = d.Date(0).Format("2006-01-02")
		s.To = d.Date(n - 1).Format("2006-01-02")
		s.Active = float64(active) / float64(n)
	}
	return s
}

func (a *API) handleVehicles(w http.ResponseWriter, r *http.Request) {
	// On a lazy store this sweep faults each vehicle in and releases
	// it immediately, so eviction keeps the resident set under budget
	// for the whole walk; a vehicle whose file rotted is skipped, not
	// a listing failure.
	ids := a.store.IDs()
	out := make([]vehicleSummary, 0, len(ids))
	for _, id := range ids {
		d, _, _, release, err := a.store.Acquire(r.Context(), id)
		if err != nil {
			if !errors.Is(err, ErrUnknownVehicle) {
				serverLog.Warn("vehicle skipped in listing", "vehicle", id, "error", err)
			}
			continue
		}
		out = append(out, summarize(d))
		release()
	}
	writeJSON(w, http.StatusOK, out)
}

// vehicle acquires the request's vehicle pinned against eviction; the
// caller must defer the returned release. An unknown ID is a 404, a
// failed lazy load (e.g. one corrupt snapshot) a 500 naming only that
// vehicle.
func (a *API) vehicle(w http.ResponseWriter, r *http.Request) (*etl.VehicleDataset, func(), bool) {
	id := r.PathValue("id")
	d, _, _, release, err := a.store.Acquire(r.Context(), id)
	if err != nil {
		writeAcquireError(w, id, err)
		return nil, nil, false
	}
	return d, release, true
}

// writeAcquireError maps a Store.Acquire failure to its HTTP status.
func writeAcquireError(w http.ResponseWriter, id string, err error) {
	if errors.Is(err, ErrUnknownVehicle) {
		writeError(w, http.StatusNotFound, "unknown vehicle %q", id)
		return
	}
	writeError(w, http.StatusInternalServerError, "vehicle %q load failed: %v", id, err)
}

func (a *API) handleVehicle(w http.ResponseWriter, r *http.Request) {
	d, release, ok := a.vehicle(w, r)
	if !ok {
		return
	}
	defer release()
	writeJSON(w, http.StatusOK, summarize(d))
}

// configFromQuery applies request overrides to the base configuration.
func (a *API) configFromQuery(r *http.Request) (core.Config, error) {
	cfg := a.Base
	q := r.URL.Query()
	if v := q.Get("alg"); v != "" {
		if _, err := regress.New(regress.Algorithm(v)); err != nil {
			return cfg, fmt.Errorf("unknown algorithm %q", v)
		}
		cfg.Algorithm = regress.Algorithm(v)
	}
	switch q.Get("scenario") {
	case "":
	case "next-day":
		cfg.Scenario = core.NextDay
	case "next-working-day":
		cfg.Scenario = core.NextWorkingDay
	default:
		return cfg, fmt.Errorf("unknown scenario %q", q.Get("scenario"))
	}
	for name, dst := range map[string]*int{"w": &cfg.W, "k": &cfg.K, "stride": &cfg.Stride} {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return cfg, fmt.Errorf("parameter %s: %v", name, err)
			}
			*dst = n
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// forecastResponse is the forecast payload. Lo/Hi/Level are present
// only when an interval was requested, Horizon only for multi-step
// requests; Cached marks responses served from (or coalesced onto) a
// previously trained artifact.
type forecastResponse struct {
	Vehicle   string    `json:"vehicle"`
	Scenario  string    `json:"scenario"`
	Algorithm string    `json:"algorithm"`
	Hours     float64   `json:"hours"`
	Lags      []int     `json:"lags"`
	Horizon   []float64 `json:"horizon,omitempty"`
	Lo        *float64  `json:"lo,omitempty"`
	Hi        *float64  `json:"hi,omitempty"`
	Level     *float64  `json:"level,omitempty"`
	Cached    bool      `json:"cached,omitempty"`
	TookMS    float64   `json:"took_ms"`
}

// pointForecast is the cached artifact of a plain (no-interval)
// forecast: the trained model plus its precomputed next-day answer.
// One artifact serves both single-step and horizon requests — a
// horizon is derived from the cached Fitted per request (Fitted is
// safe for concurrent use), so `?horizon=` never retrains a model the
// cache already holds.
type pointForecast struct {
	fitted *core.Fitted
	hours  float64
	lags   []int
}

// maxHorizon bounds `?horizon=` requests; iterated forecasts degrade
// into the model's fixed point long before this.
const maxHorizon = 366

func (a *API) handleForecast(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d, fp, gen, release, err := a.store.Acquire(r.Context(), id)
	if err != nil {
		writeAcquireError(w, id, err)
		return
	}
	// The pin holds the vehicle resident until the response is built,
	// so eviction under memory pressure never races the fit below.
	defer release()
	cfg, err := a.configFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	horizon := 0
	if hStr := r.URL.Query().Get("horizon"); hStr != "" {
		h, err := strconv.Atoi(hStr)
		if err != nil || h < 1 || h > maxHorizon {
			writeError(w, http.StatusBadRequest, "horizon must be in [1, %d], got %q", maxHorizon, hStr)
			return
		}
		horizon = h
	}
	start := time.Now()
	resp := forecastResponse{
		Vehicle:   d.VehicleID,
		Scenario:  cfg.Scenario.String(),
		Algorithm: string(cfg.Algorithm),
	}
	if levelStr := r.URL.Query().Get("interval"); levelStr != "" {
		if horizon > 0 {
			writeError(w, http.StatusBadRequest, "interval and horizon cannot be combined")
			return
		}
		level, err := strconv.ParseFloat(levelStr, 64)
		if err != nil || level <= 0 || level >= 1 {
			writeError(w, http.StatusBadRequest, "interval must be in (0, 1), got %q", levelStr)
			return
		}
		kind := "interval:" + strconv.FormatFloat(level, 'g', -1, 64)
		val, cached, err := a.Cache.DoContext(r.Context(), cacheKey(kind, d.VehicleID, fp, cfg), gen, func(ctx context.Context) (any, error) {
			p, err := a.planFor(ctx, d, fp, cfg)
			if err != nil {
				return nil, err
			}
			return p.ForecastIntervalContext(ctx, level)
		})
		if err != nil {
			writeError(w, buildStatus(err), "forecast failed: %v", err)
			return
		}
		iv := val.(*core.Interval)
		resp.Hours = iv.Hours
		resp.Lags = iv.Lags
		resp.Lo, resp.Hi, resp.Level = &iv.Lo, &iv.Hi, &iv.Level
		resp.Cached = cached
	} else {
		val, cached, err := a.Cache.DoContext(r.Context(), cacheKey("point", d.VehicleID, fp, cfg), gen, func(ctx context.Context) (any, error) {
			p, err := a.planFor(ctx, d, fp, cfg)
			if err != nil {
				return nil, err
			}
			fitted, err := p.FitContext(ctx)
			if err != nil {
				return nil, err
			}
			hours, err := fitted.ForecastContext(ctx, nil)
			if err != nil {
				return nil, err
			}
			return pointForecast{fitted: fitted, hours: hours, lags: fitted.Lags()}, nil
		})
		if err != nil {
			writeError(w, buildStatus(err), "forecast failed: %v", err)
			return
		}
		pf := val.(pointForecast)
		resp.Hours = pf.hours
		resp.Lags = pf.lags
		resp.Cached = cached
		if horizon > 0 {
			steps, err := pf.fitted.HorizonContext(r.Context(), horizon, nil)
			if err != nil {
				writeError(w, buildStatus(err), "forecast failed: %v", err)
				return
			}
			resp.Horizon = steps
		}
	}
	resp.TookMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// evaluationResponse is the hold-out evaluation payload.
type evaluationResponse struct {
	Vehicle     string  `json:"vehicle"`
	Scenario    string  `json:"scenario"`
	Algorithm   string  `json:"algorithm"`
	PE          float64 `json:"pe_percent"`
	MAE         float64 `json:"mae_hours"`
	Predictions int     `json:"predictions"`
	Skipped     int     `json:"skipped_windows"`
	Cached      bool    `json:"cached,omitempty"`
}

// levelsResponse is the usage-level classification payload.
type levelsResponse struct {
	Vehicle    string   `json:"vehicle"`
	Scenario   string   `json:"scenario"`
	Classifier string   `json:"classifier"`
	Accuracy   float64  `json:"accuracy"`
	MacroF1    float64  `json:"macro_f1"`
	Confusion  [][]int  `json:"confusion"`
	Levels     []string `json:"levels"`
}

func (a *API) handleLevels(w http.ResponseWriter, r *http.Request) {
	d, release, ok := a.vehicle(w, r)
	if !ok {
		return
	}
	defer release()
	cfg, err := a.configFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	name := r.URL.Query().Get("classifier")
	if name == "" {
		name = "Tree"
	}
	res, err := classify.EvaluateVehicle(d, cfg, name)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, classify.ErrBadParam) {
			status = http.StatusBadRequest
		}
		writeError(w, status, "classification failed: %v", err)
		return
	}
	levels := make([]string, int(classify.NumLevels))
	for l := classify.Idle; l < classify.NumLevels; l++ {
		levels[int(l)] = l.String()
	}
	writeJSON(w, http.StatusOK, levelsResponse{
		Vehicle:    d.VehicleID,
		Scenario:   cfg.Scenario.String(),
		Classifier: name,
		Accuracy:   res.Accuracy,
		MacroF1:    res.MacroF1,
		Confusion:  res.Confusion.Counts,
		Levels:     levels,
	})
}

func (a *API) handleEvaluation(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d, fp, gen, release, err := a.store.Acquire(r.Context(), id)
	if err != nil {
		writeAcquireError(w, id, err)
		return
	}
	defer release()
	cfg, err := a.configFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	val, cached, err := a.Cache.DoContext(r.Context(), cacheKey("eval", d.VehicleID, fp, cfg), gen, func(ctx context.Context) (any, error) {
		p, err := a.planFor(ctx, d, fp, cfg)
		if err != nil {
			return nil, err
		}
		return p.EvaluateContext(ctx)
	})
	if err != nil {
		writeError(w, buildStatus(err), "evaluation failed: %v", err)
		return
	}
	res := val.(*core.Result)
	writeJSON(w, http.StatusOK, evaluationResponse{
		Vehicle:     d.VehicleID,
		Scenario:    cfg.Scenario.String(),
		Algorithm:   string(cfg.Algorithm),
		PE:          res.PE,
		MAE:         res.MAE,
		Predictions: len(res.Predictions),
		Skipped:     res.SkippedWindows,
		Cached:      cached,
	})
}
