package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vup/internal/obs/trace"
)

// decode drains and JSON-decodes a response body.
func decode(t *testing.T, resp *http.Response, into any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// readBody drains a response body as text.
func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestHealthzReport checks the operator-facing healthz payload: cache
// effectiveness numbers move with traffic, the hit ratio stays a valid
// JSON float, and the build identity is present.
func TestHealthzReport(t *testing.T) {
	_, srv, _ := cachedAPI(t, 8)
	var body map[string]any
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body) // miss
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body) // hit

	var health map[string]any
	get(t, srv+"/healthz", http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Fatalf("status = %v", health["status"])
	}
	if up := health["uptime_seconds"].(float64); up < 0 {
		t.Errorf("uptime_seconds = %v", up)
	}
	if v := health["vehicles"].(float64); v != 3 {
		t.Errorf("vehicles = %v", v)
	}
	if e := health["cache_entries"].(float64); e < 1 {
		t.Errorf("cache_entries = %v after a cached forecast", e)
	}
	hits := health["cache_hits"].(float64)
	misses := health["cache_misses"].(float64)
	if hits < 1 || misses < 1 {
		t.Errorf("cache hits/misses = %v/%v, want at least one of each", hits, misses)
	}
	ratio := health["cache_hit_ratio"].(float64)
	if ratio <= 0 || ratio >= 1 {
		t.Errorf("cache_hit_ratio = %v, want strictly between 0 and 1", ratio)
	}
	if gv := health["go_version"].(string); !strings.HasPrefix(gv, "go") {
		t.Errorf("go_version = %q", gv)
	}
}

// TestHealthzColdCacheRatio proves the 0/0 hit ratio stays encodable:
// before any lookup the ratio must be 0, not NaN (which encoding/json
// rejects — the response itself arriving is half the test).
func TestHealthzColdCacheRatio(t *testing.T) {
	_, srv, _ := cachedAPI(t, 8)
	var health map[string]any
	get(t, srv+"/healthz", http.StatusOK, &health)
	if ratio := health["cache_hit_ratio"].(float64); ratio != 0 {
		t.Errorf("cold cache_hit_ratio = %v, want 0", ratio)
	}
}

// TestCachePerVehicleInvalidation proves invalidation is scoped to the
// vehicle that changed: replacing veh-0000's dataset retrains veh-0000
// but must keep serving veh-0001's cached artifact.
func TestCachePerVehicleInvalidation(t *testing.T) {
	api, srv, fits := cachedAPI(t, 8)
	var body map[string]any
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body)
	get(t, srv+"/v1/vehicles/veh-0001/forecast", http.StatusOK, &body)
	if fits.Load() != 2 {
		t.Fatalf("fits = %d after two cold requests", fits.Load())
	}

	d, ok := api.store.Get("veh-0000")
	if !ok {
		t.Fatal("veh-0000 missing")
	}
	mod := *d
	mod.Hours = append([]float64(nil), d.Hours...)
	mod.Hours[len(mod.Hours)-1] += 1
	if err := api.store.Put(&mod); err != nil {
		t.Fatal(err)
	}
	if g := api.store.Generation("veh-0000"); g != 1 {
		t.Fatalf("veh-0000 generation = %d after Put", g)
	}
	if g := api.store.Generation("veh-0001"); g != 0 {
		t.Fatalf("veh-0001 generation = %d, bumped by another vehicle's Put", g)
	}

	// The untouched vehicle still hits.
	var warm map[string]any
	get(t, srv+"/v1/vehicles/veh-0001/forecast", http.StatusOK, &warm)
	if fits.Load() != 2 {
		t.Errorf("fits = %d, veh-0001 retrained after veh-0000's Put", fits.Load())
	}
	if warm["cached"] != true {
		t.Error("veh-0001 response not served from cache")
	}
	// The replaced vehicle retrains.
	var cold map[string]any
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &cold)
	if fits.Load() != 3 {
		t.Errorf("fits = %d, veh-0000 not retrained after Put", fits.Load())
	}
	if cold["cached"] == true {
		t.Error("post-invalidation veh-0000 response claims cached")
	}
}

// TestForecastTraceEndToEnd is the tracing acceptance path: a cold
// /forecast returns an X-Trace-Id whose stored trace — served over
// /debug/traces/{id} like the vup-server debug listener does — shows
// the request, the cache miss, and the nested pipeline stages.
func TestForecastTraceEndToEnd(t *testing.T) {
	api, srv := testAPI(t)
	api.Cache = NewForecastCache(8)
	api.Traces = trace.NewCollector(trace.Options{Capacity: 16, SampleRate: 1, Seed: 1})
	debugSrv := httptest.NewServer(api.Traces.Handler())
	t.Cleanup(debugSrv.Close)

	resp, err := http.Get(srv.URL + "/v1/vehicles/veh-0000/forecast")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast status = %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("no X-Trace-Id header on traced request")
	}

	// The root span ends after the response body is written, so the
	// trace may land in the store a beat after the client sees the
	// response; poll briefly.
	var td trace.TraceData
	deadline := time.Now().Add(2 * time.Second)
	for {
		var got trace.TraceData
		r, err := http.Get(debugSrv.URL + "/debug/traces/" + traceID + "?format=json")
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusOK {
			decode(t, r, &got)
			td = got
			break
		}
		r.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("trace %s not retrievable: status %d", traceID, r.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if td.TraceID != traceID {
		t.Fatalf("trace_id = %s, want %s", td.TraceID, traceID)
	}
	if len(td.Spans) < 4 {
		t.Fatalf("spans = %d, want at least request + cache + plan stages", len(td.Spans))
	}
	byName := map[string]trace.SpanData{}
	for _, sp := range td.Spans {
		byName[sp.Name] = sp
	}
	for _, want := range []string{"GET /v1/vehicles/{id}/forecast", "cache.lookup", "plan.build", "plan.fit", "model.predict"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("span %q missing from trace (have %d spans)", want, len(td.Spans))
		}
	}
	// Nesting: the root has no parent, every other span has one, and
	// the plan stages run under the cache miss.
	root := td.Spans[0]
	if root.ParentID != "" {
		t.Errorf("root span has parent %q", root.ParentID)
	}
	for _, sp := range td.Spans[1:] {
		if sp.ParentID == "" {
			t.Errorf("span %q is unparented", sp.Name)
		}
		if sp.Duration < 0 {
			t.Errorf("span %q duration = %v", sp.Name, sp.Duration)
		}
	}
	if build, lookup := byName["plan.build"], byName["cache.lookup"]; build.ParentID != lookup.SpanID {
		t.Errorf("plan.build parent = %q, want the cache.lookup span %q", build.ParentID, lookup.SpanID)
	}
	var outcome string
	for _, a := range byName["cache.lookup"].Attrs {
		if a.Key == "outcome" {
			outcome = a.Value
		}
	}
	if outcome != "miss" {
		t.Errorf("cold cache.lookup outcome = %q, want miss", outcome)
	}

	// The human-facing waterfall renders the same trace.
	wf, err := http.Get(debugSrv.URL + "/debug/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	text := readBody(t, wf)
	if wf.StatusCode != http.StatusOK {
		t.Fatalf("waterfall status = %d", wf.StatusCode)
	}
	for _, want := range []string{traceID, "cache.lookup", "plan.build", "model.predict"} {
		if !strings.Contains(text, want) {
			t.Errorf("waterfall missing %q:\n%s", want, text)
		}
	}

	// A second identical request is a cache hit with its own trace.
	resp2, err := http.Get(srv.URL + "/v1/vehicles/veh-0000/forecast")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	hitID := resp2.Header.Get("X-Trace-Id")
	if hitID == "" || hitID == traceID {
		t.Fatalf("warm request trace id = %q (cold was %s)", hitID, traceID)
	}
}

// TestUntracedRequestsHaveNoTraceHeader pins the disabled path: with no
// collector the API must not emit X-Trace-Id, and /debug/traces has
// nothing to serve.
func TestUntracedRequestsHaveNoTraceHeader(t *testing.T) {
	_, srv := testAPI(t)
	resp, err := http.Get(srv.URL + "/v1/vehicles/veh-0000/forecast")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Trace-Id"); id != "" {
		t.Errorf("untraced request carries X-Trace-Id %q", id)
	}
}
