package server

// Lazy-store coverage: a store booted from the fleet roster alone must
// serve exactly what the eager store serves, fault vehicles in on
// demand (once per cold vehicle), hold resident bytes under the budget
// by evicting cold datasets, and keep every durability and consistency
// contract intact while eviction races live forecasts and ingests.

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vup/internal/etl"
	"vup/internal/fstore"
)

// lazyFixture saves datasets into a fresh fstore directory and returns
// a reopened (cold) handle plus a lazy store over it with the given
// budget and a fault counter.
func lazyFixture(t *testing.T, datasets []*etl.VehicleDataset, budget int64) (*fstore.Dir, *Store, *atomic.Int64) {
	t.Helper()
	dir, err := fstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	cold, err := fstore.Open(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	var loads atomic.Int64
	loader := func(id string) (*etl.VehicleDataset, error) {
		loads.Add(1)
		return cold.LoadVehicle(id)
	}
	store, err := NewLazyStore(cold.VehicleIDs(), loader, budget)
	if err != nil {
		t.Fatal(err)
	}
	return cold, store, &loads
}

func TestNewLazyStoreRejectsBadInput(t *testing.T) {
	loader := func(string) (*etl.VehicleDataset, error) { return nil, nil }
	if _, err := NewLazyStore([]string{"a"}, nil, 0); err == nil {
		t.Error("nil loader accepted")
	}
	if _, err := NewLazyStore([]string{"a", ""}, loader, 0); err == nil {
		t.Error("empty roster id accepted")
	}
	if _, err := NewLazyStore([]string{"a", "a"}, loader, 0); err == nil {
		t.Error("duplicate roster id accepted")
	}
}

func TestLazyStoreLoadsOnDemand(t *testing.T) {
	datasets := persistDatasets(t)
	_, store, loads := lazyFixture(t, datasets, 0)

	// The roster is visible without a single dataset decode.
	if !store.Lazy() {
		t.Fatal("store does not report lazy mode")
	}
	if got := store.Len(); got != len(datasets) {
		t.Fatalf("Len = %d, want %d", got, len(datasets))
	}
	if got := len(store.IDs()); got != len(datasets) {
		t.Fatalf("IDs lists %d vehicles, want %d", got, len(datasets))
	}
	if n, b := store.ResidentStats(); n != 0 || b != 0 {
		t.Fatalf("fresh lazy store resident stats = (%d, %d), want (0, 0)", n, b)
	}
	if got := loads.Load(); got != 0 {
		t.Fatalf("boot cost %d loads, want 0", got)
	}

	id := datasets[0].VehicleID
	d, ok := store.Get(id)
	if !ok {
		t.Fatalf("Get(%q) missed a rostered vehicle", id)
	}
	if d.Fingerprint() != datasets[0].Fingerprint() {
		t.Errorf("lazily loaded dataset fingerprint drifted")
	}
	if got := loads.Load(); got != 1 {
		t.Fatalf("first Get cost %d loads, want 1", got)
	}
	// Hot path: no second fault.
	if _, ok := store.Get(id); !ok {
		t.Fatal("second Get missed")
	}
	if got := loads.Load(); got != 1 {
		t.Fatalf("resident Get refaulted: %d loads", got)
	}
	if n, b := store.ResidentStats(); n != 1 || b != datasets[0].SizeBytes() {
		t.Fatalf("resident stats = (%d, %d), want (1, %d)", n, b, datasets[0].SizeBytes())
	}

	if _, ok := store.Get("veh-nope"); ok {
		t.Error("Get of unrostered vehicle succeeded")
	}
}

// TestLazyStoreSingleFlight: concurrent acquisitions of the same cold
// vehicle trigger exactly one load.
func TestLazyStoreSingleFlight(t *testing.T) {
	datasets := persistDatasets(t)
	_, store, loads := lazyFixture(t, datasets, 0)

	id := datasets[0].VehicleID
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, _, _, release, err := store.Acquire(t.Context(), id)
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			defer release()
			if d.VehicleID != id {
				t.Errorf("Acquire returned %q", d.VehicleID)
			}
		}()
	}
	wg.Wait()
	if got := loads.Load(); got != 1 {
		t.Fatalf("16 concurrent acquisitions cost %d loads, want 1", got)
	}
}

// TestLazyStoreEvictsUnderBudget is the acceptance criterion's memory
// bound: sweeping the whole fleet through a store whose budget holds
// only part of it must stay at or under budget after every fault, and
// must still serve every vehicle correctly.
func TestLazyStoreEvictsUnderBudget(t *testing.T) {
	datasets := persistDatasets(t)
	// Room for one dataset plus change — never the whole fleet.
	budget := datasets[0].SizeBytes() + datasets[1].SizeBytes()/2
	_, store, loads := lazyFixture(t, datasets, budget)

	for sweep := 0; sweep < 2; sweep++ {
		for _, want := range datasets {
			d, ok := store.Get(want.VehicleID)
			if !ok {
				t.Fatalf("sweep %d: Get(%q) missed", sweep, want.VehicleID)
			}
			if d.Fingerprint() != want.Fingerprint() {
				t.Errorf("sweep %d: %q fingerprint drifted after evict/reload", sweep, want.VehicleID)
			}
			if n, b := store.ResidentStats(); b > budget {
				t.Fatalf("sweep %d: resident bytes %d over budget %d (%d resident)", sweep, b, budget, n)
			}
		}
	}
	// The budget fits one dataset, so the second sweep must refault —
	// eviction really happened.
	if got := loads.Load(); got <= int64(len(datasets)) {
		t.Fatalf("%d loads across two sweeps: nothing was evicted", got)
	}
}

// TestLazyStorePinBlocksEviction: a dataset held by an in-flight
// request survives budget pressure; the store runs over budget rather
// than yanking it.
func TestLazyStorePinBlocksEviction(t *testing.T) {
	datasets := persistDatasets(t)
	budget := datasets[0].SizeBytes() // one vehicle's worth
	_, store, _ := lazyFixture(t, datasets, budget)

	id0 := datasets[0].VehicleID
	d, _, _, release, err := store.Acquire(t.Context(), id0)
	if err != nil {
		t.Fatal(err)
	}
	// Fault the other vehicle in while the first is pinned: both must
	// stay resident even though that busts the budget.
	if _, ok := store.Get(datasets[1].VehicleID); !ok {
		t.Fatal("Get of second vehicle failed")
	}
	if got, ok := store.Get(id0); !ok || got.Fingerprint() != d.Fingerprint() {
		t.Fatal("pinned vehicle was evicted under budget pressure")
	}
	release()

	// With the pin gone, the next fault can shed the cold entries.
	if _, ok := store.Get(datasets[1].VehicleID); !ok {
		t.Fatal("Get after release failed")
	}
	if _, b := store.ResidentStats(); b > budget {
		t.Fatalf("resident bytes %d still over budget %d after release", b, budget)
	}
	release() // idempotent: must not double-unpin
}

// TestLazyEagerByteIdentical is the serving-equivalence acceptance
// criterion: the lazy store under a tight budget answers every
// endpoint byte-identically (timing aside) to the eager store.
func TestLazyEagerByteIdentical(t *testing.T) {
	datasets := persistDatasets(t)
	base := persistConfig()

	eagerStore, err := NewStore(datasets)
	if err != nil {
		t.Fatal(err)
	}
	eagerSrv := httptest.NewServer(New(eagerStore, base).Handler())
	defer eagerSrv.Close()

	budget := datasets[0].SizeBytes() + 1 // evicts on every vehicle switch
	_, lazyStore, _ := lazyFixture(t, datasets, budget)
	lazySrv := httptest.NewServer(New(lazyStore, base).Handler())
	defer lazySrv.Close()

	var paths []string
	for _, d := range datasets {
		paths = append(paths,
			"/v1/vehicles/"+d.VehicleID,
			"/v1/vehicles/"+d.VehicleID+"/forecast",
			"/v1/vehicles/"+d.VehicleID+"/forecast?alg=SVR&scenario=next-working-day",
			"/v1/vehicles/"+d.VehicleID+"/levels",
		)
	}
	paths = append(paths, "/v1/vehicles")
	// Two passes so the lazy side serves both cold (fault) and evicted
	// (refault) states for every path.
	for pass := 0; pass < 2; pass++ {
		for _, path := range paths {
			var eager, lazy any
			if path == "/v1/vehicles" {
				var e, l []map[string]any
				get(t, eagerSrv.URL+path, 200, &e)
				get(t, lazySrv.URL+path, 200, &l)
				eager, lazy = e, l
			} else {
				var e, l map[string]any
				get(t, eagerSrv.URL+path, 200, &e)
				get(t, lazySrv.URL+path, 200, &l)
				delete(e, "took_ms")
				delete(l, "took_ms")
				// The lazy side's forecasts hit its own cache on pass 2;
				// the flag is serving-state, not data.
				delete(e, "cached")
				delete(l, "cached")
				eager, lazy = e, l
			}
			if !reflect.DeepEqual(eager, lazy) {
				t.Errorf("pass %d: GET %s differs between eager and lazy stores:\n  eager: %v\n  lazy:  %v",
					pass, path, eager, lazy)
			}
		}
	}
}

// TestEvictionRacingForecastAndAppend churns a tiny-budget lazy store
// with concurrent readers (forecast-shaped Acquire/release) and
// writers (Append through the real append log) — under -race this is
// the eviction/pin/single-flight torture test. Afterwards a cold
// restart must reproduce the exact fingerprints the live store ended
// on, including for vehicles that were evicted mid-run.
func TestEvictionRacingForecastAndAppend(t *testing.T) {
	datasets := persistDatasets(t)
	dir, store, _ := lazyFixture(t, datasets, datasets[0].SizeBytes()+1)
	store.SetAppender(dir.Append)
	store.SetCompactor(func(d *etl.VehicleDataset) (bool, error) {
		return dir.MaybeCompact(d, 8)
	})

	const appendsPerVehicle = 24
	var wg sync.WaitGroup
	// One writer per vehicle: contiguous days only work appended in
	// order, and per-vehicle ordering is the store's own contract too.
	for vi := range datasets {
		wg.Add(1)
		go func(vi int) {
			defer wg.Done()
			id := datasets[vi].VehicleID
			cur, ok := store.Get(id)
			if !ok {
				t.Errorf("writer %d: initial Get missed", vi)
				return
			}
			for i := 0; i < appendsPerVehicle; i++ {
				day := fstore.Day{
					Date:     cur.Date(cur.Len()-1).AddDate(0, 0, 1),
					Hours:    float64(i%7) + 0.5,
					Observed: true,
					Channels: singleDayChannels(cur),
				}
				grown, _, err := store.Append(id, []fstore.Day{day}, etl.MissingForwardFill)
				if err != nil {
					t.Errorf("writer %d append %d: %v", vi, i, err)
					return
				}
				cur = grown
			}
		}(vi)
	}
	// Readers sweep vehicles in a scrambled order, pinning each long
	// enough to race the writers and the eviction pass.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 40; i++ {
				id := datasets[rng.Intn(len(datasets))].VehicleID
				d, fp, _, release, err := store.Acquire(t.Context(), id)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if d.Fingerprint() != fp {
					t.Errorf("reader %d: Acquire fingerprint inconsistent with dataset", r)
				}
				time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
				release()
			}
		}(r)
	}
	wg.Wait()

	// Snapshot the dirty residents the way a lazy shutdown does, then
	// restart cold: every vehicle — evicted or resident, compacted or
	// log-backed — must reload fingerprint-identically.
	for _, d := range store.DirtyResidents() {
		if err := dir.SaveVehicle(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := fstore.Open(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, orig := range datasets {
		id := orig.VehicleID
		live, ok := store.Get(id)
		if !ok {
			t.Fatalf("Get(%q) after churn missed", id)
		}
		if live.Len() != orig.Len()+appendsPerVehicle {
			t.Errorf("%s: %d days after churn, want %d", id, live.Len(), orig.Len()+appendsPerVehicle)
		}
		reloaded, err := reopened.LoadVehicle(id)
		if err != nil {
			t.Fatalf("LoadVehicle(%q) after restart: %v", id, err)
		}
		if reloaded.Fingerprint() != live.Fingerprint() {
			t.Errorf("%s: restart fingerprint %016x differs from live %016x",
				id, reloaded.Fingerprint(), live.Fingerprint())
		}
	}
}

// TestVlocksBounded is the regression test for the unbounded vlocks
// map: per-vehicle lock entries must be refcounted away once idle, so
// sweeping a large fleet leaves no per-vehicle residue in the lock
// table.
func TestVlocksBounded(t *testing.T) {
	datasets := persistDatasets(t)
	dir, store, _ := lazyFixture(t, datasets, datasets[0].SizeBytes()+1)
	store.SetAppender(dir.Append)

	var wg sync.WaitGroup
	for vi := range datasets {
		wg.Add(1)
		go func(vi int) {
			defer wg.Done()
			id := datasets[vi].VehicleID
			cur, _ := store.Get(id)
			for i := 0; i < 10; i++ {
				day := fstore.Day{
					Date:     cur.Date(cur.Len()-1).AddDate(0, 0, 1),
					Hours:    1,
					Observed: true,
					Channels: singleDayChannels(cur),
				}
				grown, _, err := store.Append(id, []fstore.Day{day}, etl.MissingForwardFill)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				cur = grown
				if _, _, _, release, err := store.Acquire(t.Context(), id); err == nil {
					release()
				}
			}
		}(vi)
	}
	wg.Wait()

	store.vmu.Lock()
	left := len(store.vlocks)
	store.vmu.Unlock()
	if left != 0 {
		t.Fatalf("%d vlock entries left after all work drained, want 0 (map leaks one entry per vehicle ever touched)", left)
	}
}

// TestLazyCorruptVehicle: one rotten snapshot must fail only that
// vehicle's requests — boot, the roster, and every other vehicle keep
// working. (An eager boot refuses the whole directory instead.)
func TestLazyCorruptVehicle(t *testing.T) {
	datasets := persistDatasets(t)
	dir, err := fstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	bad := datasets[0].VehicleID
	corruptSnapshot(t, dir.Path(), bad)

	cold, err := fstore.Open(dir.Path())
	if err != nil {
		t.Fatalf("manifest-only boot failed on one corrupt snapshot: %v", err)
	}
	store, err := NewLazyStore(cold.VehicleIDs(), cold.LoadVehicle, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(store, persistConfig()).Handler())
	defer srv.Close()

	// The healthy vehicle serves; the corrupt one 500s; the roster
	// still lists both.
	good := datasets[1].VehicleID
	var ok map[string]any
	get(t, srv.URL+"/v1/vehicles/"+good+"/forecast", 200, &ok)
	var fail map[string]any
	get(t, srv.URL+"/v1/vehicles/"+bad+"/forecast", 500, &fail)
	if msg, _ := fail["error"].(string); msg == "" {
		t.Error("corrupt-vehicle failure carries no error message")
	}
	var health map[string]any
	get(t, srv.URL+"/healthz", 200, &health)
	if got := health["total_vehicles"].(float64); int(got) != len(datasets) {
		t.Errorf("healthz total_vehicles = %v, want %d", got, len(datasets))
	}

	// And the store-level error is typed, not ErrUnknownVehicle.
	if _, _, _, _, err := store.Acquire(t.Context(), bad); err == nil || errors.Is(err, ErrUnknownVehicle) {
		t.Errorf("Acquire of corrupt vehicle = %v, want a load error", err)
	}
}

// TestHealthzResident: /healthz reports the working set and guards its
// ratios when nothing is resident yet.
func TestHealthzResident(t *testing.T) {
	datasets := persistDatasets(t)
	_, store, _ := lazyFixture(t, datasets, 0)
	srv := httptest.NewServer(New(store, persistConfig()).Handler())
	defer srv.Close()

	var health map[string]any
	get(t, srv.URL+"/healthz", 200, &health)
	if got := health["lazy_load"]; got != true {
		t.Errorf("lazy_load = %v, want true", got)
	}
	if got := health["total_vehicles"].(float64); int(got) != len(datasets) {
		t.Errorf("total_vehicles = %v, want %d", got, len(datasets))
	}
	// Zero-resident store: counts are zero and the JSON still encodes
	// (a naive resident/total or observed/total ratio would be fine
	// here, but 0/0 must not reach the encoder as NaN).
	if got := health["resident_vehicles"].(float64); got != 0 {
		t.Errorf("resident_vehicles = %v before any request, want 0", got)
	}

	var resp map[string]any
	get(t, srv.URL+"/v1/vehicles/"+datasets[0].VehicleID+"/forecast", 200, &resp)
	get(t, srv.URL+"/healthz", 200, &health)
	if got := health["resident_vehicles"].(float64); got != 1 {
		t.Errorf("resident_vehicles = %v after one forecast, want 1", got)
	}
	if got := health["resident_bytes"].(float64); got <= 0 {
		t.Errorf("resident_bytes = %v after one forecast, want > 0", got)
	}
}

// TestDirtyResidents: only vehicles with un-snapshotted appended days
// count as dirty, eviction drops the mark (the log already holds the
// days), and re-snapshotting clears it.
func TestDirtyResidents(t *testing.T) {
	datasets := persistDatasets(t)
	dir, store, _ := lazyFixture(t, datasets, 0)
	store.SetAppender(dir.Append)

	if got := len(store.DirtyResidents()); got != 0 {
		t.Fatalf("fresh store has %d dirty residents", got)
	}
	id := datasets[0].VehicleID
	cur, _ := store.Get(id)
	day := fstore.Day{
		Date:     cur.Date(cur.Len()-1).AddDate(0, 0, 1),
		Hours:    2,
		Observed: true,
		Channels: singleDayChannels(cur),
	}
	grown, _, err := store.Append(id, []fstore.Day{day}, etl.MissingForwardFill)
	if err != nil {
		t.Fatal(err)
	}
	dirty := store.DirtyResidents()
	if len(dirty) != 1 || dirty[0].VehicleID != id {
		t.Fatalf("dirty residents = %v, want exactly %q", dirtyIDs(dirty), id)
	}
	// Put re-snapshots through the persister, which makes the vehicle
	// clean again.
	store.SetPersister(dir.SaveVehicle)
	if err := store.Put(grown.Clone()); err != nil {
		t.Fatal(err)
	}
	if got := len(store.DirtyResidents()); got != 0 {
		t.Fatalf("%d dirty residents after Put re-snapshotted, want 0", got)
	}
}

func dirtyIDs(ds []*etl.VehicleDataset) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.VehicleID
	}
	return out
}

// corruptSnapshot truncates one vehicle's snapshot file in place.
// Test vehicle IDs are filename-safe, so the snapshot is id + ".vds".
func corruptSnapshot(t *testing.T, dirPath, vehicleID string) {
	t.Helper()
	path := filepath.Join(dirPath, vehicleID+".vds")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}
