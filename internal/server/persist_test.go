package server

// Acceptance tests for the on-disk fleet store wiring: a server booted
// from a saved fleet must be indistinguishable from one holding the
// generated fleet — same forecasts, same fingerprints, and therefore a
// warm forecast cache across the restart.

import (
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"vup/internal/canbus"
	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/fstore"
	"vup/internal/randx"
	"vup/internal/regress"
)

func persistDatasets(t *testing.T) []*etl.VehicleDataset {
	t.Helper()
	f, err := fleet.Generate(fleet.Config{Units: 2, Days: 400, Seed: 5, Start: fleet.StudyStart})
	if err != nil {
		t.Fatal(err)
	}
	usage := f.SimulateAll()
	rng := randx.New(6)
	var datasets []*etl.VehicleDataset
	for _, u := range f.Units {
		d, err := etl.FromUsage(u, usage[u.Vehicle.ID], rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		datasets = append(datasets, d)
	}
	return datasets
}

func persistConfig() core.Config {
	base := core.DefaultConfig()
	base.Algorithm = regress.AlgLasso
	base.W = 90
	base.K = 8
	base.MaxLag = 21
	base.Stride = 10
	base.Channels = []string{canbus.ChanFuelRate}
	return base
}

// TestForecastIdenticalAfterDiskRoundTrip is the issue's acceptance
// criterion: a server booted from -data-dir serves /forecast responses
// identical to the in-memory path (timing field aside).
func TestForecastIdenticalAfterDiskRoundTrip(t *testing.T) {
	datasets := persistDatasets(t)
	base := persistConfig()

	memStore, err := NewStore(datasets)
	if err != nil {
		t.Fatal(err)
	}
	memSrv := httptest.NewServer(New(memStore, base).Handler())
	defer memSrv.Close()

	dir, err := fstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	reopened, err := fstore.Open(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	loaded, _, err := reopened.Load()
	if err != nil {
		t.Fatal(err)
	}
	diskStore, err := NewStore(loaded)
	if err != nil {
		t.Fatal(err)
	}
	diskSrv := httptest.NewServer(New(diskStore, base).Handler())
	defer diskSrv.Close()

	id := datasets[0].VehicleID
	for _, path := range []string{
		"/v1/vehicles/" + id + "/forecast",
		"/v1/vehicles/" + id + "/forecast?alg=SVR&scenario=next-working-day",
		"/v1/vehicles/" + id + "/forecast?horizon=5",
		"/v1/vehicles/" + id + "/forecast?interval=0.8",
		"/v1/vehicles/" + id,
	} {
		var mem, disk map[string]any
		get(t, memSrv.URL+path, 200, &mem)
		get(t, diskSrv.URL+path, 200, &disk)
		// took_ms is wall-clock; everything else must match exactly.
		delete(mem, "took_ms")
		delete(disk, "took_ms")
		if !reflect.DeepEqual(mem, disk) {
			t.Errorf("GET %s differs across the disk round-trip:\n  mem:  %v\n  disk: %v", path, mem, disk)
		}
	}
}

// TestWarmStartCacheAcrossRestart verifies the warm-start contract:
// cache keys derive from dataset fingerprints, fingerprints survive
// the disk round-trip, so artifacts trained before a restart are hits
// after it.
func TestWarmStartCacheAcrossRestart(t *testing.T) {
	datasets := persistDatasets(t)
	base := persistConfig()

	store1, err := NewStore(datasets)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewForecastCache(16)
	api1 := New(store1, base)
	api1.Cache = cache
	srv1 := httptest.NewServer(api1.Handler())

	id := datasets[0].VehicleID
	var before forecastResponse
	get(t, srv1.URL+"/v1/vehicles/"+id+"/forecast", 200, &before)
	if before.Cached {
		t.Fatal("first request must train, not hit")
	}
	srv1.Close()

	// "Restart": persist the fleet, load it back in a fresh store. The
	// cache survives (in production it is in-process state rebuilt per
	// run; the point is that its keys remain valid, which only holds if
	// fingerprints are bit-stable across the disk round-trip).
	dir, err := fstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	man, err := dir.Save(datasets)
	if err != nil {
		t.Fatal(err)
	}
	loaded, _, err := dir.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range loaded {
		want, ok := man.FingerprintOf(d.VehicleID)
		if !ok {
			t.Fatalf("vehicle %q missing from manifest", d.VehicleID)
		}
		if got := d.Fingerprint(); got != want || got != datasets[i].Fingerprint() {
			t.Fatalf("fingerprint of %q drifted across disk: %016x, manifest %016x, original %016x",
				d.VehicleID, got, want, datasets[i].Fingerprint())
		}
	}
	store2, err := NewStore(loaded)
	if err != nil {
		t.Fatal(err)
	}
	api2 := New(store2, base)
	api2.Cache = cache
	srv2 := httptest.NewServer(api2.Handler())
	defer srv2.Close()

	var after forecastResponse
	get(t, srv2.URL+"/v1/vehicles/"+id+"/forecast", 200, &after)
	if !after.Cached {
		t.Error("post-restart request missed the cache: fingerprint-keyed warm start is broken")
	}
	if after.Hours != before.Hours || !reflect.DeepEqual(after.Lags, before.Lags) {
		t.Errorf("cached forecast drifted: %v/%v before, %v/%v after", before.Hours, before.Lags, after.Hours, after.Lags)
	}
}

// TestStorePutPersists exercises the Put → SaveVehicle hook: a dataset
// replaced at run time must be on disk before Put returns.
func TestStorePutPersists(t *testing.T) {
	datasets := persistDatasets(t)
	store, err := NewStore(datasets)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := fstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	store.SetPersister(dir.SaveVehicle)

	grown, err := datasets[0].Subset(fullIndex(datasets[0])) // deep copy, safe to mutate
	if err != nil {
		t.Fatal(err)
	}
	if err := fstore.ApplyDays(grown, fstore.Day{
		Date:     grown.Date(grown.Len()-1).AddDate(0, 0, 1),
		Hours:    3,
		Observed: true,
		Channels: singleDayChannels(grown),
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(grown); err != nil {
		t.Fatal(err)
	}

	reopened, err := fstore.Open(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	loaded, man, err := reopened.Load()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := man.FingerprintOf(grown.VehicleID)
	if want != grown.Fingerprint() {
		t.Errorf("manifest fingerprint %016x, want %016x after Put", want, grown.Fingerprint())
	}
	for _, d := range loaded {
		if d.VehicleID == grown.VehicleID && d.Len() != grown.Len() {
			t.Errorf("reloaded %q has %d days, want %d", d.VehicleID, d.Len(), grown.Len())
		}
	}
}

// TestStorePutRejectedByPersister: a failing persister must leave the
// in-memory store untouched, so memory never runs ahead of disk.
func TestStorePutRejectedByPersister(t *testing.T) {
	datasets := persistDatasets(t)
	store, err := NewStore(datasets)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	store.SetPersister(func(*etl.VehicleDataset) error { return boom })

	replacement, err := datasets[0].Subset(fullIndex(datasets[0])[:datasets[0].Len()-10])
	if err != nil {
		t.Fatal(err)
	}
	gen := store.Generation(replacement.VehicleID)
	if err := store.Put(replacement); !errors.Is(err, boom) {
		t.Fatalf("Put error = %v, want %v", err, boom)
	}
	d, ok := store.Get(replacement.VehicleID)
	if !ok || d.Len() != datasets[0].Len() {
		t.Error("rejected Put mutated the store")
	}
	if store.Generation(replacement.VehicleID) != gen {
		t.Error("rejected Put bumped the generation")
	}
}

// TestStorePutPersistDoesNotBlockReaders is the regression test for
// the fsync-under-write-lock bug: Put used to run the persist hook
// while holding the store's write lock, so one slow disk flush stalled
// every reader of every vehicle. Persistence must serialize per
// vehicle only; reads — and writes to other vehicles — proceed.
func TestStorePutPersistDoesNotBlockReaders(t *testing.T) {
	datasets := persistDatasets(t)
	store, err := NewStore(datasets)
	if err != nil {
		t.Fatal(err)
	}
	idA, idB := datasets[0].VehicleID, datasets[1].VehicleID

	inPersist := make(chan struct{})
	release := make(chan struct{})
	store.SetPersister(func(d *etl.VehicleDataset) error {
		if d.VehicleID == idA {
			close(inPersist)
			<-release
		}
		return nil
	})

	grown := datasets[0].Clone()
	if err := fstore.ApplyDays(grown, fstore.Day{
		Date:     grown.Date(grown.Len()-1).AddDate(0, 0, 1),
		Hours:    3,
		Observed: true,
		Channels: singleDayChannels(grown),
	}); err != nil {
		t.Fatal(err)
	}
	putDone := make(chan error, 1)
	go func() { putDone <- store.Put(grown) }()
	<-inPersist // A's persist is parked on the "disk"

	othersDone := make(chan struct{})
	go func() {
		defer close(othersDone)
		if _, ok := store.Get(idB); !ok {
			t.Errorf("Get(%s) failed", idB)
		}
		if _, ok := store.Get(idA); !ok {
			t.Errorf("Get(%s) failed", idA)
		}
		store.Generation(idB)
		if err := store.Put(datasets[1].Clone()); err != nil {
			t.Errorf("Put(%s): %v", idB, err)
		}
	}()
	select {
	case <-othersDone:
	case <-time.After(5 * time.Second):
		t.Fatal("reads blocked behind a slow persist: the store held its write lock across the disk flush")
	}

	// Before the swap, readers still see the old dataset.
	if d, _ := store.Get(idA); d.Len() != datasets[0].Len() {
		t.Errorf("Put visible before persist completed: %d days", d.Len())
	}
	close(release)
	if err := <-putDone; err != nil {
		t.Fatal(err)
	}
	if d, _ := store.Get(idA); d.Len() != grown.Len() {
		t.Errorf("Put not visible after persist: %d days, want %d", d.Len(), grown.Len())
	}
}

// TestStoreAppendLogsAndReplays pins the ingest durability contract:
// Append writes the *cleaned* day to the append log before making it
// visible, so a restart that replays the log (which does not re-clean)
// reproduces the exact bytes — and therefore the exact fingerprint —
// the live store served.
func TestStoreAppendLogsAndReplays(t *testing.T) {
	datasets := persistDatasets(t)
	store, err := NewStore(datasets)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := fstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	store.SetAppender(dir.Append)

	id := datasets[0].VehicleID
	gen0 := store.Generation(id)
	last := datasets[0].Date(datasets[0].Len() - 1)
	days := []fstore.Day{
		{Date: last.AddDate(0, 0, 1), Hours: 4.5, Observed: true, Channels: singleDayChannels(datasets[0])},
		// A missing day: Clean must repair it, and the *repaired* values
		// must be what reaches the log.
		{Date: last.AddDate(0, 0, 2), Hours: 0, Observed: false, Channels: singleDayChannels(datasets[0])},
		{Date: last.AddDate(0, 0, 3), Hours: 6.25, Observed: true, Channels: singleDayChannels(datasets[0])},
	}
	grown, gen, err := store.Append(id, days, etl.MissingForwardFill)
	if err != nil {
		t.Fatal(err)
	}
	if gen != gen0+1 {
		t.Errorf("generation %d after append, want %d", gen, gen0+1)
	}
	if grown.Len() != datasets[0].Len()+3 {
		t.Fatalf("appended dataset has %d days, want %d", grown.Len(), datasets[0].Len()+3)
	}
	if got, _ := store.Get(id); got.Fingerprint() != grown.Fingerprint() {
		t.Error("store serves a different dataset than Append returned")
	}

	// "Restart": replay snapshot + log and compare fingerprints.
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := fstore.Open(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	loaded, _, err := reopened.Load()
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, d := range loaded {
		if d.VehicleID != id {
			continue
		}
		found = true
		if d.Len() != grown.Len() {
			t.Errorf("replayed %d days, want %d", d.Len(), grown.Len())
		}
		if d.Fingerprint() != grown.Fingerprint() {
			t.Errorf("fingerprint drifted across the log replay: %016x vs %016x",
				d.Fingerprint(), grown.Fingerprint())
		}
	}
	if !found {
		t.Fatalf("vehicle %q missing after reload", id)
	}
}

// TestStoreAppendErrors: unknown vehicles and empty batches are
// rejected without touching the store.
func TestStoreAppendErrors(t *testing.T) {
	datasets := persistDatasets(t)
	store, err := NewStore(datasets)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Append("veh-nope", []fstore.Day{{}}, etl.MissingForwardFill); !errors.Is(err, ErrUnknownVehicle) {
		t.Errorf("unknown vehicle error = %v, want ErrUnknownVehicle", err)
	}
	if _, _, err := store.Append(datasets[0].VehicleID, nil, etl.MissingForwardFill); err == nil {
		t.Error("empty batch accepted")
	}
	// A failing appender must leave memory untouched.
	boom := errors.New("log write failed")
	store.SetAppender(func(string, ...fstore.Day) error { return boom })
	id := datasets[0].VehicleID
	gen := store.Generation(id)
	day := fstore.Day{
		Date:     datasets[0].Date(datasets[0].Len()-1).AddDate(0, 0, 1),
		Hours:    2,
		Observed: true,
		Channels: singleDayChannels(datasets[0]),
	}
	if _, _, err := store.Append(id, []fstore.Day{day}, etl.MissingForwardFill); !errors.Is(err, boom) {
		t.Fatalf("Append error = %v, want %v", err, boom)
	}
	if d, _ := store.Get(id); d.Len() != datasets[0].Len() {
		t.Error("rejected Append mutated the store")
	}
	if store.Generation(id) != gen {
		t.Error("rejected Append bumped the generation")
	}
}

// singleDayChannels builds a one-day channel map matching the
// dataset's channel set.
func singleDayChannels(d *etl.VehicleDataset) map[string]float64 {
	out := make(map[string]float64, len(d.Channels))
	for name := range d.Channels {
		out[name] = 1
	}
	return out
}

// fullIndex returns [0, 1, …, Len-1], the identity Subset index.
func fullIndex(d *etl.VehicleDataset) []int {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return idx
}
