package server

// The streaming-ingest endpoint: POST /v1/vehicles/{id}/ingest closes
// the paper's CAN→forecast loop online. The on-board controller's
// 10-minute aggregated reports (canbus.Report) arrive in batches, are
// summarized into whole days exactly as the offline ETL does
// (etl.FromReports: hours from engine-on seconds, sample-weighted
// channel means), appended through the incremental write path
// (Store.Append: suffix-only Clean, append-log durability before
// visibility, per-vehicle generation bump) and become the tail the
// very next forecast trains on — via Plan.ExtendContext when the
// compiled features can be reused.

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"sort"
	"time"

	"vup/internal/canbus"
	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/fstore"
	"vup/internal/obs"
	"vup/internal/obs/trace"
)

// Ingest telemetry, on the process-wide registry next to the serving
// metrics: how much raw data flows in, how much of it is dropped and
// why, and how long a report takes to become visible to forecasts.
var (
	ingestAccepted = obs.Default.Counter(
		"ingest_reports_accepted_total",
		"Raw 10-minute reports folded into an appended day.")
	ingestRejected = obs.Default.Counter(
		"ingest_reports_rejected_total",
		"Raw reports dropped at ingest, by reason.",
		"reason")
	ingestDays = obs.Default.Counter(
		"ingest_days_appended_total",
		"Summarized days appended to vehicle series (gap days included).")
	ingestBackpressure = obs.Default.Counter(
		"ingest_backpressure_rejections_total",
		"Ingest batches refused with 503 because the concurrency gate was full.")
	ingestLag = obs.Default.Histogram(
		"ingest_to_visible_seconds",
		"Latency from batch receipt to the appended days being visible to forecasts.",
		obs.DurationBuckets)
	planExtended = obs.Default.Counter(
		"forecast_plan_extended_total",
		"Forecast builds that reused a compiled plan by extending it over appended days.")
	planRebuilt = obs.Default.Counter(
		"forecast_plan_rebuilt_total",
		"Forecast builds that compiled a plan from scratch.")
)

// defaultIngestConcurrency bounds concurrent ingest batches when the
// operator sets no explicit limit: each batch fsyncs, so a small gate
// keeps the disk queue short and sheds load early instead of queueing.
const defaultIngestConcurrency = 4

// maxIngestDays bounds the days one batch may append, counting the
// unobserved gap days materialized between the stored series and the
// newest report. A device that was offline for longer should re-enter
// through a full snapshot load, not the incremental log.
const maxIngestDays = 120

// ingestChannel mirrors canbus.ChannelStats on the wire.
type ingestChannel struct {
	Samples int     `json:"samples"`
	Mean    float64 `json:"mean"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
}

// ingestReport is one raw 10-minute report as uploaded by a device.
type ingestReport struct {
	Start           time.Time                `json:"start"`
	EngineOnSeconds float64                  `json:"engine_on_seconds"`
	Channels        map[string]ingestChannel `json:"channels"`
}

// ingestRequest is the POST body: a batch of reports for one vehicle.
type ingestRequest struct {
	Reports []ingestReport `json:"reports"`
}

// ingestResponse reports what happened to the batch. Rejected reports
// are counted by reason; the batch as a whole still succeeds as long
// as it is well-formed — a replayed device buffer legitimately
// overlaps days the server already holds.
type ingestResponse struct {
	Vehicle      string         `json:"vehicle"`
	Accepted     int            `json:"accepted"`
	Rejected     int            `json:"rejected"`
	Reasons      map[string]int `json:"rejected_reasons,omitempty"`
	DaysAppended int            `json:"days_appended"`
	Generation   uint64         `json:"generation"`
	TookMS       float64        `json:"took_ms"`
}

// ingestGate returns the concurrency semaphore, sized on first use
// (Handler runs before serving starts, so this is not racy).
func (a *API) ingestGate() chan struct{} {
	if a.ingestSem == nil {
		n := a.IngestConcurrency
		if n <= 0 {
			n = defaultIngestConcurrency
		}
		a.ingestSem = make(chan struct{}, n)
	}
	return a.ingestSem
}

func (a *API) handleIngest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.PathValue("id")
	d, _, _, release, err := a.store.Acquire(r.Context(), id)
	if err != nil {
		writeAcquireError(w, id, err)
		return
	}
	// Pin the dataset for the whole ingest: the summarize step below
	// reads its tail, and an eviction between summarize and Append
	// would force a redundant reload.
	defer release()

	// Backpressure: every admitted batch ends in an fsync, so refuse
	// early — with a hint — rather than queue unboundedly on the disk.
	sem := a.ingestGate()
	select {
	case sem <- struct{}{}:
		//lint:allow ctxwait releasing a slot we hold can never block: the send above guarantees the buffer is non-empty
		defer func() { <-sem }()
	default:
		ingestBackpressure.With().Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "ingest at capacity, retry later")
		return
	}

	ctx, sp := trace.Start(r.Context(), "ingest.decode")
	var req ingestRequest
	err = json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req)
	sp.SetError(err)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad ingest body: %v", err)
		return
	}
	if len(req.Reports) == 0 {
		writeError(w, http.StatusBadRequest, "ingest body has no reports")
		return
	}

	ctx, sp = trace.Start(ctx, "ingest.summarize")
	sp.SetAttrInt("reports", len(req.Reports))
	days, accepted, reasons := summarizeReports(d, req.Reports)
	sp.SetAttrInt("days", len(days))
	sp.End()

	rejected := 0
	for reason, n := range reasons {
		rejected += n
		ingestRejected.With(reason).Add(uint64(n))
	}
	ingestAccepted.With().Add(uint64(accepted))

	resp := ingestResponse{Vehicle: id, Accepted: accepted, Rejected: rejected, Reasons: reasons}
	if len(days) > maxIngestDays {
		writeError(w, http.StatusUnprocessableEntity,
			"batch spans %d days, limit %d: reload the vehicle from a snapshot instead", len(days), maxIngestDays)
		return
	}
	if len(days) > 0 {
		var appendCtx context.Context
		appendCtx, sp = trace.Start(ctx, "ingest.append")
		sp.SetAttrInt("days", len(days))
		_, gen, err := a.store.AppendContext(appendCtx, id, days, a.IngestPolicy)
		sp.SetError(err)
		sp.End()
		if err != nil {
			status := http.StatusUnprocessableEntity
			if errors.Is(err, ErrUnknownVehicle) {
				status = http.StatusNotFound
			}
			writeError(w, status, "append failed: %v", err)
			return
		}
		resp.DaysAppended = len(days)
		resp.Generation = gen
		ingestDays.With().Add(uint64(len(days)))
		// The appended days are now visible: a forecast issued from here
		// on trains on them (the generation bump invalidated stale
		// artifacts). This is the ingest-to-visible lag.
		ingestLag.With().ObserveSince(start)
	} else {
		resp.Generation = a.store.Generation(id)
	}
	resp.TookMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// summarizeReports folds raw reports into whole summarized days ready
// for Store.Append, mirroring the offline etl.FromReports aggregation:
// daily hours are summed engine-on time, channel values are
// sample-weighted means, channels outside the dataset's feature set
// are ignored. Only days strictly after the stored series qualify —
// reports for days the server already holds are rejected as "stale"
// (history is immutable; see Plan.ExtendContext). The returned slice
// is contiguous from the day after the stored series to the newest
// reported day: days without any report are emitted unobserved, so the
// date grid stays implicit (dense) and Clean repairs them with the
// configured policy.
func summarizeReports(d *etl.VehicleDataset, reports []ingestReport) (days []fstore.Day, accepted int, reasons map[string]int) {
	reasons = make(map[string]int)
	reject := func(reason string) { reasons[reason]++ }
	last := d.Date(d.Len() - 1)

	type acc struct {
		hours    float64
		observed bool
		sums     map[string]float64
		weights  map[string]float64
	}
	byDate := make(map[time.Time]*acc)
	var maxDate time.Time
	for _, r := range reports {
		if r.Start.IsZero() {
			reject("missing_start")
			continue
		}
		if r.EngineOnSeconds < 0 || r.EngineOnSeconds > canbus.ReportInterval.Seconds() ||
			math.IsNaN(r.EngineOnSeconds) || math.IsInf(r.EngineOnSeconds, 0) {
			reject("invalid_engine_on")
			continue
		}
		date := r.Start.UTC().Truncate(24 * time.Hour)
		if !date.After(last) {
			reject("stale")
			continue
		}
		a, ok := byDate[date]
		if !ok {
			a = &acc{sums: make(map[string]float64), weights: make(map[string]float64)}
			byDate[date] = a
		}
		a.observed = true
		a.hours += r.EngineOnSeconds / 3600
		for name, cs := range r.Channels {
			if _, ok := d.Channels[name]; !ok {
				continue // channel outside the study's feature set
			}
			if cs.Samples <= 0 || math.IsNaN(cs.Mean) || math.IsInf(cs.Mean, 0) {
				continue
			}
			a.sums[name] += cs.Mean * float64(cs.Samples)
			a.weights[name] += float64(cs.Samples)
		}
		accepted++
		if date.After(maxDate) {
			maxDate = date
		}
	}
	if len(byDate) == 0 {
		return nil, accepted, reasons
	}

	// Channel names once, sorted, for deterministic map construction.
	names := make([]string, 0, len(d.Channels))
	for name := range d.Channels {
		names = append(names, name)
	}
	sort.Strings(names)

	for date := last.AddDate(0, 0, 1); !date.After(maxDate); date = date.AddDate(0, 0, 1) {
		day := fstore.Day{Date: date, Channels: make(map[string]float64, len(names))}
		for _, name := range names {
			day.Channels[name] = 0
		}
		if a, ok := byDate[date]; ok {
			day.Observed = true
			day.Hours = a.hours
			for _, name := range names {
				if w := a.weights[name]; w > 0 {
					day.Channels[name] = a.sums[name] / w
				}
			}
		}
		days = append(days, day)
	}
	return days, accepted, reasons
}

// planSeed is the last compiled plan for one vehicle+config, kept so
// the next build after an append can extend it over the new tail
// (amortized O(features) per day) instead of rematerializing the whole
// lag superset.
type planSeed struct {
	fp   uint64
	plan *core.Plan
}

// maxPlanSeeds bounds the plan-seed map. Plans hold the materialized
// lag superset — on the order of the dataset itself — so on a
// larger-than-RAM lazy fleet the seed map must shed like the store
// does. Eviction is arbitrary-victim (Go map iteration order), which
// is cheap and good enough for a warm-tail optimization: a shed seed
// only costs one plan recompilation.
const maxPlanSeeds = 4096

// loadSeed fetches the plan seed for a key, if present.
func (a *API) loadSeed(key string) (*planSeed, bool) {
	a.seedsMu.Lock()
	defer a.seedsMu.Unlock()
	s, ok := a.seeds[key]
	return s, ok
}

// storeSeed records a plan seed, shedding an arbitrary entry when the
// map is full and the key is new.
func (a *API) storeSeed(key string, s *planSeed) {
	a.seedsMu.Lock()
	defer a.seedsMu.Unlock()
	if a.seeds == nil {
		a.seeds = make(map[string]*planSeed)
	}
	if _, exists := a.seeds[key]; !exists && len(a.seeds) >= maxPlanSeeds {
		for victim := range a.seeds {
			delete(a.seeds, victim)
			break
		}
	}
	a.seeds[key] = s
}

// planFor returns a Plan for the dataset: the seeded plan verbatim
// when the fingerprint still matches, an extension of it when only the
// tail grew (the streaming-ingest fast path), and a fresh compilation
// otherwise — ExtendContext refuses any rewrite of history, so a
// falsified extension can never serve stale rows.
func (a *API) planFor(ctx context.Context, d *etl.VehicleDataset, fp uint64, cfg core.Config) (*core.Plan, error) {
	key := d.VehicleID + "\x1f" + cfg.Fingerprint()
	if seed, ok := a.loadSeed(key); ok {
		if seed.fp == fp {
			return seed.plan, nil
		}
		if np, err := seed.plan.ExtendContext(ctx, d); err == nil {
			planExtended.With().Inc()
			a.storeSeed(key, &planSeed{fp: fp, plan: np})
			return np, nil
		}
	}
	p, err := core.NewPlanContext(ctx, d, cfg)
	if err != nil {
		return nil, err
	}
	planRebuilt.With().Inc()
	a.storeSeed(key, &planSeed{fp: fp, plan: p})
	return p, nil
}
