package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"vup/internal/obs"
)

// HTTP telemetry, registered on the process-wide registry so the
// binary's GET /metrics exposes it alongside the pipeline stage
// histograms. Routes are labeled with the mux pattern (not the raw
// URL) to keep cardinality bounded. The latency histogram carries
// exemplars: each bucket remembers the trace ID of its last traced
// request, so a latency spike on a dashboard links straight to a
// stored waterfall at /debug/traces/{id}.
var (
	httpRequests = obs.Default.Counter(
		"http_requests_total",
		"HTTP requests served, by route pattern and status class.",
		"route", "status")
	httpInFlight = obs.Default.Gauge(
		"http_requests_in_flight",
		"Requests currently being served.")
	httpDuration = obs.Default.HistogramWithExemplars(
		"http_request_duration_seconds",
		"Request latency by route pattern.",
		obs.DurationBuckets, "route")
	writeErrors = obs.Default.Counter(
		"server_write_errors_total",
		"Response bodies that failed to encode or write after the header was sent.")
)

// serverLog carries encode/write failures that can no longer reach the
// client; the HTTP status is already on the wire by then.
var serverLog = obs.DefaultLogger().With("component", "server")

// statusWriter records the status code a handler sent.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// statusClass folds a status code into its Prometheus-conventional
// class label ("2xx", "4xx", ...).
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// instrument wraps a handler with the per-route telemetry — request
// counter by status class, in-flight gauge, latency histogram — and,
// when the API has a trace collector, a root span per request. The
// trace ID is echoed in the X-Trace-Id response header and bound (with
// the vehicle, when the route has one) onto a request-scoped logger in
// the context, so the handler and the pipeline below it log and trace
// under one identity.
func (a *API) instrument(route string, h http.HandlerFunc) http.Handler {
	requests2xx := httpRequests.With(route, "2xx") // warm the hot child
	duration := httpDuration.With(route)
	inFlight := httpInFlight.With()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Inc()
		defer inFlight.Dec()

		ctx, sp := a.Traces.StartTrace(r.Context(), r.Method+" "+route)
		traceID := sp.TraceID()
		if sp != nil {
			w.Header().Set("X-Trace-Id", traceID)
			logger := obs.DefaultLogger().With("trace_id", traceID)
			if id := r.PathValue("id"); id != "" {
				sp.SetAttr("vehicle", id)
				logger = logger.With("vehicle", id)
			}
			ctx = obs.IntoContext(ctx, logger)
			r = r.WithContext(ctx)
		}

		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		status := sw.status
		if status == 0 {
			// Handler wrote nothing; net/http sends 200 on return.
			status = http.StatusOK
		}
		if class := statusClass(status); class == "2xx" {
			requests2xx.Inc()
		} else {
			httpRequests.With(route, class).Inc()
		}
		duration.ObserveExemplar(time.Since(start).Seconds(), traceID)
		if sp != nil {
			sp.SetAttrInt("status", status)
			if status >= 500 {
				sp.SetError(fmt.Errorf("status %d", status))
			}
			sp.End()
		}
	})
}
