package server

import (
	"net/http"
	"strconv"
	"time"

	"vup/internal/obs"
)

// HTTP telemetry, registered on the process-wide registry so the
// binary's GET /metrics exposes it alongside the pipeline stage
// histograms. Routes are labeled with the mux pattern (not the raw
// URL) to keep cardinality bounded.
var (
	httpRequests = obs.Default.Counter(
		"http_requests_total",
		"HTTP requests served, by route pattern and status class.",
		"route", "status")
	httpInFlight = obs.Default.Gauge(
		"http_requests_in_flight",
		"Requests currently being served.")
	httpDuration = obs.Default.Histogram(
		"http_request_duration_seconds",
		"Request latency by route pattern.",
		obs.DurationBuckets, "route")
	writeErrors = obs.Default.Counter(
		"server_write_errors_total",
		"Response bodies that failed to encode or write after the header was sent.")
)

// serverLog carries encode/write failures that can no longer reach the
// client; the HTTP status is already on the wire by then.
var serverLog = obs.DefaultLogger().With("component", "server")

// statusWriter records the status code a handler sent.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// statusClass folds a status code into its Prometheus-conventional
// class label ("2xx", "4xx", ...).
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// instrument wraps a handler with the per-route telemetry: request
// counter by status class, in-flight gauge and latency histogram.
func instrument(route string, h http.HandlerFunc) http.Handler {
	requests2xx := httpRequests.With(route, "2xx") // warm the hot child
	duration := httpDuration.With(route)
	inFlight := httpInFlight.With()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Inc()
		defer inFlight.Dec()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		status := sw.status
		if status == 0 {
			// Handler wrote nothing; net/http sends 200 on return.
			status = http.StatusOK
		}
		if class := statusClass(status); class == "2xx" {
			requests2xx.Inc()
		} else {
			httpRequests.With(route, class).Inc()
		}
		duration.ObserveSince(start)
	})
}
