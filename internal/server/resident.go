package server

// Bounded-memory residency: in lazy mode the Store holds a managed
// subset of the fleet in RAM instead of a map populated at boot.
// Datasets fault in on first use through a loader (single-flighted on
// the per-vehicle writer lock), a resident-bytes accountant drives LRU
// eviction of cold datasets under a budget, and in-flight requests pin
// their dataset so eviction never drops a vehicle mid-fit. Datasets
// are immutable while stored, so even a reference that outlives its
// residency stays valid — pins exist to keep the working set stable,
// not to patch memory safety.

import (
	"context"
	"fmt"
	"sync"

	"vup/internal/etl"
	"vup/internal/obs"
	"vup/internal/obs/trace"
)

// Residency telemetry. The gauges track the managed working set; the
// counter measures eviction churn (high churn with a low hit rate
// means the budget is too small for the traffic's working set).
var (
	residentVehicles = obs.Default.Gauge(
		"fstore_resident_vehicles",
		"Vehicle datasets currently resident in the serving store.")
	residentBytesGauge = obs.Default.Gauge(
		"fstore_resident_bytes",
		"Estimated heap bytes of resident vehicle datasets.")
	evictionsTotal = obs.Default.Counter(
		"fstore_evictions_total",
		"Cold datasets evicted from the serving store under the resident budget.")
)

// resident is one vehicle's managed in-memory state.
type resident struct {
	ds   *etl.VehicleDataset
	fp   uint64 // dataset fingerprint, computed once at insert
	size int64  // etl.SizeBytes at insert, the accounting unit
	pins int    // in-flight requests holding the dataset; >0 blocks eviction
	el   *lruElem
}

// lruElem is a node of the store's intrusive recency list (front =
// most recently used). A hand-rolled doubly linked list keeps the
// element embedded in the resident, so touch/evict are pointer moves
// with no container/list type assertions on the hot path.
type lruElem struct {
	id         string
	prev, next *lruElem
}

// lruList is the recency order of resident vehicles.
type lruList struct {
	front, back *lruElem
}

func (l *lruList) pushFront(e *lruElem) {
	e.prev, e.next = nil, l.front
	if l.front != nil {
		l.front.prev = e
	}
	l.front = e
	if l.back == nil {
		l.back = e
	}
}

func (l *lruList) remove(e *lruElem) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.back = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *lruList) moveToFront(e *lruElem) {
	if l.front == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

// NewLazyStore builds a store that boots from a fleet roster alone:
// ids is the full vehicle list (the fstore manifest), loader faults
// one vehicle's dataset in on first use (fstore.Dir.LoadVehicle), and
// budget bounds the estimated resident bytes — 0 or negative means
// unbounded residency (lazy load without eviction). No dataset is
// decoded here; boot cost is O(roster), not O(fleet data).
func NewLazyStore(ids []string, loader func(id string) (*etl.VehicleDataset, error), budget int64) (*Store, error) {
	if loader == nil {
		return nil, fmt.Errorf("server: lazy store needs a loader")
	}
	s := &Store{
		res:    make(map[string]*resident),
		gens:   make(map[string]uint64),
		known:  make(map[string]bool, len(ids)),
		dirty:  make(map[string]bool),
		loader: loader,
		lru:    &lruList{},
		budget: budget,
	}
	for _, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("server: lazy store roster has an empty vehicle id")
		}
		if s.known[id] {
			return nil, fmt.Errorf("server: lazy store roster lists %q twice", id)
		}
		s.known[id] = true
	}
	return s, nil
}

// Lazy reports whether the store faults datasets in through a loader.
func (s *Store) Lazy() bool { return s.loader != nil }

// Acquire returns one vehicle's dataset pinned against eviction,
// together with its fingerprint and generation (read consistently for
// cache keying) and a release func the caller must invoke when done
// (idempotent). In lazy mode a non-resident vehicle is loaded on miss
// under its per-vehicle writer lock — concurrent requests for the same
// cold vehicle trigger exactly one load. Unknown vehicles fail with
// ErrUnknownVehicle; a loader failure (e.g. a corrupt snapshot) fails
// only this vehicle's acquisition, never the store.
func (s *Store) Acquire(ctx context.Context, id string) (d *etl.VehicleDataset, fp, gen uint64, release func(), err error) {
	if s.loader == nil {
		// Eager store: nothing evicts, so reads stay on the shared
		// lock with a no-op release.
		s.mu.RLock()
		r, ok := s.res[id]
		if !ok {
			s.mu.RUnlock()
			return nil, 0, 0, nil, fmt.Errorf("server: %w: %q", ErrUnknownVehicle, id)
		}
		d, fp, gen = r.ds, r.fp, s.gens[id]
		s.mu.RUnlock()
		return d, fp, gen, func() {}, nil
	}

	s.mu.Lock()
	if r, ok := s.res[id]; ok {
		r.pins++
		s.lru.moveToFront(r.el)
		d, fp, gen = r.ds, r.fp, s.gens[id]
		s.mu.Unlock()
		return d, fp, gen, s.releaseFunc(id), nil
	}
	known := s.known[id]
	s.mu.Unlock()
	if !known {
		return nil, 0, 0, nil, fmt.Errorf("server: %w: %q", ErrUnknownVehicle, id)
	}

	// Single-flight the fault on the vehicle's writer lock: the first
	// requester loads, the rest block here and find it resident.
	s.lockVehicle(id)
	defer s.unlockVehicle(id)
	r, err := s.faultLocked(ctx, id)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	s.mu.Lock()
	d, fp, gen = r.ds, r.fp, s.gens[id]
	s.mu.Unlock()
	return d, fp, gen, s.releaseFunc(id), nil
}

// faultLocked makes id resident through the loader and returns its
// resident entry with one pin already held (so a racing eviction pass
// cannot drop it before the caller uses it). The caller must hold the
// vehicle's writer lock; that is what single-flights concurrent faults
// of the same vehicle.
func (s *Store) faultLocked(ctx context.Context, id string) (*resident, error) {
	// Re-check residency: a racing Acquire (or Append) may have
	// faulted the vehicle in while this caller waited for the lock.
	s.mu.Lock()
	if r, ok := s.res[id]; ok {
		r.pins++
		s.lru.moveToFront(r.el)
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	_, sp := trace.Start(ctx, "store.load")
	sp.SetAttr("vehicle", id)
	d, err := s.loader(id)
	if err == nil {
		err = d.Validate()
	}
	if err == nil && d.VehicleID != id {
		err = fmt.Errorf("loader returned dataset %q", d.VehicleID)
	}
	sp.SetError(err)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("server: load %q: %w", id, err)
	}

	s.mu.Lock()
	r := s.insertLocked(d)
	r.pins++
	s.evictLocked(ctx)
	s.mu.Unlock()
	return r, nil
}

// releaseFunc builds the idempotent unpin closure Acquire hands out.
// A release also runs an eviction pass when the store sits over
// budget: pinned entries are what keeps evictLocked from reclaiming,
// so the moment a pin drains is the moment reclaim can proceed —
// without this the store would stay over budget until the next fault.
func (s *Store) releaseFunc(id string) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			if r, ok := s.res[id]; ok && r.pins > 0 {
				r.pins--
			}
			if s.budget > 0 && s.residentBytes > s.budget {
				s.evictLocked(context.Background())
			}
			s.mu.Unlock()
		})
	}
}

// insertLocked makes d the resident state of its vehicle, reusing the
// existing entry (and its pins) on an in-place update — which is how
// Append and Put swap a new dataset in without invalidating the pins
// in-flight readers hold on the vehicle. Caller holds s.mu.
func (s *Store) insertLocked(d *etl.VehicleDataset) *resident {
	size := d.SizeBytes()
	r, ok := s.res[d.VehicleID]
	if ok {
		s.residentBytes += size - r.size
		r.ds, r.fp, r.size = d, d.Fingerprint(), size
		if r.el != nil {
			s.lru.moveToFront(r.el)
		}
	} else {
		r = &resident{ds: d, fp: d.Fingerprint(), size: size}
		if s.lru != nil {
			r.el = &lruElem{id: d.VehicleID}
			s.lru.pushFront(r.el)
		}
		s.res[d.VehicleID] = r
		s.residentBytes += size
	}
	if s.known == nil {
		s.known = make(map[string]bool)
	}
	s.known[d.VehicleID] = true
	s.updateGaugesLocked()
	return r
}

// evictLocked drops cold residents from the LRU tail until the
// accountant is back under budget. Pinned vehicles are skipped — if
// everything left is pinned the store runs over budget until pins
// drain, which is the documented trade against yanking a dataset out
// from under an in-flight fit. No-op on eager stores and with no
// budget. Caller holds s.mu.
func (s *Store) evictLocked(ctx context.Context) {
	if s.lru == nil || s.budget <= 0 {
		return
	}
	for s.residentBytes > s.budget {
		el := s.lru.back
		for el != nil && s.res[el.id].pins > 0 {
			el = el.prev
		}
		if el == nil {
			return
		}
		r := s.res[el.id]
		_, sp := trace.Start(ctx, "store.evict")
		sp.SetAttr("vehicle", el.id)
		sp.SetAttrInt("bytes", int(r.size))
		sp.End()
		s.lru.remove(el)
		delete(s.res, el.id)
		// An evicted vehicle's appended days live durably in the
		// append log; dropping the dirty mark is safe (reload replays).
		delete(s.dirty, el.id)
		s.residentBytes -= r.size
		evictionsTotal.With().Inc()
		s.updateGaugesLocked()
	}
}

func (s *Store) updateGaugesLocked() {
	residentVehicles.With().Set(float64(len(s.res)))
	residentBytesGauge.With().Set(float64(s.residentBytes))
}

// ResidentStats reports the managed working set: resident vehicle
// count and their estimated bytes.
func (s *Store) ResidentStats() (vehicles int, bytes int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.res), s.residentBytes
}

// DirtyResidents returns the resident datasets whose appended days
// have not yet been folded into their on-disk snapshot — the only
// vehicles a graceful shutdown needs to re-snapshot. Non-resident
// dirty state is already durable in the append log.
func (s *Store) DirtyResidents() []*etl.VehicleDataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*etl.VehicleDataset, 0, len(s.dirty))
	for id := range s.dirty {
		if r, ok := s.res[id]; ok {
			out = append(out, r.ds)
		}
	}
	return out
}

// SetCompactor installs the append-log compaction hook, called after
// every successful Append under that vehicle's writer lock with the
// grown dataset (fstore.Dir.MaybeCompact curried with the threshold).
// It reports whether it compacted. Compaction failures are logged, not
// fatal: the append itself is already durable in the log.
func (s *Store) SetCompactor(fn func(*etl.VehicleDataset) (bool, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compact = fn
}
