package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"vup/internal/canbus"
	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/randx"
	"vup/internal/regress"
)

// benchAPI builds an API over a small default-shaped fleet without a
// testing.T (bench variant of testAPI).
func benchAPI(b *testing.B) *API {
	b.Helper()
	f, err := fleet.Generate(fleet.Config{Units: 3, Days: 400, Seed: 1, Start: fleet.StudyStart})
	if err != nil {
		b.Fatal(err)
	}
	usage := f.SimulateAll()
	rng := randx.New(2)
	var datasets []*etl.VehicleDataset
	for _, u := range f.Units {
		d, err := etl.FromUsage(u, usage[u.Vehicle.ID], rng.Split())
		if err != nil {
			b.Fatal(err)
		}
		datasets = append(datasets, d)
	}
	base := core.DefaultConfig()
	base.Algorithm = regress.AlgLasso
	base.W = 120
	base.K = 12
	base.MaxLag = 28
	base.Stride = 5
	base.Channels = []string{canbus.ChanFuelRate, canbus.ChanEngineSpeed}
	store, err := NewStore(datasets)
	if err != nil {
		b.Fatal(err)
	}
	return New(store, base)
}

// BenchmarkForecastColdVsWarm measures the tentpole win: a cold
// forecast trains feature selection and the model per request, a warm
// one answers from the trained-artifact cache. The committed baseline
// lives in BENCH_cache.json; warm must be >= 10x faster than cold.
func BenchmarkForecastColdVsWarm(b *testing.B) {
	const path = "/v1/vehicles/veh-0000/forecast"
	run := func(b *testing.B, api *API) {
		h := api.Handler()
		req := httptest.NewRequest(http.MethodGet, path, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		api := benchAPI(b)
		api.Cache = NewForecastCache(0) // bypass: every request trains
		run(b, api)
	})
	b.Run("warm", func(b *testing.B) {
		api := benchAPI(b)
		api.Cache = NewForecastCache(64)
		// Train once outside the timed loop.
		rec := httptest.NewRecorder()
		api.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("warm-up status %d", rec.Code)
		}
		run(b, api)
	})
}
