package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/regress"
)

func TestCacheHitMissEviction(t *testing.T) {
	c := NewForecastCache(2)
	builds := 0
	build := func(v string) func() (any, error) {
		return func() (any, error) { builds++; return v, nil }
	}

	v, cached, err := c.Do("a", 0, build("A"))
	if err != nil || cached || v != "A" {
		t.Fatalf("first lookup = %v cached=%v err=%v", v, cached, err)
	}
	v, cached, _ = c.Do("a", 0, build("A2"))
	if !cached || v != "A" {
		t.Fatalf("second lookup = %v cached=%v, want cached A", v, cached)
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}

	// Fill to capacity, then insert a third key: "a" was refreshed by
	// the hit above, so "b" is the LRU victim.
	c.Do("b", 0, build("B"))
	c.Do("a", 0, build("A3"))
	c.Do("c", 0, build("C"))
	if _, cached, _ := c.Do("a", 0, build("A4")); !cached {
		t.Error("recently used entry evicted")
	}
	if _, cached, _ := c.Do("b", 0, build("B2")); cached {
		t.Error("LRU victim still cached")
	}

	st := c.Stats()
	if st.Evictions == 0 {
		t.Errorf("stats = %+v, expected evictions", st)
	}
	if c.Len() > 2 {
		t.Errorf("len = %d, over capacity", c.Len())
	}
}

func TestCacheGenerationInvalidation(t *testing.T) {
	c := NewForecastCache(4)
	builds := 0
	build := func() (any, error) { builds++; return builds, nil }

	c.Do("k", 1, build)
	if _, cached, _ := c.Do("k", 1, build); !cached {
		t.Fatal("same-generation lookup missed")
	}
	// The store moved on: the artifact is stale regardless of key.
	v, cached, _ := c.Do("k", 2, build)
	if cached {
		t.Fatal("stale-generation artifact served")
	}
	if v != 2 || builds != 2 {
		t.Fatalf("rebuild = %v (builds %d), want fresh build", v, builds)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("stats = %+v, want exactly one staleness eviction", st)
	}
}

func TestCacheErrorsNotStored(t *testing.T) {
	c := NewForecastCache(4)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", 0, func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("error result cached")
	}
	v, cached, err := c.Do("k", 0, func() (any, error) { return "ok", nil })
	if err != nil || cached || v != "ok" {
		t.Fatalf("retry after error = %v cached=%v err=%v", v, cached, err)
	}
}

func TestCacheDisabledBypass(t *testing.T) {
	for _, c := range []*ForecastCache{nil, NewForecastCache(0)} {
		builds := 0
		for i := 0; i < 3; i++ {
			if _, cached, _ := c.Do("k", 0, func() (any, error) { builds++; return builds, nil }); cached {
				t.Fatal("disabled cache reported a hit")
			}
		}
		if builds != 3 {
			t.Fatalf("builds = %d, want one per lookup", builds)
		}
		if c.Enabled() {
			t.Fatal("disabled cache reports enabled")
		}
	}
}

// TestCacheCoalescing proves the singleflight contract at the cache
// level: N concurrent identical lookups run the build exactly once and
// all share its result. Run under -race in CI.
func TestCacheCoalescing(t *testing.T) {
	c := NewForecastCache(4)
	const n = 16
	var builds atomic.Int64
	started := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-started
			v, _, err := c.Do("k", 0, func() (any, error) {
				builds.Add(1)
				time.Sleep(50 * time.Millisecond) // hold the flight open
				return "shared", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(started)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Errorf("builds = %d, want 1", got)
	}
	for i, v := range results {
		if v != "shared" {
			t.Errorf("goroutine %d got %v", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced+st.Hits != n-1 {
		t.Errorf("stats = %+v, want 1 miss and %d shared", st, n-1)
	}
}

// TestCacheStaleGenerationNotCoalesced is the regression test for the
// stale-coalescing bug: a lookup that observed generation 2 (after a
// Put) used to share a build started against generation 1 and return
// its stale result marked cached. It must start its own build — and
// the late gen-1 artifact must not clobber the fresher one.
func TestCacheStaleGenerationNotCoalesced(t *testing.T) {
	c := NewForecastCache(4)
	inBuild := make(chan struct{})
	release := make(chan struct{})
	oldDone := make(chan any, 1)
	go func() {
		v, _, err := c.Do("k", 1, func() (any, error) {
			close(inBuild)
			<-release
			return "old", nil
		})
		if err != nil {
			t.Error(err)
		}
		oldDone <- v
	}()
	<-inBuild // gen-1 flight is open; the store has since moved to gen 2

	freshDone := make(chan any, 1)
	go func() {
		v, cached, err := c.Do("k", 2, func() (any, error) { return "new", nil })
		if err != nil {
			t.Error(err)
		}
		if cached {
			t.Error("gen-2 lookup coalesced onto the stale gen-1 flight")
		}
		freshDone <- v
	}()
	select {
	case v := <-freshDone:
		if v != "new" {
			t.Fatalf("gen-2 lookup returned %v, want its own build", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gen-2 lookup blocked behind the stale gen-1 flight")
	}

	close(release)
	if v := <-oldDone; v != "old" {
		t.Fatalf("gen-1 builder returned %v", v)
	}
	// The gen-1 build finished last; the cache must still serve gen 2.
	v, cached, _ := c.Do("k", 2, func() (any, error) { return "rebuilt", nil })
	if !cached || v != "new" {
		t.Errorf("cache serves %v (cached=%v), want the gen-2 artifact as a hit", v, cached)
	}
}

// TestCacheCanceledWaiterReturns is the regression test for the
// ignored-cancellation bug: a coalesced waiter used to block on the
// flight with no ctx select, piling canceled requests behind a slow
// fit. It must return ctx.Err() immediately and leave the flight
// running for the others.
func TestCacheCanceledWaiterReturns(t *testing.T) {
	c := NewForecastCache(4)
	inBuild := make(chan struct{})
	release := make(chan struct{})
	builderDone := make(chan struct{})
	go func() {
		defer close(builderDone)
		if _, _, err := c.Do("k", 0, func() (any, error) {
			close(inBuild)
			<-release
			return "v", nil
		}); err != nil {
			t.Error(err)
		}
	}()
	<-inBuild

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	waiterDone := make(chan error, 1)
	go func() {
		v, cached, err := c.DoContext(ctx, "k", 0, func(context.Context) (any, error) {
			t.Error("canceled waiter ran its own build")
			return nil, nil
		})
		if v != nil || cached {
			t.Errorf("canceled waiter returned v=%v cached=%v", v, cached)
		}
		waiterDone <- err
	}()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter still blocked on the in-flight build")
	}

	// The flight was not disturbed: it completes and its artifact lands.
	close(release)
	<-builderDone
	v, cached, _ := c.Do("k", 0, func() (any, error) { return "fresh", nil })
	if !cached || v != "v" {
		t.Errorf("flight result lost after a waiter canceled: got %v cached=%v", v, cached)
	}
}

// cachedAPI builds a test API whose Base counts model constructions:
// every training run (core.Forecast, or one evaluation window) builds
// exactly one model, so the counter tracks fits.
func cachedAPI(t *testing.T, capacity int) (*API, string, *atomic.Int64) {
	t.Helper()
	api, srv := testAPI(t)
	api.Cache = NewForecastCache(capacity)
	fits := new(atomic.Int64)
	api.Base.ModelFactory = func() (regress.Regressor, error) {
		fits.Add(1)
		return regress.New(api.Base.Algorithm)
	}
	return api, srv.URL, fits
}

// TestForecastEndpointCoalescing is the acceptance check: N concurrent
// identical forecast requests perform exactly one model fit.
func TestForecastEndpointCoalescing(t *testing.T) {
	_, srv, fits := cachedAPI(t, 8)
	const n = 8
	var wg sync.WaitGroup
	hours := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var body map[string]any
			get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body)
			hours[i] = body["hours"].(float64)
		}(i)
	}
	wg.Wait()
	if got := fits.Load(); got != 1 {
		t.Errorf("fits = %d, want 1 for %d concurrent identical requests", got, n)
	}
	for i := 1; i < n; i++ {
		if hours[i] != hours[0] {
			t.Errorf("request %d got %v hours, request 0 got %v", i, hours[i], hours[0])
		}
	}
	// A follow-up request is a plain cache hit, still no new fit.
	var body map[string]any
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body)
	if fits.Load() != 1 {
		t.Errorf("fits after warm request = %d", fits.Load())
	}
	if body["cached"] != true {
		t.Error("warm response not marked cached")
	}
}

func TestForecastCacheKeying(t *testing.T) {
	_, srv, fits := cachedAPI(t, 8)
	var body map[string]any
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body)
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body)
	if fits.Load() != 1 {
		t.Fatalf("fits = %d after identical requests", fits.Load())
	}
	// A different config trains anew...
	get(t, srv+"/v1/vehicles/veh-0000/forecast?w=60", http.StatusOK, &body)
	if fits.Load() != 2 {
		t.Errorf("fits = %d after config change", fits.Load())
	}
	// ...and so does a different vehicle.
	get(t, srv+"/v1/vehicles/veh-0001/forecast", http.StatusOK, &body)
	if fits.Load() != 3 {
		t.Errorf("fits = %d after vehicle change", fits.Load())
	}
}

// TestForecastCacheInvalidationOnPut proves generation-based
// invalidation end to end: replacing a vehicle's dataset makes the
// next identical request retrain.
func TestForecastCacheInvalidationOnPut(t *testing.T) {
	api, srv, fits := cachedAPI(t, 8)
	var body map[string]any
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body)
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body)
	if fits.Load() != 1 {
		t.Fatalf("fits = %d before store change", fits.Load())
	}

	d, ok := api.store.Get("veh-0000")
	if !ok {
		t.Fatal("veh-0000 missing")
	}
	// Perturb the series: the replacement dataset must retrain.
	mod := *d
	mod.Hours = append([]float64(nil), d.Hours...)
	mod.Hours[len(mod.Hours)-1] += 1
	if err := api.store.Put(&mod); err != nil {
		t.Fatal(err)
	}
	if api.store.Generation("veh-0000") != 1 {
		t.Fatalf("generation = %d after Put", api.store.Generation("veh-0000"))
	}
	// Fresh map: decoding into a reused map merges keys, and the
	// omitempty cached field would leave a stale true behind.
	var cold map[string]any
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &cold)
	if fits.Load() != 2 {
		t.Errorf("fits = %d after dataset replacement, want retrain", fits.Load())
	}
	if cold["cached"] == true {
		t.Error("post-invalidation response claims cached")
	}
}

func TestForecastCacheSizeZeroBypass(t *testing.T) {
	_, srv, fits := cachedAPI(t, 0)
	var body map[string]any
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body)
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body)
	if fits.Load() != 2 {
		t.Errorf("fits = %d with -cache-size 0, want one per request", fits.Load())
	}
	if body["cached"] == true {
		t.Error("bypass response claims cached")
	}
}

func TestEvaluationEndpointCached(t *testing.T) {
	_, srv, fits := cachedAPI(t, 8)
	var body map[string]any
	get(t, srv+"/v1/vehicles/veh-0000/evaluation", http.StatusOK, &body)
	cold := fits.Load()
	if cold == 0 {
		t.Fatal("evaluation performed no fits")
	}
	get(t, srv+"/v1/vehicles/veh-0000/evaluation", http.StatusOK, &body)
	if fits.Load() != cold {
		t.Errorf("fits = %d after warm evaluation, want %d", fits.Load(), cold)
	}
	if body["cached"] != true {
		t.Error("warm evaluation not marked cached")
	}
}

// TestCacheMetricsExposed checks the acceptance criterion that
// forecast_cache_hits_total is visible on /metrics after a hit.
func TestCacheMetricsExposed(t *testing.T) {
	_, srv, _ := cachedAPI(t, 8)
	var body map[string]any
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body)
	get(t, srv+"/v1/vehicles/veh-0000/forecast", http.StatusOK, &body)

	resp, err := http.Get(srv + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"forecast_cache_hits_total",
		"forecast_cache_misses_total",
		"forecast_cache_evictions_total",
		"forecast_cache_entries",
		"forecast_coalesced_waiters_total",
	} {
		if !strings.Contains(string(text), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
}

func TestCacheKeyComposition(t *testing.T) {
	cfgA := core.DefaultConfig()
	cfgB := core.DefaultConfig()
	cfgB.W = cfgA.W + 1
	if cacheKey("point", "v", 1, cfgA) == cacheKey("point", "v", 1, cfgB) {
		t.Error("config change did not change the key")
	}
	if cacheKey("point", "v", 1, cfgA) == cacheKey("point", "v", 2, cfgA) {
		t.Error("dataset fingerprint change did not change the key")
	}
	if cacheKey("point", "v", 1, cfgA) == cacheKey("eval", "v", 1, cfgA) {
		t.Error("artifact kind did not change the key")
	}
	if cacheKey("point", "v1", 1, cfgA) == cacheKey("point", "v2", 1, cfgA) {
		t.Error("vehicle did not change the key")
	}
}

// TestDatasetFingerprint pins the fingerprint contract the cache key
// relies on: value-sensitive, identity-sensitive, deterministic.
func TestDatasetFingerprint(t *testing.T) {
	mk := func() *etl.VehicleDataset {
		d := &etl.VehicleDataset{
			VehicleID: "v",
			Country:   "IT",
			Hours:     []float64{1, 2, 3},
			Channels:  map[string][]float64{"fuel_rate": {4, 5, 6}},
			Observed:  []bool{true, true, false},
		}
		d.Enrich()
		return d
	}
	a, b := mk(), mk()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical datasets fingerprint differently")
	}
	b.Hours[0] = 9
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("hours change invisible to fingerprint")
	}
	c := mk()
	c.Channels["fuel_rate"][2] = 7
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("channel change invisible to fingerprint")
	}
	e := mk()
	e.VehicleID = "w"
	if a.Fingerprint() == e.Fingerprint() {
		t.Error("vehicle identity invisible to fingerprint")
	}
}
