package server

import (
	"container/list"
	"context"
	"fmt"
	"strconv"
	"sync"

	"vup/internal/core"
	"vup/internal/obs"
	"vup/internal/obs/trace"
)

// Forecast-cache telemetry, on the process-wide registry so the
// binary's GET /metrics exposes the serving-side counterpart of the
// pipeline stage histograms: how often a request was answered from a
// trained artifact instead of retraining.
var (
	cacheHits = obs.Default.Counter(
		"forecast_cache_hits_total",
		"Forecast requests answered from a cached trained artifact.")
	cacheMisses = obs.Default.Counter(
		"forecast_cache_misses_total",
		"Forecast requests that had to train the pipeline.")
	cacheEvictions = obs.Default.Counter(
		"forecast_cache_evictions_total",
		"Cached artifacts dropped for capacity or store-generation staleness.")
	cacheEntriesGauge = obs.Default.Gauge(
		"forecast_cache_entries",
		"Trained artifacts currently cached.")
	cacheCoalesced = obs.Default.Counter(
		"forecast_coalesced_waiters_total",
		"Requests that waited on an identical in-flight training run instead of starting their own.")
)

// CacheStats is a point-in-time reading of one cache's counters.
type CacheStats struct {
	// Hits counts lookups answered from a stored artifact.
	Hits uint64
	// Misses counts lookups that ran the build function.
	Misses uint64
	// Evictions counts entries dropped, for capacity or staleness.
	Evictions uint64
	// Coalesced counts lookups that shared an in-flight build.
	Coalesced uint64
}

// ForecastCache is a bounded LRU cache of trained forecast artifacts
// with request coalescing: concurrent lookups of the same key share a
// single build instead of training in parallel. Keys combine vehicle
// ID, dataset fingerprint and config fingerprint (see cacheKey);
// entries additionally record the store generation they were built
// against and are invalidated when it moves. A nil cache, or one with
// capacity zero, is a transparent bypass — every lookup builds.
type ForecastCache struct {
	capacity int

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element
	inflight map[string]*flight
	stats    CacheStats
}

// cacheEntry is one stored artifact.
type cacheEntry struct {
	key string
	gen uint64
	val any
}

// flight is one in-progress build; waiters block on done and then
// share val/err. gen records the store generation the build observed:
// a lookup at a newer generation must not coalesce onto it, or it
// would return data from a store state that no longer exists marked
// as cached.
type flight struct {
	done chan struct{}
	gen  uint64
	val  any
	err  error
}

// NewForecastCache returns a cache holding at most capacity trained
// artifacts. capacity <= 0 disables caching and coalescing entirely
// (the -cache-size 0 escape hatch).
func NewForecastCache(capacity int) *ForecastCache {
	if capacity <= 0 {
		return &ForecastCache{}
	}
	return &ForecastCache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element, capacity),
		inflight: make(map[string]*flight),
	}
}

// Enabled reports whether the cache stores anything.
func (c *ForecastCache) Enabled() bool { return c != nil && c.capacity > 0 }

// Len returns the number of cached artifacts.
func (c *ForecastCache) Len() int {
	if !c.Enabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *ForecastCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Do returns the artifact for key, building it with build on a miss.
// gen is the vehicle's store generation the caller observed; an entry
// built against an older generation is evicted and rebuilt. Concurrent
// calls with the same key coalesce onto one build and share its result
// (errors included — errors are never stored) — but only when the
// in-flight build observed the same generation: after a Put, a request
// that saw the new store state starts its own build instead of sharing
// a stale one. The second return reports whether the artifact came
// from cache or a shared in-flight build rather than a fresh build.
func (c *ForecastCache) Do(key string, gen uint64, build func() (any, error)) (any, bool, error) {
	return c.DoContext(context.Background(), key, gen, func(context.Context) (any, error) { return build() })
}

// DoContext is Do under a request context: when the context carries an
// active trace span, the lookup is recorded as a "cache.lookup" child
// whose outcome attribute is hit, miss, coalesced or bypass, and the
// build runs under the span's context so training stages nest below
// it. A coalesced waiter honours ctx: on cancellation it returns
// ctx.Err() immediately, leaving the shared build running for the
// remaining waiters.
func (c *ForecastCache) DoContext(ctx context.Context, key string, gen uint64, build func(context.Context) (any, error)) (any, bool, error) {
	ctx, sp := trace.Start(ctx, "cache.lookup")
	if !c.Enabled() {
		sp.SetAttr("outcome", "bypass")
		v, err := build(ctx)
		sp.SetError(err)
		sp.End()
		return v, false, err
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.gen == gen {
			c.ll.MoveToFront(el)
			c.stats.Hits++
			cacheHits.With().Inc()
			v := e.val
			c.mu.Unlock()
			sp.SetAttr("outcome", "hit")
			sp.End()
			return v, true, nil
		}
		if e.gen < gen {
			// Trained against a store state that no longer exists.
			c.removeLocked(el)
		}
		// e.gen > gen: the caller raced a Put and observed an older
		// store state; build for it without evicting the fresher entry
		// (insertLocked refuses the stale insert afterwards).
	}
	if fl, ok := c.inflight[key]; ok && fl.gen == gen {
		c.stats.Coalesced++
		cacheCoalesced.With().Inc()
		c.mu.Unlock()
		sp.SetAttr("outcome", "coalesced")
		// The flight keeps running for its other waiters; a canceled
		// request just stops waiting for it.
		select {
		case <-fl.done:
			sp.SetError(fl.err)
			sp.End()
			return fl.val, true, fl.err
		case <-ctx.Done():
			err := ctx.Err()
			sp.SetError(err)
			sp.End()
			return nil, false, err
		}
	}
	fl := &flight{done: make(chan struct{}), gen: gen}
	// Replacing a same-key flight built against another generation is
	// deliberate: later arrivals at this generation coalesce here, and
	// the old flight's waiters keep their own pointer.
	c.inflight[key] = fl
	c.stats.Misses++
	cacheMisses.With().Inc()
	c.mu.Unlock()
	sp.SetAttr("outcome", "miss")

	finished := false
	defer func() {
		if finished {
			return
		}
		// build panicked: release the waiters with an error so they do
		// not block forever, then let the panic propagate.
		fl.err = fmt.Errorf("server: forecast build for %q panicked", key)
		close(fl.done)
		c.mu.Lock()
		if c.inflight[key] == fl {
			delete(c.inflight, key)
		}
		c.mu.Unlock()
		sp.SetError(fl.err)
		sp.End()
	}()
	fl.val, fl.err = build(ctx)
	finished = true
	close(fl.done)

	c.mu.Lock()
	if c.inflight[key] == fl {
		delete(c.inflight, key)
	}
	if fl.err == nil {
		c.insertLocked(key, gen, fl.val)
	}
	c.mu.Unlock()
	sp.SetError(fl.err)
	sp.End()
	return fl.val, false, fl.err
}

// insertLocked stores an artifact at the LRU front, evicting from the
// back while over capacity. Caller holds mu.
func (c *ForecastCache) insertLocked(key string, gen uint64, val any) {
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		if gen < e.gen {
			// A build that observed an older store state finished after
			// a fresher artifact landed; keep the fresh one.
			return
		}
		e.gen, e.val = gen, val
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, gen: gen, val: val})
	for c.ll.Len() > c.capacity {
		c.removeLocked(c.ll.Back())
	}
	cacheEntriesGauge.With().Set(float64(c.ll.Len()))
}

// removeLocked evicts one entry. Caller holds mu.
func (c *ForecastCache) removeLocked(el *list.Element) {
	c.ll.Remove(el)
	delete(c.byKey, el.Value.(*cacheEntry).key)
	c.stats.Evictions++
	cacheEvictions.With().Inc()
	cacheEntriesGauge.With().Set(float64(c.ll.Len()))
}

// cacheKey builds the cache key for one request: the artifact kind
// (point forecast, interval at a level, evaluation), the vehicle, the
// dataset fingerprint and the canonical config fingerprint. The unit
// separator cannot appear in any component.
func cacheKey(kind, vehicleID string, dataFP uint64, cfg core.Config) string {
	return kind + "\x1f" + vehicleID + "\x1f" + strconv.FormatUint(dataFP, 16) + "\x1f" + cfg.Fingerprint()
}
