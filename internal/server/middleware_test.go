package server

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"vup/internal/core"
	"vup/internal/obs"
)

// requestsDelta snapshots http_requests_total for one route/status
// pair; tests on the shared Default registry assert deltas.
func requestsSample(route, status string) uint64 {
	s, _ := obs.FindSample(obs.Default.Gather(), "http_requests_total",
		obs.Label{Name: "route", Value: route},
		obs.Label{Name: "status", Value: status})
	return uint64(s.Value)
}

// sampleLine matches one Prometheus text-format sample line, with an
// optional OpenMetrics exemplar suffix on histogram buckets.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(NaN|[+-]?Inf|[+-]?[0-9.eE+-]+)( # \{trace_id="[^"]*"\} (NaN|[+-]?Inf|[+-]?[0-9.eE+-]+))?$`)

func TestMetricsEndpoint(t *testing.T) {
	_, srv := testAPI(t)
	// Generate traffic in each status class first.
	for _, url := range []string{
		srv.URL + "/healthz",                                 // 200
		srv.URL + "/v1/vehicles/ZZZ",                         // 404
		srv.URL + "/v1/vehicles/veh-0000/forecast?alg=bogus", // 400
		srv.URL + "/v1/vehicles/veh-0000/forecast",           // 200, fits a model
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("content type %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Every line must be a comment or a parseable sample.
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}
	for _, want := range []string{
		`http_requests_total{route="/healthz",status="2xx"}`,
		`http_requests_total{route="/v1/vehicles/{id}",status="4xx"}`,
		`http_requests_total{route="/v1/vehicles/{id}/forecast",status="4xx"}`,
		`http_request_duration_seconds_bucket{route="/healthz",le="+Inf"}`,
		"http_requests_in_flight",
		"server_write_errors_total",
		"pipeline_fit_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestStatusClassLabels(t *testing.T) {
	_, srv := testAPI(t)
	cases := []struct {
		path   string
		status int
		route  string
		class  string
	}{
		{"/healthz", http.StatusOK, "/healthz", "2xx"},
		{"/v1/vehicles/veh-0000/forecast?alg=bogus", http.StatusBadRequest, "/v1/vehicles/{id}/forecast", "4xx"},
		{"/v1/vehicles/no-such-vehicle", http.StatusNotFound, "/v1/vehicles/{id}", "4xx"},
	}
	for _, tc := range cases {
		before := requestsSample(tc.route, tc.class)
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("GET %s: status %d, want %d", tc.path, resp.StatusCode, tc.status)
		}
		if got := requestsSample(tc.route, tc.class); got != before+1 {
			t.Errorf("GET %s: counter{route=%q,status=%q} went %d -> %d, want +1",
				tc.path, tc.route, tc.class, before, got)
		}
	}
}

func TestStatusClass(t *testing.T) {
	cases := map[int]string{200: "2xx", 204: "2xx", 301: "3xx", 404: "4xx", 500: "5xx", 42: "other"}
	for code, want := range cases {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}

// TestMiddlewareConcurrent hammers an instrumented route from many
// goroutines; with -race this also proves the registry hot path is
// data-race free end to end.
func TestMiddlewareConcurrent(t *testing.T) {
	_, srv := testAPI(t)
	const workers, per = 10, 10
	before := requestsSample("/healthz", "2xx")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp, err := http.Get(srv.URL + "/healthz")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if got := requestsSample("/healthz", "2xx"); got != before+workers*per {
		t.Errorf("counter went %d -> %d, want +%d", before, got, workers*per)
	}
	hist, ok := obs.FindSample(obs.Default.Gather(), "http_request_duration_seconds",
		obs.Label{Name: "route", Value: "/healthz"})
	if !ok || hist.Count < workers*per {
		t.Errorf("latency histogram count %d, want >= %d", hist.Count, workers*per)
	}
	if inflight, _ := obs.FindSample(obs.Default.Gather(), "http_requests_in_flight"); inflight.Value != 0 {
		t.Errorf("in-flight gauge stuck at %v after drain", inflight.Value)
	}
}

// BenchmarkMiddleware measures the pure instrumentation overhead per
// request: the wrapped handler is a no-op, so everything measured is
// the middleware (CI runs this as a smoke check that the cost stays in
// the nanosecond range).
func BenchmarkMiddleware(b *testing.B) {
	a := New(&Store{}, core.DefaultConfig())
	h := a.instrument("/bench", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	req := httptest.NewRequest("GET", "/bench", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
}
