package server

// Acceptance tests for the streaming-ingest loop: raw 10-minute
// reports POSTed to a running server must become forecast-visible
// days — durably, per-vehicle, without disturbing other vehicles'
// cached artifacts.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vup/internal/canbus"
	"vup/internal/etl"
	"vup/internal/fstore"
	"vup/internal/obs"
)

func postJSON(t *testing.T, url string, body any, wantStatus int, into any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

// dayReports builds a plausible device day: six 10-minute reports
// starting at 08:00 UTC, each fully engine-on, with one analog sample
// stream per dataset channel.
func dayReports(d *etl.VehicleDataset, date time.Time, mean float64) []ingestReport {
	var out []ingestReport
	for i := 0; i < 6; i++ {
		r := ingestReport{
			Start:           date.Add(8*time.Hour + time.Duration(i)*canbus.ReportInterval),
			EngineOnSeconds: canbus.ReportInterval.Seconds(),
			Channels:        make(map[string]ingestChannel, len(d.Channels)),
		}
		for name := range d.Channels {
			r.Channels[name] = ingestChannel{Samples: 60, Mean: mean, Min: mean - 1, Max: mean + 1}
		}
		out = append(out, r)
	}
	return out
}

func counterValue(t *testing.T, name string, labels ...obs.Label) float64 {
	t.Helper()
	s, _ := obs.FindSample(obs.Default.Gather(), name, labels...)
	return s.Value
}

// TestIngestEndToEnd is the issue's acceptance criterion: POST a
// report batch, the next forecast reflects the new days (rebuilt via
// plan extension, not served stale), the other vehicle's cached
// artifact survives, the ingest metrics move, and the appended days
// survive a restart through the fstore append log.
func TestIngestEndToEnd(t *testing.T) {
	datasets := persistDatasets(t)
	store, err := NewStore(datasets)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := fstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(datasets); err != nil {
		t.Fatal(err)
	}
	store.SetPersister(dir.SaveVehicle)
	store.SetAppender(dir.Append)

	api := New(store, persistConfig())
	api.Cache = NewForecastCache(16)
	api.IngestPolicy = etl.MissingForwardFill
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	idA, idB := datasets[0].VehicleID, datasets[1].VehicleID
	lenA := datasets[0].Len()
	last := datasets[0].Date(lenA - 1)

	// Train both vehicles; B twice so its artifact is known-cached.
	var beforeA, b1, b2 forecastResponse
	get(t, srv.URL+"/v1/vehicles/"+idA+"/forecast", 200, &beforeA)
	get(t, srv.URL+"/v1/vehicles/"+idB+"/forecast", 200, &b1)
	get(t, srv.URL+"/v1/vehicles/"+idB+"/forecast", 200, &b2)
	if !b2.Cached {
		t.Fatal("second forecast of B must be a cache hit")
	}

	// Ingest days +1 and +3 for A: day +2 has no reports and must be
	// materialized unobserved, then repaired by the forward-fill policy.
	reports := append(
		dayReports(datasets[0], last.AddDate(0, 0, 1), 12.5),
		dayReports(datasets[0], last.AddDate(0, 0, 3), 14.0)...)
	accBefore := counterValue(t, "ingest_reports_accepted_total")
	daysBefore := counterValue(t, "ingest_days_appended_total")
	lagBefore, _ := obs.FindSample(obs.Default.Gather(), "ingest_to_visible_seconds")
	extBefore := counterValue(t, "forecast_plan_extended_total")

	var ing ingestResponse
	postJSON(t, srv.URL+"/v1/vehicles/"+idA+"/ingest", ingestRequest{Reports: reports}, 200, &ing)
	if ing.Accepted != len(reports) || ing.Rejected != 0 {
		t.Fatalf("ingest accepted %d rejected %d (%v), want %d/0", ing.Accepted, ing.Rejected, ing.Reasons, len(reports))
	}
	if ing.DaysAppended != 3 {
		t.Fatalf("days_appended = %d, want 3 (two reported + one gap day)", ing.DaysAppended)
	}
	if ing.Generation != 1 {
		t.Fatalf("generation = %d, want 1", ing.Generation)
	}
	grown, _ := store.Get(idA)
	if grown.Len() != lenA+3 {
		t.Fatalf("store holds %d days, want %d", grown.Len(), lenA+3)
	}
	if h := grown.Hours[lenA]; h < 0.999 || h > 1.001 {
		t.Errorf("day +1 hours = %v, want ~1.0 (six fully-on 10-minute reports)", h)
	}
	if grown.Observed[lenA+1] {
		t.Error("gap day marked observed")
	}

	// The next forecast of A must train on the new tail...
	var afterA forecastResponse
	get(t, srv.URL+"/v1/vehicles/"+idA+"/forecast", 200, &afterA)
	if afterA.Cached {
		t.Error("forecast of A served a stale cached artifact after ingest")
	}
	// ...by extending the compiled plan, not recompiling it.
	if got := counterValue(t, "forecast_plan_extended_total"); got < extBefore+1 {
		t.Errorf("forecast_plan_extended_total = %v, want >= %v: append did not reuse the compiled plan", got, extBefore+1)
	}
	// ...while B's artifact — a different vehicle, untouched generation —
	// keeps hitting.
	var b3 forecastResponse
	get(t, srv.URL+"/v1/vehicles/"+idB+"/forecast", 200, &b3)
	if !b3.Cached {
		t.Error("ingest into A evicted B's cached artifact")
	}

	// Ingest telemetry moved.
	if got := counterValue(t, "ingest_reports_accepted_total"); got != accBefore+float64(len(reports)) {
		t.Errorf("ingest_reports_accepted_total = %v, want %v", got, accBefore+float64(len(reports)))
	}
	if got := counterValue(t, "ingest_days_appended_total"); got != daysBefore+3 {
		t.Errorf("ingest_days_appended_total = %v, want %v", got, daysBefore+3)
	}
	if lagAfter, ok := obs.FindSample(obs.Default.Gather(), "ingest_to_visible_seconds"); !ok || lagAfter.Count < lagBefore.Count+1 {
		t.Errorf("ingest_to_visible_seconds count %d, want > %d", lagAfter.Count, lagBefore.Count)
	}

	// Restart: the appended days came back through the append log with
	// the exact fingerprint the live store served.
	if err := dir.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := fstore.Open(dir.Path())
	if err != nil {
		t.Fatal(err)
	}
	loaded, _, err := reopened.Load()
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, ld := range loaded {
		if ld.VehicleID != idA {
			continue
		}
		found = true
		if ld.Len() != grown.Len() {
			t.Errorf("replayed %d days, want %d", ld.Len(), grown.Len())
		}
		if ld.Fingerprint() != grown.Fingerprint() {
			t.Errorf("fingerprint drifted across restart: %016x vs %016x", ld.Fingerprint(), grown.Fingerprint())
		}
	}
	if !found {
		t.Fatalf("vehicle %q missing after restart", idA)
	}
}

// TestIngestRejections: malformed batches are 4xx, individually bad
// reports are counted by reason without failing the batch.
func TestIngestRejections(t *testing.T) {
	datasets := persistDatasets(t)
	store, err := NewStore(datasets)
	if err != nil {
		t.Fatal(err)
	}
	api := New(store, persistConfig())
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	id := datasets[0].VehicleID
	last := datasets[0].Date(datasets[0].Len() - 1)

	// Unknown vehicle.
	postJSON(t, srv.URL+"/v1/vehicles/veh-nope/ingest", ingestRequest{Reports: dayReports(datasets[0], last.AddDate(0, 0, 1), 1)}, 404, nil)
	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/v1/vehicles/"+id+"/ingest", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	// Empty batch.
	postJSON(t, srv.URL+"/v1/vehicles/"+id+"/ingest", ingestRequest{}, 400, nil)

	// Per-report rejections: one stale (covered day), one missing start,
	// one impossible engine-on, one good.
	good := dayReports(datasets[0], last.AddDate(0, 0, 1), 10)[0]
	batch := []ingestReport{
		{Start: last, EngineOnSeconds: 60},                                   // stale
		{EngineOnSeconds: 60},                                                // missing_start
		{Start: last.AddDate(0, 0, 1), EngineOnSeconds: 3 * 600},             // invalid_engine_on
		{Start: last.AddDate(0, 0, 1).Add(time.Hour), EngineOnSeconds: -1.0}, // invalid_engine_on
		good,
	}
	var ing ingestResponse
	postJSON(t, srv.URL+"/v1/vehicles/"+id+"/ingest", ingestRequest{Reports: batch}, 200, &ing)
	if ing.Accepted != 1 || ing.Rejected != 4 {
		t.Fatalf("accepted %d rejected %d, want 1/4 (%v)", ing.Accepted, ing.Rejected, ing.Reasons)
	}
	want := map[string]int{"stale": 1, "missing_start": 1, "invalid_engine_on": 2}
	for reason, n := range want {
		if ing.Reasons[reason] != n {
			t.Errorf("reason %q = %d, want %d", reason, ing.Reasons[reason], n)
		}
	}
	if ing.DaysAppended != 1 {
		t.Errorf("days_appended = %d, want 1", ing.DaysAppended)
	}

	// A batch whose newest report is too far ahead: the materialized gap
	// would exceed the per-batch cap.
	farAhead := dayReports(datasets[0], last.AddDate(0, 0, maxIngestDays+2), 10)
	postJSON(t, srv.URL+"/v1/vehicles/"+id+"/ingest", ingestRequest{Reports: farAhead}, 422, nil)
}

// TestIngestBackpressure: with the concurrency gate full, a batch is
// shed with 503 + Retry-After instead of queueing on the disk, and the
// rejection is counted.
func TestIngestBackpressure(t *testing.T) {
	datasets := persistDatasets(t)
	store, err := NewStore(datasets)
	if err != nil {
		t.Fatal(err)
	}
	api := New(store, persistConfig())
	api.IngestConcurrency = 1
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()
	id := datasets[0].VehicleID
	last := datasets[0].Date(datasets[0].Len() - 1)

	api.ingestGate() <- struct{}{} // occupy the only slot
	defer func() { <-api.ingestGate() }()

	before := counterValue(t, "ingest_backpressure_rejections_total")
	raw, err := json.Marshal(ingestRequest{Reports: dayReports(datasets[0], last.AddDate(0, 0, 1), 10)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/vehicles/"+id+"/ingest", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if got := counterValue(t, "ingest_backpressure_rejections_total"); got != before+1 {
		t.Errorf("ingest_backpressure_rejections_total = %v, want %v", got, before+1)
	}
	if d, _ := store.Get(id); d.Len() != datasets[0].Len() {
		t.Error("shed batch still appended days")
	}
}

// BenchmarkIngestToVisible measures the tentpole's serving-side
// number: wall time from a one-day report batch hitting the handler to
// the appended day being forecast-visible, with real append-log fsync
// durability on a disk-backed store. Recorded in BENCH_ingest.json.
func BenchmarkIngestToVisible(b *testing.B) {
	api := benchAPI(b)
	dir, err := fstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dir.Save(api.store.Snapshot()); err != nil {
		b.Fatal(err)
	}
	api.store.SetAppender(dir.Append)
	h := api.Handler()

	id := "veh-0000"
	d, _ := api.store.Get(id)
	date := d.Date(d.Len() - 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		date = date.AddDate(0, 0, 1)
		raw, err := json.Marshal(ingestRequest{Reports: dayReports(d, date, 12.5)})
		if err != nil {
			b.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/vehicles/"+id+"/ingest", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}
