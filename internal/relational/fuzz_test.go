package relational

import (
	"errors"
	"testing"
	"time"
)

// FuzzDecodeTable drives the binary decoder with arbitrary bytes: it
// must never panic, never allocate unbounded memory, and classify
// every rejection as a *FormatError. Inputs that do decode must
// re-encode and decode again to the same table (the format is
// canonical for null-free files).
func FuzzDecodeTable(f *testing.F) {
	schema := MustSchema(
		Column{Name: "id", Type: String},
		Column{Name: "date", Type: Time},
		Column{Name: "hours", Type: Float},
		Column{Name: "n", Type: Int},
		Column{Name: "ok", Type: Bool},
	)
	tab := NewTable(schema)
	day := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		if err := tab.Append("veh-0001", day.AddDate(0, 0, i), float64(i)/3, int64(i), i%2 == 0); err != nil {
			f.Fatal(err)
		}
	}
	good := EncodeTable(tab)
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("VUPT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeTable(data)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("decode error %v is not a *FormatError", err)
			}
			if fe.Offset < 0 || fe.Offset > int64(len(data)) {
				t.Fatalf("fault offset %d outside input of %d bytes", fe.Offset, len(data))
			}
			return
		}
		// Accepted input: the decoded table must itself round-trip.
		again, err := DecodeTable(EncodeTable(got))
		if err != nil {
			t.Fatalf("re-encode of accepted input failed to decode: %v", err)
		}
		if again.Rows() != got.Rows() || again.Schema().Len() != got.Schema().Len() {
			t.Fatalf("re-encoded table shape changed: %dx%d vs %dx%d",
				got.Rows(), got.Schema().Len(), again.Rows(), again.Schema().Len())
		}
	})
}
