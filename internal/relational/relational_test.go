package relational

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{"vehicle", String},
		Column{"date", Time},
		Column{"hours", Float},
		Column{"dow", Int},
		Column{"working", Bool},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func d(day int) time.Time {
	return time.Date(2017, time.March, day, 0, 0, 0, 0, time.UTC)
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(Column{"a", Float}, Column{"a", Int}); !errors.Is(err, ErrDupColumn) {
		t.Errorf("want ErrDupColumn, got %v", err)
	}
	if _, err := NewSchema(Column{"", Float}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustSchema(Column{"a", Float}, Column{"a", Float})
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema(t)
	i, c, err := s.Lookup("hours")
	if err != nil || i != 2 || c.Type != Float {
		t.Errorf("Lookup = %d %+v %v", i, c, err)
	}
	if _, _, err := s.Lookup("nope"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("want ErrNoColumn, got %v", err)
	}
	if s.Len() != 5 || len(s.Columns()) != 5 {
		t.Error("Len/Columns wrong")
	}
}

func TestColTypeString(t *testing.T) {
	for ct, want := range map[ColType]string{Float: "float", Int: "int", String: "string", Bool: "bool", Time: "time", ColType(9): "coltype(9)"} {
		if ct.String() != want {
			t.Errorf("%d -> %q, want %q", int(ct), ct.String(), want)
		}
	}
}

func TestAppendAndAccess(t *testing.T) {
	tab := NewTable(testSchema(t))
	if err := tab.Append("v1", d(1), 5.5, int64(3), true); err != nil {
		t.Fatal(err)
	}
	if err := tab.Append("v2", d(2), 0.0, int64(4), false); err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 2 {
		t.Fatalf("rows = %d", tab.Rows())
	}
	v, err := tab.At(0, "hours")
	if err != nil || v.(float64) != 5.5 {
		t.Errorf("At = %v %v", v, err)
	}
	if _, err := tab.At(5, "hours"); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := tab.At(0, "nope"); err == nil {
		t.Error("unknown column accepted")
	}
	row, err := tab.Row(1)
	if err != nil || row[0].(string) != "v2" || row[4].(bool) != false {
		t.Errorf("Row = %v %v", row, err)
	}
}

func TestAppendErrorsLeaveTableUnchanged(t *testing.T) {
	tab := NewTable(testSchema(t))
	if err := tab.Append("v1", d(1), 5.5); !errors.Is(err, ErrArity) {
		t.Errorf("want ErrArity, got %v", err)
	}
	if err := tab.Append("v1", d(1), "not-a-float", int64(1), true); !errors.Is(err, ErrTypeClash) {
		t.Errorf("want ErrTypeClash, got %v", err)
	}
	if tab.Rows() != 0 {
		t.Errorf("failed appends mutated table: %d rows", tab.Rows())
	}
	// Column slices must all be empty too (atomicity).
	hours, err := tab.FloatCol("hours")
	if err != nil || len(hours) != 0 {
		t.Errorf("FloatCol = %v %v", hours, err)
	}
}

func TestTypedColumnAccessors(t *testing.T) {
	tab := NewTable(testSchema(t))
	tab.Append("v1", d(1), 1.0, int64(1), true)
	tab.Append("v2", d(2), 2.0, int64(2), false)
	if got, _ := tab.FloatCol("hours"); len(got) != 2 || got[1] != 2 {
		t.Errorf("FloatCol = %v", got)
	}
	if got, _ := tab.StringCol("vehicle"); got[0] != "v1" {
		t.Errorf("StringCol = %v", got)
	}
	if got, _ := tab.IntCol("dow"); got[1] != 2 {
		t.Errorf("IntCol = %v", got)
	}
	if got, _ := tab.BoolCol("working"); !got[0] || got[1] {
		t.Errorf("BoolCol = %v", got)
	}
	if got, _ := tab.TimeCol("date"); !got[0].Equal(d(1)) {
		t.Errorf("TimeCol = %v", got)
	}
	// Type mismatches.
	if _, err := tab.FloatCol("vehicle"); !errors.Is(err, ErrTypeClash) {
		t.Errorf("want ErrTypeClash, got %v", err)
	}
	if _, err := tab.StringCol("hours"); !errors.Is(err, ErrTypeClash) {
		t.Errorf("want ErrTypeClash, got %v", err)
	}
	if _, err := tab.IntCol("hours"); !errors.Is(err, ErrTypeClash) {
		t.Errorf("want ErrTypeClash, got %v", err)
	}
	if _, err := tab.BoolCol("hours"); !errors.Is(err, ErrTypeClash) {
		t.Errorf("want ErrTypeClash, got %v", err)
	}
	if _, err := tab.TimeCol("hours"); !errors.Is(err, ErrTypeClash) {
		t.Errorf("want ErrTypeClash, got %v", err)
	}
	// Copies, not views.
	hours, _ := tab.FloatCol("hours")
	hours[0] = 99
	if v, _ := tab.At(0, "hours"); v.(float64) != 1.0 {
		t.Error("FloatCol returned a view")
	}
}

func TestFilter(t *testing.T) {
	tab := NewTable(testSchema(t))
	for i := 1; i <= 10; i++ {
		tab.Append("v", d(i), float64(i), int64(i%7), i%2 == 0)
	}
	hours, _ := tab.FloatCol("hours")
	out := tab.Filter(func(row int) bool { return hours[row] > 5 })
	if out.Rows() != 5 {
		t.Errorf("filtered rows = %d", out.Rows())
	}
	got, _ := out.FloatCol("hours")
	for _, h := range got {
		if h <= 5 {
			t.Errorf("filter kept %v", h)
		}
	}
}

func TestSortBy(t *testing.T) {
	tab := NewTable(testSchema(t))
	tab.Append("b", d(3), 3.0, int64(3), true)
	tab.Append("a", d(1), 1.0, int64(1), true)
	tab.Append("c", d(2), 2.0, int64(2), true)

	byHours, err := tab.SortBy("hours")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := byHours.FloatCol("hours"); got[0] != 1 || got[2] != 3 {
		t.Errorf("sort by float = %v", got)
	}
	byName, _ := tab.SortBy("vehicle")
	if got, _ := byName.StringCol("vehicle"); got[0] != "a" || got[2] != "c" {
		t.Errorf("sort by string = %v", got)
	}
	byDate, _ := tab.SortBy("date")
	if got, _ := byDate.TimeCol("date"); !got[0].Equal(d(1)) {
		t.Errorf("sort by time = %v", got)
	}
	byInt, _ := tab.SortBy("dow")
	if got, _ := byInt.IntCol("dow"); got[0] != 1 {
		t.Errorf("sort by int = %v", got)
	}
	if _, err := tab.SortBy("working"); err == nil {
		t.Error("sort by bool accepted")
	}
	if _, err := tab.SortBy("nope"); err == nil {
		t.Error("sort by unknown column accepted")
	}
}

func TestGroupBy(t *testing.T) {
	tab := NewTable(testSchema(t))
	tab.Append("v1", d(1), 2.0, int64(1), true)
	tab.Append("v1", d(2), 4.0, int64(2), true)
	tab.Append("v2", d(1), 10.0, int64(1), true)

	mean, err := tab.GroupBy("vehicle", "hours", AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if mean["v1"] != 3 || mean["v2"] != 10 {
		t.Errorf("mean = %v", mean)
	}
	sum, _ := tab.GroupBy("vehicle", "hours", AggSum)
	if sum["v1"] != 6 {
		t.Errorf("sum = %v", sum)
	}
	minv, _ := tab.GroupBy("vehicle", "hours", AggMin)
	if minv["v1"] != 2 {
		t.Errorf("min = %v", minv)
	}
	maxv, _ := tab.GroupBy("vehicle", "hours", AggMax)
	if maxv["v1"] != 4 {
		t.Errorf("max = %v", maxv)
	}
	count, _ := tab.GroupBy("vehicle", "hours", AggCount)
	if count["v1"] != 2 || count["v2"] != 1 {
		t.Errorf("count = %v", count)
	}
	if _, err := tab.GroupBy("nope", "hours", AggMean); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := tab.GroupBy("vehicle", "nope", AggMean); err == nil {
		t.Error("unknown value column accepted")
	}
}

func TestHeadAndString(t *testing.T) {
	tab := NewTable(testSchema(t))
	for i := 1; i <= 5; i++ {
		tab.Append("v", d(i), float64(i), int64(i), true)
	}
	head := tab.Head(2)
	if head.Rows() != 2 {
		t.Fatalf("head rows = %d", head.Rows())
	}
	if over := tab.Head(99); over.Rows() != 5 {
		t.Fatalf("oversized head rows = %d", over.Rows())
	}
	out := head.String()
	if !strings.Contains(out, "vehicle") || !strings.Contains(out, "(2 rows)") {
		t.Errorf("String output:\n%s", out)
	}
	if !strings.Contains(out, "2017-03-01") {
		t.Errorf("date formatting missing:\n%s", out)
	}
	// Every line of the grid has the same aligned layout: header and
	// data lines share a prefix width.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 2 rows + count
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	schema := testSchema(t)
	tab := NewTable(schema)
	tab.Append("v1", d(1), 5.25, int64(3), true)
	tab.Append("v,2", d(2), -0.5, int64(-4), false) // comma needs quoting

	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != 2 {
		t.Fatalf("rows = %d", back.Rows())
	}
	for i := 0; i < 2; i++ {
		want, _ := tab.Row(i)
		got, _ := back.Row(i)
		for j := range want {
			if wt, ok := want[j].(time.Time); ok {
				if !wt.Equal(got[j].(time.Time)) {
					t.Errorf("row %d col %d: %v != %v", i, j, got[j], want[j])
				}
				continue
			}
			if got[j] != want[j] {
				t.Errorf("row %d col %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestWriteCSVRows(t *testing.T) {
	schema := testSchema(t)
	a := NewTable(schema)
	a.Append("v1", d(1), 1.0, int64(1), true)
	b := NewTable(schema)
	b.Append("v2", d(2), 2.0, int64(2), false)

	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSVRows(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != 2 {
		t.Fatalf("concatenated rows = %d", back.Rows())
	}
	ids, _ := back.StringCol("vehicle")
	if ids[0] != "v1" || ids[1] != "v2" {
		t.Errorf("ids = %v", ids)
	}
}

func TestReadCSVErrors(t *testing.T) {
	schema := MustSchema(Column{"a", Float}, Column{"b", Int})
	cases := []string{
		"",                 // no header
		"a\n1",             // wrong arity
		"x,b\n1,2",         // wrong names
		"a,b\nnot-float,2", // bad float
		"a,b\n1.5,not-int", // bad int
	}
	for _, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data), schema); !errors.Is(err, ErrBadCSV) {
			t.Errorf("data %q: want ErrBadCSV, got %v", data, err)
		}
	}
	// Bool and Time parse errors too.
	schemaBT := MustSchema(Column{"w", Bool}, Column{"t", Time})
	if _, err := ReadCSV(strings.NewReader("w,t\nmaybe,2017-01-01T00:00:00Z"), schemaBT); !errors.Is(err, ErrBadCSV) {
		t.Errorf("bad bool: %v", err)
	}
	if _, err := ReadCSV(strings.NewReader("w,t\ntrue,yesterday"), schemaBT); !errors.Is(err, ErrBadCSV) {
		t.Errorf("bad time: %v", err)
	}
}

// Property-style test: random tables survive a CSV round trip intact.
func TestCSVRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	schema := MustSchema(Column{"s", String}, Column{"f", Float}, Column{"i", Int}, Column{"b", Bool}, Column{"ts", Time})
	for trial := 0; trial < 20; trial++ {
		tab := NewTable(schema)
		n := rng.Intn(50)
		for i := 0; i < n; i++ {
			tab.Append(
				strings.Repeat("x", rng.Intn(5))+`"q,`,
				rng.NormFloat64()*1e6,
				int64(rng.Int()),
				rng.Intn(2) == 0,
				d(1+rng.Intn(28)),
			)
		}
		var buf bytes.Buffer
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(&buf, schema)
		if err != nil {
			t.Fatal(err)
		}
		if back.Rows() != tab.Rows() {
			t.Fatalf("rows %d != %d", back.Rows(), tab.Rows())
		}
		for i := 0; i < n; i++ {
			want, _ := tab.Row(i)
			got, _ := back.Row(i)
			for j := range want {
				if wt, ok := want[j].(time.Time); ok {
					if !wt.Equal(got[j].(time.Time)) {
						t.Fatalf("time mismatch row %d", i)
					}
					continue
				}
				if got[j] != want[j] {
					t.Fatalf("row %d col %d: %#v != %#v", i, j, got[j], want[j])
				}
			}
		}
	}
}
