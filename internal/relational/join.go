package relational

import (
	"fmt"
	"time"
)

// Project returns a new table holding only the named columns, in the
// given order.
func (t *Table) Project(cols ...string) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relational: projection onto no columns")
	}
	defs := make([]Column, 0, len(cols))
	idx := make([]int, 0, len(cols))
	for _, name := range cols {
		i, c, err := t.schema.Lookup(name)
		if err != nil {
			return nil, err
		}
		defs = append(defs, c)
		idx = append(idx, i)
	}
	schema, err := NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	out := NewTable(schema)
	for r := 0; r < t.rows; r++ {
		row, _ := t.Row(r)
		projected := make([]Value, len(idx))
		for j, i := range idx {
			projected[j] = row[i]
		}
		if err := out.Append(projected...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Join performs an inner hash equi-join of t and other on the named
// key columns (which must have identical types). The result carries
// every column of t followed by every column of other except its key;
// name collisions on non-key columns get a "right_" prefix.
func (t *Table) Join(other *Table, leftKey, rightKey string) (*Table, error) {
	li, lc, err := t.schema.Lookup(leftKey)
	if err != nil {
		return nil, err
	}
	ri, rc, err := other.schema.Lookup(rightKey)
	if err != nil {
		return nil, err
	}
	if lc.Type != rc.Type {
		return nil, fmt.Errorf("%w: join keys %q (%s) and %q (%s)", ErrTypeClash, leftKey, lc.Type, rightKey, rc.Type)
	}

	// Result schema: left columns, then right columns minus the key.
	defs := t.schema.Columns()
	taken := map[string]bool{}
	for _, c := range defs {
		taken[c.Name] = true
	}
	var rightCols []int
	for j, c := range other.schema.Columns() {
		if j == ri {
			continue
		}
		name := c.Name
		if taken[name] {
			name = "right_" + name
		}
		if taken[name] {
			return nil, fmt.Errorf("%w: join output column %q", ErrDupColumn, name)
		}
		taken[name] = true
		defs = append(defs, Column{Name: name, Type: c.Type})
		rightCols = append(rightCols, j)
	}
	schema, err := NewSchema(defs...)
	if err != nil {
		return nil, err
	}

	// Build phase over the smaller conceptual side (other).
	index := map[string][]int{}
	for r := 0; r < other.rows; r++ {
		row, _ := other.Row(r)
		index[joinKey(row[ri])] = append(index[joinKey(row[ri])], r)
	}

	out := NewTable(schema)
	for r := 0; r < t.rows; r++ {
		leftRow, _ := t.Row(r)
		for _, rr := range index[joinKey(leftRow[li])] {
			rightRow, _ := other.Row(rr)
			joined := append([]Value(nil), leftRow...)
			for _, j := range rightCols {
				joined = append(joined, rightRow[j])
			}
			if err := out.Append(joined...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// joinKey canonicalizes a cell for hash-join lookup.
func joinKey(v Value) string {
	switch x := v.(type) {
	case time.Time:
		return "t:" + x.UTC().Format(time.RFC3339Nano)
	default:
		return fmt.Sprintf("%T:%v", v, v)
	}
}

// GroupByMulti groups rows by the concatenation of several string key
// columns and aggregates the float value column. Keys in the result
// are joined with "\x1f" (unit separator).
func (t *Table) GroupByMulti(keyCols []string, valCol string, fn Agg) (map[string]float64, error) {
	if len(keyCols) == 0 {
		return nil, fmt.Errorf("relational: group-by with no keys")
	}
	keys := make([][]string, len(keyCols))
	for i, name := range keyCols {
		col, err := t.StringCol(name)
		if err != nil {
			return nil, err
		}
		keys[i] = col
	}
	var vals []float64
	if fn != AggCount {
		var err error
		if vals, err = t.FloatCol(valCol); err != nil {
			return nil, err
		}
	}
	composite := make([]string, t.rows)
	for r := 0; r < t.rows; r++ {
		key := keys[0][r]
		for i := 1; i < len(keys); i++ {
			key += "\x1f" + keys[i][r]
		}
		composite[r] = key
	}
	// Reuse the single-key aggregation machinery.
	tmpSchema := MustSchema(Column{"k", String}, Column{"v", Float})
	tmp := NewTable(tmpSchema)
	for r := 0; r < t.rows; r++ {
		v := 0.0
		if fn != AggCount {
			v = vals[r]
		}
		if err := tmp.Append(composite[r], v); err != nil {
			return nil, err
		}
	}
	return tmp.GroupBy("k", "v", fn)
}
