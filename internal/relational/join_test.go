package relational

import (
	"errors"
	"testing"
)

func vehiclesTable(t *testing.T) *Table {
	t.Helper()
	s := MustSchema(Column{"vehicle", String}, Column{"country", String})
	tab := NewTable(s)
	tab.Append("v1", "IT")
	tab.Append("v2", "DE")
	tab.Append("v3", "IT")
	return tab
}

func usageTable(t *testing.T) *Table {
	t.Helper()
	s := MustSchema(Column{"vehicle", String}, Column{"hours", Float})
	tab := NewTable(s)
	tab.Append("v1", 5.0)
	tab.Append("v1", 3.0)
	tab.Append("v2", 8.0)
	tab.Append("v9", 1.0) // no matching vehicle
	return tab
}

func TestProject(t *testing.T) {
	tab := usageTable(t)
	out, err := tab.Project("hours")
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema().Len() != 1 || out.Rows() != 4 {
		t.Fatalf("projected = %d cols %d rows", out.Schema().Len(), out.Rows())
	}
	hours, _ := out.FloatCol("hours")
	if hours[2] != 8 {
		t.Errorf("hours = %v", hours)
	}
	// Reordering works.
	both, err := tab.Project("hours", "vehicle")
	if err != nil {
		t.Fatal(err)
	}
	if both.Schema().Columns()[0].Name != "hours" {
		t.Error("projection order lost")
	}
	if _, err := tab.Project(); err == nil {
		t.Error("empty projection accepted")
	}
	if _, err := tab.Project("nope"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("unknown column: %v", err)
	}
}

func TestJoin(t *testing.T) {
	usage := usageTable(t)
	vehicles := vehiclesTable(t)
	joined, err := usage.Join(vehicles, "vehicle", "vehicle")
	if err != nil {
		t.Fatal(err)
	}
	// v1 matches twice, v2 once, v9 drops: 3 rows.
	if joined.Rows() != 3 {
		t.Fatalf("joined rows = %d", joined.Rows())
	}
	countries, err := joined.StringCol("country")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, c := range countries {
		counts[c]++
	}
	if counts["IT"] != 2 || counts["DE"] != 1 {
		t.Errorf("countries = %v", counts)
	}
}

func TestJoinNameCollision(t *testing.T) {
	left := NewTable(MustSchema(Column{"k", String}, Column{"x", Float}))
	left.Append("a", 1.0)
	right := NewTable(MustSchema(Column{"k", String}, Column{"x", Float}))
	right.Append("a", 2.0)
	joined, err := left.Join(right, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := joined.Schema().Lookup("right_x"); err != nil {
		t.Errorf("collision column missing: %v", err)
	}
	rx, _ := joined.FloatCol("right_x")
	if rx[0] != 2 {
		t.Errorf("right_x = %v", rx)
	}
}

func TestJoinErrors(t *testing.T) {
	usage := usageTable(t)
	vehicles := vehiclesTable(t)
	if _, err := usage.Join(vehicles, "nope", "vehicle"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("unknown left key: %v", err)
	}
	if _, err := usage.Join(vehicles, "vehicle", "nope"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("unknown right key: %v", err)
	}
	if _, err := usage.Join(usage, "vehicle", "hours"); !errors.Is(err, ErrTypeClash) {
		t.Errorf("mismatched key types: %v", err)
	}
}

func TestJoinOnTimeKeys(t *testing.T) {
	left := NewTable(MustSchema(Column{"ts", Time}, Column{"a", Float}))
	right := NewTable(MustSchema(Column{"ts", Time}, Column{"b", Float}))
	left.Append(d(1), 1.0)
	left.Append(d(2), 2.0)
	right.Append(d(2), 20.0)
	joined, err := left.Join(right, "ts", "ts")
	if err != nil {
		t.Fatal(err)
	}
	if joined.Rows() != 1 {
		t.Fatalf("rows = %d", joined.Rows())
	}
	b, _ := joined.FloatCol("b")
	if b[0] != 20 {
		t.Errorf("b = %v", b)
	}
}

func TestGroupByMulti(t *testing.T) {
	s := MustSchema(Column{"type", String}, Column{"country", String}, Column{"hours", Float})
	tab := NewTable(s)
	tab.Append("grader", "IT", 6.0)
	tab.Append("grader", "IT", 8.0)
	tab.Append("grader", "DE", 4.0)
	tab.Append("paver", "IT", 2.0)

	mean, err := tab.GroupByMulti([]string{"type", "country"}, "hours", AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if mean["grader\x1fIT"] != 7 || mean["grader\x1fDE"] != 4 || mean["paver\x1fIT"] != 2 {
		t.Errorf("mean = %v", mean)
	}
	count, err := tab.GroupByMulti([]string{"type"}, "hours", AggCount)
	if err != nil {
		t.Fatal(err)
	}
	if count["grader"] != 3 {
		t.Errorf("count = %v", count)
	}
	if _, err := tab.GroupByMulti(nil, "hours", AggMean); err == nil {
		t.Error("no keys accepted")
	}
	if _, err := tab.GroupByMulti([]string{"nope"}, "hours", AggMean); !errors.Is(err, ErrNoColumn) {
		t.Errorf("unknown key: %v", err)
	}
}
