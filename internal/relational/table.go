package relational

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Value is a dynamically typed cell. The concrete type must match the
// column type: float64, int64, string, bool or time.Time.
type Value interface{}

// Table is a columnar relation: one typed slice per column.
type Table struct {
	schema *Schema
	// cols[i] holds the data of column i as a homogeneous slice.
	floats  map[int][]float64
	ints    map[int][]int64
	strings map[int][]string
	bools   map[int][]bool
	times   map[int][]time.Time
	rows    int
}

// NewTable creates an empty table over schema.
func NewTable(schema *Schema) *Table {
	t := &Table{
		schema:  schema,
		floats:  map[int][]float64{},
		ints:    map[int][]int64{},
		strings: map[int][]string{},
		bools:   map[int][]bool{},
		times:   map[int][]time.Time{},
	}
	for i, c := range schema.cols {
		switch c.Type {
		case Float:
			t.floats[i] = nil
		case Int:
			t.ints[i] = nil
		case String:
			t.strings[i] = nil
		case Bool:
			t.bools[i] = nil
		case Time:
			t.times[i] = nil
		}
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.rows }

// Append adds one row. Values must match the schema in arity and type.
func (t *Table) Append(values ...Value) error {
	if len(values) != t.schema.Len() {
		return fmt.Errorf("%w: got %d, want %d", ErrArity, len(values), t.schema.Len())
	}
	// Validate all before mutating any column, so a failed append
	// leaves the table unchanged.
	for i, v := range values {
		if !typeMatches(t.schema.cols[i].Type, v) {
			return fmt.Errorf("%w: column %q (%s) got %T", ErrTypeClash, t.schema.cols[i].Name, t.schema.cols[i].Type, v)
		}
	}
	for i, v := range values {
		switch t.schema.cols[i].Type {
		case Float:
			t.floats[i] = append(t.floats[i], v.(float64))
		case Int:
			t.ints[i] = append(t.ints[i], v.(int64))
		case String:
			t.strings[i] = append(t.strings[i], v.(string))
		case Bool:
			t.bools[i] = append(t.bools[i], v.(bool))
		case Time:
			t.times[i] = append(t.times[i], v.(time.Time))
		}
	}
	t.rows++
	return nil
}

func typeMatches(ct ColType, v Value) bool {
	switch ct {
	case Float:
		_, ok := v.(float64)
		return ok
	case Int:
		_, ok := v.(int64)
		return ok
	case String:
		_, ok := v.(string)
		return ok
	case Bool:
		_, ok := v.(bool)
		return ok
	case Time:
		_, ok := v.(time.Time)
		return ok
	default:
		return false
	}
}

// At returns the cell at (row, named column).
func (t *Table) At(row int, col string) (Value, error) {
	if row < 0 || row >= t.rows {
		return nil, fmt.Errorf("relational: row %d out of range [0,%d)", row, t.rows)
	}
	i, c, err := t.schema.Lookup(col)
	if err != nil {
		return nil, err
	}
	switch c.Type {
	case Float:
		return t.floats[i][row], nil
	case Int:
		return t.ints[i][row], nil
	case String:
		return t.strings[i][row], nil
	case Bool:
		return t.bools[i][row], nil
	default:
		return t.times[i][row], nil
	}
}

// FloatCol returns a copy of the named Float column.
func (t *Table) FloatCol(name string) ([]float64, error) {
	i, c, err := t.schema.Lookup(name)
	if err != nil {
		return nil, err
	}
	if c.Type != Float {
		return nil, fmt.Errorf("%w: %q is %s, want float", ErrTypeClash, name, c.Type)
	}
	return append([]float64(nil), t.floats[i]...), nil
}

// StringCol returns a copy of the named String column.
func (t *Table) StringCol(name string) ([]string, error) {
	i, c, err := t.schema.Lookup(name)
	if err != nil {
		return nil, err
	}
	if c.Type != String {
		return nil, fmt.Errorf("%w: %q is %s, want string", ErrTypeClash, name, c.Type)
	}
	return append([]string(nil), t.strings[i]...), nil
}

// TimeCol returns a copy of the named Time column.
func (t *Table) TimeCol(name string) ([]time.Time, error) {
	i, c, err := t.schema.Lookup(name)
	if err != nil {
		return nil, err
	}
	if c.Type != Time {
		return nil, fmt.Errorf("%w: %q is %s, want time", ErrTypeClash, name, c.Type)
	}
	return append([]time.Time(nil), t.times[i]...), nil
}

// IntCol returns a copy of the named Int column.
func (t *Table) IntCol(name string) ([]int64, error) {
	i, c, err := t.schema.Lookup(name)
	if err != nil {
		return nil, err
	}
	if c.Type != Int {
		return nil, fmt.Errorf("%w: %q is %s, want int", ErrTypeClash, name, c.Type)
	}
	return append([]int64(nil), t.ints[i]...), nil
}

// BoolCol returns a copy of the named Bool column.
func (t *Table) BoolCol(name string) ([]bool, error) {
	i, c, err := t.schema.Lookup(name)
	if err != nil {
		return nil, err
	}
	if c.Type != Bool {
		return nil, fmt.Errorf("%w: %q is %s, want bool", ErrTypeClash, name, c.Type)
	}
	return append([]bool(nil), t.bools[i]...), nil
}

// Row materializes row i as a Value slice in schema order.
func (t *Table) Row(i int) ([]Value, error) {
	if i < 0 || i >= t.rows {
		return nil, fmt.Errorf("relational: row %d out of range [0,%d)", i, t.rows)
	}
	out := make([]Value, t.schema.Len())
	for j, c := range t.schema.cols {
		switch c.Type {
		case Float:
			out[j] = t.floats[j][i]
		case Int:
			out[j] = t.ints[j][i]
		case String:
			out[j] = t.strings[j][i]
		case Bool:
			out[j] = t.bools[j][i]
		case Time:
			out[j] = t.times[j][i]
		}
	}
	return out, nil
}

// Filter returns a new table holding the rows for which pred returns
// true. pred receives the row index and reads cells through the table.
func (t *Table) Filter(pred func(row int) bool) *Table {
	out := NewTable(t.schema)
	for i := 0; i < t.rows; i++ {
		if !pred(i) {
			continue
		}
		row, _ := t.Row(i)
		// Appending a row read from the same schema cannot fail.
		_ = out.Append(row...)
	}
	return out
}

// SortBy returns a new table sorted by the named column ascending.
// Only Float, Int, String and Time columns are sortable.
func (t *Table) SortBy(col string) (*Table, error) {
	i, c, err := t.schema.Lookup(col)
	if err != nil {
		return nil, err
	}
	idx := make([]int, t.rows)
	for k := range idx {
		idx[k] = k
	}
	switch c.Type {
	case Float:
		vals := t.floats[i]
		sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	case Int:
		vals := t.ints[i]
		sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	case String:
		vals := t.strings[i]
		sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	case Time:
		vals := t.times[i]
		sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]].Before(vals[idx[b]]) })
	default:
		return nil, fmt.Errorf("%w: cannot sort by %s column %q", ErrTypeClash, c.Type, col)
	}
	out := NewTable(t.schema)
	for _, k := range idx {
		row, _ := t.Row(k)
		_ = out.Append(row...)
	}
	return out, nil
}

// Head returns a new table with at most n leading rows.
func (t *Table) Head(n int) *Table {
	if n > t.rows {
		n = t.rows
	}
	out := NewTable(t.schema)
	for i := 0; i < n; i++ {
		row, _ := t.Row(i)
		_ = out.Append(row...)
	}
	return out
}

// String renders the table as an aligned text grid (all rows; compose
// with Head for a preview). It implements fmt.Stringer.
func (t *Table) String() string {
	widths := make([]int, t.schema.Len())
	header := make([]string, t.schema.Len())
	for j, c := range t.schema.cols {
		header[j] = c.Name
		widths[j] = len(c.Name)
	}
	cells := make([][]string, t.rows)
	for i := 0; i < t.rows; i++ {
		row, _ := t.Row(i)
		cells[i] = make([]string, len(row))
		for j, v := range row {
			var s string
			switch x := v.(type) {
			case float64:
				s = strconv.FormatFloat(x, 'g', 6, 64)
			case time.Time:
				s = x.Format("2006-01-02")
			default:
				s = fmt.Sprint(v)
			}
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for j, s := range row {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], s)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", t.rows)
	return b.String()
}

// Agg enumerates group-by aggregation functions.
type Agg int

const (
	AggMean Agg = iota
	AggSum
	AggMin
	AggMax
	AggCount
)

// GroupBy groups rows by the string key column and aggregates the
// float value column with fn. Results are keyed by group value.
func (t *Table) GroupBy(keyCol, valCol string, fn Agg) (map[string]float64, error) {
	keys, err := t.StringCol(keyCol)
	if err != nil {
		return nil, err
	}
	var vals []float64
	if fn != AggCount {
		vals, err = t.FloatCol(valCol)
		if err != nil {
			return nil, err
		}
	}
	sums := map[string]float64{}
	counts := map[string]float64{}
	mins := map[string]float64{}
	maxs := map[string]float64{}
	for i, k := range keys {
		counts[k]++
		if fn == AggCount {
			continue
		}
		v := vals[i]
		sums[k] += v
		if counts[k] == 1 {
			mins[k], maxs[k] = v, v
			continue
		}
		mins[k] = math.Min(mins[k], v)
		maxs[k] = math.Max(maxs[k], v)
	}
	out := map[string]float64{}
	for k := range counts {
		switch fn {
		case AggMean:
			out[k] = sums[k] / counts[k]
		case AggSum:
			out[k] = sums[k]
		case AggMin:
			out[k] = mins[k]
		case AggMax:
			out[k] = maxs[k]
		case AggCount:
			out[k] = counts[k]
		}
	}
	return out, nil
}
