// Package relational implements the small columnar table engine the
// data-preparation pipeline targets. The paper's step (v) is
// "Transformation, to tailor input data to a relational data format";
// this package is that format: typed schemas, columnar storage,
// filtering, sorting, group-by aggregation, CSV round-tripping, and a
// checksummed binary serialization (the VUPT format, binary.go).
//
// The column types map one-to-one onto the paper's Table 1 feature
// schema: Float carries the daily utilization hours and the analog CAN
// channel aggregates (fuel rate, engine speed, …), Int the ordinal
// context features (week, month, year), String the categorical ones
// (vehicle model, country), Bool the binary flags (holiday, working
// day, observed) and Time the calendar date each row describes. A
// vehicle-day dataset rendered through etl.VehicleDataset.ToTable —
// or persisted through internal/fstore — is exactly such a table, so
// the on-disk format in internal/fstore/FORMAT.md is the durable form
// of the paper's relational representation.
package relational

import (
	"errors"
	"fmt"
)

// ColType is the type of a column.
type ColType int

const (
	Float ColType = iota
	Int
	String
	Bool
	Time
)

// String implements fmt.Stringer.
func (t ColType) String() string {
	switch t {
	case Float:
		return "float"
	case Int:
		return "int"
	case String:
		return "string"
	case Bool:
		return "bool"
	case Time:
		return "time"
	default:
		return fmt.Sprintf("coltype(%d)", int(t))
	}
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered set of columns with unique names.
type Schema struct {
	cols  []Column
	index map[string]int
}

// Errors reported by the engine.
var (
	ErrDupColumn = errors.New("relational: duplicate column name")
	ErrNoColumn  = errors.New("relational: no such column")
	ErrTypeClash = errors.New("relational: value type does not match column type")
	ErrArity     = errors.New("relational: wrong number of values for schema")
	ErrBadCSV    = errors.New("relational: malformed CSV")
)

// NewSchema builds a schema. It returns ErrDupColumn on repeated names
// and an error on an empty column list.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, errors.New("relational: empty schema")
	}
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, errors.New("relational: column with empty name")
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDupColumn, c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Lookup returns the position and definition of the named column.
func (s *Schema) Lookup(name string) (int, Column, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, Column{}, fmt.Errorf("%w: %q", ErrNoColumn, name)
	}
	return i, s.cols[i], nil
}
