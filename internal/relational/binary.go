package relational

// Binary on-disk encoding of a Table: the VUPT format. The byte-level
// layout is specified normatively in internal/fstore/FORMAT.md; this
// file is the reference implementation. In one line: a little-endian,
// versioned container of a length-prefixed schema header followed by
// one null bitmap + fixed-width value block per column, sealed by a
// whole-file CRC-32C.
//
// Decoding is defensive: every read is bounds-checked, allocations are
// capped by the input size, and any malformation surfaces as a
// *FormatError carrying the byte offset of the fault — a corrupt or
// truncated file fails loudly instead of deserializing garbage.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// TableFormatVersion is the current VUPT container version.
const TableFormatVersion = 1

// tableMagic opens every encoded table.
const tableMagic = "VUPT"

// Decoder failure classes. Every decode error wraps exactly one of
// these (test with errors.Is) inside a *FormatError that carries the
// byte offset.
var (
	ErrBadMagic   = errors.New("relational: bad magic")
	ErrBadVersion = errors.New("relational: unsupported format version")
	ErrTruncated  = errors.New("relational: truncated input")
	ErrChecksum   = errors.New("relational: checksum mismatch")
	ErrCorrupt    = errors.New("relational: corrupt input")
)

// FormatError is the typed decode error: what went wrong, and at which
// byte offset of the input.
type FormatError struct {
	Offset int64  // byte offset of the fault within the input
	Err    error  // one of ErrBadMagic, ErrBadVersion, ErrTruncated, ErrChecksum, ErrCorrupt
	Detail string // human-readable specifics
}

// Error implements error.
func (e *FormatError) Error() string {
	return fmt.Sprintf("%v at offset %d: %s", e.Err, e.Offset, e.Detail)
}

// Unwrap exposes the failure class to errors.Is.
func (e *FormatError) Unwrap() error { return e.Err }

func formatErrf(off int, class error, format string, args ...any) error {
	return &FormatError{Offset: int64(off), Err: class, Detail: fmt.Sprintf(format, args...)}
}

// castagnoli is the CRC-32C polynomial table used for the trailing
// whole-file checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// cellWidth returns the fixed on-disk width of one value of the type,
// or 0 for variable-width (String) columns.
func cellWidth(t ColType) int {
	switch t {
	case Float, Int:
		return 8
	case Bool:
		return 1
	case Time:
		return 12 // i64 unix seconds + i32 nanoseconds
	default:
		return 0
	}
}

// EncodeTable serializes the table into the VUPT binary format.
// Tables have no null cells, so every presence bitmap is written
// all-ones; the bitmap exists in the format so sparse producers (and
// future versions) can express missing values.
func EncodeTable(t *Table) []byte {
	// Header: magic, version, column count, column descriptors.
	buf := make([]byte, 0, 64+t.rows*t.schema.Len()*8)
	buf = append(buf, tableMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, TableFormatVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(t.schema.Len()))
	for _, c := range t.schema.cols {
		buf = append(buf, byte(len(c.Name)))
		buf = append(buf, c.Name...)
		buf = append(buf, byte(c.Type))
		buf = append(buf, 0) // flags: bit0 nullable; Table columns are non-nullable
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.rows))

	bitmapLen := (t.rows + 7) / 8
	allSet := make([]byte, bitmapLen)
	for i := range allSet {
		allSet[i] = 0xFF
	}
	if pad := bitmapLen*8 - t.rows; pad > 0 && bitmapLen > 0 {
		// Trailing padding bits must be zero for a canonical encoding.
		allSet[bitmapLen-1] = 0xFF >> pad
	}

	for i, c := range t.schema.cols {
		buf = append(buf, allSet...)
		switch c.Type {
		case Float:
			for _, v := range t.floats[i] {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		case Int:
			for _, v := range t.ints[i] {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			}
		case String:
			for _, v := range t.strings[i] {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
				buf = append(buf, v...)
			}
		case Bool:
			for _, v := range t.bools[i] {
				if v {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			}
		case Time:
			for _, v := range t.times[i] {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Unix()))
				buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Nanosecond()))
			}
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// binReader is a bounds-checked cursor over an encoded payload. All
// reads fail with a *FormatError(ErrTruncated) carrying the current
// offset instead of panicking, which is what makes the decoder safe to
// fuzz with arbitrary bytes.
type binReader struct {
	data []byte
	off  int
}

func (r *binReader) need(n int) error {
	if n < 0 || len(r.data)-r.off < n {
		return formatErrf(r.off, ErrTruncated, "need %d more bytes, have %d", n, len(r.data)-r.off)
	}
	return nil
}

func (r *binReader) u8() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.data[r.off]
	r.off++
	return v, nil
}

func (r *binReader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v, nil
}

func (r *binReader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *binReader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *binReader) bytes(n int) ([]byte, error) {
	if err := r.need(n); err != nil {
		return nil, err
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

// timeCell reads one 12-byte Time cell (i64 seconds, i32 nanoseconds).
func (r *binReader) timeCell() (time.Time, error) {
	sec, err := r.u64()
	if err != nil {
		return time.Time{}, err
	}
	nsec, err := r.u32()
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(int64(sec), int64(int32(nsec))).UTC(), nil
}

// DecodeTable parses a VUPT payload produced by EncodeTable. It
// validates the magic, version and structure, verifies the trailing
// CRC-32C over the whole file, and returns a *FormatError naming the
// byte offset of the first fault on any malformation. Null cells
// (possible in files from sparse producers, never emitted by
// EncodeTable) decode as the column type's zero value.
func DecodeTable(data []byte) (*Table, error) {
	r := &binReader{data: data}
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != tableMagic {
		return nil, formatErrf(0, ErrBadMagic, "got %q, want %q", magic, tableMagic)
	}
	version, err := r.u16()
	if err != nil {
		return nil, err
	}
	if version != TableFormatVersion {
		return nil, formatErrf(4, ErrBadVersion, "version %d, decoder supports %d", version, TableFormatVersion)
	}

	// Structural parse first (bounds-checked, with precise offsets for
	// truncation), then the checksum seals the content: a bit flip the
	// structure happens to tolerate still fails loudly.
	ncols, err := r.u16()
	if err != nil {
		return nil, err
	}
	if ncols == 0 {
		return nil, formatErrf(6, ErrCorrupt, "zero columns")
	}
	cols := make([]Column, 0, ncols)
	for c := 0; c < int(ncols); c++ {
		nameOff := r.off
		nameLen, err := r.u8()
		if err != nil {
			return nil, err
		}
		if nameLen == 0 {
			return nil, formatErrf(nameOff, ErrCorrupt, "column %d: empty name", c)
		}
		name, err := r.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		typOff := r.off
		typ, err := r.u8()
		if err != nil {
			return nil, err
		}
		if ColType(typ) > Time {
			return nil, formatErrf(typOff, ErrCorrupt, "column %q: unknown type %d", name, typ)
		}
		flagOff := r.off
		flags, err := r.u8()
		if err != nil {
			return nil, err
		}
		if flags&^0x01 != 0 {
			return nil, formatErrf(flagOff, ErrCorrupt, "column %q: unknown flag bits %#x", name, flags)
		}
		cols = append(cols, Column{Name: string(name), Type: ColType(typ)})
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, formatErrf(6, ErrCorrupt, "invalid schema: %v", err)
	}

	rowsOff := r.off
	rows64, err := r.u64()
	if err != nil {
		return nil, err
	}
	// Reject row counts the input cannot possibly hold before any
	// allocation: every row costs at least one bitmap bit per column,
	// and fixed-width columns cost cellWidth bytes per row.
	minPerRow := 0
	for _, c := range cols {
		w := cellWidth(c.Type)
		if w == 0 {
			w = 4 // String: at least the u32 length prefix
		}
		minPerRow += w
	}
	remaining := len(data) - r.off
	if rows64 > uint64(remaining) || (rows64 > 0 && uint64(minPerRow)*rows64 > uint64(remaining)) {
		return nil, formatErrf(rowsOff, ErrTruncated, "row count %d exceeds what %d remaining bytes can hold", rows64, remaining)
	}
	rows := int(rows64)

	t := NewTable(schema)
	bitmapLen := (rows + 7) / 8
	for i, c := range cols {
		bmOff := r.off
		bitmap, err := r.bytes(bitmapLen)
		if err != nil {
			return nil, err
		}
		if pad := bitmapLen*8 - rows; pad > 0 && bitmap[bitmapLen-1]>>(8-pad) != 0 {
			return nil, formatErrf(bmOff+bitmapLen-1, ErrCorrupt, "column %q: non-zero bitmap padding bits", c.Name)
		}
		if rows == 0 {
			// Keep the zero-row column slices nil, exactly as NewTable
			// leaves them, so an empty table round-trips DeepEqual.
			continue
		}
		present := func(row int) bool { return bitmap[row/8]&(1<<(row%8)) != 0 }
		switch c.Type {
		case Float:
			vals := make([]float64, rows)
			for row := 0; row < rows; row++ {
				bits, err := r.u64()
				if err != nil {
					return nil, err
				}
				if present(row) {
					vals[row] = math.Float64frombits(bits)
				}
			}
			t.floats[i] = vals
		case Int:
			vals := make([]int64, rows)
			for row := 0; row < rows; row++ {
				v, err := r.u64()
				if err != nil {
					return nil, err
				}
				if present(row) {
					vals[row] = int64(v)
				}
			}
			t.ints[i] = vals
		case String:
			vals := make([]string, rows)
			for row := 0; row < rows; row++ {
				n, err := r.u32()
				if err != nil {
					return nil, err
				}
				b, err := r.bytes(int(n))
				if err != nil {
					return nil, err
				}
				if present(row) {
					vals[row] = string(b)
				}
			}
			t.strings[i] = vals
		case Bool:
			vals := make([]bool, rows)
			for row := 0; row < rows; row++ {
				cellOff := r.off
				v, err := r.u8()
				if err != nil {
					return nil, err
				}
				if v > 1 {
					return nil, formatErrf(cellOff, ErrCorrupt, "column %q row %d: bool byte %d", c.Name, row, v)
				}
				if present(row) {
					vals[row] = v == 1
				}
			}
			t.bools[i] = vals
		case Time:
			vals := make([]time.Time, rows)
			for row := 0; row < rows; row++ {
				v, err := r.timeCell()
				if err != nil {
					return nil, err
				}
				if present(row) {
					vals[row] = v
				} else {
					vals[row] = time.Unix(0, 0).UTC()
				}
			}
			t.times[i] = vals
		}
	}
	t.rows = rows

	sumOff := r.off
	stored, err := r.u32()
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(data[:sumOff], castagnoli); got != stored {
		return nil, formatErrf(sumOff, ErrChecksum, "computed %08x, stored %08x", got, stored)
	}
	if r.off != len(data) {
		return nil, formatErrf(r.off, ErrCorrupt, "%d trailing bytes after checksum", len(data)-r.off)
	}
	return t, nil
}
