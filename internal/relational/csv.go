package relational

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// timeLayout is the CSV serialization of Time cells.
const timeLayout = time.RFC3339

// WriteCSV serializes the table with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.schema.Len())
	for i, c := range t.schema.cols {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("relational: writing header: %w", err)
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return t.WriteCSVRows(w)
}

// WriteCSVRows serializes only the data rows (no header), for
// appending several same-schema tables into one CSV stream.
func (t *Table) WriteCSVRows(w io.Writer) error {
	cw := csv.NewWriter(w)
	record := make([]string, t.schema.Len())
	for i := 0; i < t.rows; i++ {
		row, _ := t.Row(i)
		for j, v := range row {
			switch t.schema.cols[j].Type {
			case Float:
				record[j] = strconv.FormatFloat(v.(float64), 'g', -1, 64)
			case Int:
				record[j] = strconv.FormatInt(v.(int64), 10)
			case String:
				record[j] = v.(string)
			case Bool:
				record[j] = strconv.FormatBool(v.(bool))
			case Time:
				record[j] = v.(time.Time).Format(timeLayout)
			}
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("relational: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table with the given schema from CSV data written
// by WriteCSV. The header must match the schema's column names.
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadCSV, err)
	}
	if len(header) != schema.Len() {
		return nil, fmt.Errorf("%w: header has %d columns, schema %d", ErrBadCSV, len(header), schema.Len())
	}
	for i, name := range header {
		if schema.cols[i].Name != name {
			return nil, fmt.Errorf("%w: header column %d is %q, schema says %q", ErrBadCSV, i, name, schema.cols[i].Name)
		}
	}
	t := NewTable(schema)
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadCSV, line, err)
		}
		values := make([]Value, len(record))
		for j, field := range record {
			v, err := parseCell(schema.cols[j].Type, field)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d column %q: %v", ErrBadCSV, line, schema.cols[j].Name, err)
			}
			values[j] = v
		}
		if err := t.Append(values...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func parseCell(ct ColType, field string) (Value, error) {
	switch ct {
	case Float:
		return strconv.ParseFloat(field, 64)
	case Int:
		return strconv.ParseInt(field, 10, 64)
	case String:
		return field, nil
	case Bool:
		return strconv.ParseBool(field)
	case Time:
		return time.Parse(timeLayout, field)
	default:
		return nil, fmt.Errorf("unknown column type %v", ct)
	}
}
