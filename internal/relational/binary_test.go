package relational

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// testTable builds a table exercising every column type.
func testTable(t *testing.T, rows int) *Table {
	t.Helper()
	schema := MustSchema(
		Column{Name: "vehicle_id", Type: String},
		Column{Name: "date", Type: Time},
		Column{Name: "hours", Type: Float},
		Column{Name: "faults", Type: Int},
		Column{Name: "observed", Type: Bool},
	)
	tab := NewTable(schema)
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < rows; i++ {
		err := tab.Append(
			"veh-0001",
			start.AddDate(0, 0, i),
			float64(i)*1.5,
			int64(i*i),
			i%2 == 0,
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestTableBinaryRoundTrip(t *testing.T) {
	for _, rows := range []int{0, 1, 7, 8, 9, 100} {
		orig := testTable(t, rows)
		data := EncodeTable(orig)
		got, err := DecodeTable(data)
		if err != nil {
			t.Fatalf("rows=%d: decode: %v", rows, err)
		}
		if !reflect.DeepEqual(orig, got) {
			t.Errorf("rows=%d: round-trip not DeepEqual\norig: %+v\ngot:  %+v", rows, orig, got)
		}
	}
}

func TestTableBinaryRoundTripEmptyTable(t *testing.T) {
	orig := NewTable(MustSchema(Column{Name: "x", Type: Float}))
	got, err := DecodeTable(EncodeTable(orig))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("empty table round-trip not DeepEqual: %+v vs %+v", orig, got)
	}
}

func TestTableBinaryDeterministic(t *testing.T) {
	a := EncodeTable(testTable(t, 13))
	b := EncodeTable(testTable(t, 13))
	if !reflect.DeepEqual(a, b) {
		t.Error("two encodings of the same table differ")
	}
}

// mustFormatError asserts err is a *FormatError of the given class and
// returns it.
func mustFormatError(t *testing.T, err, class error) *FormatError {
	t.Helper()
	if err == nil {
		t.Fatalf("want error of class %v, got nil", class)
	}
	if !errors.Is(err, class) {
		t.Fatalf("error %v is not class %v", err, class)
	}
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v is not a *FormatError", err)
	}
	return fe
}

func TestDecodeTableBadMagic(t *testing.T) {
	data := EncodeTable(testTable(t, 3))
	data[0] = 'X'
	fe := mustFormatError(t, decodeErr(data), ErrBadMagic)
	if fe.Offset != 0 {
		t.Errorf("offset = %d, want 0", fe.Offset)
	}
}

func TestDecodeTableBadVersion(t *testing.T) {
	data := EncodeTable(testTable(t, 3))
	data[4] = 0xFF
	fe := mustFormatError(t, decodeErr(data), ErrBadVersion)
	if fe.Offset != 4 {
		t.Errorf("offset = %d, want 4", fe.Offset)
	}
}

func TestDecodeTableTruncated(t *testing.T) {
	data := EncodeTable(testTable(t, 50))
	// Every proper prefix must fail loudly — never return a table.
	for cut := 0; cut < len(data); cut++ {
		got, err := DecodeTable(data[:cut])
		if err == nil {
			t.Fatalf("cut=%d: decode of truncated input succeeded (%d rows)", cut, got.Rows())
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("cut=%d: error %v is not a *FormatError", cut, err)
		}
		if fe.Offset < 0 || fe.Offset > int64(cut) {
			t.Fatalf("cut=%d: fault offset %d outside input", cut, fe.Offset)
		}
	}
}

func TestDecodeTableChecksumMismatch(t *testing.T) {
	data := EncodeTable(testTable(t, 8))
	// Flip one payload bit after the header; the structure still
	// parses, so only the checksum can catch it.
	data[len(data)-12] ^= 0x01
	fe := mustFormatError(t, decodeErr(data), ErrChecksum)
	if fe.Offset != int64(len(data)-4) {
		t.Errorf("offset = %d, want %d (checksum position)", fe.Offset, len(data)-4)
	}
}

func TestDecodeTableTrailingBytes(t *testing.T) {
	data := append(EncodeTable(testTable(t, 3)), 0xAA)
	fe := mustFormatError(t, decodeErr(data), ErrCorrupt)
	if fe.Offset != int64(len(data)-1) {
		t.Errorf("offset = %d, want %d (first trailing byte)", fe.Offset, len(data)-1)
	}
}

func TestDecodeTableHugeRowCount(t *testing.T) {
	data := EncodeTable(testTable(t, 1))
	// The row count sits right after the 5 column descriptors; locate
	// it by re-deriving the header size instead of hard-coding.
	off := 4 + 2 + 2
	for _, name := range []string{"vehicle_id", "date", "hours", "faults", "observed"} {
		off += 1 + len(name) + 2
	}
	for i := 0; i < 8; i++ {
		data[off+i] = 0xFF
	}
	fe := mustFormatError(t, decodeErr(data), ErrTruncated)
	if fe.Offset != int64(off) {
		t.Errorf("offset = %d, want %d (row count)", fe.Offset, off)
	}
}

func decodeErr(data []byte) error {
	_, err := DecodeTable(data)
	return err
}
