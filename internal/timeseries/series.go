// Package timeseries provides the daily time-series machinery of the
// study: an aligned daily series type, the next-working-day view
// (dropping idle days), lagging, rolling means, weekly resampling and
// the sliding/expanding evaluation windows of Figure 3.
package timeseries

import (
	"errors"
	"fmt"
	"time"
)

// ErrLength is returned for mismatched or invalid series lengths.
var ErrLength = errors.New("timeseries: invalid length")

// Series is a daily time series: Values[i] belongs to the day
// Start + i days. Days are normalized to midnight UTC.
type Series struct {
	Start  time.Time
	Values []float64
}

// New creates a series beginning at start (normalized to midnight
// UTC).
func New(start time.Time, values []float64) Series {
	return Series{Start: midnight(start), Values: values}
}

func midnight(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
}

// Len returns the number of days in the series.
func (s Series) Len() int { return len(s.Values) }

// Date returns the date of index i.
func (s Series) Date(i int) time.Time { return s.Start.AddDate(0, 0, i) }

// Index returns the index of date d, or an error when d lies outside
// the series.
func (s Series) Index(d time.Time) (int, error) {
	i := int(midnight(d).Sub(s.Start).Hours() / 24)
	if i < 0 || i >= len(s.Values) {
		return 0, fmt.Errorf("timeseries: date %v outside series [%v, %v)", d.Format("2006-01-02"), s.Start.Format("2006-01-02"), s.Date(len(s.Values)).Format("2006-01-02"))
	}
	return i, nil
}

// Slice returns the subseries [from, to).
func (s Series) Slice(from, to int) (Series, error) {
	if from < 0 || to > len(s.Values) || from > to {
		return Series{}, fmt.Errorf("%w: slice [%d, %d) of %d", ErrLength, from, to, len(s.Values))
	}
	return Series{Start: s.Date(from), Values: s.Values[from:to]}, nil
}

// Clone returns a deep copy of s.
func (s Series) Clone() Series {
	return Series{Start: s.Start, Values: append([]float64(nil), s.Values...)}
}

// ActiveView returns the subsequence of days with Values > threshold,
// together with the original indices of the kept days. This is the
// next-working-day transformation: "the next day on which the vehicle
// will be used at least 1 hour" — idle days are removed from the
// series before modelling.
func (s Series) ActiveView(threshold float64) (values []float64, indices []int) {
	for i, v := range s.Values {
		if v >= threshold {
			values = append(values, v)
			indices = append(indices, i)
		}
	}
	return values, indices
}

// Lag returns the series shifted by lag days: out[i] = s.Values[i-lag]
// for i >= lag; the first lag entries are NaN-free zero-filled and
// flagged by the returned valid-from index.
func (s Series) Lag(lag int) (values []float64, validFrom int) {
	if lag < 0 {
		lag = 0
	}
	values = make([]float64, len(s.Values))
	for i := lag; i < len(s.Values); i++ {
		values[i] = s.Values[i-lag]
	}
	if lag > len(s.Values) {
		lag = len(s.Values)
	}
	return values, lag
}

// RollingMean returns the trailing mean over window days. Entry i
// averages values [i-window+1 .. i]; entries before a full window
// average what is available.
func (s Series) RollingMean(window int) ([]float64, error) {
	if window <= 0 {
		return nil, fmt.Errorf("%w: rolling window %d", ErrLength, window)
	}
	out := make([]float64, len(s.Values))
	sum := 0.0
	for i, v := range s.Values {
		sum += v
		n := window
		if i+1 < window {
			n = i + 1
		} else if i >= window {
			sum -= s.Values[i-window]
		}
		out[i] = sum / float64(n)
	}
	return out, nil
}

// WeeklyTotals aggregates the daily series into per-week sums (weeks
// of 7 days from the series start; a trailing partial week is
// included). Used by the Figure 1(d) characterization.
func (s Series) WeeklyTotals() []float64 {
	var out []float64
	for i := 0; i < len(s.Values); i += 7 {
		end := i + 7
		if end > len(s.Values) {
			end = len(s.Values)
		}
		sum := 0.0
		for _, v := range s.Values[i:end] {
			sum += v
		}
		out = append(out, sum)
	}
	return out
}
