package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// synthSeries builds trend + weekly seasonal + noise.
func synthSeries(n int, trendSlope, seasonalAmp, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	pattern := []float64{0, 1, 2, 3, 2, -4, -4} // weekly shape, sums to 0
	for i := range out {
		out[i] = 10 + trendSlope*float64(i) + seasonalAmp*pattern[i%7] + noise*rng.NormFloat64()
	}
	return out
}

func TestDecomposeRecoversComponents(t *testing.T) {
	values := synthSeries(210, 0.05, 1.5, 0.2, 1)
	d, err := Decompose(values, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Seasonal sums to ~zero over one period.
	var sum float64
	for p := 0; p < 7; p++ {
		sum += d.Seasonal[p]
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("seasonal sum = %v", sum)
	}
	// Seasonal shape correlates with the generating pattern: phase 5
	// and 6 are the low days.
	if d.Seasonal[5] >= d.Seasonal[2] || d.Seasonal[6] >= d.Seasonal[3] {
		t.Errorf("seasonal shape wrong: %v", d.Seasonal[:7])
	}
	// Trend is increasing over the valid interior.
	if d.Trend[150] <= d.Trend[20] {
		t.Errorf("trend not increasing: %v .. %v", d.Trend[20], d.Trend[150])
	}
	// Interior reconstruction: value = T + S + R exactly.
	for i := 10; i < 200; i++ {
		if math.IsNaN(d.Trend[i]) {
			continue
		}
		recon := d.Trend[i] + d.Seasonal[i] + d.Residual[i]
		if math.Abs(recon-values[i]) > 1e-9 {
			t.Fatalf("reconstruction broken at %d", i)
		}
	}
	// Residuals are small relative to the seasonal swing.
	var resAbs float64
	n := 0
	for _, r := range d.Residual {
		if !math.IsNaN(r) {
			resAbs += math.Abs(r)
			n++
		}
	}
	if resAbs/float64(n) > 0.5 {
		t.Errorf("mean |residual| = %v", resAbs/float64(n))
	}
}

func TestDecomposeEdgesNaN(t *testing.T) {
	values := synthSeries(70, 0, 1, 0, 2)
	d, err := Decompose(values, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(d.Trend[0]) || !math.IsNaN(d.Trend[69]) {
		t.Error("trend edges should be NaN")
	}
	if math.IsNaN(d.Trend[35]) {
		t.Error("interior trend should be defined")
	}
}

func TestDecomposeEvenPeriod(t *testing.T) {
	// Period 4 exercises the 2×MA branch.
	values := make([]float64, 60)
	pattern := []float64{1, -1, 2, -2}
	for i := range values {
		values[i] = 5 + pattern[i%4]
	}
	d, err := Decompose(values, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 56; i++ {
		if math.Abs(d.Trend[i]-5) > 1e-9 {
			t.Fatalf("flat trend broken at %d: %v", i, d.Trend[i])
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(make([]float64, 10), 1); !errors.Is(err, ErrLength) {
		t.Errorf("period 1: %v", err)
	}
	if _, err := Decompose(make([]float64, 10), 7); !errors.Is(err, ErrLength) {
		t.Errorf("short series: %v", err)
	}
}

func TestSeasonalStrength(t *testing.T) {
	strong := synthSeries(210, 0, 3, 0.1, 3)
	weak := synthSeries(210, 0, 0.1, 3, 4)
	ds, err := Decompose(strong, 7)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := Decompose(weak, 7)
	if err != nil {
		t.Fatal(err)
	}
	ss, ws := ds.SeasonalStrength(), dw.SeasonalStrength()
	if ss < 0.9 {
		t.Errorf("strong seasonal strength = %v", ss)
	}
	if ws > 0.3 {
		t.Errorf("weak seasonal strength = %v", ws)
	}
	if ss <= ws {
		t.Errorf("ordering violated: %v <= %v", ss, ws)
	}
}

func TestSeasonalNaive(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	got, err := SeasonalNaive(values, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 { // 7 back from the end (next would be index 9; 9-7=2 -> value 3)
		t.Errorf("seasonal naive = %v", got)
	}
	if _, err := SeasonalNaive(values, 0); !errors.Is(err, ErrLength) {
		t.Errorf("period 0: %v", err)
	}
	if _, err := SeasonalNaive(values[:3], 7); !errors.Is(err, ErrLength) {
		t.Errorf("short: %v", err)
	}
}
