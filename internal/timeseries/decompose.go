package timeseries

import (
	"fmt"
	"math"
)

// Decomposition is a classical additive decomposition of a series
// into trend, periodic (seasonal) and residual components:
//
//	value = Trend + Seasonal + Residual
//
// For the utilization series the natural period is 7 days; the trend
// captures the slow non-stationary drift and job episodes the paper
// observes, the seasonal component the weekly fingerprint.
type Decomposition struct {
	Period   int
	Trend    []float64
	Seasonal []float64
	Residual []float64
}

// Decompose performs the classical decomposition with the given
// period: the trend is a centered moving average of length period
// (even periods average two offset windows), the seasonal component
// is the per-phase mean of the detrended series (normalized to sum to
// zero), the residual is what remains. The series must span at least
// two full periods.
func Decompose(values []float64, period int) (*Decomposition, error) {
	n := len(values)
	if period < 2 {
		return nil, fmt.Errorf("%w: period %d", ErrLength, period)
	}
	if n < 2*period {
		return nil, fmt.Errorf("%w: %d values for period %d", ErrLength, n, period)
	}
	d := &Decomposition{
		Period:   period,
		Trend:    make([]float64, n),
		Seasonal: make([]float64, n),
		Residual: make([]float64, n),
	}

	// Centered moving average; NaN where the window does not fit.
	half := period / 2
	for i := 0; i < n; i++ {
		if i < half || i+half >= n {
			d.Trend[i] = math.NaN()
			continue
		}
		if period%2 == 1 {
			sum := 0.0
			for j := i - half; j <= i+half; j++ {
				sum += values[j]
			}
			d.Trend[i] = sum / float64(period)
		} else {
			// 2×period MA: half weights on the edges.
			sum := values[i-half]/2 + values[i+half]/2
			for j := i - half + 1; j < i+half; j++ {
				sum += values[j]
			}
			d.Trend[i] = sum / float64(period)
		}
	}

	// Per-phase means of the detrended series.
	phaseSum := make([]float64, period)
	phaseN := make([]int, period)
	for i := 0; i < n; i++ {
		if math.IsNaN(d.Trend[i]) {
			continue
		}
		phase := i % period
		phaseSum[phase] += values[i] - d.Trend[i]
		phaseN[phase]++
	}
	phaseMean := make([]float64, period)
	var total float64
	for p := 0; p < period; p++ {
		if phaseN[p] > 0 {
			phaseMean[p] = phaseSum[p] / float64(phaseN[p])
		}
		total += phaseMean[p]
	}
	// Normalize so the seasonal component sums to zero over a period.
	adjust := total / float64(period)
	for p := 0; p < period; p++ {
		phaseMean[p] -= adjust
	}

	for i := 0; i < n; i++ {
		d.Seasonal[i] = phaseMean[i%period]
		if math.IsNaN(d.Trend[i]) {
			d.Residual[i] = math.NaN()
			continue
		}
		d.Residual[i] = values[i] - d.Trend[i] - d.Seasonal[i]
	}
	return d, nil
}

// SeasonalStrength returns the fraction of detrended variance
// explained by the seasonal component, in [0, 1]: 1 − Var(residual) /
// Var(seasonal + residual). Values near 1 mean a strongly periodic
// series. NaN entries (trend edges) are skipped.
func (d *Decomposition) SeasonalStrength() float64 {
	var devSum, devSq, resSum, resSq float64
	var n int
	for i := range d.Residual {
		if math.IsNaN(d.Residual[i]) {
			continue
		}
		dev := d.Seasonal[i] + d.Residual[i]
		devSum += dev
		devSq += dev * dev
		resSum += d.Residual[i]
		resSq += d.Residual[i] * d.Residual[i]
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	varDev := devSq/float64(n) - (devSum/float64(n))*(devSum/float64(n))
	varRes := resSq/float64(n) - (resSum/float64(n))*(resSum/float64(n))
	if varDev <= 0 {
		return 0
	}
	s := 1 - varRes/varDev
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// SeasonalNaive forecasts the next value as the observation one full
// period earlier — the standard reference forecaster for periodic
// series. It returns an error when the series is shorter than the
// period.
func SeasonalNaive(values []float64, period int) (float64, error) {
	if period <= 0 {
		return 0, fmt.Errorf("%w: period %d", ErrLength, period)
	}
	if len(values) < period {
		return 0, fmt.Errorf("%w: %d values for period %d", ErrLength, len(values), period)
	}
	return values[len(values)-period], nil
}
