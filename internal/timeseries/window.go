package timeseries

import "fmt"

// Window is one train/test split: the model is trained on indices
// [TrainFrom, TrainTo) and evaluated on the single target index Test.
type Window struct {
	TrainFrom, TrainTo int
	Test               int
}

// Strategy selects how the training window moves over the series, as
// contrasted in Figure 3 of the paper.
type Strategy int

const (
	// Sliding keeps a fixed-size training window ending right before
	// the test day.
	Sliding Strategy = iota
	// Expanding grows the training window to include every preceding
	// day.
	Expanding
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == Expanding {
		return "expanding"
	}
	return "sliding"
}

// Enumerate generates the train/test windows for a series of n days
// with training window size w under the given strategy. Each test day
// t from w to n-1 yields one window; under Sliding the training range
// is [t-w, t), under Expanding it is [0, t).
func Enumerate(n, w int, strategy Strategy) ([]Window, error) {
	if w <= 0 {
		return nil, fmt.Errorf("%w: window size %d", ErrLength, w)
	}
	if n <= w {
		return nil, fmt.Errorf("%w: series of %d days cannot host a %d-day training window", ErrLength, n, w)
	}
	out := make([]Window, 0, n-w)
	for t := w; t < n; t++ {
		win := Window{TrainTo: t, Test: t}
		if strategy == Sliding {
			win.TrainFrom = t - w
		}
		out = append(out, win)
	}
	return out, nil
}
