package timeseries

import (
	"errors"
	"math"
	"testing"
	"time"
)

var start = time.Date(2017, time.January, 1, 0, 0, 0, 0, time.UTC)

func TestNewNormalizesStart(t *testing.T) {
	s := New(time.Date(2017, time.January, 1, 13, 45, 0, 0, time.UTC), []float64{1})
	if !s.Start.Equal(start) {
		t.Errorf("start = %v", s.Start)
	}
}

func TestDateIndexRoundTrip(t *testing.T) {
	s := New(start, make([]float64, 30))
	for i := 0; i < 30; i++ {
		idx, err := s.Index(s.Date(i))
		if err != nil || idx != i {
			t.Fatalf("Index(Date(%d)) = %d, %v", i, idx, err)
		}
	}
	if _, err := s.Index(start.AddDate(0, 0, -1)); err == nil {
		t.Error("date before start accepted")
	}
	if _, err := s.Index(start.AddDate(0, 0, 30)); err == nil {
		t.Error("date after end accepted")
	}
}

func TestSlice(t *testing.T) {
	s := New(start, []float64{0, 1, 2, 3, 4})
	sub, err := s.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.Values[0] != 1 || !sub.Start.Equal(start.AddDate(0, 0, 1)) {
		t.Errorf("Slice = %+v", sub)
	}
	if _, err := s.Slice(3, 2); !errors.Is(err, ErrLength) {
		t.Errorf("want ErrLength, got %v", err)
	}
	if _, err := s.Slice(-1, 2); !errors.Is(err, ErrLength) {
		t.Errorf("want ErrLength, got %v", err)
	}
	if _, err := s.Slice(0, 9); !errors.Is(err, ErrLength) {
		t.Errorf("want ErrLength, got %v", err)
	}
}

func TestClone(t *testing.T) {
	s := New(start, []float64{1, 2})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestActiveView(t *testing.T) {
	s := New(start, []float64{0, 2, 0, 3.5, 0.5, 4})
	values, indices := s.ActiveView(1)
	want := []float64{2, 3.5, 4}
	wantIdx := []int{1, 3, 5}
	if len(values) != 3 {
		t.Fatalf("values = %v", values)
	}
	for i := range want {
		if values[i] != want[i] || indices[i] != wantIdx[i] {
			t.Errorf("ActiveView = %v %v", values, indices)
		}
	}
	// Threshold 0 keeps everything.
	all, _ := s.ActiveView(0)
	if len(all) != 6 {
		t.Errorf("threshold 0 dropped days: %v", all)
	}
}

func TestLag(t *testing.T) {
	s := New(start, []float64{10, 20, 30, 40})
	values, validFrom := s.Lag(2)
	if validFrom != 2 {
		t.Errorf("validFrom = %d", validFrom)
	}
	if values[2] != 10 || values[3] != 20 {
		t.Errorf("lagged = %v", values)
	}
	// Negative lag behaves like zero.
	v0, f0 := s.Lag(-3)
	if f0 != 0 || v0[0] != 10 {
		t.Errorf("negative lag = %v from %d", v0, f0)
	}
	// Lag longer than series.
	_, fBig := s.Lag(10)
	if fBig != 4 {
		t.Errorf("oversized lag validFrom = %d", fBig)
	}
}

func TestRollingMean(t *testing.T) {
	s := New(start, []float64{2, 4, 6, 8})
	out, err := s.RollingMean(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 5, 7}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("RollingMean = %v, want %v", out, want)
		}
	}
	if _, err := s.RollingMean(0); !errors.Is(err, ErrLength) {
		t.Errorf("want ErrLength, got %v", err)
	}
	// Window longer than the series averages the available prefix.
	long, _ := s.RollingMean(10)
	if long[3] != 5 {
		t.Errorf("long window = %v", long)
	}
}

func TestWeeklyTotals(t *testing.T) {
	values := make([]float64, 16) // 2 full weeks + 2 days
	for i := range values {
		values[i] = 1
	}
	s := New(start, values)
	weeks := s.WeeklyTotals()
	if len(weeks) != 3 || weeks[0] != 7 || weeks[1] != 7 || weeks[2] != 2 {
		t.Errorf("WeeklyTotals = %v", weeks)
	}
	if got := New(start, nil).WeeklyTotals(); got != nil {
		t.Errorf("empty series weeks = %v", got)
	}
}

func TestEnumerateSliding(t *testing.T) {
	wins, err := Enumerate(10, 4, Sliding)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 6 {
		t.Fatalf("windows = %d, want 6", len(wins))
	}
	for _, w := range wins {
		if w.TrainTo-w.TrainFrom != 4 {
			t.Errorf("sliding window size = %d", w.TrainTo-w.TrainFrom)
		}
		if w.Test != w.TrainTo {
			t.Errorf("test day %d != train end %d", w.Test, w.TrainTo)
		}
	}
	if wins[0].TrainFrom != 0 || wins[5].TrainFrom != 5 {
		t.Errorf("window starts wrong: %+v", wins)
	}
}

func TestEnumerateExpanding(t *testing.T) {
	wins, err := Enumerate(10, 4, Expanding)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range wins {
		if w.TrainFrom != 0 {
			t.Errorf("expanding window starts at %d", w.TrainFrom)
		}
	}
	// Training size grows monotonically.
	for i := 1; i < len(wins); i++ {
		if wins[i].TrainTo <= wins[i-1].TrainTo {
			t.Error("expanding window not growing")
		}
	}
}

func TestEnumerateErrors(t *testing.T) {
	if _, err := Enumerate(10, 0, Sliding); !errors.Is(err, ErrLength) {
		t.Errorf("want ErrLength, got %v", err)
	}
	if _, err := Enumerate(5, 5, Sliding); !errors.Is(err, ErrLength) {
		t.Errorf("want ErrLength, got %v", err)
	}
}

func TestStrategyString(t *testing.T) {
	if Sliding.String() != "sliding" || Expanding.String() != "expanding" {
		t.Error("Strategy names wrong")
	}
}
