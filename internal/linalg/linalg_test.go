package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Errorf("At wrong")
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Errorf("Set wrong")
	}
	r := m.Row(2)
	r[0] = 42
	if m.At(2, 0) != 42 {
		t.Errorf("Row should be a view")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("transpose wrong: %+v", tr)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul = %v", c.Data)
			}
		}
	}
	if _, err := a.Mul(FromRows([][]float64{{1, 2}})); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	c, err := a.Mul(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if c.Data[i] != a.Data[i] {
			t.Fatal("A·I != A")
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := a.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec = %v", y)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if !almost(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Error("Norm2 wrong")
	}
	if Norm2(nil) != 0 {
		t.Error("Norm2(nil) should be 0")
	}
	// Norm2 must not overflow for huge entries.
	big := math.MaxFloat64 / 2
	if v := Norm2([]float64{big, big}); math.IsInf(v, 1) {
		t.Error("Norm2 overflowed")
	}
}

func TestAXPYScale(t *testing.T) {
	y := []float64{1, 2}
	AXPY(2, []float64{10, 20}, y)
	if y[0] != 21 || y[1] != 42 {
		t.Errorf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 10.5 || y[1] != 21 {
		t.Errorf("Scale = %v", y)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square nonsingular system: solve exactly.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := LeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 1, 1e-10) || !almost(x[1], 3, 1e-10) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 exactly through noisy-free points.
	xs := []float64{0, 1, 2, 3, 4}
	rows := make([][]float64, len(xs))
	b := make([]float64, len(xs))
	for i, v := range xs {
		rows[i] = []float64{1, v}
		b[i] = 2*v + 1
	}
	x, err := LeastSquares(FromRows(rows), b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 1, 1e-10) || !almost(x[1], 2, 1e-10) {
		t.Errorf("coef = %v", x)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// Property: at the LS optimum, Aᵀ(Ax - b) = 0.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		m := 10 + rng.Intn(40)
		n := 2 + rng.Intn(6)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ax, _ := a.MulVec(x)
		res := make([]float64, m)
		for i := range res {
			res[i] = ax[i] - b[i]
		}
		atr, _ := a.T().MulVec(res)
		for _, v := range atr {
			if math.Abs(v) > 1e-8 {
				t.Fatalf("normal equations violated: %v", atr)
			}
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := LeastSquares(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
	under := FromRows([][]float64{{1, 2, 3}})
	if _, err := LeastSquares(under, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape for underdetermined, got %v", err)
	}
	sing := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(sing, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("want ErrSingular, got %v", err)
	}
	zero := FromRows([][]float64{{0, 1}, {0, 2}})
	if _, err := LeastSquares(zero, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("want ErrSingular for zero column, got %v", err)
	}
}

func TestCholeskySolve(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := c.Solve([]float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Verify A·x = b.
	ax, _ := a.MulVec(x)
	if !almost(ax[0], 10, 1e-10) || !almost(ax[1], 9, 1e-10) {
		t.Errorf("A·x = %v", ax)
	}
}

func TestCholeskyFactorReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		// Build SPD matrix A = MᵀM + I.
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		mt := m.T()
		a, _ := mt.Mul(m)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		l := c.L()
		llt, _ := l.Mul(l.T())
		for i := range a.Data {
			if !almost(llt.Data[i], a.Data[i], 1e-8) {
				t.Fatalf("L·Lᵀ != A at %d: %v vs %v", i, llt.Data[i], a.Data[i])
			}
		}
		// Random solve round-trip.
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := c.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		ax, _ := a.MulVec(x)
		for i := range b {
			if !almost(ax[i], b[i], 1e-8) {
				t.Fatalf("solve wrong at %d", i)
			}
		}
	}
}

func TestCholeskyErrors(t *testing.T) {
	if _, err := NewCholesky(FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
	// Not positive definite.
	if _, err := NewCholesky(FromRows([][]float64{{1, 2}, {2, 1}})); !errors.Is(err, ErrSingular) {
		t.Errorf("want ErrSingular, got %v", err)
	}
	c, err := NewCholesky(FromRows([][]float64{{2, 0}, {0, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape on solve, got %v", err)
	}
}

func TestLeastSquaresAgainstCholesky(t *testing.T) {
	// Property: QR least squares equals normal-equation solution for
	// well-conditioned problems.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		m, n := 30, 4
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xqr, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		at := a.T()
		ata, _ := at.Mul(a)
		atb, _ := at.MulVec(b)
		c, err := NewCholesky(ata)
		if err != nil {
			t.Fatal(err)
		}
		xch, err := c.Solve(atb)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xqr {
			if !almost(xqr[i], xch[i], 1e-7) {
				t.Fatalf("QR vs Cholesky mismatch: %v vs %v", xqr, xch)
			}
		}
	}
}
