package linalg

import (
	"fmt"
	"math"
)

// LeastSquares solves min ||A·x - b||₂ for a full-column-rank A with
// Rows >= Cols using Householder QR. It returns ErrShape on dimension
// mismatch or an underdetermined system, and ErrSingular when A is
// column-rank-deficient to working precision.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("%w: A is %dx%d, b has %d entries", ErrShape, a.Rows, a.Cols, len(b))
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("%w: underdetermined system %dx%d", ErrShape, a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	r := a.Clone()
	qtb := append([]float64(nil), b...)

	// Householder triangularization, applying each reflector to qtb.
	for k := 0; k < n; k++ {
		// Build the reflector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm == 0 {
			return nil, fmt.Errorf("%w: zero column %d", ErrSingular, k)
		}
		// LINPACK sign transfer: give norm the sign of the pivot so the
		// scaled pivot is positive and the reflector v_k = 1 + |x_k|/‖x‖
		// stays away from zero.
		if r.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			r.Set(i, k, r.At(i, k)/norm)
		}
		r.Set(k, k, r.At(k, k)+1)

		// Apply the reflector to the remaining columns and to qtb.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += r.At(i, k) * r.At(i, j)
			}
			s = -s / r.At(k, k)
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)+s*r.At(i, k))
			}
		}
		var s float64
		for i := k; i < m; i++ {
			s += r.At(i, k) * qtb[i]
		}
		s = -s / r.At(k, k)
		for i := k; i < m; i++ {
			qtb[i] += s * r.At(i, k)
		}
		// Store the diagonal of R (the reflector occupied it).
		r.Set(k, k, norm)
	}

	// Back substitution on the upper triangle. The stored diagonal
	// entries are -||column|| after reflection; reconstruct R(k,k).
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		diag := r.At(k, k)
		// The diagonal stored above is `norm`, whose sign encodes the
		// reflector; R(k,k) is -norm in the standard formulation. The
		// sign cancels in the solve as long as we are consistent.
		if math.Abs(diag) < 1e-12 {
			return nil, fmt.Errorf("%w: tiny pivot at column %d", ErrSingular, k)
		}
		s := qtb[k]
		for j := k + 1; j < n; j++ {
			s -= r.At(k, j) * x[j]
		}
		x[k] = s / -diag
	}
	return x, nil
}
