package linalg

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix A = L·Lᵀ.
type Cholesky struct {
	n int
	l *Matrix
}

// NewCholesky factorizes the symmetric positive-definite matrix a.
// Only the lower triangle of a is read. It returns ErrShape for a
// non-square input and ErrSingular when a is not positive definite to
// working precision.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, fmt.Errorf("%w: non-positive pivot %g at %d", ErrSingular, d, j)
		}
		l.Set(j, j, math.Sqrt(d))
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/l.At(j, j))
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve returns x with A·x = b. It returns ErrShape when len(b) != n.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("%w: solve with %d-vector against %dx%d", ErrShape, len(b), c.n, c.n)
	}
	// Forward substitution L·y = b.
	y := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, c.n)
	for i := c.n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < c.n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }
