// Package linalg provides the small dense linear-algebra kernel behind
// the regression models: matrices, vectors, Householder QR least
// squares and Cholesky factorization. It is deliberately minimal —
// everything the OLS, Lasso and SVR solvers need and nothing more.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible shapes")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix with the given shape. It panics on
// non-positive dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be non-empty
// and rectangular.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows with empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: FromRows with ragged input")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns the product m·o. It returns ErrShape when the inner
// dimensions disagree.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.Cols != o.Rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrShape, m.Rows, m.Cols, o.Rows, o.Cols)
	}
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			ok := o.Data[k*o.Cols : (k+1)*o.Cols]
			for j, okj := range ok {
				oi[j] += mik * okj
			}
		}
	}
	return out, nil
}

// MulVec returns m·x. It returns ErrShape when len(x) != m.Cols.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: %dx%d · vec(%d)", ErrShape, m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out, nil
}

// Dot returns the inner product of a and b; it panics on length
// mismatch because that is always a programming error.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow for large entries.
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// AXPY computes y += alpha*x in place; it panics on length mismatch.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}
