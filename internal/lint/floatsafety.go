package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// newFloatSafety builds the floatsafety analyzer. Everywhere in the
// tree it flags:
//
//   - == and != between two computed floating-point operands — exact
//     comparison of computation results is almost never meant (NaN !=
//     NaN; accumulated error breaks equality). Comparing against a
//     compile-time constant is exempt: exact-zero guards before a
//     division and representable sentinels are correct IEEE practice
//     and pervasive in the numeric kernels. A genuinely exact
//     computed-vs-computed comparison takes //lint:allow.
//   - floating-point map keys — NaN keys are unretrievable and +0/-0
//     collide; key on bits or a quantized integer instead.
//   - a float quotient (or math.NaN itself) reaching a JSON encoder in
//     a function that never calls math.IsNaN — 0/0 silently produces
//     NaN, and encoding/json rejects NaN with an opaque
//     UnsupportedValueError at request time. This is the exact shape of
//     the PR 3 summarize bug. The check is function-local: an
//     assignment taints its left-hand side, and a tainted identifier or
//     literal quotient inside a Marshal/Encode argument fires unless
//     the function guards with math.IsNaN.
func newFloatSafety() *Analyzer {
	a := &Analyzer{
		Name: "floatsafety",
		Doc:  "flag exact float comparison, float map keys, and unguarded NaN-to-JSON flows",
	}
	a.Run = func(pkg *Package) []Diagnostic {
		var diags []Diagnostic
		report := func(n ast.Node, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:     pkg.Fset.Position(n.Pos()),
				Rule:    a.Name,
				Message: fmt.Sprintf(format, args...),
			})
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					if !isFloat(pkg.Info.TypeOf(n.X)) && !isFloat(pkg.Info.TypeOf(n.Y)) {
						return true
					}
					if isConstExpr(pkg, n.X) || isConstExpr(pkg, n.Y) {
						return true // exact-zero guard / representable sentinel
					}
					report(n, "exact floating-point %s between computed values; use a tolerance or math.IsNaN", n.Op)
				case *ast.MapType:
					if isFloat(pkg.Info.TypeOf(n.Key)) {
						report(n.Key, "floating-point map key; NaN keys are unretrievable and ±0 collide")
					}
				case *ast.FuncDecl:
					// The NaN-flow heuristic is function-scoped; the
					// traversal still descends for the checks above.
					if n.Body != nil {
						checkNaNFlow(pkg, n.Body, report)
					}
				}
				return true
			})
		}
		return diags
	}
	return a
}

// checkNaNFlow applies the function-local NaN-to-encoder heuristic to
// one function body.
func checkNaNFlow(pkg *Package, body *ast.BlockStmt, report func(ast.Node, string, ...any)) {
	guarded := false
	tainted := map[string]bool{} // identifiers assigned from a float quotient
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeFunc(pkg.Info, n)
			if isPkgFunc(obj, "math", "IsNaN") || isPkgFunc(obj, "math", "IsInf") {
				guarded = true
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && exprMayBeNaN(pkg, rhs, tainted) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						tainted[id.Name] = true
					}
				}
			}
		}
		return true
	})
	if guarded {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		obj := calleeFunc(pkg.Info, call)
		isEncoder := isPkgFunc(obj, "encoding/json", "Marshal") ||
			isPkgFunc(obj, "encoding/json", "MarshalIndent") ||
			(obj != nil && obj.Name() == "Encode" && recvIsNamed(obj, "encoding/json", "Encoder"))
		if !isEncoder {
			return true
		}
		if exprMayBeNaN(pkg, call.Args[0], tainted) {
			report(call, "possible NaN reaches %s without a math.IsNaN guard (json rejects NaN at encode time)", exprString(call.Fun))
		}
		return true
	})
}

// isConstExpr reports whether e has a compile-time constant value.
func isConstExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}

// exprMayBeNaN reports whether e contains a float quotient, a call to
// math.NaN, or an identifier previously tainted by one.
func exprMayBeNaN(pkg *Package, e ast.Expr, tainted map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.QUO && isFloat(pkg.Info.TypeOf(n)) {
				found = true
			}
		case *ast.CallExpr:
			if isPkgFunc(calleeFunc(pkg.Info, n), "math", "NaN") {
				found = true
			}
		case *ast.Ident:
			if tainted[n.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}
