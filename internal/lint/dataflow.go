package lint

// Worklist dataflow over funcCFG. The state is a uint64 bitset — each
// analyzer assigns its facts (open obligations, held locks) to bits —
// and the merge at join points is set union, which makes both clients
// "may" analyses: pinleak reports a resource that MAY still be open at
// a return, lockhold reports a blocking call while a lock MAY be held.
// Transfer functions do strong updates (set on acquire, clear on
// release), which stays monotone in the input, so the fixpoint
// terminates: block-entry states only ever grow and the lattice is
// finite.

import "go/ast"

// flowAnalysis is one dataflow client.
type flowAnalysis struct {
	// transfer folds one CFG node into the state.
	transfer func(state uint64, n ast.Node) uint64
	// refine adjusts the state along a branch edge whose condition is
	// known to have evaluated to taken. Optional.
	refine func(state uint64, cond ast.Expr, taken bool) uint64
}

// fixpoint computes the entry state of every block reachable from the
// entry. Presence in the returned map IS reachability — unreachable
// blocks (dead code, clauses of an empty switch) have no entry.
func fixpoint(g *funcCFG, fa flowAnalysis) map[*cfgBlock]uint64 {
	in := map[*cfgBlock]uint64{g.entry: 0}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		st := in[blk]
		for _, n := range blk.nodes {
			st = fa.transfer(st, n)
		}
		for _, e := range blk.succs {
			s := st
			if fa.refine != nil && e.cond != nil {
				s = fa.refine(s, e.cond, e.taken)
			}
			old, seen := in[e.to]
			if !seen || old|s != old {
				in[e.to] = old | s
				work = append(work, e.to)
			}
		}
	}
	return in
}

// replay walks every reachable block once, in construction order,
// re-running the transfer so callbacks observe the converged state:
// visit sees the state immediately BEFORE each node, exit sees the
// state at a normal function exit (panic paths are skipped). Reporting
// from a replay instead of from inside the fixpoint keeps diagnostics
// deterministic and free of revisit duplicates.
func replay(g *funcCFG, in map[*cfgBlock]uint64, fa flowAnalysis,
	visit func(state uint64, n ast.Node),
	exit func(state uint64, blk *cfgBlock)) {
	for _, blk := range g.blocks {
		st, ok := in[blk]
		if !ok {
			continue
		}
		for _, n := range blk.nodes {
			if visit != nil {
				visit(st, n)
			}
			st = fa.transfer(st, n)
		}
		if blk.exits && !blk.panics && exit != nil {
			exit(st, blk)
		}
	}
}
