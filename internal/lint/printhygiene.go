package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// printExemptPkgs never trip printhygiene: textplot's whole job is
// rendering text (its output is returned, but it is the designated
// presentation layer), and main packages (cmd/, examples/) own their
// process's stdout/stderr.
var printExemptPkgs = []string{"internal/textplot"}

// logFuncs are the default-logger entry points of the log package.
var logFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

// newPrintHygiene builds the printhygiene analyzer: library packages
// must not write to the process's stdout/stderr behind the caller's
// back. fmt.Print*, the log package's default logger, and the print/
// println builtins are all flagged; output belongs in returned values
// or goes through obs.Logger, which callers can level and redirect.
// Main packages and internal/textplot are exempt.
func newPrintHygiene() *Analyzer {
	a := &Analyzer{
		Name: "printhygiene",
		Doc:  "forbid fmt.Print*/log.Print*/println in library packages",
	}
	a.Run = func(pkg *Package) []Diagnostic {
		if pkg.Name == "main" {
			return nil
		}
		for _, exempt := range printExemptPkgs {
			if importPathIs(pkg.ImportPath, exempt) {
				return nil
			}
		}
		var diags []Diagnostic
		report := func(n ast.Node, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:     pkg.Fset.Position(n.Pos()),
				Rule:    a.Name,
				Message: fmt.Sprintf(format, args...),
			})
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
						report(call, "builtin %s in library package; use obs.Logger or return the value", b.Name())
						return true
					}
				}
				obj := calleeFunc(pkg.Info, call)
				if obj == nil || obj.Type().(*types.Signature).Recv() != nil {
					return true
				}
				switch {
				case pathIs(obj.Pkg(), "fmt") && (obj.Name() == "Print" || obj.Name() == "Printf" || obj.Name() == "Println"):
					report(call, "fmt.%s writes to stdout from a library package; use obs.Logger or return the string", obj.Name())
				case pathIs(obj.Pkg(), "log") && logFuncs[obj.Name()]:
					report(call, "log.%s in library package; log through obs.Logger so callers control level and sink", obj.Name())
				}
				return true
			})
		}
		return diags
	}
	return a
}
