// Package lint is the project's static-analysis suite: five analyzers
// built on go/parser, go/ast and go/types alone (dependencies are
// resolved from `go list -export` compiler export data, so go.mod
// stays zero-dependency), driven by cmd/vup-lint.
//
// Every rule is grounded in a bug class this repository has actually
// hit or structurally risks, and moves an invariant that was enforced
// by after-the-fact golden tests into build-time enforcement:
//
//   - determinism: the figure pipeline must be byte-identical across
//     runs and worker counts (PR 2's TestDeterminismAcrossWorkers, PR
//     4's 48-case golden suite). Wall-clock reads (time.Now), raw
//     math/rand, and a shared *randx.RNG captured by a parallel worker
//     closure each break that silently — the last one only under
//     scheduler-dependent interleavings, which no golden test can
//     reliably catch. Scope: internal/{core, experiments, fleet,
//     featsel, regress, stats}.
//
//   - floatsafety: PR 3 shipped a fix for summarize emitting NaN into
//     JSON on an empty dataset — encoding/json fails with
//     UnsupportedValueError at request time, long after the bad value
//     was computed. The rule flags exact float ==/!=, float map keys,
//     and float quotients reaching a JSON encoder in functions with no
//     math.IsNaN guard, so that class is caught at lint time.
//
//   - errdiscipline: PR 3 also had to retrofit error counting onto
//     writeJSON because Encode failures after the header was sent
//     vanished. A call statement that discards a trailing error is
//     flagged; `_ =` assignment, defer/go statements, fmt.Print* to
//     stdout, and writes into strings.Builder/bytes.Buffer are
//     deliberately exempt.
//
//   - metricnames: obs.Registry panics at init when a name is
//     re-registered with a different shape, and Prometheus tooling
//     assumes the _total/_seconds/_entries/_in_flight/_bytes/_vehicles
//     suffix grammar.
//     Names must be compile-time constants matching the convention and
//     be registered at exactly one site process-wide.
//
//   - printhygiene: library output must flow through obs.Logger or
//     return values — a stray fmt.Print in a library corrupts the
//     byte-exact stdout the experiment binaries are diffed on.
//     cmd/, examples/ (package main) and internal/textplot are exempt.
//
// Suppression is per-line and must be justified:
//
//	//lint:allow <rule> <reason>
//
// placed trailing the flagged line or on the line directly above. A
// directive with no reason, or one that suppresses nothing, is itself
// a diagnostic — suppressions cannot rot silently.
package lint
