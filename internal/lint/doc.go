// Package lint is the project's static-analysis suite: nine analyzers
// built on go/parser, go/ast and go/types alone (dependencies are
// resolved from `go list -export` compiler export data, so go.mod
// stays zero-dependency), driven by cmd/vup-lint. Five rules are
// per-node AST checks; four (pinleak, lockhold, ctxwait, deferinloop)
// are flow-aware, built on the intraprocedural CFG and worklist
// dataflow engine in cfg.go and dataflow.go.
//
// Every rule is grounded in a bug class this repository has actually
// hit or structurally risks, and moves an invariant that was enforced
// by after-the-fact golden tests into build-time enforcement:
//
//   - determinism: the figure pipeline must be byte-identical across
//     runs and worker counts (PR 2's TestDeterminismAcrossWorkers, PR
//     4's 48-case golden suite). Wall-clock reads (time.Now), raw
//     math/rand, and a shared *randx.RNG captured by a parallel worker
//     closure each break that silently — the last one only under
//     scheduler-dependent interleavings, which no golden test can
//     reliably catch. Scope: internal/{core, experiments, fleet,
//     featsel, regress, stats}.
//
//   - floatsafety: PR 3 shipped a fix for summarize emitting NaN into
//     JSON on an empty dataset — encoding/json fails with
//     UnsupportedValueError at request time, long after the bad value
//     was computed. The rule flags exact float ==/!=, float map keys,
//     and float quotients reaching a JSON encoder in functions with no
//     math.IsNaN guard, so that class is caught at lint time.
//
//   - errdiscipline: PR 3 also had to retrofit error counting onto
//     writeJSON because Encode failures after the header was sent
//     vanished. A call statement that discards a trailing error is
//     flagged; `_ =` assignment, defer/go statements, fmt.Print* to
//     stdout, and writes into strings.Builder/bytes.Buffer are
//     deliberately exempt. One deferred shape IS flagged: `defer
//     f.Close()` on a file the function opened for writing (os.Create,
//     or os.OpenFile with write flags) with no explicit Close anywhere
//     else — Close flushes the final write, so the bare defer is where
//     a short write vanishes. An explicit success-path Close (the
//     defer then backstops early returns only) or a deferred closure
//     capturing the error silences it.
//
//   - metricnames: obs.Registry panics at init when a name is
//     re-registered with a different shape, and Prometheus tooling
//     assumes the _total/_seconds/_entries/_in_flight/_bytes/_vehicles
//     suffix grammar.
//     Names must be compile-time constants matching the convention and
//     be registered at exactly one site process-wide.
//
//   - printhygiene: library output must flow through obs.Logger or
//     return values — a stray fmt.Print in a library corrupts the
//     byte-exact stdout the experiment binaries are diffed on.
//     cmd/, examples/ (package main) and internal/textplot are exempt.
//
//   - pinleak (flow): every release func handed out by
//     (*server.Store).Acquire, and every span from trace.Start or
//     Collector.StartTrace, must reach its release()/End() on every
//     path out of the acquiring function — a leaked pin permanently
//     defeats -resident-budget eviction; a leaked span vanishes from
//     its trace. Branch refinement understands `if err != nil` (the
//     creator returned no handle on the failure path) and `if sp !=
//     nil` guards. Discarding the handle outright (`_`) is flagged
//     immediately.
//
//   - lockhold (flow): no blocking operation — known-blocking stdlib
//     and repo IO (os.File methods, fstore.Dir, server.Store faulting
//     paths), channel send/receive, a select with no default, a call
//     through a func value, or a same-package helper that transitively
//     blocks — while a sync.RWMutex is held. This is the PR 8
//     Store.Put fsync-under-lock incident as a rule. Scoped to
//     RWMutex: in this codebase an RWMutex marks a read-serving lock
//     whose holder stalls the fleet, while a plain Mutex (fstore.Dir)
//     deliberately serializes writers around IO.
//
//   - ctxwait: in internal/server, a select or bare receive/send on a
//     signal channel (chan struct{} — flight.done, leader handoffs,
//     semaphore slots) must carry a ctx.Done() case or a default. The
//     PR 8 coalescing incident as a rule: a canceled request kept
//     blocking on a forecast build it no longer wanted.
//
//   - deferinloop: defer of a release-shaped call (a niladic func
//     value, Unlock/RUnlock, Close, End) inside a loop body runs at
//     function return, not per iteration — on the /v1/vehicles sweep
//     shape that pins the whole fleet at once.
//
// # The CFG engine: scope and limits
//
// cfg.go builds one control-flow graph per function body (function
// literals are separate units), with basic blocks of statement-level
// nodes and branch/loop/switch/select/goto/label/panic-aware edges;
// dataflow.go runs a worklist fixpoint over uint64 bitset states with
// union merges — a "may" analysis — plus optional branch-condition
// refinement on edges. Its limits are deliberate, and shared by every
// flow rule:
//
//   - Intraprocedural only. No cross-function path tracking: lockhold
//     summarizes same-package callees (one level of "does this helper
//     block?"), pinleak does not follow a handle into another
//     function at all.
//
//   - Escape means trust. A pinleak handle that is returned, stored,
//     passed as an argument, or captured by a closure escapes the
//     unit, and the obligation is conservatively dropped (the same
//     stance as go vet's lostcancel) — so a handed-off release func is
//     the caller's responsibility, silently.
//
//   - Defers are position-insensitive. `defer release()` discharges
//     the obligation where the defer statement executes, which is
//     sound for pairing but means an overwrite of the handle variable
//     after the defer is not caught. lockhold skips defer and go
//     statement bodies entirely: a deferred Unlock's ordering at
//     function exit is not judgeable path-insensitively.
//
//   - Reachability is syntactic. `if false { ... }` branches and
//     other constant conditions are considered reachable; panic,
//     os.Exit, runtime.Goexit, log.Fatal* and an empty select{}
//     terminate a path.
//
// Suppression is per-line and must be justified:
//
//	//lint:allow <rule> <reason>
//
// placed trailing the flagged line or on the line directly above. A
// directive with no reason, or one that suppresses nothing, is itself
// a diagnostic — suppressions cannot rot silently.
package lint
