// Package fixture exercises the //lint:allow machinery against the
// flow rules: a well-formed allow suppresses exactly one finding, a
// reasonless allow is malformed (and suppresses nothing), and an allow
// that matches no finding is dead. Loaded as vup/internal/server so
// pinleak's receiver match and ctxwait's package scope both apply.
package server

import (
	"context"
	"errors"
	"sync"
)

type Dataset struct{ ID string }

type Store struct {
	mu  sync.RWMutex
	res map[string]*Dataset
}

func (s *Store) Acquire(ctx context.Context, id string) (*Dataset, func(), error) {
	d, ok := s.res[id]
	if !ok {
		return nil, nil, errors.New("unknown vehicle")
	}
	return d, func() {}, nil
}

// A well-formed trailing allow suppresses the pinleak finding.
func pinAllowed(ctx context.Context, s *Store) {
	_, _, _ = s.Acquire(ctx, "v") //lint:allow pinleak fixture: the pin is deliberately dropped to warm the cache
}

// Releasing a held semaphore slot can never block.
func semRelease(sem chan struct{}) {
	<-sem //lint:allow ctxwait fixture: releasing a held slot never blocks
}

// The builder is a pure in-memory constructor.
func lockAllowed(s *Store, build func() *Dataset) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.res["v"] = build() //lint:allow lockhold fixture: build is a pure constructor and never does IO
}

// The sweep is bounded, so deferring each release is deliberate.
func sweepAllowed(ctx context.Context, s *Store, ids []string) {
	for _, id := range ids {
		_, release, err := s.Acquire(ctx, id)
		if err != nil {
			continue
		}
		defer release() //lint:allow deferinloop fixture: the sweep is bounded to two vehicles
	}
}

// A reasonless allow is malformed: the finding it meant to suppress
// stands, and the directive itself is diagnosed alongside it.
func malformed(fl chan struct{}) {
	<-fl //lint:allow ctxwait
}

//lint:allow pinleak dead directive: the function below is clean
func clean(ctx context.Context, s *Store) error {
	_, release, err := s.Acquire(ctx, "v")
	if err != nil {
		return err
	}
	release()
	return nil
}
