// Package fixture exercises ctxwait: a wait on a signal channel (chan
// struct{}) in internal/server must be cancelable via ctx.Done() or a
// default case. Loaded as vup/internal/server to be in the rule's
// scope.
package server

import "context"

// flight mirrors the forecast cache's in-flight build record.
type flight struct {
	done chan struct{}
	val  any
}

// The verbatim PR 8 incident: a coalesced waiter blocks on the leader
// with no way out when its own request is canceled.
func waitIncident(fl *flight) any {
	<-fl.done // want ctxwait "bare receive"
	return fl.val
}

// A select without a Done case is the same bug with extra steps.
func waitSelect(fl *flight, results chan any) any {
	select { // want ctxwait "no ctx.Done"
	case <-fl.done:
		return fl.val
	case r := <-results:
		return r
	}
}

// The fixed shape: the waiter honours cancellation. Silent.
func waitFixed(ctx context.Context, fl *flight) (any, error) {
	select {
	case <-fl.done:
		return fl.val, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// A poll with a default never blocks (the ingest backpressure gate).
// Silent.
func tryAcquire(sem chan struct{}) bool {
	select {
	case sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// A bare send on a signal channel has no escape hatch either.
func handoff(leader chan struct{}) {
	leader <- struct{}{} // want ctxwait "bare send"
}

// Typed-payload channels are out of scope: the rule targets the
// signal-channel idiom, not all channel use.
func consume(ch chan int) int {
	return <-ch
}
