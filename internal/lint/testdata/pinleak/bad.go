// Package fixture exercises pinleak: every (*Store).Acquire release
// func and every trace span must reach its release/End on all paths.
// The package is loaded as vup/internal/server so the receiver match
// fires on the local Store mirror; spans come from the real
// vup/internal/obs/trace package.
package server

import (
	"context"
	"errors"

	"vup/internal/obs/trace"
)

// Dataset stands in for etl.VehicleDataset.
type Dataset struct{ ID string }

// Store mirrors the real store's pin contract: Acquire returns the
// dataset, fingerprint, generation, a release func and an error.
type Store struct{ res map[string]*Dataset }

func (s *Store) Acquire(ctx context.Context, id string) (*Dataset, uint64, uint64, func(), error) {
	d, ok := s.res[id]
	if !ok {
		return nil, 0, 0, nil, errors.New("unknown vehicle")
	}
	return d, 0, 0, func() {}, nil
}

// The seeded PR 9 incident: an early return between Acquire and
// release leaks the pin, permanently defeating -resident-budget
// eviction for that vehicle.
func leaky(s *Store, id string) error {
	_, _, _, release, err := s.Acquire(context.Background(), id) // want pinleak "not called on every path"
	if err != nil {
		return err
	}
	if id == "" {
		return errors.New("empty id") // the pin leaks here
	}
	release()
	return nil
}

// defer pairs the pin on every path, early returns included. Silent.
func deferred(s *Store, id string) error {
	_, _, _, release, err := s.Acquire(context.Background(), id)
	if err != nil {
		return err
	}
	defer release()
	if id == "" {
		return errors.New("empty id")
	}
	return nil
}

// Discarding the release func outright can never pair it.
func discarded(s *Store, id string) {
	_, _, _, _, _ = s.Acquire(context.Background(), id) // want pinleak "discarded"
}

// Per-iteration release, with the error path skipping via continue:
// the err != nil refinement knows the release func is nil there.
// This is the /v1/vehicles sweep after its fix. Silent.
func sweep(s *Store, ids []string) int {
	n := 0
	for _, id := range ids {
		d, _, _, release, err := s.Acquire(context.Background(), id)
		if err != nil {
			continue
		}
		if d != nil {
			n++
		}
		release()
	}
	return n
}

// A break between Acquire and release leaks that iteration's pin.
func sweepBreak(s *Store, ids []string) {
	for _, id := range ids {
		_, _, _, release, err := s.Acquire(context.Background(), id) // want pinleak "not called on every path"
		if err != nil {
			continue
		}
		if id == "stop" {
			break // leaks: release skipped
		}
		release()
	}
}

// Returning the release func hands the obligation to the caller
// (the API.vehicle helper shape). Silent.
func handoff(s *Store, id string) (func(), error) {
	_, _, _, release, err := s.Acquire(context.Background(), id)
	if err != nil {
		return nil, err
	}
	return release, nil
}

// A span that an early error return skips past is lost from its trace.
func spanLeak(ctx context.Context, work func() error) error {
	_, sp := trace.Start(ctx, "fixture.work") // want pinleak "not called on every path"
	if err := work(); err != nil {
		return err // the span is never ended
	}
	sp.End()
	return nil
}

// SetError + End on the single exit path. Silent.
func spanClean(ctx context.Context, work func() error) error {
	_, sp := trace.Start(ctx, "fixture.work")
	err := work()
	sp.SetError(err)
	sp.End()
	return err
}

// The middleware shape: a nil-guarded span from a Collector. The nil
// branch has nothing to end; the non-nil branch ends it. Silent.
func spanNilGuard(ctx context.Context, c *trace.Collector) {
	_, sp := c.StartTrace(ctx, "GET /fixture")
	if sp != nil {
		sp.SetAttrInt("status", 200)
		sp.End()
	}
}

// A span captured by a closure escapes: the closure owns the End.
func spanClosure(ctx context.Context) func() {
	_, sp := trace.Start(ctx, "fixture.bg")
	return func() { sp.End() }
}

// panic paths are not leaks: the function never returns through them.
func spanPanic(ctx context.Context, ok bool) {
	_, sp := trace.Start(ctx, "fixture.check")
	if !ok {
		panic("invariant violated")
	}
	sp.End()
}
