// Package fixture exercises printhygiene in a library package: all
// default-sink printing fires.
package fixture

import (
	"fmt"
	"log"
	"os"

	"vup/internal/obs"
)

func chatty(x int) {
	fmt.Println("x =", x) // want printhygiene "fmt.Println"
	fmt.Printf("%d\n", x) // want printhygiene "fmt.Printf"
	fmt.Print(x)          // want printhygiene "fmt.Print"
	log.Printf("x=%d", x) // want printhygiene "log.Printf"
	log.Fatalln("boom")   // want printhygiene "log.Fatalln"
	println("debug", x)   // want printhygiene "builtin println"
}

func quiet(x int) string {
	obs.DefaultLogger().Info("computed", "x", x)
	if _, err := fmt.Fprintf(os.Stderr, "x=%d\n", x); err != nil {
		return ""
	}
	return fmt.Sprintf("%d", x)
}
