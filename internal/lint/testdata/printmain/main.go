// Command fixture proves the printhygiene main-package exemption:
// a binary owns its stdout.
package main

import "fmt"

func main() {
	fmt.Println("binaries may print")
}
