// Package fixture exercises errdiscipline: bare call statements that
// drop errors fire; the deliberate exemptions stay silent.
package fixture

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strings"
)

func dropsErrors(f *os.File, enc *json.Encoder) {
	fmt.Fprintf(f, "header\n") // want errdiscipline "fmt.Fprintf"
	enc.Encode("payload")      // want errdiscipline "enc.Encode"
	f.Close()                  // want errdiscipline "f.Close"
	os.Remove("scratch")       // want errdiscipline "os.Remove"
}

func exemptions(f *os.File, v any) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d\n", 1) // strings.Builder never fails
	sb.WriteString("tail")        // method on strings.Builder

	var buf bytes.Buffer
	fmt.Fprintln(&buf, "x") // bytes.Buffer never fails
	buf.WriteByte('!')      // method on bytes.Buffer

	h := fnv.New64a()
	h.Write([]byte("key")) // hash.Hash.Write never fails

	fmt.Println("progress") // stdout prints are printhygiene's turf

	defer f.Close()          // defer on a handle of unknown origin is exempt
	_ = os.Remove("scratch") // explicit blank is the audit trail
	return sb.String() + buf.String()
}

// A deferred Close on a file this function opened for writing swallows
// the final write error — Close is where the last buffered bytes land.
func writableDefer(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want errdiscipline "writable file"
	_, err = f.WriteString("data")
	return err
}

// Read-only handles stay exempt: Close on a read path has nothing to
// report.
func readOnlyDefer(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.ReadAll(f)
	return err
}

// The recommended shape: an explicit Close on the success path, with
// the defer kept as a safety net for the early returns. Silent.
func writableChecked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteString("data"); err != nil {
		return err
	}
	return f.Close()
}

// Capturing the error in a deferred closure also counts: the Close
// lives in its own unit and its error reaches the caller. Silent.
func writableCaptured(path string) (err error) {
	f, cerr := os.Create(path)
	if cerr != nil {
		return cerr
	}
	defer func() {
		if closeErr := f.Close(); closeErr != nil && err == nil {
			err = closeErr
		}
	}()
	_, err = f.WriteString("data")
	return err
}

// os.OpenFile is judged by its flags: a read-only open stays exempt, a
// write-mode one fires.
func openFileFlags(path string) error {
	r, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer r.Close()
	w, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer w.Close() // want errdiscipline "writable file"
	_, err = w.WriteString("x")
	return err
}

// realWriter shows the io.Writer case stays flagged even though the
// hash.Hash exemption keys on the same embedded Write method.
func realWriter(w io.Writer) {
	w.Write([]byte("x")) // want errdiscipline "w.Write"
}

func bestEffort(f *os.File) {
	f.Sync() //lint:allow errdiscipline best-effort flush on shutdown path
}

var _ = exemptions
