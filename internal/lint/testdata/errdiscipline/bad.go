// Package fixture exercises errdiscipline: bare call statements that
// drop errors fire; the deliberate exemptions stay silent.
package fixture

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strings"
)

func dropsErrors(f *os.File, enc *json.Encoder) {
	fmt.Fprintf(f, "header\n") // want errdiscipline "fmt.Fprintf"
	enc.Encode("payload")      // want errdiscipline "enc.Encode"
	f.Close()                  // want errdiscipline "f.Close"
	os.Remove("scratch")       // want errdiscipline "os.Remove"
}

func exemptions(f *os.File, v any) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d\n", 1) // strings.Builder never fails
	sb.WriteString("tail")        // method on strings.Builder

	var buf bytes.Buffer
	fmt.Fprintln(&buf, "x") // bytes.Buffer never fails
	buf.WriteByte('!')      // method on bytes.Buffer

	h := fnv.New64a()
	h.Write([]byte("key")) // hash.Hash.Write never fails

	fmt.Println("progress") // stdout prints are printhygiene's turf

	defer f.Close()          // defer is exempt by design
	_ = os.Remove("scratch") // explicit blank is the audit trail
	return sb.String() + buf.String()
}

// realWriter shows the io.Writer case stays flagged even though the
// hash.Hash exemption keys on the same embedded Write method.
func realWriter(w io.Writer) {
	w.Write([]byte("x")) // want errdiscipline "w.Write"
}

func bestEffort(f *os.File) {
	f.Sync() //lint:allow errdiscipline best-effort flush on shutdown path
}

var _ = exemptions
