// Package fixture exercises every floatsafety check: computed
// comparison, float map keys, and unguarded NaN-to-JSON flows.
// Comparisons against compile-time constants are exempt by design.
package fixture

import (
	"encoding/json"
	"io"
	"math"
)

// lookup keys a map on raw floats.
var lookup map[float64]string // want floatsafety "map key"

func equalComputed(a, b float64) bool {
	return a == b // want floatsafety "exact floating-point =="
}

func notEqualComputed(a, b float64) bool {
	return a+1 != b // want floatsafety "exact floating-point !="
}

// zeroGuard and sentinel compare against constants: exempt.
func zeroGuard(x float64) bool { return x == 0 }
func sentinel(x float64) bool  { return x == math.MaxFloat64 }

func equalInts(a, b int) bool { return a == b }

// meanUnguarded is the PR 3 summarize bug in miniature: an empty input
// makes mean 0/0 = NaN, which json.Marshal rejects at encode time.
func meanUnguarded(xs []float64) ([]byte, error) {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	return json.Marshal(map[string]float64{"mean": mean}) // want floatsafety "NaN reaches json.Marshal"
}

// encodeNaN feeds math.NaN straight to an encoder.
func encodeNaN(w io.Writer) error {
	return json.NewEncoder(w).Encode([]float64{math.NaN()}) // want floatsafety "NaN reaches"
}

// meanGuarded calls math.IsNaN before encoding, so the flow is silent.
func meanGuarded(xs []float64) ([]byte, error) {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if math.IsNaN(mean) {
		mean = 0
	}
	return json.Marshal(map[string]float64{"mean": mean})
}

// encodeInts has no float flow at all.
func encodeInts(w io.Writer, counts []int) error {
	return json.NewEncoder(w).Encode(counts)
}

// bitsEqual documents an intentional computed comparison.
func bitsEqual(a, b float64) bool {
	return a == b //lint:allow floatsafety exact bitwise equality intended for cache-key comparison
}
