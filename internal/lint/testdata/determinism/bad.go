// Package fixture is loaded by the analyzer tests with the import
// path of a deterministic package, so every rule in the determinism
// analyzer must fire here.
package fixture

import (
	"context"
	"math/rand" // want determinism "imports math/rand"
	"time"

	"vup/internal/parallel"
	"vup/internal/randx"
)

// wallClock trips the time.Now ban.
func wallClock() int64 {
	return time.Now().Unix() // want determinism "time.Now"
}

// rawRand uses the forbidden import so the file compiles.
func rawRand() int {
	return rand.Int()
}

// sharedRNG captures one generator inside the worker closure: draws
// then depend on goroutine interleaving.
func sharedRNG(n int) error {
	rng := randx.New(1)
	out := make([]float64, n)
	return parallel.ForEach(context.Background(), n, parallel.Options{}, func(_ context.Context, i int) error {
		out[i] = rng.Float64() // want determinism "captures shared"
		return nil
	})
}

// splitRNG is the sanctioned shape: per-job generators derived in a
// fixed order before the fan-out, indexed inside it. No diagnostics.
func splitRNG(n int) error {
	root := randx.New(1)
	rngs := make([]*randx.RNG, n)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	out := make([]float64, n)
	return parallel.ForEach(context.Background(), n, parallel.Options{}, func(_ context.Context, i int) error {
		local := rngs[i]
		out[i] = local.Float64()
		return nil
	})
}

// allowedClock shows a justified suppression: no diagnostic survives.
func allowedClock() float64 {
	start := time.Now() //lint:allow determinism fixture stage timer, observability only
	return time.Since(start).Seconds()
}
