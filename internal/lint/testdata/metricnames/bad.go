// Package fixture exercises metricnames: convention suffixes,
// compile-time-constant names, and single registration.
package fixture

import "vup/internal/obs"

var (
	goodCounter = obs.Default.Counter("demo_requests_total", "Requests served.")
	goodGauge   = obs.Default.Gauge("demo_queue_in_flight", "Jobs in flight.")
	goodHist    = obs.Default.Histogram("demo_wait_seconds", "Wait time.", nil)
	goodEntries = obs.Default.Gauge("demo_cache_entries", "Cached artifacts.")
	goodBytes   = obs.Default.Gauge("demo_resident_bytes", "Resident heap estimate.")
	goodCount   = obs.Default.Gauge("demo_resident_vehicles", "Resident datasets.")

	goodExemplar = obs.Default.HistogramWithExemplars("demo_latency_seconds", "Latency.", nil)

	badSuffix   = obs.Default.Gauge("demo_queue_depth", "Depth.")                           // want metricnames "violates convention"
	badCase     = obs.Default.Counter("Demo_requests_total", "Bad.")                        // want metricnames "violates convention"
	duplicate   = obs.Default.Counter("demo_requests_total", "Again.")                      // want metricnames "already registered"
	badExemplar = obs.Default.HistogramWithExemplars("demo_latency_exemplars", "Bad.", nil) // want metricnames "violates convention"
	dupExemplar = obs.Default.HistogramWithExemplars("demo_latency_seconds", "Again.", nil) // want metricnames "already registered"
)

func dynamic(name string) *obs.CounterVec {
	return obs.Default.Counter(name, "Dynamic.") // want metricnames "compile-time string constant"
}

func constName() *obs.CounterVec {
	const n = "demo_named_total"
	return obs.Default.Counter(n, "Constant-folded names are fine.")
}
