// Package fixture exercises deferinloop: a release-shaped defer in a
// loop body runs at function return, holding every iteration's
// resource at once.
package fixture

import (
	"os"
	"sync"
)

// The /v1/vehicles sweep shape: deferring each iteration's release
// would pin the entire fleet until the function returns, defeating
// -resident-budget eviction fleet-wide.
func sweepIncident(ids []string, acquire func(string) (func(), error)) {
	for _, id := range ids {
		release, err := acquire(id)
		if err != nil {
			continue
		}
		defer release() // want deferinloop "release"
	}
}

// Per-iteration release is the fixed shape. Silent.
func sweepFixed(ids []string, acquire func(string) (func(), error)) {
	for _, id := range ids {
		release, err := acquire(id)
		if err != nil {
			continue
		}
		release()
	}
}

var mu sync.Mutex

func lockedLoop(items []int) {
	for range items {
		mu.Lock()
		defer mu.Unlock() // want deferinloop "mu.Unlock"
	}
}

func fileLoop(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close() // want deferinloop "f.Close"
	}
	return nil
}

// A defer inside a closure created in the loop belongs to the
// closure: it runs when the closure returns, once per call. Silent.
func closureLoop(items []int, run func(func())) {
	for range items {
		run(func() {
			mu.Lock()
			defer mu.Unlock()
		})
	}
}

// Non-release defers in loops are odd but not a leak amplifier.
// Silent.
func logLoop(items []int, log func(int)) {
	for i := range items {
		defer func(n int) { log(n) }(i)
	}
}
