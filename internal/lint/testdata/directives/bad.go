// Package fixture exercises the //lint:allow machinery itself: a
// directive without a reason is malformed (and suppresses nothing), a
// justified one works, and one that matches no diagnostic is reported
// as dead. Expectations for this package are asserted in code, not
// want comments, because the interesting lines already carry their
// directive as the trailing comment.
package fixture

import "os"

func unjustified() {
	os.Remove("a") //lint:allow errdiscipline
}

func justified() {
	os.Remove("b") //lint:allow errdiscipline best-effort cleanup of a scratch file
}

//lint:allow printhygiene nothing on the next line ever fires
func quiet() {}
