// Package fixture exercises lockhold: no blocking operation while a
// sync.RWMutex is held. The Store here mirrors the server store's
// locking shape — a store-wide RWMutex on the read path plus an
// injected persistence hook.
package fixture

import (
	"os"
	"sync"
)

type dataset struct{ id string }

type Store struct {
	mu      sync.RWMutex
	data    map[string]*dataset
	persist func(*dataset) error
}

// The verbatim PR 8 incident: persist (a disk fsync) runs under the
// store-wide lock, stalling every reader for the disk round-trip.
func (s *Store) PutIncident(d *dataset) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.persist != nil {
		if err := s.persist(d); err != nil { // want lockhold "func value"
			return err
		}
	}
	s.data[d.id] = d
	return nil
}

// The fixed shape: persist first, then take the lock only for the
// in-memory swap. Silent.
func (s *Store) PutFixed(d *dataset) error {
	if s.persist != nil {
		if err := s.persist(d); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.data[d.id] = d
	s.mu.Unlock()
	return nil
}

// Direct file IO inside an explicit lock region.
func (s *Store) Snapshot(f *os.File) error {
	s.mu.Lock()
	err := f.Sync() // want lockhold "os.File.Sync"
	s.mu.Unlock()
	return err
}

// Blocking hidden one call deep in the same package: the transitive
// summary still sees the os.WriteFile.
func (s *Store) Flush(path string, b []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return writeFileSync(path, b) // want lockhold "blocks"
}

func writeFileSync(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

// A channel send can park the goroutine with the read lock held.
func (s *Store) Notify(ch chan string, id string) {
	s.mu.RLock()
	ch <- id // want lockhold "channel send"
	s.mu.RUnlock()
}

// Releasing before the send is the fix. Silent.
func (s *Store) NotifyFixed(ch chan string, id string) {
	s.mu.RLock()
	_, ok := s.data[id]
	s.mu.RUnlock()
	if ok {
		ch <- id
	}
}

// Branchy unlock: only one path still holds the lock at the IO.
func (s *Store) Lookup(f *os.File, id string) error {
	s.mu.RLock()
	_, ok := s.data[id]
	if !ok {
		s.mu.RUnlock()
		return nil
	}
	err := f.Sync() // want lockhold "os.File.Sync"
	s.mu.RUnlock()
	return err
}

// A plain sync.Mutex serializing writers around IO is out of scope by
// design — that is fstore.Dir's deliberate shape. Silent.
type journal struct {
	mu sync.Mutex
}

func (j *journal) appendEntry(f *os.File, b []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err := f.Write(b)
	return err
}
