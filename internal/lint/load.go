package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// exportImporter resolves imports from compiler export data produced
// by `go list -export`. It wraps the standard gc importer so go.mod
// stays free of golang.org/x/tools.
type exportImporter struct {
	gc      types.Importer
	exports map[string]string // import path -> export data file
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	imp := &exportImporter{exports: exports}
	imp.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
	return imp
}

func (i *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.Import(path)
}

// goList runs `go list -deps -export -json args...` in dir and returns
// the decoded package stream.
func goList(dir string, args []string) ([]*listPackage, error) {
	cmdArgs := append([]string{"list", "-deps", "-export", "-json"}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load type-checks the packages matched by patterns (e.g. "./...")
// relative to dir. Dependencies — standard library and intra-module
// alike — are resolved from compiler export data, so only the matched
// packages are parsed from source. Loading fails if any package fails
// to build: the suite lints compiling trees only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*listPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		exports[p.ImportPath] = p.Export
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := typeCheck(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the non-test .go files in one
// directory as a package with the given import path. It exists for
// fixture packages under testdata, which go list refuses to see; the
// import path is caller-chosen so path-sensitive analyzers (e.g.
// determinism's deterministic-package set) can be exercised. Imports
// are resolved through `go list -export`, so fixtures may import both
// the standard library and this module's packages.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}

	fset := token.NewFileSet()
	parsed, err := parseFiles(fset, files)
	if err != nil {
		return nil, err
	}

	// Resolve the fixture's imports to export data in one go list call.
	seen := map[string]bool{}
	var imports []string
	for _, f := range parsed {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || path == "unsafe" || seen[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		listed, err := goList(dir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			exports[p.ImportPath] = p.Export
		}
	}

	imp := newExportImporter(fset, exports)
	return typeCheckParsed(fset, imp, importPath, dir, parsed)
}

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	files := make([]*ast.File, len(paths))
	for i, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	return files, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, importPath, dir string, paths []string) (*Package, error) {
	parsed, err := parseFiles(fset, paths)
	if err != nil {
		return nil, err
	}
	return typeCheckParsed(fset, imp, importPath, dir, parsed)
}

func typeCheckParsed(fset *token.FileSet, imp types.Importer, importPath, dir string, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Dir:        dir,
		Fset:       fset,
		Files:      parsed,
		Pkg:        tpkg,
		Info:       info,
	}, nil
}
