package lint

// Intraprocedural control-flow graph over go/ast, the substrate the
// flow-sensitive analyzers (pinleak, lockhold) run on. The graph is
// deliberately simple: basic blocks of statement/expression nodes,
// edges optionally annotated with the branch condition they refine on,
// and per-block exit markers. Function literals are opaque — each gets
// its own graph — and a node list never contains the statements of a
// nested block, so an analyzer can inspect a block's nodes with
// inspectShallow without double-visiting anything.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// cfgEdge is one control transfer. When cond is non-nil the edge is
// only taken when cond evaluates to taken, which lets a dataflow
// refine its state on branches ("if err != nil" discharges an
// obligation whose release is nil on the error path).
type cfgEdge struct {
	to    *cfgBlock
	cond  ast.Expr
	taken bool
}

// cfgBlock is one basic block: nodes execute in order, then control
// follows one of succs (or leaves the function).
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []cfgEdge

	// ret is the explicit return ending the block, nil when the block
	// exits by falling off the end of the function body.
	ret *ast.ReturnStmt
	// exits marks a block where control leaves the function normally.
	exits bool
	// panics marks a block ending in panic/os.Exit/log.Fatal*: the
	// function never returns from it, so must-pair checks skip it.
	panics bool
}

// funcCFG is the graph of one function body. end is the closing brace,
// used to describe fall-off-the-end exits in messages.
type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
	end    token.Pos
}

// buildCFG constructs the graph of one function body. info may be nil
// when no terminal-call detection is wanted (tests).
func buildCFG(info *types.Info, body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{
		info:   info,
		g:      &funcCFG{end: body.Rbrace},
		labels: map[string]*labelTargets{},
	}
	b.g.entry = b.newBlock()
	if end := b.stmtList(b.g.entry, body.List); end != nil {
		end.exits = true
	}
	return b.g
}

// labelTargets is the jump surface of one label: entry for goto, brk
// and cont when the labeled statement is a loop/switch/select.
type labelTargets struct {
	entry     *cfgBlock
	brk, cont *cfgBlock
}

type cfgBuilder struct {
	info *types.Info
	g    *funcCFG

	breaks    []*cfgBlock // innermost-last break targets
	continues []*cfgBlock // innermost-last continue targets
	fallth    *cfgBlock   // next case clause, inside a switch body

	labels       map[string]*labelTargets
	pendingLabel string // label naming the next loop/switch processed
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock, cond ast.Expr, taken bool) {
	from.succs = append(from.succs, cfgEdge{to: to, cond: cond, taken: taken})
}

func (b *cfgBuilder) label(name string) *labelTargets {
	lt, ok := b.labels[name]
	if !ok {
		lt = &labelTargets{entry: b.newBlock()}
		b.labels[name] = lt
	}
	return lt
}

// takePendingLabel claims the label attached to the statement being
// processed, so its break/continue targets can be registered.
func (b *cfgBuilder) takePendingLabel() *labelTargets {
	if b.pendingLabel == "" {
		return nil
	}
	lt := b.label(b.pendingLabel)
	b.pendingLabel = ""
	return lt
}

// stmtList threads cur through stmts. A nil return means control never
// reaches past the list (every path returned, jumped or panicked).
func (b *cfgBuilder) stmtList(cur *cfgBlock, stmts []ast.Stmt) *cfgBlock {
	for _, s := range stmts {
		if cur == nil {
			// Unreachable code after a terminating statement; keep
			// building (a label inside may make it reachable again) in
			// a block with no predecessors.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt extends the graph with one statement and returns the block
// holding the fall-through continuation, or nil when control diverges.
func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt) *cfgBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		then := b.newBlock()
		after := b.newBlock()
		b.edge(cur, then, s.Cond, true)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, els, s.Cond, false)
			if end := b.stmt(els, s.Else); end != nil {
				b.edge(end, after, nil, false)
			}
		} else {
			b.edge(cur, after, s.Cond, false)
		}
		if end := b.stmt(then, s.Body); end != nil {
			b.edge(end, after, nil, false)
		}
		return after

	case *ast.ForStmt:
		lt := b.takePendingLabel()
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		header := b.newBlock()
		b.edge(cur, header, nil, false)
		body := b.newBlock()
		after := b.newBlock()
		if s.Cond != nil {
			header.nodes = append(header.nodes, s.Cond)
			b.edge(header, body, s.Cond, true)
			b.edge(header, after, s.Cond, false)
		} else {
			b.edge(header, body, nil, false)
		}
		cont := header
		if s.Post != nil {
			post := b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			b.edge(post, header, nil, false)
			cont = post
		}
		if lt != nil {
			// cur is already the label's entry block (LabeledStmt
			// threads it through), so only the jump targets register.
			lt.brk, lt.cont = after, cont
		}
		b.breaks = append(b.breaks, after)
		b.continues = append(b.continues, cont)
		end := b.stmt(body, s.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		if end != nil {
			b.edge(end, cont, nil, false)
		}
		return after

	case *ast.RangeStmt:
		lt := b.takePendingLabel()
		header := b.newBlock()
		b.edge(cur, header, nil, false)
		// The whole RangeStmt is the header node; inspectShallow stops
		// at the body's BlockStmt, so only X/Key/Value are visible.
		header.nodes = append(header.nodes, s)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(header, body, nil, false)
		b.edge(header, after, nil, false)
		if lt != nil {
			lt.brk, lt.cont = after, header
		}
		b.breaks = append(b.breaks, after)
		b.continues = append(b.continues, header)
		end := b.stmt(body, s.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		if end != nil {
			b.edge(end, header, nil, false)
		}
		return after

	case *ast.SwitchStmt:
		return b.switchStmt(cur, s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		return b.switchStmt(cur, s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		lt := b.takePendingLabel()
		// The SelectStmt itself is a node: analyzers treat it
		// atomically (a select with no default blocks) and
		// inspectShallow never descends into the clause bodies.
		cur.nodes = append(cur.nodes, s)
		after := b.newBlock()
		if lt != nil {
			lt.brk = after
		}
		b.breaks = append(b.breaks, after)
		for _, c := range s.Body.List {
			clause := c.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(cur, cb, nil, false)
			if end := b.stmtList(cb, clause.Body); end != nil {
				b.edge(end, after, nil, false)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no successor.
			cur.panics = true
			return nil
		}
		return after

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		cur.ret = s
		cur.exits = true
		return nil

	case *ast.BranchStmt:
		var target *cfgBlock
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				target = b.label(s.Label.Name).brk
			} else if len(b.breaks) > 0 {
				target = b.breaks[len(b.breaks)-1]
			}
		case token.CONTINUE:
			if s.Label != nil {
				target = b.label(s.Label.Name).cont
			} else if len(b.continues) > 0 {
				target = b.continues[len(b.continues)-1]
			}
		case token.GOTO:
			target = b.label(s.Label.Name).entry
		case token.FALLTHROUGH:
			target = b.fallth
		}
		if target != nil {
			b.edge(cur, target, nil, false)
		}
		return nil

	case *ast.LabeledStmt:
		lt := b.label(s.Label.Name)
		b.edge(cur, lt.entry, nil, false)
		b.pendingLabel = s.Label.Name
		next := b.stmt(lt.entry, s.Stmt)
		b.pendingLabel = ""
		return next

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.isTerminalCall(call) {
			cur.panics = true
			return nil
		}
		return cur

	case *ast.EmptyStmt:
		return cur

	default:
		// Assign, Decl, IncDec, Send, Defer, Go: straight-line nodes.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchStmt builds both expression and type switches: every clause is
// an alternative successor of the header, fallthrough jumps to the
// next clause's block, and a missing default adds a skip edge.
func (b *cfgBuilder) switchStmt(cur *cfgBlock, init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) *cfgBlock {
	lt := b.takePendingLabel()
	if init != nil {
		cur.nodes = append(cur.nodes, init)
	}
	if tag != nil {
		cur.nodes = append(cur.nodes, tag)
	}
	if assign != nil {
		cur.nodes = append(cur.nodes, assign)
	}
	after := b.newBlock()
	if lt != nil {
		lt.brk = after
	}
	clauses := make([]*cfgBlock, len(body.List))
	hasDefault := false
	for i, c := range body.List {
		clauses[i] = b.newBlock()
		if c.(*ast.CaseClause).List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(cur, after, nil, false)
	}
	b.breaks = append(b.breaks, after)
	for i, c := range body.List {
		clause := c.(*ast.CaseClause)
		cb := clauses[i]
		b.edge(cur, cb, nil, false)
		for _, e := range clause.List {
			cb.nodes = append(cb.nodes, e)
		}
		if i+1 < len(clauses) {
			b.fallth = clauses[i+1]
		} else {
			b.fallth = nil
		}
		if end := b.stmtList(cb, clause.Body); end != nil {
			b.edge(end, after, nil, false)
		}
	}
	b.fallth = nil
	b.breaks = b.breaks[:len(b.breaks)-1]
	return after
}

// isTerminalCall reports whether the call never returns: the builtin
// panic, os.Exit, runtime.Goexit, or log.Fatal*.
func (b *cfgBuilder) isTerminalCall(call *ast.CallExpr) bool {
	if b.info == nil {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if blt, ok := b.info.Uses[id].(*types.Builtin); ok {
			return blt.Name() == "panic"
		}
	}
	obj := calleeFunc(b.info, call)
	if obj == nil {
		return false
	}
	switch {
	case isPkgFunc(obj, "os", "Exit"),
		isPkgFunc(obj, "runtime", "Goexit"),
		isPkgFunc(obj, "log", "Fatal"),
		isPkgFunc(obj, "log", "Fatalf"),
		isPkgFunc(obj, "log", "Fatalln"):
		return true
	}
	return false
}

// inspectShallow visits n's subtree but never descends into a nested
// BlockStmt or FuncLit — exactly the parts of a CFG node that belong
// to other blocks (or other functions). f returning false prunes the
// subtree, as with ast.Inspect.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if m != n {
			switch m.(type) {
			case *ast.BlockStmt, *ast.FuncLit:
				return false
			}
		}
		return f(m)
	})
}

// funcUnits collects every function body in the file — declarations
// and literals — each to be analyzed as its own unit.
func funcUnits(f *ast.File) []*ast.BlockStmt {
	var units []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				units = append(units, n.Body)
			}
		case *ast.FuncLit:
			units = append(units, n.Body)
		}
		return true
	})
	return units
}

// nestedFuncLits returns the function literals nested inside body (for
// escape checks: an identifier used inside one belongs to another
// analysis unit).
func nestedFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		return true
	})
	return lits
}

// posInLits reports whether pos falls inside any of the literals.
func posInLits(lits []*ast.FuncLit, pos token.Pos) bool {
	for _, lit := range lits {
		if lit.Pos() <= pos && pos <= lit.End() {
			return true
		}
	}
	return false
}
