package lint

// ctxwait: in internal/server, waiting on a signal channel (a `chan
// struct{}` — flight.done, leader handoffs, semaphore slots) must be
// cancelable. This is the PR 8 coalescing incident as a rule: a
// coalesced forecast waiter blocked on `<-fl.done` with no way out, so
// a canceled request kept waiting on a build it no longer wanted. A
// blocking select over such a channel must carry a ctx.Done() case
// (or a default, which makes it a poll); a bare receive or send on one
// has no escape hatch at all and is flagged outright.
//
// The rule is scoped to internal/server — that is where request
// contexts exist; a worker-pool channel in internal/parallel has no
// ctx to honor.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

func newCtxWait() *Analyzer {
	a := &Analyzer{
		Name: "ctxwait",
		Doc:  "a wait on a signal channel in internal/server must have a ctx.Done() escape",
	}
	a.Run = func(pkg *Package) []Diagnostic {
		if !importPathIs(pkg.ImportPath, "internal/server") {
			return nil
		}
		var diags []Diagnostic
		report := func(pos ast.Node, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:     pkg.Fset.Position(pos.Pos()),
				Rule:    a.Name,
				Message: fmt.Sprintf(format, args...),
			})
		}
		for _, f := range pkg.Files {
			// Receives/sends that are a select's comm are judged as part
			// of that select, not as bare operations.
			inSelect := map[ast.Node]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectStmt)
				if !ok {
					return true
				}
				hasDefault, hasDone, signal := false, false, ""
				for _, c := range sel.Body.List {
					clause := c.(*ast.CommClause)
					if clause.Comm == nil {
						hasDefault = true
						continue
					}
					inSelect[clause.Comm] = true
					if ch, ok := commChannel(clause.Comm); ok {
						if isDoneCall(pkg.Info, ch) {
							hasDone = true
						} else if isSignalChan(pkg.Info, ch) && signal == "" {
							signal = exprString(ch)
						}
					}
				}
				if signal != "" && !hasDefault && !hasDone {
					report(sel, "select waits on signal channel %s with no ctx.Done() case; a canceled request blocks here forever", signal)
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.UnaryExpr:
					if n.Op != token.ARROW || inSelectComm(inSelect, n) {
						return true
					}
					if isSignalChan(pkg.Info, n.X) && !isDoneCall(pkg.Info, n.X) {
						report(n, "bare receive from signal channel %s; wrap it in a select with a ctx.Done() case", exprString(n.X))
					}
				case *ast.SendStmt:
					if inSelect[n] {
						return true
					}
					if isSignalChan(pkg.Info, n.Chan) {
						report(n, "bare send to signal channel %s; wrap it in a select with a ctx.Done() case", exprString(n.Chan))
					}
				}
				return true
			})
		}
		return diags
	}
	return a
}

// inSelectComm reports whether the receive expression is (part of) a
// select comm clause — `case <-ch:` wraps the UnaryExpr in an
// ExprStmt or AssignStmt that the select pass registered.
func inSelectComm(inSelect map[ast.Node]bool, recv *ast.UnaryExpr) bool {
	for comm := range inSelect {
		if comm.Pos() <= recv.Pos() && recv.End() <= comm.End() {
			return true
		}
	}
	return false
}

// commChannel extracts the channel expression of a select comm clause.
func commChannel(comm ast.Stmt) (ast.Expr, bool) {
	switch s := comm.(type) {
	case *ast.SendStmt:
		return s.Chan, true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X, true
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X, true
			}
		}
	}
	return nil, false
}

// isSignalChan reports whether e's type is a channel of struct{} — the
// signal-channel idiom (flight.done, semaphores, leader handoff).
func isSignalChan(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isDoneCall reports whether e is a call of context's Done method
// (ctx.Done() — also a chan struct{}, but the escape hatch itself).
func isDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := calleeFunc(info, call)
	return obj != nil && obj.Name() == "Done" && pathIs(obj.Pkg(), "context")
}
