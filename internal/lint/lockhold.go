package lint

// lockhold: no blocking operation while a sync.RWMutex is held. This
// is the PR 8 Store.Put incident as a rule — persist (a disk fsync)
// used to run under the store-wide s.mu, stalling every reader for the
// disk round-trip. The rule is scoped to RWMutex on purpose: in this
// codebase an RWMutex marks a read-serving lock whose holder stalls
// the whole fleet, while a plain sync.Mutex (fstore.Dir.mu, the
// per-vehicle writer locks) deliberately serializes writers around IO.
//
// Blocking is detected three ways: a known-blocking set (file IO,
// network, time.Sleep, the fstore/server persistence entry points),
// channel operations (send, receive, select without default), and
// calls through func values — an indirect call's behavior is unknown,
// and the incident itself was exactly `persist(d)` under s.mu.
// Same-package helpers are summarized transitively, so hiding the
// fsync one call deep does not hide it from the rule. Deferred calls
// are exempt: they run at function exit, where a deferred Unlock has
// its own ordering that a path-insensitive rule cannot judge.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func newLockHold() *Analyzer {
	a := &Analyzer{
		Name: "lockhold",
		Doc:  "no blocking call (IO, network, channel op, indirect call) while a sync.RWMutex is held",
	}
	a.Run = func(pkg *Package) []Diagnostic {
		summaries := blockingSummaries(pkg)
		var diags []Diagnostic
		for _, f := range pkg.Files {
			for _, body := range funcUnits(f) {
				diags = append(diags, lockholdUnit(pkg, a.Name, body, summaries)...)
			}
		}
		return diags
	}
	return a
}

func lockholdUnit(pkg *Package, rule string, body *ast.BlockStmt, summaries map[*types.Func]bool) []Diagnostic {
	// Assign a bit to each distinct RWMutex expression locked in this
	// unit ("s.mu", "f.mu"), in order of first appearance.
	bits := map[string]uint64{}
	var names []string
	shallowStmts(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, locks, _ := rwmutexOp(pkg.Info, call); locks {
				if _, ok := bits[key]; !ok && len(names) < 64 {
					bits[key] = 1 << uint(len(names))
					names = append(names, key)
				}
			}
		}
		return true
	})
	if len(bits) == 0 {
		return nil
	}

	fa := flowAnalysis{
		transfer: func(st uint64, n ast.Node) uint64 {
			switch n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// Deferred/spawned work does not run here.
				return st
			}
			inspectShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if key, locks, unlocks := rwmutexOp(pkg.Info, call); locks {
						st |= bits[key]
					} else if unlocks {
						st &^= bits[key]
					}
				}
				return true
			})
			return st
		},
	}

	g := buildCFG(pkg.Info, body)
	in := fixpoint(g, fa)
	var diags []Diagnostic
	replay(g, in, fa, func(st uint64, n ast.Node) {
		if st == 0 {
			return
		}
		switch n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return
		}
		held := heldNames(names, bits, st)
		inspectShallow(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if _, locks, unlocks := rwmutexOp(pkg.Info, call); locks || unlocks {
					return false
				}
			}
			desc := blockingDesc(pkg, m, summaries)
			if desc == "" {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:     pkg.Fset.Position(m.Pos()),
				Rule:    rule,
				Message: fmt.Sprintf("%s while holding %s; move it outside the lock region", desc, held),
			})
			// Don't also flag the blocking call's own arguments.
			return false
		})
	}, nil)
	return diags
}

func heldNames(names []string, bits map[string]uint64, st uint64) string {
	var held []string
	for _, name := range names {
		if st&bits[name] != 0 {
			held = append(held, name)
		}
	}
	return strings.Join(held, ", ")
}

// rwmutexOp recognizes Lock/RLock/Unlock/RUnlock calls on a
// sync.RWMutex and returns the receiver expression as the lock's
// identity ("s.mu").
func rwmutexOp(info *types.Info, call *ast.CallExpr) (key string, locks, unlocks bool) {
	obj := calleeFunc(info, call)
	if obj == nil || !recvIsNamed(obj, "sync", "RWMutex") {
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	key = exprString(sel.X)
	switch obj.Name() {
	case "Lock", "RLock":
		return key, true, false
	case "Unlock", "RUnlock":
		return key, false, true
	}
	return "", false, false
}

// blockingDesc classifies one shallow node as blocking, returning a
// description for the diagnostic or "" when it is fine under a lock.
func blockingDesc(pkg *Package, n ast.Node, summaries map[*types.Func]bool) string {
	switch n := n.(type) {
	case *ast.SendStmt:
		return fmt.Sprintf("channel send to %s", exprString(n.Chan))
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return fmt.Sprintf("channel receive from %s", exprString(n.X))
		}
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				return "" // has a default: non-blocking poll
			}
		}
		return "blocking select"
	case *ast.CallExpr:
		return blockingCallDesc(pkg, n, summaries)
	}
	return ""
}

// blockingCallDesc classifies a call expression.
func blockingCallDesc(pkg *Package, call *ast.CallExpr, summaries map[*types.Func]bool) string {
	obj := calleeFunc(pkg.Info, call)
	if obj == nil {
		return indirectCallDesc(pkg, call)
	}
	if desc := knownBlockingFunc(obj); desc != "" {
		return desc
	}
	// Same-package helper whose body (transitively) blocks.
	if obj.Pkg() == pkg.Pkg && summaries[obj] {
		return fmt.Sprintf("call to %s, which blocks (IO/channel op in its body)", obj.Name())
	}
	return ""
}

// indirectCallDesc handles calls that resolve to no *types.Func: type
// conversions and builtins are fine, a call through a func value is an
// unknown and treated as blocking.
func indirectCallDesc(pkg *Package, call *ast.CallExpr) string {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return ""
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch objectOf(pkg.Info, id).(type) {
		case *types.Builtin, *types.TypeName, nil:
			return ""
		}
	}
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return "" // immediately-invoked literal: its body is its own unit
	}
	t := pkg.Info.TypeOf(call.Fun)
	if t == nil {
		return ""
	}
	if _, ok := t.Underlying().(*types.Signature); ok {
		return fmt.Sprintf("call through func value %s (unknown, may do IO)", exprString(call.Fun))
	}
	return ""
}

// knownBlockingFunc is the cross-package known-blocking set: stdlib IO
// and the repository's own persistence/faulting entry points.
func knownBlockingFunc(obj *types.Func) string {
	name := obj.Name()
	switch {
	case recvIsNamed(obj, "os", "File"):
		switch name {
		case "Write", "WriteString", "WriteAt", "Read", "ReadAt", "ReadFrom",
			"Sync", "Close", "Truncate", "Seek":
			return fmt.Sprintf("file IO (os.File.%s)", name)
		}
	case recvIsNamed(obj, "net/http", "Client"):
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			return fmt.Sprintf("network IO (http.Client.%s)", name)
		}
	case recvIsNamed(obj, "sync", "WaitGroup") && name == "Wait":
		return "sync.WaitGroup.Wait"
	case recvIsNamed(obj, "fstore", "Dir"):
		switch name {
		case "Save", "SaveVehicle", "Append", "Load", "LoadVehicle",
			"MaybeCompact", "CompactVehicle", "Close":
			return fmt.Sprintf("store IO (fstore.Dir.%s, hits disk)", name)
		}
	case recvIsNamed(obj, "internal/server", "Store"):
		switch name {
		case "Put", "Append", "AppendContext", "Acquire", "Get":
			return fmt.Sprintf("store access (server.Store.%s, may fault from disk)", name)
		}
	}
	if obj.Type().(*types.Signature).Recv() != nil {
		return ""
	}
	switch {
	case pathIs(obj.Pkg(), "os"):
		switch name {
		case "Open", "OpenFile", "Create", "CreateTemp", "ReadFile", "WriteFile",
			"Rename", "Remove", "RemoveAll", "Mkdir", "MkdirAll", "MkdirTemp",
			"ReadDir", "Stat", "Lstat", "Truncate", "Chtimes":
			return fmt.Sprintf("file IO (os.%s)", name)
		}
	case pathIs(obj.Pkg(), "io"):
		switch name {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull":
			return fmt.Sprintf("io.%s on an unknown reader/writer", name)
		}
	case pathIs(obj.Pkg(), "time") && name == "Sleep":
		return "time.Sleep"
	case pathIs(obj.Pkg(), "net/http"):
		switch name {
		case "Get", "Post", "PostForm", "Head", "ListenAndServe":
			return fmt.Sprintf("network IO (http.%s)", name)
		}
	case pathIs(obj.Pkg(), "internal/fstore") && name == "Open":
		return "store IO (fstore.Open)"
	}
	return ""
}

// blockingSummaries computes, per package-level function in pkg,
// whether its body (transitively through same-package calls, nested
// literals excluded) contains a blocking operation.
func blockingSummaries(pkg *Package) map[*types.Func]bool {
	type declInfo struct {
		blocks  bool
		callees []*types.Func
	}
	decls := map[*types.Func]*declInfo{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			di := &declInfo{}
			shallowStmts(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					di.blocks = true
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						di.blocks = true
					}
				case *ast.SelectStmt:
					blocking := true
					for _, c := range n.Body.List {
						if c.(*ast.CommClause).Comm == nil {
							blocking = false
						}
					}
					if blocking {
						di.blocks = true
					}
				case *ast.CallExpr:
					callee := calleeFunc(pkg.Info, n)
					if callee == nil {
						if indirectCallDesc(pkg, n) != "" {
							di.blocks = true
						}
						break
					}
					if knownBlockingFunc(callee) != "" {
						di.blocks = true
					} else if callee.Pkg() == pkg.Pkg {
						di.callees = append(di.callees, callee)
					}
				}
				return true
			})
			decls[obj] = di
		}
	}
	// Propagate callee summaries to a fixed point.
	out := map[*types.Func]bool{}
	for fn, di := range decls {
		out[fn] = di.blocks
	}
	for changed := true; changed; {
		changed = false
		for fn, di := range decls {
			if out[fn] {
				continue
			}
			for _, callee := range di.callees {
				if out[callee] {
					out[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}
