package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseUnit type-checks src (a complete file with no imports) and
// returns the named function's body plus the type info.
func parseUnit(t *testing.T, src, fn string) (*types.Info, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "unit.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	if _, err := conf.Check("unit", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type check: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return info, fd.Body
		}
	}
	t.Fatalf("no func %q in source", fn)
	return nil, nil
}

// mustPair runs a toy must-pair analysis over fn's CFG: a call of
// acquire sets the bit, a call of release clears it, and the result
// reports whether the bit is still live at any normal function exit.
// This is pinleak's skeleton with the source recognition stripped out,
// so it pins the CFG builder and worklist engine directly.
func mustPair(fa *flowAnalysis, info *types.Info, body *ast.BlockStmt) bool {
	fa.transfer = func(st uint64, n ast.Node) uint64 {
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "acquire":
					st |= 1
				case "release":
					st &^= 1
				}
			}
			return true
		})
		return st
	}
	g := buildCFG(info, body)
	in := fixpoint(g, *fa)
	leaked := false
	replay(g, in, *fa, nil, func(st uint64, _ *cfgBlock) {
		if st&1 != 0 {
			leaked = true
		}
	})
	return leaked
}

const cfgSrc = `package unit

func acquire() int { return 0 }
func release()     {}
func cond() bool   { return false }

func clean() {
	x := acquire()
	_ = x
	release()
}

func leakyEarlyReturn() {
	_ = acquire()
	if cond() {
		return
	}
	release()
}

func branchBoth() {
	_ = acquire()
	if cond() {
		release()
	} else {
		release()
	}
}

func loopBreak() {
	for i := 0; i < 3; i++ {
		_ = acquire()
		if cond() {
			break
		}
		release()
	}
}

func loopClean() {
	for i := 0; i < 3; i++ {
		_ = acquire()
		release()
	}
}

func rangeContinue(xs []int) {
	for range xs {
		_ = acquire()
		if cond() {
			release()
			continue
		}
		release()
	}
}

func panicPath() {
	_ = acquire()
	if cond() {
		panic("invariant")
	}
	release()
}

func gotoRejoin() {
	_ = acquire()
	if cond() {
		goto done
	}
	release()
	return
done:
	release()
}

func labeledBreak() {
outer:
	for {
		for {
			_ = acquire()
			if cond() {
				break outer
			}
			release()
		}
	}
}

func switchLeak(n int) {
	_ = acquire()
	switch n {
	case 0:
		release()
	case 1:
	default:
		release()
	}
}

func switchFallthrough(n int) {
	_ = acquire()
	switch n {
	case 0:
		fallthrough
	case 1:
		release()
	default:
		release()
	}
}

func selectAtomic(ch chan struct{}) {
	_ = acquire()
	select {
	case <-ch:
		release()
	case ch <- struct{}{}:
		release()
	}
}

func selectForever() {
	_ = acquire()
	select {}
}

func deadCode() {
	return
	_ = acquire()
}

func deferredRelease() {
	_ = acquire()
	func() { _ = acquire() }()
	release()
}
`

func TestMustPairFlow(t *testing.T) {
	cases := []struct {
		fn    string
		leaks bool
	}{
		{"clean", false},
		{"leakyEarlyReturn", true},
		{"branchBoth", false},
		{"loopBreak", true},      // break skips the release
		{"loopClean", false},     // per-iteration pairing survives the back edge
		{"rangeContinue", false}, // both arms release before the back edge
		{"panicPath", false},     // a panic exit is not a leak
		{"gotoRejoin", false},    // the label block releases on the goto path
		{"labeledBreak", true},   // break outer escapes both loops with the bit set
		{"switchLeak", true},     // the empty case falls to the exit un-released
		{"switchFallthrough", false},
		{"selectAtomic", false},    // clause bodies are successor blocks
		{"selectForever", false},   // select{} never returns, so nothing leaks
		{"deadCode", false},        // unreachable acquire must not poison exits
		{"deferredRelease", false}, // the nested literal is an opaque unit
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			info, body := parseUnit(t, cfgSrc, tc.fn)
			if got := mustPair(&flowAnalysis{}, info, body); got != tc.leaks {
				t.Errorf("mustPair(%s) = %v, want %v", tc.fn, got, tc.leaks)
			}
		})
	}
}

// TestBranchRefinement proves edges carry their condition: a refine
// hook that clears the bit on the taken branch (the shape of pinleak's
// err != nil discharge) turns the early-return leak into a clean
// function without touching the transfer.
func TestBranchRefinement(t *testing.T) {
	info, body := parseUnit(t, cfgSrc, "leakyEarlyReturn")
	fa := &flowAnalysis{
		refine: func(st uint64, cond ast.Expr, taken bool) uint64 {
			if taken {
				return st &^ 1
			}
			return st
		},
	}
	if mustPair(fa, info, body) {
		t.Error("refine on the taken edge should discharge the obligation before the early return")
	}
}

// TestCFGShape pins structural invariants the analyzers rely on.
func TestCFGShape(t *testing.T) {
	t.Run("exit-blocks", func(t *testing.T) {
		info, body := parseUnit(t, cfgSrc, "leakyEarlyReturn")
		g := buildCFG(info, body)
		rets, falls := 0, 0
		for _, blk := range g.blocks {
			if !blk.exits {
				continue
			}
			if blk.ret != nil {
				rets++
			} else {
				falls++
			}
		}
		if rets != 1 || falls != 1 {
			t.Errorf("got %d return exits and %d fall-off exits, want 1 and 1", rets, falls)
		}
		if g.end != body.Rbrace {
			t.Errorf("g.end = %v, want the closing brace %v", g.end, body.Rbrace)
		}
	})

	t.Run("panic-block-terminates", func(t *testing.T) {
		info, body := parseUnit(t, cfgSrc, "panicPath")
		g := buildCFG(info, body)
		panics := 0
		for _, blk := range g.blocks {
			if blk.panics {
				panics++
				if len(blk.succs) != 0 {
					t.Errorf("panicking block %d has %d successors", blk.index, len(blk.succs))
				}
			}
		}
		if panics != 1 {
			t.Errorf("got %d panicking blocks, want 1", panics)
		}
	})

	t.Run("unreachable-block-has-no-entry", func(t *testing.T) {
		info, body := parseUnit(t, cfgSrc, "deadCode")
		g := buildCFG(info, body)
		in := fixpoint(g, flowAnalysis{transfer: func(st uint64, _ ast.Node) uint64 { return st }})
		for _, blk := range g.blocks {
			if _, reachable := in[blk]; reachable {
				for _, n := range blk.nodes {
					if as, ok := n.(*ast.AssignStmt); ok {
						if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
							if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "acquire" {
								t.Error("the acquire after return should be in an unreachable block")
							}
						}
					}
				}
			}
		}
	})
}
