package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message. The driver renders it as
// "file:line:col: rule: message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named rule. Run inspects a type-checked package and
// returns raw findings; suppression directives are applied afterwards
// by Check. An analyzer may keep state across Run calls within one
// driver invocation (metricnames uses this for cross-package duplicate
// detection), so callers must obtain fresh instances from All for each
// independent run.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Diagnostic
}

// All returns a fresh instance of every analyzer in the suite. The
// returned slice is ordered by rule name; instances must not be shared
// between concurrent driver runs.
func All() []*Analyzer {
	return []*Analyzer{
		newCtxWait(),
		newDeferInLoop(),
		newDeterminism(),
		newErrDiscipline(),
		newFloatSafety(),
		newLockHold(),
		newMetricNames(),
		newPinLeak(),
		newPrintHygiene(),
	}
}

// directive is one parsed //lint:allow comment.
type directive struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// DirectiveRule is the pseudo-rule under which Check reports malformed
// or unused //lint:allow directives. It cannot itself be suppressed —
// a directive that silences nothing is dead weight that would let a
// real violation creep back in unnoticed.
const DirectiveRule = "directive"

const directivePrefix = "lint:allow"

// parseDirectives extracts every //lint:allow comment in the package.
// The accepted form is
//
//	//lint:allow <rule> <reason...>
//
// where <reason> is mandatory: an unexplained suppression is reported
// as malformed. A directive suppresses matching diagnostics on its own
// line (trailing comment) and on the line directly below (comment on
// its own line above the flagged statement).
func parseDirectives(pkg *Package) (dirs []*directive, malformed []Diagnostic) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:     pos,
						Rule:    DirectiveRule,
						Message: "malformed //lint:allow: need a rule name and a reason",
					})
					continue
				}
				dirs = append(dirs, &directive{
					pos:    pos,
					rule:   fields[0],
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs, malformed
}

// Check runs every analyzer over pkg, applies //lint:allow
// suppression, reports malformed and unused directives, and returns
// the surviving diagnostics sorted by position.
func Check(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		raw = append(raw, a.Run(pkg)...)
	}

	dirs, out := parseDirectives(pkg)
	for _, d := range raw {
		if dir := matchDirective(dirs, d); dir != nil {
			dir.used = true
			continue
		}
		out = append(out, d)
	}
	for _, dir := range dirs {
		if !dir.used {
			out = append(out, Diagnostic{
				Pos:     dir.pos,
				Rule:    DirectiveRule,
				Message: fmt.Sprintf("//lint:allow %s suppresses nothing; remove it", dir.rule),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

func matchDirective(dirs []*directive, d Diagnostic) *directive {
	for _, dir := range dirs {
		if dir.rule != d.Rule || dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
			return dir
		}
	}
	return nil
}

// --- shared type-inspection helpers -------------------------------------

// pathIs reports whether pkg's import path is suffix, or ends with
// "/"+suffix. Matching by suffix keeps the analyzers working against
// fixture modules and renamed module roots.
func pathIs(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// importPathIs is pathIs for a raw import-path string.
func importPathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// calleeFunc resolves the called function or method, or nil for
// indirect calls, builtins and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// isPkgFunc reports whether obj is the package-level function
// pkgSuffix.name (methods have a receiver and never match).
func isPkgFunc(obj *types.Func, pkgSuffix, name string) bool {
	return obj != nil &&
		obj.Name() == name &&
		obj.Type().(*types.Signature).Recv() == nil &&
		pathIs(obj.Pkg(), pkgSuffix)
}

// recvNamed returns the named type of obj's receiver (dereferencing
// one pointer), or nil for package-level functions.
func recvNamed(obj *types.Func) *types.Named {
	if obj == nil {
		return nil
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// recvIsNamed reports whether obj is a method on pkgSuffix.name
// (value or pointer receiver).
func recvIsNamed(obj *types.Func, pkgSuffix, name string) bool {
	n := recvNamed(obj)
	return n != nil && n.Obj().Name() == name && pathIs(n.Obj().Pkg(), pkgSuffix)
}

// isNamedType reports whether t (after dereferencing one pointer) is
// the named type pkgSuffix.name.
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == name && pathIs(n.Obj().Pkg(), pkgSuffix)
}

// isFloat reports whether t's underlying type is a floating-point
// basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isErrorType reports whether t is the built-in error interface (or an
// alias of it).
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// exprString renders a call target compactly for messages
// ("fmt.Fprintf", "enc.Encode").
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return "call"
	}
}
